module graphpipe

go 1.22
