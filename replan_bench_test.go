package graphpipe_test

import (
	"testing"
	"time"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/memosnap"
	"graphpipe/internal/models"
	"graphpipe/internal/planner"
)

// --- Elastic replanning: warm-started vs cold searches -------------------
//
// The scenario behind Options.WarmMemo: a job planned at 32 devices (the
// Table 1 sweep points) loses nodes and must replan at smaller cluster
// sizes with the same mini-batch. Each benchmark runs the descending
// sweep as the service would — every plan exports its memo snapshot into
// the store (MemoSink on both arms, merged as the service's memo store
// does) so the next elastic event can warm-start. The Cold variant never
// consumes a snapshot; the Warm variant seeds each replan from the
// accumulated one. Both report seconds per full sweep; the CI bench
// report fails if warm does not beat cold — the snapshot machinery must
// pay for itself, and warm≡cold byte-identity is pinned separately by the
// conformance suite.
//
// The sweep stays above 4 devices so every point shares the base plan's
// inter-node cost regime; crossing the boundary changes the snapshot's
// cost signature and correctly plans cold.
var replanSweep = []int{24, 16, 8}

func benchReplan(b *testing.B, model string, warm bool) {
	g, err := modelGraph(model)
	if err != nil {
		b.Fatal(err)
	}
	mb, err := models.PaperMiniBatch(model, 32)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := planner.Get("graphpipe")
	if err != nil {
		b.Fatal(err)
	}

	plan := func(devices int, opts planner.Options) {
		topo := cluster.NewSummitTopology(devices)
		opts.Workers = 1
		opts.CostModel = costmodel.NewDefault(topo)
		if _, _, err := pl.Plan(g, topo, mb, opts); err != nil {
			b.Fatalf("planning %s at %d devices: %v", model, devices, err)
		}
	}

	// The 32-device base plan is the starting point both arms share; it
	// is not timed, only its exported snapshot matters.
	var snap *memosnap.Snapshot
	plan(32, planner.Options{MemoSink: func(s *memosnap.Snapshot) { snap = s }})
	if snap == nil || snap.Entries() == 0 {
		b.Fatal("base plan exported no memo snapshot")
	}

	var total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := snap
		start := time.Now()
		for _, devices := range replanSweep {
			opts := planner.Options{
				MemoSink: func(s *memosnap.Snapshot) { cur = memosnap.Merge(cur, s) },
			}
			if warm {
				opts.WarmMemo = func(memosnap.Key) *memosnap.Snapshot { return cur }
			}
			plan(devices, opts)
		}
		total += time.Since(start)
	}
	metric := "replan_cold_s"
	if warm {
		metric = "replan_warm_s"
	}
	b.ReportMetric(total.Seconds()/float64(b.N), metric)
}

func BenchmarkReplanColdMMT32(b *testing.B)  { benchReplan(b, "mmt", false) }
func BenchmarkReplanWarmMMT32(b *testing.B)  { benchReplan(b, "mmt", true) }
func BenchmarkReplanColdDLRM32(b *testing.B) { benchReplan(b, "dlrm", false) }
func BenchmarkReplanWarmDLRM32(b *testing.B) { benchReplan(b, "dlrm", true) }
func BenchmarkReplanColdCANDLE32(b *testing.B) {
	benchReplan(b, "candle-uno", false)
}
func BenchmarkReplanWarmCANDLE32(b *testing.B) {
	benchReplan(b, "candle-uno", true)
}
