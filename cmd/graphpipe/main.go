// Command graphpipe plans a pipeline-parallel training strategy for one of
// the paper's evaluation models, simulates a training iteration, and prints
// the strategy, its schedule, and the achieved throughput.
//
// Planners are resolved by name through the planner registry; any planner
// registered via graphpipe/internal/planner is selectable with -planner.
//
// Usage:
//
//	graphpipe -model mmt -devices 8 -batch 128 [-planner graphpipe|pipedream|piper]
//	          [-branches N] [-micro B] [-workers N] [-gantt] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
	"graphpipe/internal/models"
	"graphpipe/internal/planner"
	"graphpipe/internal/sim"
	"graphpipe/internal/trace"

	_ "graphpipe/internal/planner/all" // register the built-in planners
)

func main() {
	var (
		modelName   = flag.String("model", "mmt", "model: mmt | dlrm | candle-uno | case-study | sequential")
		plannerName = flag.String("planner", "graphpipe",
			"planner: "+strings.Join(planner.Names(), " | "))
		devices  = flag.Int("devices", 8, "number of devices (GPUs)")
		batch    = flag.Int("batch", 0, "mini-batch size (default: the paper's size for the device count)")
		branches = flag.Int("branches", 0, "override the model's branch count")
		micro    = flag.Int("micro", 0, "force a fixed micro-batch size")
		workers  = flag.Int("workers", 0, "planning worker pool size (0: one per CPU, 1: sequential)")
		gantt    = flag.Bool("gantt", false, "print the pipeline schedule as an ASCII gantt chart")
		verbose  = flag.Bool("verbose", false, "print the full stage listing")
	)
	flag.Parse()

	g, defBatch, err := buildModel(*modelName, *branches, *devices)
	if err != nil {
		fatal(err)
	}
	mb := *batch
	if mb == 0 {
		mb = defBatch
	}

	pl, err := planner.Get(*plannerName)
	if err != nil {
		fatal(err)
	}
	topo := cluster.NewSummitTopology(*devices)
	model := planner.Options{}.Model(topo)

	start := time.Now()
	st, stats, err := pl.Plan(g, topo, mb, planner.Options{
		ForcedMicroBatch: *micro,
		Workers:          *workers,
		CostModel:        model,
	})
	if err != nil {
		fatal(err)
	}
	searchTime := time.Since(start)

	res, err := sim.New(g, model).Run(st)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("model      %s (%d ops)\n", g.Name(), g.Len())
	fmt.Printf("devices    %d   mini-batch %d\n", *devices, mb)
	fmt.Printf("planner    %s   search %.3fs   dp-states %d\n",
		pl.Name(), searchTime.Seconds(), stats.DPStates)
	fmt.Printf("result     %s\n", trace.Summary(st, res))
	if *verbose {
		fmt.Println()
		fmt.Print(st.String())
	}
	if *gantt {
		fmt.Println()
		fmt.Print(trace.Gantt(st, res, 110))
	}
}

func buildModel(name string, branches, devices int) (*graph.Graph, int, error) {
	switch name {
	case "mmt":
		cfg := models.DefaultMMTConfig()
		if branches > 0 {
			cfg.Branches = branches
		}
		mb, err := models.PaperMiniBatch("mmt", devices)
		if err != nil {
			mb = 32 * devices
		}
		return models.MMT(cfg), mb, nil
	case "dlrm":
		mb, err := models.PaperMiniBatch("dlrm", devices)
		if err != nil {
			mb = 64 * devices
		}
		return models.DLRM(models.DefaultDLRMConfig()), mb, nil
	case "candle-uno":
		cfg := models.DefaultCANDLEUnoConfig()
		if branches > 0 {
			cfg.Branches = branches
		}
		mb, err := models.PaperMiniBatch("candle-uno", devices)
		if err != nil {
			mb = 1024 * devices
		}
		return models.CANDLEUno(cfg), mb, nil
	case "case-study":
		return models.CaseStudy(models.DefaultCaseStudyConfig()), 64, nil
	case "sequential":
		return models.SequentialTransformer(32), 16 * devices, nil
	default:
		return nil, 0, fmt.Errorf("unknown model %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphpipe:", err)
	os.Exit(1)
}
