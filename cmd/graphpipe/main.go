// Command graphpipe plans pipeline-parallel training strategies for the
// paper's evaluation models, persists them as versioned JSON artifacts,
// and (re-)evaluates them on any registered evaluation backend.
//
// Planners are resolved by name through the planner registry and
// evaluation backends through the eval registry, so a plan can be
// produced once, written to disk, and replayed anywhere:
//
//	graphpipe plan -model mmt -devices 8 -batch 128 -o plan.json
//	graphpipe eval plan.json                  # simulator backend
//	graphpipe eval -backend runtime plan.json # concurrent runtime backend
//	graphpipe compare plan.json other.json    # side-by-side table
//
// Synthetic models (internal/synth) are first-class: any -model flag
// accepts a "synth:" spec, and the synth subcommand generates,
// describes, and replays seeded models:
//
//	graphpipe synth -family fanout -seed 42        # generate + summary
//	graphpipe synth -spec synth:fanout/seed=42 -describe
//	graphpipe plan -model synth:fanout/seed=42 -devices 4
//
// Usage:
//
//	graphpipe plan [-model M] [-devices N] [-batch B] [-planner P]
//	               [-branches N] [-micro B] [-workers N] [-backend E]
//	               [-cpuprofile F] [-memprofile F] [-warm-memo F]
//	               [-o plan.json] [-gantt] [-verbose]
//	graphpipe eval [-backend E] [-timeout D] [-gantt] [-verbose]
//	               [-cpuprofile F] [-memprofile F] plan.json
//	graphpipe compare [-backend E] plan.json [plan2.json ...]
//	graphpipe synth [-family F -seed N | -spec S] [-depth N]
//	                [-branches N] [-skew F] [-nesting N] [-devices N]
//	                [-describe] [-dump] [-o spec.json]
//
// The -cpuprofile/-memprofile flags write pprof profiles covering the
// subcommand's work (planning plus evaluation), so planner hot spots are
// diagnosable with `go tool pprof` without editing code.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/eval"
	"graphpipe/internal/graph"
	"graphpipe/internal/memosnap"
	"graphpipe/internal/models"
	"graphpipe/internal/planner"
	"graphpipe/internal/strategy"
	"graphpipe/internal/synth"
	"graphpipe/internal/trace"

	_ "graphpipe/internal/eval/all"    // register the built-in backends
	_ "graphpipe/internal/planner/all" // register the built-in planners
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks misuse of the command line — unknown subcommand or
// flag, wrong positional arguments — as opposed to a failure while doing
// the requested work. Misuse exits 2 with a usage message; runtime
// failures exit 1. Every misuse path funnels through this one type, so
// the two classes cannot drift apart again as subcommands are added.
type usageError struct {
	err error
	// printed means the flag set already wrote the diagnostic and its
	// flag listing to stderr; run then only sets the exit code, instead
	// of repeating the error and stacking a second usage text on top.
	printed bool
}

func (e usageError) Error() string { return e.err.Error() }

func usageErrorf(format string, args ...any) error {
	return usageError{err: fmt.Errorf(format, args...)}
}

// run dispatches a full command line and returns the process exit code.
// It is main minus os.Exit, so the CLI smoke tests can drive every
// misuse and success path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "graphpipe: missing subcommand")
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "plan":
		err = cmdPlan(args[1:], stdout, stderr)
	case "eval":
		err = cmdEval(args[1:], stdout, stderr)
	case "compare":
		err = cmdCompare(args[1:], stdout, stderr)
	case "synth":
		err = cmdSynth(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "graphpipe: unknown subcommand %q\n\n", args[0])
		usage(stderr)
		return 2
	}
	var ue usageError
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		// The flag set already printed its defaults.
		return 0
	case errors.As(err, &ue):
		if !ue.printed {
			fmt.Fprintf(stderr, "graphpipe: %v\n\n", err)
			usage(stderr)
		}
		return 2
	default:
		fmt.Fprintln(stderr, "graphpipe:", err)
		return 1
	}
}

// parseFlags parses a subcommand's flags, converting flag-package errors
// (unknown flag, malformed value) into usageErrors while passing -h's
// flag.ErrHelp through untouched.
func parseFlags(fs *flag.FlagSet, stderr io.Writer, args []string) error {
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err: err, printed: true}
	}
	return nil
}

// profileFlags registers -cpuprofile/-memprofile on a subcommand's flag
// set and returns a start function; the stop function it yields finishes
// both profiles and must run before the process exits.
func profileFlags(fs *flag.FlagSet) (start func() (stop func() error, err error)) {
	cpu := fs.String("cpuprofile", "", "write a CPU profile of this run to the file")
	mem := fs.String("memprofile", "", "write a heap profile at the end of this run to the file")
	return func() (func() error, error) {
		var cpuFile *os.File
		if *cpu != "" {
			f, err := os.Create(*cpu)
			if err != nil {
				return nil, fmt.Errorf("cpuprofile: %w", err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return nil, fmt.Errorf("cpuprofile: %w", err)
			}
			cpuFile = f
		}
		memPath := *mem
		return func() error {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					return fmt.Errorf("cpuprofile: %w", err)
				}
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					return fmt.Errorf("memprofile: %w", err)
				}
				defer f.Close()
				runtime.GC() // materialize the live heap before snapshotting
				if err := pprof.WriteHeapProfile(f); err != nil {
					return fmt.Errorf("memprofile: %w", err)
				}
			}
			return nil
		}, nil
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `graphpipe plans, persists, and evaluates pipeline-parallel strategies.

Subcommands:
  plan      discover a strategy and optionally write it as a JSON artifact
  eval      load an artifact and evaluate it on a registered backend
  compare   evaluate several artifacts side by side
  synth     generate, describe, or replay a seeded synthetic model

Planners:  %s
Backends:  %s
Models:    %s
Synth:     synth:<family>/seed=N with families %s

Run 'graphpipe <subcommand> -h' for flags.
`, strings.Join(planner.Names(), " | "), strings.Join(eval.Names(), " | "),
		strings.Join(models.Names(), " | "), strings.Join(synth.Families(), " | "))
}

// cmdPlan plans a strategy, evaluates it once for the summary, and
// optionally persists the artifact (with the evaluation recorded in its
// metadata, so a later re-evaluation can be diffed against plan time).
func cmdPlan(args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	startProf := profileFlags(fs)
	var (
		modelName   = fs.String("model", "mmt", "model: "+strings.Join(models.Names(), " | "))
		plannerName = fs.String("planner", "graphpipe",
			"planner: "+strings.Join(planner.Names(), " | "))
		devices  = fs.Int("devices", 8, "number of devices (GPUs)")
		topology = fs.String("topology", "",
			"cluster topology: a preset ("+strings.Join(cluster.PresetNames(), " | ")+
				"), an explicit topo:explicit/... spec, or a synth family topo:{"+
				strings.Join(synth.TopoFamilies(), ",")+"}/seed=N (default: summit)")
		batch    = fs.Int("batch", 0, "mini-batch size (default: the paper's size for the device count)")
		branches = fs.Int("branches", 0, "override the model's branch count")
		micro    = fs.Int("micro", 0, "force a fixed micro-batch size")
		workers  = fs.Int("workers", 0, "planning worker pool size (0: one per CPU, 1: sequential)")
		backend  = fs.String("backend", "sim", "evaluation backend: "+strings.Join(eval.Names(), " | "))
		out      = fs.String("o", "", "write the strategy artifact to this file")
		warmMemo = fs.String("warm-memo", "",
			"DP memo snapshot file: warm-start from it when compatible, then rewrite it with this search's memo merged in (graphpipe only)")
		gantt   = fs.Bool("gantt", false, "print the pipeline schedule as an ASCII gantt chart")
		verbose = fs.Bool("verbose", false, "print the full stage listing")
	)
	if err := parseFlags(fs, stderr, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usageErrorf("plan: unexpected arguments: %v", fs.Args())
	}
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	g, defBatch, err := models.Build(*modelName, *branches, *devices)
	if err != nil {
		return err
	}
	modelID := *modelName
	if synth.IsSpec(modelID) {
		// Persist the *resolved* spec (the graph's name): it pins every
		// derived knob, so the artifact rebuilds this exact graph even if
		// a family's seed-derivation ranges change in a later version.
		modelID = g.Name()
	}
	mb := *batch
	if mb == 0 {
		mb = defBatch
	}

	pl, err := planner.Get(*plannerName)
	if err != nil {
		return err
	}
	ev, err := eval.Get(*backend)
	if err != nil {
		return err
	}
	topo, err := models.Topology(*topology, *devices)
	if err != nil {
		return err
	}
	model := costmodel.NewDefault(topo)

	popts := planner.Options{
		ForcedMicroBatch: *micro,
		Workers:          *workers,
		CostModel:        model,
	}
	// A warm-memo file is a cache, never a source of truth: a missing,
	// corrupt, or incompatible snapshot degrades to a cold plan (with a
	// warning), and the file is rewritten after the search either way.
	var loadedMemo, exportedMemo *memosnap.Snapshot
	if *warmMemo != "" {
		if data, err := os.ReadFile(*warmMemo); err == nil {
			if loadedMemo, err = memosnap.Decode(data); err != nil {
				fmt.Fprintf(stderr, "graphpipe: ignoring %s: %v (planning cold)\n", *warmMemo, err)
			}
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(stderr, "graphpipe: ignoring %s: %v (planning cold)\n", *warmMemo, err)
		}
		popts.WarmMemo = func(memosnap.Key) *memosnap.Snapshot { return loadedMemo }
		popts.MemoSink = func(s *memosnap.Snapshot) { exportedMemo = s }
	}

	start := time.Now()
	st, stats, err := pl.Plan(g, topo, mb, popts)
	if err != nil {
		return err
	}
	searchTime := time.Since(start)

	rep, err := ev.Evaluate(g, topo, st, eval.Options{CostModel: model})
	if err != nil {
		return err
	}

	// The artifact is built whether or not it is persisted: its
	// fingerprint is the plan's cache identity, printed so CLI users and
	// the graphpiped daemon (which hashes requests the same way, via
	// strategy.Artifact.Fingerprint) can look each other's plans up.
	art := &strategy.Artifact{
		Model:     modelID,
		Branches:  *branches,
		Devices:   *devices,
		Topology:  topo.Canonical(),
		MiniBatch: mb,
		Planner: strategy.PlannerMeta{
			Name:              pl.Name(),
			SearchSeconds:     searchTime.Seconds(),
			DPStates:          stats.DPStates,
			BinaryIters:       stats.BinaryIters,
			WarmStarted:       stats.MemoWarmStarted,
			MemoEntriesReused: stats.MemoEntriesReused,
		},
		Options: strategy.PlanOptions{ForcedMicroBatch: *micro},
		Evals: []strategy.EvalMeta{{
			Backend:       rep.Backend,
			IterationTime: rep.IterationTime,
			Throughput:    rep.Throughput,
		}},
		Strategy: st,
	}

	fmt.Fprintf(stdout, "model      %s (%d ops)\n", g.Name(), g.Len())
	fmt.Fprintf(stdout, "devices    %d   mini-batch %d\n", *devices, mb)
	fmt.Fprintf(stdout, "planner    %s   search %.3fs   dp-states %d\n",
		pl.Name(), searchTime.Seconds(), stats.DPStates)
	if *warmMemo != "" {
		if stats.MemoWarmStarted {
			fmt.Fprintf(stdout, "memo       warm (%d entries reused)\n", stats.MemoEntriesReused)
		} else {
			fmt.Fprintf(stdout, "memo       cold\n")
		}
	}
	fmt.Fprintf(stdout, "backend    %s\n", rep.Backend)
	fmt.Fprintf(stdout, "fingerprint %s\n", art.Fingerprint())
	fmt.Fprintf(stdout, "result     %s\n", trace.Summary(st, rep))
	printDetails(stdout, st, rep, *verbose, *gantt)

	if *out != "" {
		data, err := strategy.EncodeArtifact(art)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "artifact   %s (version %d, %d bytes)\n", *out, art.Version, len(data)+1)
	}
	if *warmMemo != "" && exportedMemo != nil {
		merged := memosnap.Merge(loadedMemo, exportedMemo)
		if err := writeFileAtomic(*warmMemo, memosnap.Encode(merged)); err != nil {
			return fmt.Errorf("writing memo snapshot: %w", err)
		}
		fmt.Fprintf(stdout, "memo-file  %s (%d entries)\n", *warmMemo, merged.Entries())
	}
	return nil
}

// writeFileAtomic writes via temp file + rename, so an interrupted run
// never leaves a torn snapshot for the next one to trip over.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadArtifact reads, decodes, and fully checks an artifact: version,
// planner name against the registry, and strategy validity (C1–C4)
// against the rebuilt graph and topology. It returns everything eval and
// compare need to replay the plan.
func loadArtifact(path string) (*strategy.Artifact, *graph.Graph, *cluster.Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	art, err := strategy.DecodeArtifact(data)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := art.CheckPlanner(planner.Names()); err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	g, _, err := models.Build(art.Model, art.Branches, art.Devices)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	topo, err := models.Topology(art.Topology, art.Devices)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := art.Validate(g, topo); err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return art, g, topo, nil
}

// cmdEval loads a persisted plan and evaluates it on the selected
// backend, reporting drift against the evaluations recorded at plan time.
func cmdEval(args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	startProf := profileFlags(fs)
	var (
		backend = fs.String("backend", "sim", "evaluation backend: "+strings.Join(eval.Names(), " | "))
		timeout = fs.Duration("timeout", 0, "wall-clock deadlock guard for concurrent backends (0: backend default)")
		gantt   = fs.Bool("gantt", false, "print the pipeline schedule as an ASCII gantt chart")
		verbose = fs.Bool("verbose", false, "print the full stage listing")
	)
	if err := parseFlags(fs, stderr, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usageErrorf("eval: want exactly one artifact file, got %d", fs.NArg())
	}
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	ev, err := eval.Get(*backend)
	if err != nil {
		return err
	}
	art, g, topo, err := loadArtifact(fs.Arg(0))
	if err != nil {
		return err
	}
	rep, err := ev.Evaluate(g, topo, art.Strategy, eval.Options{Timeout: *timeout})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "artifact   %s (version %d)\n", fs.Arg(0), art.Version)
	fmt.Fprintf(stdout, "model      %s (%d ops)   devices %d   mini-batch %d\n",
		g.Name(), g.Len(), art.Devices, art.Strategy.MiniBatch)
	fmt.Fprintf(stdout, "planner    %s   search %.3fs\n", art.Planner.Name, art.Planner.SearchSeconds)
	fmt.Fprintf(stdout, "backend    %s\n", rep.Backend)
	fmt.Fprintf(stdout, "fingerprint %s\n", art.Fingerprint())
	fmt.Fprintf(stdout, "result     %s\n", trace.Summary(art.Strategy, rep))
	for _, em := range art.Evals {
		drift := 0.0
		if em.Throughput > 0 {
			drift = (rep.Throughput - em.Throughput) / em.Throughput * 100
		}
		fmt.Fprintf(stdout, "recorded   %s: %.4g samples/s at plan time (drift %+.2f%%)\n",
			em.Backend, em.Throughput, drift)
	}
	printDetails(stdout, art.Strategy, rep, *verbose, *gantt)
	return nil
}

// cmdCompare evaluates several artifacts on one backend and prints them
// side by side — the "which plan do we ship" table.
func cmdCompare(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	backend := fs.String("backend", "sim", "evaluation backend: "+strings.Join(eval.Names(), " | "))
	if err := parseFlags(fs, stderr, args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return usageErrorf("compare: want at least one artifact file")
	}
	ev, err := eval.Get(*backend)
	if err != nil {
		return err
	}

	table := trace.NewCSV("artifact", "model", "planner", "devices", "mini_batch",
		"stages", "depth", "iteration_s", "samples_per_s", "peak_mem_gb")
	throughputs := make([]float64, fs.NArg())
	for i := 0; i < fs.NArg(); i++ {
		path := fs.Arg(i)
		art, g, topo, err := loadArtifact(path)
		if err != nil {
			return err
		}
		rep, err := ev.Evaluate(g, topo, art.Strategy, eval.Options{})
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		throughputs[i] = rep.Throughput
		table.Add(path, art.Model, art.Planner.Name, art.Devices, art.Strategy.MiniBatch,
			art.Strategy.NumStages(), art.Strategy.Depth(),
			rep.IterationTime, rep.Throughput, rep.PeakMemory()/1e9)
	}
	fmt.Fprintf(stdout, "backend %s\n\n%s", *backend, table.Markdown())
	if baseline := throughputs[0]; fs.NArg() > 1 && baseline > 0 {
		fmt.Fprintf(stdout, "\n(throughputs relative to %s: ", fs.Arg(0))
		for i := range throughputs {
			if i > 0 {
				fmt.Fprint(stdout, ", ")
			}
			fmt.Fprintf(stdout, "%s %.2fx", fs.Arg(i), throughputs[i]/baseline)
		}
		fmt.Fprintln(stdout, ")")
	}
	return nil
}

// cmdSynth generates a synthetic model from a family/seed (or replays a
// full spec string) and prints a deterministic description: the
// resolved canonical spec, the knobs, and the content hash of the
// generated graph. The output is a pure function of the spec, so
// re-running with the same seed reproduces it byte for byte — that is
// the replay contract conformance failures and bug reports rely on.
func cmdSynth(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	var (
		famFlag  = fs.String("family", "", "model family: "+strings.Join(synth.Families(), " | "))
		seed     = fs.Int64("seed", 0, "generator seed (derives every unset knob)")
		spec     = fs.String("spec", "", "replay a full spec string (synth:family/seed=N/...); overrides the knob flags")
		depth    = fs.Int("depth", 0, "pin the depth knob (0: derive from seed)")
		branches = fs.Int("branches", 0, "pin the branch count (0: derive from seed)")
		skew     = fs.Float64("skew", 0, "pin the branch-cost skew (0: derive from seed)")
		nesting  = fs.Int("nesting", 0, "pin the nesting depth (0: derive from seed)")
		devices  = fs.Int("devices", 4, "device count used for the default mini-batch line")
		describe = fs.Bool("describe", false, "print the full operator listing")
		dump     = fs.Bool("dump", false, "print the canonical graph JSON (the bytes behind the hash)")
		out      = fs.String("o", "", "write the resolved spec as JSON to this file")
	)
	if err := parseFlags(fs, stderr, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usageErrorf("synth: unexpected arguments: %v", fs.Args())
	}

	var s synth.Spec
	switch {
	case *spec != "":
		parsed, err := synth.Parse(*spec)
		if err != nil {
			return usageError{err: err}
		}
		s = parsed
	case *famFlag != "":
		s = synth.Spec{Family: *famFlag, Seed: *seed, Depth: *depth,
			Branches: *branches, Skew: *skew, Nesting: *nesting}
	default:
		return usageErrorf("synth: need -family (with -seed) or -spec")
	}

	g, rs, err := synth.Generate(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "spec       %s\n", rs)
	fmt.Fprintf(stdout, "family     %s   seed %d\n", rs.Family, rs.Seed)
	fmt.Fprintf(stdout, "knobs      depth %d   branches %d   skew %g   nesting %d\n",
		rs.Depth, rs.Branches, rs.Skew, rs.Nesting)
	fmt.Fprintf(stdout, "graph      %d ops, %d edges, %d sources\n",
		g.Len(), len(g.Edges()), len(g.Sources()))
	fmt.Fprintf(stdout, "hash       %s\n", g.CanonicalHash())
	fmt.Fprintf(stdout, "mini-batch %d (default at %d devices)\n",
		synth.DefaultMiniBatch(*devices), *devices)
	fmt.Fprintf(stdout, "plan with  graphpipe plan -model %s -devices %d\n", rs, *devices)
	if *describe {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, g.String())
	}
	if *dump {
		fmt.Fprintln(stdout)
		stdout.Write(g.Canonical())
	}
	if *out != "" {
		data, err := synth.EncodeJSON(rs)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "spec file  %s\n", *out)
	}
	return nil
}

// printDetails renders the optional stage listing and gantt chart shared
// by plan and eval.
func printDetails(w io.Writer, st *strategy.Strategy, rep *eval.Report, verbose, gantt bool) {
	if verbose {
		fmt.Fprintln(w)
		fmt.Fprint(w, st.String())
	}
	if gantt {
		fmt.Fprintln(w)
		fmt.Fprint(w, trace.Gantt(st, rep, 110))
	}
}
