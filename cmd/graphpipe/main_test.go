package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"graphpipe/internal/synth"
)

// runCLI drives the dispatcher exactly like main does, capturing both
// streams and the exit code.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestCLIMisuse pins the contract the misuse paths share: non-zero exit
// (2, distinguishing misuse from runtime failure), a diagnostic on
// stderr, and the usage text so the caller learns the valid spellings.
func TestCLIMisuse(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		diag string // must appear on stderr
		// usage selects which help text accompanies the diagnostic: the
		// top-level subcommand listing, or (for flag-parse errors, where
		// the flag set prints its own flag listing exactly once) the
		// subcommand's flags.
		usage string
	}{
		"no subcommand":        {nil, "missing subcommand", "Subcommands:"},
		"unknown subcommand":   {[]string{"bogus"}, `unknown subcommand "bogus"`, "Subcommands:"},
		"unknown plan flag":    {[]string{"plan", "-nosuch"}, "-nosuch", "-model"},
		"stray plan arg":       {[]string{"plan", "stray"}, "unexpected arguments", "Subcommands:"},
		"eval without file":    {[]string{"eval"}, "want exactly one artifact file", "Subcommands:"},
		"eval two files":       {[]string{"eval", "a.json", "b.json"}, "want exactly one artifact file", "Subcommands:"},
		"unknown eval flag":    {[]string{"eval", "-nosuch", "a.json"}, "-nosuch", "-backend"},
		"compare without file": {[]string{"compare"}, "at least one artifact file", "Subcommands:"},
		"unknown compare flag": {[]string{"compare", "-nosuch"}, "-nosuch", "-backend"},
	} {
		code, stdout, stderr := runCLI(tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
		if !strings.Contains(stderr, tc.diag) {
			t.Errorf("%s: stderr %q does not explain the misuse (%q)", name, stderr, tc.diag)
		}
		if !strings.Contains(stderr, tc.usage) {
			t.Errorf("%s: stderr does not include usage (%q):\n%s", name, tc.usage, stderr)
		}
		if n := strings.Count(stderr, tc.diag); n != 1 {
			t.Errorf("%s: diagnostic printed %d times, want once:\n%s", name, n, stderr)
		}
		if stdout != "" {
			t.Errorf("%s: misuse wrote to stdout: %q", name, stdout)
		}
	}
}

func TestCLIHelp(t *testing.T) {
	code, stdout, _ := runCLI("help")
	if code != 0 || !strings.Contains(stdout, "Subcommands:") {
		t.Errorf("help: exit %d, stdout %q", code, stdout)
	}
	// -h on a subcommand prints the flag listing and exits 0.
	code, _, stderr := runCLI("plan", "-h")
	if code != 0 || !strings.Contains(stderr, "-model") {
		t.Errorf("plan -h: exit %d, stderr %q", code, stderr)
	}
}

func TestCLIRuntimeFailureExitsOne(t *testing.T) {
	code, _, stderr := runCLI("eval", filepath.Join(t.TempDir(), "missing.json"))
	if code != 1 {
		t.Errorf("eval of a missing file: exit %d, want 1", code)
	}
	if strings.Contains(stderr, "Subcommands:") {
		t.Error("runtime failure printed usage (reserved for misuse)")
	}
	if code, _, _ := runCLI("plan", "-model", "nope", "-devices", "4"); code != 1 {
		t.Errorf("unknown model: exit %d, want 1", code)
	}
}

var fingerprintLine = regexp.MustCompile(`(?m)^fingerprint ([0-9a-f]{64})$`)

// TestCLIPlanEvalRoundTrip smoke-tests the happy path in-process: plan a
// small model to a file, re-evaluate the artifact, and check that both
// subcommands print the same fingerprint — the identity the planning
// daemon keys its cache on.
func TestCLIPlanEvalRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "plan.json")
	code, planOut, stderr := runCLI("plan", "-model", "case-study", "-devices", "4", "-o", out)
	if code != 0 {
		t.Fatalf("plan: exit %d, stderr %s", code, stderr)
	}
	m := fingerprintLine.FindStringSubmatch(planOut)
	if m == nil {
		t.Fatalf("plan output has no fingerprint line:\n%s", planOut)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("artifact not written: %v", err)
	}

	code, evalOut, stderr := runCLI("eval", out)
	if code != 0 {
		t.Fatalf("eval: exit %d, stderr %s", code, stderr)
	}
	m2 := fingerprintLine.FindStringSubmatch(evalOut)
	if m2 == nil {
		t.Fatalf("eval output has no fingerprint line:\n%s", evalOut)
	}
	if m[1] != m2[1] {
		t.Errorf("plan fingerprint %s != eval fingerprint %s", m[1], m2[1])
	}

	code, compareOut, stderr := runCLI("compare", out)
	if code != 0 || !strings.Contains(compareOut, "case-study") {
		t.Errorf("compare: exit %d, stderr %s\n%s", code, stderr, compareOut)
	}
}

// TestCLISynthMisuse extends the misuse contract to the synth
// subcommand.
func TestCLISynthMisuse(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		diag string
	}{
		"no family or spec":  {[]string{"synth"}, "need -family"},
		"stray synth arg":    {[]string{"synth", "-family", "chain", "stray"}, "unexpected arguments"},
		"bad spec string":    {[]string{"synth", "-spec", "synth:nope/seed=1"}, "unknown family"},
		"unknown synth flag": {[]string{"synth", "-nosuch"}, "-nosuch"},
	} {
		code, stdout, stderr := runCLI(tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
		if !strings.Contains(stderr, tc.diag) {
			t.Errorf("%s: stderr %q does not explain the misuse (%q)", name, stderr, tc.diag)
		}
		if stdout != "" {
			t.Errorf("%s: misuse wrote to stdout: %q", name, stdout)
		}
	}
	// Unknown family through -family (not -spec) is also caught, but at
	// generation time: exit 1, like plan -model nope.
	if code, _, _ := runCLI("synth", "-family", "nope", "-seed", "1"); code != 1 {
		t.Errorf("unknown family: exit %d, want 1", code)
	}
}

// TestCLISynthReplayByteIdentical pins the subcommand's replay
// contract: the same seed reproduces the model byte for byte, whether
// spelled as -family/-seed knobs or as the resolved -spec string, and
// the printed spec is the resolved canonical form.
func TestCLISynthReplayByteIdentical(t *testing.T) {
	code, first, stderr := runCLI("synth", "-family", "skew", "-seed", "7", "-describe", "-dump")
	if code != 0 {
		t.Fatalf("synth: exit %d, stderr %s", code, stderr)
	}
	code, again, _ := runCLI("synth", "-family", "skew", "-seed", "7", "-describe", "-dump")
	if code != 0 || first != again {
		t.Fatalf("synth output not reproducible by seed:\n%s\nvs\n%s", first, again)
	}

	specLine := regexp.MustCompile(`(?m)^spec       (synth:\S+)$`).FindStringSubmatch(first)
	if specLine == nil {
		t.Fatalf("no spec line in output:\n%s", first)
	}
	code, replay, _ := runCLI("synth", "-spec", specLine[1], "-describe", "-dump")
	if code != 0 || replay != first {
		t.Fatalf("replaying the printed spec diverged:\n%s\nvs\n%s", replay, first)
	}
	if !strings.Contains(first, "hash       ") {
		t.Errorf("output has no graph content hash:\n%s", first)
	}
}

// TestCLISynthSpecFile pins -o: the written JSON spec decodes to the
// resolved spec.
func TestCLISynthSpecFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "spec.json")
	code, stdout, stderr := runCLI("synth", "-family", "nested", "-seed", "3", "-o", out)
	if code != 0 {
		t.Fatalf("synth -o: exit %d, stderr %s", code, stderr)
	}
	if !strings.Contains(stdout, out) {
		t.Errorf("output does not confirm the spec file: %q", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := synth.DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Family != "nested" || spec.Seed != 3 || spec.Nesting == 0 {
		t.Errorf("spec file not resolved: %+v", spec)
	}
}

// TestCLIPlanSynthModel plans a synthetic model end to end — the
// "synth: specs are first-class model names" contract — and replays
// the persisted artifact, which rebuilds the graph from the spec
// string in its metadata.
func TestCLIPlanSynthModel(t *testing.T) {
	out := filepath.Join(t.TempDir(), "plan.json")
	code, planOut, stderr := runCLI("plan", "-model", "synth:fanout/seed=5", "-devices", "4", "-o", out)
	if code != 0 {
		t.Fatalf("plan synth: exit %d, stderr %s", code, stderr)
	}
	if fingerprintLine.FindStringSubmatch(planOut) == nil {
		t.Fatalf("no fingerprint line:\n%s", planOut)
	}
	code, evalOut, stderr := runCLI("eval", out)
	if code != 0 {
		t.Fatalf("eval synth artifact: exit %d, stderr %s", code, stderr)
	}
	if !strings.Contains(evalOut, "synth:fanout/seed=5") {
		t.Errorf("eval does not name the synth model:\n%s", evalOut)
	}
}

// TestCLIWarmMemo walks the -warm-memo loop: the first plan writes the
// snapshot file cold, an elastic replan at fewer devices warm-starts
// from it with the identical strategy a plain cold run produces, and a
// corrupted file degrades to a cold plan with a warning, never an error.
func TestCLIWarmMemo(t *testing.T) {
	memo := filepath.Join(t.TempDir(), "mmt.memo")
	outWarm := filepath.Join(t.TempDir(), "warm.json")
	outCold := filepath.Join(t.TempDir(), "cold.json")

	code, planOut, stderr := runCLI("plan", "-model", "mmt", "-devices", "4", "-batch", "64", "-warm-memo", memo)
	if code != 0 {
		t.Fatalf("first plan: exit %d, stderr %s", code, stderr)
	}
	if !strings.Contains(planOut, "memo       cold") {
		t.Errorf("first plan should report a cold memo:\n%s", planOut)
	}
	if _, err := os.Stat(memo); err != nil {
		t.Fatalf("memo file not written: %v", err)
	}

	// Elastic replan at half the devices, same graph and mini-batch.
	code, planOut, stderr = runCLI("plan", "-model", "mmt", "-devices", "2", "-batch", "64",
		"-warm-memo", memo, "-o", outWarm)
	if code != 0 {
		t.Fatalf("warm replan: exit %d, stderr %s", code, stderr)
	}
	if !regexp.MustCompile(`memo       warm \([1-9]\d* entries reused\)`).MatchString(planOut) {
		t.Errorf("replan should report a warm start with reused entries:\n%s", planOut)
	}

	code, _, stderr = runCLI("plan", "-model", "mmt", "-devices", "2", "-batch", "64", "-o", outCold)
	if code != 0 {
		t.Fatalf("cold control plan: exit %d, stderr %s", code, stderr)
	}
	warmArt, err := os.ReadFile(outWarm)
	if err != nil {
		t.Fatal(err)
	}
	coldArt, err := os.ReadFile(outCold)
	if err != nil {
		t.Fatal(err)
	}
	// Provenance (search seconds, warm stats) differs; the strategies must
	// not. Compare from the "strategy" key on.
	cut := func(b []byte) string {
		i := strings.Index(string(b), `"strategy"`)
		if i < 0 {
			t.Fatalf("artifact without strategy section: %s", b)
		}
		return string(b[i:])
	}
	if cut(warmArt) != cut(coldArt) {
		t.Error("warm-started CLI plan produced a different strategy than a cold run")
	}

	// Corrupt the memo file: the plan must still succeed, cold, warn on
	// stderr, and rewrite the file so the next run is warm again.
	if err := os.WriteFile(memo, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, planOut, stderr = runCLI("plan", "-model", "mmt", "-devices", "4", "-batch", "64", "-warm-memo", memo)
	if code != 0 {
		t.Fatalf("plan with corrupt memo: exit %d, stderr %s", code, stderr)
	}
	if !strings.Contains(planOut, "memo       cold") {
		t.Errorf("corrupt memo should plan cold:\n%s", planOut)
	}
	if !strings.Contains(stderr, "ignoring") {
		t.Errorf("corrupt memo should warn on stderr, got: %q", stderr)
	}
	code, planOut, _ = runCLI("plan", "-model", "mmt", "-devices", "4", "-batch", "64", "-warm-memo", memo)
	if code != 0 || !strings.Contains(planOut, "memo       warm") {
		t.Errorf("rewritten memo should warm the next run (exit %d):\n%s", code, planOut)
	}
}
