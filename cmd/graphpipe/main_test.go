package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runCLI drives the dispatcher exactly like main does, capturing both
// streams and the exit code.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestCLIMisuse pins the contract the misuse paths share: non-zero exit
// (2, distinguishing misuse from runtime failure), a diagnostic on
// stderr, and the usage text so the caller learns the valid spellings.
func TestCLIMisuse(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		diag string // must appear on stderr
		// usage selects which help text accompanies the diagnostic: the
		// top-level subcommand listing, or (for flag-parse errors, where
		// the flag set prints its own flag listing exactly once) the
		// subcommand's flags.
		usage string
	}{
		"no subcommand":        {nil, "missing subcommand", "Subcommands:"},
		"unknown subcommand":   {[]string{"bogus"}, `unknown subcommand "bogus"`, "Subcommands:"},
		"unknown plan flag":    {[]string{"plan", "-nosuch"}, "-nosuch", "-model"},
		"stray plan arg":       {[]string{"plan", "stray"}, "unexpected arguments", "Subcommands:"},
		"eval without file":    {[]string{"eval"}, "want exactly one artifact file", "Subcommands:"},
		"eval two files":       {[]string{"eval", "a.json", "b.json"}, "want exactly one artifact file", "Subcommands:"},
		"unknown eval flag":    {[]string{"eval", "-nosuch", "a.json"}, "-nosuch", "-backend"},
		"compare without file": {[]string{"compare"}, "at least one artifact file", "Subcommands:"},
		"unknown compare flag": {[]string{"compare", "-nosuch"}, "-nosuch", "-backend"},
	} {
		code, stdout, stderr := runCLI(tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
		if !strings.Contains(stderr, tc.diag) {
			t.Errorf("%s: stderr %q does not explain the misuse (%q)", name, stderr, tc.diag)
		}
		if !strings.Contains(stderr, tc.usage) {
			t.Errorf("%s: stderr does not include usage (%q):\n%s", name, tc.usage, stderr)
		}
		if n := strings.Count(stderr, tc.diag); n != 1 {
			t.Errorf("%s: diagnostic printed %d times, want once:\n%s", name, n, stderr)
		}
		if stdout != "" {
			t.Errorf("%s: misuse wrote to stdout: %q", name, stdout)
		}
	}
}

func TestCLIHelp(t *testing.T) {
	code, stdout, _ := runCLI("help")
	if code != 0 || !strings.Contains(stdout, "Subcommands:") {
		t.Errorf("help: exit %d, stdout %q", code, stdout)
	}
	// -h on a subcommand prints the flag listing and exits 0.
	code, _, stderr := runCLI("plan", "-h")
	if code != 0 || !strings.Contains(stderr, "-model") {
		t.Errorf("plan -h: exit %d, stderr %q", code, stderr)
	}
}

func TestCLIRuntimeFailureExitsOne(t *testing.T) {
	code, _, stderr := runCLI("eval", filepath.Join(t.TempDir(), "missing.json"))
	if code != 1 {
		t.Errorf("eval of a missing file: exit %d, want 1", code)
	}
	if strings.Contains(stderr, "Subcommands:") {
		t.Error("runtime failure printed usage (reserved for misuse)")
	}
	if code, _, _ := runCLI("plan", "-model", "nope", "-devices", "4"); code != 1 {
		t.Errorf("unknown model: exit %d, want 1", code)
	}
}

var fingerprintLine = regexp.MustCompile(`(?m)^fingerprint ([0-9a-f]{64})$`)

// TestCLIPlanEvalRoundTrip smoke-tests the happy path in-process: plan a
// small model to a file, re-evaluate the artifact, and check that both
// subcommands print the same fingerprint — the identity the planning
// daemon keys its cache on.
func TestCLIPlanEvalRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "plan.json")
	code, planOut, stderr := runCLI("plan", "-model", "case-study", "-devices", "4", "-o", out)
	if code != 0 {
		t.Fatalf("plan: exit %d, stderr %s", code, stderr)
	}
	m := fingerprintLine.FindStringSubmatch(planOut)
	if m == nil {
		t.Fatalf("plan output has no fingerprint line:\n%s", planOut)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("artifact not written: %v", err)
	}

	code, evalOut, stderr := runCLI("eval", out)
	if code != 0 {
		t.Fatalf("eval: exit %d, stderr %s", code, stderr)
	}
	m2 := fingerprintLine.FindStringSubmatch(evalOut)
	if m2 == nil {
		t.Fatalf("eval output has no fingerprint line:\n%s", evalOut)
	}
	if m[1] != m2[1] {
		t.Errorf("plan fingerprint %s != eval fingerprint %s", m[1], m2[1])
	}

	code, compareOut, stderr := runCLI("compare", out)
	if code != 0 || !strings.Contains(compareOut, "case-study") {
		t.Errorf("compare: exit %d, stderr %s\n%s", code, stderr, compareOut)
	}
}
