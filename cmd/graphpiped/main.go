// Command graphpiped is the long-running planning daemon: the HTTP face
// of internal/service. Where `graphpipe plan` answers one planning
// question per process, graphpiped keeps a two-tier plan cache (memory
// LRU + on-disk artifact store), deduplicates concurrent identical
// requests, and bounds how many planner searches run at once — the shape
// a planning layer needs to sit in front of real traffic.
//
//	graphpiped -addr :8787 -cache-dir /var/cache/graphpipe
//
//	curl -s localhost:8787/v1/plan -d '{"model":"mmt","devices":8}'
//	curl -s localhost:8787/v1/eval -d '{"model":"mmt","devices":8,"backend":"runtime"}'
//	curl -s localhost:8787/v1/artifacts/<fingerprint>
//	curl -s localhost:8787/v1/stats
//
// Plan responses carry X-Graphpipe-Fingerprint and X-Graphpipe-Cache
// headers ("miss", "shared", "hit-memory", "hit-disk", "hit-peer"). With
// -self and -peers the daemon joins a fleet ring (see internal/fleet and
// cmd/graphpipe-lb): local cache misses consult the owning peers before
// paying for a cold search, and memo snapshots are offered to the peers
// owning neighboring device counts. The on-disk store
// holds one CLI-compatible artifact per fingerprint: `graphpipe eval
// <cache-dir>/<fingerprint>.json` replays any plan the daemon ever made.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops accepting,
// in-flight requests (including running planner searches) drain, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphpipe/internal/faultinject"
	"graphpipe/internal/fleet"
	"graphpipe/internal/obs"
	"graphpipe/internal/service"

	_ "graphpipe/internal/eval/all"    // register the built-in backends
	_ "graphpipe/internal/planner/all" // register the built-in planners
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stderr, nil, sigs); err != nil {
		fmt.Fprintln(os.Stderr, "graphpiped:", err)
		os.Exit(1)
	}
}

// run is the daemon body, factored so the end-to-end test can drive it:
// it serves on the resolved listen address (reported through ready, for
// ephemeral ports), blocks until a signal arrives on sigs, then drains —
// http.Server.Shutdown waits out in-flight requests and service.Close
// waits out admitted planner jobs — before returning.
func run(args []string, logw io.Writer, ready chan<- string, sigs <-chan os.Signal) error {
	fs := flag.NewFlagSet("graphpiped", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr           = fs.String("addr", ":8787", "listen address (host:port; port 0 picks one)")
		dir            = fs.String("cache-dir", "", "on-disk artifact store; empty disables the disk tier")
		mem            = fs.Int("mem-entries", 0, "in-memory plan cache capacity in entries (0: default 256)")
		workers        = fs.Int("workers", 0, "concurrent planner searches (0: one per CPU)")
		queue          = fs.Int("queue", 0, "planning queue depth before 429s (0: default 64)")
		plannerWorkers = fs.Int("planner-workers", 0,
			"worker pool inside each planner search (0: default 1; see internal/service.Config)")
		memoSnapshots = fs.Int("memo-snapshots", 0,
			"DP memo snapshots kept for warm-start planning (0: default 64; negative disables)")
		self = fs.String("self", "",
			"this daemon's base URL as the fleet ring knows it (enables peer cache-fill with -peers)")
		peers = fs.String("peers", "",
			"comma-separated base URLs of every fleet member, this one included (the shared ring)")
		ringReplicas = fs.Int("ring-replicas", 0,
			"virtual nodes per backend on the hash ring (0: default 64; must match graphpipe-lb's)")
		offerMemos = fs.Bool("offer-memos", true,
			"offer DP memo snapshots to ring peers owning neighboring device counts (needs -self/-peers)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second,
			"how long shutdown waits for in-flight requests before aborting them")
		faultSpec = fs.String("fault-spec", os.Getenv("GRAPHPIPE_FAULT_SPEC"),
			"deterministic fault injection spec, e.g. 'seed=42;http.drop=0.1;disk.read-corrupt=0.2' "+
				"(default $GRAPHPIPE_FAULT_SPEC; empty disables; see internal/faultinject)")
		instance = fs.String("instance", "",
			"process name stamped into trace/span IDs and span logs (default \"graphpiped\")")
		traceLog = fs.String("trace-log", "",
			"append one JSON line per request trace (the full span tree) to this file; empty disables")
		debugAddr = fs.String("debug-addr", "",
			"serve net/http/pprof on this separate listener (e.g. localhost:6060); empty disables")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// -h printed the flag listing; that is success, not failure.
			return nil
		}
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	faults, err := faultinject.Parse(*faultSpec)
	if err != nil {
		return err
	}
	if faults != nil {
		fmt.Fprintf(logw, "graphpiped: fault injection active: %s\n", faults)
	}
	cfg := service.Config{
		CacheDir:       *dir,
		MemoryEntries:  *mem,
		Workers:        *workers,
		QueueDepth:     *queue,
		PlannerWorkers: *plannerWorkers,
		MemoSnapshots:  *memoSnapshots,
		Faults:         faults,
		Instance:       *instance,
	}
	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-trace-log: %w", err)
		}
		defer f.Close()
		cfg.TraceLog = f
	}
	if *peers != "" {
		var urls []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				urls = append(urls, strings.TrimRight(p, "/"))
			}
		}
		if *self == "" {
			return fmt.Errorf("-peers requires -self (this daemon's URL on the ring)")
		}
		ring, err := fleet.NewRing(urls, *ringReplicas)
		if err != nil {
			return err
		}
		cfg.Peers = &service.PeerConfig{
			Self:       strings.TrimRight(*self, "/"),
			Backends:   urls,
			Ranker:     ring,
			OfferMemos: *offerMemos,
		}
	}
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	dbg, err := obs.StartDebugServer(*debugAddr)
	if err != nil {
		svc.Close()
		return fmt.Errorf("-debug-addr: %w", err)
	}
	defer dbg.Close()
	if dbg != nil {
		fmt.Fprintf(logw, "graphpiped: pprof on %s\n", dbg.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		svc.Close()
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(logw, "graphpiped: listening on %s (cache-dir %q)\n", ln.Addr(), *dir)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Fprintf(logw, "graphpiped: %v, draining\n", sig)
	case err := <-serveErr:
		return err // listener died without a signal
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	svc.Close()
	fmt.Fprintln(logw, "graphpiped: drained, bye")
	return nil
}
