package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
	"graphpipe/internal/planner"
	"graphpipe/internal/service"
	"graphpipe/internal/strategy"
)

// slowPlanner wraps the real graphpipe planner, announcing when a search
// has started and holding it until released — the drain test's handle on
// "a request is in flight right now".
type slowPlanner struct {
	mu      sync.Mutex
	started chan struct{}
	release chan struct{}
}

var slow = &slowPlanner{}

func init() { planner.Register(slow) }

func (p *slowPlanner) Name() string { return "e2e-slow" }

func (p *slowPlanner) arm() (started, release chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.started = make(chan struct{})
	p.release = make(chan struct{})
	return p.started, p.release
}

func (p *slowPlanner) Plan(g *graph.Graph, topo *cluster.Topology, miniBatch int, opts planner.Options) (*strategy.Strategy, planner.Stats, error) {
	p.mu.Lock()
	started, release := p.started, p.release
	p.mu.Unlock()
	if started != nil {
		close(started)
		<-release
	}
	real, err := planner.Get("graphpipe")
	if err != nil {
		return nil, planner.Stats{}, err
	}
	return real.Plan(g, topo, miniBatch, opts)
}

// daemon starts run() on an ephemeral port and returns the base URL, the
// signal channel that stands in for process signals, and a channel
// carrying run's eventual return.
func daemon(t *testing.T, args ...string) (url string, sigs chan os.Signal, exited chan error) {
	t.Helper()
	sigs = make(chan os.Signal, 1)
	ready := make(chan string, 1)
	exited = make(chan error, 1)
	go func() {
		exited <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), io.Discard, ready, sigs)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, sigs, exited
	case err := <-exited:
		t.Fatalf("daemon exited before listening: %v", err)
		return "", nil, nil
	}
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestDaemonEndToEnd walks the daemon through its whole life: cold plan,
// warm re-plan (byte-identical, cache header), eval, stats, then a
// SIGTERM arriving while a planner search is in flight — the daemon must
// finish that request before exiting, and its disk cache must warm a
// successor daemon.
func TestDaemonEndToEnd(t *testing.T) {
	cacheDir := t.TempDir()
	url, sigs, exited := daemon(t, "-cache-dir", cacheDir, "-workers", "2")

	body := `{"model":"case-study","devices":4}`
	cold, coldData := postJSON(t, url+"/v1/plan", body)
	if cold.StatusCode != http.StatusOK || cold.Header.Get(service.HeaderCache) != "miss" {
		t.Fatalf("cold plan: %d cache=%q %s", cold.StatusCode, cold.Header.Get(service.HeaderCache), coldData)
	}
	fp := cold.Header.Get(service.HeaderFingerprint)

	warm, warmData := postJSON(t, url+"/v1/plan", body)
	if warm.Header.Get(service.HeaderCache) != "hit-memory" {
		t.Errorf("warm plan cache = %q", warm.Header.Get(service.HeaderCache))
	}
	if !bytes.Equal(warmData, coldData) {
		t.Error("warm response not byte-identical to cold response")
	}

	evalResp, evalData := postJSON(t, url+"/v1/eval", `{"fingerprint":"`+fp+`","backend":"sim"}`)
	if evalResp.StatusCode != http.StatusOK {
		t.Fatalf("eval: %d %s", evalResp.StatusCode, evalData)
	}
	var eval service.EvalResult
	if err := json.Unmarshal(evalData, &eval); err != nil || eval.Throughput <= 0 {
		t.Errorf("eval result %s: %v", evalData, err)
	}

	// The disk tier must hold a CLI-compatible artifact under the
	// fingerprint the header reported.
	if data, err := os.ReadFile(filepath.Join(cacheDir, fp+".json")); err != nil || !bytes.Equal(data, coldData) {
		t.Errorf("disk artifact missing or differs: %v", err)
	}

	// Drain: park a search inside the planner, deliver SIGTERM, then
	// release. The in-flight request must complete with 200 and the
	// daemon must not exit before it does.
	started, release := slow.arm()
	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/plan", "application/json",
			strings.NewReader(`{"model":"case-study","devices":4,"planner":"e2e-slow"}`))
		if err != nil {
			slowDone <- -1
			return
		}
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	<-started
	sigs <- syscall.SIGTERM
	select {
	case err := <-exited:
		t.Fatalf("daemon exited while a request was in flight (err %v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if code := <-slowDone; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d", code)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after draining")
	}

	// A successor daemon over the same cache dir answers warm from disk —
	// the plan outlived the process that computed it.
	url2, sigs2, exited2 := daemon(t, "-cache-dir", cacheDir)
	resp2, data2 := postJSON(t, url2+"/v1/plan", body)
	if resp2.Header.Get(service.HeaderCache) != "hit-disk" {
		t.Errorf("restarted daemon cache = %q, want hit-disk", resp2.Header.Get(service.HeaderCache))
	}
	if !bytes.Equal(data2, coldData) {
		t.Error("restarted daemon served different bytes")
	}
	sigs2 <- syscall.SIGTERM
	if err := <-exited2; err != nil {
		t.Fatalf("second daemon exit: %v", err)
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nosuch"}, io.Discard, nil, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-h"}, io.Discard, nil, nil); err != nil {
		t.Errorf("-h is not a failure: %v", err)
	}
	if err := run([]string{"stray"}, io.Discard, nil, nil); err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Errorf("stray argument: err = %v", err)
	}
	if err := run([]string{"-addr", "999.999.999.999:1"}, io.Discard, nil, nil); err == nil {
		t.Error("unlistenable address accepted")
	}
}
