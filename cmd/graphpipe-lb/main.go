// Command graphpipe-lb is the planning fleet's router: it consistent-
// hashes each request's canonical fingerprint across a set of graphpiped
// backends and forwards /v1/plan, /v1/eval, and /v1/artifacts/{fp} to
// the owning shard, so every distinct planning question has one home and
// the fleet's aggregate cache is (nearly) the sum of its shards.
//
//	graphpipe-lb -addr :7100 \
//	    -backends http://10.0.0.1:8787,http://10.0.0.2:8787,http://10.0.0.3:8787
//
// Routing is bounded-load consistent hashing: an overloaded shard spills
// its next requests to the following ring replica instead of queueing
// behind the hot spot. Backends that stop answering are marked down and
// skipped until a (jittered) health probe sees them again; each backend
// sits behind a circuit breaker that opens after repeated failures and
// re-closes via half-open trial traffic; 429s are retried on the same
// backend after honoring its Retry-After (or bounded deterministic
// backoff without one). Requests carry an end-to-end time budget
// (X-Graphpipe-Budget-Ms, or -default-budget) forwarded hop by hop, 200
// plan/artifact bodies are re-verified against their fingerprint before
// relaying (a corrupt answer fails over, never reaches a client), and
// artifact reads can hedge to a second replica (-hedge-delay). GET
// /v1/stats returns every shard's snapshot, their field-wise sum, and
// the router's own forwarding counters, breaker states included.
//
// SIGINT/SIGTERM drain in-flight proxied requests before exiting, same
// as graphpiped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphpipe/internal/faultinject"
	"graphpipe/internal/fleet"
	"graphpipe/internal/obs"

	// Route keys come from service.Request canonicalization, which
	// validates planner names against the registry — the router must
	// know the same planners the daemons do.
	_ "graphpipe/internal/planner/all"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stderr, nil, sigs); err != nil {
		fmt.Fprintln(os.Stderr, "graphpipe-lb:", err)
		os.Exit(1)
	}
}

// run is the router body, factored like graphpiped's so a test can
// drive it end to end: serve, report the resolved address through
// ready, block for a signal, drain, exit.
func run(args []string, logw io.Writer, ready chan<- string, sigs <-chan os.Signal) error {
	fs := flag.NewFlagSet("graphpipe-lb", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr     = fs.String("addr", ":7100", "listen address (host:port; port 0 picks one)")
		backends = fs.String("backends", "", "comma-separated graphpiped base URLs (required)")
		replicas = fs.Int("ring-replicas", 0,
			"virtual nodes per backend on the hash ring (0: default 64; must match the daemons' -ring-replicas)")
		loadFactor = fs.Float64("load-factor", 1.25,
			"bounded-load factor c: spill past a backend above c times the mean in-flight load (<= 0 disables)")
		retryShed = fs.Int("retry-shed", 1,
			"retries of a 429 on the same backend, honoring its Retry-After (negative disables)")
		maxRetryAfter = fs.Duration("max-retry-after", 2*time.Second,
			"cap on how long one shed retry waits, whatever the backend asks for")
		healthInterval = fs.Duration("health-interval", 2*time.Second,
			"active health-check period, jittered ±25% per round (negative disables the probe loop)")
		probeJitterSeed = fs.Int64("probe-jitter-seed", 0,
			"seed for health-probe jitter (0: derived from the PID so co-started routers decorrelate)")
		breakerThreshold = fs.Int("breaker-threshold", 0,
			"consecutive failures that open a backend's circuit breaker (0: default 5)")
		breakerOpenFor = fs.Duration("breaker-open-for", 0,
			"how long an open breaker rejects before half-open trial traffic (0: default 5s)")
		defaultBudget = fs.Duration("default-budget", 0,
			"end-to-end deadline stamped on requests without X-Graphpipe-Budget-Ms (0: none)")
		verifyArtifacts = fs.Bool("verify-artifacts", true,
			"re-verify 200 plan/artifact bodies against their fingerprint before relaying; "+
				"corrupt answers fail over to the next replica")
		hedgeDelay = fs.Duration("hedge-delay", 0,
			"launch a second artifact read at the next replica after this delay (0 disables hedging)")
		faultSpec = fs.String("fault-spec", os.Getenv("GRAPHPIPE_FAULT_SPEC"),
			"deterministic fault injection spec for the backend client, e.g. 'seed=42;http.drop=0.1' "+
				"(default $GRAPHPIPE_FAULT_SPEC; empty disables; see internal/faultinject)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second,
			"how long shutdown waits for in-flight requests before aborting them")
		instance = fs.String("instance", "",
			"process name stamped into trace/span IDs and span logs (default \"graphpipe-lb\")")
		traceLog = fs.String("trace-log", "",
			"append one JSON line per request trace (the full span tree) to this file; empty disables")
		debugAddr = fs.String("debug-addr", "",
			"serve net/http/pprof on this separate listener (e.g. localhost:6061); empty disables")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, strings.TrimRight(b, "/"))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("-backends is required (comma-separated graphpiped URLs)")
	}

	faults, err := faultinject.Parse(*faultSpec)
	if err != nil {
		return err
	}
	if faults != nil {
		fmt.Fprintf(logw, "graphpipe-lb: fault injection active: %s\n", faults)
	}

	rcfg := fleet.RouterConfig{
		Backends:       urls,
		Replicas:       *replicas,
		LoadFactor:     *loadFactor,
		RetryShed:      *retryShed,
		MaxRetryAfter:  *maxRetryAfter,
		HealthInterval: *healthInterval,
		JitterSeed:     *probeJitterSeed,
		Breaker: fleet.BreakerConfig{
			FailureThreshold: *breakerThreshold,
			OpenFor:          *breakerOpenFor,
		},
		DefaultBudget:   *defaultBudget,
		VerifyArtifacts: *verifyArtifacts,
		HedgeDelay:      *hedgeDelay,
		Faults:          faults,
		Instance:        *instance,
	}
	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-trace-log: %w", err)
		}
		defer f.Close()
		rcfg.TraceLog = f
	}
	router, err := fleet.NewRouter(rcfg)
	if err != nil {
		return err
	}
	dbg, err := obs.StartDebugServer(*debugAddr)
	if err != nil {
		router.Close()
		return fmt.Errorf("-debug-addr: %w", err)
	}
	defer dbg.Close()
	if dbg != nil {
		fmt.Fprintf(logw, "graphpipe-lb: pprof on %s\n", dbg.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		router.Close()
		return err
	}
	srv := &http.Server{Handler: router.Handler()}
	fmt.Fprintf(logw, "graphpipe-lb: listening on %s, %d backends\n", ln.Addr(), len(urls))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Fprintf(logw, "graphpipe-lb: %v, draining\n", sig)
	case err := <-serveErr:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	router.Close()
	fmt.Fprintln(logw, "graphpipe-lb: drained, bye")
	return nil
}
