// Command experiments regenerates the paper's tables and figures (§7).
//
// Usage:
//
//	experiments all                 # everything (slow: includes Piper)
//	experiments fig6 [model]        # end-to-end throughput (6a/6b/6c)
//	experiments table1              # planner search times
//	experiments fig7-branches       # throughput vs branch count
//	experiments fig7-micro          # throughput vs fixed micro-batch size
//	experiments fig8                # case study schedules
//	experiments fig9                # ablation
//	experiments a3                  # sequential-model parity
//	experiments planners            # list the registered planners
//
// Each experiment prints a CSV table (and, for fig8, the pipeline gantt
// charts); EXPERIMENTS.md records a captured run. The experiment grids
// resolve planners through the graphpipe/internal/planner registry and
// fan out across CPUs with deterministic row ordering.
package main

import (
	"fmt"
	"os"

	"graphpipe/internal/experiments"
	"graphpipe/internal/planner"
)

func main() {
	what := "all"
	if len(os.Args) > 1 {
		what = os.Args[1]
	}
	var err error
	switch what {
	case "all":
		err = runAll()
	case "fig6":
		model := ""
		if len(os.Args) > 2 {
			model = os.Args[2]
		}
		err = runFig6(model)
	case "table1":
		err = runTable1()
	case "fig7-branches":
		err = runFig7Branches()
	case "fig7-micro":
		err = runFig7Micro()
	case "fig8":
		err = runFig8()
	case "fig9":
		err = runFig9()
	case "a3":
		err = runA3()
	case "planners":
		for _, name := range planner.Names() {
			fmt.Println(name)
		}
	default:
		err = fmt.Errorf("unknown experiment %q", what)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func runAll() error {
	for _, f := range []func() error{
		func() error { return runFig6("") },
		runTable1,
		runFig7Branches,
		runFig7Micro,
		runFig8,
		runFig9,
		runA3,
	} {
		if err := f(); err != nil {
			return err
		}
	}
	return nil
}

func runFig6(model string) error {
	modelsToRun := []string{"mmt", "dlrm", "candle-uno"}
	if model != "" {
		modelsToRun = []string{model}
	}
	for _, m := range modelsToRun {
		fmt.Printf("== Figure 6: end-to-end throughput, %s ==\n", m)
		res, err := experiments.Fig6(m, experiments.Systems)
		if err != nil {
			return err
		}
		fmt.Print(res.CSV(experiments.Systems).String())
		fmt.Println()
	}
	return nil
}

func runTable1() error {
	fmt.Println("== Table 1: planner search times (seconds) ==")
	res, err := experiments.Table1(experiments.Systems)
	if err != nil {
		return err
	}
	fmt.Print(res.CSV(experiments.Systems).String())
	fmt.Println()
	return nil
}

func runFig7Branches() error {
	fmt.Println("== Figure 7 (left): throughput vs parallel branches, CANDLE-Uno ==")
	rows, err := experiments.Fig7Branches(nil, nil, 0)
	if err != nil {
		return err
	}
	fmt.Print(experiments.Fig7BranchesCSV(rows).String())
	fmt.Println()
	return nil
}

func runFig7Micro() error {
	fmt.Println("== Figure 7 (right): throughput vs fixed micro-batch size, 4-branch MMT, 8 GPUs, B=128 ==")
	rows, err := experiments.Fig7MicroBatch(nil)
	if err != nil {
		return err
	}
	fmt.Print(experiments.Fig7MicroBatchCSV(rows).String())
	fmt.Println()
	return nil
}

func runFig8() error {
	fmt.Println("== Figure 8 / §7.5: case study ==")
	res, err := experiments.CaseStudy(0)
	if err != nil {
		return err
	}
	fmt.Print(res.Report())
	fmt.Println()
	return nil
}

func runFig9() error {
	fmt.Println("== Figure 9: ablation at 32 GPUs ==")
	rows, err := experiments.Fig9()
	if err != nil {
		return err
	}
	fmt.Print(experiments.Fig9CSV(rows).String())
	fmt.Println()
	return nil
}

func runA3() error {
	fmt.Println("== Appendix A.3: sequential Transformer parity ==")
	rows, err := experiments.A3Sequential(experiments.Systems)
	if err != nil {
		return err
	}
	fmt.Print(experiments.A3CSV(rows, experiments.Systems).String())
	fmt.Println()
	return nil
}
