// Command fleetgen replays a Zipf-skewed synthetic planning workload
// against a planning endpoint — a graphpipe-lb router or a single
// graphpiped — and reports fleet-level latency percentiles, per-tier
// cache hit ratios, peer-fill counts, and shed rates.
//
// The workload is deterministic in -seed: the same flags replay the
// identical request sequence against any fleet, which is what makes
// before/after comparisons across topology changes meaningful. Output
// goes two ways at once: a `go test -bench`-style line on stdout for
// cmd/benchreport ingestion, and (with -o) the full reduced result as
// JSON. Assertion flags (-min-hit-ratio, -max-errors) turn a replay
// into a smoke gate: scripts/fleet_smoke.sh uses them to fail CI when
// the caches stop absorbing the hot head.
//
// Example — 2000 requests, Zipf 1.2, over a 48-question population:
//
//	fleetgen -target http://127.0.0.1:7100 -requests 2000 -zipf 1.2 \
//	    -population 48 -concurrency 16 | benchreport -label fleet -o BENCH.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"graphpipe/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		target      = flag.String("target", "http://127.0.0.1:7100", "base URL of the router or daemon to load")
		requests    = flag.Int("requests", 1000, "number of requests to replay")
		concurrency = flag.Int("concurrency", 8, "concurrent replay workers")
		zipfS       = flag.Float64("zipf", 1.1, "popularity skew exponent (0 = uniform)")
		population  = flag.Int("population", 32, "distinct planning questions in the workload")
		families    = flag.String("families", "", "comma-separated synth families to draw from (default: all)")
		devices     = flag.String("devices", "2,3,4", "comma-separated device-count ladder")
		planner     = flag.String("planner", "graphpipe", "planner every request asks for")
		seed        = flag.Int64("seed", 1, "workload seed: population and request sequence derive from it")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		out         = flag.String("o", "", "also write the full result as JSON to this file")
		budgetMs    = flag.Int("budget-ms", 0, "stamp every request with this end-to-end budget in ms (0: none)")
		pace        = flag.Duration("pace", 0, "per-worker sleep between requests (0: replay flat out)")
		verifyPlans = flag.Bool("verify-plans", false,
			"track a content hash per fingerprint and count 200s whose bytes differ (byte-identity check)")
		traceSample = flag.Int("trace-sample", 0,
			"trace every Nth request (?trace=1 + deterministic trace IDs) and report the slow tail's "+
				"phase attribution — queue vs search vs network (0 disables)")
		minHitRatio  = flag.Float64("min-hit-ratio", -1, "fail unless the warm hit ratio reaches this (smoke gate; -1 disables)")
		maxErrors    = flag.Int("max-errors", -1, "fail if more than this many requests errored (-1 disables)")
		maxErrorRate = flag.Float64("max-error-rate", -1,
			"fail if (errors + deadline expiries) / requests exceeds this (chaos gate; -1 disables)")
	)
	flag.Parse()

	devs, err := parseDevices(*devices)
	if err != nil {
		return err
	}
	var fams []string
	if *families != "" {
		fams = strings.Split(*families, ",")
	}

	res, err := loadgen.Run(loadgen.Config{
		Target:      *target,
		Requests:    *requests,
		Concurrency: *concurrency,
		ZipfS:       *zipfS,
		Population:  *population,
		Families:    fams,
		Devices:     devs,
		Planner:     *planner,
		Seed:        *seed,
		BudgetMs:    *budgetMs,
		VerifyPlans: *verifyPlans,
		Pace:        *pace,
		TraceSample: *traceSample,
		Client:      &http.Client{Timeout: *timeout},
	})
	if err != nil {
		return err
	}

	fmt.Println(res.BenchLine())
	fmt.Fprintf(os.Stderr,
		"fleetgen: %d/%d ok (%d shed, %d errors, %d deadline), hit ratio %.3f, %d distinct plans, %d peer fills, %d planned, %d byte mismatches, %d alternate plans, p50 %.4fs p99 %.4fs\n",
		res.Completed, res.Requests, res.Shed, res.Errors, res.DeadlineExceeded, res.HitRatio,
		res.DistinctFingerprints, res.PeerFills, res.Planned, res.ByteMismatches, res.AlternatePlans, res.Overall.P50, res.Overall.P99)
	if p := res.Phases; p != nil && p.Exemplars > 0 {
		fmt.Fprintf(os.Stderr,
			"fleetgen: slow tail (%d traced, %d exemplars): queue %.0f%%, search %.0f%%, cache %.0f%%, peer %.0f%%, network %.0f%%, other %.0f%%\n",
			p.Traced, p.Exemplars, 100*p.QueueShare, 100*p.SearchShare, 100*p.CacheShare,
			100*p.PeerShare, 100*p.NetworkShare, 100*p.OtherShare)
	}

	if *out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}

	// Gates run after the numbers are out, so a failing run still leaves
	// its evidence on stdout and in -o.
	if *minHitRatio >= 0 && res.HitRatio < *minHitRatio {
		return fmt.Errorf("hit ratio %.3f below required %.3f", res.HitRatio, *minHitRatio)
	}
	if *maxErrors >= 0 && res.Errors > *maxErrors {
		return fmt.Errorf("%d request errors exceed allowed %d", res.Errors, *maxErrors)
	}
	if *maxErrorRate >= 0 && res.ErrorRate > *maxErrorRate {
		return fmt.Errorf("error rate %.4f exceeds allowed %.4f", res.ErrorRate, *maxErrorRate)
	}
	if *verifyPlans && res.ByteMismatches > 0 {
		return fmt.Errorf("%d byte mismatches: a cache tier served non-identical bytes for one fingerprint", res.ByteMismatches)
	}
	return nil
}

func parseDevices(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -devices entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-devices is empty")
	}
	return out, nil
}
