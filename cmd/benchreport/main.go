// Command benchreport converts `go test -bench` output into a committed,
// machine-readable performance baseline. It parses the benchmark lines —
// including the custom metrics the harness reports (samples/s, search
// seconds, depths, speedups) — and merges them under a named run label into
// a JSON report, so a repository can track a perf trajectory across PRs:
//
//	go test -run '^$' -bench . -benchtime=1x . | benchreport -label after -o BENCH_PR3.json
//
// Merging is label-wise: writing label "after" into a file that already
// holds a "before" run keeps both, which is how before/after comparisons
// for one change are captured in a single artifact (see scripts/bench.sh).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Run is one captured benchmark sweep.
type Run struct {
	// Captured is the RFC 3339 time the run was recorded.
	Captured string `json:"captured,omitempty"`
	// Note is a free-form description of what the run measures (e.g. the
	// commit or change it was taken against).
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (without the "Benchmark" prefix and
	// -GOMAXPROCS suffix) to its metrics: unit → value, with ns/op included
	// alongside the harness's custom units.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// Report is the top-level artifact: labeled runs, e.g. "before"/"after".
type Report struct {
	Runs map[string]Run `json:"runs"`
}

// cpuSuffix strips the trailing -N GOMAXPROCS marker from benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmarks from `go test -bench` text. Lines that are
// not benchmark results (headers, PASS/ok trailers) are ignored.
func parseBench(lines *bufio.Scanner) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	for lines.Scan() {
		fields := strings.Fields(lines.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := cpuSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), "")
		metrics := make(map[string]float64)
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q: %v", name, fields[i], err)
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 0 {
			out[name] = metrics
		}
	}
	return out, lines.Err()
}

// checkWarm pairs every ReplanWarm* benchmark with its ReplanCold*
// counterpart and fails unless each warm replan beat its cold twin — the
// gate CI's bench-smoke runs so warm-starting cannot silently regress
// into paying for itself. It is an error to ask for the check on input
// that has no pairs: a renamed benchmark must break the gate, not
// vacuously pass it.
func checkWarm(benches map[string]map[string]float64) error {
	pairs := 0
	for name, m := range benches {
		suffix, ok := strings.CutPrefix(name, "ReplanWarm")
		if !ok {
			continue
		}
		cold, ok := benches["ReplanCold"+suffix]
		if !ok {
			return fmt.Errorf("ReplanWarm%s has no ReplanCold%s counterpart", suffix, suffix)
		}
		w, wok := m["replan_warm_s"]
		c, cok := cold["replan_cold_s"]
		if !wok || !cok {
			return fmt.Errorf("Replan pair %q is missing replan_warm_s/replan_cold_s metrics", suffix)
		}
		pairs++
		if w >= c {
			return fmt.Errorf("warm replan regressed on %s: %.3fs warm >= %.3fs cold", suffix, w, c)
		}
		fmt.Fprintf(os.Stderr, "benchreport: %s warm %.3fs vs cold %.3fs (%.2fx)\n", suffix, w, c, w/c)
	}
	if pairs == 0 {
		return fmt.Errorf("-check-warm: no ReplanWarm/ReplanCold pairs in input")
	}
	return nil
}

// checkFleet gates the fleet load-harness numbers: a warm answer from
// the fleet (memory, disk, or peer cache) must beat a cold single-node
// plan's median, or the whole sharding-and-peer-fill apparatus costs
// more than it saves. Like -check-warm, input without the fleet metrics
// is an error — a renamed metric must break the gate, not skip it.
func checkFleet(benches map[string]map[string]float64) error {
	m, ok := benches["FleetGen"]
	if !ok {
		return fmt.Errorf("-check-fleet: no FleetGen benchmark in input")
	}
	warm, wok := m["fleet_warm_p99_s"]
	cold, cok := m["fleet_cold_p50_s"]
	if !wok {
		return fmt.Errorf("-check-fleet: FleetGen reported no fleet_warm_p99_s (no warm requests in the replay?)")
	}
	if !cok {
		return fmt.Errorf("-check-fleet: FleetGen reported no fleet_cold_p50_s (no cold requests in the replay?)")
	}
	if warm >= cold {
		return fmt.Errorf("fleet warm path regressed: warm p99 %.4fs >= cold p50 %.4fs", warm, cold)
	}
	fmt.Fprintf(os.Stderr, "benchreport: fleet warm p99 %.4fs vs cold p50 %.4fs (%.2fx)\n",
		warm, cold, warm/cold)
	// A traced replay (fleetgen -trace-sample) attributes the slow tail
	// to serving phases; surface the split next to the latency verdict.
	if q, ok := m["fleet_phase_queue_share"]; ok {
		fmt.Fprintf(os.Stderr,
			"benchreport: fleet slow tail: queue %.0f%%, search %.0f%%, cache %.0f%%, peer %.0f%%, network %.0f%%, other %.0f%%\n",
			100*q, 100*m["fleet_phase_search_share"], 100*m["fleet_phase_cache_share"],
			100*m["fleet_phase_peer_share"], 100*m["fleet_phase_network_share"], 100*m["fleet_phase_other_share"])
	}
	return nil
}

func run() error {
	var (
		label    = flag.String("label", "", "run label to store the results under (e.g. before, after); required")
		note     = flag.String("note", "", "free-form note recorded with the run")
		in       = flag.String("in", "", "read benchmark output from this file instead of stdin")
		out      = flag.String("o", "BENCH_PR3.json", "JSON report to merge the run into")
		checkWrm = flag.Bool("check-warm", false, "fail unless every ReplanWarm* benchmark beat its ReplanCold* counterpart")
		checkFlt = flag.Bool("check-fleet", false, "fail unless FleetGen's warm p99 beat its cold plan p50")
	)
	flag.Parse()
	if *label == "" {
		return fmt.Errorf("-label is required")
	}

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	benches, err := parseBench(sc)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	report := Report{Runs: make(map[string]Run)}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("%s exists but does not parse as a bench report: %v", *out, err)
		}
		if report.Runs == nil {
			report.Runs = make(map[string]Run)
		}
	}
	report.Runs[*label] = Run{
		Captured:   time.Now().UTC().Format(time.RFC3339),
		Note:       *note,
		Benchmarks: benches,
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchreport: %d benchmarks recorded under %q in %s\n",
		len(benches), *label, *out)
	if *checkWrm {
		// After the write, so a failing gate still leaves the evidence.
		if err := checkWarm(benches); err != nil {
			return err
		}
	}
	if *checkFlt {
		return checkFleet(benches)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}
