// DLRM: plan the paper's deep learning recommendation model (7 dense + 7
// sparse feature branches, §A.2) and inspect where the planner places the
// memory-heavy embedding tables, then verify the plan on the concurrent
// message-passing runtime in addition to the simulator.
//
// Run with:
//
//	go run ./examples/dlrm
package main

import (
	"fmt"
	"log"

	"graphpipe/internal/cluster"
	"graphpipe/internal/core"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/models"
	"graphpipe/internal/runtime"
	"graphpipe/internal/sim"
)

func main() {
	g := models.DLRM(models.DefaultDLRMConfig())
	const devices, miniBatch = 16, 1024

	topo := cluster.NewSummitTopology(devices)
	model := costmodel.NewDefault(topo)

	planner, err := core.NewPlanner(g, model, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	r, err := planner.Plan(miniBatch)
	if err != nil {
		log.Fatal(err)
	}
	st := r.Strategy
	fmt.Printf("DLRM on %d devices, mini-batch %d: %d stages, pipeline depth %d\n\n",
		devices, miniBatch, st.NumStages(), st.Depth())

	// Where did the embedding tables land? Each is 256 MB of parameters;
	// the planner must spread them to respect device memory.
	for i := range st.Stages {
		stage := &st.Stages[i]
		embeds, dense := 0, 0
		for _, id := range stage.Ops.IDs() {
			switch g.Op(id).Kind {
			case graph.OpEmbedding:
				embeds++
			case graph.OpLinear:
				dense++
			}
		}
		fmt.Printf("  S%-2d devices=%v  µB=%-5d embeddings=%d dense-layers=%d\n",
			i, stage.Devices, stage.Config.MicroBatch, embeds, dense)
	}

	simRes, err := sim.New(g, model).Run(st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulator:  %.0f samples/s (iteration %.2f ms)\n",
		simRes.Throughput, simRes.IterationTime*1e3)

	// Cross-check on the concurrent runtime: goroutine stages exchanging
	// real activation/gradient messages must reproduce the same virtual
	// iteration time.
	rtRes, err := runtime.New(g, model, runtime.Options{}).Run(st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runtime:    %.0f samples/s (%d messages exchanged)\n",
		rtRes.Throughput, rtRes.MessagesSent)

	var peak float64
	for _, ss := range simRes.Stages {
		if ss.PeakMemory > peak {
			peak = ss.PeakMemory
		}
	}
	fmt.Printf("peak device memory: %.2f GB of %.0f GB budget\n",
		peak/1e9, topo.MinMemory()/1e9)
}
