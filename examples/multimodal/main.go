// Multimodal: compare graph pipeline parallelism against the sequential
// baselines on the paper's Multi-Modal Transformer (4 branches × 8 layers)
// as the cluster grows — a miniature of Figure 6a.
//
// Run with:
//
//	go run ./examples/multimodal
package main

import (
	"fmt"
	"log"
	"time"

	"graphpipe/internal/baselines/pipedream"
	"graphpipe/internal/cluster"
	"graphpipe/internal/core"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/models"
	"graphpipe/internal/sim"
)

func main() {
	g := models.MMT(models.DefaultMMTConfig())
	fmt.Printf("%-8s %-12s %-22s %-22s %s\n", "devices", "mini-batch",
		"graphpipe (samples/s)", "pipedream (samples/s)", "speedup")

	for _, devices := range []int{4, 8, 16, 32} {
		miniBatch, err := models.PaperMiniBatch("mmt", devices)
		if err != nil {
			log.Fatal(err)
		}
		topo := cluster.NewSummitTopology(devices)
		model := costmodel.NewDefault(topo)
		sm := sim.New(g, model)

		// GraphPipe: topology-aware graph pipeline stages.
		t0 := time.Now()
		planner, err := core.NewPlanner(g, model, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		gp, err := planner.Plan(miniBatch)
		if err != nil {
			log.Fatal(err)
		}
		gpSearch := time.Since(t0)
		gpRes, err := sm.Run(gp.Strategy)
		if err != nil {
			log.Fatal(err)
		}

		// PipeDream: linearized sequential pipeline.
		pd, err := pipedream.NewPlanner(g, model, pipedream.Options{}).Plan(miniBatch)
		if err != nil {
			log.Fatal(err)
		}
		pdRes, err := sm.Run(pd.Strategy)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-8d %-12d %-22s %-22s %.2fx\n",
			devices, miniBatch,
			fmt.Sprintf("%.0f (depth %d, %.1fs)", gpRes.Throughput, gp.Strategy.Depth(), gpSearch.Seconds()),
			fmt.Sprintf("%.0f (depth %d)", pdRes.Throughput, pd.Strategy.Depth()),
			gpRes.Throughput/pdRes.Throughput)
	}
	fmt.Println("\nGraph pipeline parallelism executes the four modality branches")
	fmt.Println("concurrently, halving-or-better the pipeline depth; the gap widens")
	fmt.Println("with the device count (paper §7.1).")
}
