// Multimodal: compare graph pipeline parallelism against the sequential
// baselines on the paper's Multi-Modal Transformer (4 branches × 8 layers)
// as the cluster grows — a miniature of Figure 6a.
//
// Run with:
//
//	go run ./examples/multimodal
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"graphpipe/internal/baselines/pipedream"
	"graphpipe/internal/cluster"
	"graphpipe/internal/core"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/eval"
	"graphpipe/internal/models"

	_ "graphpipe/internal/eval/all" // register the evaluation backends
)

// deviceCounts is the sweep; the smoke test narrows it to keep CI fast.
var deviceCounts = []int{4, 8, 16, 32}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	g := models.MMT(models.DefaultMMTConfig())
	ev, err := eval.Get("sim")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-12s %-22s %-22s %s\n", "devices", "mini-batch",
		"graphpipe (samples/s)", "pipedream (samples/s)", "speedup")

	for _, devices := range deviceCounts {
		miniBatch, err := models.PaperMiniBatch("mmt", devices)
		if err != nil {
			return err
		}
		topo := cluster.NewSummitTopology(devices)
		model := costmodel.NewDefault(topo)
		opts := eval.Options{CostModel: model}

		// GraphPipe: topology-aware graph pipeline stages.
		t0 := time.Now()
		planner, err := core.NewPlanner(g, model, core.Options{})
		if err != nil {
			return err
		}
		gp, err := planner.Plan(miniBatch)
		if err != nil {
			return err
		}
		gpSearch := time.Since(t0)
		gpRes, err := ev.Evaluate(g, topo, gp.Strategy, opts)
		if err != nil {
			return err
		}

		// PipeDream: linearized sequential pipeline.
		pd, err := pipedream.NewPlanner(g, model, pipedream.Options{}).Plan(miniBatch)
		if err != nil {
			return err
		}
		pdRes, err := ev.Evaluate(g, topo, pd.Strategy, opts)
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "%-8d %-12d %-22s %-22s %.2fx\n",
			devices, miniBatch,
			fmt.Sprintf("%.0f (depth %d, %.1fs)", gpRes.Throughput, gp.Strategy.Depth(), gpSearch.Seconds()),
			fmt.Sprintf("%.0f (depth %d)", pdRes.Throughput, pd.Strategy.Depth()),
			gpRes.Throughput/pdRes.Throughput)
	}
	fmt.Fprintln(w, "\nGraph pipeline parallelism executes the four modality branches")
	fmt.Fprintln(w, "concurrently, halving-or-better the pipeline depth; the gap widens")
	fmt.Fprintln(w, "with the device count (paper §7.1).")
	return nil
}
