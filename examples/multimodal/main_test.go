package main

import (
	"strings"
	"testing"
)

// TestMultimodalSmoke runs the example's sweep end to end on the two
// smallest cluster sizes (the full 16/32-device sweep is the benchmark
// suite's job, not a smoke test's).
func TestMultimodalSmoke(t *testing.T) {
	defer func(full []int) { deviceCounts = full }(deviceCounts)
	deviceCounts = []int{4, 8}

	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"devices", "graphpipe", "pipedream", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "x\n"); lines < 2 {
		t.Errorf("expected one result row per device count, got output:\n%s", out)
	}
}
