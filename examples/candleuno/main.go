// Candleuno: sweep the branch count of the CANDLE-Uno precision-medicine
// model (a miniature of Figure 7 left) — the more parallel branches a DNN
// has, the more pipeline depth graph pipeline parallelism removes.
//
// Run with:
//
//	go run ./examples/candleuno
package main

import (
	"fmt"
	"log"

	"graphpipe/internal/baselines/pipedream"
	"graphpipe/internal/cluster"
	"graphpipe/internal/core"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/models"
	"graphpipe/internal/sim"
)

func main() {
	const devices, miniBatch = 8, 8192
	topo := cluster.NewSummitTopology(devices)
	model := costmodel.NewDefault(topo)

	fmt.Printf("%-9s %-14s %-14s %-9s %-11s %s\n",
		"branches", "graphpipe", "pipedream", "speedup", "gp depth", "pd depth")
	for _, branches := range []int{2, 4, 8, 16} {
		cfg := models.DefaultCANDLEUnoConfig()
		cfg.Branches = branches
		g := models.CANDLEUno(cfg)
		sm := sim.New(g, model)

		planner, err := core.NewPlanner(g, model, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		gp, err := planner.Plan(miniBatch)
		if err != nil {
			log.Fatal(err)
		}
		gpRes, err := sm.Run(gp.Strategy)
		if err != nil {
			log.Fatal(err)
		}

		pd, err := pipedream.NewPlanner(g, model, pipedream.Options{}).Plan(miniBatch)
		if err != nil {
			log.Fatal(err)
		}
		pdRes, err := sm.Run(pd.Strategy)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-9d %-14.0f %-14.0f %-9.2f %-11d %d\n",
			branches, gpRes.Throughput, pdRes.Throughput,
			gpRes.Throughput/pdRes.Throughput,
			gp.Strategy.Depth(), pd.Strategy.Depth())
	}
	fmt.Println("\nGraphPipe's pipeline depth stays flat as branches are added, while")
	fmt.Println("the sequential baseline's depth (and its warm-up/cool-down bubble)")
	fmt.Println("grows — the mechanism behind Figure 7 (left).")
}
