package main

import (
	"strings"
	"testing"
)

// TestQuickstartSmoke runs the full example end to end — plan, evaluate,
// render — so CI catches API drift in what the documentation tells users
// to do first.
func TestQuickstartSmoke(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"model:", "strategy:", "throughput", "pipeline schedule:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
