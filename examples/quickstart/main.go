// Quickstart: plan and simulate graph-pipeline-parallel training for a
// small multi-branch Transformer on 8 simulated GPUs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"graphpipe/internal/cluster"
	"graphpipe/internal/core"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/eval"
	"graphpipe/internal/models"
	"graphpipe/internal/trace"

	_ "graphpipe/internal/eval/all" // register the evaluation backends
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// 1. Build a computation graph. The model zoo replicates the paper's
	// evaluation models; here: a two-branch Multi-Modal Transformer.
	cfg := models.DefaultMMTConfig()
	cfg.Branches = 2
	g := models.MMT(cfg)
	fmt.Fprintf(w, "model: %s with %d operators\n", g.Name(), g.Len())

	// 2. Describe the cluster: 8 V100-class GPUs, 4 per node (NVLink
	// within a node, InfiniBand between nodes), as on the paper's testbed.
	topo := cluster.NewSummitTopology(8)
	model := costmodel.NewDefault(topo)

	// 3. Discover a graph-pipeline-parallel strategy: the planner
	// partitions the graph into a DAG of stages, assigns devices, picks
	// micro-batch sizes, and schedules every forward/backward pass.
	planner, err := core.NewPlanner(g, model, core.Options{})
	if err != nil {
		return err
	}
	const miniBatch = 128
	result, err := planner.Plan(miniBatch)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nstrategy:\n%s\n", result.Strategy)

	// 4. Execute one training iteration through the evaluation layer. The
	// "sim" backend is the sequential discrete-event simulator; swap the
	// name for "runtime" to replay the same plan on the concurrent
	// message-passing runtime — the report is identical.
	ev, err := eval.Get("sim")
	if err != nil {
		return err
	}
	rep, err := ev.Evaluate(g, topo, result.Strategy, eval.Options{CostModel: model})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, trace.Summary(result.Strategy, rep))
	fmt.Fprintf(w, "\npipeline schedule:\n%s", trace.Gantt(result.Strategy, rep, 100))
	return nil
}
