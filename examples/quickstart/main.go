// Quickstart: plan and simulate graph-pipeline-parallel training for a
// small multi-branch Transformer on 8 simulated GPUs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"graphpipe/internal/cluster"
	"graphpipe/internal/core"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/models"
	"graphpipe/internal/sim"
	"graphpipe/internal/trace"
)

func main() {
	// 1. Build a computation graph. The model zoo replicates the paper's
	// evaluation models; here: a two-branch Multi-Modal Transformer.
	cfg := models.DefaultMMTConfig()
	cfg.Branches = 2
	g := models.MMT(cfg)
	fmt.Printf("model: %s with %d operators\n", g.Name(), g.Len())

	// 2. Describe the cluster: 8 V100-class GPUs, 4 per node (NVLink
	// within a node, InfiniBand between nodes), as on the paper's testbed.
	topo := cluster.NewSummitTopology(8)
	model := costmodel.NewDefault(topo)

	// 3. Discover a graph-pipeline-parallel strategy: the planner
	// partitions the graph into a DAG of stages, assigns devices, picks
	// micro-batch sizes, and schedules every forward/backward pass.
	planner, err := core.NewPlanner(g, model, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	const miniBatch = 128
	result, err := planner.Plan(miniBatch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstrategy:\n%s\n", result.Strategy)

	// 4. Execute one training iteration on the simulated cluster.
	out, err := sim.New(g, model).Run(result.Strategy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(trace.Summary(result.Strategy, out))
	fmt.Printf("\npipeline schedule:\n%s", trace.Gantt(result.Strategy, out, 100))
}
