// Casestudy: reproduce §7.5 / Figure 8 — the synthetic two-branch
// Transformer on eight devices, where GraphPipe halves the pipeline depth
// and doubles the micro-batch size relative to SPP, each effect worth
// roughly half of the total speedup.
//
// Run with:
//
//	go run ./examples/casestudy
package main

import (
	"fmt"
	"log"

	"graphpipe/internal/experiments"
)

func main() {
	res, err := experiments.CaseStudy(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	fmt.Println()
	fmt.Println("Paper (§7.5): depth 8 vs 4, micro-batch 2 vs 4, ~20% total gain")
	fmt.Println("split ~10% (concurrent branches) + ~10% (larger micro-batches).")
}
