// Generalist: plan a heterogeneous mixed-modal model (Transformer + MLP +
// embedding branches, in the style of the generalist systems the paper's
// introduction motivates) with per-stage micro-batch sizes enabled — the §6
// feature that lets each modality's stages run at their own compute-
// efficiency sweet spot (Figure 5).
//
// Run with:
//
//	go run ./examples/generalist
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"graphpipe/internal/cluster"
	"graphpipe/internal/core"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/eval"
	"graphpipe/internal/models"
	"graphpipe/internal/trace"

	_ "graphpipe/internal/eval/all" // register the evaluation backends
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// modelCfg and miniBatch are the demo's workload; the smoke test shrinks
// them so CI exercises both search modes without the full-size search.
var (
	modelCfg  = models.DefaultGeneralistConfig()
	miniBatch = 256
)

func run(w io.Writer) error {
	g := models.Generalist(modelCfg)
	topo := cluster.NewSummitTopology(8)
	model := costmodel.NewDefault(topo)
	ev, err := eval.Get("sim")
	if err != nil {
		return err
	}

	for _, perStage := range []bool{false, true} {
		planner, err := core.NewPlanner(g, model, core.Options{PerStageMicroBatch: perStage})
		if err != nil {
			return err
		}
		r, err := planner.Plan(miniBatch)
		if err != nil {
			return err
		}
		rep, err := ev.Evaluate(g, topo, r.Strategy, eval.Options{CostModel: model})
		if err != nil {
			return err
		}
		mode := "uniform micro-batch "
		if perStage {
			mode = "per-stage micro-batch"
		}
		fmt.Fprintf(w, "%s: %s\n", mode, trace.Summary(r.Strategy, rep))
		if perStage {
			for i := range r.Strategy.Stages {
				st := &r.Strategy.Stages[i]
				fmt.Fprintf(w, "  S%-2d µB=%-4d ops=%d devices=%v\n",
					i, st.Config.MicroBatch, st.Ops.Len(), st.Devices)
			}
		}
	}
	return nil
}
