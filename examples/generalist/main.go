// Generalist: plan a heterogeneous mixed-modal model (Transformer + MLP +
// embedding branches, in the style of the generalist systems the paper's
// introduction motivates) with per-stage micro-batch sizes enabled — the §6
// feature that lets each modality's stages run at their own compute-
// efficiency sweet spot (Figure 5).
//
// Run with:
//
//	go run ./examples/generalist
package main

import (
	"fmt"
	"log"

	"graphpipe/internal/cluster"
	"graphpipe/internal/core"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/models"
	"graphpipe/internal/sim"
	"graphpipe/internal/trace"
)

func main() {
	g := models.Generalist(models.DefaultGeneralistConfig())
	topo := cluster.NewSummitTopology(8)
	model := costmodel.NewDefault(topo)
	const miniBatch = 256

	for _, perStage := range []bool{false, true} {
		planner, err := core.NewPlanner(g, model, core.Options{PerStageMicroBatch: perStage})
		if err != nil {
			log.Fatal(err)
		}
		r, err := planner.Plan(miniBatch)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.New(g, model).Run(r.Strategy)
		if err != nil {
			log.Fatal(err)
		}
		mode := "uniform micro-batch "
		if perStage {
			mode = "per-stage micro-batch"
		}
		fmt.Printf("%s: %s\n", mode, trace.Summary(r.Strategy, res))
		if perStage {
			for i := range r.Strategy.Stages {
				st := &r.Strategy.Stages[i]
				fmt.Printf("  S%-2d µB=%-4d ops=%d devices=%v\n",
					i, st.Config.MicroBatch, st.Ops.Len(), st.Devices)
			}
		}
	}
}
