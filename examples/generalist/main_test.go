package main

import (
	"strings"
	"testing"

	"graphpipe/internal/models"
)

// TestGeneralistSmoke runs the example end to end: both the uniform and
// the per-stage micro-batch plans must evaluate and render. The workload
// is shrunk — the per-stage search on the full demo model takes minutes,
// which is the benchmark suite's budget, not a smoke test's.
func TestGeneralistSmoke(t *testing.T) {
	defer func(cfg models.GeneralistConfig, mb int) {
		modelCfg, miniBatch = cfg, mb
	}(modelCfg, miniBatch)
	modelCfg.TextLayers = 2
	modelCfg.TabularLayers = 2
	modelCfg.EmbedTowers = 2
	miniBatch = 64

	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"uniform micro-batch", "per-stage micro-batch", "throughput"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
