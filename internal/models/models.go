// Package models builds the computation graphs of the DNNs the paper
// evaluates (§7, Appendix A.2): the Multi-Modal Transformer (MMT), DLRM,
// CANDLE-Uno, the synthetic two-branch Transformer of the case study
// (Figure 10), and the sequential Transformer of Appendix A.3.
//
// Operator costs (FLOPs, parameter bytes, activation bytes) are derived
// analytically from the hyperparameters stated in the paper, substituting
// for profiling real kernels. Each branch of a multi-branch model reads its
// own modality through a per-branch input operator (the partitioner handles
// multi-source graphs), and every graph has a single output operator.
package models

import (
	"fmt"
	"strings"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
	"graphpipe/internal/synth"
)

// TransformerConfig describes one Transformer branch per Appendix A.2:
// sequence length 256, hidden size 1024, embedding size 1024, 16 attention
// heads, feed-forward hidden size 4096.
type TransformerConfig struct {
	SeqLen     int
	Hidden     int
	FFN        int
	Heads      int
	DTypeBytes float64
}

// DefaultTransformerConfig returns the paper's MMT layer hyperparameters.
func DefaultTransformerConfig() TransformerConfig {
	return TransformerConfig{SeqLen: 256, Hidden: 1024, FFN: 4096, Heads: 16, DTypeBytes: 2}
}

// layerCosts computes per-sample costs of one full Transformer layer
// (attention + feed-forward).
func (c TransformerConfig) layerCosts() (fwdFLOPs, paramBytes, actBytes, outBytes float64) {
	s, h, f := float64(c.SeqLen), float64(c.Hidden), float64(c.FFN)
	// Matmul FLOPs (2·m·n·k): QKV 6sh², scores+context 4s²h, out-proj
	// 2sh², FFN 4shf.
	fwdFLOPs = 6*s*h*h + 4*s*s*h + 2*s*h*h + 4*s*h*f
	params := 4*h*h + 2*h*f // attention + FFN weights
	paramBytes = params * c.DTypeBytes
	// Retained activations: ~10 s×h tensors plus the s×s attention maps
	// per head.
	actBytes = (10*s*h + s*s*float64(c.Heads)) * c.DTypeBytes
	outBytes = s * h * c.DTypeBytes
	return
}

// attentionCosts computes per-sample costs of the attention sub-layer alone
// (used by the case-study model, which splits layers into attention and
// linear operators).
func (c TransformerConfig) attentionCosts() (fwdFLOPs, paramBytes, actBytes, outBytes float64) {
	s, h := float64(c.SeqLen), float64(c.Hidden)
	fwdFLOPs = 6*s*h*h + 4*s*s*h + 2*s*h*h
	paramBytes = 4 * h * h * c.DTypeBytes
	actBytes = (6*s*h + s*s*float64(c.Heads)) * c.DTypeBytes
	outBytes = s * h * c.DTypeBytes
	return
}

// linearCosts computes per-sample costs of one s×h → s×f linear layer.
func (c TransformerConfig) linearCosts(in, out int) (fwdFLOPs, paramBytes, actBytes, outBytes float64) {
	s := float64(c.SeqLen)
	fwdFLOPs = 2 * s * float64(in) * float64(out)
	paramBytes = float64(in) * float64(out) * c.DTypeBytes
	actBytes = s * float64(out) * 2 * c.DTypeBytes
	outBytes = s * float64(out) * c.DTypeBytes
	return
}

// MMTConfig configures the Multi-Modal Transformer: Branches parallel
// stacks of LayersPerBranch Transformer layers, concatenated at the end
// (Appendix A.2: 4 branches × 8 layers = 32 layers total).
type MMTConfig struct {
	Branches        int
	LayersPerBranch int
	Layer           TransformerConfig
}

// DefaultMMTConfig returns the paper's end-to-end MMT: 4 branches × 8
// layers.
func DefaultMMTConfig() MMTConfig {
	return MMTConfig{Branches: 4, LayersPerBranch: 8, Layer: DefaultTransformerConfig()}
}

// MMT builds the Multi-Modal Transformer computation graph. Each branch
// reads its own modality (text, image, audio, ...) through a per-branch
// zero-cost input operator, so branches share no upstream operator and are
// genuinely computationally independent, as in the paper's Figure 2.
func MMT(cfg MMTConfig) *graph.Graph {
	b := graph.NewBuilder(fmt.Sprintf("mmt-%db-%dl", cfg.Branches, cfg.LayersPerBranch))
	lc := cfg.Layer
	s, h := float64(lc.SeqLen), float64(lc.Hidden)

	concat := b.AddOp(graph.Op{
		Name: "concat", Kind: graph.OpConcat,
		FwdFLOPs:        s * h * float64(cfg.Branches),
		ActivationBytes: s * h * float64(cfg.Branches) * lc.DTypeBytes,
		OutputBytes:     s * h * float64(cfg.Branches) * lc.DTypeBytes,
	})
	fl, pb, ab, ob := lc.layerCosts()
	for br := 0; br < cfg.Branches; br++ {
		prev := b.AddOp(graph.Op{
			Name: fmt.Sprintf("br%d_input", br), Kind: graph.OpInput,
			OutputBytes: s * h * lc.DTypeBytes, // this modality's tokens
		})
		for l := 0; l < cfg.LayersPerBranch; l++ {
			op := b.AddOp(graph.Op{
				Name: fmt.Sprintf("br%d_layer%d", br, l), Kind: graph.OpAttention,
				FwdFLOPs: fl, ParamBytes: pb, ActivationBytes: ab, OutputBytes: ob,
			})
			b.Connect(prev, op)
			prev = op
		}
		b.Connect(prev, concat)
	}
	// Output head: project the concatenation back to hidden.
	hf, hp, ha, ho := lc.linearCosts(lc.Hidden*cfg.Branches, lc.Hidden)
	head := b.AddOp(graph.Op{
		Name: "head", Kind: graph.OpOutput,
		FwdFLOPs: hf, ParamBytes: hp, ActivationBytes: ha, OutputBytes: ho,
	})
	b.Connect(concat, head)
	return b.MustBuild()
}

// SequentialTransformer builds the Appendix A.3 model: a single chain of
// layers with the same per-layer configuration as MMT (32 layers total, the
// same parameter count as the 4×8 MMT).
func SequentialTransformer(layers int) *graph.Graph {
	lc := DefaultTransformerConfig()
	b := graph.NewBuilder(fmt.Sprintf("seq-transformer-%dl", layers))
	s, h := float64(lc.SeqLen), float64(lc.Hidden)
	in := b.AddOp(graph.Op{Name: "input", Kind: graph.OpInput, OutputBytes: s * h * lc.DTypeBytes})
	fl, pb, ab, ob := lc.layerCosts()
	prev := in
	for l := 0; l < layers; l++ {
		op := b.AddOp(graph.Op{
			Name: fmt.Sprintf("layer%d", l), Kind: graph.OpAttention,
			FwdFLOPs: fl, ParamBytes: pb, ActivationBytes: ab, OutputBytes: ob,
		})
		b.Connect(prev, op)
		prev = op
	}
	hf, hp, ha, ho := lc.linearCosts(lc.Hidden, lc.Hidden)
	head := b.AddOp(graph.Op{Name: "head", Kind: graph.OpOutput,
		FwdFLOPs: hf, ParamBytes: hp, ActivationBytes: ha, OutputBytes: ho})
	b.Connect(prev, head)
	return b.MustBuild()
}

// DLRMConfig configures the recommendation model per Appendix A.2: seven
// dense-feature branches of four feed-forward layers (hidden 4096), seven
// sparse-feature branches (embedding tables of 1M entries × 64, bags of 100
// lookups), an interaction, and a top MLP of four layers.
type DLRMConfig struct {
	DenseBranches  int
	SparseBranches int
	DenseLayers    int
	Hidden         int
	EmbedDim       int
	EmbedEntries   int
	BagSize        int
	TopLayers      int
	DTypeBytes     float64
}

// DefaultDLRMConfig returns the paper's DLRM.
func DefaultDLRMConfig() DLRMConfig {
	return DLRMConfig{
		DenseBranches:  7,
		SparseBranches: 7,
		DenseLayers:    4,
		Hidden:         4096,
		EmbedDim:       64,
		EmbedEntries:   1_000_000,
		BagSize:        100,
		TopLayers:      4,
		DTypeBytes:     4,
	}
}

// DLRM builds the recommendation-model computation graph. Each dense
// branch reads its own dense-feature vector and each sparse branch its own
// index list, so the fourteen branches are computationally independent.
func DLRM(cfg DLRMConfig) *graph.Graph {
	b := graph.NewBuilder(fmt.Sprintf("dlrm-%dd-%ds", cfg.DenseBranches, cfg.SparseBranches))
	h := float64(cfg.Hidden)
	dt := cfg.DTypeBytes

	ffFLOPs := 2 * h * h
	ffParams := h * h * dt
	ffAct := 2 * h * dt
	ffOut := h * dt

	interact := b.AddOp(graph.Op{
		Name: "interaction", Kind: graph.OpInteraction,
		FwdFLOPs:        h * float64(cfg.DenseBranches+cfg.SparseBranches),
		ActivationBytes: (h*float64(cfg.DenseBranches) + float64(cfg.BagSize*cfg.EmbedDim*cfg.SparseBranches)) * dt,
		OutputBytes:     h * dt,
	})

	for br := 0; br < cfg.DenseBranches; br++ {
		prev := b.AddOp(graph.Op{
			Name: fmt.Sprintf("dense%d_input", br), Kind: graph.OpInput,
			OutputBytes: h * dt,
		})
		for l := 0; l < cfg.DenseLayers; l++ {
			op := b.AddOp(graph.Op{
				Name: fmt.Sprintf("dense%d_ff%d", br, l), Kind: graph.OpLinear,
				FwdFLOPs: ffFLOPs, ParamBytes: ffParams, ActivationBytes: ffAct, OutputBytes: ffOut,
			})
			b.Connect(prev, op)
			prev = op
		}
		b.Connect(prev, interact)
	}
	embedParams := float64(cfg.EmbedEntries*cfg.EmbedDim) * dt
	embedOut := float64(cfg.BagSize*cfg.EmbedDim) * dt // bag concatenated
	for br := 0; br < cfg.SparseBranches; br++ {
		in := b.AddOp(graph.Op{
			Name: fmt.Sprintf("sparse%d_input", br), Kind: graph.OpInput,
			OutputBytes: float64(cfg.BagSize) * 8, // int64 indices
		})
		op := b.AddOp(graph.Op{
			Name: fmt.Sprintf("sparse%d_embed", br), Kind: graph.OpEmbedding,
			FwdFLOPs:        float64(cfg.BagSize * cfg.EmbedDim), // gather + reduce
			ParamBytes:      embedParams,
			ActivationBytes: embedOut,
			OutputBytes:     embedOut,
		})
		b.Connect(in, op)
		b.Connect(op, interact)
	}
	prev := interact
	for l := 0; l < cfg.TopLayers; l++ {
		op := b.AddOp(graph.Op{
			Name: fmt.Sprintf("top_ff%d", l), Kind: graph.OpLinear,
			FwdFLOPs: ffFLOPs, ParamBytes: ffParams, ActivationBytes: ffAct, OutputBytes: ffOut,
		})
		b.Connect(prev, op)
		prev = op
	}
	out := b.AddOp(graph.Op{Name: "output", Kind: graph.OpOutput,
		FwdFLOPs: 2 * h, ParamBytes: h * dt, ActivationBytes: dt, OutputBytes: dt})
	b.Connect(prev, out)
	return b.MustBuild()
}

// CANDLEUnoConfig configures the precision-medicine model per Appendix A.2:
// seven parallel branches of four feed-forward layers, hidden size 4096.
// Branches is configurable for the Figure 7 branch sweep.
type CANDLEUnoConfig struct {
	Branches   int
	Layers     int
	Hidden     int
	DTypeBytes float64
}

// DefaultCANDLEUnoConfig returns the paper's CANDLE-Uno.
func DefaultCANDLEUnoConfig() CANDLEUnoConfig {
	return CANDLEUnoConfig{Branches: 7, Layers: 4, Hidden: 4096, DTypeBytes: 4}
}

// CANDLEUno builds the CANDLE-Uno computation graph. Each branch reads a
// different feature family of the precision-medicine dataset through its
// own input operator.
func CANDLEUno(cfg CANDLEUnoConfig) *graph.Graph {
	b := graph.NewBuilder(fmt.Sprintf("candle-uno-%db", cfg.Branches))
	h := float64(cfg.Hidden)
	dt := cfg.DTypeBytes
	concat := b.AddOp(graph.Op{
		Name: "concat", Kind: graph.OpConcat,
		FwdFLOPs:        h * float64(cfg.Branches),
		ActivationBytes: h * float64(cfg.Branches) * dt,
		OutputBytes:     h * float64(cfg.Branches) * dt,
	})
	ffFLOPs := 2 * h * h
	ffParams := h * h * dt
	ffAct := 2 * h * dt
	ffOut := h * dt
	for br := 0; br < cfg.Branches; br++ {
		prev := b.AddOp(graph.Op{
			Name: fmt.Sprintf("br%d_input", br), Kind: graph.OpInput,
			OutputBytes: h * dt,
		})
		for l := 0; l < cfg.Layers; l++ {
			op := b.AddOp(graph.Op{
				Name: fmt.Sprintf("br%d_ff%d", br, l), Kind: graph.OpLinear,
				FwdFLOPs: ffFLOPs, ParamBytes: ffParams, ActivationBytes: ffAct, OutputBytes: ffOut,
			})
			b.Connect(prev, op)
			prev = op
		}
		b.Connect(prev, concat)
	}
	out := b.AddOp(graph.Op{Name: "output", Kind: graph.OpOutput,
		FwdFLOPs:   2 * h * float64(cfg.Branches) * h,
		ParamBytes: h * float64(cfg.Branches) * h * dt, ActivationBytes: 2 * h * dt, OutputBytes: h * dt})
	b.Connect(concat, out)
	return b.MustBuild()
}

// CaseStudyConfig configures the synthetic two-branch Transformer of
// Figure 10: each branch repeats (multi-head attention, linear, linear)
// four times; a concatenation merges the branches.
type CaseStudyConfig struct {
	Branches int
	Repeats  int
	Layer    TransformerConfig
}

// DefaultCaseStudyConfig returns the Figure 10 model. The layer dimensions
// are scaled up relative to MMT (hidden 8192, FFN 32768, sequence 512) so
// that, as on the paper's testbed, the system "operates close to the memory
// limits" (§7.5): the ~51 GB of weight state cannot be replicated across
// wide data-parallel groups, pushing both planners to the paper's
// one-device-per-stage partition, where SPP's doubled pipeline depth caps
// its micro-batch size below GraphPipe's.
func DefaultCaseStudyConfig() CaseStudyConfig {
	return CaseStudyConfig{
		Branches: 2,
		Repeats:  4,
		Layer:    TransformerConfig{SeqLen: 512, Hidden: 8192, FFN: 32768, Heads: 64, DTypeBytes: 2},
	}
}

// CaseStudy builds the Figure 10 model at operator granularity (attention
// and linear layers are separate operators so a stage can hold exactly one
// attention and two linear layers, as in §7.5).
func CaseStudy(cfg CaseStudyConfig) *graph.Graph {
	b := graph.NewBuilder("case-study")
	lc := cfg.Layer
	s, h := float64(lc.SeqLen), float64(lc.Hidden)
	concat := b.AddOp(graph.Op{
		Name: "concat", Kind: graph.OpConcat,
		FwdFLOPs:        s * h * float64(cfg.Branches),
		ActivationBytes: s * h * float64(cfg.Branches) * lc.DTypeBytes,
		OutputBytes:     s * h * float64(cfg.Branches) * lc.DTypeBytes,
	})
	af, ap, aa, ao := lc.attentionCosts()
	l1f, l1p, l1a, l1o := lc.linearCosts(lc.Hidden, lc.FFN)
	l2f, l2p, l2a, l2o := lc.linearCosts(lc.FFN, lc.Hidden)
	for br := 0; br < cfg.Branches; br++ {
		prev := b.AddOp(graph.Op{
			Name: fmt.Sprintf("br%d_input", br), Kind: graph.OpInput,
			OutputBytes: s * h * lc.DTypeBytes,
		})
		for r := 0; r < cfg.Repeats; r++ {
			att := b.AddOp(graph.Op{
				Name: fmt.Sprintf("br%d_r%d_attn", br, r), Kind: graph.OpAttention,
				FwdFLOPs: af, ParamBytes: ap, ActivationBytes: aa, OutputBytes: ao,
			})
			lin1 := b.AddOp(graph.Op{
				Name: fmt.Sprintf("br%d_r%d_lin1", br, r), Kind: graph.OpLinear,
				FwdFLOPs: l1f, ParamBytes: l1p, ActivationBytes: l1a, OutputBytes: l1o,
			})
			lin2 := b.AddOp(graph.Op{
				Name: fmt.Sprintf("br%d_r%d_lin2", br, r), Kind: graph.OpLinear,
				FwdFLOPs: l2f, ParamBytes: l2p, ActivationBytes: l2a, OutputBytes: l2o,
			})
			b.Chain(prev, att, lin1, lin2)
			prev = lin2
		}
		b.Connect(prev, concat)
	}
	return b.MustBuild()
}

// Names lists the model names Build accepts, in a stable order.
func Names() []string {
	return []string{"mmt", "dlrm", "candle-uno", "case-study", "generalist", "sequential"}
}

// Build constructs an evaluation model by name along with its default
// mini-batch size for the device count (the paper's pairing where one
// exists, a proportional fallback otherwise). branches > 0 overrides the
// model's branch count where the model has one. It is the single
// name→graph mapping shared by the CLI, the examples, the planning
// service, and artifact re-evaluation, so a persisted strategy.Artifact
// can be rebuilt into its evaluation context from its metadata alone.
//
// Names with the "synth:" prefix are synthetic-model specs
// (synth.Parse): seed-driven generated graphs that flow through every
// consumer of this function exactly like the paper models.
func Build(name string, branches, devices int) (*graph.Graph, int, error) {
	if synth.IsSpec(name) {
		spec, err := synth.Parse(name)
		if err != nil {
			return nil, 0, fmt.Errorf("models: %v", err)
		}
		if branches > 0 {
			spec.Branches = branches
		}
		g, _, err := synth.Generate(spec)
		if err != nil {
			return nil, 0, fmt.Errorf("models: %v", err)
		}
		return g, synth.DefaultMiniBatch(devices), nil
	}
	switch name {
	case "mmt":
		cfg := DefaultMMTConfig()
		if branches > 0 {
			cfg.Branches = branches
		}
		mb, err := PaperMiniBatch("mmt", devices)
		if err != nil {
			mb = 32 * devices
		}
		return MMT(cfg), mb, nil
	case "dlrm":
		mb, err := PaperMiniBatch("dlrm", devices)
		if err != nil {
			mb = 64 * devices
		}
		return DLRM(DefaultDLRMConfig()), mb, nil
	case "candle-uno":
		cfg := DefaultCANDLEUnoConfig()
		if branches > 0 {
			cfg.Branches = branches
		}
		mb, err := PaperMiniBatch("candle-uno", devices)
		if err != nil {
			mb = 1024 * devices
		}
		return CANDLEUno(cfg), mb, nil
	case "case-study":
		return CaseStudy(DefaultCaseStudyConfig()), 64, nil
	case "generalist":
		return Generalist(DefaultGeneralistConfig()), 32 * devices, nil
	case "sequential":
		return SequentialTransformer(32), 16 * devices, nil
	default:
		return nil, 0, fmt.Errorf("models: unknown model %q (known: %s, or a %sfamily/seed=N spec)",
			name, strings.Join(Names(), ", "), synth.Prefix)
	}
}

// PaperMiniBatch returns the mini-batch size the paper pairs with each
// device count for its end-to-end evaluation (Appendix A.2), chosen so the
// system operates close to the memory limit.
func PaperMiniBatch(model string, devices int) (int, error) {
	table := map[string]map[int]int{
		"mmt":        {4: 64, 8: 128, 16: 256, 32: 512},
		"dlrm":       {4: 256, 8: 512, 16: 1024, 32: 2048},
		"candle-uno": {4: 4096, 8: 8192, 16: 16384, 32: 32768},
	}
	m, ok := table[model]
	if !ok {
		return 0, fmt.Errorf("models: unknown model %q", model)
	}
	b, ok := m[devices]
	if !ok {
		return 0, fmt.Errorf("models: no paper mini-batch for %q at %d devices", model, devices)
	}
	return b, nil
}

// GeneralistConfig configures a heterogeneous mixed-modal model in the
// style of the generalist systems the paper's introduction motivates
// (GPT-4o, Chameleon, Gato): branches of *different* operator types — a
// Transformer stack for text, an MLP stack for tabular features, and
// embedding towers for categorical data — merged by one fusion operator.
// Heterogeneous branches are the scenario where per-stage micro-batch
// sizes pay off (§6): each modality has a different compute-efficiency
// sweet spot.
type GeneralistConfig struct {
	TextLayers    int // Transformer layers on the text branch
	TabularLayers int // feed-forward layers on the tabular branch
	EmbedTowers   int // categorical embedding towers
	Layer         TransformerConfig
	Hidden        int
	EmbedDim      int
	EmbedEntries  int
	DTypeBytes    float64
}

// DefaultGeneralistConfig returns a moderate generalist model.
func DefaultGeneralistConfig() GeneralistConfig {
	return GeneralistConfig{
		TextLayers:    6,
		TabularLayers: 4,
		EmbedTowers:   2,
		Layer:         DefaultTransformerConfig(),
		Hidden:        4096,
		EmbedDim:      128,
		EmbedEntries:  500_000,
		DTypeBytes:    2,
	}
}

// Generalist builds the mixed-modal computation graph.
func Generalist(cfg GeneralistConfig) *graph.Graph {
	b := graph.NewBuilder("generalist")
	lc := cfg.Layer
	s, h := float64(lc.SeqLen), float64(lc.Hidden)
	dt := cfg.DTypeBytes

	fusion := b.AddOp(graph.Op{
		Name: "fusion", Kind: graph.OpConcat,
		FwdFLOPs:        s * h * 3,
		ActivationBytes: s * h * 3 * dt,
		OutputBytes:     s * h * dt,
	})

	// Text branch: Transformer layers (compute-bound, efficient at small
	// micro-batches).
	fl, pb, ab, ob := lc.layerCosts()
	prev := b.AddOp(graph.Op{Name: "text_input", Kind: graph.OpInput, OutputBytes: s * h * dt})
	for l := 0; l < cfg.TextLayers; l++ {
		op := b.AddOp(graph.Op{
			Name: fmt.Sprintf("text_layer%d", l), Kind: graph.OpAttention,
			FwdFLOPs: fl, ParamBytes: pb, ActivationBytes: ab, OutputBytes: ob,
		})
		b.Connect(prev, op)
		prev = op
	}
	b.Connect(prev, fusion)

	// Tabular branch: plain MLP (wants larger micro-batches).
	hh := float64(cfg.Hidden)
	prev = b.AddOp(graph.Op{Name: "tab_input", Kind: graph.OpInput, OutputBytes: hh * dt})
	for l := 0; l < cfg.TabularLayers; l++ {
		op := b.AddOp(graph.Op{
			Name: fmt.Sprintf("tab_ff%d", l), Kind: graph.OpLinear,
			FwdFLOPs: 2 * hh * hh, ParamBytes: hh * hh * dt,
			ActivationBytes: 2 * hh * dt, OutputBytes: hh * dt,
		})
		b.Connect(prev, op)
		prev = op
	}
	b.Connect(prev, fusion)

	// Categorical towers: memory-bound embedding lookups (want the
	// largest micro-batches of all).
	for tw := 0; tw < cfg.EmbedTowers; tw++ {
		in := b.AddOp(graph.Op{
			Name: fmt.Sprintf("cat%d_input", tw), Kind: graph.OpInput,
			OutputBytes: 8, // one int64 index
		})
		emb := b.AddOp(graph.Op{
			Name: fmt.Sprintf("cat%d_embed", tw), Kind: graph.OpEmbedding,
			FwdFLOPs:        float64(cfg.EmbedDim),
			ParamBytes:      float64(cfg.EmbedEntries*cfg.EmbedDim) * dt,
			ActivationBytes: float64(cfg.EmbedDim) * dt,
			OutputBytes:     float64(cfg.EmbedDim) * dt,
		})
		b.Connect(in, emb)
		b.Connect(emb, fusion)
	}

	head := b.AddOp(graph.Op{
		Name: "head", Kind: graph.OpOutput,
		FwdFLOPs: 2 * s * h * h, ParamBytes: h * h * dt,
		ActivationBytes: s * h * dt, OutputBytes: s * h * dt,
	})
	b.Connect(fusion, head)
	return b.MustBuild()
}

// Topology resolves a topology name at a device count — the cluster-side
// twin of Build. The empty name (and "summit") selects the paper's
// Summit preset; "topo:explicit/..." strings spell a topology out in
// full; any other "topo:" name is a seeded synth topology family
// (synth.BuildTopology). Explicit specs must describe exactly the
// requested device count: a request routed to a cluster of a different
// size is a caller bug, not something to silently truncate.
func Topology(name string, devices int) (*cluster.Topology, error) {
	if devices < 1 {
		return nil, fmt.Errorf("models: topology %q needs a positive device count, got %d", name, devices)
	}
	switch {
	case name == "":
		return cluster.NewSummitTopology(devices), nil
	case cluster.IsExplicitSpec(name):
		t, err := cluster.ParseTopology(name)
		if err != nil {
			return nil, fmt.Errorf("models: %v", err)
		}
		if t.Len() != devices {
			return nil, fmt.Errorf("models: topology %q describes %d devices, request wants %d",
				name, t.Len(), devices)
		}
		return t, nil
	case cluster.IsSpecName(name):
		t, err := synth.BuildTopology(name, devices)
		if err != nil {
			return nil, fmt.Errorf("models: %v", err)
		}
		return t, nil
	default:
		t, err := cluster.Preset(name, devices)
		if err != nil {
			return nil, fmt.Errorf("models: %v", err)
		}
		return t, nil
	}
}
