package models

import (
	"testing"

	"graphpipe/internal/graph"
	"graphpipe/internal/spgraph"
)

func TestMMTStructure(t *testing.T) {
	g := MMT(DefaultMMTConfig())
	// 4 per-branch inputs + 4*8 layers + concat + head = 38 ops.
	if g.Len() != 38 {
		t.Fatalf("MMT ops = %d, want 38", g.Len())
	}
	if err := spgraph.Validate(g); err != nil {
		t.Fatalf("MMT fails SP validation: %v", err)
	}
	// One input per branch (per-modality data), each feeding one chain.
	if got := len(g.Sources()); got != 4 {
		t.Errorf("sources = %d, want 4", got)
	}
	for _, src := range g.Sources() {
		if len(g.Succ(src)) != 1 {
			t.Errorf("branch input fanout = %d, want 1", len(g.Succ(src)))
		}
	}
	// Concat has 4 predecessors.
	var concat graph.NodeID = -1
	for _, op := range g.Ops() {
		if op.Kind == graph.OpConcat {
			concat = op.ID
		}
	}
	if concat == -1 || len(g.Pred(concat)) != 4 {
		t.Errorf("concat fan-in wrong")
	}
}

func TestMMTLayerCosts(t *testing.T) {
	lc := DefaultTransformerConfig()
	fl, pb, ab, ob := lc.layerCosts()
	// 24sh² + 4s²h with s=256, h=1024 (FFN=4h).
	s, h := 256.0, 1024.0
	wantFLOPs := 24*s*h*h + 4*s*s*h
	if fl != wantFLOPs {
		t.Errorf("layer FLOPs = %g, want %g", fl, wantFLOPs)
	}
	// 12h² params in fp16.
	if want := 12 * h * h * 2; pb != want {
		t.Errorf("layer param bytes = %g, want %g", pb, want)
	}
	if ab <= 0 || ob != s*h*2 {
		t.Errorf("activation/output bytes implausible: %g, %g", ab, ob)
	}
}

func TestMMTBranchesConfigurable(t *testing.T) {
	for _, br := range []int{2, 4, 8} {
		cfg := DefaultMMTConfig()
		cfg.Branches = br
		g := MMT(cfg)
		if g.Len() != br*9+2 {
			t.Errorf("branches=%d: ops = %d", br, g.Len())
		}
		if err := spgraph.Validate(g); err != nil {
			t.Errorf("branches=%d: %v", br, err)
		}
	}
}

func TestSequentialTransformer(t *testing.T) {
	g := SequentialTransformer(32)
	if g.Len() != 34 {
		t.Fatalf("ops = %d, want 34", g.Len())
	}
	if err := spgraph.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Strictly sequential: every op has at most one successor.
	for _, op := range g.Ops() {
		if len(g.Succ(op.ID)) > 1 {
			t.Errorf("op %s has fanout %d", op.Name, len(g.Succ(op.ID)))
		}
	}
	// Same total parameters as the 4x8 MMT's branch layers.
	mmt := MMT(DefaultMMTConfig())
	seqLayers, mmtLayers := 0.0, 0.0
	for _, op := range g.Ops() {
		if op.Kind == graph.OpAttention {
			seqLayers += op.ParamBytes
		}
	}
	for _, op := range mmt.Ops() {
		if op.Kind == graph.OpAttention {
			mmtLayers += op.ParamBytes
		}
	}
	if seqLayers != mmtLayers {
		t.Errorf("layer params differ: seq %g vs mmt %g", seqLayers, mmtLayers)
	}
}

func TestDLRMStructure(t *testing.T) {
	g := DLRM(DefaultDLRMConfig())
	// 14 inputs + 7*4 dense + 7 embed + interaction + 4 top + output = 55.
	if g.Len() != 55 {
		t.Fatalf("DLRM ops = %d, want 55", g.Len())
	}
	if err := spgraph.Validate(g); err != nil {
		t.Fatal(err)
	}
	// 14 parallel branches feed the interaction.
	var interact graph.NodeID = -1
	embeds := 0
	for _, op := range g.Ops() {
		if op.Kind == graph.OpInteraction {
			interact = op.ID
		}
		if op.Kind == graph.OpEmbedding {
			embeds++
		}
	}
	if embeds != 7 {
		t.Errorf("embedding ops = %d, want 7", embeds)
	}
	if interact == -1 || len(g.Pred(interact)) != 14 {
		t.Errorf("interaction fan-in = %d, want 14", len(g.Pred(interact)))
	}
	// Embedding tables dominate parameters: 7 × 1M × 64 × 4B = 1.792 GB.
	var embedParams float64
	for _, op := range g.Ops() {
		if op.Kind == graph.OpEmbedding {
			embedParams += op.ParamBytes
		}
	}
	if want := 7.0 * 1e6 * 64 * 4; embedParams != want {
		t.Errorf("embedding params = %g, want %g", embedParams, want)
	}
}

func TestCANDLEUnoStructureAndSweep(t *testing.T) {
	g := CANDLEUno(DefaultCANDLEUnoConfig())
	// 7 inputs + 7*4 layers + concat + output = 37.
	if g.Len() != 37 {
		t.Fatalf("CANDLE-Uno ops = %d, want 37", g.Len())
	}
	if err := spgraph.Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, br := range []int{2, 4, 8, 16} {
		cfg := DefaultCANDLEUnoConfig()
		cfg.Branches = br
		gb := CANDLEUno(cfg)
		if gb.Len() != br*5+2 {
			t.Errorf("branches=%d: ops = %d", br, gb.Len())
		}
		if err := spgraph.Validate(gb); err != nil {
			t.Errorf("branches=%d: %v", br, err)
		}
	}
}

func TestCaseStudyStructure(t *testing.T) {
	g := CaseStudy(DefaultCaseStudyConfig())
	// 2 inputs + 2 branches * 4 repeats * 3 ops + concat = 27.
	if g.Len() != 27 {
		t.Fatalf("case study ops = %d, want 27", g.Len())
	}
	if err := spgraph.Validate(g); err != nil {
		t.Fatal(err)
	}
	attn, lin := 0, 0
	for _, op := range g.Ops() {
		switch op.Kind {
		case graph.OpAttention:
			attn++
		case graph.OpLinear:
			lin++
		}
	}
	if attn != 8 || lin != 16 {
		t.Errorf("attn=%d lin=%d, want 8/16", attn, lin)
	}
}

func TestAllModelsDecompose(t *testing.T) {
	gs := []*graph.Graph{
		MMT(DefaultMMTConfig()),
		DLRM(DefaultDLRMConfig()),
		CANDLEUno(DefaultCANDLEUnoConfig()),
		CaseStudy(DefaultCaseStudyConfig()),
		SequentialTransformer(32),
	}
	for _, g := range gs {
		d := spgraph.New(g)
		if d.IsAtom(d.Root()) {
			t.Errorf("%s: root is an atom, expected decomposable", g.Name())
		}
		n := d.CountZones()
		if n < 4 || n > 5000 {
			t.Errorf("%s: zone count %d out of expected range", g.Name(), n)
		}
	}
}

func TestPaperMiniBatch(t *testing.T) {
	cases := []struct {
		model   string
		devices int
		want    int
	}{
		{"mmt", 4, 64}, {"mmt", 32, 512},
		{"dlrm", 8, 512}, {"dlrm", 16, 1024},
		{"candle-uno", 4, 4096}, {"candle-uno", 32, 32768},
	}
	for _, c := range cases {
		got, err := PaperMiniBatch(c.model, c.devices)
		if err != nil || got != c.want {
			t.Errorf("PaperMiniBatch(%s, %d) = %d, %v; want %d", c.model, c.devices, got, err, c.want)
		}
	}
	if _, err := PaperMiniBatch("nope", 4); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := PaperMiniBatch("mmt", 7); err == nil {
		t.Error("unknown device count accepted")
	}
}

func TestGeneralistStructure(t *testing.T) {
	g := Generalist(DefaultGeneralistConfig())
	// 1 text input + 6 layers + 1 tab input + 4 ff + 2*(input+embed)
	// + fusion + head = 18.
	if g.Len() != 18 {
		t.Fatalf("generalist ops = %d, want 18", g.Len())
	}
	if err := spgraph.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Four sources: one per modality branch.
	if got := len(g.Sources()); got != 4 {
		t.Errorf("sources = %d, want 4", got)
	}
	// Heterogeneous kinds present.
	kinds := map[graph.OpKind]int{}
	for _, op := range g.Ops() {
		kinds[op.Kind]++
	}
	if kinds[graph.OpAttention] != 6 || kinds[graph.OpLinear] != 4 || kinds[graph.OpEmbedding] != 2 {
		t.Errorf("kind mix wrong: %v", kinds)
	}
	d := spgraph.New(g)
	if d.IsAtom(d.Root()) {
		t.Error("generalist should decompose")
	}
}

// TestBuildSynthSpecs pins the synth: routing in Build: a spec string
// builds a graph whose name is the resolved canonical spec, the same
// string rebuilds a byte-identical graph (the artifact-replay
// contract), and the branches override reaches the generator.
func TestBuildSynthSpecs(t *testing.T) {
	g, mb, err := Build("synth:fanout/seed=3", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mb != 32 {
		t.Errorf("synth default mini-batch = %d, want 32", mb)
	}
	if err := spgraph.Validate(g); err != nil {
		t.Fatal(err)
	}
	// The graph names itself with the *resolved* spec; rebuilding from
	// that name must reproduce it exactly.
	g2, _, err := Build(g.Name(), 0, 4)
	if err != nil {
		t.Fatalf("rebuilding from %q: %v", g.Name(), err)
	}
	if g.CanonicalHash() != g2.CanonicalHash() {
		t.Errorf("rebuild from resolved name changed the graph")
	}

	wide, _, err := Build("synth:fanout/seed=3", 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(wide.Sources()); got != 6 {
		t.Errorf("branches override: sources = %d, want 6", got)
	}

	if _, _, err := Build("synth:bogus/seed=1", 0, 4); err == nil {
		t.Error("unknown synth family accepted")
	}
	if _, _, err := Build("synth:chain/seed=", 0, 4); err == nil {
		t.Error("malformed synth spec accepted")
	}
}
