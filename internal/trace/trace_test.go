package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/core"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/eval"
	"graphpipe/internal/graph"
	"graphpipe/internal/models"

	_ "graphpipe/internal/eval/all"
)

func TestGanttAndSummary(t *testing.T) {
	g := models.SequentialTransformer(8)
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	p, err := core.NewPlanner(g, m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Plan(32)
	if err != nil {
		t.Fatal(err)
	}
	res := evaluated(t, g, topo, m, r)

	gantt := Gantt(r.Strategy, res, 80)
	lines := strings.Split(strings.TrimRight(gantt, "\n"), "\n")
	if len(lines) != r.Strategy.NumStages()+1 {
		t.Errorf("gantt rows = %d, want %d stages + axis", len(lines), r.Strategy.NumStages())
	}
	if !strings.Contains(gantt, "F") {
		t.Error("gantt missing forward marks")
	}
	if !strings.Contains(gantt, "B") {
		t.Error("gantt missing backward marks")
	}

	sum := Summary(r.Strategy, res)
	for _, want := range []string{"graphpipe", "stages", "depth", "throughput"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q: %s", want, sum)
		}
	}
}

func TestGanttDefaultsAndEmpty(t *testing.T) {
	if out := Gantt(nil, &eval.Report{}, 0); out != "" {
		t.Errorf("empty timeline should render empty, got %q", out)
	}
}

func TestCSV(t *testing.T) {
	c := NewCSV("devices", "graphpipe", "pipedream")
	c.Add(4, 123.456789, 100.0)
	c.Add(8, 250.0, "x")
	s := c.String()
	if !strings.HasPrefix(s, "devices,graphpipe,pipedream\n") {
		t.Errorf("csv header wrong: %q", s)
	}
	if !strings.Contains(s, "4,123.457,100\n") {
		t.Errorf("csv row formatting wrong: %q", s)
	}
	if !strings.Contains(s, "8,250,x\n") {
		t.Errorf("csv mixed row wrong: %q", s)
	}
	md := c.Markdown()
	if !strings.Contains(md, "| devices | graphpipe | pipedream |") ||
		!strings.Contains(md, "|---|---|---|") {
		t.Errorf("markdown wrong: %q", md)
	}
}

func TestChromeTrace(t *testing.T) {
	g := models.SequentialTransformer(8)
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	p, err := core.NewPlanner(g, m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Plan(32)
	if err != nil {
		t.Fatal(err)
	}
	res := evaluated(t, g, topo, m, r)
	data, err := ChromeTrace(r.Strategy, res)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	// Metadata per stage + one event per task.
	want := r.Strategy.NumStages() + len(res.Timeline)
	if len(events) != want {
		t.Errorf("events = %d, want %d", len(events), want)
	}
	counts := map[string]int{}
	for _, e := range events {
		if ph, _ := e["ph"].(string); ph == "X" {
			counts[e["cat"].(string)]++
			if e["dur"].(float64) <= 0 {
				t.Error("zero-duration task event")
			}
		}
	}
	if counts["forward"] == 0 || counts["backward"] == 0 {
		t.Errorf("missing categories: %v", counts)
	}
	if counts["forward"] != counts["backward"] {
		t.Errorf("forward/backward imbalance: %v", counts)
	}
}

// evaluated runs one iteration through the registered sim backend.
func evaluated(t *testing.T, g *graph.Graph, topo *cluster.Topology, m costmodel.Model, r *core.Result) *eval.Report {
	t.Helper()
	ev, err := eval.Get("sim")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ev.Evaluate(g, topo, r.Strategy, eval.Options{CostModel: m})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}
