package trace

import (
	"encoding/json"
	"fmt"

	"graphpipe/internal/eval"
	"graphpipe/internal/schedule"
	"graphpipe/internal/strategy"
)

// ChromeTrace renders an evaluated timeline in the Chrome trace-event
// format (chrome://tracing, Perfetto): one row per pipeline stage, one
// duration event per forward/backward task, with micro-batch metadata. The
// output is the JSON-array form of the format.
func ChromeTrace(st *strategy.Strategy, res *eval.Report) ([]byte, error) {
	type event struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`  // microseconds
		Dur  float64           `json:"dur"` // microseconds
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args,omitempty"`
	}
	var events []event
	// Stage name metadata.
	for i := range st.Stages {
		events = append(events, event{
			Name: "thread_name", Ph: "M", PID: 1, TID: i,
			Args: map[string]string{
				"name": fmt.Sprintf("S%d %s devices=%v", i, st.Stages[i].Config, st.Stages[i].Devices),
			},
		})
	}
	for _, tr := range res.Timeline {
		cat := "forward"
		if tr.Task.Kind == schedule.Backward {
			cat = "backward"
		}
		events = append(events, event{
			Name: tr.Task.String(),
			Cat:  cat,
			Ph:   "X",
			TS:   tr.Start * 1e6,
			Dur:  (tr.End - tr.Start) * 1e6,
			PID:  1,
			TID:  int(tr.Stage),
			Args: map[string]string{
				"samples": fmt.Sprintf("[%d,%d)", tr.Task.Start, tr.Task.End),
			},
		})
	}
	return json.Marshal(events)
}
