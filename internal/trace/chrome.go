package trace

import (
	"encoding/json"
	"fmt"

	"graphpipe/internal/eval"
	"graphpipe/internal/obs"
	"graphpipe/internal/schedule"
	"graphpipe/internal/strategy"
)

// chromeEvent is one Chrome trace-event ("X" duration or "M" metadata).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`            // microseconds
	Dur  float64           `json:"dur,omitempty"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTraceSpans renders request span trees — the obs layer's
// `?trace=1` / -trace-log output — in the same Chrome trace-event form
// as ChromeTrace, so a captured slow request opens in chrome://tracing
// or Perfetto next to the simulator timelines. Each process (router,
// shard) gets its own pid row; spans are duration events stamped with
// their IDs, parents, and attributes. Timestamps are the processes'
// wall clocks, so cross-process rows line up as well as those clocks do.
func ChromeTraceSpans(traces ...*obs.TraceExport) ([]byte, error) {
	var events []chromeEvent
	for pid, tr := range traces {
		if tr == nil {
			continue
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": tr.Process + " " + tr.TraceID},
		})
		for _, s := range tr.Spans {
			args := map[string]string{"id": s.ID}
			if s.Parent != "" {
				args["parent"] = s.Parent
			}
			for k, v := range s.Attrs {
				args[k] = v
			}
			events = append(events, chromeEvent{
				Name: s.Name,
				Cat:  "span",
				Ph:   "X",
				TS:   float64(tr.StartUnixUs + s.StartUs),
				Dur:  float64(s.DurUs),
				PID:  pid,
				Args: args,
			})
		}
	}
	return json.Marshal(events)
}

// ChromeTrace renders an evaluated timeline in the Chrome trace-event
// format (chrome://tracing, Perfetto): one row per pipeline stage, one
// duration event per forward/backward task, with micro-batch metadata. The
// output is the JSON-array form of the format.
func ChromeTrace(st *strategy.Strategy, res *eval.Report) ([]byte, error) {
	type event struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`  // microseconds
		Dur  float64           `json:"dur"` // microseconds
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args,omitempty"`
	}
	var events []event
	// Stage name metadata.
	for i := range st.Stages {
		events = append(events, event{
			Name: "thread_name", Ph: "M", PID: 1, TID: i,
			Args: map[string]string{
				"name": fmt.Sprintf("S%d %s devices=%v", i, st.Stages[i].Config, st.Stages[i].Devices),
			},
		})
	}
	for _, tr := range res.Timeline {
		cat := "forward"
		if tr.Task.Kind == schedule.Backward {
			cat = "backward"
		}
		events = append(events, event{
			Name: tr.Task.String(),
			Cat:  cat,
			Ph:   "X",
			TS:   tr.Start * 1e6,
			Dur:  (tr.End - tr.Start) * 1e6,
			PID:  1,
			TID:  int(tr.Stage),
			Args: map[string]string{
				"samples": fmt.Sprintf("[%d,%d)", tr.Task.Start, tr.Task.End),
			},
		})
	}
	return json.Marshal(events)
}
