// Package trace renders pipeline execution timelines as ASCII diagrams
// (the Figure 8 style of the paper) and emits CSV series for the
// evaluation figures.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"graphpipe/internal/eval"
	"graphpipe/internal/schedule"
	"graphpipe/internal/strategy"
)

// Gantt renders an evaluated timeline as one row per stage, `width`
// characters wide. Forward passes print the micro-batch index, backward
// passes print '·' followed by the index in brackets when space permits;
// idle time prints '-'. It is a debugging and documentation aid, not a
// parser-stable format. Reports from any registered evaluation backend
// render identically: the timeline is the shared eval.Report currency.
func Gantt(st *strategy.Strategy, res *eval.Report, width int) string {
	if width <= 0 {
		width = 100
	}
	var tmax float64
	for _, tr := range res.Timeline {
		if tr.End > tmax {
			tmax = tr.End
		}
	}
	if tmax == 0 {
		return ""
	}
	scale := float64(width) / tmax

	rows := make([][]byte, len(st.Stages))
	for i := range rows {
		rows[i] = []byte(strings.Repeat("-", width))
	}
	// Paint later tasks over earlier ones in start order for stable
	// output.
	recs := append([]eval.TaskRecord(nil), res.Timeline...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
	for _, tr := range recs {
		lo := int(tr.Start * scale)
		hi := int(tr.End * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		label := fmt.Sprintf("F%d", tr.Task.Index)
		fill := byte('F')
		if tr.Task.Kind == schedule.Backward {
			label = fmt.Sprintf("B%d", tr.Task.Index)
			fill = 'B'
		}
		row := rows[tr.Stage]
		for x := lo; x < hi; x++ {
			row[x] = fill
		}
		if hi-lo >= len(label) {
			copy(row[lo:], label)
		}
	}
	var sb strings.Builder
	for i, row := range rows {
		fmt.Fprintf(&sb, "S%-3d |%s|\n", i, row)
	}
	fmt.Fprintf(&sb, "      0%s%.3gs\n", strings.Repeat(" ", width-8), tmax)
	return sb.String()
}

// Summary renders a one-paragraph description of a strategy and its
// evaluated result: stage count, pipeline depth, chosen micro-batch size,
// throughput, and peak memory — the quantities §7.5's case study compares.
func Summary(st *strategy.Strategy, res *eval.Report) string {
	peakMem := res.PeakMemory()
	maxIF := res.MaxInFlightSamples()
	microBatches := map[int]bool{}
	for i := range st.Stages {
		microBatches[st.Stages[i].Config.MicroBatch] = true
	}
	var bs []int
	for b := range microBatches {
		bs = append(bs, b)
	}
	sort.Ints(bs)
	return fmt.Sprintf(
		"%s: %d stages, depth %d, micro-batch %v, iteration %.4gms, throughput %.4g samples/s, peak memory %.3g GB, max in-flight %d samples",
		st.Planner, st.NumStages(), st.Depth(), bs,
		res.IterationTime*1e3, res.Throughput, peakMem/1e9, maxIF)
}

// CSV renders rows of (x, series...) values with a header, the format the
// experiment drivers emit for each figure.
type CSV struct {
	Header []string
	Rows   [][]string
}

// NewCSV creates a table with the given column names.
func NewCSV(header ...string) *CSV { return &CSV{Header: header} }

// Add appends a row; values are formatted with %v.
func (c *CSV) Add(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	c.Rows = append(c.Rows, row)
}

// String renders the table as comma-separated lines.
func (c *CSV) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(c.Header, ","))
	sb.WriteByte('\n')
	for _, row := range c.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table, used in
// EXPERIMENTS.md.
func (c *CSV) Markdown() string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(c.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(c.Header)) + "\n")
	for _, row := range c.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}
