// Package memosnap defines the persistable form of the core planner's DP
// memo: a compact, versioned snapshot of every memo entry — key, validity
// interval, and flattened derivation tree — produced by one Plan call.
//
// Snapshots exist so elastic replanning (a device lost or added, a
// mini-batch sweep) does not pay full search cost: a later search over the
// same canonical graph imports the snapshot and re-solves only the states
// whose validity interval its targets miss. The format is read-optimized in
// the spirit of asymmetric-memory data structures — a snapshot is written
// once, at the end of a search, and consulted by many later ones — so the
// layout is flat arrays (keys, intervals, node records) that import in one
// linear pass, with a single checksum verified up front instead of
// per-record framing.
//
// The package is a leaf: it knows nothing about graphs, planners, or
// services, only the numeric shape of a memo. internal/core translates its
// in-memory memo to and from this form; internal/memostore holds snapshots
// in tiers; internal/service and cmd/graphpipe move them around.
package memosnap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// SnapshotVersion is the wire-format version. Decode rejects other
// versions with ErrUnknownSnapshotVersion rather than guessing.
// Version 2 added the placement-class signature list (Placements).
const SnapshotVersion = 2

// snapshotMagic prefixes every encoded snapshot.
var snapshotMagic = [6]byte{'G', 'P', 'M', 'E', 'M', 'O'}

// Sentinel errors for snapshot decoding, mirroring the strategy package's
// artifact sentinels (ErrCorruptArtifact / ErrUnknownVersion). Wrapped
// errors add context; test with errors.Is. Callers degrade both cases to a
// cold plan — a snapshot is a cache, never a source of truth.
var (
	// ErrCorruptSnapshot marks data that does not parse as a snapshot.
	ErrCorruptSnapshot = errors.New("memosnap: corrupt snapshot")
	// ErrUnknownSnapshotVersion marks a snapshot written by an
	// incompatible format version.
	ErrUnknownSnapshotVersion = errors.New("memosnap: unknown snapshot version")
)

// Key is a snapshot's compatibility identity. Two searches may share memo
// entries only when all three components match: the canonical graph hash
// (same computation graph), the shape signature (same structural search
// options — micro-batch candidates, kFkB candidates, split rules), and the
// cost signature (same topology observables and cost-model behavior, so
// every per-stage cost the DP consulted comes out identical).
type Key struct {
	// GraphHash is graph.CanonicalHash() of the planned graph.
	GraphHash string
	// ShapeSig hashes the result-relevant structural planner options.
	ShapeSig uint64
	// CostSig hashes the topology observables and deterministic
	// cost-model probe outputs.
	CostSig uint64
}

// Config mirrors one schedule configuration (micro-batch size, kFkB k).
type Config struct {
	MicroBatch int32
	K          int32
}

// Node is one flattened dpResult. Children precede parents: an encoded
// node may reference only lower-indexed nodes, so an importer rebuilds the
// derivation forest in one forward pass.
type Node struct {
	// Leaf marks a base-case (single stage) result.
	Leaf bool
	// Zone is the leaf's series-parallel zone id (leaf only).
	Zone int32
	// Devs is the leaf stage's data-parallel degree (leaf only).
	Devs int32
	// Left and Right index the child nodes (inner only).
	Left  int32
	Right int32
	// NStages is the subtree's stage count (1 for a leaf).
	NStages int32
	// Cfg is the leaf stage's schedule config, or the inner node's
	// source-stage config.
	Cfg Config
	// InFlight is the source stage's in-flight sample count.
	InFlight int32
	// Mem is the leaf stage's memory, or the subtree's peak memory.
	Mem float64
	// TPS is the leaf stage's TPS, or the subtree's bottleneck TPS.
	TPS float64
}

// Entry is one memo entry: packed DP key, validity interval [Lo, Hi), and
// the value — a node index, or -1 for a known-infeasible subproblem.
type Entry struct {
	Key    uint64
	Lo, Hi float64
	Val    int32
}

// Infeasible is the Entry.Val marking a memoized infeasible subproblem.
const Infeasible int32 = -1

// SearchMemo is the memo of one per-micro-batch-size binary search. Memo
// values depend on the search's mini-batch (through the TPS objective's
// allreduce term) and on its frozen config index (through key packing), so
// entries are never shared across SearchMemos: an importer uses a
// SearchMemo only when MiniBatch and RootB match and the freshly frozen
// Configs/Boundary lists are identical.
type SearchMemo struct {
	// MiniBatch is the planned mini-batch size B.
	MiniBatch int32
	// RootB is the search's root micro-batch candidate.
	RootB int32
	// Devices is the cluster size the search ran at. Informational: an
	// importer at a different device count still uses the memo (entries
	// for degrees beyond its cluster are simply never queried).
	Devices int32
	// NumZones is the exporter's zone-table size; an importer whose
	// resolved zone table disagrees must reject the memo.
	NumZones int32
	// Configs is the search's frozen schedule-config index, in freeze
	// order. Key packing refers to configs by index, so an importer must
	// verify its own frozen list is identical.
	Configs []Config
	// Boundary is the search's stage-boundary candidate list.
	Boundary []Config
	// Nodes is the flattened derivation forest (children before parents).
	Nodes []Node
	// Entries are the memo entries, sorted by Key and then by [Lo, Hi). A
	// key may repeat: each occurrence is one span variant of the same DP
	// state — the exporter keeps every validity interval the search
	// accumulated, so a warm import covers many probe targets, not just
	// the final probe's survivors.
	Entries []Entry
}

// Snapshot is one Plan call's exported memo: identity plus one SearchMemo
// per micro-batch-size search.
type Snapshot struct {
	Key Key
	// Placements lists the exporter's placement-class signatures in class-id
	// order (cluster.PlacementTable.Signatures). DP keys embed class ids,
	// and ids are not stable across topologies that merely share per-device
	// costs, so an importer whose own table differs translates each key's
	// placement field by signature — dropping entries whose signature it
	// does not have — instead of trusting raw ids. Empty for
	// placement-oblivious searches, whose keys carry no placement field.
	Placements []string
	Searches   []SearchMemo
}

// Search returns the memo for (miniBatch, rootB), or nil.
func (s *Snapshot) Search(miniBatch, rootB int) *SearchMemo {
	if s == nil {
		return nil
	}
	for i := range s.Searches {
		if int(s.Searches[i].MiniBatch) == miniBatch && int(s.Searches[i].RootB) == rootB {
			return &s.Searches[i]
		}
	}
	return nil
}

// Entries counts memo entries across every search.
func (s *Snapshot) Entries() int {
	if s == nil {
		return 0
	}
	n := 0
	for i := range s.Searches {
		n += len(s.Searches[i].Entries)
	}
	return n
}

// Merge combines two snapshots of the same Key into a new snapshot,
// mutating neither. Searches are matched by (MiniBatch, RootB); matched
// pairs union at the entry level — every span variant from both sides
// survives, with src's derivation nodes appended after dst's and entry
// values remapped accordingly. Entry-level union is sound for the same
// reason the probe-spanning memo is: a memo value is a pure function of
// its packed key and validity interval, so variants from different
// searches never disagree where their intervals overlap. The union is
// what lets an exporter emit only the entries its own search computed: the
// accumulated snapshot grows by exactly the new work, instead of being
// re-serialized wholesale on every plan.
//
// A matched pair whose structural fields (NumZones, Configs, Boundary)
// disagree cannot share a keyspace, so src's side wins outright. A nil
// argument yields the other; mismatched keys yield src (a snapshot for a
// different question replaces, not extends).
func Merge(dst, src *Snapshot) *Snapshot {
	if dst == nil {
		return src
	}
	if src == nil {
		return dst
	}
	if dst.Key != src.Key {
		return src
	}
	if !samePlacements(dst.Placements, src.Placements) {
		// Different placement-class tables mean the two sides' keys embed
		// incomparable class ids; translating at merge time would need a
		// topology neither snapshot carries, so last writer wins.
		return src
	}
	out := &Snapshot{Key: src.Key, Placements: src.Placements}
	used := make([]bool, len(src.Searches))
	for i := range dst.Searches {
		d := &dst.Searches[i]
		merged := *d
		for j := range src.Searches {
			s := &src.Searches[j]
			if used[j] || s.MiniBatch != d.MiniBatch || s.RootB != d.RootB {
				continue
			}
			used[j] = true
			if s.NumZones != d.NumZones || !sameConfigs(s.Configs, d.Configs) || !sameConfigs(s.Boundary, d.Boundary) {
				merged = *s // incompatible keyspaces: last writer wins
			} else {
				merged = mergeSearch(d, s)
			}
			break
		}
		out.Searches = append(out.Searches, merged)
	}
	for j := range src.Searches {
		if !used[j] {
			out.Searches = append(out.Searches, src.Searches[j])
		}
	}
	return out
}

func samePlacements(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameConfigs(a, b []Config) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeSearch unions two compatible SearchMemos. dst's nodes and entries
// keep their positions; src's nodes are appended with their indices
// offset, and the entry lists — both sorted by (Key, Lo, Hi) — merge in
// one pass, dropping src variants whose (Key, Lo, Hi) dst already holds
// (their values are identical by purity).
func mergeSearch(dst, src *SearchMemo) SearchMemo {
	out := *src // scalar fields (Devices): last writer wins
	out.NumZones = dst.NumZones
	out.Configs = dst.Configs
	out.Boundary = dst.Boundary
	if len(src.Entries) == 0 {
		out.Nodes, out.Entries = dst.Nodes, dst.Entries
		out.Devices = dst.Devices
		return out
	}
	offset := int32(len(dst.Nodes))
	out.Nodes = make([]Node, 0, len(dst.Nodes)+len(src.Nodes))
	out.Nodes = append(out.Nodes, dst.Nodes...)
	for _, n := range src.Nodes {
		if !n.Leaf {
			n.Left += offset
			n.Right += offset
		}
		out.Nodes = append(out.Nodes, n)
	}
	out.Entries = make([]Entry, 0, len(dst.Entries)+len(src.Entries))
	i, j := 0, 0
	for i < len(dst.Entries) && j < len(src.Entries) {
		a, b := dst.Entries[i], src.Entries[j]
		switch cmpEntry(a, b) {
		case -1:
			out.Entries = append(out.Entries, a)
			i++
		case 1:
			out.Entries = append(out.Entries, remap(b, offset))
			j++
		default:
			out.Entries = append(out.Entries, a)
			i++
			j++
		}
	}
	out.Entries = append(out.Entries, dst.Entries[i:]...)
	for ; j < len(src.Entries); j++ {
		out.Entries = append(out.Entries, remap(src.Entries[j], offset))
	}
	return out
}

// cmpEntry orders entries by (Key, Lo, Hi) — the exporter's sort order.
func cmpEntry(a, b Entry) int {
	switch {
	case a.Key != b.Key:
		if a.Key < b.Key {
			return -1
		}
		return 1
	case a.Lo != b.Lo:
		if a.Lo < b.Lo {
			return -1
		}
		return 1
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	}
	return 0
}

func remap(e Entry, offset int32) Entry {
	if e.Val != Infeasible {
		e.Val += offset
	}
	return e
}

// --- wire format ---
//
// All integers are little-endian. Layout:
//
//	magic[6] version:u32 crc:u32            (crc over everything after it)
//	graphHashLen:u32 graphHash[...]
//	shapeSig:u64 costSig:u64
//	numPlacements:u32 {sigLen:u32 sig[...]}...
//	numSearches:u32
//	per search:
//	  miniBatch:i32 rootB:i32 devices:i32 numZones:i32
//	  numConfigs:u32  {microBatch:i32 k:i32}...
//	  numBoundary:u32 {microBatch:i32 k:i32}...
//	  numNodes:u32    {kind:u8 zone:i32 devs:i32 left:i32 right:i32
//	                   nStages:i32 cfgMB:i32 cfgK:i32 inFlight:i32
//	                   mem:f64 tps:f64}...
//	  numEntries:u32  {key:u64 lo:f64 hi:f64 val:i32}...

const (
	headerSize    = 6 + 4 + 4
	nodeWireSize  = 1 + 8*4 + 2*8
	entryWireSize = 8 + 2*8 + 4
	configSize    = 8
)

type writer struct{ buf []byte }

func (w *writer) u8(v byte)     { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32)  { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i32(v int32)   { w.u32(uint32(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

// Encode renders the snapshot in the versioned binary format.
func Encode(s *Snapshot) []byte {
	w := &writer{buf: make([]byte, 0, encodedSizeHint(s))}
	w.buf = append(w.buf, snapshotMagic[:]...)
	w.u32(SnapshotVersion)
	w.u32(0) // crc placeholder

	w.u32(uint32(len(s.Key.GraphHash)))
	w.buf = append(w.buf, s.Key.GraphHash...)
	w.u64(s.Key.ShapeSig)
	w.u64(s.Key.CostSig)

	w.u32(uint32(len(s.Placements)))
	for _, sig := range s.Placements {
		w.u32(uint32(len(sig)))
		w.buf = append(w.buf, sig...)
	}

	w.u32(uint32(len(s.Searches)))
	for i := range s.Searches {
		sm := &s.Searches[i]
		w.i32(sm.MiniBatch)
		w.i32(sm.RootB)
		w.i32(sm.Devices)
		w.i32(sm.NumZones)
		w.u32(uint32(len(sm.Configs)))
		for _, c := range sm.Configs {
			w.i32(c.MicroBatch)
			w.i32(c.K)
		}
		w.u32(uint32(len(sm.Boundary)))
		for _, c := range sm.Boundary {
			w.i32(c.MicroBatch)
			w.i32(c.K)
		}
		w.u32(uint32(len(sm.Nodes)))
		for _, n := range sm.Nodes {
			kind := byte(0)
			if n.Leaf {
				kind = 1
			}
			w.u8(kind)
			w.i32(n.Zone)
			w.i32(n.Devs)
			w.i32(n.Left)
			w.i32(n.Right)
			w.i32(n.NStages)
			w.i32(n.Cfg.MicroBatch)
			w.i32(n.Cfg.K)
			w.i32(n.InFlight)
			w.f64(n.Mem)
			w.f64(n.TPS)
		}
		w.u32(uint32(len(sm.Entries)))
		for _, e := range sm.Entries {
			w.u64(e.Key)
			w.f64(e.Lo)
			w.f64(e.Hi)
			w.i32(e.Val)
		}
	}
	binary.LittleEndian.PutUint32(w.buf[10:14], crc32.ChecksumIEEE(w.buf[headerSize:]))
	return w.buf
}

func encodedSizeHint(s *Snapshot) int {
	n := headerSize + 4 + len(s.Key.GraphHash) + 16 + 4
	n += 4
	for _, sig := range s.Placements {
		n += 4 + len(sig)
	}
	for i := range s.Searches {
		sm := &s.Searches[i]
		n += 4*4 + 3*4
		n += configSize * (len(sm.Configs) + len(sm.Boundary))
		n += nodeWireSize * len(sm.Nodes)
		n += entryWireSize * len(sm.Entries)
	}
	return n
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at offset %d", ErrCorruptSnapshot, r.off)
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32     { return int32(r.u32()) }
func (r *reader) f64() float64   { return math.Float64frombits(r.u64()) }
func (r *reader) remaining() int { return len(r.buf) - r.off }

// count reads a length prefix and bounds it by the bytes remaining at
// recordSize each, so a corrupt length cannot drive a huge allocation.
func (r *reader) count(recordSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*recordSize > r.remaining() {
		r.err = fmt.Errorf("%w: count %d exceeds remaining %d bytes", ErrCorruptSnapshot, n, r.remaining())
		return 0
	}
	return n
}

// Decode parses a versioned snapshot, verifying magic, version, and
// checksum before touching the body. It distinguishes the two failure
// classes the way DecodeArtifact does: data this build does not speak
// (ErrUnknownSnapshotVersion) versus data that is not a snapshot at all
// (ErrCorruptSnapshot). Structural validity beyond the wire format — zone
// ranges, config-index agreement — is the importer's job, because it needs
// context (the freshly resolved zone table) the decoder does not have.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrCorruptSnapshot, len(data), headerSize)
	}
	if [6]byte(data[:6]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptSnapshot)
	}
	if v := binary.LittleEndian.Uint32(data[6:10]); v != SnapshotVersion {
		return nil, fmt.Errorf("%w: got %d, this build speaks %d", ErrUnknownSnapshotVersion, v, SnapshotVersion)
	}
	want := binary.LittleEndian.Uint32(data[10:14])
	if got := crc32.ChecksumIEEE(data[headerSize:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (%08x vs %08x)", ErrCorruptSnapshot, got, want)
	}

	r := &reader{buf: data, off: headerSize}
	s := &Snapshot{}
	hlen := r.count(1)
	if r.err != nil {
		return nil, r.err
	}
	s.Key.GraphHash = string(r.buf[r.off : r.off+hlen])
	r.off += hlen
	s.Key.ShapeSig = r.u64()
	s.Key.CostSig = r.u64()

	nPlace := r.count(4)
	for i := 0; i < nPlace && r.err == nil; i++ {
		slen := r.count(1)
		if r.err != nil {
			break
		}
		s.Placements = append(s.Placements, string(r.buf[r.off:r.off+slen]))
		r.off += slen
	}

	nSearches := r.count(4 * 4)
	for i := 0; i < nSearches && r.err == nil; i++ {
		var sm SearchMemo
		sm.MiniBatch = r.i32()
		sm.RootB = r.i32()
		sm.Devices = r.i32()
		sm.NumZones = r.i32()
		if nc := r.count(configSize); nc > 0 {
			sm.Configs = make([]Config, nc)
			for j := range sm.Configs {
				sm.Configs[j] = Config{MicroBatch: r.i32(), K: r.i32()}
			}
		}
		if nb := r.count(configSize); nb > 0 {
			sm.Boundary = make([]Config, nb)
			for j := range sm.Boundary {
				sm.Boundary[j] = Config{MicroBatch: r.i32(), K: r.i32()}
			}
		}
		nn := r.count(nodeWireSize)
		if nn > 0 {
			sm.Nodes = make([]Node, nn)
			for j := range sm.Nodes {
				n := &sm.Nodes[j]
				n.Leaf = r.u8() == 1
				n.Zone = r.i32()
				n.Devs = r.i32()
				n.Left = r.i32()
				n.Right = r.i32()
				n.NStages = r.i32()
				n.Cfg = Config{MicroBatch: r.i32(), K: r.i32()}
				n.InFlight = r.i32()
				n.Mem = r.f64()
				n.TPS = r.f64()
				// Children strictly precede parents so import is one pass.
				if !n.Leaf && r.err == nil {
					if n.Left < 0 || int(n.Left) >= j || n.Right < 0 || int(n.Right) >= j {
						r.err = fmt.Errorf("%w: node %d references children %d/%d out of order", ErrCorruptSnapshot, j, n.Left, n.Right)
					}
				}
			}
		}
		ne := r.count(entryWireSize)
		if ne > 0 {
			sm.Entries = make([]Entry, ne)
			for j := range sm.Entries {
				e := &sm.Entries[j]
				e.Key = r.u64()
				e.Lo = r.f64()
				e.Hi = r.f64()
				e.Val = r.i32()
				if r.err == nil && (e.Val < Infeasible || int(e.Val) >= len(sm.Nodes)) {
					r.err = fmt.Errorf("%w: entry %d value %d outside node table of %d", ErrCorruptSnapshot, j, e.Val, len(sm.Nodes))
				}
			}
		}
		s.Searches = append(s.Searches, sm)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptSnapshot, r.remaining())
	}
	return s, nil
}
