package memosnap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Key: Key{GraphHash: "abcd1234", ShapeSig: 0x1122334455667788, CostSig: 0x99aabbccddeeff00},
		Searches: []SearchMemo{
			{
				MiniBatch: 32, RootB: 8, Devices: 4, NumZones: 7,
				Configs:  []Config{{MicroBatch: 8, K: 1}},
				Boundary: []Config{{MicroBatch: 8, K: 1}},
				Nodes: []Node{
					{Leaf: true, Zone: 3, Devs: 2, NStages: 1, Cfg: Config{MicroBatch: 8, K: 1}, InFlight: 16, Mem: 1e9, TPS: 2.5e-4},
					{Leaf: true, Zone: 4, Devs: 2, NStages: 1, Cfg: Config{MicroBatch: 8, K: 1}, InFlight: 8, Mem: 2e9, TPS: 1.5e-4},
					{Left: 0, Right: 1, NStages: 2, Cfg: Config{MicroBatch: 8, K: 1}, InFlight: 16, Mem: 2e9, TPS: 2.5e-4},
				},
				Entries: []Entry{
					{Key: 0x4003, Lo: 0, Hi: math.Inf(1), Val: 2},
					{Key: 0x8004, Lo: 1e-4, Hi: 3e-4, Val: 1},
					{Key: 0xc005, Lo: 0, Hi: 2e-4, Val: Infeasible},
				},
			},
			{
				MiniBatch: 32, RootB: 4, Devices: 4, NumZones: 7,
				Configs:  []Config{{MicroBatch: 4, K: 1}},
				Boundary: []Config{{MicroBatch: 4, K: 1}},
				Entries:  []Entry{{Key: 0x4001, Lo: 0, Hi: 5e-4, Val: Infeasible}},
			},
		},
	}
}

// TestRoundTrip pins encode → decode → re-encode byte stability: the
// property that lets the disk tier re-verify files and the CLI's merged
// sweep files stay diffable.
func TestRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	data := Encode(s)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Key != s.Key {
		t.Errorf("key drifted: %+v vs %+v", got.Key, s.Key)
	}
	if got.Entries() != s.Entries() {
		t.Errorf("entry count drifted: %d vs %d", got.Entries(), s.Entries())
	}
	re := Encode(got)
	if !bytes.Equal(re, data) {
		t.Errorf("re-encode changed bytes: %d vs %d", len(re), len(data))
	}
	// Spot-check a deep field including the +Inf interval bound.
	e := got.Searches[0].Entries[0]
	if !math.IsInf(e.Hi, 1) || e.Val != 2 {
		t.Errorf("entry 0 = %+v, want hi=+Inf val=2", e)
	}
	if n := got.Searches[0].Nodes[2]; n.Leaf || n.Left != 0 || n.Right != 1 {
		t.Errorf("inner node = %+v", n)
	}
}

// TestDecodeFailureClasses pins the two sentinel errors the way the
// strategy package pins ErrCorruptArtifact/ErrUnknownVersion: callers
// branch on errors.Is, so the classes must not drift into each other.
func TestDecodeFailureClasses(t *testing.T) {
	good := Encode(sampleSnapshot())

	futile := func(name string, data []byte, want error) {
		t.Helper()
		_, err := Decode(data)
		if !errors.Is(err, want) {
			t.Errorf("%s: got %v, want %v", name, err, want)
		}
	}

	futile("empty", nil, ErrCorruptSnapshot)
	futile("short", good[:8], ErrCorruptSnapshot)
	futile("bad magic", append([]byte("NOTSNAP"), good[7:]...), ErrCorruptSnapshot)

	future := bytes.Clone(good)
	binary.LittleEndian.PutUint32(future[6:10], SnapshotVersion+1)
	futile("future version", future, ErrUnknownSnapshotVersion)

	flipped := bytes.Clone(good)
	flipped[len(flipped)-1] ^= 0xFF
	futile("bit flip", flipped, ErrCorruptSnapshot)

	truncated := bytes.Clone(good[:len(good)-16])
	binary.LittleEndian.PutUint32(truncated[10:14], crc32.ChecksumIEEE(truncated[14:]))
	futile("truncated with fixed crc", truncated, ErrCorruptSnapshot)

	// A node referencing a child at or after itself must be rejected — the
	// importer relies on one-pass reconstruction.
	s := sampleSnapshot()
	s.Searches[0].Nodes[2].Right = 2
	futile("forward child reference", Encode(s), ErrCorruptSnapshot)

	// An entry pointing outside the node table must be rejected.
	s = sampleSnapshot()
	s.Searches[0].Entries[0].Val = 99
	futile("entry value out of range", Encode(s), ErrCorruptSnapshot)
}

// TestMerge pins entry-level union: a matched pair keeps every span
// variant from both sides (src's derivation nodes appended, entry values
// remapped), exact-duplicate variants deduplicate, structurally
// incompatible pairs fall back to src-wins, and merging an empty export
// leaves dst byte-identical — the drift-free accumulation the incremental
// exporter relies on.
func TestMerge(t *testing.T) {
	old := sampleSnapshot()
	fresh := &Snapshot{
		Key: old.Key,
		Searches: []SearchMemo{
			// Compatible with old's (32,8): a new key with its own node, a
			// new span variant of an existing key, and an exact duplicate.
			{MiniBatch: 32, RootB: 8, Devices: 2, NumZones: 7,
				Configs:  []Config{{MicroBatch: 8, K: 1}},
				Boundary: []Config{{MicroBatch: 8, K: 1}},
				Nodes: []Node{
					{Leaf: true, Zone: 5, Devs: 1, NStages: 1, Cfg: Config{MicroBatch: 8, K: 1}, InFlight: 4, Mem: 5e8, TPS: 3e-4},
				},
				Entries: []Entry{
					{Key: 0x4002, Lo: 0, Hi: 1e-4, Val: 0},
					{Key: 0x8004, Lo: 3e-4, Hi: 6e-4, Val: Infeasible},
					{Key: 0xc005, Lo: 0, Hi: 2e-4, Val: Infeasible},
				}},
			// Structurally incompatible with old's (32,4): src wins outright.
			{MiniBatch: 32, RootB: 4, Devices: 2, NumZones: 9,
				Entries: []Entry{{Key: 0x4002, Lo: 0, Hi: 1, Val: Infeasible}}},
			{MiniBatch: 64, RootB: 16, Devices: 2, NumZones: 7},
		},
	}
	m := Merge(old, fresh)
	if len(m.Searches) != 3 {
		t.Fatalf("merged %d searches, want 3", len(m.Searches))
	}
	sm := m.Search(32, 8)
	if sm == nil {
		t.Fatal("(32,8) missing after merge")
	}
	if sm.Devices != 2 {
		t.Errorf("(32,8) Devices = %d, want src's 2", sm.Devices)
	}
	if len(sm.Nodes) != 4 {
		t.Errorf("(32,8) has %d nodes, want dst's 3 + src's 1", len(sm.Nodes))
	}
	if len(sm.Entries) != 5 {
		t.Fatalf("(32,8) has %d entries, want 5 (3 dst + 2 fresh, 1 dedup): %+v", len(sm.Entries), sm.Entries)
	}
	for i := 1; i < len(sm.Entries); i++ {
		if cmpEntry(sm.Entries[i-1], sm.Entries[i]) >= 0 {
			t.Errorf("merged entries out of order at %d: %+v", i, sm.Entries)
		}
	}
	// src's new key landed with its node index offset past dst's nodes.
	if e := sm.Entries[0]; e.Key != 0x4002 || e.Val != 3 {
		t.Errorf("new key not remapped: %+v, want Key=0x4002 Val=3", e)
	}
	if n := sm.Nodes[3]; !n.Leaf || n.Zone != 5 {
		t.Errorf("src node not appended: %+v", n)
	}
	// Both span variants of 0x8004 survive; 0xc005 deduplicated.
	var variants, dups int
	for _, e := range sm.Entries {
		if e.Key == 0x8004 {
			variants++
		}
		if e.Key == 0xc005 {
			dups++
		}
	}
	if variants != 2 || dups != 1 {
		t.Errorf("got %d variants of 0x8004 (want 2), %d of 0xc005 (want 1)", variants, dups)
	}

	if sm := m.Search(32, 4); sm == nil || sm.NumZones != 9 || len(sm.Entries) != 1 || sm.Entries[0].Key != 0x4002 {
		t.Errorf("structurally incompatible (32,4) not replaced by src: %+v", sm)
	}
	if m.Search(64, 16) == nil {
		t.Errorf("(64,16) not appended from src")
	}

	// An imported-but-unprobed search exports an empty SearchMemo; merging
	// it must reproduce dst's bytes exactly.
	empty := &Snapshot{
		Key: old.Key,
		Searches: []SearchMemo{
			{MiniBatch: 32, RootB: 8, Devices: 4, NumZones: 7,
				Configs:  []Config{{MicroBatch: 8, K: 1}},
				Boundary: []Config{{MicroBatch: 8, K: 1}}},
		},
	}
	if !bytes.Equal(Encode(Merge(old, empty)), Encode(old)) {
		t.Error("merging an empty export changed dst's bytes")
	}

	if got := Merge(nil, fresh); got != fresh {
		t.Errorf("Merge(nil, src) != src")
	}
	if got := Merge(old, nil); got != old {
		t.Errorf("Merge(dst, nil) != dst")
	}
	other := sampleSnapshot()
	other.Key.CostSig++
	if got := Merge(old, other); got != other {
		t.Errorf("mismatched keys should yield src wholesale")
	}
}

func TestSearchLookup(t *testing.T) {
	s := sampleSnapshot()
	if sm := s.Search(32, 8); sm == nil || sm.RootB != 8 {
		t.Errorf("Search(32,8) = %+v", sm)
	}
	if sm := s.Search(32, 2); sm != nil {
		t.Errorf("Search(32,2) = %+v, want nil", sm)
	}
	var nilSnap *Snapshot
	if nilSnap.Search(1, 1) != nil || nilSnap.Entries() != 0 {
		t.Errorf("nil snapshot accessors must be safe")
	}
}
