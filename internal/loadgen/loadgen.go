// Package loadgen replays skewed synthetic planning traffic against a
// planning endpoint — one graphpiped or a fleet router — and reduces the
// outcome to the latency and hit-ratio numbers a capacity plan needs.
//
// The workload vocabulary is internal/synth: a seeded population of
// resolved specs (synth.Population) crossed with a device-count ladder
// gives K distinct planning questions, and a Zipf(s) sampler over their
// popularity ranks replays N requests the way real traffic would — a hot
// head the caches must absorb and a long tail that keeps missing. The
// whole run derives from one seed, so the identical request sequence can
// be replayed against a rebuilt fleet; aggregate statistics from a
// sampled slice then project full-scale behavior, in the spirit of the
// sampling-fidelity arguments the ROADMAP cites. Latency is tracked per
// cache tier (memory, disk, peer, cold), not just as a blended mean,
// because the tiers' costs are asymmetric.
package loadgen

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphpipe/internal/obs"
	"graphpipe/internal/service"
	"graphpipe/internal/strategy"
	"graphpipe/internal/synth"
)

// maxVerifyBytes bounds how much of a 200 body VerifyPlans will buffer
// for fingerprint verification — matches the router's own relay bound.
const maxVerifyBytes = 64 << 20

// Config describes one replay run.
type Config struct {
	// Target is the base URL traffic is replayed against (a router or a
	// single daemon).
	Target string
	// Requests is the replay length (default 1000).
	Requests int
	// Concurrency is the number of in-flight replay workers (default 8).
	Concurrency int
	// ZipfS is the popularity skew exponent: request i in the popularity
	// ranking is drawn proportionally to 1/(i+1)^s. 0 disables skew
	// (uniform); default 1.1, a web-traffic-like head.
	ZipfS float64
	// Population is the number of distinct planning questions (default
	// 32); Families narrows which synth families they draw from (empty:
	// all).
	Population int
	Families   []string
	// Devices is the device-count ladder the population cycles through
	// (default {2, 3, 4} — small counts keep cold searches cheap).
	Devices []int
	// Planner names the planner every request asks for (default
	// "graphpipe").
	Planner string
	// Seed derives the population and the sampled request sequence.
	Seed int64
	// BudgetMs stamps every request with an end-to-end time budget
	// (service.HeaderBudget); 0 sends none. Responses of 504 — budgets
	// that died mid-fleet — are counted apart from other errors, because
	// under injected faults a bounded 504 is correct degradation while a
	// hung request would be a bug.
	BudgetMs int
	// VerifyPlans re-verifies every 200 body against its fingerprint
	// (Result.ByteMismatches counts the failures — wrong bytes that
	// reached a client, acceptable only at zero) and tracks a content
	// hash per fingerprint across the run (Result.AlternatePlans counts
	// valid bodies that differ byte-wise from an earlier valid 200 for
	// the same question — independent re-plans, possible only when peer
	// cache-fill was unavailable).
	VerifyPlans bool
	// Pace is a per-worker sleep between requests (0: replay flat out).
	// A chaos soak paces its arrivals so time-based recovery — breaker
	// open windows, health probe rounds — is measured in requests the
	// fleet could plausibly see, not swamped at memory speed.
	Pace time.Duration
	// TraceSample traces every Nth replayed request (0 disables): the
	// request carries a deterministic X-Graphpipe-Trace ID and ?trace=1,
	// and the fleet answers with its span-tree envelope. Traced requests
	// feed Result.Phases (where slow-request time actually goes) and
	// Result.SlowTraces (exemplar span trees at the traced p99). Traced
	// bodies skip VerifyPlans hashing — the envelope re-encodes them.
	TraceSample int
	// Client issues the requests; nil uses a 60s-timeout client.
	Client *http.Client
}

// Result is one replay's reduced outcome.
type Result struct {
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Shed      int `json:"shed"`
	Errors    int `json:"errors"`
	// DeadlineExceeded counts 504s: budgets that expired somewhere in
	// the fleet. Kept apart from Errors because a chaos soak bounds the
	// two differently — deadline deaths are expected degradation under
	// faults, other errors are not.
	DeadlineExceeded int `json:"deadline_exceeded"`
	// ErrorRate is (Errors + DeadlineExceeded) / Requests: the fraction
	// of the replay that got neither an answer nor a clean shed.
	ErrorRate float64 `json:"error_rate"`
	// ByteMismatches counts 200 responses whose bytes failed fingerprint
	// verification (VerifyPlans only): corrupt or torn bodies that
	// reached a client. The never-a-wrong-byte invariant makes the only
	// acceptable value zero, faults or no faults.
	ByteMismatches int `json:"byte_mismatches"`
	// AlternatePlans counts valid 200 bodies that differed byte-wise
	// from an earlier valid 200 for the same fingerprint (VerifyPlans
	// only): a replica re-planned a question because its owner and every
	// peer were unreachable, and the re-plan's volatile planner metadata
	// (search seconds, memo reuse) differs. Expected zero on a healthy
	// fleet, small under chaos, and never wrong bytes.
	AlternatePlans int            `json:"alternate_plans"`
	Sources        map[string]int `json:"sources"`
	// DistinctFingerprints counts the unique plans the replay touched.
	DistinctFingerprints int `json:"distinct_fingerprints"`
	// HitRatio is warm answers (hit-memory + hit-disk + hit-peer) over
	// completed requests.
	HitRatio float64 `json:"hit_ratio"`
	// Overall, Cold (source "miss"), and Warm (any hit-*) latency
	// percentiles, plus per-tier breakdowns keyed by source.
	Overall     Percentiles            `json:"overall"`
	Cold        Percentiles            `json:"cold"`
	Warm        Percentiles            `json:"warm"`
	TierLatency map[string]Percentiles `json:"tier_latency"`
	// PeerFills and Planned are fleet-stats deltas across the run: how
	// many local misses a peer's cache absorbed, and how many cold
	// searches actually ran anywhere in the fleet.
	PeerFills uint64 `json:"peer_fills"`
	Planned   uint64 `json:"planned"`
	// Phases attributes traced requests' slow tail to serving phases
	// (TraceSample only).
	Phases *PhaseBreakdown `json:"phases,omitempty"`
	// SlowTraces are exemplar span trees from the traced requests at or
	// above the traced sample's p99 latency (TraceSample only, capped) —
	// the raw material behind Phases, kept so a slow replay leaves
	// something replayable behind, not just shares.
	SlowTraces []*obs.TraceExport `json:"slow_traces,omitempty"`
	// WallSeconds is the replay's wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
}

// PhaseBreakdown says where the traced slow tail's time went: shares of
// the exemplar requests' total span time in the admission queue, the
// planner search, cache probes, peer fills, and the network between
// router and shard. Shares are of measured root-span time; Other is
// whatever the span taxonomy did not cover. Queue-dominated and
// search-dominated p99s call for different capacity fixes — that
// distinction is this struct's whole job.
type PhaseBreakdown struct {
	// Traced counts the traced requests the breakdown reduced; Exemplars
	// counts the slow subset (traced latency >= traced p99) attributed.
	Traced    int `json:"traced"`
	Exemplars int `json:"exemplars"`
	// Shares sum to ~1 over queue, search, cache, peer, network, other.
	QueueShare   float64 `json:"queue_share"`
	SearchShare  float64 `json:"search_share"`
	CacheShare   float64 `json:"cache_share"`
	PeerShare    float64 `json:"peer_share"`
	NetworkShare float64 `json:"network_share"`
	OtherShare   float64 `json:"other_share"`
}

// Percentiles summarizes a latency sample in seconds.
type Percentiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_s"`
	P95   float64 `json:"p95_s"`
	P99   float64 `json:"p99_s"`
	Max   float64 `json:"max_s"`
}

func percentiles(samples []float64) Percentiles {
	p := Percentiles{Count: len(samples)}
	if len(samples) == 0 {
		return p
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	p.P50, p.P95, p.P99, p.Max = at(0.50), at(0.95), at(0.99), sorted[len(sorted)-1]
	return p
}

// outcome is one replayed request's record.
type outcome struct {
	seconds float64
	source  string // X-Graphpipe-Cache, "" on failure
	fp      string
	status  int
	err     bool
	invalid bool              // a 200 whose body failed fingerprint verification
	hash    [sha256.Size]byte // body hash of a 200, for byte-identity checks
	traced  bool
	traces  []*obs.TraceExport // unwrapped span trees of a traced 200
}

// Run generates the population, replays the sampled sequence, and
// reduces it. The only hard failure is being unable to construct the
// workload or reach the target for stats at all — individual request
// failures are counted, not fatal, because measuring an overloaded
// fleet is the point of the exercise.
func Run(cfg Config) (*Result, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.Population <= 0 {
		cfg.Population = 32
	}
	if len(cfg.Devices) == 0 {
		cfg.Devices = []int{2, 3, 4}
	}
	if cfg.Planner == "" {
		cfg.Planner = "graphpipe"
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if cfg.Target == "" {
		return nil, fmt.Errorf("loadgen: no target")
	}

	bodies, err := buildBodies(cfg)
	if err != nil {
		return nil, err
	}
	seq := sampleSequence(cfg, len(bodies))

	before, err := fetchFleetSnapshot(cfg.Client, cfg.Target)
	if err != nil {
		return nil, fmt.Errorf("loadgen: target stats before run: %w", err)
	}

	outcomes := make([]outcome, len(seq))
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				traceID := ""
				if cfg.TraceSample > 0 && i%cfg.TraceSample == 0 {
					// Deterministic in (seed, index): rerunning the replay
					// re-traces the same requests with the same IDs.
					traceID = fmt.Sprintf("fleetgen-%d-%d", cfg.Seed, i)
				}
				outcomes[i] = replayOne(cfg, bodies[seq[i]], traceID)
				if cfg.Pace > 0 {
					time.Sleep(cfg.Pace)
				}
			}
		}()
	}
	for i := range seq {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start).Seconds()

	after, err := fetchFleetSnapshot(cfg.Client, cfg.Target)
	if err != nil {
		return nil, fmt.Errorf("loadgen: target stats after run: %w", err)
	}

	return reduce(cfg, outcomes, wall, before, after), nil
}

// buildBodies renders the distinct request bodies: the spec population
// crossed with the device ladder, round-robin. Bodies are index-aligned
// with popularity rank — index 0 is the hottest question.
func buildBodies(cfg Config) ([]string, error) {
	specs, err := synth.Population(cfg.Families, cfg.Population, cfg.Seed)
	if err != nil {
		return nil, err
	}
	bodies := make([]string, len(specs))
	for i, s := range specs {
		bodies[i] = fmt.Sprintf(`{"model":%q,"devices":%d,"planner":%q}`,
			s.String(), cfg.Devices[i%len(cfg.Devices)], cfg.Planner)
	}
	return bodies, nil
}

// sampleSequence draws the replay order: Requests indices into the
// population, Zipf-weighted by rank. The draw is fully deterministic in
// (Seed, Requests, Population, ZipfS).
func sampleSequence(cfg Config, population int) []int {
	z := newZipf(cfg.ZipfS, population)
	r := newRNG(cfg.Seed, "loadgen/sequence")
	seq := make([]int, cfg.Requests)
	for i := range seq {
		seq[i] = z.sample(r.float())
	}
	return seq
}

func replayOne(cfg Config, body, traceID string) outcome {
	start := time.Now()
	url := cfg.Target + "/v1/plan"
	if traceID != "" {
		url += "?trace=1"
	}
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return outcome{err: true}
	}
	req.Header.Set("Content-Type", "application/json")
	if cfg.BudgetMs > 0 {
		req.Header.Set(service.HeaderBudget, strconv.Itoa(cfg.BudgetMs))
	}
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return outcome{seconds: time.Since(start).Seconds(), err: true}
	}
	defer resp.Body.Close()
	o := outcome{
		status: resp.StatusCode,
		source: resp.Header.Get(service.HeaderCache),
		fp:     resp.Header.Get(service.HeaderFingerprint),
		traced: traceID != "",
	}
	switch {
	case resp.StatusCode == http.StatusOK && o.traced:
		// The body is a span-tree envelope (possibly nested: router
		// around shard); keep the trees, and skip verification — the
		// envelope re-encoded the payload.
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxVerifyBytes))
		if err != nil {
			return outcome{seconds: time.Since(start).Seconds(), err: true}
		}
		o.traces, _, _ = obs.UnwrapEnvelope(data)
	case resp.StatusCode == http.StatusOK && cfg.VerifyPlans:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxVerifyBytes))
		if err != nil {
			// A body that tears mid-read never completed: count it with
			// the transport errors, not as a (possibly short) answer.
			return outcome{seconds: time.Since(start).Seconds(), err: true}
		}
		o.hash = sha256.Sum256(data)
		if o.fp != "" {
			if _, verr := strategy.VerifyArtifactBytes(o.fp, data); verr != nil {
				o.invalid = true
			}
		}
	default:
		io.Copy(io.Discard, resp.Body)
	}
	o.seconds = time.Since(start).Seconds()
	if resp.StatusCode != http.StatusOK {
		o.source, o.fp = "", ""
	}
	return o
}

func reduce(cfg Config, outcomes []outcome, wall float64, before, after *service.Snapshot) *Result {
	res := &Result{
		Requests:    cfg.Requests,
		Sources:     make(map[string]int),
		TierLatency: make(map[string]Percentiles),
		WallSeconds: wall,
		PeerFills:   after.PeerFills - before.PeerFills,
		Planned:     after.Planned - before.Planned,
	}
	var all, cold, warm []float64
	tiers := make(map[string][]float64)
	fps := make(map[string]bool)
	firstHash := make(map[string][sha256.Size]byte)
	for _, o := range outcomes {
		switch {
		case o.err:
			res.Errors++
			continue
		case o.status == http.StatusTooManyRequests:
			res.Shed++
			continue
		case o.status == http.StatusGatewayTimeout:
			res.DeadlineExceeded++
			continue
		case o.status != http.StatusOK:
			res.Errors++
			continue
		}
		res.Completed++
		res.Sources[o.source]++
		fps[o.fp] = true
		if cfg.VerifyPlans && !o.traced {
			switch prev, seen := firstHash[o.fp]; {
			case o.invalid:
				res.ByteMismatches++
			case !seen:
				firstHash[o.fp] = o.hash
			case prev != o.hash:
				res.AlternatePlans++
			}
		}
		all = append(all, o.seconds)
		tiers[o.source] = append(tiers[o.source], o.seconds)
		if strings.HasPrefix(o.source, "hit-") {
			warm = append(warm, o.seconds)
		} else if o.source == "miss" {
			cold = append(cold, o.seconds)
		}
	}
	res.DistinctFingerprints = len(fps)
	if res.Requests > 0 {
		res.ErrorRate = float64(res.Errors+res.DeadlineExceeded) / float64(res.Requests)
	}
	if res.Completed > 0 {
		hits := res.Sources["hit-memory"] + res.Sources["hit-disk"] + res.Sources["hit-peer"]
		res.HitRatio = float64(hits) / float64(res.Completed)
	}
	res.Overall = percentiles(all)
	res.Cold = percentiles(cold)
	res.Warm = percentiles(warm)
	for src, samples := range tiers {
		res.TierLatency[src] = percentiles(samples)
	}
	if cfg.TraceSample > 0 {
		res.Phases, res.SlowTraces = attributePhases(outcomes)
	}
	return res
}

// maxSlowTraces caps how many exemplar span trees a result carries —
// enough to eyeball, not a replay-sized dump.
const maxSlowTraces = 3

// attributePhases reduces the traced outcomes to a slow-tail phase
// breakdown: take the traced requests at or above the traced sample's
// p99 latency, sum each serving phase's span time across their trees,
// and report shares of root-span time. Phases are matched by span name
// — the taxonomy docs/ARCHITECTURE.md fixes — and network time is what
// remains of a router backend attempt (or shard peer attempt) after
// subtracting the remote process's own root span.
func attributePhases(outcomes []outcome) (*PhaseBreakdown, []*obs.TraceExport) {
	var traced []outcome
	var lats []float64
	for _, o := range outcomes {
		if o.traced && len(o.traces) > 0 {
			traced = append(traced, o)
			lats = append(lats, o.seconds)
		}
	}
	if len(traced) == 0 {
		return &PhaseBreakdown{}, nil
	}
	threshold := percentiles(lats).P99
	bd := &PhaseBreakdown{Traced: len(traced)}
	var slow []*obs.TraceExport
	var total, queue, search, cache, peer, network float64
	for _, o := range traced {
		if o.seconds < threshold {
			continue
		}
		bd.Exemplars++
		p := tracePhases(o.traces)
		total += p.total
		queue += p.queue
		search += p.search
		cache += p.cache
		peer += p.peer
		network += p.network
		if bd.Exemplars <= maxSlowTraces {
			slow = append(slow, o.traces...)
		}
	}
	if total > 0 {
		bd.QueueShare = queue / total
		bd.SearchShare = search / total
		bd.CacheShare = cache / total
		bd.PeerShare = peer / total
		bd.NetworkShare = network / total
		if rest := 1 - (bd.QueueShare + bd.SearchShare + bd.CacheShare + bd.PeerShare + bd.NetworkShare); rest > 0 {
			bd.OtherShare = rest
		}
	}
	return bd, slow
}

// phaseTimes is one traced request's span time per phase, in
// microseconds (the span unit; shares cancel the unit anyway).
type phaseTimes struct {
	total, queue, search, cache, peer, network float64
}

// tracePhases walks one request's span-tree union (router + shards).
// The counted phases are disjoint subtrees of the request: admission
// wait, planner search, cache probes, and peer fill are sibling spans
// on the shard, and network is what remains of a router backend
// attempt after subtracting the shard's own root span (a peer
// attempt's wire time is not counted again — it is already inside
// peer.fill).
func tracePhases(traces []*obs.TraceExport) phaseTimes {
	var p phaseTimes
	// Remote root time per parent span: a shard's root span reports its
	// parent as the caller's attempt span ID via the propagated header.
	remote := make(map[string]float64)
	for _, tr := range traces {
		for _, s := range tr.Spans {
			if s.Parent != "" && !strings.HasPrefix(s.Parent, tr.Process+"-") {
				remote[s.Parent] += float64(s.DurUs)
			}
		}
	}
	for _, tr := range traces {
		for _, s := range tr.Spans {
			switch {
			case s.Parent == "":
				p.total += float64(s.DurUs)
			case s.Name == "admission.wait":
				p.queue += float64(s.DurUs)
			case s.Name == "planner.search":
				p.search += float64(s.DurUs)
			case strings.HasPrefix(s.Name, "cache."):
				p.cache += float64(s.DurUs)
			case s.Name == "peer.fill":
				p.peer += float64(s.DurUs)
			}
			if s.Name == "backend.attempt" {
				if net := float64(s.DurUs) - remote[s.ID]; net > 0 {
					p.network += net
				}
			}
		}
	}
	return p
}

// fetchFleetSnapshot reads /v1/stats from either a router (whose body
// nests the fleet-summed snapshot under "fleet") or a bare daemon
// (whose body is the snapshot itself).
func fetchFleetSnapshot(client *http.Client, target string) (*service.Snapshot, error) {
	resp, err := client.Get(target + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	var probe struct {
		Fleet *service.Snapshot `json:"fleet"`
		service.Snapshot
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("stats: %v", err)
	}
	if probe.Fleet != nil {
		return probe.Fleet, nil
	}
	return &probe.Snapshot, nil
}
