package loadgen

import (
	"net/http/httptest"
	"strings"
	"testing"

	"graphpipe/internal/service"

	_ "graphpipe/internal/eval/all"    // register the built-in backends
	_ "graphpipe/internal/planner/all" // register the built-in planners
)

// TestRunAgainstDaemon replays a small skewed workload against one real
// in-process daemon and checks the reduction hangs together: counts
// reconcile, the Zipf head turns into cache hits, stats deltas flow
// through, and the bench line carries the gate metrics.
func TestRunAgainstDaemon(t *testing.T) {
	svc, err := service.New(service.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	res, err := Run(Config{
		Target:      srv.URL,
		Requests:    60,
		Concurrency: 4,
		ZipfS:       1.2,
		Population:  6,
		Devices:     []int{2, 4},
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Shed+res.Errors != res.Requests {
		t.Fatalf("outcome counts do not reconcile: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors against a healthy daemon: %+v", res.Errors, res.Sources)
	}
	if res.DistinctFingerprints == 0 || res.DistinctFingerprints > 12 {
		t.Fatalf("distinct fingerprints = %d, want within the 6x2 question space", res.DistinctFingerprints)
	}
	// 60 skewed requests over at most 12 questions must repeat: the
	// repeats are warm, so the hit ratio is strictly positive and the
	// planner ran at most once per distinct question.
	if res.HitRatio <= 0 {
		t.Fatalf("hit ratio = %v over a repeating workload; sources: %v", res.HitRatio, res.Sources)
	}
	if res.Planned > uint64(res.DistinctFingerprints) {
		t.Fatalf("planned %d > %d distinct questions; caching is off", res.Planned, res.DistinctFingerprints)
	}
	if res.Overall.Count != res.Completed {
		t.Fatalf("latency sample %d != completed %d", res.Overall.Count, res.Completed)
	}

	snap := svc.Stats()
	if snap.Planned != res.Planned {
		t.Fatalf("stats delta planned = %d, daemon says %d", res.Planned, snap.Planned)
	}

	line := res.BenchLine()
	for _, want := range []string{"fleet_warm_p99_s", "fleet_cold_p50_s", "fleet_hit_ratio"} {
		if !strings.Contains(line, " "+want) {
			t.Errorf("bench line missing %s: %q", want, line)
		}
	}
}
