package loadgen

import (
	"math"
	"sort"
)

// zipf draws population indices with probability proportional to
// 1/(rank+1)^s via inverse-CDF lookup over the precomputed cumulative
// weights. Inversion from a caller-supplied uniform keeps the sampler a
// pure function of the RNG stream — the same splitmix64 draws replay
// the same request sequence on every machine and Go release, which
// math/rand's Zipf (a rejection sampler with its own state) cannot
// promise.
type zipf struct {
	cdf []float64 // cdf[i] = P(index <= i), cdf[len-1] == 1
}

// newZipf builds a sampler over n ranks with skew exponent s. s <= 0
// degenerates to uniform.
func newZipf(s float64, n int) *zipf {
	if n < 1 {
		n = 1
	}
	z := &zipf{cdf: make([]float64, n)}
	total := 0.0
	for i := 0; i < n; i++ {
		w := 1.0
		if s > 0 {
			w = 1.0 / math.Pow(float64(i+1), s)
		}
		total += w
		z.cdf[i] = total
	}
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	z.cdf[n-1] = 1
	return z
}

// sample maps a uniform u in [0, 1) to a rank index.
func (z *zipf) sample(u float64) int {
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	// SearchFloat64s finds the first cdf >= u; u exactly on a boundary
	// belongs to the next rank.
	if z.cdf[i] == u && i+1 < len(z.cdf) {
		i++
	}
	return i
}

// rng is the same splitmix64 stream internal/synth uses (duplicated
// because it is deliberately unexported there): no math/rand, so a
// sampled sequence replays identically across Go releases.
type rng struct{ state uint64 }

func newRNG(seed int64, salt string) *rng {
	h := uint64(seed) ^ 0x9E3779B97F4A7C15
	for _, b := range []byte(salt) {
		h ^= uint64(b)
		h *= 0x100000001B3
	}
	return &rng{state: h}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
