package loadgen

import (
	"math"
	"strings"
	"testing"
)

// TestZipfSkewAndDeterminism pins the sampler: identical seeds replay
// identical sequences, rank 0 dominates under skew, and every rank stays
// reachable.
func TestZipfSkewAndDeterminism(t *testing.T) {
	cfg := Config{Requests: 5000, Population: 16, ZipfS: 1.1, Seed: 42}
	a := sampleSequence(cfg, 16)
	b := sampleSequence(cfg, 16)
	counts := make([]int, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 16 {
			t.Fatalf("draw %d = %d out of population range", i, a[i])
		}
		counts[a[i]]++
	}
	if counts[0] <= counts[15]*2 {
		t.Errorf("skew missing: rank 0 drawn %d times vs rank 15 %d times", counts[0], counts[15])
	}
	if counts[0] < len(a)/8 {
		t.Errorf("rank 0 drew only %d of %d; Zipf head too light", counts[0], len(a))
	}

	cfg.Seed = 43
	c := sampleSequence(cfg, 16)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds replayed the identical sequence")
	}
}

// TestZipfUniformFallback pins s=0 ... uniform draws cover the
// population roughly evenly.
func TestZipfUniformFallback(t *testing.T) {
	z := newZipf(0, 10)
	r := newRNG(1, "test/uniform")
	counts := make([]int, 10)
	const n = 10000
	for i := 0; i < n; i++ {
		counts[z.sample(r.float())]++
	}
	for rank, c := range counts {
		if math.Abs(float64(c)-n/10) > n/20 {
			t.Errorf("rank %d drawn %d times, want ~%d (uniform)", rank, c, n/10)
		}
	}
}

func TestPercentiles(t *testing.T) {
	p := percentiles([]float64{4, 1, 3, 2, 5})
	if p.Count != 5 || p.P50 != 3 || p.Max != 5 {
		t.Fatalf("percentiles = %+v, want count 5 / p50 3 / max 5", p)
	}
	if p.P99 != 5 {
		t.Fatalf("p99 = %v, want the max of a tiny sample", p.P99)
	}
	if z := percentiles(nil); z.Count != 0 || z.P50 != 0 {
		t.Fatalf("empty sample percentiles = %+v, want zeros", z)
	}
}

// TestBenchLineShape pins the benchreport contract: one Benchmark line,
// iteration count 1, value/unit pairs including the gate's two metrics,
// omitting empty latency classes.
func TestBenchLineShape(t *testing.T) {
	r := &Result{
		Requests:  100,
		Completed: 98,
		Shed:      2,
		HitRatio:  0.75,
		Overall:   Percentiles{Count: 98, P50: 0.01, P95: 0.02, P99: 0.03},
		Warm:      Percentiles{Count: 70, P99: 0.005},
		Cold:      Percentiles{Count: 10, P50: 0.2},
		TierLatency: map[string]Percentiles{
			"hit-memory": {Count: 60, P50: 0.001},
		},
		PeerFills: 4,
		Planned:   10,
	}
	line := r.BenchLine()
	fields := strings.Fields(line)
	if fields[0] != "BenchmarkFleetGen" || fields[1] != "1" {
		t.Fatalf("line prefix = %q %q, want BenchmarkFleetGen 1", fields[0], fields[1])
	}
	if (len(fields)-2)%2 != 0 {
		t.Fatalf("line has unpaired value/unit fields: %q", line)
	}
	for _, want := range []string{
		"fleet_warm_p99_s", "fleet_cold_p50_s", "fleet_hit_ratio",
		"fleet_shed_rate", "fleet_peer_fills", "fleet_hit_memory_p50_s",
	} {
		if !strings.Contains(line, " "+want) {
			t.Errorf("bench line missing %s: %q", want, line)
		}
	}

	empty := &Result{Requests: 1}
	if line := empty.BenchLine(); strings.Contains(line, "fleet_warm_p99_s") ||
		strings.Contains(line, "fleet_cold_p50_s") {
		t.Errorf("empty latency classes must be omitted, got %q", line)
	}
}
