package loadgen

import (
	"fmt"
	"strconv"
	"strings"
)

// BenchLine renders the result as one `go test -bench`-style line,
// which is the repo's lingua franca for performance numbers: fleetgen
// output pipes straight into cmd/benchreport's existing parser and
// lands in the committed BENCH_*.json baselines next to the planner
// microbenchmarks, with no second ingestion path to maintain.
//
// Metric names double as the "units" column, matching the harness's
// custom-metric convention (replan_warm_s, search_s, ...). Empty
// latency classes (no cold requests in a fully warm replay, say) omit
// their metrics rather than reporting a misleading zero.
func (r *Result) BenchLine() string {
	var b strings.Builder
	b.WriteString("BenchmarkFleetGen 1")
	emit := func(name string, v float64) {
		b.WriteString(" ")
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		b.WriteString(" ")
		b.WriteString(name)
	}
	emit("fleet_requests", float64(r.Requests))
	emit("fleet_completed", float64(r.Completed))
	emit("fleet_shed", float64(r.Shed))
	emit("fleet_errors", float64(r.Errors))
	if r.Requests > 0 {
		emit("fleet_shed_rate", float64(r.Shed)/float64(r.Requests))
	}
	emit("fleet_hit_ratio", r.HitRatio)
	emit("fleet_distinct_fps", float64(r.DistinctFingerprints))
	emit("fleet_p50_s", r.Overall.P50)
	emit("fleet_p95_s", r.Overall.P95)
	emit("fleet_p99_s", r.Overall.P99)
	if r.Warm.Count > 0 {
		emit("fleet_warm_p99_s", r.Warm.P99)
	}
	if r.Cold.Count > 0 {
		emit("fleet_cold_p50_s", r.Cold.P50)
	}
	for _, tier := range []string{"hit-memory", "hit-disk", "hit-peer", "shared", "miss"} {
		if p, ok := r.TierLatency[tier]; ok && p.Count > 0 {
			slug := strings.ReplaceAll(tier, "-", "_")
			emit(fmt.Sprintf("fleet_%s_count", slug), float64(p.Count))
			emit(fmt.Sprintf("fleet_%s_p50_s", slug), p.P50)
		}
	}
	emit("fleet_peer_fills", float64(r.PeerFills))
	emit("fleet_planned", float64(r.Planned))
	if p := r.Phases; p != nil && p.Exemplars > 0 {
		emit("fleet_phase_queue_share", p.QueueShare)
		emit("fleet_phase_search_share", p.SearchShare)
		emit("fleet_phase_cache_share", p.CacheShare)
		emit("fleet_phase_peer_share", p.PeerShare)
		emit("fleet_phase_network_share", p.NetworkShare)
		emit("fleet_phase_other_share", p.OtherShare)
	}
	emit("fleet_wall_s", r.WallSeconds)
	return b.String()
}
