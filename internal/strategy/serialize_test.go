package strategy

import (
	"encoding/json"
	"strings"
	"testing"

	"graphpipe/internal/cluster"
)

func TestJSONRoundTrip(t *testing.T) {
	g := twoBranch(t)
	s := gppStrategy(t, g)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Strategy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Planner != s.Planner || back.MiniBatch != s.MiniBatch {
		t.Errorf("header mismatch: %+v", back)
	}
	if back.NumStages() != s.NumStages() {
		t.Fatalf("stage count %d != %d", back.NumStages(), s.NumStages())
	}
	for i := range s.Stages {
		a, b := &s.Stages[i], &back.Stages[i]
		if !a.Ops.Equal(b.Ops) {
			t.Errorf("stage %d ops mismatch", i)
		}
		if a.Config != b.Config || a.InFlightSamples != b.InFlightSamples {
			t.Errorf("stage %d config mismatch", i)
		}
		if len(a.Devices) != len(b.Devices) {
			t.Errorf("stage %d devices mismatch", i)
		}
		if len(a.Tasks) != len(b.Tasks) {
			t.Fatalf("stage %d tasks %d != %d", i, len(b.Tasks), len(a.Tasks))
		}
		for j := range a.Tasks {
			if a.Tasks[j] != b.Tasks[j] {
				t.Errorf("stage %d task %d mismatch: %v vs %v", i, j, a.Tasks[j], b.Tasks[j])
			}
		}
	}
	// The decoded strategy must still validate against the original graph.
	topo := cluster.NewSummitTopology(4)
	if err := back.Validate(g, topo); err != nil {
		t.Fatalf("decoded strategy invalid: %v", err)
	}
}

func TestJSONRejectsCorruptEdges(t *testing.T) {
	bad := `{"planner":"x","mini_batch":8,
		"stages":[{"id":0,"ops":[0],"micro_batch":1,"kfkb":1,"devices":[0],"in_flight_samples":1}],
		"succ":[[7]]}`
	var s Strategy
	if err := json.Unmarshal([]byte(bad), &s); err == nil {
		t.Error("accepted edge to unknown stage")
	}
	bad2 := strings.Replace(bad, `"succ":[[7]]`, `"succ":[[],[0]]`, 1)
	var s2 Strategy
	if err := json.Unmarshal([]byte(bad2), &s2); err == nil {
		t.Error("accepted oversized succ table")
	}
	bad3 := `{"planner":"x","mini_batch":8,
		"stages":[{"id":0,"ops":[0],"micro_batch":1,"kfkb":1,"devices":[0],
		"in_flight_samples":1,"tasks":[{"kind":"Q","index":0,"start":0,"end":1}]}],
		"succ":[[]]}`
	var s3 Strategy
	if err := json.Unmarshal([]byte(bad3), &s3); err == nil {
		t.Error("accepted unknown task kind")
	}
}

func TestJSONStableFields(t *testing.T) {
	g := twoBranch(t)
	s := gppStrategy(t, g)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"planner"`, `"mini_batch"`, `"micro_batch"`, `"kfkb"`, `"in_flight_samples"`, `"succ"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("wire format missing %s", want)
		}
	}
}
