package strategy

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
)

// An Artifact is a strategy promoted to a first-class, persistable object:
// the plan itself plus the metadata needed to rebuild its evaluation
// context (model, cluster size, mini-batch) and to audit where it came
// from (planner, search statistics, recorded evaluations). It is the
// on-disk hand-off of the paper's Figure 3 — the optimizer emits an
// "optimized GPP training strategy" that the distributed runtime consumes
// — and the unit a planning service stores, serves, and re-evaluates.
//
// The wire format is versioned JSON. Version bumps are explicit:
// DecodeArtifact rejects versions it does not understand with
// ErrUnknownVersion rather than guessing, so stale tooling fails loudly.
const ArtifactVersion = 1

// Sentinel errors for artifact decoding and checking. Wrapped errors add
// context; test with errors.Is.
var (
	// ErrCorruptArtifact marks data that does not parse as an artifact.
	ErrCorruptArtifact = errors.New("strategy: corrupt artifact")
	// ErrUnknownVersion marks an artifact written by an incompatible
	// format version.
	ErrUnknownVersion = errors.New("strategy: unknown artifact version")
	// ErrUnknownPlanner marks an artifact whose planner name is not
	// registered in this process.
	ErrUnknownPlanner = errors.New("strategy: unknown planner")
)

// PlanOptions records the result-relevant planning knobs a strategy was
// searched under. It mirrors the subset of planner.Options that changes
// which strategy comes out — worker counts, timeouts, and profiling flags
// deliberately have no field here, because the planners are deterministic
// across them (pinned by the determinism tests) and two runs differing
// only in those knobs produce the same plan.
//
// The zero value means "every planner default". Values are recorded
// literally: a request that spells out a planner's default (e.g.
// MaxMicroBatch 4096) fingerprints differently from one that leaves the
// field zero, because this package cannot know other packages' defaults.
type PlanOptions struct {
	// ForcedMicroBatch restricts the search to one micro-batch size.
	ForcedMicroBatch int `json:"forced_micro_batch,omitempty"`
	// MaxMicroBatch caps the candidate micro-batch sizes.
	MaxMicroBatch int `json:"max_micro_batch,omitempty"`
	// PerStageMicroBatch enables the fine-grained per-stage search.
	PerStageMicroBatch bool `json:"per_stage_micro_batch,omitempty"`
	// DisableSinkAnchoredSplits removes the merge-anchored partitions.
	DisableSinkAnchoredSplits bool `json:"disable_sink_anchored_splits,omitempty"`
}

// PlannerMeta records how the strategy was produced.
type PlannerMeta struct {
	// Name is the planner-registry key ("graphpipe", "pipedream", ...).
	Name string `json:"name"`
	// SearchSeconds is the planning wall-clock time.
	SearchSeconds float64 `json:"search_seconds,omitempty"`
	// DPStates counts dynamic-programming subproblems explored.
	DPStates int `json:"dp_states,omitempty"`
	// BinaryIters counts binary-search iterations (graphpipe only).
	BinaryIters int `json:"binary_iters,omitempty"`
	// WarmStarted records that the search imported a prior DP memo
	// snapshot. Provenance only: a warm-started plan is byte-identical
	// to a cold one, so the field — like the other search statistics —
	// is excluded from Fingerprint.
	WarmStarted bool `json:"warm_started,omitempty"`
	// MemoEntriesReused counts imported memo entries the search reused.
	MemoEntriesReused int `json:"memo_entries_reused,omitempty"`
}

// EvalMeta records one evaluation of the strategy, so an artifact carries
// the numbers it was shipped with and a re-evaluation can be diffed
// against them.
type EvalMeta struct {
	// Backend is the eval-registry key ("sim", "runtime").
	Backend string `json:"backend"`
	// IterationTime is the evaluated per-iteration virtual time in
	// seconds.
	IterationTime float64 `json:"iteration_seconds"`
	// Throughput is the evaluated samples/second.
	Throughput float64 `json:"throughput"`
}

// Artifact is the persistable plan: strategy + provenance.
type Artifact struct {
	// Version is the wire-format version; EncodeArtifact stamps it.
	Version int `json:"version"`
	// Model names the computation graph the strategy partitions (a
	// models.Build name, e.g. "mmt").
	Model string `json:"model"`
	// Branches is the model's branch-count override (0: model default).
	Branches int `json:"branches,omitempty"`
	// Devices is the cluster size the strategy was planned for.
	Devices int `json:"devices"`
	// Topology is the canonical topology spec the strategy was planned
	// for; empty means the default Summit preset at Devices (the only
	// topology artifacts could describe before the field existed, so old
	// artifacts decode — and fingerprint — unchanged).
	Topology string `json:"topology,omitempty"`
	// MiniBatch is B (duplicated from the strategy for inspection without
	// decoding it).
	MiniBatch int `json:"mini_batch"`
	// Planner records the producing search.
	Planner PlannerMeta `json:"planner"`
	// Options records the result-relevant planning knobs (zero value:
	// every planner default). Always serialized — encoding/json cannot
	// elide struct values — as "options": {} when defaulted.
	Options PlanOptions `json:"options"`
	// Evals records evaluations of the strategy, in the order they ran.
	Evals []EvalMeta `json:"evals,omitempty"`
	// Strategy is the plan itself.
	Strategy *Strategy `json:"strategy"`
}

// EncodeArtifact stamps the current version and renders the artifact as
// indented JSON (artifacts are meant to be diffed and code-reviewed).
func EncodeArtifact(a *Artifact) ([]byte, error) {
	if a.Strategy == nil {
		return nil, fmt.Errorf("strategy: artifact without a strategy")
	}
	a.Version = ArtifactVersion
	if a.MiniBatch == 0 {
		a.MiniBatch = a.Strategy.MiniBatch
	}
	if a.Planner.Name == "" {
		a.Planner.Name = a.Strategy.Planner
	}
	return json.MarshalIndent(a, "", "  ")
}

// DecodeArtifact parses a versioned artifact. It distinguishes the three
// load-time failure classes: data that is not an artifact at all
// (ErrCorruptArtifact), a version this build does not speak
// (ErrUnknownVersion), and structurally valid artifacts missing their
// strategy (also ErrCorruptArtifact). Planner-name and graph/topology
// validation are separate steps — CheckPlanner and Strategy.Validate —
// because they need context (registries, the rebuilt graph) the decoder
// does not have.
func DecodeArtifact(data []byte) (*Artifact, error) {
	// Probe the version before decoding the body so a future format's
	// artifact reports "unknown version", not a field-level JSON error.
	var probe struct {
		Version *int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptArtifact, err)
	}
	if probe.Version == nil {
		return nil, fmt.Errorf("%w: missing version field", ErrCorruptArtifact)
	}
	if *probe.Version != ArtifactVersion {
		return nil, fmt.Errorf("%w: got %d, this build speaks %d",
			ErrUnknownVersion, *probe.Version, ArtifactVersion)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptArtifact, err)
	}
	if a.Strategy == nil {
		return nil, fmt.Errorf("%w: missing strategy", ErrCorruptArtifact)
	}
	return &a, nil
}

// Fingerprint returns the artifact's content-addressed identity: a hex
// SHA-256 over the canonical planning request — model, branches, devices,
// topology, mini-batch, planner name, and the result-relevant
// PlanOptions. Two
// artifacts share a fingerprint exactly when they answer the same planning
// question, so the fingerprint is the cache key a planning service stores
// and serves plans under, and `graphpipe plan` prints it so the CLI and
// the daemon agree on identity.
//
// Recorded evaluations, search statistics (wall-clock, DP states), and the
// strategy bytes themselves are deliberately excluded: they are outputs,
// not identity, and including them would make a warm cache lookup
// impossible before planning. Zero MiniBatch or an empty planner name fall
// back to the embedded strategy's values, matching EncodeArtifact.
//
// The preimage layout is versioned independently of ArtifactVersion
// ("fp1\n" prefix): hashing is stable across artifact-format bumps unless
// the identity fields themselves change meaning.
func (a *Artifact) Fingerprint() string {
	mb := a.MiniBatch
	plannerName := a.Planner.Name
	if a.Strategy != nil {
		if mb == 0 {
			mb = a.Strategy.MiniBatch
		}
		if plannerName == "" {
			plannerName = a.Strategy.Planner
		}
	}
	h := sha256.New()
	fmt.Fprintf(h, "fp1\nmodel=%s\nbranches=%d\ndevices=%d\nmini_batch=%d\nplanner=%s\n",
		a.Model, a.Branches, a.Devices, mb, plannerName)
	fmt.Fprintf(h, "forced_micro_batch=%d\nmax_micro_batch=%d\nper_stage_micro_batch=%t\ndisable_sink_anchored_splits=%t\n",
		a.Options.ForcedMicroBatch, a.Options.MaxMicroBatch,
		a.Options.PerStageMicroBatch, a.Options.DisableSinkAnchoredSplits)
	// The topology line is appended only when a non-default topology is
	// set, so every pre-existing (Summit) artifact keeps its historical
	// fingerprint and no persisted plan cache is invalidated.
	if a.Topology != "" {
		fmt.Fprintf(h, "topology=%s\n", a.Topology)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// VerifyArtifactBytes decodes serialized artifact bytes and checks that
// their content hashes to the fingerprint they were requested or filed
// under. It is the one verification every byte-serving cache tier runs —
// the service's disk store on read, a fleet daemon on a peer cache-fill —
// so corrupted, hand-edited, or misdirected artifact bytes always degrade
// to a miss instead of being served under the wrong identity.
func VerifyArtifactBytes(fp string, data []byte) (*Artifact, error) {
	a, err := DecodeArtifact(data)
	if err != nil {
		return nil, err
	}
	if got := a.Fingerprint(); got != fp {
		return nil, fmt.Errorf("artifact filed under %s hashes to %s (misfiled or edited)", fp, got)
	}
	return a, nil
}

// CheckPlanner verifies the artifact's planner name against the caller's
// registered planner names (typically planner.Names(); the strategy
// package cannot import the registry without a cycle). An artifact from a
// build with planners this process lacks fails with ErrUnknownPlanner.
func (a *Artifact) CheckPlanner(registered []string) error {
	for _, name := range registered {
		if a.Planner.Name == name {
			return nil
		}
	}
	return fmt.Errorf("%w: %q (registered: %v)", ErrUnknownPlanner, a.Planner.Name, registered)
}

// Validate checks the embedded strategy against the rebuilt graph and
// topology (C1–C4) and the artifact's own metadata for consistency.
func (a *Artifact) Validate(g *graph.Graph, topo *cluster.Topology) error {
	if a.Strategy == nil {
		return fmt.Errorf("%w: missing strategy", ErrCorruptArtifact)
	}
	if a.Devices != 0 && a.Devices != topo.Len() {
		return fmt.Errorf("strategy: artifact planned for %d devices, topology has %d",
			a.Devices, topo.Len())
	}
	if a.MiniBatch != 0 && a.MiniBatch != a.Strategy.MiniBatch {
		return fmt.Errorf("strategy: artifact mini-batch %d disagrees with strategy %d",
			a.MiniBatch, a.Strategy.MiniBatch)
	}
	return a.Strategy.Validate(g, topo)
}
