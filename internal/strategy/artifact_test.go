package strategy

import (
	"errors"
	"strings"
	"testing"

	"graphpipe/internal/cluster"
)

func artifactFor(t testing.TB) (*Artifact, []byte) {
	t.Helper()
	g := twoBranch(t)
	s := gppStrategy(t, g)
	a := &Artifact{
		Model:     "two-branch",
		Devices:   4,
		Planner:   PlannerMeta{Name: s.Planner, SearchSeconds: 0.25, DPStates: 42},
		Evals:     []EvalMeta{{Backend: "sim", IterationTime: 0.5, Throughput: 16}},
		Strategy:  s,
		MiniBatch: s.MiniBatch,
	}
	data, err := EncodeArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	return a, data
}

func TestArtifactRoundTrip(t *testing.T) {
	a, data := artifactFor(t)
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != ArtifactVersion {
		t.Errorf("version = %d, want %d", back.Version, ArtifactVersion)
	}
	if back.Model != a.Model || back.Devices != a.Devices || back.MiniBatch != a.MiniBatch {
		t.Errorf("metadata mismatch: %+v", back)
	}
	if back.Planner != a.Planner {
		t.Errorf("planner meta %+v != %+v", back.Planner, a.Planner)
	}
	if len(back.Evals) != 1 || back.Evals[0] != a.Evals[0] {
		t.Errorf("eval meta mismatch: %+v", back.Evals)
	}
	g := twoBranch(t)
	if err := back.Validate(g, cluster.NewSummitTopology(4)); err != nil {
		t.Fatalf("decoded artifact invalid: %v", err)
	}
	if back.Strategy.NumStages() != a.Strategy.NumStages() {
		t.Errorf("stage count %d != %d", back.Strategy.NumStages(), a.Strategy.NumStages())
	}
}

func TestArtifactRejectsCorruptData(t *testing.T) {
	for name, data := range map[string]string{
		"not json":         "not json at all {",
		"missing version":  `{"model":"x","strategy":null}`,
		"missing strategy": `{"version":1,"model":"x"}`,
		"bad strategy":     `{"version":1,"model":"x","strategy":{"succ":[[9]],"stages":[]}}`,
	} {
		if _, err := DecodeArtifact([]byte(data)); !errors.Is(err, ErrCorruptArtifact) {
			t.Errorf("%s: err = %v, want ErrCorruptArtifact", name, err)
		}
	}
}

func TestArtifactRejectsUnknownVersion(t *testing.T) {
	_, data := artifactFor(t)
	future := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if future == string(data) {
		t.Fatal("version field not found in encoded artifact")
	}
	_, err := DecodeArtifact([]byte(future))
	if !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("err = %v, want ErrUnknownVersion", err)
	}
	// The message must name both versions so operators can tell which side
	// is stale.
	if !strings.Contains(err.Error(), "99") || !strings.Contains(err.Error(), "1") {
		t.Errorf("unhelpful version error: %v", err)
	}
}

func TestArtifactCheckPlanner(t *testing.T) {
	a, _ := artifactFor(t)
	if err := a.CheckPlanner([]string{"graphpipe", a.Planner.Name}); err != nil {
		t.Fatalf("known planner rejected: %v", err)
	}
	err := a.CheckPlanner([]string{"pipedream", "piper"})
	if !errors.Is(err, ErrUnknownPlanner) {
		t.Fatalf("err = %v, want ErrUnknownPlanner", err)
	}
	if !strings.Contains(err.Error(), a.Planner.Name) {
		t.Errorf("error does not name the missing planner: %v", err)
	}
}

func TestArtifactValidateMetadataConsistency(t *testing.T) {
	a, _ := artifactFor(t)
	g := twoBranch(t)

	wrongTopo := cluster.NewSummitTopology(8)
	if err := a.Validate(g, wrongTopo); err == nil {
		t.Error("accepted artifact on a differently-sized topology")
	}

	a2, _ := artifactFor(t)
	a2.MiniBatch = a2.Strategy.MiniBatch + 1
	if err := a2.Validate(g, cluster.NewSummitTopology(4)); err == nil {
		t.Error("accepted artifact whose mini-batch disagrees with its strategy")
	}
}

func TestEncodeArtifactFillsDefaults(t *testing.T) {
	g := twoBranch(t)
	s := gppStrategy(t, g)
	data, err := EncodeArtifact(&Artifact{Model: "two-branch", Devices: 4, Strategy: s})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Planner.Name != s.Planner {
		t.Errorf("planner name not defaulted: %q", back.Planner.Name)
	}
	if back.MiniBatch != s.MiniBatch {
		t.Errorf("mini-batch not defaulted: %d", back.MiniBatch)
	}
	if _, err := EncodeArtifact(&Artifact{Model: "x"}); err == nil {
		t.Error("encoded artifact without a strategy")
	}
}
