package strategy

import (
	"strings"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
	"graphpipe/internal/schedule"
)

// twoBranch builds in -> {a1 -> a2, b1 -> b2} -> out.
func twoBranch(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("twobranch")
	in := b.AddOp(graph.Op{Name: "in", Kind: graph.OpInput, OutputBytes: 4})
	a1 := b.AddOp(graph.Op{Name: "a1", Kind: graph.OpLinear, FwdFLOPs: 10, OutputBytes: 4})
	a2 := b.AddOp(graph.Op{Name: "a2", Kind: graph.OpLinear, FwdFLOPs: 10, OutputBytes: 4})
	b1 := b.AddOp(graph.Op{Name: "b1", Kind: graph.OpLinear, FwdFLOPs: 10, OutputBytes: 4})
	b2 := b.AddOp(graph.Op{Name: "b2", Kind: graph.OpLinear, FwdFLOPs: 10, OutputBytes: 4})
	out := b.AddOp(graph.Op{Name: "out", Kind: graph.OpConcat, FwdFLOPs: 1, OutputBytes: 8})
	b.Chain(in, a1, a2)
	b.Chain(in, b1, b2)
	b.Connect(a2, out)
	b.Connect(b2, out)
	return b.MustBuild()
}

// gppStrategy builds a 4-stage GPP strategy over twoBranch:
// S0={in}, S1={a1,a2}, S2={b1,b2} (parallel), S3={out}.
func gppStrategy(t testing.TB, g *graph.Graph) *Strategy {
	t.Helper()
	cfg := schedule.Config{MicroBatch: 2, K: 1}
	mk := func(id StageID, ops graph.NodeSet, devs []cluster.DeviceID, inflight int) Stage {
		tasks, err := schedule.BuildTasks(cfg, 8, inflight)
		if err != nil {
			t.Fatal(err)
		}
		return Stage{ID: id, Ops: ops, Config: cfg, Devices: devs, InFlightSamples: inflight, Tasks: tasks}
	}
	s := &Strategy{
		Planner:   "test",
		MiniBatch: 8,
		Stages: []Stage{
			mk(0, graph.NodeSetOf(0), []cluster.DeviceID{0}, 6),
			mk(1, graph.NodeSetOf(1, 2), []cluster.DeviceID{1}, 4),
			mk(2, graph.NodeSetOf(3, 4), []cluster.DeviceID{2}, 4),
			mk(3, graph.NodeSetOf(5), []cluster.DeviceID{3}, 2),
		},
	}
	if err := s.BuildEdges(g); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildEdges(t *testing.T) {
	g := twoBranch(t)
	s := gppStrategy(t, g)
	// S0 -> S1, S0 -> S2, S1 -> S3, S2 -> S3.
	if len(s.Succ[0]) != 2 || len(s.Pred[3]) != 2 {
		t.Fatalf("edges wrong: succ0=%v pred3=%v", s.Succ[0], s.Pred[3])
	}
	if len(s.Succ[1]) != 1 || s.Succ[1][0] != 3 {
		t.Errorf("succ(S1) = %v", s.Succ[1])
	}
}

func TestValidateAcceptsGPP(t *testing.T) {
	g := twoBranch(t)
	topo := cluster.NewSummitTopology(4)
	s := gppStrategy(t, g)
	if err := s.Validate(g, topo); err != nil {
		t.Fatalf("valid GPP strategy rejected: %v", err)
	}
}

func TestDepth(t *testing.T) {
	g := twoBranch(t)
	s := gppStrategy(t, g)
	// in -> branch -> out: depth 3 despite 4 stages (branches parallel).
	if d := s.Depth(); d != 3 {
		t.Errorf("GPP depth = %d, want 3", d)
	}
	// A sequential strategy over the same ops has depth 4.
	seq := gppStrategy(t, g)
	seq.Succ = [][]StageID{{1}, {2}, {3}, {}}
	seq.Pred = [][]StageID{{}, {0}, {1}, {2}}
	if d := seq.Depth(); d != 4 {
		t.Errorf("sequential depth = %d, want 4", d)
	}
}

func TestValidateC1Violations(t *testing.T) {
	g := twoBranch(t)
	topo := cluster.NewSummitTopology(4)

	// Overlapping stages.
	s := gppStrategy(t, g)
	s.Stages[1].Ops.Add(0) // also in stage 0
	if err := s.Validate(g, topo); err == nil {
		t.Error("accepted overlapping stages")
	}

	// Missing coverage.
	s = gppStrategy(t, g)
	s.Stages[3].Ops = graph.NodeSetOf() // drop 'out'
	if err := s.Validate(g, topo); err == nil {
		t.Error("accepted empty/uncovering stage")
	}

	// Non-convex stage: {in, out} with branches elsewhere.
	s = gppStrategy(t, g)
	s.Stages[0].Ops = graph.NodeSetOf(0, 5)
	s.Stages[3].Ops = graph.NodeSetOf(2) // give a2 to stage 3
	s.Stages[1].Ops = graph.NodeSetOf(1)
	if err := s.Validate(g, topo); err == nil {
		t.Error("accepted non-convex stage")
	}
}

func TestValidateC2Violations(t *testing.T) {
	g := twoBranch(t)
	topo := cluster.NewSummitTopology(4)
	s := gppStrategy(t, g)
	// Remove a required edge.
	s.Succ[0] = s.Succ[0][:1]
	if err := s.Validate(g, topo); err == nil || !strings.Contains(err.Error(), "C2") {
		t.Errorf("accepted missing stage edge: %v", err)
	}
}

func TestValidateC3Violations(t *testing.T) {
	g := twoBranch(t)
	topo := cluster.NewSummitTopology(4)

	s := gppStrategy(t, g)
	s.Stages[1].Devices = nil
	if err := s.Validate(g, topo); err == nil {
		t.Error("accepted stage with no devices")
	}

	s = gppStrategy(t, g)
	s.Stages[1].Devices = []cluster.DeviceID{0} // also stage 0's device
	if err := s.Validate(g, topo); err == nil {
		t.Error("accepted device double-assignment")
	}

	s = gppStrategy(t, g)
	s.Stages[1].Devices = []cluster.DeviceID{99}
	if err := s.Validate(g, topo); err == nil {
		t.Error("accepted unknown device")
	}
}

func TestValidateC4AndBatchViolations(t *testing.T) {
	g := twoBranch(t)
	topo := cluster.NewSummitTopology(4)

	s := gppStrategy(t, g)
	s.Stages[2].Config.MicroBatch = 3 // does not divide 8
	if err := s.Validate(g, topo); err == nil {
		t.Error("accepted non-dividing micro-batch")
	}

	s = gppStrategy(t, g)
	// Corrupt the task order: swap first two tasks (F0, F1).
	s.Stages[1].Tasks[0], s.Stages[1].Tasks[1] = s.Stages[1].Tasks[1], s.Stages[1].Tasks[0]
	if err := s.Validate(g, topo); err == nil {
		t.Error("accepted invalid task order")
	}
}

func TestStageOf(t *testing.T) {
	g := twoBranch(t)
	s := gppStrategy(t, g)
	if s.StageOf(3) != 2 {
		t.Errorf("StageOf(b1) = %d, want 2", s.StageOf(3))
	}
	if s.StageOf(graph.NodeID(99)) != -1 {
		t.Error("StageOf(unknown) != -1")
	}
}

func TestTopoOrderAndMaxInFlight(t *testing.T) {
	g := twoBranch(t)
	s := gppStrategy(t, g)
	order := s.TopoOrder()
	if len(order) != 4 || order[0] != 0 || order[3] != 3 {
		t.Errorf("TopoOrder = %v", order)
	}
	if s.MaxInFlightSamples() != 6 {
		t.Errorf("MaxInFlightSamples = %d, want 6", s.MaxInFlightSamples())
	}
}

func TestStringSummary(t *testing.T) {
	g := twoBranch(t)
	s := gppStrategy(t, g)
	out := s.String()
	for _, want := range []string{"4 stages", "depth 3", "S0", "S3"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}
