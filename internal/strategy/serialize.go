package strategy

import (
	"encoding/json"
	"fmt"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
	"graphpipe/internal/schedule"
)

// The JSON wire format decouples persisted strategies from the in-memory
// representation: operator sets and tasks are stored explicitly so a saved
// strategy can be inspected, diffed, or replayed by external tooling (the
// runtime equivalent of the paper's "optimized GPP training strategy"
// artifact handed from the optimizer to the distributed runtime, Figure 3).

type stageJSON struct {
	ID              int     `json:"id"`
	Ops             []int   `json:"ops"`
	MicroBatch      int     `json:"micro_batch"`
	K               int     `json:"kfkb"`
	Devices         []int   `json:"devices"`
	InFlightSamples int     `json:"in_flight_samples"`
	Tasks           []tjson `json:"tasks,omitempty"`
}

type tjson struct {
	Kind  string `json:"kind"` // "F" or "B"
	Index int    `json:"index"`
	Start int    `json:"start"`
	End   int    `json:"end"`
}

type strategyJSON struct {
	Planner   string      `json:"planner"`
	MiniBatch int         `json:"mini_batch"`
	Stages    []stageJSON `json:"stages"`
	Succ      [][]int     `json:"succ"`
}

// MarshalJSON encodes the strategy in the stable wire format.
func (s *Strategy) MarshalJSON() ([]byte, error) {
	out := strategyJSON{
		Planner:   s.Planner,
		MiniBatch: s.MiniBatch,
		Succ:      make([][]int, len(s.Succ)),
	}
	for _, st := range s.Stages {
		sj := stageJSON{
			ID:              int(st.ID),
			MicroBatch:      st.Config.MicroBatch,
			K:               st.Config.K,
			InFlightSamples: st.InFlightSamples,
		}
		for _, op := range st.Ops.IDs() {
			sj.Ops = append(sj.Ops, int(op))
		}
		for _, d := range st.Devices {
			sj.Devices = append(sj.Devices, int(d))
		}
		for _, t := range st.Tasks {
			sj.Tasks = append(sj.Tasks, tjson{
				Kind: t.Kind.String(), Index: t.Index, Start: t.Start, End: t.End,
			})
		}
		out.Stages = append(out.Stages, sj)
	}
	for i, ws := range s.Succ {
		for _, w := range ws {
			out.Succ[i] = append(out.Succ[i], int(w))
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the wire format and rebuilds Pred from Succ. The
// caller should Validate the result against its graph and topology before
// executing it.
func (s *Strategy) UnmarshalJSON(data []byte) error {
	var in strategyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("strategy: decode: %w", err)
	}
	s.Planner = in.Planner
	s.MiniBatch = in.MiniBatch
	s.Stages = nil
	for _, sj := range in.Stages {
		st := Stage{
			ID:              StageID(sj.ID),
			Config:          schedule.Config{MicroBatch: sj.MicroBatch, K: sj.K},
			InFlightSamples: sj.InFlightSamples,
		}
		for _, op := range sj.Ops {
			st.Ops.Add(graph.NodeID(op))
		}
		for _, d := range sj.Devices {
			st.Devices = append(st.Devices, cluster.DeviceID(d))
		}
		for _, t := range sj.Tasks {
			kind := schedule.Forward
			if t.Kind == "B" {
				kind = schedule.Backward
			} else if t.Kind != "F" {
				return fmt.Errorf("strategy: unknown task kind %q", t.Kind)
			}
			st.Tasks = append(st.Tasks, schedule.Task{
				Kind: kind, Index: t.Index, Start: t.Start, End: t.End,
			})
		}
		s.Stages = append(s.Stages, st)
	}
	n := len(s.Stages)
	s.Succ = make([][]StageID, n)
	s.Pred = make([][]StageID, n)
	for i, ws := range in.Succ {
		if i >= n {
			return fmt.Errorf("strategy: succ table larger than stage list")
		}
		for _, w := range ws {
			if w < 0 || w >= n {
				return fmt.Errorf("strategy: succ edge to unknown stage %d", w)
			}
			s.Succ[i] = append(s.Succ[i], StageID(w))
			s.Pred[w] = append(s.Pred[w], StageID(i))
		}
	}
	return nil
}
