package strategy

import "testing"

// pinnedFingerprint is the fingerprint of pinnedArtifact below, computed
// once and frozen. If this test breaks, every cache keyed by fingerprints
// (the planning service's memory LRU and its on-disk artifact store)
// silently orphans its entries on upgrade — change the preimage version
// tag ("fp1") and this constant together, deliberately, or not at all.
const pinnedFingerprint = "4dc209c869384d034d6bab73723ea26035d2de28abe1c575927277b755f461cb"

func pinnedArtifact() *Artifact {
	return &Artifact{
		Model:     "mmt",
		Branches:  4,
		Devices:   8,
		MiniBatch: 128,
		Planner:   PlannerMeta{Name: "graphpipe", SearchSeconds: 1.5, DPStates: 1000},
		Options: PlanOptions{
			ForcedMicroBatch:          2,
			MaxMicroBatch:             4096,
			PerStageMicroBatch:        true,
			DisableSinkAnchoredSplits: false,
		},
		Evals: []EvalMeta{{Backend: "sim", IterationTime: 0.5, Throughput: 256}},
	}
}

func TestFingerprintStability(t *testing.T) {
	if got := pinnedArtifact().Fingerprint(); got != pinnedFingerprint {
		t.Fatalf("fingerprint drifted:\n got  %s\n want %s\n"+
			"(this invalidates every persisted plan cache; see the comment on pinnedFingerprint)",
			got, pinnedFingerprint)
	}
}

func TestFingerprintCoversIdentityFields(t *testing.T) {
	base := pinnedArtifact().Fingerprint()
	for name, mutate := range map[string]func(*Artifact){
		"model":        func(a *Artifact) { a.Model = "dlrm" },
		"branches":     func(a *Artifact) { a.Branches = 2 },
		"devices":      func(a *Artifact) { a.Devices = 16 },
		"mini_batch":   func(a *Artifact) { a.MiniBatch = 256 },
		"planner":      func(a *Artifact) { a.Planner.Name = "piper" },
		"forced_micro": func(a *Artifact) { a.Options.ForcedMicroBatch = 4 },
		"max_micro":    func(a *Artifact) { a.Options.MaxMicroBatch = 1024 },
		"per_stage":    func(a *Artifact) { a.Options.PerStageMicroBatch = false },
		"sink_splits":  func(a *Artifact) { a.Options.DisableSinkAnchoredSplits = true },
	} {
		a := pinnedArtifact()
		mutate(a)
		if a.Fingerprint() == base {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
}

func TestFingerprintIgnoresOutputs(t *testing.T) {
	base := pinnedArtifact().Fingerprint()
	a := pinnedArtifact()
	a.Evals = append(a.Evals, EvalMeta{Backend: "runtime", IterationTime: 0.4, Throughput: 300})
	a.Planner.SearchSeconds = 99
	a.Planner.DPStates = 5
	a.Planner.BinaryIters = 77
	a.Version = ArtifactVersion
	if a.Fingerprint() != base {
		t.Error("recorded evals / search stats leaked into the fingerprint")
	}
}

// The fingerprint must be computable both before planning (a service
// hashing an incoming request) and after decoding (an artifact loaded from
// disk) — the strategy itself is an output, not identity, and zero
// metadata falls back to the embedded strategy exactly like EncodeArtifact.
func TestFingerprintStrategyFallback(t *testing.T) {
	g := twoBranch(t)
	s := gppStrategy(t, g)
	full := &Artifact{Model: "two-branch", Devices: 4,
		MiniBatch: s.MiniBatch, Planner: PlannerMeta{Name: s.Planner}}
	withStrategy := &Artifact{Model: "two-branch", Devices: 4, Strategy: s}
	if full.Fingerprint() != withStrategy.Fingerprint() {
		t.Error("zero mini-batch/planner did not fall back to the embedded strategy")
	}
}
