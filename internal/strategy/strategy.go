// Package strategy defines the output of all planners: the pipeline stage
// graph G_S = (V_S, E_S) of §3. Each stage S_i = ⟨G_i, b_i, D_i, Π_i⟩ holds
// a convex subgraph of the computation graph, a micro-batch size, a device
// set, and a micro-batch schedule. Validate checks conditions C1–C4, and
// Depth computes the pipeline depth (the diameter of the stage graph) that
// drives GraphPipe's memory advantage (§2).
package strategy

import (
	"fmt"
	"sort"
	"strings"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
	"graphpipe/internal/schedule"
)

// StageID indexes a stage within a Strategy.
type StageID int

// Stage is one pipeline stage.
type Stage struct {
	ID StageID
	// Ops is G_i, the subgraph of the computation graph assigned to the
	// stage.
	Ops graph.NodeSet
	// Config holds b_i (micro-batch size) and the stage's kFkB parameter.
	Config schedule.Config
	// Devices is D_i. len(Devices) > 1 applies data parallelism within the
	// stage.
	Devices []cluster.DeviceID
	// InFlightSamples is the scheduler-determined number of in-flight
	// samples (Algorithm 2 / Table 2).
	InFlightSamples int
	// Tasks is Π_i, the stage's forward/backward order for one iteration.
	Tasks []schedule.Task
}

// Strategy is a complete parallelization plan for one model, mini-batch
// size, and device topology.
type Strategy struct {
	// Planner names the algorithm that produced the strategy
	// ("graphpipe", "pipedream", "piper").
	Planner string
	// MiniBatch is B.
	MiniBatch int
	Stages    []Stage
	// Succ[i] lists the stages that consume stage i's outputs (E_S).
	Succ [][]StageID
	// Pred[i] lists the stages producing stage i's inputs.
	Pred [][]StageID
}

// NumStages returns |V_S|.
func (s *Strategy) NumStages() int { return len(s.Stages) }

// StageOf returns the stage that owns the operator, or -1.
func (s *Strategy) StageOf(op graph.NodeID) StageID {
	for i := range s.Stages {
		if s.Stages[i].Ops.Contains(op) {
			return StageID(i)
		}
	}
	return -1
}

// BuildEdges derives E_S from the computation graph per C2: stage i precedes
// stage j iff some operator edge crosses from G_i to G_j. It overwrites
// Succ/Pred.
func (s *Strategy) BuildEdges(g *graph.Graph) error {
	n := len(s.Stages)
	s.Succ = make([][]StageID, n)
	s.Pred = make([][]StageID, n)
	owner := make([]StageID, g.Len())
	for i := range owner {
		owner[i] = -1
	}
	for i := range s.Stages {
		for _, op := range s.Stages[i].Ops.IDs() {
			if owner[op] != -1 {
				return fmt.Errorf("strategy: op %d in stages %d and %d", op, owner[op], i)
			}
			owner[op] = StageID(i)
		}
	}
	seen := make(map[[2]StageID]bool)
	for _, e := range g.Edges() {
		a, b := owner[e.From], owner[e.To]
		if a == -1 || b == -1 {
			return fmt.Errorf("strategy: edge %v references unassigned op", e)
		}
		if a == b {
			continue
		}
		key := [2]StageID{a, b}
		if !seen[key] {
			seen[key] = true
			s.Succ[a] = append(s.Succ[a], b)
			s.Pred[b] = append(s.Pred[b], a)
		}
	}
	for i := range s.Succ {
		sort.Slice(s.Succ[i], func(a, b int) bool { return s.Succ[i][a] < s.Succ[i][b] })
		sort.Slice(s.Pred[i], func(a, b int) bool { return s.Pred[i][a] < s.Pred[i][b] })
	}
	return nil
}

// Validate checks the validity conditions of §3 against the computation
// graph and topology:
//
//	C1: stages are non-overlapping convex subgraphs covering all operators;
//	C2: stage edges exist exactly where operator edges cross stages, and the
//	    stage graph is acyclic;
//	C3: device sets are disjoint, non-empty, and within the topology;
//	C4: every stage's task order is a valid micro-batch schedule.
//
// It also checks that mini-batch and micro-batch sizes are consistent.
func (s *Strategy) Validate(g *graph.Graph, topo *cluster.Topology) error {
	if len(s.Stages) == 0 {
		return fmt.Errorf("strategy: no stages")
	}
	// C1: partition + convexity.
	covered := graph.NewNodeSet(g.Len())
	for i := range s.Stages {
		st := &s.Stages[i]
		if st.Ops.Empty() {
			return fmt.Errorf("strategy: stage %d empty", i)
		}
		if !covered.Disjoint(st.Ops) {
			return fmt.Errorf("strategy: stage %d overlaps another stage", i)
		}
		covered = covered.Union(st.Ops)
		if !g.InducedConvex(st.Ops) {
			return fmt.Errorf("strategy: stage %d (%v) is not convex (C1)", i, st.Ops)
		}
	}
	if covered.Len() != g.Len() {
		return fmt.Errorf("strategy: stages cover %d of %d ops (C1)", covered.Len(), g.Len())
	}

	// C2: every operator-edge crossing must be reflected in the stage
	// graph. Additional edges are permitted: SPP strategies impose
	// "imaginary linear dependencies" between stages the computation graph
	// leaves independent (Figure 2), and the stage graph must stay acyclic
	// with them.
	derived := &Strategy{Stages: s.Stages}
	if err := derived.BuildEdges(g); err != nil {
		return err
	}
	if !edgesSubset(derived.Succ, s.Succ) {
		return fmt.Errorf("strategy: stage edges missing an operator crossing (C2)")
	}
	if !predsMatchSuccs(s.Succ, s.Pred) {
		return fmt.Errorf("strategy: Pred is not the transpose of Succ")
	}
	if err := checkAcyclic(s.Succ); err != nil {
		return err
	}

	// C3: device partition.
	seenDev := make(map[cluster.DeviceID]StageID)
	for i := range s.Stages {
		st := &s.Stages[i]
		if len(st.Devices) == 0 {
			return fmt.Errorf("strategy: stage %d has no devices (C3)", i)
		}
		for _, d := range st.Devices {
			if int(d) < 0 || int(d) >= topo.Len() {
				return fmt.Errorf("strategy: stage %d uses unknown device %d", i, d)
			}
			if prev, dup := seenDev[d]; dup {
				return fmt.Errorf("strategy: device %d assigned to stages %d and %d (C3)", d, prev, i)
			}
			seenDev[d] = StageID(i)
		}
	}

	// C4 + batch consistency.
	for i := range s.Stages {
		st := &s.Stages[i]
		if !st.Config.Valid() {
			return fmt.Errorf("strategy: stage %d has invalid config %+v", i, st.Config)
		}
		if s.MiniBatch%st.Config.MicroBatch != 0 {
			return fmt.Errorf("strategy: stage %d micro-batch %d does not divide mini-batch %d",
				i, st.Config.MicroBatch, s.MiniBatch)
		}
		if len(st.Tasks) > 0 {
			if err := schedule.ValidateTasks(st.Tasks, st.Config, s.MiniBatch); err != nil {
				return fmt.Errorf("strategy: stage %d schedule invalid (C4): %w", i, err)
			}
		}
	}
	return nil
}

// edgesSubset reports whether every edge of a is present in b.
func edgesSubset(a, b [][]StageID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		have := make(map[StageID]bool, len(b[i]))
		for _, w := range b[i] {
			have[w] = true
		}
		for _, w := range a[i] {
			if !have[w] {
				return false
			}
		}
	}
	return true
}

// predsMatchSuccs verifies Pred is exactly the transpose of Succ.
func predsMatchSuccs(succ, pred [][]StageID) bool {
	if len(succ) != len(pred) {
		return false
	}
	count := 0
	for v, ws := range succ {
		for _, w := range ws {
			found := false
			for _, p := range pred[w] {
				if p == StageID(v) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
			count++
		}
	}
	total := 0
	for _, ps := range pred {
		total += len(ps)
	}
	return count == total
}

// AddSequentialEdges imposes a strict sequential order on the stages (the
// "imaginary linear dependencies" SPP planners introduce when they
// linearize the computation graph, Figure 2). Existing edges are kept;
// consecutive stages in `order` gain an edge if absent.
func (s *Strategy) AddSequentialEdges(order []StageID) {
	for i := 0; i+1 < len(order); i++ {
		a, b := order[i], order[i+1]
		exists := false
		for _, w := range s.Succ[a] {
			if w == b {
				exists = true
				break
			}
		}
		if !exists {
			s.Succ[a] = append(s.Succ[a], b)
			s.Pred[b] = append(s.Pred[b], a)
		}
	}
	for i := range s.Succ {
		sort.Slice(s.Succ[i], func(a, b int) bool { return s.Succ[i][a] < s.Succ[i][b] })
		sort.Slice(s.Pred[i], func(a, b int) bool { return s.Pred[i][a] < s.Pred[i][b] })
	}
}

func checkAcyclic(succ [][]StageID) error {
	n := len(succ)
	indeg := make([]int, n)
	for _, ws := range succ {
		for _, w := range ws {
			indeg[w]++
		}
	}
	var q []StageID
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			q = append(q, StageID(i))
		}
	}
	done := 0
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		done++
		for _, w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				q = append(q, w)
			}
		}
	}
	if done != n {
		return fmt.Errorf("strategy: stage graph has a cycle (C2)")
	}
	return nil
}

// Depth returns the pipeline depth: the number of stages on the longest
// path of the stage graph (the diameter of G_S, §2). SPP strategies with n
// stages have depth n; GPP strategies with parallel branches have smaller
// depth, which is the source of their memory advantage.
func (s *Strategy) Depth() int {
	n := len(s.Stages)
	depth := make([]int, n)
	order, err := topoStages(s.Succ)
	if err != nil {
		return n // cyclic: report worst case
	}
	max := 0
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		d := 1
		for _, w := range s.Succ[v] {
			if depth[w]+1 > d {
				d = depth[w] + 1
			}
		}
		depth[v] = d
		if d > max {
			max = d
		}
	}
	return max
}

func topoStages(succ [][]StageID) ([]StageID, error) {
	n := len(succ)
	indeg := make([]int, n)
	for _, ws := range succ {
		for _, w := range ws {
			indeg[w]++
		}
	}
	var q, order []StageID
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			q = append(q, StageID(i))
		}
	}
	for len(q) > 0 {
		sort.Slice(q, func(i, j int) bool { return q[i] < q[j] })
		v := q[0]
		q = q[1:]
		order = append(order, v)
		for _, w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				q = append(q, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("strategy: cycle")
	}
	return order, nil
}

// TopoOrder returns the stages in a deterministic topological order of the
// stage graph.
func (s *Strategy) TopoOrder() []StageID {
	order, err := topoStages(s.Succ)
	if err != nil {
		panic(err) // Validate rejects cyclic stage graphs
	}
	return order
}

// MaxInFlightSamples returns the largest per-stage in-flight sample count,
// a proxy for peak activation pressure.
func (s *Strategy) MaxInFlightSamples() int {
	max := 0
	for i := range s.Stages {
		if s.Stages[i].InFlightSamples > max {
			max = s.Stages[i].InFlightSamples
		}
	}
	return max
}

// String renders a human-readable summary.
func (s *Strategy) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s strategy: %d stages, depth %d, mini-batch %d\n",
		s.Planner, len(s.Stages), s.Depth(), s.MiniBatch)
	for i := range s.Stages {
		st := &s.Stages[i]
		fmt.Fprintf(&sb, "  S%d: %d ops, %s, devices %v, in-flight %d samples ->",
			i, st.Ops.Len(), st.Config, st.Devices, st.InFlightSamples)
		for _, w := range s.Succ[i] {
			fmt.Fprintf(&sb, " S%d", w)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
