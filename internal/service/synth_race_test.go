package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"graphpipe/internal/obs"
)

// TestConcurrentSynthSpecRequests drives the service's hot paths —
// fingerprinting, cache lookup, singleflight, admission, stats — with
// concurrent traffic over synthetic-model specs, under -race in CI.
// The workload mixes repeated identical specs (singleflight and warm
// hits), distinct specs (cold planner runs), eval piggybacks, and
// continuous Stats() polling, then checks the accounting invariants:
// every request is classified exactly once, and the planner ran at
// most once per distinct fingerprint.
//
// It also pins the tentpole's end-to-end claim: a synth: spec is a
// first-class model name all the way through the planning service.
func TestConcurrentSynthSpecRequests(t *testing.T) {
	s := newService(t, Config{})
	const (
		workers  = 8
		rounds   = 6
		distinct = 4 // distinct synth specs, each hit by every worker
	)
	spec := func(i int) string { return fmt.Sprintf("synth:fanout/seed=%d", i%distinct) }

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		byFP     = map[string][]byte{}
		firstErr error
	)
	record := func(fp string, data []byte, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		if prev, ok := byFP[fp]; ok {
			if !bytes.Equal(prev, data) {
				firstErr = fmt.Errorf("fingerprint %s served different bytes", fp)
			}
			return
		}
		byFP[fp] = data
	}

	// A scraper races GET /metrics against the counters' hot-path
	// increments and the histogram locks: the exposition writer must
	// stay parseable mid-hammer, not just at rest.
	handler := s.Handler()
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
			if rec.Code != http.StatusOK {
				record("", nil, fmt.Errorf("/metrics status %d", rec.Code))
				return
			}
			if _, err := obs.ParseText(rec.Body); err != nil {
				record("", nil, fmt.Errorf("/metrics unparseable mid-hammer: %v", err))
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				req := Request{Model: spec(w + r), Devices: 4}
				switch r % 3 {
				case 0, 1:
					res, err := s.Plan(context.Background(), req)
					if err != nil {
						record("", nil, err)
						continue
					}
					record(res.Fingerprint, res.Data, nil)
				case 2:
					res, err := s.Eval(context.Background(), EvalRequest{Request: req})
					if err != nil {
						record("", nil, err)
						continue
					}
					if res.Throughput <= 0 {
						record("", nil, fmt.Errorf("eval of %s: degenerate throughput %g",
							req.Model, res.Throughput))
					}
				}
				// Stats polling races the counters' hot-path increments.
				_ = s.Stats()
			}
		}(w)
	}
	wg.Wait()
	close(stopScrape)
	scrapeWG.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if len(byFP) != distinct {
		t.Errorf("saw %d distinct fingerprints, want %d", len(byFP), distinct)
	}

	snap := s.Stats()
	totalPlanPath := snap.HitsMemory + snap.HitsDisk + snap.Misses
	if totalPlanPath == 0 {
		t.Fatal("no plan-path requests recorded")
	}
	// Every miss resolved either to an owned planner run or a shared
	// wait, and nothing planned twice per fingerprint.
	if snap.Planned+snap.SharedWaits != snap.Misses {
		t.Errorf("misses %d != planned %d + shared %d",
			snap.Misses, snap.Planned, snap.SharedWaits)
	}
	if snap.Planned != uint64(distinct) {
		t.Errorf("planner ran %d times for %d distinct specs", snap.Planned, distinct)
	}
	if snap.Rejected != 0 {
		t.Errorf("default config shed %d requests", snap.Rejected)
	}
	if snap.InFlight != 0 || snap.Queued != 0 {
		t.Errorf("gauges not drained: in-flight %d queued %d", snap.InFlight, snap.Queued)
	}
}

// TestSynthSpecBadRequests pins the 400 class for malformed synth
// specs: canonicalization rejects them before any planner work.
func TestSynthSpecBadRequests(t *testing.T) {
	s := newService(t, Config{})
	for _, model := range []string{
		"synth:",                  // no family
		"synth:bogus/seed=1",      // unknown family
		"synth:chain",             // missing seed
		"synth:chain/seed=1/d=up", // unknown knob
	} {
		_, err := s.Plan(context.Background(), Request{Model: model, Devices: 4})
		if !errors.Is(err, ErrBadRequest) {
			t.Errorf("Plan(%q) = %v, want ErrBadRequest", model, err)
		}
	}
}

// TestSynthSpecFingerprintResolution pins that synth requests are
// canonicalized to the *resolved* spec before hashing, exactly like
// the zero mini-batch default: the seed-only shorthand and the fully
// knob-spelled resolved form are the same planning question and share
// one fingerprint, cache entry, and artifact — whose Model metadata
// pins every derived knob.
func TestSynthSpecFingerprintResolution(t *testing.T) {
	s := newService(t, Config{})
	a, err := s.Plan(context.Background(), Request{Model: "synth:chain/seed=2", Devices: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Artifact.Model == "synth:chain/seed=2" || !strings.Contains(a.Artifact.Model, "synth:chain/seed=2/") {
		t.Errorf("artifact stores %q, want the resolved spec", a.Artifact.Model)
	}
	// Both the shorthand and the resolved spelling hit the same entry.
	for _, spelling := range []string{"synth:chain/seed=2", a.Artifact.Model} {
		b, err := s.Plan(context.Background(), Request{Model: spelling, Devices: 4})
		if err != nil {
			t.Fatal(err)
		}
		if b.Fingerprint != a.Fingerprint || !bytes.Equal(b.Data, a.Data) {
			t.Errorf("spelling %q did not share the cached plan", spelling)
		}
		if b.Source == "miss" {
			t.Errorf("spelling %q source %q, want a cache hit", spelling, b.Source)
		}
	}
	// The artifact's metadata rebuilds the same graph: eval by
	// fingerprint alone succeeds.
	res, err := s.Eval(context.Background(), EvalRequest{Fingerprint: a.Fingerprint})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanSource != "hit-memory" || res.Throughput <= 0 {
		t.Errorf("eval by fingerprint: %+v", res)
	}
}
