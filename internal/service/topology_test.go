package service

import (
	"context"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/models"
)

// TestTopologyFingerprintSpellings pins the canonicalization contract for
// the topology dimension of the request identity: every spelling of one
// physical cluster fingerprints identically, and any change to the
// cluster's substance — a link bandwidth, a device class — changes the
// fingerprint.
func TestTopologyFingerprintSpellings(t *testing.T) {
	base := Request{Model: "case-study", Devices: 4}
	fp := func(topology string) string {
		t.Helper()
		r := base
		r.Topology = topology
		f, err := r.CanonicalFingerprint()
		if err != nil {
			t.Fatalf("fingerprinting topology %q: %v", topology, err)
		}
		return f
	}

	// The Summit default has three spellings: absent, the preset name,
	// and the fully explicit spec.
	def := fp("")
	if got := fp("summit"); got != def {
		t.Errorf("preset name fingerprints differently from the default: %s vs %s", got, def)
	}
	if got := fp(cluster.SummitSpec(4).Canonical()); got != def {
		t.Errorf("explicit Summit spelling fingerprints differently from the default: %s vs %s", got, def)
	}

	// A synth family name and its resolved explicit spec are one cluster.
	synthName := "topo:hetero-speed/seed=3"
	topo, err := models.Topology(synthName, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fp(synthName), fp(topo.Canonical()); got != want {
		t.Errorf("synth spelling and its explicit form diverge: %s vs %s", got, want)
	}
	if got := fp(synthName); got == def {
		t.Error("hetero topology shares the Summit default's fingerprint")
	}

	// Substance changes move the fingerprint: a faster inter-node link,
	// a different device class.
	spec := cluster.SummitSpec(4)
	spec.Levels[len(spec.Levels)-1].DownBandwidth *= 2
	if got := fp(spec.Canonical()); got == def {
		t.Error("doubling a link bandwidth left the fingerprint unchanged")
	}
	spec = cluster.SummitSpec(4)
	spec.Classes[0].PeakFLOPS *= 2
	if got := fp(spec.Canonical()); got == def {
		t.Error("doubling the device class's FLOPS left the fingerprint unchanged")
	}
}

// TestTopologyScopesCacheAndMemo pins that the topology participates in
// both reuse tiers: a respelled identical cluster hits the plan cache,
// a different cluster misses it AND is refused warm-start from the other
// cluster's memo snapshot (the snapshot cost signature binds the
// topology, so a hetero cluster can never inherit Summit's DP memo).
func TestTopologyScopesCacheAndMemo(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	req := func(topology string) Request {
		return Request{Model: "mmt", Devices: 4, MiniBatch: 64,
			Planner: "graphpipe", Topology: topology}
	}

	if _, err := s.Plan(context.Background(), req("")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Planned != 1 {
		t.Fatalf("first plan ran %d planner runs, want 1", st.Planned)
	}

	// Same cluster, different spelling: served from cache, no new run.
	if _, err := s.Plan(context.Background(), req("summit")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Planned != 1 || st.HitsMemory != 1 {
		t.Fatalf("respelled Summit request: planned=%d memory_hits=%d, want 1/1",
			st.Planned, st.HitsMemory)
	}

	// Different cluster: a fresh planner run, and no warm hit off the
	// Summit run's snapshot.
	if _, err := s.Plan(context.Background(), req("topo:hetero-speed/seed=1")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Planned != 2 {
		t.Errorf("hetero request reused the Summit plan: planned=%d, want 2", st.Planned)
	}
	if st.MemoWarmHits != 0 {
		t.Errorf("hetero planner run warm-started from the Summit memo: warm_hits=%d", st.MemoWarmHits)
	}
}
