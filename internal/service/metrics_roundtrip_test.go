package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphpipe/internal/obs"
)

// TestStatsAndMetricsAgree is the unified-surface check: after a
// scripted request mix, every counter /v1/stats reports in JSON must
// equal the same counter scraped from /metrics in Prometheus text. The
// two surfaces read the same obs atomics by construction — this test
// exists to keep the *wiring* honest (a counter registered under the
// wrong name, or a snapshot field reading the wrong series, shows up
// as a mismatch here).
func TestStatsAndMetricsAgree(t *testing.T) {
	s := newService(t, Config{CacheDir: t.TempDir()})
	handler := s.Handler()
	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		var rd *strings.Reader
		if body != "" {
			rd = strings.NewReader(body)
		} else {
			rd = strings.NewReader("")
		}
		req := httptest.NewRequest(method, path, rd)
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		return rec
	}

	// The mix: two distinct cold plans, a memory hit, a disk-tier reload
	// is not scriptable in-process (the memory tier absorbs repeats), an
	// eval piggyback, an artifact fetch, and one guaranteed 400.
	plan := `{"model":"case-study","devices":4,"planner":"stub"}`
	plan2 := `{"model":"synth:chain/seed=1","devices":4,"planner":"stub"}`
	first := do(http.MethodPost, "/v1/plan", plan)
	if first.Code != http.StatusOK {
		t.Fatalf("cold plan status %d: %s", first.Code, first.Body)
	}
	fp := first.Header().Get(HeaderFingerprint)
	for _, req := range []struct{ method, path, body string }{
		{http.MethodPost, "/v1/plan", plan2},
		{http.MethodPost, "/v1/plan", plan},  // hit-memory
		{http.MethodPost, "/v1/plan", plan2}, // hit-memory
		{http.MethodPost, "/v1/eval", `{"model":"case-study","devices":4,"planner":"stub"}`},
		{http.MethodGet, "/v1/artifacts/" + fp, ""},
	} {
		if rec := do(req.method, req.path, req.body); rec.Code != http.StatusOK {
			t.Fatalf("%s %s status %d: %s", req.method, req.path, rec.Code, rec.Body)
		}
	}

	statsRec := do(http.MethodGet, "/v1/stats", "")
	var snap Snapshot
	if err := json.Unmarshal(statsRec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	metricsRec := do(http.MethodGet, "/metrics", "")
	if ct := metricsRec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	series, err := obs.ParseText(metricsRec.Body)
	if err != nil {
		t.Fatalf("metrics exposition: %v", err)
	}

	// Sanity-pin a few absolute values so the identity check below can't
	// pass vacuously on a fleet of zeros.
	if snap.Misses != 2 || snap.HitsMemory < 2 || snap.Planned != 2 || snap.Evals != 1 {
		t.Fatalf("scripted mix landed wrong: misses=%d hitsMem=%d planned=%d evals=%d",
			snap.Misses, snap.HitsMemory, snap.Planned, snap.Evals)
	}

	for metric, want := range map[string]uint64{
		`graphpipe_cache_hits_total{tier="memory"}`: snap.HitsMemory,
		`graphpipe_cache_hits_total{tier="disk"}`:   snap.HitsDisk,
		`graphpipe_cache_misses_total`:              snap.Misses,
		`graphpipe_planned_total`:                   snap.Planned,
		`graphpipe_shared_waits_total`:              snap.SharedWaits,
		`graphpipe_rejected_total`:                  snap.Rejected,
		`graphpipe_evals_total`:                     snap.Evals,
		`graphpipe_disk_failures_total`:             snap.DiskFailures,
		`graphpipe_memo_warm_hits_total`:            snap.MemoWarmHits,
		`graphpipe_memory_evictions_total`:          snap.MemoryEvictions,
		`graphpipe_deadline_rejections_total`:       snap.DeadlineRejections,
	} {
		got, ok := series[metric]
		if !ok {
			t.Errorf("metric %s missing from /metrics", metric)
			continue
		}
		if uint64(got) != want {
			t.Errorf("%s = %v on /metrics but %d on /v1/stats", metric, got, want)
		}
	}

	// The planner latency histogram carries the same observation count
	// as the JSON snapshot's.
	h, ok := snap.PlannerLatency["stub"]
	if !ok {
		t.Fatal("no stub planner latency in /v1/stats")
	}
	if got := series[`graphpipe_planner_search_seconds_count{planner="stub"}`]; uint64(got) != h.Count {
		t.Errorf("planner histogram count: %v on /metrics, %d on /v1/stats", got, h.Count)
	}
	// Request latency landed per route, including this scrape's own
	// route family being registered.
	if got := series[`graphpipe_request_seconds_count{route="plan"}`]; got < 4 {
		t.Errorf("request_seconds{route=plan} count = %v, want >= 4", got)
	}
}
