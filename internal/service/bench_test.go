package service

import (
	"context"
	"testing"
	"time"
)

// The cold/warm pair quantifies what the serving layer buys: cold pays
// request canonicalization + planner search + artifact encode + cache
// fill; warm pays canonicalization + fingerprint + memory-LRU lookup.
// scripts/bench.sh records both via cmd/benchreport (units
// service_plan_cold_s / service_plan_warm_s), so the cold:warm ratio is
// part of the committed perf trajectory.

func benchRequest() Request {
	return Request{Model: "case-study", Devices: 4}
}

func BenchmarkServicePlanCold(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := New(Config{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		start := time.Now()
		if _, err := s.Plan(context.Background(), benchRequest()); err != nil {
			b.Fatal(err)
		}
		total += time.Since(start)

		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
	b.ReportMetric(total.Seconds()/float64(b.N), "service_plan_cold_s")
}

func BenchmarkServicePlanWarm(b *testing.B) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Plan(context.Background(), benchRequest()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := s.Plan(context.Background(), benchRequest())
		if err != nil {
			b.Fatal(err)
		}
		if res.Source != "hit-memory" {
			b.Fatalf("warm iteration got source %q", res.Source)
		}
	}
	b.ReportMetric(time.Since(start).Seconds()/float64(b.N), "service_plan_warm_s")
}
