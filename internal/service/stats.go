package service

import (
	"sync"

	"graphpipe/internal/obs"
)

// HistogramSnapshot and HistogramBucket are re-exported from obs, where
// the histogram implementation now lives (shared with the fleet
// router). The /v1/stats JSON shape is unchanged.
type (
	HistogramSnapshot = obs.HistogramSnapshot
	HistogramBucket   = obs.HistogramBucket
)

// stats is the service's observability state. Every counter is an obs
// counter registered in the service's metrics registry, so /v1/stats
// and GET /metrics read the very same atomics — the two surfaces cannot
// disagree. The per-planner histogram map is guarded by a mutex but
// accessed once per cold plan, after a planner run that dwarfs it.
type stats struct {
	reg *obs.Registry

	hitsMemory        *obs.Counter
	hitsDisk          *obs.Counter
	misses            *obs.Counter
	planned           *obs.Counter
	sharedWaits       *obs.Counter
	rejected          *obs.Counter
	evals             *obs.Counter
	diskFailures      *obs.Counter
	memoWarmHits      *obs.Counter
	memoEntriesReused *obs.Counter

	peerFills          *obs.Counter
	peerMisses         *obs.Counter
	peerErrors         *obs.Counter
	peerTimeouts       *obs.Counter
	deadlineRejections *obs.Counter
	memoOffersSent     *obs.Counter
	memoOffersReceived *obs.Counter

	mu        sync.Mutex
	latencies map[string]*obs.Histogram // planner name → search latency
	requests  map[string]*obs.Histogram // route name → request latency
}

func newStats() *stats {
	r := obs.NewRegistry()
	tier := func(t string) obs.Labels { return obs.Labels{"tier": t} }
	return &stats{
		reg:        r,
		hitsMemory: r.Counter("graphpipe_cache_hits_total", "Plan requests answered by a cache tier.", tier("memory")),
		hitsDisk:   r.Counter("graphpipe_cache_hits_total", "Plan requests answered by a cache tier.", tier("disk")),
		misses:     r.Counter("graphpipe_cache_misses_total", "Plan requests that missed both local tiers.", nil),
		planned:    r.Counter("graphpipe_planned_total", "Cold planner runs.", nil),
		sharedWaits: r.Counter("graphpipe_shared_waits_total",
			"Requests that piggybacked on another request's planner run.", nil),
		rejected: r.Counter("graphpipe_rejected_total", "Admissions refused with 429 (queue full).", nil),
		evals:    r.Counter("graphpipe_evals_total", "Evaluation runs.", nil),
		diskFailures: r.Counter("graphpipe_disk_failures_total",
			"Disk-tier reads/writes that errored; each degraded to a miss.", nil),
		memoWarmHits: r.Counter("graphpipe_memo_warm_hits_total",
			"Planner runs that imported a compatible DP memo snapshot.", nil),
		memoEntriesReused: r.Counter("graphpipe_memo_entries_reused_total",
			"Imported memo entries consulted by warm-started runs.", nil),
		peerFills:  r.Counter("graphpipe_peer_fills_total", "Local misses answered by a ring peer's artifact.", nil),
		peerMisses: r.Counter("graphpipe_peer_misses_total", "Full peer consults that found nothing.", nil),
		peerErrors: r.Counter("graphpipe_peer_errors_total", "Unreachable or invalid peer answers.", nil),
		peerTimeouts: r.Counter("graphpipe_peer_timeouts_total",
			"Peer consults/offers cut off by a timeout or budget.", nil),
		deadlineRejections: r.Counter("graphpipe_deadline_rejections_total",
			"Requests answered 504 because their time budget expired.", nil),
		memoOffersSent:     r.Counter("graphpipe_memo_offers_sent_total", "DP memo snapshots pushed to ring peers.", nil),
		memoOffersReceived: r.Counter("graphpipe_memo_offers_received_total", "DP memo snapshots accepted from peers.", nil),
	}
}

func (s *stats) observePlanner(name string, seconds float64) {
	s.mu.Lock()
	if s.latencies == nil {
		s.latencies = make(map[string]*obs.Histogram)
	}
	h, ok := s.latencies[name]
	if !ok {
		h = s.reg.Histogram("graphpipe_planner_search_seconds",
			"Planner search latency by planner.", obs.Labels{"planner": name}, nil)
		s.latencies[name] = h
	}
	s.mu.Unlock()
	h.Observe(seconds)
}

// observeRequest records one HTTP request's end-to-end latency by route
// ("plan", "eval", ...), feeding graphpipe_request_seconds on /metrics.
func (s *stats) observeRequest(route string, seconds float64) {
	s.mu.Lock()
	if s.requests == nil {
		s.requests = make(map[string]*obs.Histogram)
	}
	h, ok := s.requests[route]
	if !ok {
		h = s.reg.Histogram("graphpipe_request_seconds",
			"HTTP request latency by route.", obs.Labels{"route": route}, nil)
		s.requests[route] = h
	}
	s.mu.Unlock()
	h.Observe(seconds)
}

// Snapshot is the exported form of the service's counters and gauges —
// the body of GET /v1/stats.
type Snapshot struct {
	// Cache tier outcomes for Plan requests.
	HitsMemory uint64 `json:"hits_memory"`
	HitsDisk   uint64 `json:"hits_disk"`
	Misses     uint64 `json:"misses"`
	// Planned counts actual planner runs; SharedWaits counts requests
	// that piggybacked on another request's run (singleflight).
	Planned     uint64 `json:"planned"`
	SharedWaits uint64 `json:"shared_waits"`
	// Rejected counts admissions refused with ErrOverloaded.
	Rejected uint64 `json:"rejected"`
	// Evals counts evaluation runs.
	Evals uint64 `json:"evals"`
	// DiskFailures counts disk-tier reads/writes that errored (corrupt or
	// misfiled artifacts, IO errors); each one degraded to a miss.
	DiskFailures uint64 `json:"disk_failures"`
	// MemoWarmHits counts planner runs that imported a compatible DP memo
	// snapshot; MemoEntriesReused totals the imported entries those runs
	// actually consulted.
	MemoWarmHits      uint64 `json:"memo_warm_hits"`
	MemoEntriesReused uint64 `json:"memo_entries_reused"`
	// PeerFills counts local two-tier misses answered by a ring peer's
	// artifact (each one avoided a cold search); PeerMisses counts full
	// peer consults that found nothing; PeerErrors counts unreachable or
	// invalid peer answers (each degraded to a miss); PeerTimeouts
	// counts consults and offers cut off by FillTimeout or the
	// request's budget (also degraded to misses, counted apart because
	// a slow fleet wants a different fix than a broken one).
	PeerFills    uint64 `json:"peer_fills"`
	PeerMisses   uint64 `json:"peer_misses"`
	PeerErrors   uint64 `json:"peer_errors"`
	PeerTimeouts uint64 `json:"peer_timeouts"`
	// DeadlineRejections counts requests this daemon answered with 504
	// because their time budget (HeaderBudget) expired mid-request.
	DeadlineRejections uint64 `json:"deadline_rejections"`
	// MemoOffersSent counts DP memo snapshots pushed to the peers owning
	// neighboring device counts; MemoOffersReceived counts snapshots
	// accepted from peers via POST /v1/memos.
	MemoOffersSent     uint64 `json:"memo_offers_sent"`
	MemoOffersReceived uint64 `json:"memo_offers_received"`
	// InFlight and Queued are the admission pool's instantaneous gauges;
	// MemoryEntries and MemoryEvictions describe the memory cache tier.
	InFlight        int64  `json:"in_flight"`
	Queued          int64  `json:"queued"`
	MemoryEntries   int    `json:"memory_entries"`
	MemoryEvictions uint64 `json:"memory_evictions"`
	// MemoSnapshots, MemoInstalls, and MemoEvictions describe the DP memo
	// snapshot store (all zero when warm-starting is disabled).
	MemoSnapshots int    `json:"memo_snapshots"`
	MemoInstalls  uint64 `json:"memo_installs"`
	MemoEvictions uint64 `json:"memo_evictions"`
	// PlannerLatency maps planner name to its search-latency histogram.
	PlannerLatency map[string]HistogramSnapshot `json:"planner_latency,omitempty"`
	// FaultsInjected tallies injected faults by "site/kind" — empty in
	// production (no fault spec); under chaos it lets every observed
	// degradation be matched to the fault that caused it.
	FaultsInjected map[string]uint64 `json:"faults_injected,omitempty"`
}

func (s *stats) snapshot() Snapshot {
	snap := Snapshot{
		HitsMemory:        s.hitsMemory.Value(),
		HitsDisk:          s.hitsDisk.Value(),
		Misses:            s.misses.Value(),
		Planned:           s.planned.Value(),
		SharedWaits:       s.sharedWaits.Value(),
		Rejected:          s.rejected.Value(),
		Evals:             s.evals.Value(),
		DiskFailures:      s.diskFailures.Value(),
		MemoWarmHits:      s.memoWarmHits.Value(),
		MemoEntriesReused: s.memoEntriesReused.Value(),

		PeerFills:          s.peerFills.Value(),
		PeerMisses:         s.peerMisses.Value(),
		PeerErrors:         s.peerErrors.Value(),
		PeerTimeouts:       s.peerTimeouts.Value(),
		DeadlineRejections: s.deadlineRejections.Value(),
		MemoOffersSent:     s.memoOffersSent.Value(),
		MemoOffersReceived: s.memoOffersReceived.Value(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.latencies) > 0 {
		snap.PlannerLatency = make(map[string]HistogramSnapshot, len(s.latencies))
		for name, h := range s.latencies {
			snap.PlannerLatency[name] = h.Snapshot()
		}
	}
	return snap
}
