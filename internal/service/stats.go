package service

import (
	"sort"
	"sync"
	"sync/atomic"
)

// histBounds are the upper bounds (seconds) of the planner-latency
// histogram buckets, spanning sub-millisecond case-study plans to Piper's
// minutes-long searches; the implicit final bucket is +Inf.
var histBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 300,
}

// histogram accumulates latency observations into fixed exponential
// buckets (Prometheus-style: cumulative on export, counts internally).
type histogram struct {
	mu      sync.Mutex
	buckets []uint64 // len(histBounds)+1; last is +Inf
	count   uint64
	sum     float64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]uint64, len(histBounds)+1)}
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(histBounds, seconds)
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += seconds
	h.mu.Unlock()
}

// HistogramSnapshot is the exported form of one latency histogram.
type HistogramSnapshot struct {
	// Count and SumSeconds give the observation count and total latency
	// (their ratio is the mean).
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	// Buckets are cumulative: each entry counts observations at or below
	// its bound. The implicit +Inf bucket always equals Count and is
	// omitted.
	Buckets []HistogramBucket `json:"buckets"`
}

// HistogramBucket is one cumulative bucket: observations ≤ LE seconds.
type HistogramBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, SumSeconds: h.sum}
	var cum uint64
	for i, b := range histBounds {
		cum += h.buckets[i]
		s.Buckets = append(s.Buckets, HistogramBucket{LE: b, Count: cum})
	}
	return s
}

// stats is the service's observability state. Counters are atomics
// (hot-path increments); the per-planner histogram map is guarded by a
// mutex but accessed once per cold plan, after a planner run that dwarfs
// it.
type stats struct {
	hitsMemory        atomic.Uint64
	hitsDisk          atomic.Uint64
	misses            atomic.Uint64
	planned           atomic.Uint64
	sharedWaits       atomic.Uint64
	rejected          atomic.Uint64
	evals             atomic.Uint64
	diskFailures      atomic.Uint64
	memoWarmHits      atomic.Uint64
	memoEntriesReused atomic.Uint64

	peerFills          atomic.Uint64
	peerMisses         atomic.Uint64
	peerErrors         atomic.Uint64
	peerTimeouts       atomic.Uint64
	deadlineRejections atomic.Uint64
	memoOffersSent     atomic.Uint64
	memoOffersReceived atomic.Uint64

	mu        sync.Mutex
	latencies map[string]*histogram // planner name → search latency
}

func (s *stats) observePlanner(name string, seconds float64) {
	s.mu.Lock()
	if s.latencies == nil {
		s.latencies = make(map[string]*histogram)
	}
	h, ok := s.latencies[name]
	if !ok {
		h = newHistogram()
		s.latencies[name] = h
	}
	s.mu.Unlock()
	h.observe(seconds)
}

// Snapshot is the exported form of the service's counters and gauges —
// the body of GET /v1/stats.
type Snapshot struct {
	// Cache tier outcomes for Plan requests.
	HitsMemory uint64 `json:"hits_memory"`
	HitsDisk   uint64 `json:"hits_disk"`
	Misses     uint64 `json:"misses"`
	// Planned counts actual planner runs; SharedWaits counts requests
	// that piggybacked on another request's run (singleflight).
	Planned     uint64 `json:"planned"`
	SharedWaits uint64 `json:"shared_waits"`
	// Rejected counts admissions refused with ErrOverloaded.
	Rejected uint64 `json:"rejected"`
	// Evals counts evaluation runs.
	Evals uint64 `json:"evals"`
	// DiskFailures counts disk-tier reads/writes that errored (corrupt or
	// misfiled artifacts, IO errors); each one degraded to a miss.
	DiskFailures uint64 `json:"disk_failures"`
	// MemoWarmHits counts planner runs that imported a compatible DP memo
	// snapshot; MemoEntriesReused totals the imported entries those runs
	// actually consulted.
	MemoWarmHits      uint64 `json:"memo_warm_hits"`
	MemoEntriesReused uint64 `json:"memo_entries_reused"`
	// PeerFills counts local two-tier misses answered by a ring peer's
	// artifact (each one avoided a cold search); PeerMisses counts full
	// peer consults that found nothing; PeerErrors counts unreachable or
	// invalid peer answers (each degraded to a miss); PeerTimeouts
	// counts consults and offers cut off by FillTimeout or the
	// request's budget (also degraded to misses, counted apart because
	// a slow fleet wants a different fix than a broken one).
	PeerFills    uint64 `json:"peer_fills"`
	PeerMisses   uint64 `json:"peer_misses"`
	PeerErrors   uint64 `json:"peer_errors"`
	PeerTimeouts uint64 `json:"peer_timeouts"`
	// DeadlineRejections counts requests this daemon answered with 504
	// because their time budget (HeaderBudget) expired mid-request.
	DeadlineRejections uint64 `json:"deadline_rejections"`
	// MemoOffersSent counts DP memo snapshots pushed to the peers owning
	// neighboring device counts; MemoOffersReceived counts snapshots
	// accepted from peers via POST /v1/memos.
	MemoOffersSent     uint64 `json:"memo_offers_sent"`
	MemoOffersReceived uint64 `json:"memo_offers_received"`
	// InFlight and Queued are the admission pool's instantaneous gauges;
	// MemoryEntries and MemoryEvictions describe the memory cache tier.
	InFlight        int64  `json:"in_flight"`
	Queued          int64  `json:"queued"`
	MemoryEntries   int    `json:"memory_entries"`
	MemoryEvictions uint64 `json:"memory_evictions"`
	// MemoSnapshots, MemoInstalls, and MemoEvictions describe the DP memo
	// snapshot store (all zero when warm-starting is disabled).
	MemoSnapshots int    `json:"memo_snapshots"`
	MemoInstalls  uint64 `json:"memo_installs"`
	MemoEvictions uint64 `json:"memo_evictions"`
	// PlannerLatency maps planner name to its search-latency histogram.
	PlannerLatency map[string]HistogramSnapshot `json:"planner_latency,omitempty"`
	// FaultsInjected tallies injected faults by "site/kind" — empty in
	// production (no fault spec); under chaos it lets every observed
	// degradation be matched to the fault that caused it.
	FaultsInjected map[string]uint64 `json:"faults_injected,omitempty"`
}

func (s *stats) snapshot() Snapshot {
	snap := Snapshot{
		HitsMemory:        s.hitsMemory.Load(),
		HitsDisk:          s.hitsDisk.Load(),
		Misses:            s.misses.Load(),
		Planned:           s.planned.Load(),
		SharedWaits:       s.sharedWaits.Load(),
		Rejected:          s.rejected.Load(),
		Evals:             s.evals.Load(),
		DiskFailures:      s.diskFailures.Load(),
		MemoWarmHits:      s.memoWarmHits.Load(),
		MemoEntriesReused: s.memoEntriesReused.Load(),

		PeerFills:          s.peerFills.Load(),
		PeerMisses:         s.peerMisses.Load(),
		PeerErrors:         s.peerErrors.Load(),
		PeerTimeouts:       s.peerTimeouts.Load(),
		DeadlineRejections: s.deadlineRejections.Load(),
		MemoOffersSent:     s.memoOffersSent.Load(),
		MemoOffersReceived: s.memoOffersReceived.Load(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.latencies) > 0 {
		snap.PlannerLatency = make(map[string]HistogramSnapshot, len(s.latencies))
		for name, h := range s.latencies {
			snap.PlannerLatency[name] = h.snapshot()
		}
	}
	return snap
}
