package service

import (
	"fmt"

	"graphpipe/internal/graph"
	"graphpipe/internal/models"
	"graphpipe/internal/planner"
	"graphpipe/internal/strategy"
	"graphpipe/internal/synth"
)

// A Request is one planning question posed to the service: which model,
// on how many devices, under which planner and result-relevant options.
// It is the request-side mirror of a strategy.Artifact's identity fields,
// and canonicalization + Fingerprint below define when two requests are
// "the same question" for caching and deduplication purposes.
type Request struct {
	// Model is a models.Build name (e.g. "mmt").
	Model string `json:"model"`
	// Branches overrides the model's branch count (0: model default).
	Branches int `json:"branches,omitempty"`
	// Devices is the cluster size to plan for. Required.
	Devices int `json:"devices"`
	// Topology names the cluster shape: empty or "summit" selects the
	// paper's Summit preset at Devices, "topo:explicit/..." spells a
	// topology out in full, and any other "topo:" name is a seeded synth
	// topology family. Canonicalization resolves every spelling to the
	// topology's canonical spec string ("" for the Summit default), so all
	// spellings of one cluster share a fingerprint.
	Topology string `json:"topology,omitempty"`
	// MiniBatch is B; 0 selects the paper's default pairing for the
	// model and device count (resolved during canonicalization, so the
	// explicit and defaulted spellings share a fingerprint).
	MiniBatch int `json:"mini_batch,omitempty"`
	// Planner is a planner-registry name; empty selects "graphpipe".
	Planner string `json:"planner,omitempty"`
	// Options carries the result-relevant planning knobs.
	Options strategy.PlanOptions `json:"options,omitempty"`
}

// canonicalize validates the request and resolves its defaults — planner
// name and mini-batch — returning the normalized request plus the built
// model graph (the expensive half of validation, reused by the planning
// job). Errors wrap ErrBadRequest: they are the caller's fault, not the
// service's, and the HTTP layer maps them to 400s.
//
// Canonicalization is what makes the fingerprint honest: two spellings of
// the same question ({"mini_batch":0} and the explicit paper default)
// normalize to identical requests before hashing. Branches and the
// PlanOptions are recorded literally — zero always means "default", and
// the service cannot know whether an explicit value happens to equal a
// planner's private default.
func (r Request) canonicalize() (Request, *graph.Graph, error) {
	if r.Model == "" {
		return r, nil, fmt.Errorf("%w: missing model (known: %v)", ErrBadRequest, models.Names())
	}
	if r.Devices <= 0 {
		return r, nil, fmt.Errorf("%w: devices must be positive, got %d", ErrBadRequest, r.Devices)
	}
	if r.Branches < 0 || r.MiniBatch < 0 {
		return r, nil, fmt.Errorf("%w: negative branches (%d) or mini-batch (%d)",
			ErrBadRequest, r.Branches, r.MiniBatch)
	}
	if r.Options.ForcedMicroBatch < 0 || r.Options.MaxMicroBatch < 0 {
		// The planners read negative option values as "unset"; admitting
		// them here would cache a duplicate plan under a fingerprint whose
		// recorded options misdescribe the search that produced it.
		return r, nil, fmt.Errorf("%w: negative micro-batch options (forced %d, max %d)",
			ErrBadRequest, r.Options.ForcedMicroBatch, r.Options.MaxMicroBatch)
	}
	if r.Planner == "" {
		r.Planner = "graphpipe"
	}
	if _, err := planner.Get(r.Planner); err != nil {
		return r, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	topo, err := models.Topology(r.Topology, r.Devices)
	if err != nil {
		return r, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// Canonical() returns "" for the Summit default, so the preset name,
	// the empty string, and the fully explicit Summit spelling all
	// normalize — and therefore fingerprint — identically.
	r.Topology = topo.Canonical()
	g, defBatch, err := models.Build(r.Model, r.Branches, r.Devices)
	if err != nil {
		return r, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if synth.IsSpec(r.Model) {
		// Normalize to the resolved spec (the graph's name) before
		// hashing, like the zero mini-batch below: the shorthand and the
		// fully spelled spec are the same planning question, and the
		// artifact's metadata must pin every derived knob so it rebuilds
		// this exact graph even if seed-derivation ranges change later.
		r.Model = g.Name()
	}
	if r.MiniBatch == 0 {
		r.MiniBatch = defBatch
	}
	if f := r.Options.ForcedMicroBatch; f > 0 && r.MiniBatch%f != 0 {
		// Every planner would reject this search as infeasible; catching
		// it here turns a 500-after-admission into an immediate 400.
		return r, nil, fmt.Errorf("%w: forced micro-batch %d does not divide mini-batch %d",
			ErrBadRequest, f, r.MiniBatch)
	}
	return r, g, nil
}

// skeleton renders the request as an artifact carrying only identity
// fields. It exists so the fingerprint has exactly one implementation —
// strategy.Artifact.Fingerprint — and the CLI (hashing a finished
// artifact) and the daemon (hashing an incoming request before planning)
// cannot drift apart.
func (r Request) skeleton() *strategy.Artifact {
	return &strategy.Artifact{
		Model:     r.Model,
		Branches:  r.Branches,
		Devices:   r.Devices,
		Topology:  r.Topology,
		MiniBatch: r.MiniBatch,
		Planner:   strategy.PlannerMeta{Name: r.Planner},
		Options:   r.Options,
	}
}

// Fingerprint returns the content fingerprint of a canonicalized request.
// Only canonicalized requests hash meaningfully: an unresolved zero
// mini-batch would fingerprint differently from its resolved default.
func (r Request) Fingerprint() string {
	return r.skeleton().Fingerprint()
}

// CanonicalFingerprint canonicalizes the request and returns its content
// fingerprint without planning anything. It is the fleet route key: the
// router shards on it, and because canonicalization resolves synth
// seed-shorthand specs to their full spelling and zero mini-batches to
// the paper default before hashing, every spelling of one planning
// question lands on the same shard. Errors wrap ErrBadRequest exactly as
// Plan would, so the router can reject malformed requests without
// forwarding them.
func (r Request) CanonicalFingerprint() (string, error) {
	creq, _, err := r.canonicalize()
	if err != nil {
		return "", err
	}
	return creq.Fingerprint(), nil
}
