package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphpipe/internal/memosnap"
)

// fakeRanker is a PeerRanker with a fixed walk order, standing in for
// fleet.Ring (which the service package cannot import without a cycle).
type fakeRanker struct{ owners []string }

func (f fakeRanker) Owners(string) []string { return f.owners }

// postPlan asks for the standard test question at an explicit mini-batch
// size — distinct sizes make distinct fingerprints, so singleflight
// cannot collapse them.
func postPlan(t *testing.T, url string, miniBatch int) *http.Response {
	t.Helper()
	body := fmt.Sprintf(`{"model":"case-study","devices":4,"mini_batch":%d,"planner":"stub"}`, miniBatch)
	resp, err := http.Post(url+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestOverloadRetryAfterHeader pins the 429 contract the fleet router
// builds its backoff on: a rejected request carries a Retry-After header
// derived from queue pressure — here one gated search in flight plus one
// queued, over one worker, is exactly 2 seconds.
func TestOverloadRetryAfterHeader(t *testing.T) {
	gate := make(chan struct{})
	stub.reset(gate)
	gateClosed := false
	releaseGate := func() {
		if !gateClosed {
			gateClosed = true
			close(gate)
		}
	}
	s := newService(t, Config{Workers: 1, QueueDepth: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	// Registered after srv.Close so it runs first: the gate must open
	// before the server (and then the service) can drain the held
	// requests. Idempotent because the happy path opens it in-test.
	defer releaseGate()

	done := make(chan int, 2)
	for _, miniBatch := range []int{16, 32} {
		go func(miniBatch int) {
			resp := postPlan(t, srv.URL, miniBatch)
			resp.Body.Close()
			done <- resp.StatusCode
		}(miniBatch)
	}
	waitFor(t, "one search in flight and one queued", func() bool {
		snap := s.Stats()
		return snap.InFlight == 1 && snap.Queued == 1
	})

	resp := postPlan(t, srv.URL, 64)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q (ceil((1 queued + 1 in flight) / 1 worker))", got, "2")
	}

	releaseGate()
	for i := 0; i < 2; i++ {
		if status := <-done; status != http.StatusOK {
			t.Fatalf("held request finished with %d, want 200", status)
		}
	}
}

// TestOverloadErrorRetryAfter pins the typed error the header derives
// from: a shed still matches ErrOverloaded via errors.Is, and the
// OverloadError carries the observed depths and the ceil(backlog /
// workers) hint.
func TestOverloadErrorRetryAfter(t *testing.T) {
	a := newAdmission(1, 1)
	defer a.close()
	block := make(chan struct{})
	defer close(block)
	for i := 0; i < 2; i++ {
		go a.run(context.Background(), func() { <-block })
		want := int64(i) // first submission goes in flight, second queues
		waitFor(t, "admission gauges to settle", func() bool {
			return a.inflight.Load() == 1 && a.queued.Load() == want
		})
	}

	err := a.run(context.Background(), func() {})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("run returned %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("run returned %T, want *OverloadError", err)
	}
	if oe.Queued != 1 || oe.InFlight != 1 {
		t.Fatalf("OverloadError = %+v, want 1 queued / 1 in flight", oe)
	}
	if oe.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s (ceil(2 backlog / 1 worker))", oe.RetryAfter)
	}
}

// TestPeerFillByteIdenticalNoSecondColdSearch is the fleet acceptance
// property at the service level: a plan computed cold on daemon A is
// served byte-identically by daemon B through peer fill, with exactly
// one planner run between them, and B holds it in both local tiers
// afterwards.
func TestPeerFillByteIdenticalNoSecondColdSearch(t *testing.T) {
	stub.reset(nil)
	ctx := context.Background()

	a := newService(t, Config{CacheDir: t.TempDir()})
	asrv := httptest.NewServer(a.Handler())
	defer asrv.Close()

	resA, err := a.Plan(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if resA.Source != "miss" {
		t.Fatalf("A source = %q, want miss", resA.Source)
	}

	const self = "http://b.invalid"
	b := newService(t, Config{CacheDir: t.TempDir(), Peers: &PeerConfig{
		Self:     self,
		Backends: []string{self, asrv.URL},
	}})
	resB, err := b.Plan(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if resB.Source != "hit-peer" {
		t.Fatalf("B source = %q, want hit-peer", resB.Source)
	}
	if string(resB.Data) != string(resA.Data) {
		t.Fatal("peer-filled artifact bytes differ from the origin shard's")
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("planner ran %d times across the fleet, want exactly 1", got)
	}
	if snap := b.Stats(); snap.PeerFills != 1 || snap.Planned != 0 {
		t.Fatalf("B stats = %d peer fills / %d planned, want 1 / 0", snap.PeerFills, snap.Planned)
	}

	// The fill landed in both of B's tiers: a repeat is a memory hit, and
	// the disk tier can serve the artifact without the peer.
	if res, err := b.Plan(ctx, testRequest()); err != nil || res.Source != "hit-memory" {
		t.Fatalf("repeat on B = (%v, %v), want hit-memory", res, err)
	}
	if _, err := b.ArtifactLocal(ctx, resA.Fingerprint); err != nil {
		t.Fatalf("B disk tier missing the filled artifact: %v", err)
	}
}

// TestPeerFillMissDegradesToPlan pins the recursion guard and the
// failure mode: a peer consult carries HeaderPeerFill (so the peer
// answers local-only), and a fleet-wide miss degrades to this daemon's
// own cold search.
func TestPeerFillMissDegradesToPlan(t *testing.T) {
	stub.reset(nil)
	headerSeen := make(chan string, 8)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headerSeen <- r.Header.Get(HeaderPeerFill)
		http.NotFound(w, r)
	}))
	defer peer.Close()

	const self = "http://b.invalid"
	s := newService(t, Config{Peers: &PeerConfig{
		Self:     self,
		Backends: []string{self, peer.URL},
	}})
	res, err := s.Plan(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "miss" {
		t.Fatalf("source = %q, want miss (peer had nothing)", res.Source)
	}
	if got := <-headerSeen; got == "" {
		t.Fatal("peer consult did not carry the peer-fill header; fleets would recurse")
	}
	if snap := s.Stats(); snap.PeerMisses != 1 || snap.Planned != 1 {
		t.Fatalf("stats = %d peer misses / %d planned, want 1 / 1", snap.PeerMisses, snap.Planned)
	}
}

// TestPeerFillCountsTimeoutsAndErrors pins the split the stats surface
// promises: a peer that runs out the fill timeout ticks peer_timeouts,
// a peer that answers 5xx ticks peer_errors, and a fleet-wide failure
// still degrades to this daemon's own cold search — never an error to
// the caller.
func TestPeerFillCountsTimeoutsAndErrors(t *testing.T) {
	stub.reset(nil)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	defer slow.Close()
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer broken.Close()

	const self = "http://self.invalid"
	s := newService(t, Config{Peers: &PeerConfig{
		Self:        self,
		Backends:    []string{self, slow.URL, broken.URL},
		Ranker:      fakeRanker{owners: []string{slow.URL, broken.URL, self}},
		FillTimeout: 50 * time.Millisecond,
	}})
	res, err := s.Plan(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "miss" {
		t.Fatalf("source = %q, want miss (fleet consults all failed)", res.Source)
	}
	snap := s.Stats()
	if snap.PeerTimeouts != 1 {
		t.Errorf("peer_timeouts = %d, want 1 (the slow peer)", snap.PeerTimeouts)
	}
	if snap.PeerErrors != 1 {
		t.Errorf("peer_errors = %d, want 1 (the 500 peer)", snap.PeerErrors)
	}
	if snap.PeerMisses != 1 || snap.Planned != 1 {
		t.Errorf("stats = %d peer misses / %d planned, want 1 / 1", snap.PeerMisses, snap.Planned)
	}
}

// TestPeerFillCorruptBodyDegradesToMiss pins the no-wrong-bytes rule on
// the fill path: a peer 200 whose body does not verify against the
// fingerprint is a counted miss — the local planner re-derives the
// answer, and the corrupt bytes are never installed or served.
func TestPeerFillCorruptBodyDegradesToMiss(t *testing.T) {
	stub.reset(nil)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"version":1,"strategy":{}}`)) // decodes, wrong fingerprint
	}))
	defer peer.Close()

	const self = "http://self.invalid"
	s := newService(t, Config{Peers: &PeerConfig{
		Self:     self,
		Backends: []string{self, peer.URL},
	}})
	res, err := s.Plan(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "miss" {
		t.Fatalf("source = %q, want miss (corrupt peer body must not fill)", res.Source)
	}
	snap := s.Stats()
	if snap.PeerErrors != 1 {
		t.Errorf("peer_errors = %d, want 1 (the unverifiable body)", snap.PeerErrors)
	}
	if snap.PeerFills != 0 {
		t.Errorf("peer_fills = %d, want 0", snap.PeerFills)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Errorf("planner ran %d times, want 1 (the local recovery path)", got)
	}
}

// TestPeerFillStopsWhenBudgetExpiresMidWalk pins deadline propagation
// inside the peer walk: when the request's own budget dies during the
// first consult, the remaining peers are NOT charged a dead deadline
// each — the walk stops immediately and the caller gets the deadline
// error.
func TestPeerFillStopsWhenBudgetExpiresMidWalk(t *testing.T) {
	stub.reset(nil)
	var calls1, calls2 atomic.Int64
	mkSlow := func(calls *atomic.Int64) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			select {
			case <-r.Context().Done():
			case <-time.After(10 * time.Second):
			}
		}))
	}
	p1, p2 := mkSlow(&calls1), mkSlow(&calls2)
	defer p1.Close()
	defer p2.Close()

	const self = "http://self.invalid"
	s := newService(t, Config{Peers: &PeerConfig{
		Self:        self,
		Backends:    []string{self, p1.URL, p2.URL},
		Ranker:      fakeRanker{owners: []string{p1.URL, p2.URL, self}},
		FillTimeout: 2 * time.Second,
	}})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Plan(ctx, testRequest())
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Plan returned %v, want context.DeadlineExceeded", err)
	}
	// The caller was released at its deadline, not after a FillTimeout
	// per peer (2s each would be ~4s).
	if elapsed > time.Second {
		t.Errorf("Plan returned after %v; the budget was 60ms", elapsed)
	}
	if got := calls1.Load(); got != 1 {
		t.Errorf("first peer saw %d consults, want 1", got)
	}
	if got := calls2.Load(); got != 0 {
		t.Errorf("second peer saw %d consults, want 0 (budget died during the first)", got)
	}
	waitFor(t, "peer_timeouts to tick", func() bool {
		return s.Stats().PeerTimeouts == 1
	})
}

// TestMemoOfferEndpoint drives POST /v1/memos: a valid GPMEMO body
// installs into the snapshot store, garbage is a 400, and a daemon with
// warm-starting disabled refuses offers outright.
func TestMemoOfferEndpoint(t *testing.T) {
	s := newService(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	snap := &memosnap.Snapshot{
		Key: memosnap.Key{GraphHash: "test-graph", ShapeSig: 7, CostSig: 9},
		Searches: []memosnap.SearchMemo{
			{MiniBatch: 8, RootB: 4, Devices: 4, NumZones: 1},
		},
	}
	resp, err := http.Post(srv.URL+"/v1/memos", "application/octet-stream",
		strings.NewReader(string(memosnap.Encode(snap))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid offer: status = %d, want 204", resp.StatusCode)
	}
	if got := s.Stats().MemoOffersReceived; got != 1 {
		t.Fatalf("memo_offers_received = %d, want 1", got)
	}
	if s.memos.Lookup(snap.Key) == nil {
		t.Fatal("offered snapshot not installed in the memo store")
	}

	resp, err = http.Post(srv.URL+"/v1/memos", "application/octet-stream",
		strings.NewReader("not a snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage offer: status = %d, want 400", resp.StatusCode)
	}

	disabled := newService(t, Config{MemoSnapshots: -1})
	dsrv := httptest.NewServer(disabled.Handler())
	defer dsrv.Close()
	resp, err = http.Post(dsrv.URL+"/v1/memos", "application/octet-stream",
		strings.NewReader(string(memosnap.Encode(snap))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("offer to disabled daemon: status = %d, want 400", resp.StatusCode)
	}
}

// TestMemoOffersReachNeighborOwners pins the push side: a cold plan's
// memo snapshot is offered to the ring owner of the neighboring device
// counts, asynchronously, and decodes on arrival.
func TestMemoOffersReachNeighborOwners(t *testing.T) {
	stub.reset(nil)
	received := make(chan *memosnap.Snapshot, 8)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/memos" {
			data, err := io.ReadAll(r.Body)
			if err != nil {
				t.Errorf("reading memo offer: %v", err)
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			snap, err := memosnap.Decode(data)
			if err != nil {
				t.Errorf("offered memo does not decode: %v", err)
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			received <- snap
			w.WriteHeader(http.StatusNoContent)
			return
		}
		http.NotFound(w, r) // artifact consults find nothing
	}))
	defer peer.Close()

	const self = "http://a.invalid"
	s := newService(t, Config{Peers: &PeerConfig{
		Self:       self,
		Backends:   []string{self, peer.URL},
		Ranker:     fakeRanker{owners: []string{peer.URL, self}},
		OfferMemos: true,
	}})
	if _, err := s.Plan(context.Background(), testRequest()); err != nil {
		t.Fatal(err)
	}

	select {
	case snap := <-received:
		if snap.Entries() == 0 {
			t.Error("offered snapshot carries no memo entries")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no memo offer arrived at the neighbor owner")
	}
	waitFor(t, "memo_offers_sent to tick", func() bool {
		return s.Stats().MemoOffersSent >= 1
	})
}
