package service

import "sync"

// flightGroup is a minimal singleflight: concurrent Do calls with the same
// key share one execution of fn. The repository vendors nothing, so this
// is hand-rolled; it differs from x/sync/singleflight in returning the
// shared flag to every caller (the stats layer counts deduplicated waits)
// and in not supporting Forget — plan fingerprints are stable, so a
// completed flight's result is immediately re-obtainable from the cache
// and flights never need invalidation.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done chan struct{}
	val  *cacheEntry
	err  error
}

// Do executes fn once per key among concurrent callers. The leader (the
// call that actually ran fn) gets shared=false; every caller that joined
// an in-progress flight gets shared=true and the leader's result. The
// result is not retained after the last waiter returns: a later Do with
// the same key runs fn again (by then the cache answers first).
func (g *flightGroup) Do(key string, fn func() (*cacheEntry, error)) (val *cacheEntry, shared bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}
