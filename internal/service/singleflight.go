package service

import (
	"context"
	"sync"
)

// flightGroup is a minimal singleflight: concurrent Do calls with the same
// key share one execution of fn. The repository vendors nothing, so this
// is hand-rolled; it differs from x/sync/singleflight in returning the
// shared flag to every caller (the stats layer counts deduplicated waits)
// and in not supporting Forget — plan fingerprints are stable, so a
// completed flight's result is immediately re-obtainable from the cache
// and flights never need invalidation.
type flightGroup struct {
	mu      sync.Mutex
	wg      sync.WaitGroup
	flights map[string]*flight
}

type flight struct {
	done chan struct{}
	val  *cacheEntry
	err  error
}

// Do executes fn once per key among concurrent callers. The leader (the
// call that started fn) gets shared=false; every caller that joined an
// in-progress flight gets shared=true and the leader's result. The
// result is not retained after the last waiter returns: a later Do with
// the same key runs fn again (by then the cache answers first).
//
// fn runs in its own goroutine and always runs to completion — its
// result publishes to the cache even if every waiter leaves. Each
// waiter's patience is bounded by its own ctx: a waiter whose deadline
// fires returns ctx.Err() immediately while the flight continues, so a
// request's time budget cuts off the wait, never the work. Callers pass
// a cancellation-detached context (see detachCancellation) when one
// client hanging up must not abandon the wait.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (*cacheEntry, error)) (val *cacheEntry, shared bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.wg.Add(1)
	g.mu.Unlock()

	go func() {
		defer g.wg.Done()
		f.val, f.err = fn()
		g.mu.Lock()
		delete(g.flights, key)
		g.mu.Unlock()
		close(f.done)
	}()
	select {
	case <-f.done:
		return f.val, false, f.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// wait blocks until every in-progress flight has completed; part of the
// service's graceful shutdown.
func (g *flightGroup) wait() { g.wg.Wait() }
