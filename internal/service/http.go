package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"graphpipe/internal/memosnap"
	"graphpipe/internal/obs"
)

// HTTP headers the service stamps on plan responses, so clients and smoke
// tests can tell a warm hit from a cold plan without parsing stats.
const (
	// HeaderFingerprint carries the plan's content fingerprint.
	HeaderFingerprint = "X-Graphpipe-Fingerprint"
	// HeaderCache carries the PlanResult source: "miss", "shared",
	// "hit-memory", or "hit-disk".
	HeaderCache = "X-Graphpipe-Cache"
	// HeaderBudget carries a request's remaining end-to-end time budget
	// in integer milliseconds. Every hop — router to shard, shard to
	// peer, memo offer — re-stamps the remainder, so the whole chain
	// shares one deadline instead of stacking independent timeouts. A
	// request whose budget expires gets 504 "deadline_exceeded"; one
	// whose budget arrives spent is rejected without work.
	HeaderBudget = "X-Graphpipe-Budget-Ms"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/plan              plan (or fetch) a strategy artifact
//	POST /v1/eval              evaluate a plan on a registered backend
//	GET  /v1/artifacts/{fp}    fetch a cached artifact by fingerprint
//	POST /v1/memos             accept a peer's DP memo snapshot offer
//	GET  /v1/stats             counters, gauges, latency histograms
//	GET  /metrics              the same state, Prometheus text format
//
// Responses are JSON. Errors are structured —
// {"error": <machine code>, "detail": <human text>} — with ErrBadRequest
// as 400, ErrUnknownArtifact as 404, ErrOverloaded as 429 (clients should
// back off for the Retry-After header's duration and retry), and anything
// else as 500.
//
// Every request runs under the obs trace middleware: the incoming
// X-Graphpipe-Trace ID (or a freshly minted one) is echoed on the
// response, spans cover each serving phase, `?trace=1` wraps the body
// in a span-tree envelope, and Config.TraceLog receives one JSON line
// per request.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("POST /v1/eval", s.handleEval)
	mux.HandleFunc("GET /v1/artifacts/{fp}", s.handleArtifact)
	mux.HandleFunc("POST /v1/memos", s.handleMemoOffer)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return obs.Middleware(mux, obs.HTTPOptions{
		Tracer:     s.tracer,
		Log:        s.traceLog,
		Route:      serviceRoute,
		SpanPrefix: "service.",
		Observe:    s.stats.observeRequest,
	})
}

// serviceRoute names a request for span/metric labels — a closed set,
// so route labels stay bounded no matter what paths clients probe.
func serviceRoute(r *http.Request) string {
	switch {
	case r.URL.Path == "/v1/plan":
		return "plan"
	case r.URL.Path == "/v1/eval":
		return "eval"
	case strings.HasPrefix(r.URL.Path, "/v1/artifacts/"):
		return "artifact"
	case r.URL.Path == "/v1/memos":
		return "memos"
	case r.URL.Path == "/v1/stats":
		return "stats"
	case r.URL.Path == "/metrics":
		return "metrics"
	default:
		return "other"
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.stats.reg.WriteText(w)
}

func (s *Service) handlePlan(w http.ResponseWriter, r *http.Request) {
	r, cancel, err := withBudget(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer cancel()
	var req Request
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.Plan(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderFingerprint, res.Fingerprint)
	w.Header().Set(HeaderCache, res.Source)
	w.Write(res.Data)
}

func (s *Service) handleEval(w http.ResponseWriter, r *http.Request) {
	r, cancel, err := withBudget(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer cancel()
	var req EvalRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.Eval(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set(HeaderFingerprint, res.Fingerprint)
	w.Header().Set(HeaderCache, res.PlanSource)
	writeJSON(w, res)
}

func (s *Service) handleArtifact(w http.ResponseWriter, r *http.Request) {
	r, cancel, err := withBudget(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer cancel()
	// A fellow daemon's fill request stops at the local tiers; only
	// client-originated lookups may consult peers in turn.
	var res *PlanResult
	if r.Header.Get(HeaderPeerFill) != "" {
		res, err = s.ArtifactLocal(r.Context(), r.PathValue("fp"))
	} else {
		res, err = s.Artifact(r.Context(), r.PathValue("fp"))
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderFingerprint, res.Fingerprint)
	w.Header().Set(HeaderCache, res.Source)
	w.Write(res.Data)
}

// withBudget applies a request's HeaderBudget (integer milliseconds of
// remaining end-to-end time) to its context. A malformed header is a
// 400; a budget that arrived spent is context.DeadlineExceeded before
// any work happens.
func withBudget(r *http.Request) (*http.Request, context.CancelFunc, error) {
	h := r.Header.Get(HeaderBudget)
	if h == "" {
		return r, func() {}, nil
	}
	ms, err := strconv.Atoi(h)
	if err != nil {
		return r, func() {}, fmt.Errorf("%w: %s: %q is not integer milliseconds", ErrBadRequest, HeaderBudget, h)
	}
	if ms <= 0 {
		return r, func() {}, fmt.Errorf("budget arrived spent: %w", context.DeadlineExceeded)
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
	return r.WithContext(ctx), cancel, nil
}

// handleMemoOffer accepts a DP memo snapshot pushed by a fleet peer
// (POST /v1/memos, raw GPMEMO bytes) and installs it into the local
// snapshot store, merging with whatever is already there. Offers are
// hints: a daemon with warm-starting disabled refuses them as 400s.
func (s *Service) handleMemoOffer(w http.ResponseWriter, r *http.Request) {
	if s.memos == nil {
		writeError(w, fmt.Errorf("%w: memo warm-starting is disabled on this daemon", ErrBadRequest))
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxMemoOfferBytes+1))
	if err != nil {
		writeError(w, fmt.Errorf("%w: body: %v", ErrBadRequest, err))
		return
	}
	if len(data) > maxMemoOfferBytes {
		writeError(w, fmt.Errorf("%w: memo snapshot exceeds %d bytes", ErrBadRequest, maxMemoOfferBytes))
		return
	}
	snap, err := memosnap.Decode(data)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	s.memos.Install(snap)
	s.stats.memoOffersReceived.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// decodeBody parses a JSON request body strictly — unknown fields are
// 400s, because a typoed option name silently planning with defaults (and
// caching the wrong answer under the caller's intent) is the worst
// failure mode a cache can have.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, fmt.Errorf("%w: body: %v", ErrBadRequest, err))
		return false
	}
	return true
}

// apiError is the wire form of a failed request.
type apiError struct {
	// Error is the machine-readable code: "bad_request", "not_found",
	// "overloaded", "deadline_exceeded", or "internal".
	Error string `json:"error"`
	// Detail is the human-readable cause.
	Detail string `json:"detail"`
}

// writeError is writeError plus the service's own bookkeeping: budget
// expiries are counted so /v1/stats shows how often deadlines bite.
func (s *Service) writeError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.stats.deadlineRejections.Add(1)
	}
	writeError(w, err)
}

func writeError(w http.ResponseWriter, err error) {
	code, status := "internal", http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code, status = "deadline_exceeded", http.StatusGatewayTimeout
	case errors.Is(err, ErrBadRequest):
		code, status = "bad_request", http.StatusBadRequest
	case errors.Is(err, ErrUnknownArtifact):
		code, status = "not_found", http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		code, status = "overloaded", http.StatusTooManyRequests
		// A queue-full rejection knows how deep the backlog is; tell the
		// client (and the fleet router) when a retry is worth attempting.
		var oe *OverloadError
		if errors.As(err, &oe) && oe.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(oe.RetryAfter.Seconds())))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: code, Detail: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
