// Package service is the long-running planning layer over the planner and
// eval registries: cmd/graphpiped embeds it in an HTTP daemon, and the
// package-level API (New, Plan, Eval) is the same surface for tests and
// embedders. Where cmd/graphpipe answers one planning question per process
// invocation, the service amortizes them across traffic:
//
//   - Requests are canonicalized and hashed into a content fingerprint
//     (strategy.Artifact.Fingerprint — the CLI prints the same value).
//   - A two-tier cache — in-memory LRU over decoded artifacts in front of
//     an on-disk artifact store — serves repeated questions without
//     planning, returning byte-identical serialized artifacts.
//   - A singleflight group collapses N concurrent identical cold requests
//     into one planner run.
//   - A bounded admission pool caps concurrent planner searches and sheds
//     load with ErrOverloaded (HTTP 429) when its queue fills, instead of
//     letting goroutines pile up behind the planners.
//
// The request path is: canonicalize → fingerprint → cache → singleflight →
// admission → planner → cache fill. Every stage feeds the stats snapshot
// served at /v1/stats, so the cold/warm/shed behavior of a deployment is
// observable from the outside.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"graphpipe/internal/costmodel"
	"graphpipe/internal/eval"
	"graphpipe/internal/faultinject"
	"graphpipe/internal/graph"
	"graphpipe/internal/memosnap"
	"graphpipe/internal/memostore"
	"graphpipe/internal/models"
	"graphpipe/internal/obs"
	"graphpipe/internal/planner"
	"graphpipe/internal/strategy"
)

// Sentinel errors the transport layer maps to status codes. Test with
// errors.Is.
var (
	// ErrBadRequest marks a request the service refuses to canonicalize
	// (unknown model or planner, non-positive devices, ...) — HTTP 400.
	ErrBadRequest = errors.New("service: bad request")
	// ErrUnknownArtifact marks a fingerprint lookup that found nothing in
	// either cache tier — HTTP 404.
	ErrUnknownArtifact = errors.New("service: unknown artifact")
)

// Config sizes a Service. The zero value is usable: memory-only cache,
// one planning worker per CPU, a small queue.
type Config struct {
	// CacheDir is the on-disk artifact store; empty disables the disk
	// tier (plans survive only in memory).
	CacheDir string
	// MemoryEntries bounds the in-memory LRU tier (default 256 plans).
	MemoryEntries int
	// Workers bounds concurrently running planner searches
	// (default: one per CPU).
	Workers int
	// QueueDepth bounds planning jobs waiting for a worker; admissions
	// beyond it fail with ErrOverloaded (default 64).
	QueueDepth int
	// PlannerWorkers is the internal worker-pool size handed to each
	// planner run (planner.Options.Workers). The default 1 keeps one
	// search on one CPU so Workers alone defines the service's CPU
	// envelope; raise it (and lower Workers) to favor the latency of
	// individual large plans over throughput.
	PlannerWorkers int
	// MemoSnapshots bounds the in-memory DP memo snapshot store that
	// warm-starts graphpipe searches across requests for the same
	// canonical graph (default 64 snapshots; negative disables
	// warm-starting). When CacheDir is set, snapshots also persist as
	// shards under CacheDir/memos and survive restarts.
	MemoSnapshots int
	// Peers wires this daemon into a fleet for peer cache-fill and memo
	// offers; nil runs standalone (no peer traffic at all).
	Peers *PeerConfig
	// Faults injects deterministic failures into this daemon's disk
	// stores and peer HTTP client (nil: healthy). The degradation paths
	// — corrupt reads becoming misses, failed writes surfacing only in
	// stats — are the same ones real faults would take.
	Faults *faultinject.Set
	// Instance names this daemon in trace/span IDs and span logs
	// (default "graphpiped"). Give fleet members distinct names so
	// unioned span logs stay unambiguous.
	Instance string
	// TraceLog, when non-nil, receives one JSON line per request trace
	// (the -trace-log flag); nil disables span logging.
	TraceLog io.Writer
}

// Service answers planning and evaluation requests. Create with New,
// release with Close. Safe for concurrent use.
type Service struct {
	cfg      Config
	memory   *memoryLRU
	disk     *diskStore
	memos    *memostore.Store // nil: warm-start disabled
	flight   flightGroup
	pool     *admission
	stats    *stats
	tracer   *obs.Tracer
	traceLog *obs.TraceLog
	peerWG   sync.WaitGroup // in-flight async memo offers
}

// New builds a Service, creating the cache directory if configured.
func New(cfg Config) (*Service, error) {
	if cfg.MemoryEntries <= 0 {
		cfg.MemoryEntries = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.PlannerWorkers <= 0 {
		cfg.PlannerWorkers = 1
	}
	if cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	var memos *memostore.Store
	if cfg.MemoSnapshots >= 0 {
		memoDir := ""
		if cfg.CacheDir != "" {
			memoDir = filepath.Join(cfg.CacheDir, "memos")
		}
		var err error
		if memos, err = memostore.New(cfg.MemoSnapshots, memoDir); err != nil {
			return nil, fmt.Errorf("service: memo store: %w", err)
		}
		memos.InjectFaults(cfg.Faults.Disk("memos"))
	}
	if cfg.Faults != nil && cfg.Peers != nil {
		// Peer traffic (fills and memo offers) crosses the injected sick
		// wire; the local HTTP listener does not — faults model the
		// fleet's network and disks, not the daemon's own socket.
		c := *cfg.Peers.client()
		c.Transport = cfg.Faults.Transport("peers", c.Transport)
		p := *cfg.Peers
		p.Client = &c
		cfg.Peers = &p
	}
	if cfg.Instance == "" {
		cfg.Instance = "graphpiped"
	}
	svc := &Service{
		cfg:      cfg,
		memory:   newMemoryLRU(cfg.MemoryEntries),
		disk:     &diskStore{dir: cfg.CacheDir, faults: cfg.Faults.Disk("artifacts")},
		memos:    memos,
		pool:     newAdmission(cfg.Workers, cfg.QueueDepth),
		stats:    newStats(),
		tracer:   obs.NewTracer(cfg.Instance),
		traceLog: obs.NewTraceLog(cfg.TraceLog),
	}
	svc.registerGauges()
	return svc, nil
}

// registerGauges wires the instantaneous and externally owned values —
// admission gauges, cache tier sizes, memo store counters, fault
// tallies — into the metrics registry as scrape-time reads. The counter
// halves of /v1/stats are obs counters already; after this, everything
// the JSON snapshot reports is also on /metrics.
func (s *Service) registerGauges() {
	r := s.stats.reg
	r.GaugeFunc("graphpipe_in_flight", "Admitted planner searches currently running.", nil,
		func() float64 { return float64(s.pool.inflight.Load()) })
	r.GaugeFunc("graphpipe_queued", "Planning jobs waiting for an admission worker.", nil,
		func() float64 { return float64(s.pool.queued.Load()) })
	r.GaugeFunc("graphpipe_memory_entries", "Artifacts resident in the memory LRU tier.", nil,
		func() float64 { return float64(s.memory.len()) })
	r.CounterFunc("graphpipe_memory_evictions_total", "Memory-tier LRU evictions.", nil,
		s.memory.evictions.Load)
	if s.memos != nil {
		r.GaugeFunc("graphpipe_memo_snapshots", "DP memo snapshots resident in the store.", nil,
			func() float64 { return float64(s.memos.Len()) })
		r.CounterFunc("graphpipe_memo_installs_total", "DP memo snapshot installs (local and offered).", nil,
			s.memos.Installs)
		r.CounterFunc("graphpipe_memo_evictions_total", "DP memo snapshot evictions.", nil,
			s.memos.Evictions)
	}
	if s.cfg.Faults != nil {
		// Chaos visibility: every injected latency/drop/corruption event
		// shows up as a per-site counter, so soak assertions can separate
		// "injected fault absorbed" from organic failure.
		r.CounterSetFunc("graphpipe_faults_injected_total", "Injected faults by site/kind.", "site",
			s.cfg.Faults.Tallies)
	}
}

// Metrics returns the service's metrics registry — the backing store of
// GET /metrics. Embedders (the fleet router's in-process mode, tests)
// may register additional series on it.
func (s *Service) Metrics() *obs.Registry { return s.stats.reg }

// Close drains the admission pool: accepted planning jobs finish and
// publish to the cache, new ones are rejected. Called after the HTTP
// listener stops accepting, it completes the daemon's graceful shutdown.
// In-progress flights (which may outlive their abandoning waiters) and
// in-flight peer memo offers are waited out too.
func (s *Service) Close() {
	s.pool.close()
	s.flight.wait()
	s.peerWG.Wait()
}

// PlanResult is a Plan answer: the artifact, its serialized bytes (served
// verbatim, so identical requests get byte-identical responses), and
// where it came from.
type PlanResult struct {
	Fingerprint string
	// Source is "miss" (this request ran the planner), "shared" (joined
	// another request's planner run), "hit-memory", "hit-disk", or
	// "hit-peer" (a ring peer's cache supplied the plan).
	Source   string
	Artifact *strategy.Artifact
	Data     []byte
}

// Plan answers a planning request, consulting the cache tiers before
// running the planner behind singleflight and admission.
func (s *Service) Plan(ctx context.Context, req Request) (*PlanResult, error) {
	_, canonSpan := obs.StartSpan(ctx, "canonicalize")
	creq, g, err := req.canonicalize()
	canonSpan.End()
	if err != nil {
		return nil, err
	}
	fp := creq.Fingerprint()

	if e, src := s.lookup(ctx, fp); e != nil {
		return &PlanResult{Fingerprint: fp, Source: src, Artifact: e.art, Data: e.data}, nil
	}
	if err := ctx.Err(); err != nil {
		// The budget is already spent and the answer is cold: planning
		// (or even consulting peers) would be work nobody waits for.
		return nil, err
	}
	s.stats.misses.Add(1)

	// The wait context keeps the request's deadline — an expired budget
	// stops the wait at the deadline, never after — but drops its
	// cancellation: N-1 joiners (and the cache) depend on this flight,
	// so one client hanging up must not abandon everyone else's answer.
	waitCtx, waitCancel := detachCancellation(ctx)
	defer waitCancel()
	sfCtx, sfSpan := obs.StartSpan(waitCtx, "singleflight.wait", "fp", fp)
	e, shared, err := s.flight.Do(sfCtx, fp, func() (*cacheEntry, error) {
		// Joiners may have raced past the cache lookup while the leader
		// was filling it; the flight map resolves that race, not this
		// re-check — the leader is the only cache writer for fp.
		//
		// A peer that already holds the plan beats a cold search: the
		// consult runs inside the flight so N concurrent misses cost one
		// round of peer traffic, and before admission because it is IO,
		// not a planner search competing for the worker pool.
		if e := s.peerFill(sfCtx, fp); e != nil {
			return e, nil
		}
		// The flight runs under a context detached from the leader's
		// request: N-1 joiners (and the cache) depend on this one run, so
		// one client hanging up must not poison everyone else's answer
		// with its cancellation. Admission rejection (ErrOverloaded) still
		// propagates — a shed flight is shed for every waiter.
		var (
			entry   *cacheEntry
			planErr error
		)
		// The admission span covers sitting in the queue: it ends the
		// moment a worker picks the job up, which is where the
		// planner.search span begins. Queue time vs. search time is the
		// first split a slow p99 needs.
		runCtx := context.WithoutCancel(sfCtx)
		_, admitSpan := obs.StartSpan(runCtx, "admission.wait")
		if err := s.pool.run(runCtx, func() {
			admitSpan.End()
			entry, planErr = s.runPlanner(runCtx, creq, g, fp)
		}); err != nil {
			admitSpan.End()
			if errors.Is(err, ErrOverloaded) {
				s.stats.rejected.Add(1)
			}
			return nil, err
		}
		return entry, planErr
	})
	sfSpan.End()
	if err != nil {
		return nil, err
	}
	source := "miss"
	if e.src != "" {
		source = e.src
	}
	if shared {
		s.stats.sharedWaits.Add(1)
		source = "shared"
	}
	sfSpan.SetAttr("source", source)
	return &PlanResult{Fingerprint: fp, Source: source, Artifact: e.art, Data: e.data}, nil
}

// detachCancellation returns a context that keeps ctx's deadline (the
// request's end-to-end time budget) but drops its cancellation. Shared
// work — flights, peer consults — is bounded by how long the request
// may take, not by whether its particular client is still listening.
func detachCancellation(ctx context.Context) (context.Context, context.CancelFunc) {
	base := context.WithoutCancel(ctx)
	if dl, ok := ctx.Deadline(); ok {
		return context.WithDeadline(base, dl)
	}
	return base, func() {}
}

// lookup consults memory then disk, promoting disk hits to memory. Disk
// failures (IO errors, corrupt or misfiled artifacts) degrade to a miss:
// the planner re-derives the plan and overwrites the bad file.
func (s *Service) lookup(ctx context.Context, fp string) (*cacheEntry, string) {
	_, memSpan := obs.StartSpan(ctx, "cache.memory")
	e := s.memory.get(fp)
	memSpan.End()
	if e != nil {
		memSpan.SetAttr("result", "hit")
		s.stats.hitsMemory.Add(1)
		return e, "hit-memory"
	}
	memSpan.SetAttr("result", "miss")
	_, diskSpan := obs.StartSpan(ctx, "cache.disk")
	e, err := s.disk.get(fp)
	diskSpan.End()
	if err != nil {
		diskSpan.SetAttr("result", "error")
		s.stats.diskFailures.Add(1)
		return nil, ""
	}
	if e != nil {
		diskSpan.SetAttr("result", "hit")
		s.memory.put(e)
		s.stats.hitsDisk.Add(1)
		return e, "hit-disk"
	}
	diskSpan.SetAttr("result", "miss")
	return nil, ""
}

// runPlanner executes one cold plan on an admission worker: resolve the
// planner, search, wrap the strategy into an artifact, serialize, and
// publish to both cache tiers.
func (s *Service) runPlanner(ctx context.Context, req Request, g *graph.Graph, fp string) (*cacheEntry, error) {
	pl, err := planner.Get(req.Planner)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	searchCtx, searchSpan := obs.StartSpan(ctx, "planner.search", "planner", req.Planner, "fp", fp)
	defer searchSpan.End()
	// req is canonicalized, so Topology is either "" (Summit default) or a
	// canonical explicit spec — both of which models.Topology resolves.
	topo, err := models.Topology(req.Topology, req.Devices)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	popts := planner.Options{
		ForcedMicroBatch:          req.Options.ForcedMicroBatch,
		MaxMicroBatch:             req.Options.MaxMicroBatch,
		PerStageMicroBatch:        req.Options.PerStageMicroBatch,
		DisableSinkAnchoredSplits: req.Options.DisableSinkAnchoredSplits,
		Workers:                   s.cfg.PlannerWorkers,
		CostModel:                 costmodel.NewDefault(topo),
		// The span hook hands the planner core a way to record its
		// internal phases (per-probe DP searches, memo import/export)
		// as children of planner.search without the core importing obs.
		Span: obs.SpanHook(searchCtx),
	}
	if s.memos != nil {
		// Warm-start: hand the planner the snapshot store. A warm plan is
		// byte-identical to a cold one (the warm≡cold conformance
		// invariant), so this changes latency, never answers. The sink
		// also offers the snapshot to the ring peers owning neighboring
		// device counts (no-op when Peers is nil or OfferMemos is off).
		popts.WarmMemo = s.memos.Lookup
		popts.MemoSink = func(snap *memosnap.Snapshot) {
			_, installSpan := obs.StartSpan(searchCtx, "memo.install")
			s.memos.Install(snap)
			installSpan.End()
			s.offerMemo(req, snap)
		}
	}
	start := time.Now()
	st, pstats, err := pl.Plan(g, topo, req.MiniBatch, popts)
	searchSeconds := time.Since(start).Seconds()
	if err != nil {
		return nil, fmt.Errorf("planner %s: %w", req.Planner, err)
	}
	s.stats.planned.Add(1)
	s.stats.observePlanner(req.Planner, searchSeconds)
	if pstats.MemoWarmStarted {
		s.stats.memoWarmHits.Add(1)
		s.stats.memoEntriesReused.Add(uint64(pstats.MemoEntriesReused))
	}

	art := req.skeleton()
	art.Planner.SearchSeconds = searchSeconds
	art.Planner.DPStates = pstats.DPStates
	art.Planner.BinaryIters = pstats.BinaryIters
	art.Planner.WarmStarted = pstats.MemoWarmStarted
	art.Planner.MemoEntriesReused = pstats.MemoEntriesReused
	art.Strategy = st
	data, err := strategy.EncodeArtifact(art)
	if err != nil {
		return nil, err
	}
	e := &cacheEntry{fp: fp, art: art, data: append(data, '\n')}
	if err := s.disk.put(e); err != nil {
		// A plan that cannot be persisted is still a plan; serve it, keep
		// it in memory, and surface the failure through stats.
		s.stats.diskFailures.Add(1)
	}
	s.memory.put(e)
	return e, nil
}

// Artifact returns the cached plan for a fingerprint without planning
// (GET /v1/artifacts/{fp}). A local two-tier miss still consults the
// fleet: any shard can serve any plan the fleet has ever computed,
// byte-identically, without a cold search. The peer consult honors the
// request's budget deadline but not its cancellation. ErrUnknownArtifact
// if neither the local tiers nor any peer holds it.
func (s *Service) Artifact(ctx context.Context, fp string) (*PlanResult, error) {
	e, src := s.lookup(ctx, fp)
	if e == nil {
		fillCtx, cancel := detachCancellation(ctx)
		defer cancel()
		if e = s.peerFill(fillCtx, fp); e == nil {
			return nil, fmt.Errorf("%w: %s", ErrUnknownArtifact, fp)
		}
		src = e.src
	}
	return &PlanResult{Fingerprint: fp, Source: src, Artifact: e.art, Data: e.data}, nil
}

// ArtifactLocal is Artifact restricted to this daemon's own two tiers.
// It answers peer-originated fills (requests carrying HeaderPeerFill):
// a fleet of mutually missing daemons must bottom out at 404s, not
// recurse through each other.
func (s *Service) ArtifactLocal(ctx context.Context, fp string) (*PlanResult, error) {
	e, src := s.lookup(ctx, fp)
	if e == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownArtifact, fp)
	}
	return &PlanResult{Fingerprint: fp, Source: src, Artifact: e.art, Data: e.data}, nil
}

// EvalRequest asks for an evaluation of a plan on a registered backend:
// either of an already-cached artifact (Fingerprint set) or of whatever
// the embedded planning request resolves to — planning it first, through
// the same cache/singleflight/admission path, if it is cold.
type EvalRequest struct {
	Request
	// Fingerprint short-circuits planning: the artifact must already be
	// cached (ErrUnknownArtifact otherwise). When set, the embedded
	// Request is ignored.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Backend is an eval-registry name; empty selects "sim".
	Backend string `json:"backend,omitempty"`
}

// EvalResult is an Eval answer: where the plan came from plus the
// headline numbers of the evaluation report.
type EvalResult struct {
	Fingerprint string `json:"fingerprint"`
	// PlanSource reports how the plan was obtained ("hit-memory", ...,
	// "miss"); the evaluation itself always runs fresh.
	PlanSource       string  `json:"plan_source"`
	Backend          string  `json:"backend"`
	IterationSeconds float64 `json:"iteration_seconds"`
	Throughput       float64 `json:"throughput"`
	PeakMemoryBytes  float64 `json:"peak_memory_bytes"`
	Stages           int     `json:"stages"`
}

// Eval resolves the plan (cache or fresh search), rebuilds its evaluation
// context from the artifact metadata, and runs one training iteration on
// the requested backend.
func (s *Service) Eval(ctx context.Context, req EvalRequest) (*EvalResult, error) {
	if req.Backend == "" {
		req.Backend = "sim"
	}
	ev, err := eval.Get(req.Backend)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	var plan *PlanResult
	if req.Fingerprint != "" {
		plan, err = s.Artifact(ctx, req.Fingerprint)
	} else {
		plan, err = s.Plan(ctx, req.Request)
	}
	if err != nil {
		return nil, err
	}

	art := plan.Artifact
	g, _, err := models.Build(art.Model, art.Branches, art.Devices)
	if err != nil {
		return nil, fmt.Errorf("rebuilding %s: %w", plan.Fingerprint, err)
	}
	topo, err := models.Topology(art.Topology, art.Devices)
	if err != nil {
		return nil, fmt.Errorf("rebuilding %s: %w", plan.Fingerprint, err)
	}
	if err := art.Validate(g, topo); err != nil {
		return nil, fmt.Errorf("cached artifact %s: %w", plan.Fingerprint, err)
	}
	_, evalSpan := obs.StartSpan(ctx, "eval.run", "backend", req.Backend)
	rep, err := ev.Evaluate(g, topo, art.Strategy, eval.Options{})
	evalSpan.End()
	if err != nil {
		return nil, err
	}
	s.stats.evals.Add(1)
	return &EvalResult{
		Fingerprint:      plan.Fingerprint,
		PlanSource:       plan.Source,
		Backend:          rep.Backend,
		IterationSeconds: rep.IterationTime,
		Throughput:       rep.Throughput,
		PeakMemoryBytes:  rep.PeakMemory(),
		Stages:           len(rep.Stages),
	}, nil
}

// Stats snapshots the service's counters, gauges, and latency histograms.
func (s *Service) Stats() Snapshot {
	snap := s.stats.snapshot()
	snap.InFlight = s.pool.inflight.Load()
	snap.Queued = s.pool.queued.Load()
	snap.MemoryEntries = s.memory.len()
	snap.MemoryEvictions = s.memory.evictions.Load()
	if s.memos != nil {
		snap.MemoSnapshots = s.memos.Len()
		snap.MemoInstalls = s.memos.Installs()
		snap.MemoEvictions = s.memos.Evictions()
	}
	snap.FaultsInjected = s.cfg.Faults.Tallies()
	return snap
}
