package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"graphpipe/internal/memosnap"
	"graphpipe/internal/obs"
	"graphpipe/internal/strategy"
)

// HeaderPeerFill marks fleet-internal requests between daemons. A daemon
// answering a request that carries it serves only its own two tiers and
// never consults peers in turn — without the marker, two daemons missing
// the same fingerprint would ask each other forever.
const HeaderPeerFill = "X-Graphpipe-Peer-Fill"

// maxMemoOfferBytes bounds the snapshot body POST /v1/memos accepts. DP
// memo snapshots for the corpus models are kilobytes to low megabytes;
// anything larger is a misdirected upload, not a memo.
const maxMemoOfferBytes = 64 << 20

// A PeerRanker orders every fleet backend (self included) for a route
// key. fleet.Ring implements it; the service only needs the walk order,
// not the hashing, so the two packages stay dependency-free of each
// other in that direction.
type PeerRanker interface {
	Owners(key string) []string
}

// PeerConfig wires one daemon into a fleet for peer cache-fill: on a
// local two-tier miss it consults the other fleet members' artifact
// caches before paying for a cold search, and (optionally) offers its DP
// memo snapshots to the peers that own neighboring device counts.
type PeerConfig struct {
	// Self is this daemon's own base URL exactly as it appears in
	// Backends and in the router's ring; it is skipped during fills.
	Self string
	// Backends lists every fleet member's base URL, self included, in
	// the same order the router was configured with.
	Backends []string
	// Ranker orders Backends per fingerprint (the consistent-hash walk).
	// nil falls back to Backends order — correct, just not
	// locality-aware.
	Ranker PeerRanker
	// Client issues the peer HTTP requests; nil uses a client with
	// FillTimeout as its overall timeout.
	Client *http.Client
	// FillTimeout bounds each peer consult (default 2s). Peer fills sit
	// on the cold path: a slow peer must lose to just planning.
	FillTimeout time.Duration
	// OfferMemos pushes DP memo snapshots installed after local cold
	// plans to the peers owning neighboring device counts, so elastic
	// replans warm-start on whichever shard they land on.
	OfferMemos bool
}

func (p *PeerConfig) client() *http.Client {
	if p.Client != nil {
		return p.Client
	}
	return &http.Client{Timeout: p.fillTimeout()}
}

func (p *PeerConfig) fillTimeout() time.Duration {
	if p.FillTimeout > 0 {
		return p.FillTimeout
	}
	return 2 * time.Second
}

// order returns the fleet walk order for a key, self excluded.
func (p *PeerConfig) order(key string) []string {
	all := p.Backends
	if p.Ranker != nil {
		all = p.Ranker.Owners(key)
	}
	peers := make([]string, 0, len(all))
	for _, b := range all {
		if b != p.Self {
			peers = append(peers, b)
		}
	}
	return peers
}

// peerFill consults the fleet for a fingerprint this daemon's two tiers
// missed: ring-ordered peers are asked for the artifact, the first valid
// answer is verified byte-for-byte against the fingerprint, installed in
// both local tiers, and served — the plan stays byte-identical no matter
// which shard computed it, and this daemon never re-runs the cold
// search. Every failure mode (peer down, slow, 404, corrupt or misfiled
// bytes) degrades to a miss; the planner remains the recovery path.
// Each consult is bounded by FillTimeout and by ctx — the request's
// overall budget — whichever is tighter; once the budget itself is
// spent the walk stops rather than charging a dead deadline for every
// remaining peer.
func (s *Service) peerFill(ctx context.Context, fp string) *cacheEntry {
	p := s.cfg.Peers
	if p == nil {
		return nil
	}
	fillCtx, fillSpan := obs.StartSpan(ctx, "peer.fill", "fp", fp)
	defer fillSpan.End()
	for _, peer := range p.order(fp) {
		attemptCtx, attemptSpan := obs.StartSpan(fillCtx, "peer.attempt", "peer", peer)
		pctx, cancel := context.WithTimeout(attemptCtx, p.fillTimeout())
		data, err := s.fetchPeerArtifact(pctx, peer, fp)
		cancel()
		attemptSpan.End()
		if err != nil {
			if isTimeout(err) {
				s.stats.peerTimeouts.Add(1)
			} else {
				s.stats.peerErrors.Add(1)
			}
			if ctx.Err() != nil {
				return nil
			}
			continue
		}
		if data == nil { // peer does not have it either
			continue
		}
		art, err := strategy.VerifyArtifactBytes(fp, data)
		if err != nil {
			// A corrupt peer body is a miss, never a wrong byte: the
			// verification gate is what makes every other degradation
			// rule safe to apply.
			s.stats.peerErrors.Add(1)
			continue
		}
		e := &cacheEntry{fp: fp, art: art, data: data, src: "hit-peer"}
		if err := s.disk.put(e); err != nil {
			s.stats.diskFailures.Add(1)
		}
		s.memory.put(e)
		s.stats.peerFills.Add(1)
		fillSpan.SetAttr("result", "filled")
		return e
	}
	s.stats.peerMisses.Add(1)
	fillSpan.SetAttr("result", "miss")
	return nil
}

// isTimeout distinguishes a consult that ran out of time (deadline,
// net timeout) from one that failed outright (refused, corrupt, 5xx) —
// the two degrade identically but are counted apart, because a fleet
// full of timeouts wants a different fix than a fleet full of errors.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// fetchPeerArtifact asks one peer for a fingerprint. nil, nil is a clean
// 404: the peer answered, it just does not hold the plan.
func (s *Service) fetchPeerArtifact(ctx context.Context, peer, fp string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/artifacts/"+fp, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(HeaderPeerFill, "1")
	// The peer's artifact-serving spans join this request's trace, with
	// the peer.attempt span as their remote parent.
	obs.Propagate(ctx, req)
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms >= 1 {
			req.Header.Set(HeaderBudget, strconv.FormatInt(ms, 10))
		}
	}
	resp, err := s.cfg.Peers.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(resp.Body)
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	default:
		return nil, fmt.Errorf("peer %s: status %d for %s", peer, resp.StatusCode, fp)
	}
}

// offerMemo pushes a freshly installed DP memo snapshot to the peers
// that own the same planning question at neighboring device counts
// (devices ± 1, under the default mini-batch pairing): those are the
// shards an elastic replan of this job will hash to, and a snapshot
// installed there ahead of time turns their next cold search warm. The
// offers are asynchronous and best-effort — a missed offer costs one
// warm-start, never an answer.
func (s *Service) offerMemo(req Request, snap *memosnap.Snapshot) {
	p := s.cfg.Peers
	if p == nil || !p.OfferMemos || snap == nil {
		return
	}
	targets := make(map[string]bool)
	for _, d := range []int{req.Devices - 1, req.Devices + 1} {
		if d < 1 {
			continue
		}
		// The neighbor's fingerprint under the default mini-batch pairing
		// for its device count — a routing heuristic (explicit mini-batch
		// replans may hash elsewhere), not a correctness condition.
		nreq := req
		nreq.Devices = d
		nreq.MiniBatch = 0
		nfp, err := nreq.CanonicalFingerprint()
		if err != nil {
			continue
		}
		owners := p.Backends
		if p.Ranker != nil {
			owners = p.Ranker.Owners(nfp)
		}
		if len(owners) > 0 && owners[0] != p.Self {
			targets[owners[0]] = true
		}
	}
	if len(targets) == 0 {
		return
	}
	data := memosnap.Encode(snap)
	for peer := range targets {
		s.peerWG.Add(1)
		go func(peer string) {
			defer s.peerWG.Done()
			if err := s.postMemo(peer, data); err == nil {
				s.stats.memoOffersSent.Add(1)
			} else if isTimeout(err) {
				s.stats.peerTimeouts.Add(1)
			} else {
				s.stats.peerErrors.Add(1)
			}
		}(peer)
	}
}

func (s *Service) postMemo(peer string, data []byte) error {
	// Offers are fire-and-forget but not unbounded: each gets one
	// FillTimeout budget, carried on the wire so the receiver's own
	// handling is cut off at the same instant.
	budget := s.cfg.Peers.fillTimeout()
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/memos", bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set(HeaderPeerFill, "1")
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(HeaderBudget, strconv.FormatInt(budget.Milliseconds(), 10))
	resp, err := s.cfg.Peers.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("peer %s: memo offer rejected with %d", peer, resp.StatusCode)
	}
	return nil
}
