package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded marks a request rejected at admission because the planning
// queue was full. The HTTP layer maps it to 429; clients should back off
// and retry. Test with errors.Is.
var ErrOverloaded = errors.New("service: overloaded")

// OverloadError is the structured form of a queue-full rejection: the
// observed depths and a retry hint derived from them. errors.Is sees
// through it to ErrOverloaded; the HTTP layer additionally renders
// RetryAfter as a Retry-After header, and the fleet router honors that
// header when it retries a shed request on the same backend.
type OverloadError struct {
	// Queued and InFlight are the admission gauges at rejection time.
	Queued, InFlight int64
	// RetryAfter estimates when a slot will free up: the backlog
	// (queued + in-flight searches) divided across the workers, at an
	// assumed one second per search, floored at one second. It is a
	// backoff hint, not a promise.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v: planning queue full (%d queued, %d in flight, retry in %s)",
		ErrOverloaded, e.Queued, e.InFlight, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// admission is the bounded execution stage in front of the planners: a
// fixed worker pool fed by a fixed-depth queue. Its size is deliberately
// independent of each planner's internal Options.Workers — the pool bounds
// how many planner searches run at once, the planner option bounds how
// many CPUs one search uses, and the product of the two is the service's
// CPU envelope. Submissions beyond queue capacity fail fast with
// ErrOverloaded instead of piling up goroutines: under overload the
// service sheds load at the door, where the caller still has the context
// to retry elsewhere, rather than time out in a queue it cannot see.
type admission struct {
	jobs     chan func()
	size     int            // worker count, for retry-hint estimation
	workers  sync.WaitGroup // running worker goroutines
	pending  sync.WaitGroup // accepted-but-unfinished jobs
	queued   atomic.Int64
	inflight atomic.Int64

	mu     sync.Mutex
	closed bool
}

func newAdmission(workers, queueDepth int) *admission {
	a := &admission{jobs: make(chan func(), queueDepth), size: workers}
	for i := 0; i < workers; i++ {
		a.workers.Add(1)
		go func() {
			defer a.workers.Done()
			for job := range a.jobs {
				job()
			}
		}()
	}
	return a
}

// run admits fn, waits for a worker to execute it, and returns when it
// finishes or ctx expires. Admission is non-blocking: a full queue is an
// immediate ErrOverloaded carrying the observed depths. A caller that
// gives up on ctx abandons the wait but not the job — the job is a
// singleflight leader other waiters may be parked on, so it runs to
// completion and lands in the cache regardless.
func (a *admission) run(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	job := func() {
		defer close(done)
		a.queued.Add(-1)
		a.inflight.Add(1)
		defer a.inflight.Add(-1)
		fn()
	}

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("%w: service shutting down", ErrOverloaded)
	}
	// The gauge rises before the send: a worker may dequeue the job (and
	// decrement) the instant it lands in the channel, and an increment
	// sequenced after that would let a stats reader observe queued == -1.
	a.queued.Add(1)
	select {
	case a.jobs <- job:
		a.pending.Add(1)
		a.mu.Unlock()
	default:
		queued, inflight := a.queued.Add(-1), a.inflight.Load()
		a.mu.Unlock()
		return &OverloadError{Queued: queued, InFlight: inflight, RetryAfter: a.retryAfter(queued, inflight)}
	}

	defer a.pending.Done()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfter turns the rejection-time queue depth into a backoff hint:
// ceil(backlog / workers) seconds, at an assumed one second per queued
// search, never less than one second. Deeper queues tell shed clients to
// stay away longer, so retries spread out instead of stampeding back.
func (a *admission) retryAfter(queued, inflight int64) time.Duration {
	workers := int64(a.size)
	if workers < 1 {
		workers = 1
	}
	secs := (queued + inflight + workers - 1) / workers
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

// close stops admitting, drains every accepted job, and joins the
// workers. It is the drain half of graceful shutdown: in-flight and
// queued planner runs complete (and publish to the cache), new arrivals
// are turned away with ErrOverloaded.
func (a *admission) close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	a.pending.Wait()
	close(a.jobs)
	a.workers.Wait()
}
