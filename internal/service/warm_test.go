package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"regexp"
	"sync"
	"testing"
)

// strategyBytes isolates the plan itself from provenance (search seconds,
// warm-start stats vary run to run; the strategy must not).
func strategyBytes(t *testing.T, r *PlanResult) []byte {
	t.Helper()
	data, err := json.Marshal(r.Artifact.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestWarmStartAcrossRequests pins the service-level warm-start loop: the
// first graphpipe plan for a canonical graph installs a memo snapshot,
// and a later request for the same graph at a different device count
// warm-starts from it — with the identical strategy a warm-disabled
// service computes.
func TestWarmStartAcrossRequests(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	cold := newService(t, Config{Workers: 2, MemoSnapshots: -1})
	// Explicit mini-batch: the canonical graph and the planned B stay
	// fixed across device counts, so the snapshot applies to the replan.
	req := func(devices int) Request {
		return Request{Model: "mmt", Devices: devices, MiniBatch: 64, Planner: "graphpipe"}
	}

	if _, err := s.Plan(context.Background(), req(4)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.MemoInstalls != 1 || st.MemoSnapshots != 1 {
		t.Fatalf("first plan: installs=%d snapshots=%d, want 1/1", st.MemoInstalls, st.MemoSnapshots)
	}
	if st.MemoWarmHits != 0 {
		t.Fatalf("first plan claimed a warm hit")
	}

	// Elastic replan at half the devices.
	warm, err := s.Plan(context.Background(), req(2))
	if err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.MemoWarmHits != 1 || st.MemoEntriesReused == 0 {
		t.Errorf("replan: warm_hits=%d entries_reused=%d, want 1/>0", st.MemoWarmHits, st.MemoEntriesReused)
	}
	if st.MemoInstalls != 2 || st.MemoSnapshots != 1 {
		t.Errorf("replan: installs=%d snapshots=%d, want 2/1 (merged under one key)", st.MemoInstalls, st.MemoSnapshots)
	}
	if !warm.Artifact.Planner.WarmStarted || warm.Artifact.Planner.MemoEntriesReused == 0 {
		t.Errorf("artifact provenance missing warm-start: %+v", warm.Artifact.Planner)
	}

	pristine, err := cold.Plan(context.Background(), req(2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(strategyBytes(t, warm), strategyBytes(t, pristine)) {
		t.Error("warm-started service strategy diverged from warm-disabled service")
	}
	if cs := cold.Stats(); cs.MemoInstalls != 0 || cs.MemoWarmHits != 0 || cs.MemoSnapshots != 0 {
		t.Errorf("disabled store reported activity: %+v", cs)
	}
	if pristine.Artifact.Planner.WarmStarted {
		t.Error("warm-disabled service marked its artifact warm-started")
	}
}

// TestWarmStartConcurrentReplans is the -race hammer: distinct requests
// over one canonical graph replan concurrently while snapshots for the
// same key are being installed, merged, and read. It pins exactly-once
// install per planner run, a single merged store entry, and — against a
// pristine warm-disabled service — byte-identical strategies, so no
// reader ever saw a torn snapshot.
func TestWarmStartConcurrentReplans(t *testing.T) {
	s := newService(t, Config{Workers: 4, QueueDepth: 64, MemoSnapshots: 2})
	reqs := []Request{}
	for _, devices := range []int{2, 3, 4} {
		for _, mb := range []int{32, 64, 128} {
			reqs = append(reqs, Request{Model: "mmt", Devices: devices, MiniBatch: mb, Planner: "graphpipe"})
		}
	}

	// Warm the store, then hammer: every request replans twice
	// concurrently (the second round hits the artifact cache for its own
	// fingerprint, so force planner runs by planning round one cold).
	var wg sync.WaitGroup
	results := make([]*PlanResult, len(reqs))
	errs := make([]error, len(reqs))
	for i := range reqs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = s.Plan(context.Background(), reqs[i])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	st := s.Stats()
	if st.Planned != uint64(len(reqs)) {
		t.Fatalf("planned %d runs, want %d distinct", st.Planned, len(reqs))
	}
	if st.MemoInstalls != st.Planned {
		t.Errorf("installs=%d planned=%d — snapshot install is not exactly-once per run", st.MemoInstalls, st.Planned)
	}
	// One canonical graph and one option set → one compatibility key; the
	// concurrent installs must have merged, not multiplied.
	if st.MemoSnapshots != 1 {
		t.Errorf("store holds %d snapshots, want 1 merged", st.MemoSnapshots)
	}

	cold := newService(t, Config{Workers: 4, QueueDepth: 64, MemoSnapshots: -1})
	for i := range reqs {
		pristine, err := cold.Plan(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(strategyBytes(t, results[i]), strategyBytes(t, pristine)) {
			t.Errorf("request %d (devices=%d mb=%d): concurrent warm strategy diverged from cold",
				i, reqs[i].Devices, reqs[i].MiniBatch)
		}
	}
}

// TestStatsDocsMatchSnapshot reconciles the README's GET /v1/stats field
// table with the implementation, both ways: every documented field must
// appear in a marshaled Snapshot, and every Snapshot field must be
// documented. This is the test the table says it has.
func TestStatsDocsMatchSnapshot(t *testing.T) {
	snap := Snapshot{
		// Populate the one omitempty field so it marshals.
		PlannerLatency: map[string]HistogramSnapshot{"graphpipe": {}},
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	documented := map[string]bool{}
	row := regexp.MustCompile("^\\| `([a-z_]+)` \\|")
	inTable := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case !inTable:
			inTable = line == "| Field | Meaning |"
		case row.MatchString(line):
			documented[row.FindStringSubmatch(line)[1]] = true
		case line == "" && len(documented) > 0:
			inTable = false
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(documented) == 0 {
		t.Fatal("README stats table not found (looking for a '| Field | Meaning |' header)")
	}

	for field := range documented {
		if _, ok := got[field]; !ok {
			t.Errorf("README documents %q; GET /v1/stats does not return it", field)
		}
	}
	for field := range got {
		if !documented[field] {
			t.Errorf("GET /v1/stats returns %q; README table does not document it (fix the Serving section)", field)
		}
	}
}
