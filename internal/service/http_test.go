package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newService(t, cfg).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeAPIError(t *testing.T, data []byte) apiError {
	t.Helper()
	var e apiError
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body is not structured JSON: %v (%q)", err, data)
	}
	return e
}

func TestHTTPPlanColdWarmAndArtifact(t *testing.T) {
	stub.reset(nil)
	srv := testServer(t, Config{})
	body := `{"model":"case-study","devices":4,"planner":"stub"}`

	cold, coldData := post(t, srv.URL+"/v1/plan", body)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold plan: %d %s", cold.StatusCode, coldData)
	}
	if src := cold.Header.Get(HeaderCache); src != "miss" {
		t.Errorf("cold %s = %q, want miss", HeaderCache, src)
	}
	fp := cold.Header.Get(HeaderFingerprint)
	if len(fp) != 64 {
		t.Fatalf("bad fingerprint header %q", fp)
	}

	warm, warmData := post(t, srv.URL+"/v1/plan", body)
	if warm.Header.Get(HeaderCache) != "hit-memory" || !bytes.Equal(warmData, coldData) {
		t.Errorf("warm plan: cache=%q, bytes identical=%v",
			warm.Header.Get(HeaderCache), bytes.Equal(warmData, coldData))
	}
	if stub.calls.Load() != 1 {
		t.Errorf("planner ran %d times over cold+warm", stub.calls.Load())
	}

	artResp, artData := get(t, srv.URL+"/v1/artifacts/"+fp)
	if artResp.StatusCode != http.StatusOK || !bytes.Equal(artData, coldData) {
		t.Errorf("artifact fetch: %d, bytes identical=%v", artResp.StatusCode, bytes.Equal(artData, coldData))
	}
	if resp, data := get(t, srv.URL+"/v1/artifacts/"+strings.Repeat("0", 64)); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing artifact: %d %s, want 404", resp.StatusCode, data)
	} else if decodeAPIError(t, data).Error != "not_found" {
		t.Errorf("missing artifact error body: %s", data)
	}
}

func TestHTTPEval(t *testing.T) {
	stub.reset(nil)
	srv := testServer(t, Config{})

	resp, data := post(t, srv.URL+"/v1/eval",
		`{"model":"case-study","devices":4,"planner":"stub","backend":"sim"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval: %d %s", resp.StatusCode, data)
	}
	var res EvalResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.Stages == 0 || res.Backend != "sim" {
		t.Errorf("eval result: %+v", res)
	}

	// Re-eval by fingerprint: warm plan, fresh evaluation.
	resp2, data2 := post(t, srv.URL+"/v1/eval", `{"fingerprint":"`+res.Fingerprint+`"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("fingerprint eval: %d %s", resp2.StatusCode, data2)
	}
	var res2 EvalResult
	if err := json.Unmarshal(data2, &res2); err != nil {
		t.Fatal(err)
	}
	if res2.PlanSource != "hit-memory" || res2.Throughput != res.Throughput {
		t.Errorf("fingerprint eval: %+v vs %+v", res2, res)
	}
}

func TestHTTPErrors(t *testing.T) {
	stub.reset(nil)
	srv := testServer(t, Config{})
	for name, tc := range map[string]struct {
		body   string
		status int
		code   string
	}{
		"unknown model":   {`{"model":"nope","devices":4}`, 400, "bad_request"},
		"no devices":      {`{"model":"mmt"}`, 400, "bad_request"},
		"not json":        {`not json`, 400, "bad_request"},
		"unknown field":   {`{"model":"mmt","devices":4,"plannr":"graphpipe"}`, 400, "bad_request"},
		"unknown planner": {`{"model":"mmt","devices":4,"planner":"nope"}`, 400, "bad_request"},
	} {
		resp, data := post(t, srv.URL+"/v1/plan", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", name, resp.StatusCode, tc.status, data)
			continue
		}
		if e := decodeAPIError(t, data); e.Error != tc.code || e.Detail == "" {
			t.Errorf("%s: error body %+v, want code %q with detail", name, e, tc.code)
		}
	}

	// Wrong method on a defined route.
	if resp, _ := get(t, srv.URL+"/v1/plan"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: %d, want 405", resp.StatusCode)
	}
}

func TestHTTPOverloadIs429(t *testing.T) {
	gate := make(chan struct{})
	stub.reset(gate)
	srv := testServer(t, Config{Workers: 1, QueueDepth: 1})

	// Saturate: one planning, one queued, then a third is shed as 429.
	done := make(chan int, 2)
	bodies := []string{
		`{"model":"case-study","devices":4,"planner":"stub"}`,
		`{"model":"case-study","devices":4,"planner":"stub","options":{"forced_micro_batch":1}}`,
		`{"model":"case-study","devices":4,"planner":"stub","options":{"forced_micro_batch":2}}`,
	}
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := post(t, srv.URL+"/v1/plan", bodies[i])
			done <- resp.StatusCode
		}()
	}
	var snap Snapshot
	waitFor(t, "pool saturation", func() bool {
		_, data := get(t, srv.URL+"/v1/stats")
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatal(err)
		}
		return snap.InFlight == 1 && snap.Queued == 1
	})

	resp, data := post(t, srv.URL+"/v1/plan", bodies[2])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded plan: %d %s, want 429", resp.StatusCode, data)
	}
	if e := decodeAPIError(t, data); e.Error != "overloaded" || !strings.Contains(e.Detail, "queue full") {
		t.Errorf("429 body: %+v", e)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("admitted request got %d", code)
		}
	}
}

func TestHTTPStats(t *testing.T) {
	stub.reset(nil)
	srv := testServer(t, Config{})
	body := `{"model":"case-study","devices":4,"planner":"stub"}`
	post(t, srv.URL+"/v1/plan", body)
	post(t, srv.URL+"/v1/plan", body)

	resp, data := get(t, srv.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("stats body: %v (%s)", err, data)
	}
	if snap.Planned != 1 || snap.HitsMemory != 1 || snap.Misses != 1 {
		t.Errorf("stats after cold+warm: %+v", snap)
	}
	if _, ok := snap.PlannerLatency["stub"]; !ok {
		t.Errorf("stats missing planner latency histogram: %s", data)
	}
}

// errors.Is must see through the HTTP layer's error mapping — writeError
// switches on the sentinel chain, so a wrapped ErrOverloaded arriving via
// admission still renders as 429. This pins the sentinel chains the
// mapping depends on.
func TestSentinelWrapping(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, ErrOverloaded)
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("bare ErrOverloaded → %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	writeError(rec, errors.New("boom"))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("unknown error → %d", rec.Code)
	}
}

// TestHTTPBudgetHeader pins the daemon's side of the end-to-end budget
// contract: a spent budget is a counted 504 before any work, a
// malformed one is a 400, and a budget that dies while the planner is
// still searching releases the client with a 504 at the deadline.
func TestHTTPBudgetHeader(t *testing.T) {
	gate := make(chan struct{})
	stub.reset(gate)
	defer close(gate)
	s := newService(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	send := func(budget, body string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/plan", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(HeaderBudget, budget)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp, data
	}

	resp, data := send("0", `{"model":"case-study","devices":4,"planner":"stub"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("spent budget: status = %d (%s), want 504", resp.StatusCode, data)
	}
	if e := decodeAPIError(t, data); e.Error != "deadline_exceeded" {
		t.Fatalf("spent budget: code = %q, want deadline_exceeded", e.Error)
	}

	resp, _ = send("soonish", `{"model":"case-study","devices":4,"planner":"stub"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed budget: status = %d, want 400", resp.StatusCode)
	}

	// The gate holds the planner mid-search, so this budget must expire
	// while the cold plan is in flight.
	resp, data = send("50", `{"model":"case-study","devices":4,"planner":"stub"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("mid-plan expiry: status = %d (%s), want 504", resp.StatusCode, data)
	}
	if got := s.Stats().DeadlineRejections; got != 2 {
		t.Errorf("deadline_rejections = %d, want 2 (spent + mid-plan)", got)
	}
}
