package service

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"graphpipe/internal/faultinject"
	"graphpipe/internal/strategy"
)

// A cacheEntry is one cached plan: the decoded artifact plus the exact
// serialized bytes it was encoded to. The bytes are the unit the service
// serves — a warm hit returns them verbatim, so two requests for the same
// fingerprint get byte-identical responses whether the plan came from the
// planner, the memory tier, or the disk tier.
type cacheEntry struct {
	fp   string
	art  *strategy.Artifact
	data []byte
	// src records how a cold-path entry was produced ("hit-peer" when a
	// ring peer supplied it; empty means this process planned it). Cache
	// tier lookups report their own tier instead.
	src string
}

// memoryLRU is the first cache tier: a mutex-guarded LRU over decoded
// entries, bounded by entry count. Plans are kilobytes and requests
// resolve in microseconds here, so a simple global lock suffices — the
// planner behind a miss costs six orders of magnitude more than the
// contention in front of it.
type memoryLRU struct {
	mu        sync.Mutex
	max       int
	order     *list.List // front = most recently used; values are *cacheEntry
	items     map[string]*list.Element
	evictions atomic.Uint64
}

func newMemoryLRU(max int) *memoryLRU {
	return &memoryLRU{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *memoryLRU) get(fp string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[fp]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

func (c *memoryLRU) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.fp]; ok {
		c.order.MoveToFront(el)
		el.Value = e
		return
	}
	c.items[e.fp] = c.order.PushFront(e)
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).fp)
		c.evictions.Add(1)
	}
}

func (c *memoryLRU) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// diskStore is the second cache tier: one `<fingerprint>.json` artifact
// per plan, in the strategy package's wire format, so the store doubles
// as a directory of CLI-compatible artifacts (`graphpipe eval` replays
// them directly). It survives daemon restarts and memory evictions, and
// is unbounded — an artifact is a few KB and the operator owns the
// directory. An empty dir disables the tier.
//
// faults (nil: healthy disk) injects deterministic read corruption and
// failed/partial writes between the store and its bytes; the
// fingerprint re-verification in get is what turns every injected
// mangle into a miss instead of a wrong answer.
type diskStore struct {
	dir    string
	faults *faultinject.DiskInjector
}

func (d *diskStore) enabled() bool { return d.dir != "" }

func (d *diskStore) path(fp string) string { return filepath.Join(d.dir, fp+".json") }

// get loads and re-verifies a stored artifact. A file that fails to
// decode, or whose content hashes to a different fingerprint than its
// name (a hand-edited or misfiled artifact), is reported as an error and
// treated by the caller as a miss — the planner is the recovery path.
func (d *diskStore) get(fp string) (*cacheEntry, error) {
	if !d.enabled() {
		return nil, nil
	}
	data, err := os.ReadFile(d.path(fp))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	data = d.faults.Read(data)
	art, err := strategy.VerifyArtifactBytes(fp, data)
	if err != nil {
		return nil, fmt.Errorf("cached artifact: %w", err)
	}
	return &cacheEntry{fp: fp, art: art, data: data}, nil
}

// put writes the entry atomically (temp file + rename), so a crashed or
// concurrent writer can never leave a torn artifact for get to read.
func (d *diskStore) put(e *cacheEntry) error {
	if !d.enabled() {
		return nil
	}
	data, err := d.faults.Write(e.data)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, "."+e.fp+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), d.path(e.fp))
}
