package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
	"graphpipe/internal/obs"
	"graphpipe/internal/planner"
	"graphpipe/internal/strategy"

	_ "graphpipe/internal/eval/all"    // register the built-in backends
	_ "graphpipe/internal/planner/all" // register the built-in planners
)

// stubPlanner wraps the real graphpipe planner with an invocation counter
// and an optional gate, so tests can observe exactly how many planner runs
// a traffic pattern triggered and hold runs open to create contention.
// It registers once per test binary under "stub"; tests in this package
// run sequentially, so reset() hands it cleanly between them.
type stubPlanner struct {
	calls atomic.Int64

	mu   sync.Mutex
	gate chan struct{} // non-nil: Plan blocks here after counting
}

var stub = &stubPlanner{}

func init() { planner.Register(stub) }

func (p *stubPlanner) Name() string { return "stub" }

func (p *stubPlanner) Plan(g *graph.Graph, topo *cluster.Topology, miniBatch int, opts planner.Options) (*strategy.Strategy, planner.Stats, error) {
	p.calls.Add(1)
	p.mu.Lock()
	gate := p.gate
	p.mu.Unlock()
	if gate != nil {
		<-gate
	}
	real, err := planner.Get("graphpipe")
	if err != nil {
		return nil, planner.Stats{}, err
	}
	return real.Plan(g, topo, miniBatch, opts)
}

func (p *stubPlanner) reset(gate chan struct{}) {
	p.calls.Store(0)
	p.mu.Lock()
	p.gate = gate
	p.mu.Unlock()
}

// testRequest is the cheap standard planning question (plans in ~10ms).
func testRequest() Request {
	return Request{Model: "case-study", Devices: 4, Planner: "stub"}
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitFor polls until cond holds — the tests gate on observable stats
// transitions instead of sleeping.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleflightConcurrentIdenticalRequests pins the acceptance
// criterion: N concurrent identical cold requests trigger exactly one
// planner run, and every caller gets byte-identical artifact bytes. The
// planner is gated until all N requests have registered a cache miss, so
// every request provably arrived before the first result existed — none
// of them could have been served by the cache.
func TestSingleflightConcurrentIdenticalRequests(t *testing.T) {
	const n = 16
	gate := make(chan struct{})
	stub.reset(gate)
	s := newService(t, Config{Workers: 4, QueueDepth: n})

	var (
		wg      sync.WaitGroup
		results [n]*PlanResult
		errs    [n]error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = s.Plan(context.Background(), testRequest())
		}()
	}
	waitFor(t, "all requests to miss the cache", func() bool {
		return s.Stats().Misses == n
	})
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("planner ran %d times for %d concurrent identical requests, want exactly 1", got, n)
	}
	var shared int
	for i, r := range results {
		if !bytes.Equal(r.Data, results[0].Data) {
			t.Errorf("request %d got different artifact bytes", i)
		}
		if r.Fingerprint != results[0].Fingerprint {
			t.Errorf("request %d got fingerprint %s, want %s", i, r.Fingerprint, results[0].Fingerprint)
		}
		if r.Source == "shared" {
			shared++
		}
	}
	snap := s.Stats()
	if snap.Planned != 1 || snap.SharedWaits != n-1 || shared != n-1 {
		t.Errorf("planned=%d shared_waits=%d shared-sources=%d, want 1/%d/%d",
			snap.Planned, snap.SharedWaits, shared, n-1, n-1)
	}
}

// TestWarmHitByteIdentical pins the other acceptance criterion: a warm
// re-request returns the byte-identical serialized artifact without any
// planner invocation.
func TestWarmHitByteIdentical(t *testing.T) {
	stub.reset(nil)
	s := newService(t, Config{})

	cold, err := s.Plan(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Source != "miss" {
		t.Fatalf("cold source = %q, want miss", cold.Source)
	}
	warm, err := s.Plan(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Source != "hit-memory" {
		t.Errorf("warm source = %q, want hit-memory", warm.Source)
	}
	if !bytes.Equal(warm.Data, cold.Data) {
		t.Error("warm response is not byte-identical to the cold one")
	}
	if got := stub.calls.Load(); got != 1 {
		t.Errorf("planner ran %d times, want 1 (warm hit must not plan)", got)
	}
	// The served bytes must decode back to the same artifact a CLI user
	// would read from disk.
	art, err := strategy.DecodeArtifact(warm.Data)
	if err != nil {
		t.Fatalf("served bytes do not decode: %v", err)
	}
	if art.Fingerprint() != warm.Fingerprint {
		t.Errorf("served artifact hashes to %s, header says %s", art.Fingerprint(), warm.Fingerprint)
	}
}

// distinctRequests returns n (≤ 3) requests with distinct fingerprints
// that all plan quickly: the default search plus forced micro-batch sizes
// that are feasible for the case-study model on 4 devices.
func distinctRequests(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = testRequest()
		reqs[i].Options.ForcedMicroBatch = i // 0 selects the full search
	}
	return reqs
}

func TestMemoryEvictionAndDiskPromotion(t *testing.T) {
	stub.reset(nil)
	dir := t.TempDir()
	s := newService(t, Config{MemoryEntries: 2, CacheDir: dir})

	reqs := distinctRequests(3)
	var first *PlanResult
	for i, req := range reqs {
		r, err := s.Plan(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if i == 0 {
			first = r
		}
	}
	snap := s.Stats()
	if snap.MemoryEntries != 2 || snap.MemoryEvictions != 1 {
		t.Fatalf("after 3 plans into a 2-entry cache: entries=%d evictions=%d, want 2/1",
			snap.MemoryEntries, snap.MemoryEvictions)
	}

	// The evicted plan (LRU: the first one) must come back from disk,
	// byte-identical, without planning.
	again, err := s.Plan(context.Background(), reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != "hit-disk" {
		t.Errorf("evicted plan source = %q, want hit-disk", again.Source)
	}
	if !bytes.Equal(again.Data, first.Data) {
		t.Error("disk tier returned different bytes than the original plan")
	}
	if got := stub.calls.Load(); got != 3 {
		t.Errorf("planner ran %d times, want 3 (disk hit must not plan)", got)
	}

	// The disk store is CLI-compatible: one decodable artifact per plan,
	// named by its fingerprint.
	data, err := os.ReadFile(filepath.Join(dir, first.Fingerprint+".json"))
	if err != nil {
		t.Fatalf("disk store: %v", err)
	}
	if !bytes.Equal(data, first.Data) {
		t.Error("on-disk artifact differs from the served bytes")
	}
}

func TestMemoryOnlyEvictionReplans(t *testing.T) {
	stub.reset(nil)
	s := newService(t, Config{MemoryEntries: 2})

	reqs := distinctRequests(3)
	for _, req := range reqs {
		if _, err := s.Plan(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	r, err := s.Plan(context.Background(), reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.Source != "miss" || stub.calls.Load() != 4 {
		t.Errorf("source=%q calls=%d, want miss/4 (no disk tier to fall back to)",
			r.Source, stub.calls.Load())
	}
}

func TestOverloadShedding(t *testing.T) {
	gate := make(chan struct{})
	stub.reset(gate)
	s := newService(t, Config{Workers: 1, QueueDepth: 1})

	reqs := distinctRequests(3)
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.Plan(context.Background(), reqs[i])
			results <- err
		}()
		if i == 0 {
			waitFor(t, "first plan to occupy the worker", func() bool {
				return s.Stats().InFlight == 1
			})
		} else {
			waitFor(t, "second plan to queue", func() bool {
				return s.Stats().Queued == 1
			})
		}
	}

	// Worker busy, queue full: the third distinct request must be shed
	// immediately with a structured overload error.
	_, err := s.Plan(context.Background(), reqs[2])
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("admitted request failed: %v", err)
		}
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestFingerprintMatchesCanonicalization pins that the defaulted and
// explicit spellings of one question share a fingerprint — and that the
// request-side hash equals the artifact-side hash the CLI prints.
func TestFingerprintMatchesCanonicalization(t *testing.T) {
	stub.reset(nil)
	s := newService(t, Config{})

	implicit := Request{Model: "case-study", Devices: 4, Planner: "stub"}
	explicit := Request{Model: "case-study", Devices: 4, MiniBatch: 64, Planner: "stub"}

	r1, err := s.Plan(context.Background(), implicit)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Plan(context.Background(), explicit)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint != r2.Fingerprint || r2.Source != "hit-memory" {
		t.Errorf("defaulted mini-batch: fp %s vs %s (source %s), want identical warm hit",
			r1.Fingerprint, r2.Fingerprint, r2.Source)
	}
	if got := r1.Artifact.Fingerprint(); got != r1.Fingerprint {
		t.Errorf("artifact hashes to %s, service says %s", got, r1.Fingerprint)
	}
}

func TestBadRequests(t *testing.T) {
	stub.reset(nil)
	s := newService(t, Config{})
	for name, req := range map[string]Request{
		"no model":         {Devices: 4},
		"unknown model":    {Model: "nope", Devices: 4},
		"no devices":       {Model: "case-study"},
		"unknown planner":  {Model: "case-study", Devices: 4, Planner: "nope"},
		"negative batch":   {Model: "case-study", Devices: 4, MiniBatch: -1},
		"negative branch":  {Model: "mmt", Devices: 4, Branches: -1},
		"negative devices": {Model: "mmt", Devices: -8},
		"negative forced micro": {Model: "case-study", Devices: 4,
			Options: strategy.PlanOptions{ForcedMicroBatch: -2}},
		"negative max micro": {Model: "case-study", Devices: 4,
			Options: strategy.PlanOptions{MaxMicroBatch: -1}},
		"non-dividing forced micro": {Model: "case-study", Devices: 4, MiniBatch: 64,
			Options: strategy.PlanOptions{ForcedMicroBatch: 7}},
	} {
		if _, err := s.Plan(context.Background(), req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", name, err)
		}
	}
}

func TestEval(t *testing.T) {
	stub.reset(nil)
	s := newService(t, Config{})

	// Cold eval: plans first, then evaluates.
	res, err := s.Eval(context.Background(), EvalRequest{Request: testRequest()})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanSource != "miss" || res.Backend != "sim" || res.Throughput <= 0 {
		t.Errorf("cold eval: %+v", res)
	}

	// By fingerprint: must not plan again, and the runtime backend must
	// agree with the simulator (the eval-layer parity property).
	res2, err := s.Eval(context.Background(), EvalRequest{
		Fingerprint: res.Fingerprint, Backend: "runtime",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.PlanSource != "hit-memory" || stub.calls.Load() != 1 {
		t.Errorf("fingerprint eval planned again: %+v (calls %d)", res2, stub.calls.Load())
	}
	if res2.Throughput != res.Throughput {
		t.Errorf("runtime throughput %v != sim %v", res2.Throughput, res.Throughput)
	}

	if _, err := s.Eval(context.Background(), EvalRequest{Fingerprint: "feed"}); !errors.Is(err, ErrUnknownArtifact) {
		t.Errorf("unknown fingerprint: err = %v, want ErrUnknownArtifact", err)
	}
	if _, err := s.Eval(context.Background(), EvalRequest{
		Request: testRequest(), Backend: "nope",
	}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown backend: err = %v, want ErrBadRequest", err)
	}
}

func TestCorruptDiskEntryDegradesToMiss(t *testing.T) {
	stub.reset(nil)
	dir := t.TempDir()
	s := newService(t, Config{MemoryEntries: 1, CacheDir: dir})

	reqs := distinctRequests(2)
	first, err := s.Plan(context.Background(), reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Evict the first plan from memory, then corrupt its disk copy.
	if _, err := s.Plan(context.Background(), reqs[1]); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, first.Fingerprint+".json")
	if err := os.WriteFile(path, []byte("{not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := s.Plan(context.Background(), reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.Source != "miss" {
		t.Errorf("source = %q, want miss (corrupt disk entry must not be served)", r.Source)
	}
	// The re-plan answers the same question (same fingerprint, same
	// strategy); only the recorded search wall-clock may differ.
	if r.Fingerprint != first.Fingerprint {
		t.Errorf("replanned fingerprint %s != original %s", r.Fingerprint, first.Fingerprint)
	}
	if s.Stats().DiskFailures == 0 {
		t.Error("disk failure not counted")
	}
	// The re-plan must have healed the on-disk copy with its own bytes.
	data, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(data, r.Data) {
		t.Errorf("disk copy not healed (err %v)", err)
	}
}

// TestLeaderCancellationDoesNotPoisonFlight pins the singleflight
// detachment: joiners depend on the leader's planner run, so the leader's
// client hanging up must neither fail the joiners nor abort the run.
func TestLeaderCancellationDoesNotPoisonFlight(t *testing.T) {
	gate := make(chan struct{})
	stub.reset(gate)
	s := newService(t, Config{Workers: 1, QueueDepth: 4})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	type outcome struct {
		res *PlanResult
		err error
	}
	leader := make(chan outcome, 1)
	go func() {
		r, err := s.Plan(leaderCtx, testRequest())
		leader <- outcome{r, err}
	}()
	waitFor(t, "leader to miss", func() bool { return s.Stats().Misses == 1 })

	joiner := make(chan outcome, 1)
	go func() {
		r, err := s.Plan(context.Background(), testRequest())
		joiner <- outcome{r, err}
	}()
	waitFor(t, "joiner to miss", func() bool { return s.Stats().Misses == 2 })

	cancelLeader()
	close(gate)
	for name, ch := range map[string]chan outcome{"leader": leader, "joiner": joiner} {
		o := <-ch
		if o.err != nil {
			t.Errorf("%s: %v (cancellation of one client must not fail the flight)", name, o.err)
		}
	}
	if got := stub.calls.Load(); got != 1 {
		t.Errorf("planner ran %d times, want 1", got)
	}
}

func TestCloseDrainsAdmittedWork(t *testing.T) {
	gate := make(chan struct{})
	stub.reset(gate)
	s, err := New(Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := s.Plan(context.Background(), testRequest())
		done <- err
	}()
	waitFor(t, "plan to start", func() bool { return s.Stats().InFlight == 1 })

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a planner run was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-done; err != nil {
		t.Errorf("in-flight plan failed during drain: %v", err)
	}
	<-closed

	// After close, new work is shed, not queued.
	if _, err := s.Plan(context.Background(), Request{Model: "case-study", Devices: 2, Planner: "stub"}); !errors.Is(err, ErrOverloaded) {
		t.Errorf("post-close plan: err = %v, want ErrOverloaded", err)
	}
}

func TestStatsSnapshotShape(t *testing.T) {
	stub.reset(nil)
	s := newService(t, Config{})
	if _, err := s.Plan(context.Background(), testRequest()); err != nil {
		t.Fatal(err)
	}
	snap := s.Stats()
	h, ok := snap.PlannerLatency["stub"]
	if !ok {
		t.Fatalf("no latency histogram for the planner that ran: %+v", snap.PlannerLatency)
	}
	if h.Count != 1 || h.SumSeconds <= 0 {
		t.Errorf("histogram count=%d sum=%v, want 1 observation with positive latency", h.Count, h.SumSeconds)
	}
	if len(h.Buckets) != len(obs.DefaultLatencyBounds) {
		t.Fatalf("histogram has %d buckets, want %d", len(h.Buckets), len(obs.DefaultLatencyBounds))
	}
	if last := h.Buckets[len(h.Buckets)-1]; last.Count != h.Count {
		t.Errorf("cumulative buckets must end at Count: %d != %d", last.Count, h.Count)
	}
}

func TestRequestFingerprintStability(t *testing.T) {
	// The request-side fingerprint must track the artifact-side pinned
	// preimage: hash a canonicalized request and re-derive it through the
	// skeleton artifact both ways.
	req := Request{Model: "mmt", Branches: 4, Devices: 8, MiniBatch: 128, Planner: "graphpipe"}
	if req.Fingerprint() != req.skeleton().Fingerprint() {
		t.Error("request and skeleton artifact fingerprints disagree")
	}
	other := req
	other.Options.ForcedMicroBatch = 2
	if req.Fingerprint() == other.Fingerprint() {
		t.Error("options do not affect the request fingerprint")
	}
}

func ExampleService() {
	s, _ := New(Config{Workers: 1})
	defer s.Close()
	res, _ := s.Plan(context.Background(), Request{Model: "case-study", Devices: 4})
	res2, _ := s.Plan(context.Background(), Request{Model: "case-study", Devices: 4})
	fmt.Println(res.Source, res2.Source, res.Fingerprint == res2.Fingerprint)
	// Output: miss hit-memory true
}
