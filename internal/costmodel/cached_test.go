package costmodel

import (
	"sync"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
)

// TestCachedMatchesAnalytic pins that the memoizing layer is transparent:
// every query answers exactly what the wrapped model answers, on first use
// and on cache hits.
func TestCachedMatchesAnalytic(t *testing.T) {
	g := testGraph(t)
	topo := cluster.NewSummitTopology(8)
	plain := New(DefaultParams(), topo)
	cached := NewCached(New(DefaultParams(), topo))

	var cfgs []StageConfig
	for pick := 1; pick < 1<<uint(g.Len()); pick++ {
		set := graph.NewNodeSet(g.Len())
		for i := 0; i < g.Len(); i++ {
			if pick&(1<<uint(i)) != 0 {
				set.Add(graph.NodeID(i))
			}
		}
		for _, b := range []int{1, 4, 16} {
			for _, d := range []int{1, 2} {
				cfgs = append(cfgs, StageConfig{
					Ops: set, MicroBatch: b, DataPar: d,
					InterNode: pick%2 == 0, InterNodeAllreduce: d > 1 && pick%3 == 0,
				})
			}
		}
	}
	for round := 0; round < 2; round++ { // round 2 exercises cache hits
		for _, cfg := range cfgs {
			if got, want := cached.Stage(g, cfg), plain.Stage(g, cfg); got != want {
				t.Fatalf("Stage(%+v) = %+v, want %+v", cfg, got, want)
			}
			if got, want := cached.TPS(g, cfg, 64), plain.TPS(g, cfg, 64); got != want {
				t.Fatalf("TPS(%+v) = %g, want %g", cfg, got, want)
			}
			if got, want := cached.StageMemory(g, cfg, 8), plain.StageMemory(g, cfg, 8); got != want {
				t.Fatalf("StageMemory(%+v) = %g, want %g", cfg, got, want)
			}
			if got, want := cached.FitsMemory(g, cfg, 8), plain.FitsMemory(g, cfg, 8); got != want {
				t.Fatalf("FitsMemory(%+v) = %v, want %v", cfg, got, want)
			}
		}
	}
	if got, want := cached.MaxTPS(g, 64), plain.MaxTPS(g, 64); got != want {
		t.Fatalf("MaxTPS = %g, want %g", got, want)
	}
	if cached.Topology() != topo {
		t.Fatal("Topology not passed through")
	}
}

// TestCachedDistinguishesGraphs pins that one Cached model serving two
// different graphs never aliases their costs: operator indices overlap
// between graphs, so the memo key must carry the graph identity.
func TestCachedDistinguishesGraphs(t *testing.T) {
	topo := cluster.NewSummitTopology(4)
	plain := New(DefaultParams(), topo)
	cached := NewCached(New(DefaultParams(), topo))

	light := testGraph(t)
	heavy := func() *graph.Graph {
		b := graph.NewBuilder("heavy")
		in := b.AddOp(graph.Op{Name: "in", Kind: graph.OpInput, OutputBytes: 1e3})
		l1 := b.AddOp(graph.Op{Name: "l1", Kind: graph.OpLinear, FwdFLOPs: 7e11, ParamBytes: 3e8, ActivationBytes: 1e6, OutputBytes: 1e5})
		l2 := b.AddOp(graph.Op{Name: "l2", Kind: graph.OpLinear, FwdFLOPs: 9e11, ParamBytes: 5e8, ActivationBytes: 2e6, OutputBytes: 1e5})
		em := b.AddOp(graph.Op{Name: "emb", Kind: graph.OpEmbedding, FwdFLOPs: 1e6, ParamBytes: 1e9, ActivationBytes: 1e5, OutputBytes: 1e5})
		b.Chain(in, l1, l2)
		b.Connect(in, em)
		return b.MustBuild()
	}()

	// Same op-index set {0,1,2}, same config — different graphs.
	cfg := StageConfig{Ops: graph.NodeSetOf(0, 1, 2), MicroBatch: 4, DataPar: 1}
	for _, g := range []*graph.Graph{light, heavy, light, heavy} { // repeats hit the cache
		if got, want := cached.Stage(g, cfg), plain.Stage(g, cfg); got != want {
			t.Fatalf("graph %s: cached Stage aliased another graph's costs:\n%+v\nwant\n%+v",
				g.Name(), got, want)
		}
	}
}

// TestCachedConcurrent hammers one cache from many goroutines; run with
// -race this pins the sharded locking.
func TestCachedConcurrent(t *testing.T) {
	g := testGraph(t)
	cached := NewCached(New(DefaultParams(), cluster.NewSummitTopology(8)))
	want := cached.Stage(g, StageConfig{Ops: g.AllNodes(), MicroBatch: 4, DataPar: 2})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for b := 1; b <= 64; b *= 2 {
				cfg := StageConfig{Ops: g.AllNodes(), MicroBatch: b, DataPar: 1 + i%2}
				cached.Stage(g, cfg)
				cached.TPS(g, cfg, 128)
			}
			got := cached.Stage(g, StageConfig{Ops: g.AllNodes(), MicroBatch: 4, DataPar: 2})
			if got != want {
				t.Errorf("concurrent Stage mismatch: %+v vs %+v", got, want)
			}
		}(i)
	}
	wg.Wait()
}
