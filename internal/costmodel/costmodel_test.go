package costmodel

import (
	"testing"
	"testing/quick"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("cm")
	in := b.AddOp(graph.Op{Name: "in", Kind: graph.OpInput, OutputBytes: 1e3})
	l1 := b.AddOp(graph.Op{Name: "l1", Kind: graph.OpLinear, FwdFLOPs: 1e9, ParamBytes: 1e6, ActivationBytes: 1e5, OutputBytes: 1e4})
	l2 := b.AddOp(graph.Op{Name: "l2", Kind: graph.OpLinear, FwdFLOPs: 2e9, BwdFLOPs: 5e9, ParamBytes: 2e6, ActivationBytes: 2e5, OutputBytes: 1e4})
	em := b.AddOp(graph.Op{Name: "emb", Kind: graph.OpEmbedding, FwdFLOPs: 1e5, ParamBytes: 1e8, ActivationBytes: 1e4, OutputBytes: 1e4})
	b.Chain(in, l1, l2)
	b.Connect(in, em)
	return b.MustBuild()
}

func model(t testing.TB, n int) *Analytic {
	t.Helper()
	return New(DefaultParams(), cluster.NewSummitTopology(n))
}

func TestEfficiencyMonotone(t *testing.T) {
	m := model(t, 4)
	prev := 0.0
	for b := 1; b <= 1024; b *= 2 {
		e := m.efficiency(graph.OpLinear, float64(b))
		if e <= prev {
			t.Fatalf("efficiency not increasing at b=%d: %g <= %g", b, e, prev)
		}
		if e >= 1 {
			t.Fatalf("efficiency >= 1 at b=%d", b)
		}
		prev = e
	}
	// Unknown kinds get a default saturation scale.
	if e := m.efficiency(graph.OpKind(77), 4); e <= 0 || e >= 1 {
		t.Errorf("default efficiency out of range: %g", e)
	}
	if e := m.efficiency(graph.OpLinear, 0); e != 1 {
		t.Errorf("zero-batch efficiency = %g, want 1", e)
	}
}

func TestOpTimesScaleWithBatch(t *testing.T) {
	m := model(t, 4)
	g := testGraph(t)
	dev := m.Topology().Device(0)
	op := g.Op(1) // l1
	t1 := m.OpForwardTime(op, 1, dev)
	t8 := m.OpForwardTime(op, 8, dev)
	if t8 <= t1 {
		t.Fatalf("forward time should grow with batch: %g vs %g", t8, t1)
	}
	// Super-linear efficiency: 8x batch takes less than 8x time.
	if t8 >= 8*t1 {
		t.Fatalf("per-sample time should shrink with batch: t8=%g t1=%g", t8, t1)
	}
	if m.OpForwardTime(op, 0, dev) != 0 {
		t.Error("zero batch should cost zero time")
	}
}

func TestBackwardDefaultsToTwiceForward(t *testing.T) {
	m := model(t, 4)
	g := testGraph(t)
	dev := m.Topology().Device(0)
	l1 := g.Op(1) // no explicit BwdFLOPs
	fw := m.OpForwardTime(l1, 64, dev)
	bw := m.OpBackwardTime(l1, 64, dev)
	// At batch 64 overhead is negligible; backward ≈ 2x forward.
	if ratio := bw / fw; ratio < 1.7 || ratio > 2.3 {
		t.Errorf("backward/forward ratio = %g, want ≈2", ratio)
	}
	l2 := g.Op(2) // explicit BwdFLOPs = 2.5x
	fw2 := m.OpForwardTime(l2, 64, dev)
	bw2 := m.OpBackwardTime(l2, 64, dev)
	if ratio := bw2 / fw2; ratio < 2.2 || ratio > 2.8 {
		t.Errorf("explicit backward ratio = %g, want ≈2.5", ratio)
	}
}

func TestEmbeddingIsMemoryBound(t *testing.T) {
	m := model(t, 4)
	g := testGraph(t)
	dev := m.Topology().Device(0)
	emb := g.Op(3)
	got := m.OpForwardTime(emb, 1024, dev)
	// Roofline floor: bytes moved / mem bandwidth.
	floor := (emb.ActivationBytes + emb.OutputBytes) * 1024 / dev.MemBandwidth
	if got < floor {
		t.Errorf("embedding time %g below roofline floor %g", got, floor)
	}
	// The FLOP path alone would be much cheaper than the floor.
	flopTime := emb.FwdFLOPs * 1024 / dev.PeakFLOPS
	if flopTime >= floor {
		t.Fatalf("test setup wrong: flop time %g should be below mem floor %g", flopTime, floor)
	}
}

func TestStageCosts(t *testing.T) {
	m := model(t, 4)
	g := testGraph(t)
	cfg := StageConfig{Ops: graph.NodeSetOf(1, 2), MicroBatch: 8, DataPar: 1}
	c := m.Stage(g, cfg)
	if c.ForwardTime <= 0 || c.BackwardTime <= c.ForwardTime {
		t.Errorf("stage times implausible: %+v", c)
	}
	if c.WeightBytes != (1e6+2e6)*4 {
		t.Errorf("WeightBytes = %g", c.WeightBytes)
	}
	if c.ActivationBytesPerSample != 3e5 {
		t.Errorf("ActivationBytesPerSample = %g", c.ActivationBytesPerSample)
	}
	if c.CommInTime <= 0 {
		t.Error("stage receiving input should have CommInTime > 0")
	}
	if c.AllreducePerIter != 0 {
		t.Error("DataPar=1 should have no allreduce")
	}
}

func TestDataParallelSplitsComputeAddsAllreduce(t *testing.T) {
	m := model(t, 4)
	g := testGraph(t)
	one := m.Stage(g, StageConfig{Ops: graph.NodeSetOf(1, 2), MicroBatch: 32, DataPar: 1})
	two := m.Stage(g, StageConfig{Ops: graph.NodeSetOf(1, 2), MicroBatch: 32, DataPar: 2})
	if two.ForwardTime >= one.ForwardTime {
		t.Errorf("data parallelism should shrink per-replica time: %g vs %g", two.ForwardTime, one.ForwardTime)
	}
	if two.AllreducePerIter <= 0 {
		t.Error("DataPar=2 should pay allreduce")
	}
	if two.ActivationBytesPerSample >= one.ActivationBytesPerSample {
		t.Error("activations should be split across replicas")
	}
	// Weights are replicated, not split.
	if two.WeightBytes != one.WeightBytes {
		t.Errorf("weights should be replicated: %g vs %g", two.WeightBytes, one.WeightBytes)
	}
}

func TestInterNodeSlowsComm(t *testing.T) {
	m := model(t, 8)
	g := testGraph(t)
	intra := m.Stage(g, StageConfig{Ops: graph.NodeSetOf(1), MicroBatch: 8, DataPar: 1})
	inter := m.Stage(g, StageConfig{Ops: graph.NodeSetOf(1), MicroBatch: 8, DataPar: 1, InterNode: true})
	if inter.CommInTime <= intra.CommInTime {
		t.Errorf("inter-node comm should be slower: %g vs %g", inter.CommInTime, intra.CommInTime)
	}
}

func TestTPSDecreasesWithMicroBatch(t *testing.T) {
	m := model(t, 4)
	g := testGraph(t)
	prev := -1.0
	for b := 1; b <= 64; b *= 2 {
		tps := m.TPS(g, StageConfig{Ops: graph.NodeSetOf(1, 2), MicroBatch: b, DataPar: 1}, 128)
		if prev > 0 && tps >= prev {
			t.Fatalf("TPS should fall with micro-batch size (operational intensity): b=%d tps=%g prev=%g", b, tps, prev)
		}
		prev = tps
	}
}

func TestStageMemoryAndFits(t *testing.T) {
	m := model(t, 4)
	g := testGraph(t)
	cfg := StageConfig{Ops: graph.NodeSetOf(1, 2), MicroBatch: 4, DataPar: 1}
	m0 := m.StageMemory(g, cfg, 0)
	m8 := m.StageMemory(g, cfg, 8)
	if m8 <= m0 {
		t.Error("memory should grow with in-flight samples")
	}
	if want := m0 + 8*3e5; m8 != want {
		t.Errorf("StageMemory(8) = %g, want %g", m8, want)
	}
	if !m.FitsMemory(g, cfg, 8) {
		t.Error("small stage should fit V100 memory")
	}
	// A tiny device budget must fail.
	tiny := NewDefault(cluster.NewUniformTopology(2, 1e6, 1e9))
	if tiny.FitsMemory(g, cfg, 8) {
		t.Error("stage should not fit 1MB budget")
	}
}

func TestMaxTPSBounds(t *testing.T) {
	m := model(t, 4)
	g := testGraph(t)
	max := m.MaxTPS(g, 64)
	// Any single-op stage at any micro-batch must be under MaxTPS.
	for b := 1; b <= 64; b *= 2 {
		for op := 0; op < g.Len(); op++ {
			tps := m.TPS(g, StageConfig{Ops: graph.NodeSetOf(graph.NodeID(op)), MicroBatch: b, DataPar: 1, InterNode: true}, 64)
			if tps > max {
				t.Fatalf("op %d at b=%d has TPS %g > MaxTPS %g", op, b, tps, max)
			}
		}
	}
}

// Property: stage costs are additive in ops — cost(A ∪ B) ≥ cost(A) for the
// pure compute components, and weight bytes are exactly additive.
func TestStageCostAdditiveProperty(t *testing.T) {
	m := model(t, 4)
	g := testGraph(t)
	f := func(pick uint8) bool {
		var set graph.NodeSet
		for i := 0; i < g.Len(); i++ {
			if pick&(1<<uint(i)) != 0 {
				set.Add(graph.NodeID(i))
			}
		}
		if set.Empty() {
			return true
		}
		whole := m.Stage(g, StageConfig{Ops: set, MicroBatch: 8, DataPar: 1})
		var wsum float64
		for _, id := range set.IDs() {
			wsum += g.Op(id).ParamBytes * m.Params().WeightStateMultiplier
		}
		return whole.WeightBytes == wsum && whole.ForwardTime > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
