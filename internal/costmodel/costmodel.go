// Package costmodel estimates execution times and memory footprints of
// pipeline stages. It substitutes for the paper's operator profiler: the
// paper measures per-operator execution times on V100 GPUs and extrapolates
// communication by affine functions (§5, base case); we compute both from an
// analytic roofline model so the reproduction is self-contained and
// deterministic.
//
// The model captures the one hardware behaviour GraphPipe's evaluation
// leans on (§2, §7.3, §7.5): compute efficiency increases with micro-batch
// size. Each operator kind has a saturation scale; per-device time for a
// micro-batch of size b is
//
//	time(b) = flops(b) / (peak · eff(b)) + fixed overhead,
//	eff(b)  = b / (b + halfSat)        (monotone, →1 as b grows),
//
// floored by the memory-bandwidth roofline for memory-bound operators such
// as embedding lookups.
package costmodel

import (
	"math"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
)

// Params configures the cost model. The zero value is not usable; call
// DefaultParams.
type Params struct {
	// HalfSat is the per-op-kind micro-batch size (samples per device) at
	// which an operator reaches 50% of peak efficiency. Larger values mean
	// the op needs bigger micro-batches to keep the device busy.
	HalfSat map[graph.OpKind]float64

	// KernelOverhead is the fixed per-operator launch overhead in seconds.
	KernelOverhead float64

	// WeightStateMultiplier scales parameter bytes to account for
	// gradients and optimizer state alongside the weights (Adam keeps two
	// moments: weights + grads + m + v = 4x).
	WeightStateMultiplier float64

	// BackwardFLOPFactor is used when an operator does not specify
	// BwdFLOPs: backward ≈ 2x forward for trainable ops.
	BackwardFLOPFactor float64
}

// DefaultParams returns the parameters used throughout the reproduction.
func DefaultParams() Params {
	return Params{
		HalfSat: map[graph.OpKind]float64{
			graph.OpInput:       1,
			graph.OpEmbedding:   64, // memory-bound: needs many lookups in flight
			graph.OpLinear:      4,
			graph.OpAttention:   2,
			graph.OpLayerNorm:   8,
			graph.OpConcat:      8,
			graph.OpInteraction: 8,
			graph.OpOutput:      1,
			graph.OpElementwise: 8,
		},
		KernelOverhead:        8e-6,
		WeightStateMultiplier: 4,
		BackwardFLOPFactor:    2,
	}
}

// Model is the cost-model contract shared by the planners and both
// evaluation backends: per-operator pass times, aggregate stage costs, the
// TPS objective (Equation 1), and the memory feasibility checks
// (Equation 2). Implementations must be safe for concurrent use — the
// parallel planner and the experiment grid both query one model from many
// goroutines. Analytic is the roofline implementation; Cached memoizes any
// Model so repeated stage queries (planner probes, evaluator replays) are
// computed once.
type Model interface {
	// Topology returns the device topology the model was built over.
	Topology() *cluster.Topology
	// OpForwardTime returns the forward-pass time of op for perDeviceBatch
	// samples on a single device dev.
	OpForwardTime(op graph.Op, perDeviceBatch float64, dev cluster.Device) float64
	// OpBackwardTime returns the backward-pass time of op for
	// perDeviceBatch samples on a single device dev.
	OpBackwardTime(op graph.Op, perDeviceBatch float64, dev cluster.Device) float64
	// Stage computes the costs of a candidate stage over computation graph
	// g.
	Stage(g *graph.Graph, cfg StageConfig) StageCosts
	// TPS returns the steady-state time the stage adds per training sample
	// (Equation 1).
	TPS(g *graph.Graph, cfg StageConfig, miniBatch int) float64
	// StageMemory returns the per-device memory of the stage with
	// inFlightSamples samples' activations resident (Equation 2).
	StageMemory(g *graph.Graph, cfg StageConfig, inFlightSamples int) float64
	// FitsMemory reports whether the stage satisfies the device memory
	// budget.
	FitsMemory(g *graph.Graph, cfg StageConfig, inFlightSamples int) bool
	// MaxTPS returns a safe upper bound for the bottleneck TPS (the MAXTPS
	// of Algorithm 1).
	MaxTPS(g *graph.Graph, miniBatch int) float64
}

// Analytic is the roofline cost model: deterministic, closed-form stage
// costs against a device topology.
type Analytic struct {
	params Params
	topo   *cluster.Topology
}

// New returns an Analytic model with the given parameters over the
// topology.
func New(params Params, topo *cluster.Topology) *Analytic {
	return &Analytic{params: params, topo: topo}
}

// NewDefault returns a memoizing cost model with DefaultParams: the
// Analytic roofline wrapped in a Cached layer. Memoization is per
// instance — callers that want planner probes and evaluator replays to
// share stage costs must thread one model value through both (as
// cmd/graphpipe's plan subcommand and the experiments harness do).
func NewDefault(topo *cluster.Topology) Model {
	return NewCached(New(DefaultParams(), topo))
}

// Topology returns the device topology the model was built over.
func (m *Analytic) Topology() *cluster.Topology { return m.topo }

// Params returns the model parameters.
func (m *Analytic) Params() Params { return m.params }

// efficiency returns the fraction of peak FLOPS an operator achieves at
// perDeviceBatch samples.
func (m *Analytic) efficiency(kind graph.OpKind, perDeviceBatch float64) float64 {
	half, ok := m.params.HalfSat[kind]
	if !ok {
		half = 4
	}
	if perDeviceBatch <= 0 {
		return 1
	}
	return perDeviceBatch / (perDeviceBatch + half)
}

// OpForwardTime returns the forward-pass time of op for perDeviceBatch
// samples on a single device dev.
func (m *Analytic) OpForwardTime(op graph.Op, perDeviceBatch float64, dev cluster.Device) float64 {
	return m.opTime(op, op.FwdFLOPs, perDeviceBatch, dev)
}

// OpBackwardTime returns the backward-pass time of op for perDeviceBatch
// samples on a single device dev.
func (m *Analytic) OpBackwardTime(op graph.Op, perDeviceBatch float64, dev cluster.Device) float64 {
	flops := op.BwdFLOPs
	if flops == 0 && op.FwdFLOPs > 0 {
		flops = op.FwdFLOPs * m.params.BackwardFLOPFactor
	}
	return m.opTime(op, flops, perDeviceBatch, dev)
}

func (m *Analytic) opTime(op graph.Op, flopsPerSample, perDeviceBatch float64, dev cluster.Device) float64 {
	if perDeviceBatch <= 0 {
		return 0
	}
	eff := m.efficiency(op.Kind, perDeviceBatch)
	compute := flopsPerSample * perDeviceBatch / (dev.PeakFLOPS * eff)
	// Memory-bandwidth roofline: moving activations (and, for embeddings,
	// gathering rows) cannot go faster than DRAM.
	bytesMoved := (op.ActivationBytes + op.OutputBytes) * perDeviceBatch
	membound := bytesMoved / dev.MemBandwidth
	return math.Max(compute, membound) + m.params.KernelOverhead
}

// StageCosts describes the planner-visible cost of one candidate pipeline
// stage configuration.
type StageCosts struct {
	// ForwardTime and BackwardTime are the per-micro-batch pass times on
	// each data-parallel replica.
	ForwardTime  float64
	BackwardTime float64
	// CommInTime is the time to receive the stage's input activations for
	// one micro-batch across the stage boundary.
	CommInTime float64
	// CommBackTime is the time to send the matching gradients back across
	// the same boundary. On symmetric links it equals CommInTime; on
	// hierarchical topologies with asymmetric up/down rates the two differ,
	// so the steady-state comm charge is CommInTime + CommBackTime.
	CommBackTime float64
	// AllreducePerIter is the per-iteration gradient synchronization time
	// across the stage's data-parallel replicas.
	AllreducePerIter float64
	// WeightBytes is the per-device memory for parameters + optimizer
	// state (replicated across data-parallel devices).
	WeightBytes float64
	// ActivationBytesPerSample is the per-device activation memory
	// retained per in-flight sample.
	ActivationBytesPerSample float64
}

// StageConfig identifies the stage whose cost is being queried.
type StageConfig struct {
	Ops        graph.NodeSet // operators assigned to the stage
	MicroBatch int           // micro-batch size b_i in samples
	DataPar    int           // number of data-parallel devices |D_i|
	// InterNode indicates the stage's boundary transfers cross node
	// boundaries; when the concrete device placement is not yet known the
	// planner passes a conservative estimate.
	InterNode bool
	// InterNodeAllreduce indicates the stage's data-parallel replicas span
	// nodes (the contiguous allocator keeps ≤4-device stages within one
	// 4-GPU node, so planners treat only larger stages as spanning).
	InterNodeAllreduce bool
	// Place is the contiguous device block the stage lands on. When set
	// (Count > 0) the model costs the stage against the actual devices and
	// link levels of the block — per-op times paced by the slowest device
	// class in the block, boundary transfers at the block's in-link level
	// with direction-dependent rates — and InterNode/InterNodeAllreduce are
	// ignored. When zero the model falls back to the placement-oblivious
	// estimates above (device 0 everywhere, two-tier bandwidth heuristics).
	Place cluster.Block
}

// blockDevices returns one representative device per distinct device class
// occurring in the stage's placement block, or the placement-oblivious
// device 0 when no block is set. A stage's data-parallel replicas advance in
// lockstep, so per-op times are paced by the slowest class present.
func (m *Analytic) blockDevices(cfg StageConfig) []cluster.Device {
	if cfg.Place.Count <= 0 {
		return []cluster.Device{m.topo.Device(0)}
	}
	var devs []cluster.Device
	seen := -1
	for i := cfg.Place.Start; i < cfg.Place.Start+cfg.Place.Count; i++ {
		c := m.topo.ClassOf(cluster.DeviceID(i))
		if c == seen {
			continue
		}
		dup := false
		for j := cfg.Place.Start; j < i; j++ {
			if m.topo.ClassOf(cluster.DeviceID(j)) == c {
				dup = true
				break
			}
		}
		if !dup {
			devs = append(devs, m.topo.Device(cluster.DeviceID(i)))
		}
		seen = c
	}
	return devs
}

// Stage computes the costs of a stage over computation graph g.
func (m *Analytic) Stage(g *graph.Graph, cfg StageConfig) StageCosts {
	if cfg.DataPar < 1 {
		cfg.DataPar = 1
	}
	devs := m.blockDevices(cfg)
	perDev := float64(cfg.MicroBatch) / float64(cfg.DataPar)

	var out StageCosts
	for _, id := range cfg.Ops.IDs() {
		op := g.Op(id)
		var fwd, bwd float64
		for _, dev := range devs {
			if t := m.OpForwardTime(op, perDev, dev); t > fwd {
				fwd = t
			}
			if t := m.OpBackwardTime(op, perDev, dev); t > bwd {
				bwd = t
			}
		}
		out.ForwardTime += fwd
		out.BackwardTime += bwd
		out.WeightBytes += op.ParamBytes * m.params.WeightStateMultiplier
		out.ActivationBytesPerSample += op.ActivationBytes / float64(cfg.DataPar)
	}

	// Activations arrive over one point-to-point link per producing stage;
	// transfers from different producers proceed in parallel, so the stage
	// boundary is charged the largest single stream rather than the sum.
	inBytes := m.maxInEdgeBytes(g, cfg.Ops) * float64(cfg.MicroBatch)
	gradBytes := 0.0
	if cfg.DataPar > 1 {
		for _, id := range cfg.Ops.IDs() {
			gradBytes += g.Op(id).ParamBytes
		}
	}
	if cfg.Place.Count > 0 {
		// Placement-aware: the block's in-link level sets the boundary
		// rates, with activations flowing down the hierarchy and gradients
		// back up at possibly different speeds.
		lvl := m.topo.InLinkLevel(cfg.Place.Start)
		if inBytes > 0 {
			out.CommInTime = inBytes/m.topo.LevelDown(lvl) + m.topo.LevelLatency(lvl)
			out.CommBackTime = inBytes/m.topo.LevelUp(lvl) + m.topo.LevelLatency(lvl)
		}
		if cfg.DataPar > 1 {
			// Ring allreduce traffic crosses every internal link of the
			// block in both directions; the widest level's slower direction
			// bounds the rate.
			wide := m.topo.LinkLevel(
				cluster.DeviceID(cfg.Place.Start),
				cluster.DeviceID(cfg.Place.Start+cfg.Place.Count-1))
			arBW := math.Min(m.topo.LevelDown(wide), m.topo.LevelUp(wide))
			d := float64(cfg.DataPar)
			out.AllreducePerIter = 2 * (d - 1) / d * gradBytes / arBW
		}
		return out
	}

	bw := m.topo.IntraNodeBandwidth
	if cfg.InterNode {
		bw = m.topo.InterNodeBandwidth
	}
	if inBytes > 0 {
		out.CommInTime = inBytes/bw + m.topo.LinkLatency
		// Symmetric links: gradients return at the activation rate.
		out.CommBackTime = out.CommInTime
	}
	if cfg.DataPar > 1 {
		arBW := m.topo.IntraNodeBandwidth
		if cfg.InterNodeAllreduce {
			arBW = m.topo.InterNodeBandwidth
		}
		d := float64(cfg.DataPar)
		out.AllreducePerIter = 2 * (d - 1) / d * gradBytes / arBW
	}
	return out
}

// maxInEdgeBytes returns the largest per-sample activation stream entering
// the op set: the maximum OutputBytes over producers outside the set with an
// edge into it.
func (m *Analytic) maxInEdgeBytes(g *graph.Graph, set graph.NodeSet) float64 {
	var max float64
	for v := 0; v < g.Len(); v++ {
		id := graph.NodeID(v)
		if set.Contains(id) {
			continue
		}
		for _, w := range g.Succ(id) {
			if set.Contains(w) {
				if ob := g.Op(id).OutputBytes; ob > max {
					max = ob
				}
				break
			}
		}
	}
	return max
}

// TPS returns the Time-Per-Sample of the stage: the steady-state time the
// stage adds per training sample, the quantity minimized for the bottleneck
// stage in Equation 1. In steady-state 1F1B, activation/gradient transfers
// overlap with the compute of other micro-batches, so the stage is paced by
// whichever is larger.
func (m *Analytic) TPS(g *graph.Graph, cfg StageConfig, miniBatch int) float64 {
	c := m.Stage(g, cfg)
	perMicro := c.ForwardTime + c.BackwardTime
	if comm := c.CommInTime + c.CommBackTime; comm > perMicro {
		perMicro = comm
	}
	tps := perMicro / float64(cfg.MicroBatch)
	if miniBatch > 0 {
		tps += c.AllreducePerIter / float64(miniBatch)
	}
	return tps
}

// StageMemory returns the per-device memory of the stage when it keeps
// inFlightSamples samples' activations resident (Equation 2 left-hand side).
func (m *Analytic) StageMemory(g *graph.Graph, cfg StageConfig, inFlightSamples int) float64 {
	c := m.Stage(g, cfg)
	return c.WeightBytes + c.ActivationBytesPerSample*float64(inFlightSamples)
}

// FitsMemory reports whether the stage satisfies the device memory budget
// with the given number of in-flight samples: the smallest memory of any
// device in the stage's block, or of the whole cluster when the placement
// is not yet known.
func (m *Analytic) FitsMemory(g *graph.Graph, cfg StageConfig, inFlightSamples int) bool {
	budget := m.topo.MinMemory()
	if cfg.Place.Count > 0 {
		budget = m.topo.BlockMinMemory(cfg.Place)
	}
	return m.StageMemory(g, cfg, inFlightSamples) <= budget
}

// MaxTPS returns a safe upper bound for the bottleneck TPS (the MAXTPS of
// Algorithm 1): the whole model as a single stage on one device with
// micro-batch 1, maximized over device classes so the bound covers every
// placement on a heterogeneous cluster. The whole graph has no external
// producer edges, so boundary rates do not enter; on a uniform topology
// this is exactly the single-device bound the placement-oblivious planner
// used.
func (m *Analytic) MaxTPS(g *graph.Graph, miniBatch int) float64 {
	var max float64
	seen := make(map[int]bool)
	for i := 0; i < m.topo.Len(); i++ {
		c := m.topo.ClassOf(cluster.DeviceID(i))
		if seen[c] {
			continue
		}
		seen[c] = true
		cfg := StageConfig{
			Ops: g.AllNodes(), MicroBatch: 1, DataPar: 1, InterNode: true,
			Place: cluster.Block{Start: i, Count: 1},
		}
		if tps := m.TPS(g, cfg, miniBatch) * 2; tps > max {
			max = tps
		}
	}
	if max == 0 { // empty topology: fall back to the oblivious bound
		cfg := StageConfig{Ops: g.AllNodes(), MicroBatch: 1, DataPar: 1, InterNode: true}
		max = m.TPS(g, cfg, miniBatch) * 2
	}
	return max
}
