package costmodel

import (
	"sync"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
)

// Cached memoizes the stage-level queries of an underlying Model. Planner
// searches and the evaluation backends query the same (ops, micro-batch,
// data-parallel, locality) stage configurations over and over — a binary
// search re-probes identical zones hundreds of times, and every evaluator
// replay re-derives the costs the planner already computed. Threading one
// Cached instance through the planner and the evaluators computes each
// distinct stage once per instance instead of once per caller.
//
// The cache is sharded by key hash so the parallel planner's workers and
// concurrent evaluator replays do not serialize on a single lock.
// Per-operator queries (OpForwardTime, OpBackwardTime) are already cheap
// and pass through uncached.
//
// The cache never evicts: entries (and the graphs their keys pin) live as
// long as the Cached value. Scope an instance to a workload — one plan +
// its evaluations, one experiment cell — rather than holding one for the
// lifetime of a long-running service.
type Cached struct {
	inner  Model
	shards [cacheShards]cacheShard
}

const cacheShards = 64

type cacheShard struct {
	mu    sync.RWMutex
	stage map[stageKey]StageCosts
	tps   map[tpsKey]float64
}

// stageKey identifies one Stage query. The operator set enters as its
// 64-bit NodeSet fingerprint plus its cardinality rather than the canonical
// hex string NodeSet.Key builds: the planner's DP evaluates millions of
// stage candidates, and the string construction (an fmt call per bitset
// word) used to dominate the lookup. The planner's zone table interns each
// zone once and primes the set's cached fingerprint, so hot lookups are a
// field read, not a hash. Operator indices are only meaningful within one
// graph, so the key also carries the graph's identity: one Cached model may
// serve evaluations of different graphs over the same topology (e.g. two
// artifacts replayed back to back), and op-index collisions between graphs
// must not alias their costs.
type stageKey struct {
	g                  *graph.Graph
	ops                uint64 // NodeSet.Fingerprint of the op set
	nOps               int    // NodeSet.Len, a cheap extra collision guard
	microBatch         int
	dataPar            int
	interNode          bool
	interNodeAllreduce bool
	placeStart         int
	placeCount         int
}

type tpsKey struct {
	stageKey
	miniBatch int
}

// NewCached wraps inner with a memoizing layer. It is safe for concurrent
// use if inner is.
func NewCached(inner Model) *Cached {
	c := &Cached{inner: inner}
	for i := range c.shards {
		c.shards[i].stage = make(map[stageKey]StageCosts)
		c.shards[i].tps = make(map[tpsKey]float64)
	}
	return c
}

func keyOf(g *graph.Graph, cfg StageConfig) stageKey {
	return stageKey{
		g:                  g,
		ops:                cfg.Ops.Fingerprint(),
		nOps:               cfg.Ops.Len(),
		microBatch:         cfg.MicroBatch,
		dataPar:            cfg.DataPar,
		interNode:          cfg.InterNode,
		interNodeAllreduce: cfg.InterNodeAllreduce,
		placeStart:         cfg.Place.Start,
		placeCount:         cfg.Place.Count,
	}
}

// shardFor spreads the op-set fingerprint across the shards; the other key
// fields vary far less than the op set.
func (c *Cached) shardFor(ops uint64) *cacheShard {
	return &c.shards[(ops*0x9E3779B97F4A7C15)>>58]
}

// Topology returns the underlying model's topology.
func (c *Cached) Topology() *cluster.Topology { return c.inner.Topology() }

// OpForwardTime passes through to the underlying model.
func (c *Cached) OpForwardTime(op graph.Op, perDeviceBatch float64, dev cluster.Device) float64 {
	return c.inner.OpForwardTime(op, perDeviceBatch, dev)
}

// OpBackwardTime passes through to the underlying model.
func (c *Cached) OpBackwardTime(op graph.Op, perDeviceBatch float64, dev cluster.Device) float64 {
	return c.inner.OpBackwardTime(op, perDeviceBatch, dev)
}

// Stage returns the memoized stage costs, computing them on first use. The
// underlying model runs outside the shard lock; concurrent callers may
// duplicate a computation, but the value is deterministic so either write
// is correct.
func (c *Cached) Stage(g *graph.Graph, cfg StageConfig) StageCosts {
	key := keyOf(g, cfg)
	sh := c.shardFor(key.ops)
	sh.mu.RLock()
	costs, ok := sh.stage[key]
	sh.mu.RUnlock()
	if ok {
		return costs
	}
	costs = c.inner.Stage(g, cfg)
	sh.mu.Lock()
	sh.stage[key] = costs
	sh.mu.Unlock()
	return costs
}

// TPS returns the memoized time-per-sample of the stage.
func (c *Cached) TPS(g *graph.Graph, cfg StageConfig, miniBatch int) float64 {
	key := tpsKey{stageKey: keyOf(g, cfg), miniBatch: miniBatch}
	sh := c.shardFor(key.ops)
	sh.mu.RLock()
	tps, ok := sh.tps[key]
	sh.mu.RUnlock()
	if ok {
		return tps
	}
	tps = c.inner.TPS(g, cfg, miniBatch)
	sh.mu.Lock()
	sh.tps[key] = tps
	sh.mu.Unlock()
	return tps
}

// StageMemory derives the stage's memory from the memoized stage costs.
func (c *Cached) StageMemory(g *graph.Graph, cfg StageConfig, inFlightSamples int) float64 {
	costs := c.Stage(g, cfg)
	return costs.WeightBytes + costs.ActivationBytesPerSample*float64(inFlightSamples)
}

// FitsMemory reports whether the stage satisfies the device memory budget:
// the smallest memory in the stage's placement block when one is set, the
// cluster-wide minimum otherwise (mirroring Analytic.FitsMemory, but over
// the memoized stage costs).
func (c *Cached) FitsMemory(g *graph.Graph, cfg StageConfig, inFlightSamples int) bool {
	topo := c.inner.Topology()
	budget := topo.MinMemory()
	if cfg.Place.Count > 0 {
		budget = topo.BlockMinMemory(cfg.Place)
	}
	return c.StageMemory(g, cfg, inFlightSamples) <= budget
}

// MaxTPS passes through to the underlying model (one call per Plan, not
// worth caching).
func (c *Cached) MaxTPS(g *graph.Graph, miniBatch int) float64 {
	return c.inner.MaxTPS(g, miniBatch)
}
