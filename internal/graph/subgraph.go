package graph

import (
	"fmt"
	"strings"
)

// Costs aggregates the per-sample cost of a set of operators. It is the
// quantity planners balance across pipeline stages.
type Costs struct {
	FwdFLOPs        float64
	BwdFLOPs        float64
	ParamBytes      float64
	ActivationBytes float64
}

// Add accumulates the costs of op into c.
func (c *Costs) Add(op Op) {
	c.FwdFLOPs += op.FwdFLOPs
	c.BwdFLOPs += op.BwdFLOPs
	c.ParamBytes += op.ParamBytes
	c.ActivationBytes += op.ActivationBytes
}

// Plus returns the element-wise sum c + d.
func (c Costs) Plus(d Costs) Costs {
	return Costs{
		FwdFLOPs:        c.FwdFLOPs + d.FwdFLOPs,
		BwdFLOPs:        c.BwdFLOPs + d.BwdFLOPs,
		ParamBytes:      c.ParamBytes + d.ParamBytes,
		ActivationBytes: c.ActivationBytes + d.ActivationBytes,
	}
}

// SubgraphCosts sums the costs of all operators in set.
func (g *Graph) SubgraphCosts(set NodeSet) Costs {
	var c Costs
	for _, id := range set.IDs() {
		c.Add(g.ops[id])
	}
	return c
}

// CutBytes returns the per-sample bytes flowing across the directed cut
// from `from` to `to`: the sum of OutputBytes of every producer in `from`
// with at least one edge into `to`. Each producer is counted once per
// consuming stage (the tensor is sent once per consumer stage, matching
// point-to-point activation transfers).
func (g *Graph) CutBytes(from, to NodeSet) float64 {
	var total float64
	for _, v := range from.IDs() {
		sent := false
		for _, w := range g.succ[v] {
			if to.Contains(w) {
				sent = true
				break
			}
		}
		if sent {
			total += g.ops[v].OutputBytes
		}
	}
	return total
}

// InBytes returns the per-sample bytes entering set from outside it.
func (g *Graph) InBytes(set NodeSet) float64 {
	var total float64
	for v := 0; v < g.Len(); v++ {
		id := NodeID(v)
		if set.Contains(id) {
			continue
		}
		sends := false
		for _, w := range g.succ[id] {
			if set.Contains(w) {
				sends = true
				break
			}
		}
		if sends {
			total += g.ops[id].OutputBytes
		}
	}
	return total
}

// OutBytes returns the per-sample bytes leaving set to outside it.
func (g *Graph) OutBytes(set NodeSet) float64 {
	var total float64
	for _, v := range set.IDs() {
		sends := false
		for _, w := range g.succ[v] {
			if !set.Contains(w) {
				sends = true
				break
			}
		}
		if sends {
			total += g.ops[v].OutputBytes
		}
	}
	return total
}

// HasEdgeBetween reports whether any edge runs from a node of `from` to a
// node of `to`.
func (g *Graph) HasEdgeBetween(from, to NodeSet) bool {
	for _, v := range from.IDs() {
		for _, w := range g.succ[v] {
			if to.Contains(w) {
				return true
			}
		}
	}
	return false
}

// AllNodes returns the set of every node in g.
func (g *Graph) AllNodes() NodeSet {
	s := NewNodeSet(g.Len())
	for v := 0; v < g.Len(); v++ {
		s.Add(NodeID(v))
	}
	return s
}

// DOT renders the graph in Graphviz DOT format, for debugging and docs.
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", g.name)
	for _, op := range g.ops {
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", op.ID, op.Name)
	}
	for _, e := range g.edges {
		fmt.Fprintf(&sb, "  n%d -> n%d;\n", e.From, e.To)
	}
	sb.WriteString("}\n")
	return sb.String()
}
