package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNodeSetBasics(t *testing.T) {
	s := NewNodeSet(10)
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(3)
	s.Add(7)
	s.Add(3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(3) || !s.Contains(7) || s.Contains(4) {
		t.Fatal("Contains wrong")
	}
	s.Remove(3)
	if s.Contains(3) || s.Len() != 1 {
		t.Fatal("Remove failed")
	}
	s.Remove(200) // out of range: no-op
	if s.Len() != 1 {
		t.Fatal("Remove out-of-range changed set")
	}
}

func TestNodeSetGrowsBeyond64(t *testing.T) {
	var s NodeSet
	s.Add(130)
	if !s.Contains(130) || s.Contains(129) {
		t.Fatal("growth across words broken")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	ids := s.IDs()
	if len(ids) != 1 || ids[0] != 130 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestNodeSetOps(t *testing.T) {
	a := NodeSetOf(1, 2, 3)
	b := NodeSetOf(3, 4)
	if got := a.Union(b); got.Len() != 4 || !got.Contains(4) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got.Len() != 1 || !got.Contains(3) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got.Len() != 2 || got.Contains(3) {
		t.Errorf("Minus = %v", got)
	}
	if a.Disjoint(b) {
		t.Error("Disjoint(a,b) = true")
	}
	if !a.Disjoint(NodeSetOf(9)) {
		t.Error("Disjoint(a,{9}) = false")
	}
	if !a.Equal(NodeSetOf(3, 2, 1)) {
		t.Error("Equal order-sensitive")
	}
	if a.Equal(b) {
		t.Error("Equal(a,b) = true")
	}
}

func TestNodeSetEqualAcrossCapacities(t *testing.T) {
	a := NewNodeSet(200)
	a.Add(5)
	b := NodeSetOf(5)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal must ignore trailing zero words")
	}
	if a.Key() != b.Key() {
		t.Fatalf("Key mismatch: %q vs %q", a.Key(), b.Key())
	}
}

func TestNodeSetCloneIndependence(t *testing.T) {
	a := NodeSetOf(1)
	c := a.Clone()
	c.Add(2)
	if a.Contains(2) {
		t.Fatal("Clone shares storage")
	}
}

func TestNodeSetString(t *testing.T) {
	if got := NodeSetOf(2, 5).String(); got != "{2,5}" {
		t.Errorf("String = %q", got)
	}
	var empty NodeSet
	if got := empty.String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// Property: for random sets, Union/Intersect/Minus agree with a map-based
// model implementation.
func TestNodeSetQuickAgainstModel(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b NodeSet
		ma, mb := map[int]bool{}, map[int]bool{}
		for _, x := range xs {
			a.Add(NodeID(x))
			ma[int(x)] = true
		}
		for _, y := range ys {
			b.Add(NodeID(y))
			mb[int(y)] = true
		}
		u, in, mi := a.Union(b), a.Intersect(b), a.Minus(b)
		for v := 0; v < 256; v++ {
			id := NodeID(v)
			if u.Contains(id) != (ma[v] || mb[v]) {
				return false
			}
			if in.Contains(id) != (ma[v] && mb[v]) {
				return false
			}
			if mi.Contains(id) != (ma[v] && !mb[v]) {
				return false
			}
		}
		return a.Disjoint(b) == in.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective on sets over a small universe.
func TestNodeSetKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seen := map[string]string{}
	for i := 0; i < 500; i++ {
		var s NodeSet
		for j := 0; j < 10; j++ {
			if rng.Intn(2) == 1 {
				s.Add(NodeID(rng.Intn(100)))
			}
		}
		k := s.Key()
		if prev, ok := seen[k]; ok && prev != s.String() {
			t.Fatalf("Key collision: %q for %s and %s", k, prev, s)
		}
		seen[k] = s.String()
	}
}

// Fingerprint must agree on equal sets regardless of capacity and visit
// history, be invalidated by mutation, and travel with value copies.
func TestNodeSetFingerprint(t *testing.T) {
	a := NewNodeSet(200)
	a.Add(5)
	a.Add(70)
	b := NodeSetOf(70, 5)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("Fingerprint differs across capacities for equal sets")
	}
	var empty NodeSet
	grown := NewNodeSet(300)
	if empty.Fingerprint() != grown.Fingerprint() {
		t.Fatal("empty-set Fingerprint depends on capacity")
	}

	// Mutation invalidates the cache.
	fp := a.Fingerprint()
	a.Add(9)
	if a.Fingerprint() == fp {
		t.Fatal("Add did not change Fingerprint")
	}
	a.Remove(9)
	if a.Fingerprint() != fp {
		t.Fatal("Fingerprint not restored after Remove of the added id")
	}

	// Copies carry the cached value (same content, same fingerprint).
	c := a.Clone()
	if c.Fingerprint() != fp {
		t.Fatal("Clone changed Fingerprint")
	}

	// Derived sets must hash their own content, not the receiver's cache.
	u := a.Union(NodeSetOf(33))
	if u.Fingerprint() == fp {
		t.Fatal("Union reused the receiver's fingerprint")
	}
	m := a.Minus(NodeSetOf(5))
	if m.Fingerprint() == fp || !m.Equal(NodeSetOf(70)) {
		t.Fatalf("Minus fingerprint/content wrong: %v", m)
	}
	only70 := NodeSetOf(70)
	if m.Fingerprint() != only70.Fingerprint() {
		t.Fatal("Minus result disagrees with directly built equal set")
	}
}

// Property: Fingerprint is collision-free across the distinct small sets a
// model graph actually produces (Key injectivity is the ground truth).
func TestNodeSetFingerprintNoCollisionsOnSmallUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	byFP := map[uint64]string{}
	for i := 0; i < 2000; i++ {
		var s NodeSet
		for j := 0; j < 12; j++ {
			if rng.Intn(2) == 1 {
				s.Add(NodeID(rng.Intn(200)))
			}
		}
		k, fp := s.Key(), s.Fingerprint()
		if prev, ok := byFP[fp]; ok && prev != k {
			t.Fatalf("fingerprint collision: %x for %q and %q", fp, prev, k)
		}
		byFP[fp] = k
	}
}

func TestInducedConvex(t *testing.T) {
	g, a, l, r, d := diamond(t)
	cases := []struct {
		set  NodeSet
		want bool
	}{
		{NodeSetOf(a), true},
		{NodeSetOf(a, l), true},
		{NodeSetOf(a, l, r), true},
		{NodeSetOf(l, r), true},
		{NodeSetOf(a, d), false}, // path a->b->d leaves and re-enters
		{NodeSetOf(l, d), true},
		{g.AllNodes(), true},
	}
	for _, c := range cases {
		if got := g.InducedConvex(c.set); got != c.want {
			t.Errorf("InducedConvex(%v) = %v, want %v", c.set, got, c.want)
		}
	}
}

func TestInducedConvexLongPath(t *testing.T) {
	// a -> b -> c -> d: {a, c} is not convex, {b, c} is.
	b := NewBuilder("path")
	var ids []NodeID
	for i := 0; i < 4; i++ {
		ids = append(ids, b.AddOp(Op{Kind: OpLinear}))
	}
	b.Chain(ids...)
	g := b.MustBuild()
	if g.InducedConvex(NodeSetOf(ids[0], ids[2])) {
		t.Error("non-contiguous chain subset reported convex")
	}
	if !g.InducedConvex(NodeSetOf(ids[1], ids[2])) {
		t.Error("contiguous chain subset reported non-convex")
	}
}

func TestReachabilityAndDownsets(t *testing.T) {
	g, a, l, r, d := diamond(t)
	reach := g.ReachableFrom(NodeSetOf(l))
	if !reach.Equal(NodeSetOf(l, d)) {
		t.Errorf("ReachableFrom(b) = %v", reach)
	}
	anc := g.AncestorsOf(NodeSetOf(d))
	if anc.Len() != 4 {
		t.Errorf("AncestorsOf(d) = %v", anc)
	}
	if !g.IsDownset(NodeSetOf(a, l)) {
		t.Error("{a,b} should be a downset")
	}
	if g.IsDownset(NodeSetOf(l)) {
		t.Error("{b} should not be a downset")
	}
	if !g.IsDownset(NodeSetOf(a, l, r, d)) {
		t.Error("full set should be a downset")
	}
}

// Property: every downset is convex... is NOT generally true; but every
// convex set that contains all ancestors of its members is a downset.
// Here we check the cheap invariant: the intersection of reachability and
// ancestry of a single node is convex (it is an interval of the DAG).
func TestIntervalConvexProperty(t *testing.T) {
	g := randomDAG(t, 24, 0.2, 7)
	for v := 0; v < g.Len(); v++ {
		for w := 0; w < g.Len(); w++ {
			iv := g.ReachableFrom(NodeSetOf(NodeID(v))).Intersect(g.AncestorsOf(NodeSetOf(NodeID(w))))
			if iv.Empty() {
				continue
			}
			if !g.InducedConvex(iv) {
				t.Fatalf("interval [%d..%d] = %v not convex", v, w, iv)
			}
		}
	}
}

// randomDAG builds a random DAG with edges only from lower to higher ids.
func randomDAG(t testing.TB, n int, p float64, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("rand")
	var ids []NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, b.AddOp(Op{Kind: OpLinear, FwdFLOPs: 1, OutputBytes: 1}))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.Connect(ids[i], ids[j])
			}
		}
	}
	// Make sure the graph is connected enough: chain the isolated nodes.
	g, err := b.Build()
	if err != nil {
		t.Fatalf("randomDAG: %v", err)
	}
	return g
}

func TestSortedIDs(t *testing.T) {
	in := []NodeID{5, 1, 3}
	out := SortedIDs(in)
	if out[0] != 1 || out[1] != 3 || out[2] != 5 {
		t.Errorf("SortedIDs = %v", out)
	}
	if in[0] != 5 {
		t.Error("SortedIDs mutated input")
	}
}

// Property: InducedConvex agrees with the brute-force definition (no path
// between two members leaves and re-enters the set) on random DAGs.
func TestInducedConvexAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomDAG(t, 10, 0.3, seed)
		// Brute force: for every ordered pair (u,v) in S, DFS over paths
		// u→v and check whether any intermediate node is outside S.
		brute := func(set NodeSet) bool {
			ids := set.IDs()
			for _, u := range ids {
				// Nodes reachable from u via at least one edge with all
				// intermediates outside... simpler: compute nodes
				// reachable from u leaving S, then check none of them
				// re-enters S.
				outside := NewNodeSet(g.Len())
				stack := []NodeID{}
				for _, w := range g.Succ(u) {
					if !set.Contains(w) && !outside.Contains(w) {
						outside.Add(w)
						stack = append(stack, w)
					}
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, w := range g.Succ(x) {
						if set.Contains(w) {
							return false // left S and re-entered
						}
						if !outside.Contains(w) {
							outside.Add(w)
							stack = append(stack, w)
						}
					}
				}
			}
			return true
		}
		rng := rand.New(rand.NewSource(seed + 100))
		for trial := 0; trial < 200; trial++ {
			var set NodeSet
			for v := 0; v < g.Len(); v++ {
				if rng.Intn(3) == 0 {
					set.Add(NodeID(v))
				}
			}
			if set.Empty() {
				continue
			}
			if got, want := g.InducedConvex(set), brute(set); got != want {
				t.Fatalf("seed %d set %v: InducedConvex=%v brute=%v", seed, set, got, want)
			}
		}
	}
}
