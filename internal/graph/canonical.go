package graph

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Canonical renders the graph as deterministic JSON: name, every
// operator with its full cost annotations in id order, and every edge
// in insertion order. Two graphs are byte-identical under Canonical iff
// they describe the same computation with the same costs, which is the
// replay contract of the synthetic-model generator: `graphpipe synth`
// prints the hash of these bytes, and the conformance harness compares
// them to prove a regenerated model matches the one that failed.
//
// Float costs are encoded by encoding/json's shortest round-trip form,
// so the bytes are stable across runs and platforms for bit-identical
// cost values.
func (g *Graph) Canonical() []byte {
	type opJSON struct {
		ID       int     `json:"id"`
		Name     string  `json:"name"`
		Kind     string  `json:"kind"`
		FwdFLOPs float64 `json:"fwd_flops,omitempty"`
		BwdFLOPs float64 `json:"bwd_flops,omitempty"`
		Params   float64 `json:"param_bytes,omitempty"`
		Act      float64 `json:"activation_bytes,omitempty"`
		Out      float64 `json:"output_bytes,omitempty"`
	}
	doc := struct {
		Name  string   `json:"name"`
		Ops   []opJSON `json:"ops"`
		Edges [][2]int `json:"edges"`
	}{Name: g.name}
	for _, op := range g.ops {
		doc.Ops = append(doc.Ops, opJSON{
			ID: int(op.ID), Name: op.Name, Kind: op.Kind.String(),
			FwdFLOPs: op.FwdFLOPs, BwdFLOPs: op.BwdFLOPs,
			Params: op.ParamBytes, Act: op.ActivationBytes, Out: op.OutputBytes,
		})
	}
	for _, e := range g.edges {
		doc.Edges = append(doc.Edges, [2]int{int(e.From), int(e.To)})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// Only plain structs and floats are marshalled; a failure is a
		// programming bug, not an input condition.
		panic(fmt.Sprintf("graph: canonical encoding failed: %v", err))
	}
	return append(data, '\n')
}

// CanonicalHash returns the hex SHA-256 of Canonical — the compact
// content identity of a computation graph.
func (g *Graph) CanonicalHash() string {
	sum := sha256.Sum256(g.Canonical())
	return hex.EncodeToString(sum[:])
}
