// Package graph defines the computation-graph representation shared by all
// of GraphPipe's planners, schedulers, and runtimes.
//
// A computation graph G_C = (V_C, E_C) is a directed acyclic graph whose
// nodes are DNN operators annotated with per-sample compute and memory
// costs, and whose edges carry per-sample tensor sizes. All planners
// (GraphPipe's series-parallel DP as well as the PipeDream and Piper
// baselines) consume the same Graph type, so strategy quality differences
// are attributable to the planning algorithms alone.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies an operator within a Graph. IDs are dense, starting at
// zero, so planners can use them to index slices and bitsets.
type NodeID int

// OpKind classifies an operator. The cost model uses the kind to decide
// whether an operator is compute-bound (e.g. matmul-heavy attention) or
// memory-bound (e.g. embedding lookups, concatenation).
type OpKind int

// Operator kinds used by the model zoo.
const (
	OpInput OpKind = iota
	OpEmbedding
	OpLinear
	OpAttention
	OpLayerNorm
	OpConcat
	OpInteraction
	OpOutput
	OpElementwise
)

var opKindNames = [...]string{
	OpInput:       "input",
	OpEmbedding:   "embedding",
	OpLinear:      "linear",
	OpAttention:   "attention",
	OpLayerNorm:   "layernorm",
	OpConcat:      "concat",
	OpInteraction: "interaction",
	OpOutput:      "output",
	OpElementwise: "elementwise",
}

// String returns the lower-case name of the operator kind.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("opkind(%d)", int(k))
}

// Op is a single operator in the computation graph. All sizes are
// per-sample: the cost model scales them by the micro-batch size. Costs are
// stored rather than recomputed so that model builders can encode the exact
// hyperparameters from the paper's Appendix A.2.
type Op struct {
	ID   NodeID
	Name string
	Kind OpKind

	// FwdFLOPs is the number of floating-point operations needed by the
	// forward pass for one sample. The backward pass is modeled as
	// BwdFLOPs; for most trainable ops it is ~2x the forward cost.
	FwdFLOPs float64
	BwdFLOPs float64

	// ParamBytes is the total size of trainable parameters. Parameters are
	// replicated across data-parallel replicas of a stage.
	ParamBytes float64

	// ActivationBytes is the size of activations that must be retained per
	// sample between an operator's forward and backward pass.
	ActivationBytes float64

	// OutputBytes is the size of the operator's output tensor per sample;
	// it is the amount of data communicated if a consumer is placed in a
	// different pipeline stage.
	OutputBytes float64
}

// Edge is a directed data dependency between two operators.
type Edge struct {
	From, To NodeID
}

// Graph is an immutable-after-Build computation graph.
type Graph struct {
	name  string
	ops   []Op
	succ  [][]NodeID
	pred  [][]NodeID
	edges []Edge

	topo    []NodeID // cached topological order
	topoPos []int    // position of each node in topo
}

// Builder incrementally constructs a Graph. It is not safe for concurrent
// use.
type Builder struct {
	name  string
	ops   []Op
	edges []Edge
	seen  map[string]NodeID
}

// NewBuilder returns a Builder for a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, seen: make(map[string]NodeID)}
}

// AddOp appends an operator and returns its assigned NodeID. Operator names
// must be unique within a graph; AddOp panics on a duplicate name because
// that is always a model-builder bug.
func (b *Builder) AddOp(op Op) NodeID {
	if op.Name == "" {
		op.Name = fmt.Sprintf("%s_%d", op.Kind, len(b.ops))
	}
	if _, dup := b.seen[op.Name]; dup {
		panic(fmt.Sprintf("graph: duplicate op name %q", op.Name))
	}
	id := NodeID(len(b.ops))
	op.ID = id
	b.ops = append(b.ops, op)
	b.seen[op.Name] = id
	return id
}

// Connect adds a directed edge from -> to.
func (b *Builder) Connect(from, to NodeID) {
	b.edges = append(b.edges, Edge{From: from, To: to})
}

// Chain connects ids sequentially: ids[0] -> ids[1] -> ... It is a
// convenience for the model zoo's layer stacks.
func (b *Builder) Chain(ids ...NodeID) {
	for i := 1; i < len(ids); i++ {
		b.Connect(ids[i-1], ids[i])
	}
}

// Build validates the accumulated ops and edges and returns the Graph.
// It returns an error if an edge references an unknown node, a duplicate
// edge exists, or the graph contains a cycle.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.ops)
	if n == 0 {
		return nil, errors.New("graph: empty graph")
	}
	g := &Graph{
		name: b.name,
		ops:  append([]Op(nil), b.ops...),
		succ: make([][]NodeID, n),
		pred: make([][]NodeID, n),
	}
	seen := make(map[Edge]bool, len(b.edges))
	for _, e := range b.edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return nil, fmt.Errorf("graph: edge %v references unknown node", e)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("graph: self-loop on node %d", e.From)
		}
		if seen[e] {
			return nil, fmt.Errorf("graph: duplicate edge %v", e)
		}
		seen[e] = true
		g.edges = append(g.edges, e)
		g.succ[e.From] = append(g.succ[e.From], e.To)
		g.pred[e.To] = append(g.pred[e.To], e.From)
	}
	topo, err := topoSort(n, g.succ, g.pred)
	if err != nil {
		return nil, err
	}
	g.topo = topo
	g.topoPos = make([]int, n)
	for i, v := range topo {
		g.topoPos[v] = i
	}
	return g, nil
}

// MustBuild is Build but panics on error; used by the model zoo whose
// construction errors are programming bugs.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func topoSort(n int, succ, pred [][]NodeID) ([]NodeID, error) {
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(pred[v])
	}
	// Kahn's algorithm with a sorted frontier for deterministic order.
	frontier := make([]NodeID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			frontier = append(frontier, NodeID(v))
		}
	}
	order := make([]NodeID, 0, n)
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		v := frontier[0]
		frontier = frontier[1:]
		order = append(order, v)
		for _, w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				frontier = append(frontier, w)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("graph: cycle detected")
	}
	return order, nil
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// Len returns the number of operators.
func (g *Graph) Len() int { return len(g.ops) }

// Op returns the operator with the given id.
func (g *Graph) Op(id NodeID) Op { return g.ops[id] }

// Ops returns all operators in id order. The returned slice must not be
// modified.
func (g *Graph) Ops() []Op { return g.ops }

// Succ returns the successors of id. The returned slice must not be
// modified.
func (g *Graph) Succ(id NodeID) []NodeID { return g.succ[id] }

// Pred returns the predecessors of id. The returned slice must not be
// modified.
func (g *Graph) Pred(id NodeID) []NodeID { return g.pred[id] }

// Edges returns all edges. The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Topo returns a deterministic topological order of all nodes. The returned
// slice must not be modified.
func (g *Graph) Topo() []NodeID { return g.topo }

// TopoPos returns the position of id in the topological order returned by
// Topo.
func (g *Graph) TopoPos(id NodeID) int { return g.topoPos[id] }

// Sources returns all nodes with no predecessors, in id order.
func (g *Graph) Sources() []NodeID {
	var out []NodeID
	for v := range g.ops {
		if len(g.pred[v]) == 0 {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// Sinks returns all nodes with no successors, in id order.
func (g *Graph) Sinks() []NodeID {
	var out []NodeID
	for v := range g.ops {
		if len(g.succ[v]) == 0 {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// TotalFwdFLOPs sums the forward FLOPs of all operators (per sample).
func (g *Graph) TotalFwdFLOPs() float64 {
	var s float64
	for _, op := range g.ops {
		s += op.FwdFLOPs
	}
	return s
}

// TotalParamBytes sums parameter bytes across all operators.
func (g *Graph) TotalParamBytes() float64 {
	var s float64
	for _, op := range g.ops {
		s += op.ParamBytes
	}
	return s
}

// String renders a compact multi-line description, useful in tests.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q: %d ops, %d edges\n", g.name, len(g.ops), len(g.edges))
	for _, v := range g.topo {
		op := g.ops[v]
		fmt.Fprintf(&sb, "  [%d] %s (%s) ->", v, op.Name, op.Kind)
		for _, w := range g.succ[v] {
			fmt.Fprintf(&sb, " %d", w)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
