package graph

import (
	"strings"
	"testing"
)

// diamond builds the 4-node graph a -> {b, c} -> d.
func diamond(t testing.TB) (*Graph, NodeID, NodeID, NodeID, NodeID) {
	t.Helper()
	b := NewBuilder("diamond")
	a := b.AddOp(Op{Name: "a", Kind: OpInput, OutputBytes: 8})
	l := b.AddOp(Op{Name: "b", Kind: OpLinear, FwdFLOPs: 100, BwdFLOPs: 200, ParamBytes: 40, ActivationBytes: 16, OutputBytes: 8})
	r := b.AddOp(Op{Name: "c", Kind: OpLinear, FwdFLOPs: 300, BwdFLOPs: 600, ParamBytes: 80, ActivationBytes: 32, OutputBytes: 8})
	d := b.AddOp(Op{Name: "d", Kind: OpConcat, FwdFLOPs: 10, BwdFLOPs: 10, OutputBytes: 16})
	b.Connect(a, l)
	b.Connect(a, r)
	b.Connect(l, d)
	b.Connect(r, d)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, a, l, r, d
}

func TestBuildBasics(t *testing.T) {
	g, a, l, r, d := diamond(t)
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	if got := g.Op(l).Name; got != "b" {
		t.Errorf("Op(b).Name = %q", got)
	}
	if len(g.Succ(a)) != 2 || len(g.Pred(d)) != 2 {
		t.Errorf("fanout/fanin wrong: succ(a)=%v pred(d)=%v", g.Succ(a), g.Pred(d))
	}
	if srcs := g.Sources(); len(srcs) != 1 || srcs[0] != a {
		t.Errorf("Sources = %v, want [%d]", srcs, a)
	}
	if sinks := g.Sinks(); len(sinks) != 1 || sinks[0] != d {
		t.Errorf("Sinks = %v, want [%d]", sinks, d)
	}
	_ = r
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g, _, _, _, _ := diamond(t)
	pos := make(map[NodeID]int)
	for i, v := range g.Topo() {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %v violates topo order", e)
		}
	}
	for v := 0; v < g.Len(); v++ {
		if g.TopoPos(NodeID(v)) != pos[NodeID(v)] {
			t.Errorf("TopoPos(%d) mismatch", v)
		}
	}
}

func TestBuildRejectsCycle(t *testing.T) {
	b := NewBuilder("cycle")
	x := b.AddOp(Op{Name: "x"})
	y := b.AddOp(Op{Name: "y"})
	b.Connect(x, y)
	b.Connect(y, x)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a cyclic graph")
	}
}

func TestBuildRejectsSelfLoop(t *testing.T) {
	b := NewBuilder("self")
	x := b.AddOp(Op{Name: "x"})
	b.Connect(x, x)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a self-loop")
	}
}

func TestBuildRejectsDuplicateEdge(t *testing.T) {
	b := NewBuilder("dup")
	x := b.AddOp(Op{Name: "x"})
	y := b.AddOp(Op{Name: "y"})
	b.Connect(x, y)
	b.Connect(x, y)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a duplicate edge")
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Fatal("Build accepted an empty graph")
	}
}

func TestBuildRejectsBadEdge(t *testing.T) {
	b := NewBuilder("bad")
	x := b.AddOp(Op{Name: "x"})
	b.Connect(x, NodeID(99))
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted an edge to an unknown node")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddOp did not panic on duplicate name")
		}
	}()
	b := NewBuilder("dupname")
	b.AddOp(Op{Name: "x"})
	b.AddOp(Op{Name: "x"})
}

func TestChain(t *testing.T) {
	b := NewBuilder("chain")
	var ids []NodeID
	for i := 0; i < 5; i++ {
		ids = append(ids, b.AddOp(Op{Kind: OpLinear}))
	}
	b.Chain(ids...)
	g := b.MustBuild()
	if len(g.Edges()) != 4 {
		t.Fatalf("Chain produced %d edges, want 4", len(g.Edges()))
	}
	for i := 0; i+1 < len(ids); i++ {
		found := false
		for _, w := range g.Succ(ids[i]) {
			if w == ids[i+1] {
				found = true
			}
		}
		if !found {
			t.Errorf("missing chain edge %d -> %d", ids[i], ids[i+1])
		}
	}
}

func TestAggregateCosts(t *testing.T) {
	g, _, l, r, _ := diamond(t)
	if got := g.TotalFwdFLOPs(); got != 410 {
		t.Errorf("TotalFwdFLOPs = %v, want 410", got)
	}
	if got := g.TotalParamBytes(); got != 120 {
		t.Errorf("TotalParamBytes = %v, want 120", got)
	}
	c := g.SubgraphCosts(NodeSetOf(l, r))
	want := Costs{FwdFLOPs: 400, BwdFLOPs: 800, ParamBytes: 120, ActivationBytes: 48}
	if c != want {
		t.Errorf("SubgraphCosts = %+v, want %+v", c, want)
	}
	sum := c.Plus(Costs{FwdFLOPs: 1})
	if sum.FwdFLOPs != 401 {
		t.Errorf("Plus: %+v", sum)
	}
}

func TestCutBytes(t *testing.T) {
	g, a, l, r, d := diamond(t)
	// a sends one 8-byte output that feeds both branches: counted once for
	// the cut a -> {b,c}.
	if got := g.CutBytes(NodeSetOf(a), NodeSetOf(l, r)); got != 8 {
		t.Errorf("CutBytes(a, {b,c}) = %v, want 8", got)
	}
	// Both branches feed d.
	if got := g.CutBytes(NodeSetOf(l, r), NodeSetOf(d)); got != 16 {
		t.Errorf("CutBytes({b,c}, d) = %v, want 16", got)
	}
	if got := g.InBytes(NodeSetOf(d)); got != 16 {
		t.Errorf("InBytes(d) = %v, want 16", got)
	}
	if got := g.OutBytes(NodeSetOf(a)); got != 8 {
		t.Errorf("OutBytes(a) = %v, want 8", got)
	}
	if !g.HasEdgeBetween(NodeSetOf(a), NodeSetOf(l)) {
		t.Error("HasEdgeBetween(a, b) = false")
	}
	if g.HasEdgeBetween(NodeSetOf(l), NodeSetOf(r)) {
		t.Error("HasEdgeBetween(b, c) = true, want false")
	}
}

func TestStringAndDOT(t *testing.T) {
	g, _, _, _, _ := diamond(t)
	s := g.String()
	if !strings.Contains(s, "diamond") || !strings.Contains(s, "4 ops") {
		t.Errorf("String missing header: %q", s)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph", "n0 -> n1", "n2 -> n3"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpLinear.String() != "linear" {
		t.Errorf("OpLinear.String() = %q", OpLinear.String())
	}
	if got := OpKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind String() = %q", got)
	}
}
