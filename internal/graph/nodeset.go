package graph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// NodeSet is a bitset over NodeIDs. Planners use NodeSets as DP memoization
// keys (via Key or the cheaper Fingerprint) and to represent pipeline-stage
// membership. The zero value is an empty set usable without initialization
// for graphs of up to 64 nodes; Add grows the backing storage on demand.
type NodeSet struct {
	words []uint64
	// fp caches Fingerprint (0 = not yet computed). Mutating methods reset
	// it; copies of a set carry the cache with them, so interning layers
	// (the planner's zone table, spgraph's split memo) hash each set once
	// and every downstream cost-cache lookup reuses the value.
	fp uint64
}

// NewNodeSet returns a set sized for n nodes.
func NewNodeSet(n int) NodeSet {
	return NodeSet{words: make([]uint64, (n+63)/64)}
}

// NodeSetOf builds a set containing exactly ids.
func NodeSetOf(ids ...NodeID) NodeSet {
	var s NodeSet
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func (s *NodeSet) grow(id NodeID) {
	need := int(id)/64 + 1
	for len(s.words) < need {
		s.words = append(s.words, 0)
	}
}

// Add inserts id into the set.
func (s *NodeSet) Add(id NodeID) {
	s.grow(id)
	s.words[id/64] |= 1 << (uint(id) % 64)
	s.fp = 0
}

// Remove deletes id from the set if present.
func (s *NodeSet) Remove(id NodeID) {
	if int(id)/64 < len(s.words) {
		s.words[id/64] &^= 1 << (uint(id) % 64)
		s.fp = 0
	}
}

// Contains reports whether id is in the set.
func (s NodeSet) Contains(id NodeID) bool {
	w := int(id) / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(id)%64)) != 0
}

// Len returns the number of elements.
func (s NodeSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s NodeSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy (the cached fingerprint carries over:
// the content is identical).
func (s NodeSet) Clone() NodeSet {
	return NodeSet{words: append([]uint64(nil), s.words...), fp: s.fp}
}

// Union returns s ∪ t as a new set.
func (s NodeSet) Union(t NodeSet) NodeSet {
	out := s.Clone()
	out.fp = 0
	for i, w := range t.words {
		if i < len(out.words) {
			out.words[i] |= w
		} else {
			out.words = append(out.words, w)
		}
	}
	return out
}

// Intersect returns s ∩ t as a new set.
func (s NodeSet) Intersect(t NodeSet) NodeSet {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	out := NodeSet{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.words[i] = s.words[i] & t.words[i]
	}
	return out
}

// Minus returns s \ t as a new set.
func (s NodeSet) Minus(t NodeSet) NodeSet {
	out := s.Clone()
	out.fp = 0
	for i := range out.words {
		if i < len(t.words) {
			out.words[i] &^= t.words[i]
		}
	}
	return out
}

// Equal reports whether s and t contain the same elements.
func (s NodeSet) Equal(t NodeSet) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(t.words) {
			b = t.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Disjoint reports whether s ∩ t is empty.
func (s NodeSet) Disjoint(t NodeSet) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return false
		}
	}
	return true
}

// IDs returns the elements in increasing order.
func (s NodeSet) IDs() []NodeID {
	var out []NodeID
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, NodeID(wi*64+b))
			w &^= 1 << uint(b)
		}
	}
	return out
}

// Key returns a compact string usable as a map key. Trailing zero words are
// ignored so equal sets with different capacities share a key.
func (s NodeSet) Key() string {
	last := len(s.words)
	for last > 0 && s.words[last-1] == 0 {
		last--
	}
	var sb strings.Builder
	for i := 0; i < last; i++ {
		fmt.Fprintf(&sb, "%016x", s.words[i])
	}
	return sb.String()
}

// Fingerprint returns a 64-bit content hash of the set, the allocation-free
// replacement for Key on hot map paths (planner cost caches): equal sets
// have equal fingerprints regardless of backing capacity, and distinct sets
// collide with probability ~n²/2⁶⁴ for n distinct sets — negligible against
// the few thousand zones of a model graph (callers that cannot tolerate any
// collision, like zone interning, still use Key). The value is cached on
// first call and invalidated by mutation, so sets interned once are hashed
// once; value copies carry the cache.
func (s *NodeSet) Fingerprint() uint64 {
	if s.fp != 0 {
		return s.fp
	}
	last := len(s.words)
	for last > 0 && s.words[last-1] == 0 {
		last--
	}
	// splitmix64-style mixing of each word with its index; trailing zero
	// words are excluded so equal sets with different capacities agree.
	h := uint64(last+1) * 0x9E3779B97F4A7C15
	for i := 0; i < last; i++ {
		x := s.words[i] + uint64(i)*0xBF58476D1CE4E5B9 + 0x9E3779B97F4A7C15
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		h = (h ^ x) * 0x9E3779B97F4A7C15
	}
	if h == 0 {
		h = 0x9E3779B97F4A7C15 // keep 0 as the "not computed" sentinel
	}
	s.fp = h
	return h
}

// String renders the set as {a,b,c}.
func (s NodeSet) String() string {
	ids := s.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(int(id))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// --- Graph algorithms over node sets ---

// InducedConvex reports whether the subgraph induced by set is convex in g:
// for every pair u, v in set, every directed path from u to v stays inside
// set. Convexity is condition C1 of a valid GPP strategy (§3): a pipeline
// stage must not be re-entered by data that left it.
func (g *Graph) InducedConvex(set NodeSet) bool {
	// A set S is convex iff no path leaves S and later re-enters it.
	// Walk nodes outside S in topological order, marking those reachable
	// from S; if any such node has an edge back into S, S is not convex.
	reachesFromS := make([]bool, g.Len())
	for _, v := range g.topo {
		inS := set.Contains(v)
		tainted := false
		for _, p := range g.pred[v] {
			if set.Contains(p) || reachesFromS[p] {
				tainted = true
				break
			}
		}
		if !inS {
			reachesFromS[v] = tainted
			continue
		}
		// v is in S: it must not be reachable from S via outside nodes.
		for _, p := range g.pred[v] {
			if !set.Contains(p) && reachesFromS[p] {
				return false
			}
		}
	}
	return true
}

// ReachableFrom returns the set of nodes reachable from any node of start
// (inclusive).
func (g *Graph) ReachableFrom(start NodeSet) NodeSet {
	out := start.Clone()
	out.grow(NodeID(g.Len() - 1))
	for _, v := range g.topo {
		if out.Contains(v) {
			for _, w := range g.succ[v] {
				out.Add(w)
			}
		}
	}
	return out
}

// AncestorsOf returns the set of nodes that can reach any node of start
// (inclusive).
func (g *Graph) AncestorsOf(start NodeSet) NodeSet {
	out := start.Clone()
	out.grow(NodeID(g.Len() - 1))
	for i := len(g.topo) - 1; i >= 0; i-- {
		v := g.topo[i]
		if out.Contains(v) {
			for _, p := range g.pred[v] {
				out.Add(p)
			}
		}
	}
	return out
}

// IsDownset reports whether set is closed under predecessors: if v ∈ set
// then every predecessor of v is in set. Downsets are the DP states of the
// Piper baseline.
func (g *Graph) IsDownset(set NodeSet) bool {
	for _, v := range set.IDs() {
		for _, p := range g.pred[v] {
			if !set.Contains(p) {
				return false
			}
		}
	}
	return true
}

// SortedIDs returns ids sorted ascending (a convenience for deterministic
// iteration in planners).
func SortedIDs(ids []NodeID) []NodeID {
	out := append([]NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
