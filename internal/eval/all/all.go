// Package all registers every built-in evaluation backend with the eval
// registry. Import it for side effects:
//
//	import _ "graphpipe/internal/eval/all"
package all

import (
	_ "graphpipe/internal/runtime" // registers the "runtime" backend
	_ "graphpipe/internal/sim"     // registers the "sim" backend
)
