// Package eval is the shared evaluation layer over the two execution
// substrates in this repository: the sequential discrete-event simulator
// (package sim) and the concurrent message-passing runtime (package
// runtime). The paper validates every plan twice — analytically with the
// §6 cost model and end-to-end on the distributed runtime of §7 — and
// before this layer existed the two code paths duplicated dependency
// tracking, cost-model plumbing, and result reporting.
//
// An Evaluator executes one synchronous training iteration of a strategy
// and returns a Report: iteration time, throughput, per-stage
// compute/idle/peak-memory, and the full task timeline. Backends are
// resolved by name through a registry mirroring internal/planner, so a
// plan produced once (and persisted as a strategy.Artifact) can be
// re-evaluated on any backend: commands, the experiment harness, and the
// benchmarks all go through eval.Get.
//
// Both built-in backends report through the shared Assemble helper, which
// derives every Report field from the backend's raw task timeline and the
// cost model. Because the two engines compute identical task times (the
// virtual-clock protocol of package runtime reproduces the earliest-finish
// execution that package sim computes greedily), their Reports are
// identical field-for-field — a property the parity tests pin, so each
// backend checks the other.
package eval

import (
	"fmt"
	"math"
	"sort"
	"time"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/schedule"
	"graphpipe/internal/strategy"
)

// TaskRecord is one executed task in the timeline.
type TaskRecord struct {
	Stage      strategy.StageID
	Task       schedule.Task
	Start, End float64
}

// StageReport aggregates per-stage results over one iteration.
type StageReport struct {
	// ComputeTime is the stage's total busy time.
	ComputeTime float64
	// IdleTime is the stage's bubble time: the compute span minus busy
	// time.
	IdleTime float64
	// PeakMemory is the per-device high-water mark: weights + retained
	// activations at the worst instant.
	PeakMemory float64
	// PeakInFlightSamples is the observed maximum of forwarded-but-not-
	// backwarded samples.
	PeakInFlightSamples int
}

// Report is the outcome of evaluating one training iteration of a
// strategy on a backend. All times are virtual seconds.
type Report struct {
	// Backend is the registry name of the evaluator that produced the
	// report.
	Backend string
	// Planner echoes the strategy's planner name.
	Planner string
	// IterationTime is the wall-clock span from the first task start to
	// the end of the gradient synchronization.
	IterationTime float64
	// Throughput is MiniBatch / IterationTime, the paper's reported
	// samples-per-second metric.
	Throughput float64
	// ComputeSpan is the time until the last backward task finishes
	// (excludes the final allreduce).
	ComputeSpan float64
	// AllreduceTime is the largest per-stage gradient synchronization
	// cost, paid once per iteration after the last backward pass.
	AllreduceTime float64
	Stages        []StageReport
	// Timeline holds every executed task in the canonical order: by start
	// time, then stage, then task kind and index.
	Timeline []TaskRecord
}

// PeakMemory returns the worst per-device memory across stages.
func (r *Report) PeakMemory() float64 {
	var peak float64
	for i := range r.Stages {
		if r.Stages[i].PeakMemory > peak {
			peak = r.Stages[i].PeakMemory
		}
	}
	return peak
}

// MaxInFlightSamples returns the largest observed per-stage in-flight
// sample count.
func (r *Report) MaxInFlightSamples() int {
	max := 0
	for i := range r.Stages {
		if r.Stages[i].PeakInFlightSamples > max {
			max = r.Stages[i].PeakInFlightSamples
		}
	}
	return max
}

// Options tunes an evaluation. The zero value selects every backend's
// defaults.
type Options struct {
	// CostModel overrides the cost model; nil selects
	// costmodel.NewDefault over the topology passed to Evaluate. It must
	// be built on that same topology.
	CostModel costmodel.Model
	// Timeout bounds the wall-clock execution time of concurrent backends
	// (the runtime backend's deadlock guard). Backends without real
	// concurrency ignore it.
	Timeout time.Duration
}

// ResolveModel resolves the options' cost model against the evaluation
// topology: the override if set, the memoizing default otherwise. A model
// built over a differently-sized cluster is rejected — the strategy's
// device IDs would index outside the model's device table. (Same-size
// topologies with different link parameters are indistinguishable here
// and remain the caller's responsibility.)
func ResolveModel(topo *cluster.Topology, opts Options) (costmodel.Model, error) {
	if opts.CostModel == nil {
		return costmodel.NewDefault(topo), nil
	}
	if mt := opts.CostModel.Topology(); mt.Len() != topo.Len() {
		return nil, fmt.Errorf("eval: cost model topology has %d devices, evaluation topology has %d",
			mt.Len(), topo.Len())
	}
	return opts.CostModel, nil
}

// Evaluator executes strategies on one backend. Implementations must be
// safe for concurrent Evaluate calls: the experiment harness fans grids
// out across goroutines.
type Evaluator interface {
	// Name returns the registry key (e.g. "sim").
	Name() string
	// Evaluate runs one synchronous training iteration of st — which must
	// be valid for g and topo (strategy.Validate, C1–C4) — and reports
	// the result.
	Evaluate(g *graph.Graph, topo *cluster.Topology, st *strategy.Strategy, opts Options) (*Report, error)
}

// Assemble derives a Report from a backend's raw task timeline. Both
// built-in backends report through it, so every derived quantity —
// per-stage busy/idle time, peak memory from in-flight replay, the
// iteration span including the gradient allreduce — is computed by exactly
// one piece of code and backend Reports differ only if the timelines do.
//
// The timeline may arrive in any order; Assemble canonicalizes it.
func Assemble(g *graph.Graph, model costmodel.Model, st *strategy.Strategy, backend string, timeline []TaskRecord) *Report {
	topo := model.Topology()
	rep := &Report{
		Backend:  backend,
		Planner:  st.Planner,
		Stages:   make([]StageReport, len(st.Stages)),
		Timeline: canonicalize(timeline),
	}

	firstStart, computeSpan := math.Inf(1), 0.0
	for _, tr := range rep.Timeline {
		if tr.Start < firstStart {
			firstStart = tr.Start
		}
		if tr.End > computeSpan {
			computeSpan = tr.End
		}
	}
	if math.IsInf(firstStart, 1) {
		firstStart = 0
	}

	// Per-stage replay: busy time, last completion, and the in-flight
	// sample high-water mark. The canonical order sorts each stage's tasks
	// by start time, which is their execution order (stages run their
	// tasks sequentially).
	busy := make([]float64, len(st.Stages))
	lastDone := make([]float64, len(st.Stages))
	inFlight := make([]int, len(st.Stages))
	peak := make([]int, len(st.Stages))
	for _, tr := range rep.Timeline {
		i := tr.Stage
		busy[i] += tr.End - tr.Start
		if tr.End > lastDone[i] {
			lastDone[i] = tr.End
		}
		if tr.Task.Kind == schedule.Forward {
			inFlight[i] += tr.Task.End - tr.Task.Start
			if inFlight[i] > peak[i] {
				peak[i] = inFlight[i]
			}
		} else {
			inFlight[i] -= tr.Task.End - tr.Task.Start
		}
	}

	var iterEnd float64
	for i := range st.Stages {
		stage := &st.Stages[i]
		cfg := costmodel.StageConfig{
			Ops:                stage.Ops,
			MicroBatch:         stage.Config.MicroBatch,
			DataPar:            len(stage.Devices),
			InterNodeAllreduce: topo.GroupSpansNodes(stage.Devices),
		}
		if blk, ok := cluster.ContiguousBlock(stage.Devices); ok {
			cfg.Place = blk
		}
		costs := model.Stage(g, cfg)
		rep.Stages[i] = StageReport{
			ComputeTime:         busy[i],
			IdleTime:            computeSpan - firstStart - busy[i],
			PeakMemory:          costs.WeightBytes + costs.ActivationBytesPerSample*float64(peak[i]),
			PeakInFlightSamples: peak[i],
		}
		if costs.AllreducePerIter > rep.AllreduceTime {
			rep.AllreduceTime = costs.AllreducePerIter
		}
		// Each stage begins its gradient allreduce as soon as its own
		// last backward finishes; the iteration ends when every stage's
		// synchronization completes.
		if end := lastDone[i] + costs.AllreducePerIter; end > iterEnd {
			iterEnd = end
		}
	}
	rep.ComputeSpan = computeSpan - firstStart
	rep.IterationTime = iterEnd - firstStart
	if rep.IterationTime > 0 {
		rep.Throughput = float64(st.MiniBatch) / rep.IterationTime
	}
	return rep
}

// canonicalize sorts a copy of the timeline into the canonical order.
// Within a stage, start times are strictly increasing (tasks run
// sequentially and durations are positive), so the order is total and
// identical for any backend producing the same task times.
func canonicalize(timeline []TaskRecord) []TaskRecord {
	out := append([]TaskRecord(nil), timeline...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Task.Kind != b.Task.Kind {
			return a.Task.Kind == schedule.Forward
		}
		return a.Task.Index < b.Task.Index
	})
	return out
}
