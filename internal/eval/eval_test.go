package eval_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/eval"
	"graphpipe/internal/graph"
	"graphpipe/internal/models"
	"graphpipe/internal/planner"
	"graphpipe/internal/sim"
	"graphpipe/internal/strategy"

	_ "graphpipe/internal/eval/all"    // register the built-in backends
	_ "graphpipe/internal/planner/all" // register the built-in planners
)

// parityCase is one (model, cluster, mini-batch) cell small enough that
// every registered planner — including Piper's exhaustive search —
// completes quickly.
type parityCase struct {
	name      string
	g         *graph.Graph
	devices   int
	miniBatch int
}

func parityCases() []parityCase {
	mmt := models.DefaultMMTConfig()
	mmt.Branches = 2
	mmt.LayersPerBranch = 4
	return []parityCase{
		{name: "sequential", g: models.SequentialTransformer(8), devices: 4, miniBatch: 32},
		{name: "mmt-2b", g: models.MMT(mmt), devices: 4, miniBatch: 16},
	}
}

// TestBackendParityAllPlanners pins the core contract of the evaluation
// layer: for every registered planner on at least two models, the sim and
// runtime backends — invoked through the shared Evaluator interface —
// produce identical Reports, field for field. The virtual-clock runtime
// and the greedy simulator are independent implementations of the same
// execution semantics; any divergence is a bug in one of them.
func TestBackendParityAllPlanners(t *testing.T) {
	backends := eval.Names()
	if len(backends) < 2 {
		t.Fatalf("want at least the sim and runtime backends, registered: %v", backends)
	}
	for _, tc := range parityCases() {
		for _, plName := range planner.Names() {
			t.Run(tc.name+"/"+plName, func(t *testing.T) {
				pl, err := planner.Get(plName)
				if err != nil {
					t.Fatal(err)
				}
				topo := cluster.NewSummitTopology(tc.devices)
				model := costmodel.NewDefault(topo)
				st, _, err := pl.Plan(tc.g, topo, tc.miniBatch, planner.Options{CostModel: model})
				if err != nil {
					t.Fatalf("planning failed: %v", err)
				}

				reports := make(map[string]*eval.Report, len(backends))
				for _, name := range backends {
					ev, err := eval.Get(name)
					if err != nil {
						t.Fatal(err)
					}
					rep, err := ev.Evaluate(tc.g, topo, st, eval.Options{CostModel: model})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if rep.Backend != name {
						t.Errorf("report names backend %q, evaluated on %q", rep.Backend, name)
					}
					if rep.Throughput <= 0 || rep.IterationTime <= 0 {
						t.Fatalf("%s: degenerate report: %+v", name, rep)
					}
					reports[name] = rep
				}
				base := reports[backends[0]]
				for _, name := range backends[1:] {
					got := *reports[name]
					got.Backend = base.Backend // the only field allowed to differ
					if !reflect.DeepEqual(&got, base) {
						t.Errorf("%s and %s disagree:\n%+v\nvs\n%+v",
							backends[0], name, base, reports[name])
					}
				}
			})
		}
	}
}

// TestArtifactRoundTripReEvaluation pins the persistence contract: plan →
// marshal → unmarshal → re-evaluate must equal direct evaluation exactly,
// on every backend.
func TestArtifactRoundTripReEvaluation(t *testing.T) {
	// Plan on a graph models.Build can rebuild from artifact metadata
	// alone: the 2-branch MMT on 4 devices.
	const (
		modelName = "mmt"
		branches  = 2
		devices   = 4
	)
	g, miniBatch, err := models.Build(modelName, branches, devices)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewSummitTopology(devices)
	model := costmodel.NewDefault(topo)
	pl, err := planner.Get("graphpipe")
	if err != nil {
		t.Fatal(err)
	}
	st, stats, err := pl.Plan(g, topo, miniBatch, planner.Options{CostModel: model})
	if err != nil {
		t.Fatal(err)
	}

	data, err := strategy.EncodeArtifact(&strategy.Artifact{
		Model:    modelName,
		Branches: branches,
		Devices:  devices,
		Planner:  strategy.PlannerMeta{Name: pl.Name(), DPStates: stats.DPStates},
		Strategy: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	art, err := strategy.DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := art.CheckPlanner(planner.Names()); err != nil {
		t.Fatal(err)
	}
	// The artifact's metadata alone must rebuild the evaluation context.
	g2, _, err := models.Build(art.Model, art.Branches, art.Devices)
	if err != nil {
		t.Fatal(err)
	}
	topo2 := cluster.NewSummitTopology(art.Devices)
	if err := art.Validate(g2, topo2); err != nil {
		t.Fatal(err)
	}

	for _, name := range eval.Names() {
		ev, err := eval.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := ev.Evaluate(g, topo, st, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := ev.Evaluate(g2, topo2, art.Strategy, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct, replayed) {
			t.Errorf("%s: round-tripped strategy evaluates differently:\n%+v\nvs\n%+v",
				name, direct, replayed)
		}
		if direct.Throughput != replayed.Throughput {
			t.Errorf("%s: throughput %g != %g after round-trip", name,
				replayed.Throughput, direct.Throughput)
		}
	}
}

// TestArtifactLoadFailures covers the three load-time error classes end
// to end as the CLI would hit them.
func TestArtifactLoadFailures(t *testing.T) {
	if _, err := strategy.DecodeArtifact([]byte("{broken")); !errors.Is(err, strategy.ErrCorruptArtifact) {
		t.Errorf("corrupt file: err = %v", err)
	}
	if _, err := strategy.DecodeArtifact([]byte(`{"version": 99, "strategy": null}`)); !errors.Is(err, strategy.ErrUnknownVersion) {
		t.Errorf("unknown version: err = %v", err)
	}
	a := &strategy.Artifact{Planner: strategy.PlannerMeta{Name: "no-such-planner"}}
	if err := a.CheckPlanner(planner.Names()); !errors.Is(err, strategy.ErrUnknownPlanner) {
		t.Errorf("unknown planner: err = %v", err)
	}
}

// TestSimResultMatchesReport spans the two derivations of the aggregate
// metrics: sim.Run computes its Result analytically (busy = task count ×
// pass time, iteration end from stage clocks) while eval.Assemble
// re-derives everything from the raw timeline. Direct sim.Result
// consumers (the engine's tests, the lower-level examples) and eval-layer
// consumers must keep seeing the same numbers.
func TestSimResultMatchesReport(t *testing.T) {
	tc := parityCases()[1] // the branched model exercises parallel stages
	topo := cluster.NewSummitTopology(tc.devices)
	model := costmodel.NewDefault(topo)
	pl, err := planner.Get("graphpipe")
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := pl.Plan(tc.g, topo, tc.miniBatch, planner.Options{CostModel: model})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.New(tc.g, model).Run(st)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := eval.Get("sim")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ev.Evaluate(tc.g, topo, st, eval.Options{CostModel: model})
	if err != nil {
		t.Fatal(err)
	}

	closeEnough := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
	}
	if !closeEnough(res.IterationTime, rep.IterationTime) {
		t.Errorf("IterationTime: sim %.15g vs report %.15g", res.IterationTime, rep.IterationTime)
	}
	if !closeEnough(res.Throughput, rep.Throughput) {
		t.Errorf("Throughput: sim %.15g vs report %.15g", res.Throughput, rep.Throughput)
	}
	if !closeEnough(res.ComputeSpan, rep.ComputeSpan) {
		t.Errorf("ComputeSpan: sim %.15g vs report %.15g", res.ComputeSpan, rep.ComputeSpan)
	}
	if !closeEnough(res.AllreduceTime, rep.AllreduceTime) {
		t.Errorf("AllreduceTime: sim %.15g vs report %.15g", res.AllreduceTime, rep.AllreduceTime)
	}
	if len(res.Stages) != len(rep.Stages) {
		t.Fatalf("stage counts differ: %d vs %d", len(res.Stages), len(rep.Stages))
	}
	for i := range res.Stages {
		s, r := res.Stages[i], rep.Stages[i]
		if !closeEnough(s.ComputeTime, r.ComputeTime) || !closeEnough(s.IdleTime, r.IdleTime) ||
			!closeEnough(s.PeakMemory, r.PeakMemory) || s.PeakInFlightSamples != r.PeakInFlightSamples {
			t.Errorf("stage %d: sim %+v vs report %+v", i, s, r)
		}
	}
}

// TestRegistryErrors pins the self-diagnosing unknown-backend error.
func TestRegistryErrors(t *testing.T) {
	_, err := eval.Get("no-such-backend")
	if err == nil {
		t.Fatal("resolved an unregistered backend")
	}
	for _, name := range eval.Names() {
		if got, gerr := eval.Get(name); gerr != nil || got.Name() != name {
			t.Errorf("Get(%q) = %v, %v", name, got, gerr)
		}
	}
}

// TestResolveModelRejectsForeignTopology guards against evaluating with a
// cost model built over a differently-sized cluster.
func TestResolveModelRejectsForeignTopology(t *testing.T) {
	small := cluster.NewSummitTopology(4)
	big := cluster.NewSummitTopology(8)
	if _, err := eval.ResolveModel(big, eval.Options{CostModel: costmodel.NewDefault(small)}); err == nil {
		t.Error("accepted a cost model over the wrong topology")
	}
	m, err := eval.ResolveModel(big, eval.Options{})
	if err != nil || m == nil {
		t.Errorf("default model resolution failed: %v", err)
	}
}
