package eval

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Evaluator)
)

// Register adds an evaluator under its Name. Backend packages call it from
// an init function; importing graphpipe/internal/eval/all registers every
// built-in backend. Register panics on an empty name or a duplicate — both
// are programmer errors that must fail loudly at process start.
func Register(e Evaluator) {
	name := e.Name()
	if name == "" {
		panic("eval: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("eval: Register called twice for %q", name))
	}
	registry[name] = e
}

// Get resolves an evaluator by name. The error lists the registered
// backends so command-line typos are self-diagnosing.
func Get(name string) (Evaluator, error) {
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("eval: unknown backend %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return e, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
