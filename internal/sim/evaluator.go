package sim

import (
	"graphpipe/internal/cluster"
	"graphpipe/internal/eval"
	"graphpipe/internal/graph"
	"graphpipe/internal/strategy"
)

// Backend is the eval-registry name of the simulator backend.
const Backend = "sim"

// evaluator adapts the sequential simulator to the shared Evaluator
// interface: run the engine, hand its timeline to eval.Assemble.
type evaluator struct{}

func init() { eval.Register(evaluator{}) }

// Name returns the registry key.
func (evaluator) Name() string { return Backend }

// Evaluate simulates one training iteration of st and assembles the
// shared report from the executed timeline.
func (evaluator) Evaluate(g *graph.Graph, topo *cluster.Topology, st *strategy.Strategy, opts eval.Options) (*eval.Report, error) {
	model, err := eval.ResolveModel(topo, opts)
	if err != nil {
		return nil, err
	}
	res, err := New(g, model).Run(st)
	if err != nil {
		return nil, err
	}
	timeline := make([]eval.TaskRecord, len(res.Timeline))
	for i, tr := range res.Timeline {
		timeline[i] = eval.TaskRecord{Stage: tr.Stage, Task: tr.Task, Start: tr.Start, End: tr.End}
	}
	return eval.Assemble(g, model, st, Backend, timeline), nil
}
