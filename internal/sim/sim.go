// Package sim executes a pipeline-parallel training strategy on a simulated
// device cluster and reports iteration time, throughput, and per-device
// memory high-water marks. It substitutes for the paper's FlexFlow-based
// distributed runtime on Summit (§7): every stage processes its scheduled
// forward/backward task order, tasks wait on cross-stage data dependencies
// (activations forward, gradients backward) including the sample-range
// alignment needed when neighboring stages use different micro-batch sizes
// (Figure 5), transfers are charged at the link bandwidth between the
// stages' device groups, and a gradient allreduce closes the iteration.
//
// The simulator is deterministic: it advances stages in rounds, scheduling
// each stage's next task as soon as its dependencies and its devices are
// free. Because every stage's task order is fixed by the planner (C4), this
// greedy relaxation yields the unique earliest-finish execution of the
// schedule.
package sim

import (
	"fmt"
	"math"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/schedule"
	"graphpipe/internal/strategy"
)

// TaskRecord is one executed task in the timeline.
type TaskRecord struct {
	Stage      strategy.StageID
	Task       schedule.Task
	Start, End float64
}

// StageStats aggregates per-stage results.
type StageStats struct {
	ComputeTime float64 // total busy time over the iteration
	IdleTime    float64 // bubbles: iteration span minus busy time
	// PeakMemory is the per-device high-water mark: weights + retained
	// activations at the worst instant.
	PeakMemory float64
	// PeakInFlightSamples is the observed maximum of forwarded-but-not-
	// backwarded samples.
	PeakInFlightSamples int
}

// Result is the outcome of simulating one training iteration.
type Result struct {
	// IterationTime is the wall-clock span from the first task start to
	// the end of the gradient synchronization.
	IterationTime float64
	// Throughput is MiniBatch / IterationTime, the paper's reported
	// samples-per-second metric.
	Throughput float64
	// ComputeSpan is the time until the last backward task finishes
	// (excludes the final allreduce).
	ComputeSpan float64
	// AllreduceTime is the largest per-stage gradient synchronization
	// cost, paid once per iteration after the last backward pass.
	AllreduceTime float64
	Stages        []StageStats
	// Timeline holds every executed task, ordered by start time per stage.
	Timeline []TaskRecord
}

// Simulator executes strategies for one model on one topology.
type Simulator struct {
	g     *graph.Graph
	model costmodel.Model
	topo  *cluster.Topology

	// xfer caches per-sample transfer seconds for each stage edge of the
	// strategy currently being simulated.
	xfer map[[2]strategy.StageID]float64
}

// New returns a Simulator.
func New(g *graph.Graph, model costmodel.Model) *Simulator {
	return &Simulator{g: g, model: model, topo: model.Topology()}
}

// stageState is the per-stage execution cursor.
type stageState struct {
	st       *strategy.Stage
	next     int     // index of the next task in st.Tasks
	freeAt   float64 // device group busy-until
	fwdTime  float64 // per-micro-batch forward compute time
	bwdTime  float64 // per-micro-batch backward compute time
	arTime   float64 // per-iteration allreduce
	weight   float64 // per-device weight memory
	actPerS  float64 // per-device activation bytes per in-flight sample
	lastDone float64 // finish time of the stage's final task

	// fwdDone[j] / bwdDone[j] record completion times of finished tasks;
	// NaN means not finished.
	fwdDone []float64
	bwdDone []float64

	inFlight     int
	peakInFlight int
}

// Run simulates one synchronous training iteration of s and returns the
// result. The strategy must be valid for the simulator's graph and
// topology.
func (sm *Simulator) Run(st *strategy.Strategy) (*Result, error) {
	if err := st.Validate(sm.g, sm.topo); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	sm.xfer = make(map[[2]strategy.StageID]float64)
	n := len(st.Stages)
	states := make([]*stageState, n)
	for i := 0; i < n; i++ {
		stage := &st.Stages[i]
		cfg := costmodel.StageConfig{
			Ops:                stage.Ops,
			MicroBatch:         stage.Config.MicroBatch,
			DataPar:            len(stage.Devices),
			InterNodeAllreduce: sm.topo.GroupSpansNodes(stage.Devices),
		}
		if blk, ok := cluster.ContiguousBlock(stage.Devices); ok {
			cfg.Place = blk
		}
		costs := sm.model.Stage(sm.g, cfg)
		nMicro := st.MiniBatch / stage.Config.MicroBatch
		ss := &stageState{
			st:      stage,
			fwdTime: costs.ForwardTime,
			bwdTime: costs.BackwardTime,
			arTime:  costs.AllreducePerIter,
			weight:  costs.WeightBytes,
			actPerS: costs.ActivationBytesPerSample,
			fwdDone: make([]float64, nMicro),
			bwdDone: make([]float64, nMicro),
		}
		for j := range ss.fwdDone {
			ss.fwdDone[j] = math.NaN()
			ss.bwdDone[j] = math.NaN()
		}
		states[i] = ss
	}

	var timeline []TaskRecord
	// Greedy relaxation: repeatedly start every stage whose next task is
	// ready. Each round either starts at least one task or the simulation
	// is deadlocked (which Validate's acyclicity should preclude).
	remaining := 0
	for _, ss := range states {
		remaining += len(ss.st.Tasks)
	}
	for remaining > 0 {
		progress := false
		for i, ss := range states {
			for ss.next < len(ss.st.Tasks) {
				task := ss.st.Tasks[ss.next]
				ready, ok := sm.readyAt(st, states, strategy.StageID(i), task)
				if !ok {
					break
				}
				start := math.Max(ready, ss.freeAt)
				var dur float64
				if task.Kind == schedule.Forward {
					dur = ss.fwdTime
				} else {
					dur = ss.bwdTime
				}
				end := start + dur
				ss.freeAt = end
				ss.lastDone = end
				if task.Kind == schedule.Forward {
					ss.fwdDone[task.Index] = end
					ss.inFlight += task.End - task.Start
					if ss.inFlight > ss.peakInFlight {
						ss.peakInFlight = ss.inFlight
					}
				} else {
					ss.bwdDone[task.Index] = end
					ss.inFlight -= task.End - task.Start
				}
				timeline = append(timeline, TaskRecord{
					Stage: strategy.StageID(i), Task: task, Start: start, End: end,
				})
				ss.next++
				remaining--
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("sim: deadlock with %d tasks remaining", remaining)
		}
	}

	res := &Result{Timeline: timeline, Stages: make([]StageStats, n)}
	var computeSpan, firstStart float64
	firstStart = math.Inf(1)
	for _, tr := range timeline {
		if tr.Start < firstStart {
			firstStart = tr.Start
		}
		if tr.End > computeSpan {
			computeSpan = tr.End
		}
	}
	// Each stage begins its gradient allreduce as soon as its own last
	// backward finishes; the iteration ends when every stage's
	// synchronization completes (matching package runtime's semantics).
	var iterEnd, allreduce float64
	for i, ss := range states {
		busy := float64(len(ss.st.Tasks)/2)*(ss.fwdTime+ss.bwdTime) +
			float64(len(ss.st.Tasks)%2)*ss.fwdTime
		res.Stages[i] = StageStats{
			ComputeTime:         busy,
			IdleTime:            computeSpan - firstStart - busy,
			PeakMemory:          ss.weight + ss.actPerS*float64(ss.peakInFlight),
			PeakInFlightSamples: ss.peakInFlight,
		}
		if ss.arTime > allreduce {
			allreduce = ss.arTime
		}
		if end := ss.lastDone + ss.arTime; end > iterEnd {
			iterEnd = end
		}
	}
	res.ComputeSpan = computeSpan - firstStart
	res.AllreduceTime = allreduce
	res.IterationTime = iterEnd - firstStart
	res.Throughput = float64(st.MiniBatch) / res.IterationTime
	return res, nil
}

// readyAt returns the earliest time the task's cross-stage dependencies are
// satisfied, or ok=false if a dependency has not completed yet.
//
// Forward task j of stage s needs, from every predecessor stage p, the
// forward results covering s's sample range [Start, End), plus the transfer
// time over the p→s link. Backward task j needs s's own forward j and, from
// every successor stage t, the gradient results covering the range, plus
// transfer. Sample-range alignment handles per-stage micro-batch sizes.
func (sm *Simulator) readyAt(st *strategy.Strategy, states []*stageState, sid strategy.StageID, task schedule.Task) (float64, bool) {
	ss := states[sid]
	ready := 0.0
	if task.Kind == schedule.Forward {
		for _, pid := range st.Pred[sid] {
			ps := states[pid]
			done, ok := rangeDone(ps.fwdDone, ps.st.Config.MicroBatch, task.Start, task.End)
			if !ok {
				return 0, false
			}
			t := done + sm.transferTime(st, pid, sid, task.End-task.Start)
			if t > ready {
				ready = t
			}
		}
		return ready, true
	}
	// Backward: own forward must be done.
	own := ss.fwdDone[task.Index]
	if math.IsNaN(own) {
		return 0, false
	}
	ready = own
	for _, tid := range st.Succ[sid] {
		ts := states[tid]
		done, ok := rangeDone(ts.bwdDone, ts.st.Config.MicroBatch, task.Start, task.End)
		if !ok {
			return 0, false
		}
		t := done + sm.transferTime(st, tid, sid, task.End-task.Start)
		if t > ready {
			ready = t
		}
	}
	return ready, true
}

// rangeDone returns the latest completion time among the tasks of a stage
// (with micro-batch size b) covering samples [start, end), or ok=false if
// any is unfinished.
func rangeDone(done []float64, b, start, end int) (float64, bool) {
	lo := start / b
	hi := (end + b - 1) / b
	if hi > len(done) {
		hi = len(done)
	}
	latest := 0.0
	for j := lo; j < hi; j++ {
		if math.IsNaN(done[j]) {
			return 0, false
		}
		if done[j] > latest {
			latest = done[j]
		}
	}
	return latest, true
}

// transferTime charges the activation (or gradient) bytes for `samples`
// samples crossing the from→to stage boundary at the bottleneck bandwidth
// between the two device groups. Streams from different producers proceed
// in parallel, so each boundary edge is charged independently. Per-sample
// rates are cached per stage edge.
func (sm *Simulator) transferTime(st *strategy.Strategy, from, to strategy.StageID, samples int) float64 {
	key := [2]strategy.StageID{from, to}
	perSample, ok := sm.xfer[key]
	if !ok {
		bytes := sm.g.CutBytes(st.Stages[from].Ops, st.Stages[to].Ops)
		// Gradient transfers (to < from in pipeline order) carry the same
		// tensor sizes as the forward activations of the reverse edge.
		if bytes == 0 {
			bytes = sm.g.CutBytes(st.Stages[to].Ops, st.Stages[from].Ops)
		}
		bw := sm.topo.GroupBandwidth(st.Stages[from].Devices, st.Stages[to].Devices)
		perSample = bytes / bw
		sm.xfer[key] = perSample
	}
	if perSample == 0 {
		return 0
	}
	return perSample*float64(samples) + sm.topo.LinkLatency
}
