package sim

import (
	"math"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/schedule"
	"graphpipe/internal/strategy"
)

// chainGraph builds in -> l0 -> ... -> l(n-1), uniform costs.
func chainGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("chain")
	in := b.AddOp(graph.Op{Name: "in", Kind: graph.OpInput, OutputBytes: 1e3})
	prev := in
	for i := 0; i < n; i++ {
		op := b.AddOp(graph.Op{Kind: graph.OpLinear, FwdFLOPs: 1e9, ParamBytes: 1e6, ActivationBytes: 1e4, OutputBytes: 1e3})
		b.Connect(prev, op)
		prev = op
	}
	return b.MustBuild()
}

// twoBranchGraph builds in -> {a0..a(k-1)} & {b0..b(k-1)} -> merge.
func twoBranchGraph(t testing.TB, k int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("twobranch")
	in := b.AddOp(graph.Op{Name: "in", Kind: graph.OpInput, OutputBytes: 1e3})
	merge := b.AddOp(graph.Op{Name: "merge", Kind: graph.OpConcat, FwdFLOPs: 1e6, OutputBytes: 1e3})
	for br := 0; br < 2; br++ {
		prev := in
		for i := 0; i < k; i++ {
			op := b.AddOp(graph.Op{Kind: graph.OpLinear, FwdFLOPs: 1e9, ParamBytes: 1e6, ActivationBytes: 1e4, OutputBytes: 1e3})
			b.Connect(prev, op)
			prev = op
		}
		b.Connect(prev, merge)
	}
	return b.MustBuild()
}

func mkStage(t testing.TB, id strategy.StageID, ops graph.NodeSet, devs []cluster.DeviceID, b, mini, inflight int) strategy.Stage {
	t.Helper()
	cfg := schedule.Config{MicroBatch: b, K: 1}
	tasks, err := schedule.BuildTasks(cfg, mini, inflight)
	if err != nil {
		t.Fatal(err)
	}
	return strategy.Stage{ID: id, Ops: ops, Config: cfg, Devices: devs,
		InFlightSamples: inflight, Tasks: tasks}
}

func newSim(t testing.TB, g *graph.Graph, devices int) *Simulator {
	t.Helper()
	topo := cluster.NewSummitTopology(devices)
	return New(g, costmodel.NewDefault(topo))
}

func TestSingleStageIteration(t *testing.T) {
	g := chainGraph(t, 2)
	sm := newSim(t, g, 1)
	st := &strategy.Strategy{
		Planner:   "test",
		MiniBatch: 8,
		Stages:    []strategy.Stage{mkStage(t, 0, g.AllNodes(), []cluster.DeviceID{0}, 2, 8, 2)},
	}
	if err := st.BuildEdges(g); err != nil {
		t.Fatal(err)
	}
	res, err := sm.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	// One stage: iteration = 4 micro-batches x (fw + bw), no allreduce.
	costs := sm.model.Stage(g, costmodel.StageConfig{Ops: g.AllNodes(), MicroBatch: 2, DataPar: 1})
	want := 4 * (costs.ForwardTime + costs.BackwardTime)
	if math.Abs(res.IterationTime-want)/want > 1e-9 {
		t.Errorf("IterationTime = %g, want %g", res.IterationTime, want)
	}
	if res.AllreduceTime != 0 {
		t.Errorf("single device allreduce = %g", res.AllreduceTime)
	}
	if math.Abs(res.Throughput-8/want)/res.Throughput > 1e-9 {
		t.Errorf("Throughput = %g", res.Throughput)
	}
	if len(res.Timeline) != 8 {
		t.Errorf("timeline entries = %d, want 8", len(res.Timeline))
	}
}

// pipelineChain builds an n-stage chain strategy, one op group per stage,
// classic 1F1B in-flight counts.
func pipelineChain(t testing.TB, g *graph.Graph, nStages, b, mini int) *strategy.Strategy {
	t.Helper()
	perStage := g.Len() / nStages
	st := &strategy.Strategy{Planner: "test", MiniBatch: mini}
	next := 0
	for i := 0; i < nStages; i++ {
		cnt := perStage
		if i == nStages-1 {
			cnt = g.Len() - next
		}
		ops := graph.NewNodeSet(g.Len())
		for j := 0; j < cnt; j++ {
			ops.Add(graph.NodeID(next))
			next++
		}
		inflight := (nStages - i) * b
		st.Stages = append(st.Stages, mkStage(t, strategy.StageID(i), ops, []cluster.DeviceID{cluster.DeviceID(i)}, b, mini, inflight))
	}
	if err := st.BuildEdges(g); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPipeliningBeatsSerial(t *testing.T) {
	g := chainGraph(t, 8)
	sm := newSim(t, g, 4)
	st := pipelineChain(t, g, 4, 1, 16)
	res, err := sm.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	// Upper bound: fully serial execution (16 micro-batches through 4
	// stages with no overlap) would take 16 × Σ(stage fw+bw). Pipelining
	// must be well under half of that.
	var serial float64
	for i := range st.Stages {
		costs := sm.model.Stage(g, costmodel.StageConfig{Ops: st.Stages[i].Ops, MicroBatch: 1, DataPar: 1})
		serial += 16 * (costs.ForwardTime + costs.BackwardTime)
	}
	if res.ComputeSpan > serial/2 {
		t.Errorf("pipelining ineffective: span %g vs serial %g", res.ComputeSpan, serial)
	}
	// Lower bound: the bottleneck stage's total work.
	var bottleneck float64
	for i := range st.Stages {
		costs := sm.model.Stage(g, costmodel.StageConfig{Ops: st.Stages[i].Ops, MicroBatch: 1, DataPar: 1})
		if w := 16 * (costs.ForwardTime + costs.BackwardTime); w > bottleneck {
			bottleneck = w
		}
	}
	if res.ComputeSpan < bottleneck {
		t.Errorf("span %g below bottleneck work %g", res.ComputeSpan, bottleneck)
	}
}

func TestWarmupBubbleGrowsWithDepth(t *testing.T) {
	g := chainGraph(t, 8)
	mini := 32
	// Same total work split 2 vs 8 ways; deeper pipeline has more bubble
	// per stage.
	sm2 := newSim(t, g, 2)
	res2, err := sm2.Run(pipelineChain(t, g, 2, 1, mini))
	if err != nil {
		t.Fatal(err)
	}
	sm8 := newSim(t, g, 8)
	res8, err := sm8.Run(pipelineChain(t, g, 8, 1, mini))
	if err != nil {
		t.Fatal(err)
	}
	// Efficiency = bottleneck work / span. Deeper pipeline wastes more.
	eff := func(res *Result, stages int) float64 {
		var bottleneck float64
		for _, ss := range res.Stages {
			if ss.ComputeTime > bottleneck {
				bottleneck = ss.ComputeTime
			}
		}
		return bottleneck / res.ComputeSpan
	}
	if eff(res8, 8) >= eff(res2, 2) {
		t.Errorf("deeper pipeline should have lower efficiency: eff8=%g eff2=%g",
			eff(res8, 8), eff(res2, 2))
	}
}

// TestGPPBeatsSPPOnBranches is the core §2 claim at simulator level: with
// an identical model partition, executing the two branches concurrently
// (graph-derived dependencies only) finishes the iteration faster than the
// SPP schedule that chains all stages with imaginary dependencies, and its
// first stage holds fewer in-flight samples.
func TestGPPBeatsSPPOnBranches(t *testing.T) {
	g := twoBranchGraph(t, 2) // in, merge, a0 a1, b0 b1 -> ids 0..5
	mini := 16

	build := func(spp bool) (*strategy.Strategy, *Simulator) {
		st := &strategy.Strategy{Planner: "test", MiniBatch: mini}
		// Stages: {in}, {a0,a1}, {b0,b1}, {merge}.
		opsets := []graph.NodeSet{
			graph.NodeSetOf(0),
			graph.NodeSetOf(2, 3),
			graph.NodeSetOf(4, 5),
			graph.NodeSetOf(1),
		}
		// In-flight: GPP depth 3 (in -> branch -> merge): stage0 3b,
		// branches 2b, merge b. SPP chain depth 4: 4b, 3b, 2b, b.
		gppIF := []int{3, 2, 2, 1}
		sppIF := []int{4, 3, 2, 1}
		ifs := gppIF
		if spp {
			ifs = sppIF
		}
		for i, ops := range opsets {
			st.Stages = append(st.Stages, mkStage(t, strategy.StageID(i), ops,
				[]cluster.DeviceID{cluster.DeviceID(i)}, 1, mini, ifs[i]))
		}
		if err := st.BuildEdges(g); err != nil {
			t.Fatal(err)
		}
		if spp {
			st.AddSequentialEdges([]strategy.StageID{0, 1, 2, 3})
		}
		return st, newSim(t, g, 4)
	}

	gpp, smG := build(false)
	spp, smS := build(true)
	resG, err := smG.Run(gpp)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := smS.Run(spp)
	if err != nil {
		t.Fatal(err)
	}
	if resG.IterationTime >= resS.IterationTime {
		t.Errorf("GPP should be faster: gpp=%g spp=%g", resG.IterationTime, resS.IterationTime)
	}
	if gpp.Depth() != 3 || spp.Depth() != 4 {
		t.Errorf("depths: gpp=%d spp=%d, want 3/4", gpp.Depth(), spp.Depth())
	}
	// The early branch stage (stage 1) holds fewer in-flight samples under
	// GPP (stage 0 is the zero-cost input op, so compare stage 1, the
	// first stage with real activations).
	if resG.Stages[1].PeakInFlightSamples >= resS.Stages[1].PeakInFlightSamples {
		t.Errorf("GPP branch stage in-flight %d should be below SPP %d",
			resG.Stages[1].PeakInFlightSamples, resS.Stages[1].PeakInFlightSamples)
	}
	if resG.Stages[1].PeakMemory >= resS.Stages[1].PeakMemory {
		t.Errorf("GPP branch stage memory %g should be below SPP %g",
			resG.Stages[1].PeakMemory, resS.Stages[1].PeakMemory)
	}
}

func TestPeakInFlightMatchesSchedule(t *testing.T) {
	g := chainGraph(t, 4)
	sm := newSim(t, g, 2)
	st := pipelineChain(t, g, 2, 2, 16)
	res, err := sm.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	for i, ss := range res.Stages {
		// The simulator can never exceed the schedule peak, and for a
		// busy pipeline it reaches it.
		want := schedule.PeakInFlightSamples(st.Stages[i].Tasks)
		if ss.PeakInFlightSamples > want {
			t.Errorf("stage %d: observed in-flight %d exceeds schedule peak %d",
				i, ss.PeakInFlightSamples, want)
		}
	}
}

func TestTimelineRespectsDependencies(t *testing.T) {
	g := twoBranchGraph(t, 2)
	sm := newSim(t, g, 4)
	st := &strategy.Strategy{Planner: "test", MiniBatch: 8}
	opsets := []graph.NodeSet{
		graph.NodeSetOf(0), graph.NodeSetOf(2, 3), graph.NodeSetOf(4, 5), graph.NodeSetOf(1),
	}
	ifs := []int{3, 2, 2, 1}
	for i, ops := range opsets {
		st.Stages = append(st.Stages, mkStage(t, strategy.StageID(i), ops,
			[]cluster.DeviceID{cluster.DeviceID(i)}, 1, 8, ifs[i]))
	}
	if err := st.BuildEdges(g); err != nil {
		t.Fatal(err)
	}
	res, err := sm.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	// Index completion times.
	fwEnd := map[[2]int]float64{}
	bwEnd := map[[2]int]float64{}
	for _, tr := range res.Timeline {
		key := [2]int{int(tr.Stage), tr.Task.Index}
		if tr.Task.Kind == schedule.Forward {
			fwEnd[key] = tr.End
		} else {
			bwEnd[key] = tr.End
		}
	}
	for _, tr := range res.Timeline {
		sid := int(tr.Stage)
		if tr.Task.Kind == schedule.Forward {
			for _, pid := range st.Pred[tr.Stage] {
				dep := fwEnd[[2]int{int(pid), tr.Task.Index}]
				if tr.Start < dep {
					t.Errorf("S%d F%d starts %g before S%d F%d ends %g",
						sid, tr.Task.Index, tr.Start, pid, tr.Task.Index, dep)
				}
			}
		} else {
			if own := fwEnd[[2]int{sid, tr.Task.Index}]; tr.Start < own {
				t.Errorf("S%d B%d starts before own forward", sid, tr.Task.Index)
			}
			for _, tid := range st.Succ[tr.Stage] {
				dep := bwEnd[[2]int{int(tid), tr.Task.Index}]
				if tr.Start < dep {
					t.Errorf("S%d B%d starts %g before S%d B%d ends %g",
						sid, tr.Task.Index, tr.Start, tid, tr.Task.Index, dep)
				}
			}
		}
	}
}

func TestMixedMicroBatchAlignment(t *testing.T) {
	// Stage 0 with b=1 feeds stage 1 with b=2: each F_j of stage 1 must
	// wait for two upstream forwards (Figure 5's alignment).
	g := chainGraph(t, 2)
	mini := 8
	st := &strategy.Strategy{Planner: "test", MiniBatch: mini}
	st.Stages = append(st.Stages,
		mkStage(t, 0, graph.NodeSetOf(0, 1), []cluster.DeviceID{0}, 1, mini, 4),
		mkStage(t, 1, graph.NodeSetOf(2), []cluster.DeviceID{1}, 2, mini, 2))
	if err := st.BuildEdges(g); err != nil {
		t.Fatal(err)
	}
	sm := newSim(t, g, 2)
	res, err := sm.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	fwEnd0 := map[int]float64{}
	for _, tr := range res.Timeline {
		if tr.Stage == 0 && tr.Task.Kind == schedule.Forward {
			fwEnd0[tr.Task.Index] = tr.End
		}
	}
	for _, tr := range res.Timeline {
		if tr.Stage == 1 && tr.Task.Kind == schedule.Forward {
			// F_j of stage 1 covers samples [2j, 2j+2): needs upstream
			// forwards 2j and 2j+1.
			for s := tr.Task.Start; s < tr.Task.End; s++ {
				if tr.Start < fwEnd0[s] {
					t.Errorf("stage1 F%d starts before upstream sample %d ready", tr.Task.Index, s)
				}
			}
		}
	}
}

func TestDataParallelAllreduceCharged(t *testing.T) {
	g := chainGraph(t, 2)
	sm := newSim(t, g, 2)
	st := &strategy.Strategy{Planner: "test", MiniBatch: 8}
	cfg := schedule.Config{MicroBatch: 2, K: 1}
	tasks, _ := schedule.BuildTasks(cfg, 8, 2)
	st.Stages = append(st.Stages, strategy.Stage{
		ID: 0, Ops: g.AllNodes(), Config: cfg,
		Devices: []cluster.DeviceID{0, 1}, InFlightSamples: 2, Tasks: tasks,
	})
	if err := st.BuildEdges(g); err != nil {
		t.Fatal(err)
	}
	res, err := sm.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllreduceTime <= 0 {
		t.Error("data-parallel stage should pay allreduce")
	}
	if res.IterationTime <= res.ComputeSpan {
		t.Error("iteration must include allreduce after compute")
	}
}

func TestRunRejectsInvalidStrategy(t *testing.T) {
	g := chainGraph(t, 2)
	sm := newSim(t, g, 2)
	st := &strategy.Strategy{Planner: "test", MiniBatch: 8}
	// Missing stages entirely.
	if _, err := sm.Run(st); err == nil {
		t.Error("accepted empty strategy")
	}
}

func TestStageStatsConsistency(t *testing.T) {
	g := chainGraph(t, 4)
	sm := newSim(t, g, 2)
	st := pipelineChain(t, g, 2, 1, 8)
	res, err := sm.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	for i, ss := range res.Stages {
		if ss.ComputeTime <= 0 {
			t.Errorf("stage %d compute time %g", i, ss.ComputeTime)
		}
		if ss.IdleTime < -1e-9 {
			t.Errorf("stage %d negative idle %g", i, ss.IdleTime)
		}
		if ss.ComputeTime+ss.IdleTime > res.ComputeSpan*(1+1e-9) {
			t.Errorf("stage %d busy+idle exceeds span", i)
		}
		if ss.PeakMemory <= 0 {
			t.Errorf("stage %d peak memory %g", i, ss.PeakMemory)
		}
	}
}

// TestSimDetectsDeadlock mirrors the runtime's deadlock test: a schedule
// that is locally valid (C4) but globally inconsistent — stage 0 expects
// its first gradient after one forward, while stage 1's warm-up needs two
// forwards — must be reported, not looped forever.
func TestSimDetectsDeadlock(t *testing.T) {
	g := chainGraph(t, 2)
	mini := 8
	st := &strategy.Strategy{Planner: "deadlock", MiniBatch: mini}
	st.Stages = append(st.Stages,
		mkStage(t, 0, graph.NodeSetOf(0, 1), []cluster.DeviceID{0}, 1, mini, 1),
		mkStage(t, 1, graph.NodeSetOf(2), []cluster.DeviceID{1}, 1, mini, 2))
	if err := st.BuildEdges(g); err != nil {
		t.Fatal(err)
	}
	sm := newSim(t, g, 2)
	if _, err := sm.Run(st); err == nil {
		t.Fatal("deadlocked schedule simulated successfully")
	}
}

// Property: on random chain pipelines, the iteration time always lies
// between the bottleneck stage's total work (perfect overlap) and the sum
// of all stages' work plus bubbles (no overlap at all).
func TestSimIterationBoundsProperty(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		nOps := 4 + seed%5
		g := chainGraph(t, nOps)
		stages := 2 + seed%3
		if stages > nOps {
			stages = nOps
		}
		mini := 8 * (1 + seed%3)
		st := pipelineChain(t, g, stages, 1, mini)
		sm := newSim(t, g, stages)
		res, err := sm.Run(st)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var bottleneck, total float64
		for _, ss := range res.Stages {
			total += ss.ComputeTime
			if ss.ComputeTime > bottleneck {
				bottleneck = ss.ComputeTime
			}
		}
		if res.ComputeSpan < bottleneck-1e-12 {
			t.Errorf("seed %d: span %g below bottleneck %g", seed, res.ComputeSpan, bottleneck)
		}
		if res.ComputeSpan > total+1e-9 {
			t.Errorf("seed %d: span %g above serial total %g (no pipelining at all?)",
				seed, res.ComputeSpan, total)
		}
	}
}
