// Package synth generates valid series-parallel computation graphs from
// compact, seed-driven specifications. The hand-built paper models in
// internal/models exercise the planner/eval/service stack only on the
// shapes the paper happened to publish; synth turns scenario diversity
// itself into an executable artifact: named structural families (deep
// chains, wide fan-outs, skewed branches, nested series-parallel blocks,
// multimodal-like mixed-cost graphs) whose size, branching, and cost
// balance are derived deterministically from a 64-bit seed.
//
// A Spec round-trips through a canonical string form with a "synth:"
// prefix ("synth:fanout/seed=42/depth=2/branches=5") that models.Build
// accepts anywhere a model name is accepted — the CLI, the experiment
// drivers, the planning service, and persisted strategy artifacts — so a
// strategy planned for a generated model can be replayed from its
// metadata alone, exactly like the paper models. Generation is pure:
// the same resolved spec produces byte-identical graphs (pinned by
// graph.Canonical in the tests and the `graphpipe synth` subcommand),
// which is what makes failing conformance seeds replayable.
package synth

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Prefix marks a model name as a synth spec wherever model names are
// resolved (models.Build, CLI flags, service requests).
const Prefix = "synth:"

// Spec describes one synthetic model. The zero value of a knob means
// "derive from the seed": Resolve fills it deterministically from the
// seed within the family's range, so `synth:chain/seed=7` alone fully
// determines a graph, while any knob can be pinned explicitly. Knobs a
// family does not use are forced to the family's fixed value.
type Spec struct {
	// Family is a registered family name (Families lists them).
	Family string `json:"family"`
	// Seed drives every derived quantity: unset knobs and per-operator
	// cost variation.
	Seed int64 `json:"seed"`
	// Depth is the family's length knob: chain length, layers per
	// branch, or segment length inside nested blocks.
	Depth int `json:"depth,omitempty"`
	// Branches is the family's width knob (parallel branches or towers).
	Branches int `json:"branches,omitempty"`
	// Skew scales the cost imbalance across branches: branch i costs
	// ~(1 + Skew·i/(branches-1)) times branch 0. Only the skew family
	// uses it.
	Skew float64 `json:"skew,omitempty"`
	// Nesting is the recursion depth of the nested family's
	// series-parallel blocks.
	Nesting int `json:"nesting,omitempty"`
}

// IsSpec reports whether a model name selects the synth generator.
func IsSpec(name string) bool { return strings.HasPrefix(name, Prefix) }

// String renders the canonical spec form. Resolved specs render every
// knob their family uses, so the string alone rebuilds the exact graph
// even if knob-derivation ranges change later; unresolved specs render
// only the knobs that are set. The field order is fixed and "/" is the
// separator (never ","), so spec strings survive CSV cells intact.
func (s Spec) String() string {
	var sb strings.Builder
	sb.WriteString(Prefix)
	sb.WriteString(s.Family)
	fmt.Fprintf(&sb, "/seed=%d", s.Seed)
	if s.Depth != 0 {
		fmt.Fprintf(&sb, "/depth=%d", s.Depth)
	}
	if s.Branches != 0 {
		fmt.Fprintf(&sb, "/branches=%d", s.Branches)
	}
	if s.Skew != 0 {
		fmt.Fprintf(&sb, "/skew=%s", strconv.FormatFloat(s.Skew, 'g', -1, 64))
	}
	if s.Nesting != 0 {
		fmt.Fprintf(&sb, "/nesting=%d", s.Nesting)
	}
	return sb.String()
}

// Parse decodes a canonical spec string. The "synth:" prefix is
// required: Parse is the single entry point model-name dispatch goes
// through, and the prefix is what routes a name here.
func Parse(name string) (Spec, error) {
	if !IsSpec(name) {
		return Spec{}, fmt.Errorf("synth: spec %q does not start with %q", name, Prefix)
	}
	parts := strings.Split(strings.TrimPrefix(name, Prefix), "/")
	if parts[0] == "" {
		return Spec{}, fmt.Errorf("synth: spec %q is missing a family (known: %s)",
			name, strings.Join(Families(), ", "))
	}
	spec := Spec{Family: parts[0]}
	if _, ok := families[spec.Family]; !ok {
		return Spec{}, fmt.Errorf("synth: unknown family %q (known: %s)",
			spec.Family, strings.Join(Families(), ", "))
	}
	// Parse handles syntax only; knob *ranges* are Resolve's job — the
	// one funnel every entry point (spec strings, CLI flags, Spec
	// literals) reaches before a graph is generated — so the two can
	// never drift apart.
	seenSeed := false
	for _, kv := range parts[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("synth: malformed knob %q in %q (want key=value)", kv, name)
		}
		var err error
		switch k {
		case "seed":
			spec.Seed, err = strconv.ParseInt(v, 10, 64)
			seenSeed = true
		case "depth":
			spec.Depth, err = strconv.Atoi(v)
		case "branches":
			spec.Branches, err = strconv.Atoi(v)
		case "skew":
			spec.Skew, err = strconv.ParseFloat(v, 64)
		case "nesting":
			spec.Nesting, err = strconv.Atoi(v)
		default:
			return Spec{}, fmt.Errorf("synth: unknown knob %q in %q", k, name)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("synth: knob %q in %q: %v", kv, name, err)
		}
	}
	if !seenSeed {
		return Spec{}, fmt.Errorf("synth: spec %q is missing seed=N", name)
	}
	return spec, nil
}

// EncodeJSON renders the resolved spec as indented JSON, the
// reproducible artifact `graphpipe synth -o` writes and TESTING.md
// tells people to attach to bug reports.
func EncodeJSON(s Spec) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodeJSON parses a JSON spec (the inverse of EncodeJSON).
func DecodeJSON(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("synth: decode spec: %w", err)
	}
	if _, ok := families[s.Family]; !ok {
		return Spec{}, fmt.Errorf("synth: unknown family %q (known: %s)",
			s.Family, strings.Join(Families(), ", "))
	}
	return s, nil
}

// Families lists the registered family names, sorted.
func Families() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultMiniBatch pairs a generated model with a mini-batch size for a
// device count, mirroring the paper models' proportional pairing in
// models.Build. Eight samples per device keeps a power-of-two
// micro-batch ladder available to every planner at the small device
// counts the conformance corpus sweeps.
func DefaultMiniBatch(devices int) int { return 8 * devices }

// --- deterministic RNG ---

// rng is a splitmix64 stream. The generator deliberately avoids
// math/rand: every value a spec derives must stay identical across Go
// releases, because conformance failures are replayed by seed alone.
type rng struct{ state uint64 }

// newRNG derives an independent stream from the seed and a salt string,
// so resolving one knob never shifts the draws of another: pinning
// depth explicitly leaves the branch count a given seed derives
// unchanged.
func newRNG(seed int64, salt string) *rng {
	h := uint64(seed) ^ 0x9E3779B97F4A7C15
	for _, b := range []byte(salt) {
		h ^= uint64(b)
		h *= 0x100000001B3
	}
	return &rng{state: h}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intBetween returns a uniform int in [lo, hi].
func (r *rng) intBetween(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + int(r.next()%uint64(hi-lo+1))
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// floatBetween returns a uniform float64 in [lo, hi).
func (r *rng) floatBetween(lo, hi float64) float64 {
	return lo + (hi-lo)*r.float()
}
