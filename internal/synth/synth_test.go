package synth_test

import (
	"strings"
	"testing"

	"graphpipe/internal/spgraph"
	"graphpipe/internal/synth"
)

// TestSpecStringRoundTrip pins the canonical string form: every
// resolved spec parses back to itself, and the regenerated graph is
// byte-identical under graph.Canonical.
func TestSpecStringRoundTrip(t *testing.T) {
	for _, fam := range synth.Families() {
		for seed := int64(0); seed < 8; seed++ {
			g, rs, err := synth.Generate(synth.Spec{Family: fam, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", fam, seed, err)
			}
			name := rs.String()
			if !strings.HasPrefix(name, synth.Prefix) || g.Name() != name {
				t.Fatalf("%s seed %d: graph name %q, spec string %q", fam, seed, g.Name(), name)
			}
			parsed, err := synth.Parse(name)
			if err != nil {
				t.Fatalf("%s: parse(%q): %v", fam, name, err)
			}
			if parsed != rs {
				t.Fatalf("%s: round trip changed the spec: %+v vs %+v", fam, parsed, rs)
			}
			g2, rs2, err := synth.Generate(parsed)
			if err != nil {
				t.Fatalf("%s: regenerate: %v", fam, err)
			}
			if rs2 != rs {
				t.Fatalf("%s: resolution is not idempotent: %+v vs %+v", fam, rs2, rs)
			}
			if string(g.Canonical()) != string(g2.Canonical()) {
				t.Fatalf("%s seed %d: regenerated graph differs from original", fam, seed)
			}
		}
	}
}

// TestSeedsDiversify guards the point of the generator: different seeds
// of one family must produce different graphs (content hash), otherwise
// the corpus collapses to one scenario per family.
func TestSeedsDiversify(t *testing.T) {
	for _, fam := range synth.Families() {
		hashes := map[string]int64{}
		for seed := int64(0); seed < 16; seed++ {
			g, _, err := synth.Generate(synth.Spec{Family: fam, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", fam, seed, err)
			}
			h := g.CanonicalHash()
			if prev, dup := hashes[h]; dup {
				t.Errorf("%s: seeds %d and %d generate identical graphs", fam, prev, seed)
			}
			hashes[h] = seed
		}
	}
}

// TestExplicitKnobsIndependent pins the salted-stream property: pinning
// one knob must not change what the seed derives for the others.
func TestExplicitKnobsIndependent(t *testing.T) {
	base, err := synth.Resolve(synth.Spec{Family: "fanout", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := synth.Resolve(synth.Spec{Family: "fanout", Seed: 11, Depth: base.Depth + 1})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Branches != base.Branches {
		t.Errorf("pinning depth changed derived branches: %d vs %d", pinned.Branches, base.Branches)
	}
	if pinned.Depth != base.Depth+1 {
		t.Errorf("explicit depth not honored: got %d", pinned.Depth)
	}
}

// TestGeneratedGraphsDecompose pins the structural contract: every
// family generates graphs the series-parallel decomposer can split
// without falling back to linearization — each multi-op zone reached by
// recursive splitting offers a series or parallel split, and the DP
// state space stays small enough for the corpus to be cheap.
func TestGeneratedGraphsDecompose(t *testing.T) {
	for _, fam := range synth.Families() {
		for seed := int64(0); seed < 4; seed++ {
			g, rs, err := synth.Generate(synth.Spec{Family: fam, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", fam, seed, err)
			}
			d := spgraph.New(g)
			if g.Len() > 1 && d.IsAtom(d.Root()) {
				t.Errorf("%s: root zone of %s is an atom", fam, rs)
			}
			if zones := d.CountZones(); zones > 20000 {
				t.Errorf("%s: %s explodes to %d zones", fam, rs, zones)
			}
		}
	}
}

// TestParseErrors pins the self-diagnosing syntax error paths (range
// violations are Resolve's job; see TestResolveRejectsOutOfRangeKnobs).
func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"chain/seed=1",             // missing prefix
		"synth:",                   // missing family
		"synth:nope/seed=1",        // unknown family
		"synth:chain",              // missing seed
		"synth:chain/seed=x",       // malformed seed
		"synth:chain/seed=1/depth", // malformed knob
		"synth:chain/seed=1/wat=2", // unknown knob
		"synth:chain/seed=1/d=1.5", // unknown knob key
	} {
		if _, err := synth.Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// Range violations in a parsed spec surface at generation time
	// through the Resolve funnel.
	for _, bad := range []string{
		"synth:chain/seed=1/depth=-5",
		"synth:skew/seed=1/skew=-1",
	} {
		spec, err := synth.Parse(bad)
		if err != nil {
			t.Fatalf("Parse(%q): %v (syntax is fine; range is Resolve's)", bad, err)
		}
		if _, _, err := synth.Generate(spec); err == nil {
			t.Errorf("Generate accepted out-of-range %q", bad)
		}
	}
}

// TestDefaultMiniBatch pins the pairing planners rely on: a
// power-of-two ladder proportional to the device count.
func TestDefaultMiniBatch(t *testing.T) {
	for _, devs := range []int{1, 2, 4, 8} {
		if mb := synth.DefaultMiniBatch(devs); mb != 8*devs {
			t.Errorf("DefaultMiniBatch(%d) = %d", devs, mb)
		}
	}
}

// TestResolveRejectsOutOfRangeKnobs pins the funnel fix: explicit knobs
// are range-checked in Resolve — the path shared by Parse, the CLI
// flags, and Spec literals — so a pinned spec can never generate a
// graph its own printed spec string fails to Parse, and negative skew
// can never scale operator costs negative.
func TestResolveRejectsOutOfRangeKnobs(t *testing.T) {
	for name, s := range map[string]synth.Spec{
		"negative depth":    {Family: "chain", Seed: 1, Depth: -5},
		"negative branches": {Family: "fanout", Seed: 1, Branches: -2},
		"huge depth":        {Family: "chain", Seed: 1, Depth: 1 << 20},
		"negative nesting":  {Family: "nested", Seed: 1, Nesting: -1},
		"negative skew":     {Family: "skew", Seed: 1, Skew: -3},
		"huge skew":         {Family: "skew", Seed: 1, Skew: 1000},
	} {
		if _, err := synth.Resolve(s); err == nil {
			t.Errorf("%s: Resolve accepted %+v", name, s)
		}
		if _, _, err := synth.Generate(s); err == nil {
			t.Errorf("%s: Generate accepted %+v", name, s)
		}
	}
}
