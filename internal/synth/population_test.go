package synth

import "testing"

// TestPopulationDeterministicAndResolved pins the property load
// generation leans on: one (families, n, seed) triple names the same
// fully resolved spec population everywhere, and the pinned depth band
// stays in the cheap range.
func TestPopulationDeterministicAndResolved(t *testing.T) {
	a, err := Population(nil, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Population(nil, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 24 {
		t.Fatalf("population size = %d, want 24", len(a))
	}
	seen := make(map[string]bool)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("spec %d differs across identical draws: %s vs %s", i, a[i], b[i])
		}
		if seen[a[i].String()] {
			t.Fatalf("spec %d duplicated in population: %s", i, a[i])
		}
		seen[a[i].String()] = true
		if rs, err := Resolve(a[i]); err != nil || rs.String() != a[i].String() {
			t.Fatalf("spec %d is not fully resolved: %s", i, a[i])
		}
		if a[i].Family == "chain" && (a[i].Depth < 4 || a[i].Depth > 10) {
			t.Fatalf("chain spec %d depth %d outside the pinned 4-10 band", i, a[i].Depth)
		}
	}

	shifted, err := Population(nil, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].String() == shifted[i].String() {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("changing the base seed changed nothing; populations are not seed-driven")
	}
}

// TestPopulationValidation pins the error paths: unknown families and
// non-positive sizes fail fast instead of generating a partial workload.
func TestPopulationValidation(t *testing.T) {
	if _, err := Population([]string{"nonesuch"}, 4, 1); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := Population(nil, 0, 1); err == nil {
		t.Error("zero population accepted")
	}
	specs, err := Population([]string{"chain", "fanout"}, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"chain", "fanout", "chain", "fanout", "chain"}
	for i, s := range specs {
		if s.Family != want[i] {
			t.Errorf("spec %d family = %s, want %s (round-robin)", i, s.Family, want[i])
		}
	}
}
