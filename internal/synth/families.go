package synth

import (
	"fmt"

	"graphpipe/internal/graph"
	"graphpipe/internal/spgraph"
)

// A family resolves a spec's unset knobs into its own ranges and builds
// the graph from the fully resolved spec. Ranges are chosen so every
// generated model is (1) series-parallel by construction, (2) small
// enough that the exhaustive Piper baseline completes — the conformance
// corpus runs every registered planner — and (3) memory-feasible on the
// default Summit topology at the corpus's 2–8 device counts.
type family struct {
	resolve func(s Spec) Spec
	build   func(s Spec, b *graph.Builder)
}

var families = map[string]family{
	// chain: a deep sequential stack — the degenerate SP shape every SPP
	// baseline was designed for. Exercises series splits only.
	"chain": {
		resolve: func(s Spec) Spec {
			s.Depth = resolveInt(s, "depth", s.Depth, 8, 24)
			s.Branches = 1
			s.Skew = 0
			s.Nesting = 0
			return s
		},
		build: buildChain,
	},
	// fanout: many short independent branches merged by one concat — the
	// wide-GPP shape (DLRM-like) that defeats strictly sequential
	// pipelines. Exercises parallel and sink-anchored splits.
	"fanout": {
		resolve: func(s Spec) Spec {
			s.Branches = resolveInt(s, "branches", s.Branches, 3, 6)
			s.Depth = resolveInt(s, "depth", s.Depth, 1, 3)
			s.Skew = 0
			s.Nesting = 0
			return s
		},
		build: buildBranches,
	},
	// skew: parallel branches with deliberately imbalanced per-branch
	// cost and depth, so balanced partitions must cut branches unevenly.
	"skew": {
		resolve: func(s Spec) Spec {
			s.Branches = resolveInt(s, "branches", s.Branches, 2, 4)
			s.Depth = resolveInt(s, "depth", s.Depth, 2, 4)
			if s.Skew == 0 {
				s.Skew = roundSkew(newRNG(s.Seed, "skew/skew").floatBetween(0.5, 4))
			}
			s.Nesting = 0
			return s
		},
		build: buildBranches,
	},
	// nested: recursively nested series-parallel blocks (forks inside
	// forks), the shape that stresses the decomposer's recursion and the
	// DP's zone table rather than its width.
	"nested": {
		resolve: func(s Spec) Spec {
			s.Nesting = resolveInt(s, "nesting", s.Nesting, 2, 3)
			s.Depth = resolveInt(s, "depth", s.Depth, 1, 2)
			s.Branches = 2
			s.Skew = 0
			return s
		},
		build: buildNested,
	},
	// mixed: multimodal-like heterogeneous branches — compute-bound
	// attention stacks next to memory-bound embedding towers — where
	// per-branch compute-efficiency sweet spots differ (§6).
	"mixed": {
		resolve: func(s Spec) Spec {
			s.Branches = resolveInt(s, "branches", s.Branches, 3, 5)
			s.Depth = resolveInt(s, "depth", s.Depth, 1, 3)
			s.Skew = 0
			s.Nesting = 0
			return s
		},
		build: buildMixed,
	},
}

// resolveInt keeps an explicitly set knob and otherwise draws it from
// the knob's own salted stream, so pinning one knob never changes what
// the seed derives for another.
func resolveInt(s Spec, knob string, set, lo, hi int) int {
	if set != 0 {
		return set
	}
	return newRNG(s.Seed, s.Family+"/"+knob).intBetween(lo, hi)
}

// roundSkew quantizes a derived skew to two decimals so the canonical
// spec string stays short and round-trips exactly.
func roundSkew(f float64) float64 {
	return float64(int(f*100+0.5)) / 100
}

// Resolve fills every unset knob of the spec deterministically from the
// seed and normalizes knobs the family does not use. Resolution is
// idempotent: Resolve(Resolve(s)) == Resolve(s), and the resolved
// spec's String() rebuilds the identical graph even if the derivation
// ranges above change in a future version.
//
// Explicit knobs are range-checked here — the one funnel every entry
// point (Parse, CLI flags, Spec literals) passes through — so an
// out-of-range pin fails loudly instead of generating a spec string
// Parse would reject (or, for negative skew, negative operator costs).
func Resolve(s Spec) (Spec, error) {
	fam, ok := families[s.Family]
	if !ok {
		return Spec{}, fmt.Errorf("synth: unknown family %q (known: %v)", s.Family, Families())
	}
	for _, knob := range []struct {
		name string
		val  int
	}{{"depth", s.Depth}, {"branches", s.Branches}, {"nesting", s.Nesting}} {
		if knob.val != 0 && (knob.val < 1 || knob.val > 1<<16) {
			return Spec{}, fmt.Errorf("synth: %s %d out of range [1, %d]", knob.name, knob.val, 1<<16)
		}
	}
	if s.Skew < 0 || s.Skew > 64 {
		return Spec{}, fmt.Errorf("synth: skew %g out of range [0, 64]", s.Skew)
	}
	return fam.resolve(s), nil
}

// Generate builds the computation graph of a spec, returning the graph
// and the fully resolved spec. The graph's name is the resolved spec's
// canonical string, so anything that records g.Name() — experiment CSV
// rows, artifact metadata — records enough to regenerate the graph.
func Generate(s Spec) (*graph.Graph, Spec, error) {
	rs, err := Resolve(s)
	if err != nil {
		return nil, Spec{}, err
	}
	b := graph.NewBuilder(rs.String())
	families[rs.Family].build(rs, b)
	g, err := b.Build()
	if err != nil {
		return nil, Spec{}, fmt.Errorf("synth: %s: %v", rs, err)
	}
	if err := spgraph.Validate(g); err != nil {
		return nil, Spec{}, fmt.Errorf("synth: %s: generated graph fails structural validation: %v", rs, err)
	}
	return g, rs, nil
}

// --- cost sampling ---

// opCosts draws one operator's per-sample costs. The ranges bracket the
// paper models' operators (a CANDLE feed-forward layer is ~3e7 FLOPs
// and 67 MB of weights; an MMT transformer layer ~2.5e9 FLOPs and
// 25 MB), scaled by the family's per-branch skew multiplier. Weight
// state (4x params) across a whole graph stays well under one V100's
// 16 GB, so every generated model is feasible even as a single stage.
func opCosts(r *rng, kind graph.OpKind, scale float64) graph.Op {
	op := graph.Op{Kind: kind}
	switch kind {
	case graph.OpEmbedding:
		// Memory-bound: tiny FLOPs, large tables, bandwidth-limited.
		op.FwdFLOPs = r.floatBetween(1e4, 1e6) * scale
		op.ParamBytes = r.floatBetween(5e7, 2e8)
		op.ActivationBytes = r.floatBetween(1e4, 1e5)
		op.OutputBytes = op.ActivationBytes
	case graph.OpAttention:
		op.FwdFLOPs = r.floatBetween(5e8, 4e9) * scale
		op.ParamBytes = r.floatBetween(1e7, 4e7)
		op.ActivationBytes = r.floatBetween(2e5, 2e6)
		op.OutputBytes = r.floatBetween(1e5, 6e5)
	default: // linear / elementwise compute ops
		op.FwdFLOPs = r.floatBetween(1e8, 1e9) * scale
		op.ParamBytes = r.floatBetween(4e6, 4e7)
		op.ActivationBytes = r.floatBetween(1e5, 1e6)
		op.OutputBytes = r.floatBetween(5e4, 3e5)
	}
	return op
}

// branchScale returns branch br's cost multiplier under the spec's
// skew: branch 0 is the baseline, the last branch costs (1 + Skew)x.
func branchScale(s Spec, br int) float64 {
	if s.Skew == 0 || s.Branches <= 1 {
		return 1
	}
	return 1 + s.Skew*float64(br)/float64(s.Branches-1)
}

// inputOp returns a zero-cost source operator feeding a branch.
func inputOp(name string) graph.Op {
	return graph.Op{Name: name, Kind: graph.OpInput, OutputBytes: 1e5}
}

// headOp returns the single sink every family ends in (spgraph.Validate
// requires one global sink; training has one loss).
func headOp(r *rng) graph.Op {
	op := opCosts(r, graph.OpLinear, 1)
	op.Name = "head"
	op.Kind = graph.OpOutput
	return op
}

// --- family builders ---

func buildChain(s Spec, b *graph.Builder) {
	r := newRNG(s.Seed, "chain/costs")
	prev := b.AddOp(inputOp("input"))
	for i := 0; i < s.Depth; i++ {
		kind := graph.OpLinear
		if r.intBetween(0, 2) == 0 {
			kind = graph.OpAttention
		}
		op := opCosts(r, kind, 1)
		op.Name = fmt.Sprintf("layer%d", i)
		id := b.AddOp(op)
		b.Connect(prev, id)
		prev = id
	}
	b.Connect(prev, b.AddOp(headOp(r)))
}

// buildBranches covers the fanout and skew families: Branches parallel
// chains, with per-branch cost scale (and, under skew, ±1 layer of
// per-branch depth jitter), merged by a concat feeding the head.
func buildBranches(s Spec, b *graph.Builder) {
	r := newRNG(s.Seed, s.Family+"/costs")
	concat := opCosts(r, graph.OpConcat, 1)
	concat.Name = "concat"
	concat.FwdFLOPs = 1e6 // merges are cheap; the branches dominate
	concatID := b.AddOp(concat)
	for br := 0; br < s.Branches; br++ {
		depth := s.Depth
		if s.Skew > 0 && s.Depth > 1 {
			depth += r.intBetween(-1, 1)
		}
		scale := branchScale(s, br)
		prev := b.AddOp(inputOp(fmt.Sprintf("br%d_input", br)))
		for l := 0; l < depth; l++ {
			op := opCosts(r, graph.OpLinear, scale)
			op.Name = fmt.Sprintf("br%d_layer%d", br, l)
			id := b.AddOp(op)
			b.Connect(prev, id)
			prev = id
		}
		b.Connect(prev, concatID)
	}
	b.Connect(concatID, b.AddOp(headOp(r)))
}

// buildNested emits a recursive series-parallel block: at each nesting
// level a block is either a fork of two sub-blocks joined by a merge
// operator, or (at level 0) a chain segment of Depth operators. The
// fork/join structure is exactly the shape the decomposer's series and
// parallel splits must interleave on.
func buildNested(s Spec, b *graph.Builder) {
	r := newRNG(s.Seed, "nested/costs")
	n := 0
	name := func(prefix string) string {
		n++
		return fmt.Sprintf("%s%d", prefix, n-1)
	}
	// block emits a sub-DAG between an entry source and a returned exit
	// node, recursing level times.
	var block func(level int, entry graph.NodeID) graph.NodeID
	block = func(level int, entry graph.NodeID) graph.NodeID {
		if level == 0 {
			prev := entry
			for i := 0; i < s.Depth; i++ {
				op := opCosts(r, graph.OpLinear, 1)
				op.Name = name("seg")
				id := b.AddOp(op)
				b.Connect(prev, id)
				prev = id
			}
			return prev
		}
		join := opCosts(r, graph.OpConcat, 1)
		join.Name = name("join")
		join.FwdFLOPs = 1e6
		joinID := b.AddOp(join)
		for br := 0; br < s.Branches; br++ {
			b.Connect(block(level-1, entry), joinID)
		}
		return joinID
	}
	in := b.AddOp(inputOp("input"))
	exit := block(s.Nesting, in)
	b.Connect(exit, b.AddOp(headOp(r)))
}

// buildMixed emits heterogeneous branches — per-branch operator kinds
// drawn from {attention, linear, embedding} — fused and finished by a
// head, the generalist-model shape where per-stage micro-batch sizes
// pay off.
func buildMixed(s Spec, b *graph.Builder) {
	r := newRNG(s.Seed, "mixed/costs")
	fusion := opCosts(r, graph.OpInteraction, 1)
	fusion.Name = "fusion"
	fusion.FwdFLOPs = 1e6
	fusionID := b.AddOp(fusion)
	kinds := []graph.OpKind{graph.OpAttention, graph.OpLinear, graph.OpEmbedding}
	for br := 0; br < s.Branches; br++ {
		kind := kinds[r.intBetween(0, len(kinds)-1)]
		depth := s.Depth
		if kind == graph.OpEmbedding {
			depth = 1 // towers are single lookups, as in DLRM/generalist
		}
		prev := b.AddOp(inputOp(fmt.Sprintf("br%d_input", br)))
		for l := 0; l < depth; l++ {
			op := opCosts(r, kind, 1)
			op.Name = fmt.Sprintf("br%d_%s%d", br, kind, l)
			id := b.AddOp(op)
			b.Connect(prev, id)
			prev = id
		}
		b.Connect(prev, fusionID)
	}
	b.Connect(fusionID, b.AddOp(headOp(r)))
}
