package synth

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"graphpipe/internal/cluster"
)

// Seeded topology families, the cluster-side twin of the model families:
// named heterogeneous / hierarchical cluster shapes whose bandwidths,
// speed ratios, and tier widths derive deterministically from a 64-bit
// seed. A family spec ("topo:hetero-speed/seed=7") resolves to a fully
// explicit cluster.Spec at a device count, so the conformance corpus can
// sweep (model, topology) pairs and replay any failure from the two
// strings alone — the same property the model families give graphs.
//
// Families:
//
//	uniform       one device class, one symmetric flat link tier
//	two-tier      one class, fast intra-node + slow inter-node links
//	hetero-speed  flat links, a fast and a slow device class (FLOPS)
//	hetero-memory flat links, a base and a large-memory device class
//	hierarchical  three link tiers with asymmetric up/down bandwidth
//
// The flat families (uniform, hetero-speed, hetero-memory) satisfy
// cluster.Topology.Flat() only when they are also homogeneous, i.e. just
// uniform: the planner's placement dimension is live on every other
// family.

// Baseline per-device capabilities the families perturb: V100-class
// numbers matching the summit preset, so a uniform synth topology is in
// the same cost regime as the paper testbed.
const (
	topoBaseMemory  = 16e9   // bytes
	topoBaseFLOPS   = 112e12 // FLOP/s
	topoBaseMemBW   = 900e9  // bytes/s
	topoBaseLatency = 5e-6   // seconds
)

// TopoSpec names one synthetic topology: a family plus the seed driving
// every derived quantity. Devices optionally pins the device count the
// spec was generated for; when set, resolving at a different count is an
// error (it would silently change the cluster under a replayed failure).
type TopoSpec struct {
	Family  string `json:"family"`
	Seed    int64  `json:"seed"`
	Devices int    `json:"devices,omitempty"`
}

// IsTopoSpec reports whether a topology name selects a synth family (a
// "topo:" name that is not a fully explicit spec).
func IsTopoSpec(name string) bool {
	return cluster.IsSpecName(name) && !cluster.IsExplicitSpec(name)
}

// String renders the canonical synth-topology form.
func (s TopoSpec) String() string {
	var sb strings.Builder
	sb.WriteString(cluster.SpecPrefix)
	sb.WriteString(s.Family)
	fmt.Fprintf(&sb, "/seed=%d", s.Seed)
	if s.Devices != 0 {
		fmt.Fprintf(&sb, "/devices=%d", s.Devices)
	}
	return sb.String()
}

// ParseTopo decodes a synth topology spec string.
func ParseTopo(name string) (TopoSpec, error) {
	if !IsTopoSpec(name) {
		return TopoSpec{}, fmt.Errorf("synth: %q is not a synth topology spec", name)
	}
	parts := strings.Split(strings.TrimPrefix(name, cluster.SpecPrefix), "/")
	if parts[0] == "" {
		return TopoSpec{}, fmt.Errorf("synth: topology spec %q is missing a family (known: %s)",
			name, strings.Join(TopoFamilies(), ", "))
	}
	spec := TopoSpec{Family: parts[0]}
	if _, ok := topoFamilies[spec.Family]; !ok {
		return TopoSpec{}, fmt.Errorf("synth: unknown topology family %q (known: %s)",
			spec.Family, strings.Join(TopoFamilies(), ", "))
	}
	seenSeed := false
	for _, kv := range parts[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return TopoSpec{}, fmt.Errorf("synth: malformed topology knob %q in %q (want key=value)", kv, name)
		}
		var err error
		switch k {
		case "seed":
			spec.Seed, err = strconv.ParseInt(v, 10, 64)
			seenSeed = true
		case "devices":
			spec.Devices, err = strconv.Atoi(v)
		default:
			return TopoSpec{}, fmt.Errorf("synth: unknown topology knob %q in %q", k, name)
		}
		if err != nil {
			return TopoSpec{}, fmt.Errorf("synth: topology knob %q in %q: %v", kv, name, err)
		}
	}
	if !seenSeed {
		return TopoSpec{}, fmt.Errorf("synth: topology spec %q is missing seed=N", name)
	}
	if spec.Devices < 0 {
		return TopoSpec{}, fmt.Errorf("synth: topology spec %q has negative devices", name)
	}
	return spec, nil
}

// Resolve builds the explicit cluster spec the family derives from the
// seed at the given device count.
func (s TopoSpec) Resolve(devices int) (cluster.Spec, error) {
	f, ok := topoFamilies[s.Family]
	if !ok {
		return cluster.Spec{}, fmt.Errorf("synth: unknown topology family %q (known: %s)",
			s.Family, strings.Join(TopoFamilies(), ", "))
	}
	n := devices
	if s.Devices != 0 {
		if devices != 0 && devices != s.Devices {
			return cluster.Spec{}, fmt.Errorf("synth: topology %s pins devices=%d but was resolved at %d",
				s, s.Devices, devices)
		}
		n = s.Devices
	}
	if n < 1 {
		return cluster.Spec{}, fmt.Errorf("synth: topology %s needs a positive device count, got %d", s, n)
	}
	spec := f(s.Seed, n)
	if err := spec.Validate(); err != nil {
		return cluster.Spec{}, fmt.Errorf("synth: family %q at %d devices: %w", s.Family, n, err)
	}
	return spec, nil
}

// BuildTopology resolves a synth topology spec string at a device count.
func BuildTopology(name string, devices int) (*cluster.Topology, error) {
	spec, err := ParseTopo(name)
	if err != nil {
		return nil, err
	}
	cs, err := spec.Resolve(devices)
	if err != nil {
		return nil, err
	}
	return cs.Build()
}

// TopoFamilies lists the registered topology family names, sorted.
func TopoFamilies() []string {
	out := make([]string, 0, len(topoFamilies))
	for name := range topoFamilies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

var topoFamilies = map[string]func(seed int64, n int) cluster.Spec{
	"uniform":       buildUniformTopo,
	"two-tier":      buildTwoTierTopo,
	"hetero-speed":  buildHeteroSpeedTopo,
	"hetero-memory": buildHeteroMemoryTopo,
	"hierarchical":  buildHierarchicalTopo,
}

// baseClass returns the V100-like class every family starts from.
func baseClass(name string) cluster.DeviceClass {
	return cluster.DeviceClass{
		Name: name, MemoryBytes: topoBaseMemory,
		PeakFLOPS: topoBaseFLOPS, MemBandwidth: topoBaseMemBW,
	}
}

// flatLevel is a single symmetric tier spanning all n devices.
func flatLevel(n int, bw float64) []cluster.Level {
	return []cluster.Level{{
		Name: "link", Width: n, DownBandwidth: bw, UpBandwidth: bw,
		Latency: topoBaseLatency,
	}}
}

// roundUpTier widens outer to a multiple of inner strictly above it, so
// the level widths nest (the overhang is simply unpopulated).
func roundUpTier(outer, inner int) int {
	if outer < inner {
		outer = inner
	}
	if r := outer % inner; r != 0 {
		outer += inner - r
	}
	if outer <= inner {
		outer = 2 * inner
	}
	return outer
}

func assignAll(n, class int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = class
	}
	return a
}

// uniform: one class, one symmetric flat link — the control arm every
// heterogeneous family is compared against. The link bandwidth still
// varies with the seed so conformance sweeps cover different
// compute/communication ratios.
func buildUniformTopo(seed int64, n int) cluster.Spec {
	bw := newRNG(seed, "topo/uniform/bw").floatBetween(25e9, 200e9)
	return cluster.Spec{
		Classes: []cluster.DeviceClass{baseClass("u")},
		Levels:  flatLevel(n, bw),
		Assign:  assignAll(n, 0),
	}
}

// two-tier: one class, fast intra-node links and a slower inter-node
// tier — the summit shape with seed-drawn widths and rates.
func buildTwoTierTopo(seed int64, n int) cluster.Spec {
	node := 2 << uint(newRNG(seed, "topo/two-tier/width").intBetween(0, 1)) // 2 or 4
	inner := newRNG(seed, "topo/two-tier/inner").floatBetween(100e9, 300e9)
	outer := newRNG(seed, "topo/two-tier/outer").floatBetween(5e9, 25e9)
	return cluster.Spec{
		Classes: []cluster.DeviceClass{baseClass("u")},
		Levels: []cluster.Level{
			{Name: "node", Width: node, DownBandwidth: inner, UpBandwidth: inner,
				Latency: topoBaseLatency},
			{Name: "cluster", Width: roundUpTier(n, node), DownBandwidth: outer,
				UpBandwidth: outer, Latency: topoBaseLatency},
		},
		Assign: assignAll(n, 0),
	}
}

// hetero-speed: flat links, two device classes differing only in
// compute throughput. The fast devices occupy the low ids, so tests can
// identify them without consulting the assignment.
func buildHeteroSpeedTopo(seed int64, n int) cluster.Spec {
	slow := newRNG(seed, "topo/hetero-speed/slow").floatBetween(40e12, 80e12)
	ratio := newRNG(seed, "topo/hetero-speed/ratio").floatBetween(1.5, 3)
	bw := newRNG(seed, "topo/hetero-speed/bw").floatBetween(25e9, 200e9)
	fast, slowCls := baseClass("fast"), baseClass("slow")
	fast.PeakFLOPS = slow * ratio
	slowCls.PeakFLOPS = slow
	nFast := (n + 1) / 2
	assign := make([]int, n)
	for i := nFast; i < n; i++ {
		assign[i] = 1
	}
	return cluster.Spec{
		Classes: []cluster.DeviceClass{fast, slowCls},
		Levels:  flatLevel(n, bw),
		Assign:  assign,
	}
}

// hetero-memory: flat links, a base class and a large-memory class on
// the high ids — memory-feasibility, not speed, differentiates
// placements.
func buildHeteroMemoryTopo(seed int64, n int) cluster.Spec {
	big := baseClass("big")
	big.MemoryBytes = newRNG(seed, "topo/hetero-memory/mem").floatBetween(24e9, 48e9)
	bw := newRNG(seed, "topo/hetero-memory/bw").floatBetween(25e9, 200e9)
	assign := make([]int, n)
	for i := n / 2; i < n; i++ {
		assign[i] = 1
	}
	return cluster.Spec{
		Classes: []cluster.DeviceClass{baseClass("base"), big},
		Levels:  flatLevel(n, bw),
		Assign:  assign,
	}
}

// hierarchical: three tiers (device pair, node, cluster) where the outer
// tiers have asymmetric up/down rates — gradients climb a slower uplink
// than the downlink activations descend.
func buildHierarchicalTopo(seed int64, n int) cluster.Spec {
	pair := newRNG(seed, "topo/hierarchical/pair").floatBetween(150e9, 300e9)
	nodeDown := newRNG(seed, "topo/hierarchical/node").floatBetween(40e9, 100e9)
	nodeUp := nodeDown * newRNG(seed, "topo/hierarchical/node-asym").floatBetween(0.5, 1)
	clusterDown := newRNG(seed, "topo/hierarchical/cluster").floatBetween(8e9, 15e9)
	clusterUp := clusterDown * newRNG(seed, "topo/hierarchical/cluster-asym").floatBetween(0.25, 0.75)
	return cluster.Spec{
		Classes: []cluster.DeviceClass{baseClass("u")},
		Levels: []cluster.Level{
			{Name: "pair", Width: 2, DownBandwidth: pair, UpBandwidth: pair,
				Latency: topoBaseLatency},
			{Name: "node", Width: 4, DownBandwidth: nodeDown, UpBandwidth: nodeUp,
				Latency: topoBaseLatency},
			{Name: "cluster", Width: roundUpTier(n, 4), DownBandwidth: clusterDown,
				UpBandwidth: clusterUp, Latency: topoBaseLatency},
		},
		Assign: assignAll(n, 0),
	}
}
