package synth

import "fmt"

// Population draws n resolved specs for load generation: families cycle
// round-robin (nil or empty selects every registered family, sorted) and
// each spec's seed derives from baseSeed and its index, so one
// (baseSeed, n, families) triple names the same request population on
// every machine — the property that lets a traffic generator's run be
// replayed bit-for-bit against a different fleet.
//
// The heavy length knobs are pinned into a "cheap" band (chains at
// depth 4–10 instead of the conformance corpus's 8–24) because a load
// population exists to measure the serving layer, not the planner: tens
// of thousands of replayed requests must be dominated by cache and
// routing behavior, with cold searches in the tens of milliseconds.
func Population(fams []string, n int, baseSeed int64) ([]Spec, error) {
	if n <= 0 {
		return nil, fmt.Errorf("synth: population size %d must be positive", n)
	}
	if len(fams) == 0 {
		fams = Families()
	}
	for _, f := range fams {
		if _, ok := families[f]; !ok {
			return nil, fmt.Errorf("synth: unknown family %q (known: %v)", f, Families())
		}
	}
	specs := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		s := Spec{
			Family: fams[i%len(fams)],
			Seed:   baseSeed + int64(i),
		}
		if s.Family == "chain" {
			s.Depth = newRNG(s.Seed, "population/depth").intBetween(4, 10)
		}
		rs, err := Resolve(s)
		if err != nil {
			return nil, err
		}
		specs = append(specs, rs)
	}
	return specs, nil
}
