package schedule

import (
	"fmt"
)

// TaskKind distinguishes forward and backward passes.
type TaskKind int

// Task kinds.
const (
	Forward TaskKind = iota
	Backward
)

// String returns "F" or "B".
func (k TaskKind) String() string {
	if k == Forward {
		return "F"
	}
	return "B"
}

// Task is one pass of one micro-batch on one stage. Samples are identified
// by their index within the mini-batch so that stages with different
// micro-batch sizes can align their data dependencies (Figure 5): task j of
// a stage with micro-batch size b covers samples [j·b, (j+1)·b).
type Task struct {
	Kind  TaskKind
	Index int // micro-batch index within the stage, 0-based
	Start int // first sample index (inclusive)
	End   int // past-the-end sample index
}

// String renders e.g. "F3[12,16)".
func (t Task) String() string {
	return fmt.Sprintf("%s%d[%d,%d)", t.Kind, t.Index, t.Start, t.End)
}

// BuildTasks emits the stage's task order Π for one training iteration: the
// greedy schedule of Algorithm 2's ScheduleTask, which runs each backward
// pass as early as the in-flight window allows (1F1B generalized to kFkB).
//
// The schedule starts with ℓ = max(k, inFlightSamples/b) forward
// micro-batches, alternates k backwards with k forwards while forwards
// remain, and drains the remaining backwards — exactly footnote 2's shape.
// miniBatch must be divisible by the micro-batch size.
func BuildTasks(cfg Config, miniBatch, inFlightSamples int) ([]Task, error) {
	if !cfg.Valid() {
		return nil, fmt.Errorf("schedule: invalid config %+v", cfg)
	}
	b, k := cfg.MicroBatch, cfg.K
	if miniBatch <= 0 || miniBatch%b != 0 {
		return nil, fmt.Errorf("schedule: mini-batch %d not divisible by micro-batch %d", miniBatch, b)
	}
	n := miniBatch / b // total micro-batches
	warm := inFlightSamples / b
	if warm < k {
		warm = k
	}
	if warm > n {
		warm = n
	}

	fw := func(j int) Task { return Task{Kind: Forward, Index: j, Start: j * b, End: (j + 1) * b} }
	bw := func(j int) Task { return Task{Kind: Backward, Index: j, Start: j * b, End: (j + 1) * b} }

	tasks := make([]Task, 0, 2*n)
	nextF, nextB := 0, 0
	for ; nextF < warm; nextF++ {
		tasks = append(tasks, fw(nextF))
	}
	for nextF < n {
		for i := 0; i < k && nextB < nextF; i++ {
			tasks = append(tasks, bw(nextB))
			nextB++
		}
		for i := 0; i < k && nextF < n; i++ {
			tasks = append(tasks, fw(nextF))
			nextF++
		}
	}
	for ; nextB < n; nextB++ {
		tasks = append(tasks, bw(nextB))
	}
	return tasks, nil
}

// ValidateTasks checks condition C4 (§3) on a stage's task order: forward
// passes in micro-batch order, backward passes in micro-batch order, each
// forward before its backward — plus completeness: every micro-batch of the
// mini-batch appears exactly once per direction.
func ValidateTasks(tasks []Task, cfg Config, miniBatch int) error {
	n := miniBatch / cfg.MicroBatch
	nextF, nextB := 0, 0
	for _, t := range tasks {
		if t.End-t.Start != cfg.MicroBatch || t.Start != t.Index*cfg.MicroBatch {
			return fmt.Errorf("schedule: task %v has wrong sample range for b=%d", t, cfg.MicroBatch)
		}
		switch t.Kind {
		case Forward:
			if t.Index != nextF {
				return fmt.Errorf("schedule: forward out of order: got F%d, want F%d", t.Index, nextF)
			}
			nextF++
		case Backward:
			if t.Index != nextB {
				return fmt.Errorf("schedule: backward out of order: got B%d, want B%d", t.Index, nextB)
			}
			if t.Index >= nextF {
				return fmt.Errorf("schedule: B%d scheduled before F%d", t.Index, t.Index)
			}
			nextB++
		default:
			return fmt.Errorf("schedule: unknown task kind %v", t.Kind)
		}
	}
	if nextF != n || nextB != n {
		return fmt.Errorf("schedule: incomplete schedule: %d forwards, %d backwards, want %d each", nextF, nextB, n)
	}
	return nil
}

// PeakInFlightSamples returns the maximum number of samples whose forward
// pass has run but whose backward pass has not, over the course of the task
// order — the quantity that drives activation memory (§6).
func PeakInFlightSamples(tasks []Task) int {
	cur, peak := 0, 0
	for _, t := range tasks {
		switch t.Kind {
		case Forward:
			cur += t.End - t.Start
			if cur > peak {
				peak = cur
			}
		case Backward:
			cur -= t.End - t.Start
		}
	}
	return peak
}
