// Package schedule implements GraphPipe's static micro-batch scheduler (§6,
// Algorithm 2, Appendix A.1).
//
// A pipeline stage's schedule is characterized by a configuration
// c = (i, b, k): the number of in-flight samples i, the micro-batch size b,
// and the k of its kFkB schedule. A kFkB schedule starts with ℓ forward
// passes (warm-up), alternates k backward and k forward passes in steady
// state, and ends with ℓ backward passes (cool-down) — footnote 2 of the
// paper. Synchronous 1F1B (k = 1) is the default.
//
// ComputeInFlight reproduces Table 2 exactly: given the current stage's
// (k_x, b_x) and a successor stage's (k_y, b_y, i_y), it returns the minimal
// number of in-flight samples the current stage needs for continuous
// pipelining. With graph-shaped stage dependencies a stage can have several
// successors; the stage then needs the maximum over them (Appendix A.1).
package schedule

import (
	"fmt"
)

// Config is the (b, k) part of a stage's schedule configuration: micro-batch
// size in samples and the k of the kFkB schedule.
type Config struct {
	MicroBatch int // b: samples per micro-batch
	K          int // k: passes per kFkB burst (1 = 1F1B)
}

// Valid reports whether the configuration is well-formed.
func (c Config) Valid() bool { return c.MicroBatch >= 1 && c.K >= 1 }

// String renders the config as in the paper, e.g. "b=4 2F2B".
func (c Config) String() string {
	return fmt.Sprintf("b=%d %dF%dB", c.MicroBatch, c.K, c.K)
}

// Successor bundles the schedule information of a following stage that
// ComputeInFlight consumes: its configuration and its own in-flight sample
// count (i_y), which was already determined because stages are scheduled by
// walking the stage graph backward from the sink (§6).
type Successor struct {
	Config
	InFlight int // i_y: in-flight samples of the successor stage
}

// computeInFlightOne evaluates Table 2 for one successor.
func computeInFlightOne(cur Config, succ Successor) int {
	bx, kx := cur.MicroBatch, cur.K
	by, ky := succ.MicroBatch, succ.K
	iy := succ.InFlight
	mx := kx * bx // k_x · b_x
	my := ky * by // k_y · b_y
	maxB := bx
	if by > maxB {
		maxB = by
	}
	switch {
	case maxB < mx && mx < my:
		return iy + 2*maxB
	case maxB == mx && mx < my:
		return iy + maxB
	case bx <= by && by < my && my < mx:
		return iy + mx - my + 2*by
	case bx <= by && by == my && my < mx:
		return iy + mx
	case by <= bx && bx < my && my < mx:
		return iy + mx - my + 2*bx
	case by <= bx && bx == my && my < mx:
		return iy + mx
	case maxB == my && my == mx:
		return iy + my
	case maxB < my && my == mx:
		return iy + 2*maxB
	case bx <= mx && mx < by && by <= my:
		return iy + by
	case by <= my && my < bx && bx <= mx:
		return iy + mx - my + bx
	}
	// Table 2 is exhaustive for k ≥ 1, b ≥ 1 (verified by property test);
	// reaching here means invalid inputs.
	panic(fmt.Sprintf("schedule: ComputeInFlight conditions not exhaustive for cur=%+v succ=%+v", cur, succ))
}

// ComputeInFlight returns the minimal number of in-flight samples for a
// stage with configuration cur whose successor stages are succs. A stage
// with no successors (the stage containing the model's sink: its backward
// pass starts immediately after its forward pass) keeps k_x·b_x samples in
// flight.
func ComputeInFlight(cur Config, succs []Successor) int {
	if !cur.Valid() {
		panic(fmt.Sprintf("schedule: invalid config %+v", cur))
	}
	if len(succs) == 0 {
		return cur.K * cur.MicroBatch
	}
	max := 0
	for _, s := range succs {
		if !s.Valid() {
			panic(fmt.Sprintf("schedule: invalid successor config %+v", s))
		}
		if v := computeInFlightOne(cur, s); v > max {
			max = v
		}
	}
	return max
}

// OptimizeK selects the k for the current stage that minimizes the in-flight
// sample count over the candidate set ks (Appendix A.1's argmin). It returns
// the chosen config and the resulting in-flight count. Ties prefer smaller
// k, which keeps schedules closer to 1F1B.
func OptimizeK(microBatch int, ks []int, succs []Successor) (Config, int) {
	bestCfg := Config{MicroBatch: microBatch, K: 1}
	bestIF := -1
	for _, k := range ks {
		cfg := Config{MicroBatch: microBatch, K: k}
		ifl := ComputeInFlight(cfg, succs)
		if bestIF < 0 || ifl < bestIF {
			bestCfg, bestIF = cfg, ifl
		}
	}
	if bestIF < 0 {
		bestIF = ComputeInFlight(bestCfg, succs)
	}
	return bestCfg, bestIF
}
