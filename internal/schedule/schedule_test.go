package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidAndString(t *testing.T) {
	if !(Config{MicroBatch: 4, K: 1}).Valid() {
		t.Error("valid config rejected")
	}
	if (Config{MicroBatch: 0, K: 1}).Valid() || (Config{MicroBatch: 2, K: 0}).Valid() {
		t.Error("invalid config accepted")
	}
	if got := (Config{MicroBatch: 4, K: 2}).String(); got != "b=4 2F2B" {
		t.Errorf("String = %q", got)
	}
}

func TestSinkInFlight(t *testing.T) {
	// A stage with no successors keeps k·b samples in flight.
	if got := ComputeInFlight(Config{MicroBatch: 4, K: 1}, nil); got != 4 {
		t.Errorf("sink 1F1B b=4: %d, want 4", got)
	}
	if got := ComputeInFlight(Config{MicroBatch: 2, K: 3}, nil); got != 6 {
		t.Errorf("sink 3F3B b=2: %d, want 6", got)
	}
}

// TestClassic1F1BChain reproduces the textbook SPP result: with a uniform
// micro-batch size and 1F1B, the stage at depth p from the sink keeps p·b
// samples in flight (Figure 1: 4 sequential stages, warm-up 4..1).
func TestClassic1F1BChain(t *testing.T) {
	b := 4
	cfg := Config{MicroBatch: b, K: 1}
	inFlight := ComputeInFlight(cfg, nil)
	if inFlight != b {
		t.Fatalf("sink in-flight = %d", inFlight)
	}
	for depth := 2; depth <= 8; depth++ {
		inFlight = ComputeInFlight(cfg, []Successor{{Config: cfg, InFlight: inFlight}})
		if want := depth * b; inFlight != want {
			t.Fatalf("depth %d: in-flight = %d, want %d", depth, inFlight, want)
		}
	}
}

// TestFigure5PerStageMicroBatch reproduces the worked example of Figure 5:
// a 3-stage chain S1 -> S2 -> S3 with per-stage micro-batch sizes 1, 2, 4
// yields 10 in-flight samples at S1, versus 12 with a universal size of 4.
func TestFigure5PerStageMicroBatch(t *testing.T) {
	// Universal micro-batch size 4.
	s3 := ComputeInFlight(Config{MicroBatch: 4, K: 1}, nil)
	s2 := ComputeInFlight(Config{MicroBatch: 4, K: 1}, []Successor{{Config: Config{MicroBatch: 4, K: 1}, InFlight: s3}})
	s1 := ComputeInFlight(Config{MicroBatch: 4, K: 1}, []Successor{{Config: Config{MicroBatch: 4, K: 1}, InFlight: s2}})
	if s1 != 12 {
		t.Errorf("universal: S1 in-flight = %d, want 12", s1)
	}
	// Per-stage sizes: S1 b=1, S2 b=2, S3 b=4.
	s3 = ComputeInFlight(Config{MicroBatch: 4, K: 1}, nil)
	s2 = ComputeInFlight(Config{MicroBatch: 2, K: 1}, []Successor{{Config: Config{MicroBatch: 4, K: 1}, InFlight: s3}})
	s1 = ComputeInFlight(Config{MicroBatch: 1, K: 1}, []Successor{{Config: Config{MicroBatch: 2, K: 1}, InFlight: s2}})
	if s1 != 10 {
		t.Errorf("per-stage: S1 in-flight = %d, want 10", s1)
	}
}

func TestKFKBChain(t *testing.T) {
	// Uniform b, k=2: m_x = m_y = 2b with max{b_x,b_y} = b < m_y, so each
	// upstream stage adds 2b (Table 2 row "max < k_y b_y = k_x b_x").
	b := 2
	cfg := Config{MicroBatch: b, K: 2}
	i := ComputeInFlight(cfg, nil)
	if i != 4 {
		t.Fatalf("sink 2F2B: %d", i)
	}
	i2 := ComputeInFlight(cfg, []Successor{{Config: cfg, InFlight: i}})
	if i2 != i+2*b {
		t.Errorf("2F2B chain step: %d, want %d", i2, i+2*b)
	}
}

func TestMultipleSuccessorsTakeMax(t *testing.T) {
	// Graph-shaped dependency: a stage feeding two branches needs the
	// larger of the two branch requirements (Appendix A.1).
	cur := Config{MicroBatch: 2, K: 1}
	succA := Successor{Config: Config{MicroBatch: 2, K: 1}, InFlight: 2}
	succB := Successor{Config: Config{MicroBatch: 2, K: 1}, InFlight: 8}
	got := ComputeInFlight(cur, []Successor{succA, succB})
	wantA := ComputeInFlight(cur, []Successor{succA})
	wantB := ComputeInFlight(cur, []Successor{succB})
	if got != wantB || wantB <= wantA {
		t.Errorf("max over successors: got %d, branch results %d, %d", got, wantA, wantB)
	}
}

// TestComputeInFlightExhaustive verifies Table 2 covers every (k, b)
// combination in a realistic range — the switch must never panic — and that
// the result is at least the successor's in-flight count (pipelining never
// reduces upstream memory below downstream).
func TestComputeInFlightExhaustive(t *testing.T) {
	vals := []int{1, 2, 3, 4, 6, 8, 16}
	ks := []int{1, 2, 3, 4}
	for _, bx := range vals {
		for _, kx := range ks {
			for _, by := range vals {
				for _, ky := range ks {
					for _, iy := range []int{0, 1, 4, 32} {
						got := ComputeInFlight(
							Config{MicroBatch: bx, K: kx},
							[]Successor{{Config: Config{MicroBatch: by, K: ky}, InFlight: iy}})
						if got < iy {
							t.Fatalf("in-flight shrank: cur=(b%d,k%d) succ=(b%d,k%d,i%d) -> %d",
								bx, kx, by, ky, iy, got)
						}
						if got < bx {
							t.Fatalf("in-flight below one micro-batch: cur=(b%d,k%d) succ=(b%d,k%d,i%d) -> %d",
								bx, kx, by, ky, iy, got)
						}
					}
				}
			}
		}
	}
}

func TestComputeInFlightPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid config")
		}
	}()
	ComputeInFlight(Config{MicroBatch: 0, K: 1}, nil)
}

func TestOptimizeK(t *testing.T) {
	succ := []Successor{{Config: Config{MicroBatch: 4, K: 1}, InFlight: 8}}
	cfg, ifl := OptimizeK(4, []int{1, 2, 4}, succ)
	// k=1 minimizes in-flight on a uniform chain.
	if cfg.K != 1 {
		t.Errorf("OptimizeK chose k=%d, want 1", cfg.K)
	}
	if want := ComputeInFlight(Config{MicroBatch: 4, K: 1}, succ); ifl != want {
		t.Errorf("OptimizeK in-flight = %d, want %d", ifl, want)
	}
	// Empty candidate list falls back to k=1.
	cfg, _ = OptimizeK(2, nil, succ)
	if cfg.K != 1 || cfg.MicroBatch != 2 {
		t.Errorf("fallback config = %+v", cfg)
	}
}

func TestBuildTasks1F1B(t *testing.T) {
	cfg := Config{MicroBatch: 1, K: 1}
	tasks, err := BuildTasks(cfg, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := "F0 F1 F2 F3 B0 F4 B1 F5 B2 F6 B3 F7 B4 B5 B6 B7"
	got := ""
	for i, tk := range tasks {
		if i > 0 {
			got += " "
		}
		got += tk.Kind.String() + itoa(tk.Index)
	}
	if got != want {
		t.Errorf("1F1B schedule:\n got %s\nwant %s", got, want)
	}
	if err := ValidateTasks(tasks, cfg, 8); err != nil {
		t.Errorf("ValidateTasks: %v", err)
	}
	if peak := PeakInFlightSamples(tasks); peak != 4 {
		t.Errorf("peak in-flight = %d, want 4", peak)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestBuildTasksGPipeDegenerate(t *testing.T) {
	// In-flight window covering the whole mini-batch: all forwards then all
	// backwards.
	cfg := Config{MicroBatch: 2, K: 1}
	tasks, err := BuildTasks(cfg, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if tasks[i].Kind != Forward {
			t.Fatalf("task %d = %v, want forward", i, tasks[i])
		}
	}
	for i := 4; i < 8; i++ {
		if tasks[i].Kind != Backward {
			t.Fatalf("task %d = %v, want backward", i, tasks[i])
		}
	}
	if err := ValidateTasks(tasks, cfg, 8); err != nil {
		t.Error(err)
	}
}

func TestBuildTasksKFKB(t *testing.T) {
	cfg := Config{MicroBatch: 1, K: 2}
	tasks, err := BuildTasks(cfg, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTasks(tasks, cfg, 8); err != nil {
		t.Fatalf("kFkB schedule invalid: %v", err)
	}
	// Steady state alternates pairs: after warm-up of 4 F's come 2 B's.
	if tasks[4].Kind != Backward || tasks[5].Kind != Backward {
		t.Errorf("expected 2 backwards after warm-up, got %v %v", tasks[4], tasks[5])
	}
	if tasks[6].Kind != Forward || tasks[7].Kind != Forward {
		t.Errorf("expected 2 forwards in steady state, got %v %v", tasks[6], tasks[7])
	}
}

func TestBuildTasksSampleRanges(t *testing.T) {
	cfg := Config{MicroBatch: 4, K: 1}
	tasks, err := BuildTasks(cfg, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range tasks {
		if tk.Start != tk.Index*4 || tk.End != tk.Start+4 {
			t.Errorf("task %v has wrong sample range", tk)
		}
	}
}

func TestBuildTasksErrors(t *testing.T) {
	if _, err := BuildTasks(Config{MicroBatch: 3, K: 1}, 8, 3); err == nil {
		t.Error("accepted non-dividing micro-batch")
	}
	if _, err := BuildTasks(Config{MicroBatch: 0, K: 1}, 8, 0); err == nil {
		t.Error("accepted invalid config")
	}
	if _, err := BuildTasks(Config{MicroBatch: 2, K: 1}, 0, 0); err == nil {
		t.Error("accepted zero mini-batch")
	}
}

func TestValidateTasksCatchesViolations(t *testing.T) {
	cfg := Config{MicroBatch: 1, K: 1}
	good, _ := BuildTasks(cfg, 4, 2)
	if err := ValidateTasks(good, cfg, 4); err != nil {
		t.Fatal(err)
	}
	// Backward before its forward.
	bad := append([]Task{{Kind: Backward, Index: 0, Start: 0, End: 1}}, good...)
	if err := ValidateTasks(bad, cfg, 4); err == nil {
		t.Error("accepted B before F")
	}
	// Out-of-order forwards.
	bad2 := append([]Task(nil), good...)
	bad2[0], bad2[1] = bad2[1], bad2[0]
	if err := ValidateTasks(bad2, cfg, 4); err == nil {
		t.Error("accepted out-of-order forwards")
	}
	// Missing tasks.
	if err := ValidateTasks(good[:len(good)-1], cfg, 4); err == nil {
		t.Error("accepted incomplete schedule")
	}
}

// Property: for random valid (b, k, B, inflight), BuildTasks emits a valid
// schedule whose peak in-flight sample count never exceeds
// max(inflight, k·b) and never drops below min over the warm-up bound.
func TestBuildTasksQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := 1 << rng.Intn(4)    // 1..8
		k := 1 + rng.Intn(3)     // 1..3
		n := (1 + rng.Intn(16))  // micro-batches
		inflight := rng.Intn(40) // samples
		mini := n * b
		cfg := Config{MicroBatch: b, K: k}
		tasks, err := BuildTasks(cfg, mini, inflight)
		if err != nil {
			return false
		}
		if ValidateTasks(tasks, cfg, mini) != nil {
			return false
		}
		peak := PeakInFlightSamples(tasks)
		bound := inflight
		if k*b > bound {
			bound = k * b
		}
		if mini < bound {
			bound = mini
		}
		return peak <= bound && peak >= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the in-flight count computed by Table 2 is an upper bound the
// generated schedules respect: a stage scheduled with BuildTasks at the
// Table 2 in-flight count has peak samples ≤ that count (when it divides
// evenly into micro-batches).
func TestTable2BoundsSchedulePeak(t *testing.T) {
	for _, bx := range []int{1, 2, 4} {
		for _, by := range []int{1, 2, 4} {
			sink := ComputeInFlight(Config{MicroBatch: by, K: 1}, nil)
			ifl := ComputeInFlight(Config{MicroBatch: bx, K: 1},
				[]Successor{{Config: Config{MicroBatch: by, K: 1}, InFlight: sink}})
			mini := 32
			tasks, err := BuildTasks(Config{MicroBatch: bx, K: 1}, mini, ifl)
			if err != nil {
				t.Fatal(err)
			}
			peak := PeakInFlightSamples(tasks)
			// Round the sample bound up to whole micro-batches.
			bound := ((ifl + bx - 1) / bx) * bx
			if peak > bound {
				t.Errorf("bx=%d by=%d: peak %d exceeds Table 2 bound %d", bx, by, peak, bound)
			}
		}
	}
}
