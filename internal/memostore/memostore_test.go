package memostore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"graphpipe/internal/memosnap"
)

func snapFor(hash string, mb, rootB int32) *memosnap.Snapshot {
	return &memosnap.Snapshot{
		Key: memosnap.Key{GraphHash: hash, ShapeSig: 1, CostSig: 2},
		Searches: []memosnap.SearchMemo{{
			MiniBatch: mb, RootB: rootB, Devices: 4, NumZones: 3,
			Configs: []memosnap.Config{{MicroBatch: rootB, K: 1}},
			Nodes:   []memosnap.Node{{Leaf: true, Zone: 1, Devs: 2, NStages: 1, Cfg: memosnap.Config{MicroBatch: rootB, K: 1}, InFlight: 1, Mem: 3, TPS: 4}},
			Entries: []memosnap.Entry{{Key: 7, Lo: 0, Hi: 5, Val: 0}},
		}},
	}
}

func TestMemoryLookupAndEviction(t *testing.T) {
	s, err := New(2, "")
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := snapFor("aaaa", 64, 8), snapFor("bbbb", 64, 8), snapFor("cccc", 64, 8)
	s.Install(a)
	s.Install(b)
	if got := s.Lookup(a.Key); got == nil {
		t.Fatal("a missing after install")
	}
	// a is now most recently used; installing c must evict b.
	s.Install(c)
	if s.Lookup(b.Key) != nil {
		t.Error("b survived past the LRU bound")
	}
	if s.Lookup(a.Key) == nil || s.Lookup(c.Key) == nil {
		t.Error("LRU evicted the wrong entry")
	}
	if s.Len() != 2 || s.Evictions() != 1 || s.Installs() != 3 {
		t.Errorf("len=%d evictions=%d installs=%d", s.Len(), s.Evictions(), s.Installs())
	}
	if s.Lookup(memosnap.Key{GraphHash: "nope"}) != nil {
		t.Error("unknown key hit")
	}
}

func TestInstallMergesSearches(t *testing.T) {
	s, err := New(4, "")
	if err != nil {
		t.Fatal(err)
	}
	s.Install(snapFor("aaaa", 64, 8))
	s.Install(snapFor("aaaa", 128, 8)) // same key, different mini-batch
	got := s.Lookup(snapFor("aaaa", 0, 0).Key)
	if got == nil || len(got.Searches) != 2 {
		t.Fatalf("merged snapshot has %+v searches, want 2", got)
	}
	// A re-install of one search must not mutate the previously returned
	// snapshot (immutability is what makes concurrent readers safe).
	s.Install(snapFor("aaaa", 64, 8))
	if len(got.Searches) != 2 {
		t.Error("install mutated a snapshot a reader already held")
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := snapFor("aaaa", 64, 8)
	s1.Install(snap)

	// A fresh store over the same directory — a daemon restart — serves
	// the shard from disk and promotes it to memory.
	s2, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.Lookup(snap.Key)
	if got == nil || got.Entries() != 1 {
		t.Fatalf("disk lookup: %+v", got)
	}
	if s2.Len() != 1 {
		t.Error("disk hit not promoted to memory")
	}
}

func TestDiskFailuresDegradeToMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := snapFor("aaaa", 64, 8)
	shard := s.path(snap.Key)

	// Corrupt shard: flip a body byte so the checksum fails.
	data := memosnap.Encode(snap)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(shard, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Lookup(snap.Key) != nil {
		t.Error("corrupt shard served")
	}

	// Version from the future: a miss, not an error.
	data = memosnap.Encode(snap)
	binary.LittleEndian.PutUint32(data[6:10], memosnap.SnapshotVersion+1)
	if err := os.WriteFile(shard, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Lookup(snap.Key) != nil {
		t.Error("future-version shard served")
	}

	// Misfiled shard: valid snapshot bytes under the wrong key's name.
	other := snapFor("bbbb", 64, 8)
	if err := os.WriteFile(shard, memosnap.Encode(other), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Lookup(snap.Key) != nil {
		t.Error("misfiled shard served")
	}
	if got := s.DiskFailures(); got != 3 {
		t.Errorf("DiskFailures = %d, want 3", got)
	}

	// Recovery: an install overwrites the bad shard atomically.
	s.Install(snap)
	files, err := filepath.Glob(filepath.Join(dir, ".memo-tmp-*"))
	if err != nil || len(files) != 0 {
		t.Errorf("temp files left behind: %v (%v)", files, err)
	}
	s2, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Lookup(snap.Key) == nil {
		t.Error("reinstalled shard not readable")
	}
}
