// Package memostore holds DP memo snapshots (internal/memosnap) between
// planning requests: a bounded in-memory LRU keyed by the snapshot's
// compatibility Key, optionally backed by one-file-per-key shards on disk
// under the daemon's cache directory. internal/service installs a snapshot
// after every successful graphpipe plan and looks one up before the next,
// so a request for the same canonical graph at a different device count or
// target warm-starts from a mostly-valid memo.
//
// The store follows the same discipline as the service's artifact cache:
// snapshots are immutable once installed (Install merges by building a new
// snapshot, never by mutating a stored one — readers can hold a returned
// pointer across a concurrent install without torn reads), disk writes are
// atomic temp-file-plus-rename, and every disk failure — IO error, corrupt
// shard, version mismatch — degrades to a miss, because a snapshot is a
// cache, never a source of truth.
package memostore

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"graphpipe/internal/faultinject"
	"graphpipe/internal/memosnap"
)

// entry is one stored snapshot.
type entry struct {
	key  memosnap.Key
	snap *memosnap.Snapshot
}

// Store is the two-tier snapshot holder. Create with New; safe for
// concurrent use.
type Store struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *entry
	items map[memosnap.Key]*list.Element
	dir   string

	faults *faultinject.DiskInjector // nil: healthy disk

	evictions    atomic.Uint64
	installs     atomic.Uint64
	diskFailures atomic.Uint64
}

// InjectFaults installs a deterministic disk-fault injector on the
// store's shard IO (nil: healthy; call before serving traffic). The
// GPMEMO checksum that memosnap.Decode verifies up front is what turns
// every injected corruption into a counted miss instead of a silently
// poisoned warm-start.
func (s *Store) InjectFaults(d *faultinject.DiskInjector) {
	if s != nil {
		s.faults = d
	}
}

// New builds a store holding at most max snapshots in memory (max <= 0
// defaults to 64). A non-empty dir enables the disk tier and is created if
// absent; snapshots then survive process restarts and memory evictions.
func New(max int, dir string) (*Store, error) {
	if max <= 0 {
		max = 64
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("memostore: %w", err)
		}
	}
	return &Store{
		max:   max,
		order: list.New(),
		items: make(map[memosnap.Key]*list.Element),
		dir:   dir,
	}, nil
}

// path names a key's disk shard. The graph hash is already hex; the two
// signatures disambiguate option/cost variants of the same graph.
func (s *Store) path(k memosnap.Key) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%016x-%016x.memo", k.GraphHash, k.ShapeSig, k.CostSig))
}

// Lookup returns the stored snapshot for a key, or nil. Memory is
// consulted first; a disk hit is promoted to memory. The returned snapshot
// is shared and must be treated as read-only.
func (s *Store) Lookup(k memosnap.Key) *memosnap.Snapshot {
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		snap := el.Value.(*entry).snap
		s.mu.Unlock()
		return snap
	}
	s.mu.Unlock()

	if s.dir == "" {
		return nil
	}
	data, err := os.ReadFile(s.path(k))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		s.diskFailures.Add(1)
		return nil
	}
	data = s.faults.Read(data)
	snap, err := memosnap.Decode(data)
	if err != nil || snap.Key != k {
		// Corrupt shard, foreign format version, or a misfiled snapshot:
		// a miss, recovered by the next cold plan overwriting the file.
		s.diskFailures.Add(1)
		return nil
	}
	s.put(k, snap)
	return snap
}

// Install merges a freshly exported snapshot into the store: an existing
// snapshot for the same key keeps the searches the new one did not re-run
// (memosnap.Merge), so a device-count sweep accumulates one shard covering
// every mini-batch it visited. The merge happens under the store lock —
// two concurrent installs for one key serialize, and each sees the other's
// completed merge, never a partial one.
func (s *Store) Install(snap *memosnap.Snapshot) {
	if snap == nil {
		return
	}
	s.mu.Lock()
	merged := snap
	if el, ok := s.items[snap.Key]; ok {
		merged = memosnap.Merge(el.Value.(*entry).snap, snap)
	}
	s.putLocked(snap.Key, merged)
	s.mu.Unlock()
	s.installs.Add(1)

	if s.dir != "" {
		if err := s.writeShard(merged); err != nil {
			s.diskFailures.Add(1)
		}
	}
}

func (s *Store) put(k memosnap.Key, snap *memosnap.Snapshot) {
	s.mu.Lock()
	s.putLocked(k, snap)
	s.mu.Unlock()
}

func (s *Store) putLocked(k memosnap.Key, snap *memosnap.Snapshot) {
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		el.Value.(*entry).snap = snap
		return
	}
	s.items[k] = s.order.PushFront(&entry{key: k, snap: snap})
	for s.order.Len() > s.max {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).key)
		s.evictions.Add(1)
	}
}

// writeShard persists one snapshot atomically, so a crashed or concurrent
// writer can never leave a torn shard for Lookup to read.
func (s *Store) writeShard(snap *memosnap.Snapshot) error {
	data, err := s.faults.Write(memosnap.Encode(snap))
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".memo-tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.path(snap.Key))
}

// Len reports the snapshots currently held in memory.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Evictions reports memory-tier evictions since creation.
func (s *Store) Evictions() uint64 { return s.evictions.Load() }

// Installs reports Install calls since creation.
func (s *Store) Installs() uint64 { return s.installs.Load() }

// DiskFailures reports disk-tier reads and writes that errored; each one
// degraded to a miss.
func (s *Store) DiskFailures() uint64 { return s.diskFailures.Load() }
