package memostore

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"graphpipe/internal/memosnap"
)

// TestConcurrentInstallLookupEvict hammers one store from many
// goroutines — installs, lookups, and LRU evictions all interleaving,
// with one writer corrupting disk shards mid-run — and requires only
// the store's contract: no data race (run under -race), every returned
// snapshot is intact for its key, and corruption degrades to a miss,
// never an error or a wrong answer. The memo-offer endpoint made
// installs a remote-triggered path, so cross-request interleavings are
// now fleet-reachable, not theoretical.
func TestConcurrentInstallLookupEvict(t *testing.T) {
	dir := t.TempDir()
	// max 8 with 32 keys forces continuous eviction and disk re-promotion.
	s, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}

	const (
		keys    = 32
		workers = 8
		rounds  = 200
	)
	keyOf := func(i int) memosnap.Key {
		return memosnap.Key{GraphHash: fmt.Sprintf("%04x", i), ShapeSig: 1, CostSig: 2}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % keys
				k := keyOf(i)
				if (w+r)%3 == 0 {
					s.Install(snapFor(k.GraphHash, 64, int32(8+w)))
				}
				snap := s.Lookup(k)
				if snap == nil {
					continue // evicted, corrupted, or not yet installed: a miss is legal
				}
				if snap.Key != k {
					t.Errorf("Lookup(%v) returned snapshot for %v", k, snap.Key)
					return
				}
				if len(snap.Searches) == 0 || snap.Entries() == 0 {
					t.Errorf("Lookup(%v) returned a gutted snapshot", k)
					return
				}
			}
		}(w)
	}

	// The corrupter truncates and scribbles over disk shards while the
	// workers run, simulating torn writes and bit rot under the store.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			k := keyOf(r % keys)
			switch r % 3 {
			case 0:
				os.WriteFile(s.path(k), []byte("GPMEMO garbage"), 0o644)
			case 1:
				os.Truncate(s.path(k), 10)
			case 2:
				os.Remove(s.path(k))
			}
		}
	}()
	wg.Wait()

	// The store stays serviceable after the abuse: a fresh install wins
	// over whatever the corrupter left on disk.
	k := keyOf(0)
	os.WriteFile(s.path(k), []byte("still garbage"), 0o644)
	s.Install(snapFor(k.GraphHash, 64, 8))
	if got := s.Lookup(k); got == nil || got.Key != k {
		t.Fatal("store did not recover after mid-run corruption")
	}
}

// TestCorruptShardDegradesToMissUnderConcurrentReaders pins the exact
// satellite scenario: a key evicted from memory whose disk shard was
// corrupted mid-run answers nil (a miss) to every concurrent reader —
// no panic, no stale bytes — and counts a disk failure.
func TestCorruptShardDegradesToMissUnderConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	s, err := New(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := snapFor("dead", 64, 8)
	s.Install(victim)
	// Evict the victim from memory; only its disk shard remains.
	s.Install(snapFor("beef", 64, 8))
	if s.items[victim.Key] != nil {
		t.Fatal("victim still resident; eviction bound not enforced")
	}
	if err := os.WriteFile(s.path(victim.Key), []byte("scribble"), 0o644); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if snap := s.Lookup(victim.Key); snap != nil {
					t.Error("corrupt shard served a snapshot")
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.DiskFailures() == 0 {
		t.Error("corrupt shard reads did not count as disk failures")
	}
}
