// Package cluster models the device topology graph D = (V_D, E_D) from §3:
// accelerator devices with memory budgets connected by communication links
// with bandwidths. The default topology mirrors the paper's testbed — Summit
// nodes with 4 NVLink-connected V100 GPUs per node and 100 Gb/s InfiniBand
// between nodes — so that planner decisions (e.g. keeping data-parallel
// replicas of a stage within a node) face the same bandwidth cliff the paper's
// hardware imposes.
package cluster

import (
	"fmt"
	"sort"
)

// DeviceID identifies a device within a Topology. IDs are dense from zero.
type DeviceID int

// Device is a single accelerator.
type Device struct {
	ID DeviceID
	// Node is the index of the host machine the device is attached to.
	Node int
	// MemoryBytes is the device memory budget M_v.
	MemoryBytes float64
	// PeakFLOPS is the device's peak throughput in FLOP/s.
	PeakFLOPS float64
	// MemBandwidth is the device's DRAM bandwidth in bytes/s, used by the
	// roofline cost model for memory-bound operators.
	MemBandwidth float64
}

// Topology is the device graph. Link bandwidths are derived from node
// co-location: devices on the same node communicate at IntraNodeBandwidth,
// devices on different nodes at InterNodeBandwidth.
type Topology struct {
	devices []Device

	// IntraNodeBandwidth is the bytes/s between two devices on one node
	// (NVLink on the paper's testbed).
	IntraNodeBandwidth float64
	// InterNodeBandwidth is the bytes/s between devices on different nodes
	// (EDR InfiniBand on the paper's testbed).
	InterNodeBandwidth float64
	// LinkLatency is the fixed per-transfer latency in seconds.
	LinkLatency float64
}

// V100-class constants used by the default topology. The absolute values
// only set the time scale; the reproduction targets relative shapes.
const (
	v100MemoryBytes  = 16e9   // 16 GB HBM2
	v100PeakFLOPS    = 112e12 // tensor-core peak, de-rated from 125 TFLOPS
	v100MemBandwidth = 900e9  // 900 GB/s HBM2
	nvlinkBandwidth  = 150e9  // effective NVLink bytes/s
	ibBandwidth      = 12.5e9 // 100 Gb/s EDR InfiniBand
	defaultLatency   = 5e-6   // 5 µs per transfer
	gpusPerNode      = 4
)

// NewSummitTopology builds a topology of n V100-class devices grouped four
// per node, matching the paper's evaluation platform (§7).
func NewSummitTopology(n int) *Topology {
	t := &Topology{
		IntraNodeBandwidth: nvlinkBandwidth,
		InterNodeBandwidth: ibBandwidth,
		LinkLatency:        defaultLatency,
	}
	for i := 0; i < n; i++ {
		t.devices = append(t.devices, Device{
			ID:           DeviceID(i),
			Node:         i / gpusPerNode,
			MemoryBytes:  v100MemoryBytes,
			PeakFLOPS:    v100PeakFLOPS,
			MemBandwidth: v100MemBandwidth,
		})
	}
	return t
}

// NewUniformTopology builds n identical devices on a single node with the
// given memory budget and bandwidths; tests use it to create controlled
// memory pressure.
func NewUniformTopology(n int, memoryBytes, bandwidth float64) *Topology {
	t := &Topology{
		IntraNodeBandwidth: bandwidth,
		InterNodeBandwidth: bandwidth,
		LinkLatency:        defaultLatency,
	}
	for i := 0; i < n; i++ {
		t.devices = append(t.devices, Device{
			ID:           DeviceID(i),
			Node:         0,
			MemoryBytes:  memoryBytes,
			PeakFLOPS:    v100PeakFLOPS,
			MemBandwidth: v100MemBandwidth,
		})
	}
	return t
}

// Len returns the number of devices |V_D|.
func (t *Topology) Len() int { return len(t.devices) }

// Device returns the device with the given id.
func (t *Topology) Device(id DeviceID) Device { return t.devices[id] }

// Devices returns all devices in id order. The slice must not be modified.
func (t *Topology) Devices() []Device { return t.devices }

// MinMemory returns the smallest device memory budget, the M of Equation 2.
func (t *Topology) MinMemory() float64 {
	if len(t.devices) == 0 {
		return 0
	}
	m := t.devices[0].MemoryBytes
	for _, d := range t.devices[1:] {
		if d.MemoryBytes < m {
			m = d.MemoryBytes
		}
	}
	return m
}

// Bandwidth returns the bytes/s of the link between devices a and b.
func (t *Topology) Bandwidth(a, b DeviceID) float64 {
	if a == b {
		return t.devices[a].MemBandwidth // same-device "transfer"
	}
	if t.devices[a].Node == t.devices[b].Node {
		return t.IntraNodeBandwidth
	}
	return t.InterNodeBandwidth
}

// GroupBandwidth returns the bottleneck bandwidth between two device groups:
// the minimum pairwise link bandwidth between any sender and receiver. Stage
// boundaries are charged at this rate.
func (t *Topology) GroupBandwidth(from, to []DeviceID) float64 {
	if len(from) == 0 || len(to) == 0 {
		return t.IntraNodeBandwidth
	}
	min := -1.0
	for _, a := range from {
		for _, b := range to {
			bw := t.Bandwidth(a, b)
			if min < 0 || bw < min {
				min = bw
			}
		}
	}
	return min
}

// GroupSpansNodes reports whether the device group crosses a node boundary,
// which determines the bandwidth used for intra-stage gradient allreduce.
func (t *Topology) GroupSpansNodes(group []DeviceID) bool {
	if len(group) < 2 {
		return false
	}
	node := t.devices[group[0]].Node
	for _, d := range group[1:] {
		if t.devices[d].Node != node {
			return true
		}
	}
	return false
}

// AllreduceBandwidth returns the per-device bandwidth available for a ring
// allreduce over the group.
func (t *Topology) AllreduceBandwidth(group []DeviceID) float64 {
	if t.GroupSpansNodes(group) {
		return t.InterNodeBandwidth
	}
	return t.IntraNodeBandwidth
}

// Allocator hands out contiguous blocks of device IDs. Contiguous allocation
// keeps data-parallel replicas of one stage on as few nodes as possible,
// which is how the paper's runtime places stages.
type Allocator struct {
	topo *Topology
	next DeviceID
}

// NewAllocator returns an allocator over t starting at device 0.
func NewAllocator(t *Topology) *Allocator { return &Allocator{topo: t} }

// Take allocates the next n contiguous devices. It returns an error if the
// topology is exhausted, which indicates a planner bug (C3 violation).
func (a *Allocator) Take(n int) ([]DeviceID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: invalid allocation size %d", n)
	}
	if int(a.next)+n > a.topo.Len() {
		return nil, fmt.Errorf("cluster: out of devices: want %d, have %d left", n, a.topo.Len()-int(a.next))
	}
	out := make([]DeviceID, n)
	for i := range out {
		out[i] = a.next
		a.next++
	}
	return out, nil
}

// Remaining returns the number of unallocated devices.
func (a *Allocator) Remaining() int { return a.topo.Len() - int(a.next) }

// SortIDs sorts device ids ascending in place and returns them.
func SortIDs(ids []DeviceID) []DeviceID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// PlaceStages assigns device groups to stages so that groups avoid
// straddling node boundaries when possible: groups of four or more devices
// get whole nodes, smaller groups are first-fit packed into single nodes.
// Planners assume a stage of at most one node's devices synchronizes
// gradients over the fast intra-node links; this placement makes that
// assumption hold. counts must sum to exactly the topology size.
func PlaceStages(t *Topology, counts []int) ([][]DeviceID, error) {
	total := 0
	for _, c := range counts {
		if c <= 0 {
			return nil, fmt.Errorf("cluster: invalid stage device count %d", c)
		}
		total += c
	}
	if total != t.Len() {
		return nil, fmt.Errorf("cluster: stage device counts sum to %d, topology has %d", total, t.Len())
	}

	nodes := t.Len() / gpusPerNode
	if t.Len()%gpusPerNode != 0 {
		nodes++
	}
	free := make([][]DeviceID, nodes)
	for i := 0; i < t.Len(); i++ {
		d := t.devices[i]
		free[d.Node] = append(free[d.Node], d.ID)
	}

	// Place large groups first (whole nodes), then pack small groups
	// first-fit into the emptiest remaining nodes; process equal sizes in
	// stage order for determinism.
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })

	out := make([][]DeviceID, len(counts))
	for _, si := range order {
		need := counts[si]
		group := make([]DeviceID, 0, need)
		// Prefer nodes that fit the whole remainder; take the fullest
		// fitting node first to reduce fragmentation.
		for need > 0 {
			best := -1
			for ni := range free {
				if len(free[ni]) == 0 {
					continue
				}
				fits := len(free[ni]) >= need
				if best == -1 {
					best = ni
					continue
				}
				bestFits := len(free[best]) >= need
				switch {
				case fits && !bestFits:
					best = ni
				case fits == bestFits && len(free[ni]) < len(free[best]) && fits:
					best = ni // tightest fit among fitting nodes
				case fits == bestFits && !fits && len(free[ni]) > len(free[best]):
					best = ni // largest chunk when nothing fits
				}
			}
			if best == -1 {
				return nil, fmt.Errorf("cluster: placement ran out of devices")
			}
			take := need
			if take > len(free[best]) {
				take = len(free[best])
			}
			group = append(group, free[best][:take]...)
			free[best] = free[best][take:]
			need -= take
		}
		out[si] = SortIDs(group)
	}
	return out, nil
}
