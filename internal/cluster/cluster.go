// Package cluster models the device topology graph D = (V_D, E_D) from §3:
// accelerator devices with memory budgets connected by communication links
// with bandwidths. Topologies may be heterogeneous (multiple device
// classes) and hierarchical (multiple bandwidth tiers with asymmetric
// per-direction rates); the default "summit" preset mirrors the paper's
// testbed — nodes with 4 NVLink-connected V100 GPUs per node and 100 Gb/s
// InfiniBand between nodes — so that planner decisions (e.g. keeping
// data-parallel replicas of a stage within a node) face the same bandwidth
// cliff the paper's hardware imposes.
package cluster

import (
	"fmt"
	"sort"
)

// DeviceID identifies a device within a Topology. IDs are dense from zero.
type DeviceID int

// Device is a single accelerator.
type Device struct {
	ID DeviceID
	// Node is the index of the innermost interconnect group (the host
	// machine on two-tier topologies) the device is attached to.
	Node int
	// MemoryBytes is the device memory budget M_v.
	MemoryBytes float64
	// PeakFLOPS is the device's peak throughput in FLOP/s.
	PeakFLOPS float64
	// MemBandwidth is the device's DRAM bandwidth in bytes/s, used by the
	// roofline cost model for memory-bound operators.
	MemBandwidth float64
}

// Block is a contiguous run of devices [Start, Start+Count). The planner
// places every stage on a block, so blocks are how placement-aware costs
// name "where a stage lands".
type Block struct {
	Start, Count int
}

// Topology is the device graph. Devices are ordered along the pipeline:
// lower ids are upstream. Link bandwidths come from the level hierarchy
// when one was specified; topologies built by the legacy constructors keep
// the flat two-tier view, where devices on the same node communicate at
// IntraNodeBandwidth and devices on different nodes at InterNodeBandwidth.
type Topology struct {
	devices []Device

	// levels is the interconnect hierarchy, innermost first; nil means the
	// legacy two-tier view derived from the exported fields below.
	levels []Level
	// classOf[i] is the index into classes of device i's interned class.
	classOf []int
	classes []DeviceClass

	// IntraNodeBandwidth is the bytes/s between two devices on one node
	// (NVLink on the paper's testbed).
	IntraNodeBandwidth float64
	// InterNodeBandwidth is the bytes/s between devices on different nodes
	// (EDR InfiniBand on the paper's testbed).
	InterNodeBandwidth float64
	// LinkLatency is the fixed per-transfer latency in seconds.
	LinkLatency float64
}

// NewSummitTopology builds the "summit" preset at n devices: V100-class
// devices grouped four per node, matching the paper's evaluation platform
// (§7). See SummitSpec for the constants.
func NewSummitTopology(n int) *Topology {
	if n < 1 {
		t := &Topology{
			IntraNodeBandwidth: summitNVLink,
			InterNodeBandwidth: summitIB,
			LinkLatency:        summitLatency,
		}
		t.internClasses()
		return t
	}
	t, err := SummitSpec(n).Build()
	if err != nil {
		panic(fmt.Sprintf("cluster: summit preset invalid: %v", err)) // unreachable
	}
	return t
}

// NewUniformTopology builds n identical devices on a single node with the
// given memory budget and a flat, symmetric interconnect; tests use it to
// create controlled memory pressure. Compute capabilities are borrowed
// from the summit preset's device class.
func NewUniformTopology(n int, memoryBytes, bandwidth float64) *Topology {
	t := &Topology{
		IntraNodeBandwidth: bandwidth,
		InterNodeBandwidth: bandwidth,
		LinkLatency:        summitLatency,
	}
	for i := 0; i < n; i++ {
		t.devices = append(t.devices, Device{
			ID:           DeviceID(i),
			Node:         0,
			MemoryBytes:  memoryBytes,
			PeakFLOPS:    summitPeakFLOPS,
			MemBandwidth: summitMemBandwidth,
		})
	}
	t.internClasses()
	return t
}

// classKey identifies a device class by capabilities alone, so interning
// is independent of what a spec author named the class.
type classKey struct{ mem, flops, membw float64 }

// internClasses computes the interned device-class table from the device
// list. Every constructor calls it; devices are immutable afterwards.
func (t *Topology) internClasses() {
	t.classOf = make([]int, len(t.devices))
	t.classes = nil
	seen := make(map[classKey]int)
	for i, d := range t.devices {
		k := classKey{d.MemoryBytes, d.PeakFLOPS, d.MemBandwidth}
		ci, ok := seen[k]
		if !ok {
			ci = len(t.classes)
			seen[k] = ci
			t.classes = append(t.classes, DeviceClass{
				Name:         fmt.Sprintf("c%d", ci),
				MemoryBytes:  d.MemoryBytes,
				PeakFLOPS:    d.PeakFLOPS,
				MemBandwidth: d.MemBandwidth,
			})
		}
		t.classOf[i] = ci
	}
}

// Len returns the number of devices |V_D|.
func (t *Topology) Len() int { return len(t.devices) }

// Device returns the device with the given id.
func (t *Topology) Device(id DeviceID) Device { return t.devices[id] }

// Devices returns all devices in id order. The slice must not be modified.
func (t *Topology) Devices() []Device { return t.devices }

// Classes returns the interned device classes. Uniform topologies have
// exactly one. The slice must not be modified.
func (t *Topology) Classes() []DeviceClass { return t.classes }

// ClassOf returns the interned class index of device id.
func (t *Topology) ClassOf(id DeviceID) int { return t.classOf[id] }

// MinMemory returns the smallest device memory budget, the M of Equation 2.
func (t *Topology) MinMemory() float64 {
	if len(t.devices) == 0 {
		return 0
	}
	m := t.devices[0].MemoryBytes
	for _, d := range t.devices[1:] {
		if d.MemoryBytes < m {
			m = d.MemoryBytes
		}
	}
	return m
}

// BlockMinMemory returns the smallest memory budget inside a device block:
// the M of Equation 2 restricted to the devices a stage actually occupies.
func (t *Topology) BlockMinMemory(b Block) float64 {
	if b.Count <= 0 {
		return t.MinMemory()
	}
	m := t.devices[b.Start].MemoryBytes
	for _, d := range t.devices[b.Start+1 : b.Start+b.Count] {
		if d.MemoryBytes < m {
			m = d.MemoryBytes
		}
	}
	return m
}

// effectiveLevels returns the interconnect hierarchy, deriving the
// two-tier view from the legacy fields when no explicit hierarchy was
// given. The derived outer level is present even on single-node
// topologies (where no device pair reaches it) so every topology renders
// in the same two-plus-level shape.
func (t *Topology) effectiveLevels() []Level {
	if t.levels != nil {
		return t.levels
	}
	n := len(t.devices)
	w := n
	for i, d := range t.devices {
		if d.Node != 0 {
			w = i
			break
		}
	}
	if w < 1 {
		w = 1
	}
	outer := n
	if outer < w {
		outer = w
	}
	if r := outer % w; r != 0 {
		outer += w - r
	}
	return []Level{
		{Name: "node", Width: w, DownBandwidth: t.IntraNodeBandwidth,
			UpBandwidth: t.IntraNodeBandwidth, Latency: t.LinkLatency},
		{Name: "cluster", Width: outer, DownBandwidth: t.InterNodeBandwidth,
			UpBandwidth: t.InterNodeBandwidth, Latency: t.LinkLatency},
	}
}

// LevelCount returns the number of interconnect tiers.
func (t *Topology) LevelCount() int {
	if t.levels == nil {
		return 2
	}
	return len(t.levels)
}

// LinkLevel returns the innermost hierarchy level over which devices a and
// b communicate (0 = fastest tier). a == b is level 0 by convention.
func (t *Topology) LinkLevel(a, b DeviceID) int {
	if t.levels == nil {
		if t.devices[a].Node == t.devices[b].Node {
			return 0
		}
		return 1
	}
	for l, lv := range t.levels {
		if int(a)/lv.Width == int(b)/lv.Width {
			return l
		}
	}
	return len(t.levels) - 1
}

// InLinkLevel returns the level of the link feeding a block starting at
// start from its upstream neighbor (device start-1). The head of the
// pipeline has no upstream link and uses the innermost level.
func (t *Topology) InLinkLevel(start int) int {
	if start <= 0 {
		return 0
	}
	return t.LinkLevel(DeviceID(start-1), DeviceID(start))
}

// LevelDown returns the pipeline-forward (activation) bandwidth of level l.
func (t *Topology) LevelDown(l int) float64 {
	if t.levels == nil {
		if l == 0 {
			return t.IntraNodeBandwidth
		}
		return t.InterNodeBandwidth
	}
	return t.levels[l].DownBandwidth
}

// LevelUp returns the pipeline-backward (gradient) bandwidth of level l.
func (t *Topology) LevelUp(l int) float64 {
	if t.levels == nil {
		if l == 0 {
			return t.IntraNodeBandwidth
		}
		return t.InterNodeBandwidth
	}
	return t.levels[l].UpBandwidth
}

// LevelLatency returns the per-transfer latency of level l.
func (t *Topology) LevelLatency(l int) float64 {
	if t.levels == nil {
		return t.LinkLatency
	}
	return t.levels[l].Latency
}

// Flat reports whether every device pair communicates at the same
// (symmetric) bandwidth and all devices are identical — the topologies on
// which placement-aware and placement-oblivious costs provably coincide.
func (t *Topology) Flat() bool {
	if len(t.classes) > 1 {
		return false
	}
	lvls := t.effectiveLevels()
	n := len(t.devices)
	base := lvls[0]
	if base.UpBandwidth != base.DownBandwidth {
		return false
	}
	for i, lv := range lvls {
		if i > 0 && lvls[i-1].Width >= n {
			break // a previous tier already spans every pair; outer tiers are unreachable
		}
		if lv.DownBandwidth != base.DownBandwidth || lv.UpBandwidth != base.UpBandwidth ||
			lv.Latency != base.Latency {
			return false
		}
	}
	return true
}

// Canonical returns the canonical spec string for the topology, or "" for
// the default summit preset at this device count. The empty string keeps
// summit fingerprints byte-identical to their historical preimages, so
// artifacts planned before topologies were configurable keep their hashes.
func (t *Topology) Canonical() string {
	spec := Spec{Classes: t.classes, Levels: t.effectiveLevels(), Assign: t.classOf}
	c := spec.Canonical()
	if len(t.devices) > 0 && c == SummitSpec(len(t.devices)).Canonical() {
		return ""
	}
	return c
}

// Bandwidth returns the bytes/s available for a transfer from device a to
// device b. Direction matters on asymmetric hierarchies: transfers toward
// higher device ids (pipeline-forward, activations) use the level's down
// bandwidth, transfers toward lower ids (gradients) its up bandwidth.
func (t *Topology) Bandwidth(a, b DeviceID) float64 {
	if a == b {
		return t.devices[a].MemBandwidth // same-device "transfer"
	}
	l := t.LinkLevel(a, b)
	if a < b {
		return t.LevelDown(l)
	}
	return t.LevelUp(l)
}

// GroupBandwidth returns the bottleneck bandwidth for transfers from one
// device group to another: the minimum pairwise link bandwidth between any
// sender and receiver. Stage boundaries are charged at this rate.
func (t *Topology) GroupBandwidth(from, to []DeviceID) float64 {
	if len(from) == 0 || len(to) == 0 {
		return t.LevelDown(0)
	}
	min := -1.0
	for _, a := range from {
		for _, b := range to {
			bw := t.Bandwidth(a, b)
			if min < 0 || bw < min {
				min = bw
			}
		}
	}
	return min
}

// GroupSpansNodes reports whether the device group crosses a node boundary,
// which determines the bandwidth used for intra-stage gradient allreduce.
func (t *Topology) GroupSpansNodes(group []DeviceID) bool {
	if len(group) < 2 {
		return false
	}
	node := t.devices[group[0]].Node
	for _, d := range group[1:] {
		if t.devices[d].Node != node {
			return true
		}
	}
	return false
}

// AllreduceBandwidth returns the per-device bandwidth available for a ring
// allreduce over the group: the worse direction of the widest hierarchy
// level the ring crosses (a ring sends both up and down the pipeline
// order, so the slower direction paces it).
func (t *Topology) AllreduceBandwidth(group []DeviceID) float64 {
	l := 0
	if len(group) >= 2 {
		lo, hi := group[0], group[0]
		for _, d := range group[1:] {
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		l = t.LinkLevel(lo, hi)
	}
	down, up := t.LevelDown(l), t.LevelUp(l)
	if up < down {
		return up
	}
	return down
}

// ContiguousBlock returns the block covering the device group if the ids
// form a contiguous ascending run, which is how the planner places stages.
// Evaluators use it to recover placement-aware costs from a strategy; for
// non-contiguous groups (some baseline planners) ok is false and costs
// fall back to the placement-oblivious path.
func ContiguousBlock(ids []DeviceID) (Block, bool) {
	if len(ids) == 0 {
		return Block{}, false
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			return Block{}, false
		}
	}
	return Block{Start: int(ids[0]), Count: len(ids)}, true
}

// Allocator hands out contiguous blocks of device IDs. Contiguous allocation
// keeps data-parallel replicas of one stage on as few nodes as possible,
// which is how the paper's runtime places stages.
type Allocator struct {
	topo *Topology
	next DeviceID
}

// NewAllocator returns an allocator over t starting at device 0.
func NewAllocator(t *Topology) *Allocator { return &Allocator{topo: t} }

// Take allocates the next n contiguous devices. It returns an error if the
// topology is exhausted, which indicates a planner bug (C3 violation).
func (a *Allocator) Take(n int) ([]DeviceID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: invalid allocation size %d", n)
	}
	if int(a.next)+n > a.topo.Len() {
		return nil, fmt.Errorf("cluster: out of devices: want %d, have %d left", n, a.topo.Len()-int(a.next))
	}
	out := make([]DeviceID, n)
	for i := range out {
		out[i] = a.next
		a.next++
	}
	return out, nil
}

// Remaining returns the number of unallocated devices.
func (a *Allocator) Remaining() int { return a.topo.Len() - int(a.next) }

// SortIDs sorts device ids ascending in place and returns them.
func SortIDs(ids []DeviceID) []DeviceID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// PlaceStages assigns device groups to stages so that groups avoid
// straddling node boundaries when possible: groups of a whole node or more
// get whole nodes, smaller groups are first-fit packed into single nodes.
// Planners assume a stage of at most one node's devices synchronizes
// gradients over the fast intra-node links; this placement makes that
// assumption hold. counts must sum to exactly the topology size.
func PlaceStages(t *Topology, counts []int) ([][]DeviceID, error) {
	total := 0
	for _, c := range counts {
		if c <= 0 {
			return nil, fmt.Errorf("cluster: invalid stage device count %d", c)
		}
		total += c
	}
	if total != t.Len() {
		return nil, fmt.Errorf("cluster: stage device counts sum to %d, topology has %d", total, t.Len())
	}

	nodes := 1
	for _, d := range t.devices {
		if d.Node+1 > nodes {
			nodes = d.Node + 1
		}
	}
	free := make([][]DeviceID, nodes)
	for i := 0; i < t.Len(); i++ {
		d := t.devices[i]
		free[d.Node] = append(free[d.Node], d.ID)
	}

	// Place large groups first (whole nodes), then pack small groups
	// first-fit into the emptiest remaining nodes; process equal sizes in
	// stage order for determinism.
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })

	out := make([][]DeviceID, len(counts))
	for _, si := range order {
		need := counts[si]
		group := make([]DeviceID, 0, need)
		// Prefer nodes that fit the whole remainder; take the fullest
		// fitting node first to reduce fragmentation.
		for need > 0 {
			best := -1
			for ni := range free {
				if len(free[ni]) == 0 {
					continue
				}
				fits := len(free[ni]) >= need
				if best == -1 {
					best = ni
					continue
				}
				bestFits := len(free[best]) >= need
				switch {
				case fits && !bestFits:
					best = ni
				case fits == bestFits && len(free[ni]) < len(free[best]) && fits:
					best = ni // tightest fit among fitting nodes
				case fits == bestFits && !fits && len(free[ni]) > len(free[best]):
					best = ni // largest chunk when nothing fits
				}
			}
			if best == -1 {
				return nil, fmt.Errorf("cluster: placement ran out of devices")
			}
			take := need
			if take > len(free[best]) {
				take = len(free[best])
			}
			group = append(group, free[best][:take]...)
			free[best] = free[best][take:]
			need -= take
		}
		out[si] = SortIDs(group)
	}
	return out, nil
}
