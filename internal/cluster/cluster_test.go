package cluster

import "testing"

func TestSummitTopologyShape(t *testing.T) {
	topo := NewSummitTopology(8)
	if topo.Len() != 8 {
		t.Fatalf("Len = %d", topo.Len())
	}
	if topo.Device(0).Node != 0 || topo.Device(3).Node != 0 {
		t.Error("first four devices should share node 0")
	}
	if topo.Device(4).Node != 1 {
		t.Error("device 4 should be on node 1")
	}
	if topo.MinMemory() != 16e9 {
		t.Errorf("MinMemory = %g", topo.MinMemory())
	}
}

func TestBandwidthTiers(t *testing.T) {
	topo := NewSummitTopology(8)
	intra := topo.Bandwidth(0, 1)
	inter := topo.Bandwidth(0, 4)
	if intra <= inter {
		t.Errorf("intra-node bw %g should exceed inter-node %g", intra, inter)
	}
	if self := topo.Bandwidth(2, 2); self <= intra {
		t.Errorf("same-device bw %g should exceed link bw %g", self, intra)
	}
}

func TestGroupBandwidthBottleneck(t *testing.T) {
	topo := NewSummitTopology(8)
	// Group {0,1} to {2,3}: all intra-node.
	if bw := topo.GroupBandwidth([]DeviceID{0, 1}, []DeviceID{2, 3}); bw != topo.IntraNodeBandwidth {
		t.Errorf("intra-node group bw = %g", bw)
	}
	// Group {0} to {3,4}: crosses nodes, bottlenecked by IB.
	if bw := topo.GroupBandwidth([]DeviceID{0}, []DeviceID{3, 4}); bw != topo.InterNodeBandwidth {
		t.Errorf("cross-node group bw = %g", bw)
	}
	// Empty groups fall back to intra-node.
	if bw := topo.GroupBandwidth(nil, []DeviceID{0}); bw != topo.IntraNodeBandwidth {
		t.Errorf("empty group bw = %g", bw)
	}
}

func TestGroupSpansNodesAndAllreduce(t *testing.T) {
	topo := NewSummitTopology(8)
	if topo.GroupSpansNodes([]DeviceID{0, 1, 2, 3}) {
		t.Error("single-node group reported as spanning")
	}
	if !topo.GroupSpansNodes([]DeviceID{3, 4}) {
		t.Error("cross-node group not reported")
	}
	if topo.GroupSpansNodes([]DeviceID{5}) {
		t.Error("singleton group spans nodes")
	}
	if bw := topo.AllreduceBandwidth([]DeviceID{0, 1}); bw != topo.IntraNodeBandwidth {
		t.Errorf("intra allreduce bw = %g", bw)
	}
	if bw := topo.AllreduceBandwidth([]DeviceID{3, 4}); bw != topo.InterNodeBandwidth {
		t.Errorf("inter allreduce bw = %g", bw)
	}
}

func TestAllocator(t *testing.T) {
	topo := NewSummitTopology(4)
	a := NewAllocator(topo)
	g1, err := a.Take(2)
	if err != nil {
		t.Fatal(err)
	}
	if g1[0] != 0 || g1[1] != 1 {
		t.Errorf("first allocation = %v", g1)
	}
	if a.Remaining() != 2 {
		t.Errorf("Remaining = %d", a.Remaining())
	}
	g2, err := a.Take(2)
	if err != nil {
		t.Fatal(err)
	}
	if g2[0] != 2 || g2[1] != 3 {
		t.Errorf("second allocation = %v", g2)
	}
	if _, err := a.Take(1); err == nil {
		t.Error("over-allocation succeeded")
	}
	if _, err := a.Take(0); err == nil {
		t.Error("zero allocation succeeded")
	}
}

func TestUniformTopology(t *testing.T) {
	topo := NewUniformTopology(3, 1e9, 5e9)
	if topo.Len() != 3 || topo.MinMemory() != 1e9 {
		t.Fatalf("uniform topology wrong: len=%d mem=%g", topo.Len(), topo.MinMemory())
	}
	if topo.Bandwidth(0, 2) != 5e9 {
		t.Errorf("uniform bw = %g", topo.Bandwidth(0, 2))
	}
}

func TestSortIDs(t *testing.T) {
	ids := SortIDs([]DeviceID{3, 1, 2})
	if ids[0] != 1 || ids[2] != 3 {
		t.Errorf("SortIDs = %v", ids)
	}
}
