package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the heterogeneous / hierarchical topology surface: device
// classes, bandwidth levels with asymmetric per-direction rates, the
// explicit "topo:explicit/..." spec grammar with a canonical rendering,
// and the named built-in presets. The flat V100 Summit testbed of the
// paper is one preset here rather than package-level constants, so
// every consumer — CLI flags, service requests, artifact metadata,
// synth topology families — resolves cluster descriptions through one
// grammar with one canonical spelling per distinct topology.

// SpecPrefix marks a model-name-like string as a topology spec wherever
// topology names are resolved (models.Topology, CLI -topology flags,
// service requests).
const SpecPrefix = "topo:"

// explicitFamily is the spec family that spells a topology out in full;
// every other "topo:" family is a seeded synth generator that resolves
// to an explicit Spec.
const explicitFamily = "explicit"

// IsSpecName reports whether a topology name uses the spec grammar.
func IsSpecName(name string) bool { return strings.HasPrefix(name, SpecPrefix) }

// IsExplicitSpec reports whether a topology name is a fully explicit
// spec (as opposed to a seeded synth topology family).
func IsExplicitSpec(name string) bool {
	return strings.HasPrefix(name, SpecPrefix+explicitFamily+"/")
}

// DeviceClass is one accelerator model in a (possibly heterogeneous)
// cluster: the per-device capabilities every cost estimate reads.
type DeviceClass struct {
	Name         string
	MemoryBytes  float64
	PeakFLOPS    float64
	MemBandwidth float64
}

// Level is one tier of the interconnect hierarchy, innermost first:
// devices i and j communicate at the innermost level l with
// i/Width == j/Width. Bandwidth is directional — DownBandwidth carries
// pipeline-forward traffic (activations, toward higher device ids) and
// UpBandwidth pipeline-backward traffic (gradients) — following the
// asymmetric read/write transfer-cost treatment of Gu/Sun/Blelloch's
// asymmetric-memory model. Symmetric links simply set both equal.
type Level struct {
	Name          string
	Width         int
	DownBandwidth float64
	UpBandwidth   float64
	Latency       float64
}

// Spec is a fully explicit topology description: the interned device
// classes, the bandwidth hierarchy, and the per-device class
// assignment. It is the normal form every topology spelling — preset
// names, synth topology families, explicit strings — resolves to.
type Spec struct {
	Classes []DeviceClass
	Levels  []Level
	// Assign[i] is the index into Classes of device i.
	Assign []int
}

// Validate checks the structural invariants the builder and the
// canonical rendering rely on.
func (s Spec) Validate() error {
	if len(s.Classes) == 0 || len(s.Levels) == 0 || len(s.Assign) == 0 {
		return fmt.Errorf("cluster: spec needs classes, levels, and an assignment")
	}
	for i, c := range s.Classes {
		if c.MemoryBytes <= 0 || c.PeakFLOPS <= 0 || c.MemBandwidth <= 0 {
			return fmt.Errorf("cluster: device class %d (%q) has non-positive capabilities", i, c.Name)
		}
	}
	prev := 0
	for i, l := range s.Levels {
		if l.Width < 1 || l.DownBandwidth <= 0 || l.UpBandwidth <= 0 || l.Latency < 0 {
			return fmt.Errorf("cluster: level %d (%q) has invalid width/bandwidth/latency", i, l.Name)
		}
		if i > 0 {
			if l.Width <= prev || l.Width%prev != 0 {
				return fmt.Errorf("cluster: level widths must strictly increase and nest (level %d width %d after %d)",
					i, l.Width, prev)
			}
		}
		prev = l.Width
	}
	if last := s.Levels[len(s.Levels)-1].Width; last < len(s.Assign) {
		return fmt.Errorf("cluster: outermost level width %d does not span %d devices", last, len(s.Assign))
	}
	for i, ci := range s.Assign {
		if ci < 0 || ci >= len(s.Classes) {
			return fmt.Errorf("cluster: device %d assigned to unknown class %d", i, ci)
		}
	}
	return nil
}

// Build constructs the topology the spec describes.
func (s Spec) Build() (*Topology, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	inner, outer := s.Levels[0], s.Levels[len(s.Levels)-1]
	t := &Topology{
		IntraNodeBandwidth: inner.DownBandwidth,
		InterNodeBandwidth: outer.DownBandwidth,
		LinkLatency:        inner.Latency,
		levels:             append([]Level(nil), s.Levels...),
	}
	for i, ci := range s.Assign {
		c := s.Classes[ci]
		t.devices = append(t.devices, Device{
			ID:           DeviceID(i),
			Node:         i / inner.Width,
			MemoryBytes:  c.MemoryBytes,
			PeakFLOPS:    c.PeakFLOPS,
			MemBandwidth: c.MemBandwidth,
		})
	}
	t.internClasses()
	return t, nil
}

// f64 renders a float in the shortest exact form, so canonical strings
// round-trip bit-for-bit. Positive exponents drop the sign ("1.6e10",
// not "1.6e+10"): '+' is the class/level separator in the grammar, so a
// signed exponent would make Canonical output unparseable.
func f64(v float64) string {
	return strings.ReplaceAll(strconv.FormatFloat(v, 'g', -1, 64), "e+", "e")
}

// Canonical renders the spec in canonical explicit form. Class and
// level names are normalized (c0, c1, ... in order of first use in the
// assignment; l0, l1, ... innermost first) and unused classes dropped,
// so two spellings of the same physical topology — whatever the author
// called the tiers — render, and therefore fingerprint, identically.
func (s Spec) Canonical() string {
	// Re-index classes by first use.
	order := make([]int, 0, len(s.Classes))
	newIdx := make(map[int]int)
	for _, ci := range s.Assign {
		if _, ok := newIdx[ci]; !ok {
			newIdx[ci] = len(order)
			order = append(order, ci)
		}
	}
	var sb strings.Builder
	sb.WriteString(SpecPrefix + explicitFamily + "/classes=")
	for i, ci := range order {
		if i > 0 {
			sb.WriteByte('+')
		}
		c := s.Classes[ci]
		fmt.Fprintf(&sb, "c%d:%s:%s:%s", i, f64(c.MemoryBytes), f64(c.PeakFLOPS), f64(c.MemBandwidth))
	}
	sb.WriteString("/levels=")
	for i, l := range s.Levels {
		if i > 0 {
			sb.WriteByte('+')
		}
		fmt.Fprintf(&sb, "l%d:%d:%s:%s:%s", i, l.Width, f64(l.DownBandwidth), f64(l.UpBandwidth), f64(l.Latency))
	}
	sb.WriteString("/assign=")
	run, runStart := 0, 0
	flush := func(end int) {
		if run > 0 {
			if runStart > 0 {
				sb.WriteByte('+')
			}
			fmt.Fprintf(&sb, "%dxc%d", run, newIdx[s.Assign[end-1]])
		}
	}
	for i, ci := range s.Assign {
		if run > 0 && ci == s.Assign[i-1] {
			run++
			continue
		}
		flush(i)
		if run > 0 {
			runStart = i
		}
		run = 1
	}
	flush(len(s.Assign))
	return sb.String()
}

// ParseSpec decodes an explicit topology spec string (the inverse of
// Spec.Canonical, though it accepts arbitrary class/level names).
func ParseSpec(name string) (Spec, error) {
	if !IsExplicitSpec(name) {
		return Spec{}, fmt.Errorf("cluster: %q is not an explicit topology spec (want %s%s/...)",
			name, SpecPrefix, explicitFamily)
	}
	rest := strings.TrimPrefix(name, SpecPrefix+explicitFamily+"/")
	var spec Spec
	classIdx := make(map[string]int)
	for _, kv := range strings.Split(rest, "/") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("cluster: malformed topology knob %q in %q (want key=value)", kv, name)
		}
		switch k {
		case "classes":
			for _, cs := range strings.Split(v, "+") {
				f := strings.Split(cs, ":")
				if len(f) != 4 {
					return Spec{}, fmt.Errorf("cluster: class %q: want name:mem:flops:membw", cs)
				}
				c := DeviceClass{Name: f[0]}
				var err error
				if c.MemoryBytes, err = strconv.ParseFloat(f[1], 64); err == nil {
					if c.PeakFLOPS, err = strconv.ParseFloat(f[2], 64); err == nil {
						c.MemBandwidth, err = strconv.ParseFloat(f[3], 64)
					}
				}
				if err != nil {
					return Spec{}, fmt.Errorf("cluster: class %q: %v", cs, err)
				}
				if _, dup := classIdx[c.Name]; dup {
					return Spec{}, fmt.Errorf("cluster: duplicate device class %q", c.Name)
				}
				classIdx[c.Name] = len(spec.Classes)
				spec.Classes = append(spec.Classes, c)
			}
		case "levels":
			for _, ls := range strings.Split(v, "+") {
				f := strings.Split(ls, ":")
				if len(f) != 5 {
					return Spec{}, fmt.Errorf("cluster: level %q: want name:width:down:up:latency", ls)
				}
				l := Level{Name: f[0]}
				var err error
				if l.Width, err = strconv.Atoi(f[1]); err == nil {
					if l.DownBandwidth, err = strconv.ParseFloat(f[2], 64); err == nil {
						if l.UpBandwidth, err = strconv.ParseFloat(f[3], 64); err == nil {
							l.Latency, err = strconv.ParseFloat(f[4], 64)
						}
					}
				}
				if err != nil {
					return Spec{}, fmt.Errorf("cluster: level %q: %v", ls, err)
				}
				spec.Levels = append(spec.Levels, l)
			}
		case "assign":
			for _, as := range strings.Split(v, "+") {
				cnt, cls, ok := strings.Cut(as, "x")
				if !ok {
					return Spec{}, fmt.Errorf("cluster: assignment %q: want COUNTxCLASS", as)
				}
				n, err := strconv.Atoi(cnt)
				if err != nil || n < 1 {
					return Spec{}, fmt.Errorf("cluster: assignment %q: bad count", as)
				}
				ci, ok := classIdx[cls]
				if !ok {
					return Spec{}, fmt.Errorf("cluster: assignment %q references unknown class %q", as, cls)
				}
				for i := 0; i < n; i++ {
					spec.Assign = append(spec.Assign, ci)
				}
			}
		default:
			return Spec{}, fmt.Errorf("cluster: unknown topology knob %q in %q", k, name)
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// ParseTopology builds a topology from an explicit spec string.
func ParseTopology(name string) (*Topology, error) {
	spec, err := ParseSpec(name)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}

// --- built-in presets ---

// Summit-testbed constants (the paper's evaluation platform, §7): nodes
// of 4 NVLink-connected V100s with 100 Gb/s EDR InfiniBand between
// nodes. These live inside the SummitSpec preset — the one named place
// tests and tools reference — rather than as loose package literals.
const (
	summitMemoryBytes  = 16e9   // 16 GB HBM2
	summitPeakFLOPS    = 112e12 // tensor-core peak, de-rated from 125 TFLOPS
	summitMemBandwidth = 900e9  // 900 GB/s HBM2
	summitNVLink       = 150e9  // effective NVLink bytes/s
	summitIB           = 12.5e9 // 100 Gb/s EDR InfiniBand
	summitLatency      = 5e-6   // 5 µs per transfer
	summitGPUsPerNode  = 4
)

// SummitSpec is the named built-in preset mirroring the paper's
// testbed: n V100-class devices, four per node.
func SummitSpec(n int) Spec {
	outer := n
	if outer < summitGPUsPerNode {
		outer = summitGPUsPerNode
	}
	// Round the cluster width up to whole nodes so the level widths nest,
	// and keep it strictly wider than a node even when the cluster is a
	// single node (the cluster tier is then simply unreachable).
	if r := outer % summitGPUsPerNode; r != 0 {
		outer += summitGPUsPerNode - r
	}
	if outer <= summitGPUsPerNode {
		outer = 2 * summitGPUsPerNode
	}
	assign := make([]int, n)
	return Spec{
		Classes: []DeviceClass{{
			Name: "v100", MemoryBytes: summitMemoryBytes,
			PeakFLOPS: summitPeakFLOPS, MemBandwidth: summitMemBandwidth,
		}},
		Levels: []Level{
			{Name: "node", Width: summitGPUsPerNode,
				DownBandwidth: summitNVLink, UpBandwidth: summitNVLink, Latency: summitLatency},
			{Name: "cluster", Width: outer,
				DownBandwidth: summitIB, UpBandwidth: summitIB, Latency: summitLatency},
		},
		Assign: assign,
	}
}

// presets names the built-in topology shapes.
var presets = map[string]func(n int) Spec{
	"summit": SummitSpec,
}

// PresetNames lists the built-in preset names, sorted.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Preset builds a named built-in topology at n devices.
func Preset(name string, n int) (*Topology, error) {
	f, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown topology preset %q (known: %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	if n < 1 {
		return nil, fmt.Errorf("cluster: preset %q needs a positive device count, got %d", name, n)
	}
	return f(n).Build()
}
