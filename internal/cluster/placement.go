package cluster

import (
	"fmt"
	"strings"
)

// PlacementTable interns the cost-equivalence classes of contiguous device
// blocks. Two blocks share a class exactly when every placement-aware cost
// the planner computes — per-op compute times (device-class sequence),
// boundary transfer rates (the level of the link feeding the block), and
// allreduce bandwidth (internal link levels) — is identical, so a DP memo
// entry keyed by class is valid for every block of that class.
//
// The class signature is hereditary under aligned sub-splits: splitting
// two same-class blocks at the same offset yields pairwise same-class
// halves (the halves see identical class/level sequences, and the right
// half's in-link is an internal link of the parent, also identical). That
// is what makes memo sharing across blocks sound.
//
// On a flat uniform topology every block of a given size is one class, so
// the placement dimension collapses and the table adds no search state.
// When a topology needs more classes than the DP key's placement field can
// hold (MaxPlacementClasses), the table degrades to start-keyed placement:
// each block is identified by its start offset, which always fits the
// field. That forfeits memo sharing across equivalent blocks but never
// soundness.
type PlacementTable struct {
	n int
	// byStart marks the degraded start-keyed mode: Class returns the block
	// start, and no interning happened.
	byStart bool
	// class[start*n + (count-1)] is the interned class of Block{start, count}.
	class []uint16
	reps  []Block  // one representative block per class
	sigs  []string // class signature, indexed by class id
}

// MaxPlacementClasses bounds how many placement classes fit in the DP
// key's 8-bit placement field. Fully irregular (or simply very large)
// topologies can exceed it — up to n(n+1)/2 distinct classes — and then
// the table falls back to start-keyed placement instead of corrupting
// keys.
const MaxPlacementClasses = 256

// NewPlacementTable builds the class table for every contiguous block of
// the topology.
func NewPlacementTable(t *Topology) *PlacementTable {
	n := t.Len()
	pt := &PlacementTable{n: n, class: make([]uint16, n*n)}
	seen := make(map[string]uint16)
	var sb strings.Builder
	for count := 1; count <= n; count++ {
		for start := 0; start+count <= n; start++ {
			sb.Reset()
			fmt.Fprintf(&sb, "in%d", t.InLinkLevel(start))
			for i := start; i < start+count; i++ {
				fmt.Fprintf(&sb, ",%d", t.ClassOf(DeviceID(i)))
				if i > start {
					fmt.Fprintf(&sb, "@%d", t.LinkLevel(DeviceID(i-1), DeviceID(i)))
				}
			}
			sig := sb.String()
			ci, ok := seen[sig]
			if !ok {
				if len(pt.reps) >= MaxPlacementClasses {
					return newStartKeyedTable(n)
				}
				ci = uint16(len(pt.reps))
				seen[sig] = ci
				pt.reps = append(pt.reps, Block{Start: start, Count: count})
				pt.sigs = append(pt.sigs, sig)
			}
			pt.class[start*n+count-1] = ci
		}
	}
	return pt
}

// newStartKeyedTable is the degraded mode: class id = block start. The
// signatures are the start offsets, so snapshot translation across two
// start-keyed topologies maps offset to offset (sound whenever the cost
// signature matched — the topologies then agree on every shared block).
func newStartKeyedTable(n int) *PlacementTable {
	pt := &PlacementTable{n: n, byStart: true}
	pt.sigs = make([]string, n)
	for i := range pt.sigs {
		pt.sigs[i] = fmt.Sprintf("s%d", i)
	}
	return pt
}

// Class returns the interned class id of the block [start, start+count).
func (pt *PlacementTable) Class(start, count int) int {
	if pt.byStart {
		return start
	}
	return int(pt.class[start*pt.n+count-1])
}

// NumClasses returns how many distinct class ids the table can emit.
func (pt *PlacementTable) NumClasses() int {
	if pt.byStart {
		return pt.n
	}
	return len(pt.reps)
}

// Rep returns a block representative of the given class at the given
// count: any block of the class has identical costs, so cost queries use
// the representative and share cache entries.
func (pt *PlacementTable) Rep(class, count int) Block {
	if pt.byStart {
		return Block{Start: class, Count: count}
	}
	return pt.reps[class]
}

// Signatures returns the class signatures in class-id order. Class ids are
// NOT stable across topologies that merely share per-device costs (a larger
// topology can intern extra classes between two ids the smaller one has),
// so persisted state that carries class ids must also carry this list and
// translate ids by signature on load.
func (pt *PlacementTable) Signatures() []string { return pt.sigs }
