package cluster

import (
	"testing"
	"testing/quick"
)

func nodesOf(t *Topology, ids []DeviceID) map[int]bool {
	out := map[int]bool{}
	for _, id := range ids {
		out[t.Device(id).Node] = true
	}
	return out
}

func TestPlaceStagesWholeNodes(t *testing.T) {
	topo := NewSummitTopology(8)
	groups, err := PlaceStages(topo, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		if len(nodesOf(topo, g)) != 1 {
			t.Errorf("group %d straddles nodes: %v", i, g)
		}
	}
}

func TestPlaceStagesSmallGroupsPacked(t *testing.T) {
	topo := NewSummitTopology(8)
	groups, err := PlaceStages(topo, []int{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		if len(nodesOf(topo, g)) != 1 {
			t.Errorf("2-device group %d straddles nodes: %v", i, g)
		}
	}
}

func TestPlaceStagesMixed(t *testing.T) {
	topo := NewSummitTopology(16)
	// 8 + 4 + 3 + 1: the 8 takes two nodes, 4 one node, 3 and 1 pack the
	// last node.
	groups, err := PlaceStages(topo, []int{8, 4, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodesOf(topo, groups[1])) != 1 {
		t.Errorf("4-device group straddles: %v", groups[1])
	}
	if len(nodesOf(topo, groups[2])) != 1 {
		t.Errorf("3-device group straddles: %v", groups[2])
	}
	// All devices covered exactly once.
	seen := map[DeviceID]bool{}
	n := 0
	for _, g := range groups {
		for _, id := range g {
			if seen[id] {
				t.Fatalf("device %d assigned twice", id)
			}
			seen[id] = true
			n++
		}
	}
	if n != 16 {
		t.Errorf("covered %d devices, want 16", n)
	}
}

func TestPlaceStagesErrors(t *testing.T) {
	topo := NewSummitTopology(4)
	if _, err := PlaceStages(topo, []int{2, 1}); err == nil {
		t.Error("accepted undersubscribed counts")
	}
	if _, err := PlaceStages(topo, []int{4, 1}); err == nil {
		t.Error("accepted oversubscribed counts")
	}
	if _, err := PlaceStages(topo, []int{4, 0}); err == nil {
		t.Error("accepted zero count")
	}
}

// Property: any composition of positive counts summing to the topology size
// yields a disjoint exact cover, and any group of ≤4 devices stays within
// one node whenever the count mix makes that possible (all counts ≤ 4 and
// 4-aligned packing exists trivially when each count divides 4).
func TestPlaceStagesQuick(t *testing.T) {
	f := func(seed uint8) bool {
		// Build a random composition of 16 from {1,2,4}.
		sizes := []int{1, 2, 4}
		var counts []int
		left := 16
		x := int(seed)
		for left > 0 {
			c := sizes[x%3]
			x = x/3 + 7
			if c > left {
				c = left
			}
			counts = append(counts, c)
			left -= c
		}
		topo := NewSummitTopology(16)
		groups, err := PlaceStages(topo, counts)
		if err != nil {
			return false
		}
		seen := map[DeviceID]bool{}
		for gi, g := range groups {
			if len(g) != counts[gi] {
				return false
			}
			for _, id := range g {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return len(seen) == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Counts of {1,2,4} compositions always admit straddle-free packing of the
// ≤4 groups when each node's capacity is 4 and sizes are powers of two.
func TestPlaceStagesPow2NoStraddle(t *testing.T) {
	topo := NewSummitTopology(16)
	for _, counts := range [][]int{
		{4, 4, 4, 4}, {4, 4, 4, 2, 2}, {2, 2, 2, 2, 4, 4},
		{1, 1, 2, 4, 4, 4}, {1, 1, 1, 1, 2, 2, 4, 4},
	} {
		groups, err := PlaceStages(topo, counts)
		if err != nil {
			t.Fatalf("%v: %v", counts, err)
		}
		for gi, g := range groups {
			if counts[gi] <= 4 && len(nodesOf(topo, g)) != 1 {
				t.Errorf("counts %v: group %d (%d devices) straddles nodes %v",
					counts, gi, counts[gi], g)
			}
		}
	}
}
