package core

import (
	"bytes"
	"fmt"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/models"
	"graphpipe/internal/strategy"
)

// reuseCase is one (model, devices) cell of the cross-probe-reuse
// equivalence matrix: every planner-relevant evaluation model at the
// paper's smallest and largest cluster sizes.
type reuseCase struct {
	name    string
	build   func() *graph.Graph
	devices int
	// miniBatch for the cell. The 32-device cells use reduced mini-batch
	// sizes (a shorter candidate ladder than the paper's Appendix A.2
	// pairing) so the reference path — a fresh memo per probe, sequential —
	// stays affordable under -race; the DP itself still partitions the full
	// model over 32 devices.
	miniBatch int
}

func reuseCases() []reuseCase {
	mmt := func() *graph.Graph { return models.MMT(models.DefaultMMTConfig()) }
	mmt2b := func() *graph.Graph {
		cfg := models.DefaultMMTConfig()
		cfg.Branches = 2
		return models.MMT(cfg)
	}
	dlrm := func() *graph.Graph { return models.DLRM(models.DefaultDLRMConfig()) }
	candle := func() *graph.Graph { return models.CANDLEUno(models.DefaultCANDLEUnoConfig()) }
	return []reuseCase{
		{"mmt", mmt, 4, 64},
		{"mmt", mmt, 32, 256},
		{"mmt-2b", mmt2b, 4, 64},
		{"mmt-2b", mmt2b, 32, 256},
		{"dlrm", dlrm, 4, 256},
		{"dlrm", dlrm, 32, 512},
		{"candle-uno", candle, 4, 4096},
		{"candle-uno", candle, 32, 4096},
	}
}

// planArtifact plans g and renders the result as a serialized artifact with
// provenance stripped of search statistics, so two planning paths that find
// the same strategy produce byte-identical artifacts.
func planArtifact(t *testing.T, g *graph.Graph, c reuseCase, opts Options) ([]byte, *Result) {
	t.Helper()
	topo := cluster.NewSummitTopology(c.devices)
	p, err := NewPlanner(g, costmodel.NewDefault(topo), opts)
	if err != nil {
		t.Fatalf("%s/%d: NewPlanner: %v", c.name, c.devices, err)
	}
	r, err := p.Plan(c.miniBatch)
	if err != nil {
		t.Fatalf("%s/%d: Plan: %v", c.name, c.devices, err)
	}
	data, err := strategy.EncodeArtifact(&strategy.Artifact{
		Model:     c.name,
		Devices:   c.devices,
		MiniBatch: c.miniBatch,
		Planner:   strategy.PlannerMeta{Name: "graphpipe"},
		Strategy:  r.Strategy,
	})
	if err != nil {
		t.Fatalf("%s/%d: EncodeArtifact: %v", c.name, c.devices, err)
	}
	return data, r
}

// TestCrossProbeReuseEquivalence pins the tentpole's correctness claim: the
// probe-spanning memo with monotone validity intervals returns exactly the
// strategy of the reference search (a fresh memo per probe, Workers=1) on
// every planner-relevant model × {4, 32} devices, while recomputing
// strictly fewer DP states.
func TestCrossProbeReuseEquivalence(t *testing.T) {
	for _, c := range reuseCases() {
		c := c
		t.Run(fmt.Sprintf("%s-%ddev", c.name, c.devices), func(t *testing.T) {
			if testing.Short() && c.devices > 4 {
				t.Skip("32-device cells skipped in -short mode")
			}
			g := c.build()
			refArt, ref := planArtifact(t, g, c, Options{Workers: 1, FreshProbeMemo: true})
			optArt, opt := planArtifact(t, g, c, Options{Workers: 1})
			if !bytes.Equal(refArt, optArt) {
				t.Errorf("artifacts differ between fresh-memo reference and cross-probe reuse:\nref:\n%s\nopt:\n%s",
					refArt, optArt)
			}
			if opt.DPStates >= ref.DPStates {
				t.Errorf("reuse did not reduce DP states: %d (reuse) vs %d (reference)",
					opt.DPStates, ref.DPStates)
			}
			if opt.BinaryIters != ref.BinaryIters {
				t.Errorf("binary-search trajectory diverged: %d iters (reuse) vs %d (reference)",
					opt.BinaryIters, ref.BinaryIters)
			}
			t.Logf("%s/%d: DP states %d -> %d (%.1fx fewer)",
				c.name, c.devices, ref.DPStates, opt.DPStates,
				float64(ref.DPStates)/float64(opt.DPStates))
		})
	}
}
