package core

import (
	"bytes"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/memosnap"
	"graphpipe/internal/models"
	"graphpipe/internal/strategy"
)

// planBytes serializes a strategy with identity metadata only, so two
// searches that found the same strategy compare byte-equal regardless of
// their search statistics.
func planBytes(t *testing.T, st *strategy.Strategy, devices, mb int) []byte {
	t.Helper()
	data, err := strategy.EncodeArtifact(&strategy.Artifact{
		Model: "test", Devices: devices, MiniBatch: mb,
		Planner: strategy.PlannerMeta{Name: "graphpipe"}, Strategy: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// coldSnapshot plans cold with a sink attached and returns both.
func coldSnapshot(t *testing.T, g *graph.Graph, devices, mb int) (*Result, *memosnap.Snapshot) {
	t.Helper()
	var snap *memosnap.Snapshot
	topo := cluster.NewSummitTopology(devices)
	p, err := NewPlanner(g, costmodel.NewDefault(topo), Options{
		Workers:  1,
		MemoSink: func(s *memosnap.Snapshot) { snap = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Plan(mb)
	if err != nil {
		t.Fatalf("cold plan: %v", err)
	}
	if snap == nil {
		t.Fatal("MemoSink never called")
	}
	return r, snap
}

func warmPlan(t *testing.T, g *graph.Graph, devices, mb int, snap *memosnap.Snapshot) *Result {
	t.Helper()
	topo := cluster.NewSummitTopology(devices)
	p, err := NewPlanner(g, costmodel.NewDefault(topo), Options{
		Workers:  1,
		WarmMemo: func(k memosnap.Key) *memosnap.Snapshot { return snap },
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Plan(mb)
	if err != nil {
		t.Fatalf("warm plan: %v", err)
	}
	return r
}

// TestWarmColdEquivalence is the core property the whole feature hangs
// on: a warm-started search produces a byte-identical strategy to a cold
// one — at the same request, at a different device count (elastic
// replan), and at a different mini-batch — while actually reusing entries
// where the snapshot applies.
func TestWarmColdEquivalence(t *testing.T) {
	g := models.MMT(models.DefaultMMTConfig())
	const devs, mb = 4, 64
	cold, snap := coldSnapshot(t, g, devs, mb)
	if snap.Entries() == 0 {
		t.Fatal("exported snapshot is empty")
	}
	if cold.MemoWarmStarted || cold.MemoEntriesReused != 0 {
		t.Errorf("cold plan reports warm stats: %+v", cold)
	}

	// Same request replayed warm: the root entries cover the whole probe
	// sequence, so nearly everything is reused.
	warm := warmPlan(t, g, devs, mb, snap)
	if !bytes.Equal(planBytes(t, warm.Strategy, devs, mb), planBytes(t, cold.Strategy, devs, mb)) {
		t.Error("warm replay of the same request diverged from cold")
	}
	if !warm.MemoWarmStarted || warm.MemoEntriesReused == 0 {
		t.Errorf("warm replay reused nothing: %+v", warm)
	}
	if warm.DPStates >= cold.DPStates {
		t.Errorf("warm replay explored %d states, cold %d — no savings", warm.DPStates, cold.DPStates)
	}

	// Elastic replan: same graph and mini-batch, half the devices. The
	// 2-device search queries only degree ≤ 2 keys, all of which the
	// 4-device snapshot carries.
	coldHalf, _ := coldSnapshot(t, g, devs/2, mb)
	warmHalf := warmPlan(t, g, devs/2, mb, snap)
	if !bytes.Equal(planBytes(t, warmHalf.Strategy, devs/2, mb), planBytes(t, coldHalf.Strategy, devs/2, mb)) {
		t.Error("warm elastic replan at devices/2 diverged from cold")
	}
	if !warmHalf.MemoWarmStarted || warmHalf.MemoEntriesReused == 0 {
		t.Errorf("elastic replan reused nothing: %+v", warmHalf)
	}

	// Mini-batch change: memo values depend on B through the allreduce
	// term, so no SearchMemo matches — the plan must silently run cold
	// and still agree with a genuinely cold plan.
	coldMB, _ := coldSnapshot(t, g, devs, 2*mb)
	warmMB := warmPlan(t, g, devs, 2*mb, snap)
	if !bytes.Equal(planBytes(t, warmMB.Strategy, devs, 2*mb), planBytes(t, coldMB.Strategy, devs, 2*mb)) {
		t.Error("warm plan at doubled mini-batch diverged from cold")
	}
	if warmMB.MemoWarmStarted {
		t.Error("doubled mini-batch claimed a warm start with no matching SearchMemo")
	}
}

// TestSnapshotRoundTripByteStable pins the two byte-stability properties
// the disk tier and the merged sweep files rest on: the wire format
// round-trips exactly, and a search that imports a snapshot but computes
// nothing exports nothing — so merging its export back into the
// accumulated snapshot reproduces the same bytes, plan after plan, with
// no drift.
func TestSnapshotRoundTripByteStable(t *testing.T) {
	g := models.MMT(models.DefaultMMTConfig())
	topo := cluster.NewSummitTopology(4)
	_, snap := coldSnapshot(t, g, 4, 64)

	wire := memosnap.Encode(snap)
	decoded, err := memosnap.Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(memosnap.Encode(decoded), wire) {
		t.Error("decode → re-encode changed the snapshot bytes")
	}

	// Import every SearchMemo into fresh, unprobed searches on a fresh
	// planner: each export must be empty (the exporter emits only computed
	// entries), and merging the empty exports into the accumulated
	// snapshot must leave its bytes untouched.
	p2, err := NewPlanner(g, costmodel.NewDefault(topo), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p2.zones.resolveAll(p2.zones.intern(p2.dec.Root()))
	p2.evalCaches = map[int]*evalTable{}
	re := &memosnap.Snapshot{Key: decoded.Key, Placements: decoded.Placements}
	for i := range decoded.Searches {
		sm := &decoded.Searches[i]
		s := p2.newSearch(int(sm.RootB), int(sm.MiniBatch), nil, nil)
		if !s.importMemo(sm, decoded.Placements) {
			t.Fatalf("importMemo rejected search %d (mb=%d b=%d)", i, sm.MiniBatch, sm.RootB)
		}
		ex := p2.exportSearch(s)
		if len(ex.Entries) != 0 || len(ex.Nodes) != 0 {
			t.Errorf("unprobed import re-exported %d entries, %d nodes; want none", len(ex.Entries), len(ex.Nodes))
		}
		re.Searches = append(re.Searches, ex)
	}
	if !bytes.Equal(memosnap.Encode(memosnap.Merge(decoded, re)), wire) {
		t.Error("merging an unprobed re-export changed the accumulated snapshot bytes")
	}
}

// TestWarmRejectsIncompatibleSnapshots pins every degradation path: a
// wrong key, a doctored memo, and the reference FreshProbeMemo path all
// plan cold — never error, never import.
func TestWarmRejectsIncompatibleSnapshots(t *testing.T) {
	g := models.MMT(models.DefaultMMTConfig())
	const devs, mb = 4, 64
	cold, snap := coldSnapshot(t, g, devs, mb)
	coldBytes := planBytes(t, cold.Strategy, devs, mb)

	check := func(name string, snap *memosnap.Snapshot) {
		t.Helper()
		r := warmPlan(t, g, devs, mb, snap)
		if r.MemoWarmStarted || r.MemoEntriesReused != 0 {
			t.Errorf("%s: imported anyway: %+v", name, r)
		}
		if !bytes.Equal(planBytes(t, r.Strategy, devs, mb), coldBytes) {
			t.Errorf("%s: degraded plan diverged from cold", name)
		}
	}

	check("nil snapshot", nil)

	wrongKey := *snap
	wrongKey.Key.CostSig++
	check("wrong cost signature", &wrongKey)

	doctor := func(mutate func(sm *memosnap.SearchMemo)) *memosnap.Snapshot {
		d, err := memosnap.Decode(memosnap.Encode(snap))
		if err != nil {
			t.Fatal(err)
		}
		for i := range d.Searches {
			mutate(&d.Searches[i])
		}
		return d
	}
	check("zone-table mismatch", doctor(func(sm *memosnap.SearchMemo) { sm.NumZones++ }))
	check("frozen configs mismatch", doctor(func(sm *memosnap.SearchMemo) {
		if len(sm.Configs) > 0 {
			sm.Configs[0].K++
		}
	}))
	check("key field out of range", doctor(func(sm *memosnap.SearchMemo) {
		if len(sm.Entries) > 0 {
			sm.Entries[0].Key |= 0x3FFF // zone id beyond the table
		}
	}))
	check("corrupted node tree", doctor(func(sm *memosnap.SearchMemo) {
		for i := range sm.Nodes {
			if !sm.Nodes[i].Leaf {
				sm.Nodes[i].NStages++ // breaks nStages = left + right
				return
			}
		}
	}))

	// FreshProbeMemo is the reference path: it neither imports nor
	// exports, even with both hooks set.
	topo := cluster.NewSummitTopology(devs)
	sinkCalled := false
	p, err := NewPlanner(g, costmodel.NewDefault(topo), Options{
		Workers:        1,
		FreshProbeMemo: true,
		WarmMemo: func(memosnap.Key) *memosnap.Snapshot {
			t.Error("FreshProbeMemo consulted WarmMemo")
			return nil
		},
		MemoSink: func(*memosnap.Snapshot) { sinkCalled = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Plan(mb)
	if err != nil {
		t.Fatal(err)
	}
	if sinkCalled {
		t.Error("FreshProbeMemo exported a snapshot")
	}
	if !bytes.Equal(planBytes(t, r.Strategy, devs, mb), coldBytes) {
		t.Error("FreshProbeMemo plan diverged")
	}
}

// TestSnapshotKeySensitivity pins which inputs the compatibility key
// tracks: structural options and cost observables change it, the device
// count within a boundary regime does not (that is what makes elastic
// replans warm), and crossing the inter-node regime does.
func TestSnapshotKeySensitivity(t *testing.T) {
	g := models.MMT(models.DefaultMMTConfig())
	keyFor := func(devices int, opts Options) memosnap.Key {
		topo := cluster.NewSummitTopology(devices)
		p, err := NewPlanner(g, costmodel.NewDefault(topo), opts)
		if err != nil {
			t.Fatal(err)
		}
		return p.snapshotKey()
	}
	base := keyFor(4, Options{})
	if k := keyFor(2, Options{}); k != base {
		t.Errorf("device count within one regime changed the key: %+v vs %+v", k, base)
	}
	if k := keyFor(8, Options{}); k.CostSig == base.CostSig {
		t.Error("crossing the inter-node regime kept the cost signature")
	}
	if k := keyFor(4, Options{DisableSinkAnchoredSplits: true}); k.ShapeSig == base.ShapeSig {
		t.Error("split-rule change kept the shape signature")
	}
	if k := keyFor(4, Options{ForcedMicroBatch: 8}); k.ShapeSig == base.ShapeSig {
		t.Error("forced micro-batch kept the shape signature")
	}
	g2 := models.SequentialTransformer(8)
	topo := cluster.NewSummitTopology(4)
	p2, err := NewPlanner(g2, costmodel.NewDefault(topo), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p2.snapshotKey().GraphHash == base.GraphHash {
		t.Error("different graphs share a graph hash")
	}
}
