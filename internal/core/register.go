package core

import (
	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
	"graphpipe/internal/planner"
	"graphpipe/internal/strategy"
)

// registered adapts the core planner to the planner.Planner interface and
// registers it as "graphpipe".
type registered struct{}

func (registered) Name() string { return "graphpipe" }

func (registered) Plan(g *graph.Graph, topo *cluster.Topology, miniBatch int, opts planner.Options) (*strategy.Strategy, planner.Stats, error) {
	p, err := NewPlanner(g, opts.Model(topo), Options{
		ForcedMicroBatch:          opts.ForcedMicroBatch,
		MaxMicroBatch:             opts.MaxMicroBatch,
		Workers:                   opts.Workers,
		PerStageMicroBatch:        opts.PerStageMicroBatch,
		DisableSinkAnchoredSplits: opts.DisableSinkAnchoredSplits,
		FreshProbeMemo:            opts.FreshProbeMemo,
		PlacementOblivious:        opts.PlacementOblivious,
		WarmMemo:                  opts.WarmMemo,
		MemoSink:                  opts.MemoSink,
		Span:                      opts.Span,
	})
	if err != nil {
		return nil, planner.Stats{}, err
	}
	r, err := p.Plan(miniBatch)
	if err != nil {
		return nil, planner.Stats{}, err
	}
	return r.Strategy, planner.Stats{
		BottleneckTPS:     r.BottleneckTPS,
		DPStates:          r.DPStates,
		BinaryIters:       r.BinaryIters,
		MemoWarmStarted:   r.MemoWarmStarted,
		MemoEntriesReused: r.MemoEntriesReused,
	}, nil
}

func init() { planner.Register(registered{}) }
