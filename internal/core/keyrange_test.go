package core

import (
	"strings"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/models"
)

// The dpKey packing masks each field to a fixed bit width; Plan must reject
// any configuration that could overflow a field instead of silently
// colliding memo keys (and returning a corrupt strategy).

func newTestPlanner(t *testing.T, devices int, opts Options) *Planner {
	t.Helper()
	g := models.SequentialTransformer(2)
	topo := cluster.NewSummitTopology(devices)
	p, err := NewPlanner(g, costmodel.NewDefault(topo), opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKeyRangeDeviceLimit(t *testing.T) {
	// 127 devices is the last packable count; direct validation accepts it.
	p := newTestPlanner(t, 127, Options{})
	if err := p.validateKeyRanges([]int{1}); err != nil {
		t.Errorf("127 devices rejected: %v", err)
	}
	// 128 devices would wrap the 7-bit field to 0: Plan must error out.
	p = newTestPlanner(t, 128, Options{})
	if _, err := p.Plan(256); err == nil || !strings.Contains(err.Error(), "device") {
		t.Errorf("128 devices: want device-limit error, got %v", err)
	}
}

func TestKeyRangeConfigLimit(t *testing.T) {
	ks := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	// 64 schedule configs exceed the 6-bit index (the placement dimension
	// took the bits the config index used to have).
	p := newTestPlanner(t, 2, Options{KCandidates: ks(64)})
	if _, err := p.Plan(4); err == nil || !strings.Contains(err.Error(), "config") {
		t.Errorf("64 configs: want config-limit error, got %v", err)
	}
	// 63 fit (boundary): validation itself must pass.
	p = newTestPlanner(t, 2, Options{KCandidates: ks(63)})
	if err := p.validateKeyRanges([]int{1}); err != nil {
		t.Errorf("63 configs rejected: %v", err)
	}
}

func TestKeyRangeInFlightBound(t *testing.T) {
	// A micro-batch so large that the worst-case in-flight count
	// (3·k·b·devices) cannot fit the 22-bit field. ForcedMicroBatch
	// bypasses the MaxMicroBatch cap, which is exactly how an oversized
	// model would have silently truncated before the check existed.
	const huge = 1 << 25
	p := newTestPlanner(t, 4, Options{ForcedMicroBatch: huge})
	if _, err := p.Plan(huge); err == nil || !strings.Contains(err.Error(), "in-flight") {
		t.Errorf("huge micro-batch: want in-flight-bound error, got %v", err)
	}
}

func TestKeyRangeZoneLimit(t *testing.T) {
	p := newTestPlanner(t, 2, Options{})
	// White-box: inflate the interned-zone table past the 14-bit id space;
	// building a real >16384-zone model in a unit test would dominate the
	// suite's runtime.
	p.zones.sets = make([]graph.NodeSet, maxZoneID+2)
	if err := p.validateKeyRanges([]int{1}); err == nil || !strings.Contains(err.Error(), "zone") {
		t.Errorf("oversized zone table: want zone-limit error, got %v", err)
	}
	p.zones.sets = p.zones.sets[:maxZoneID+1] // boundary: exactly 2^14 zones fit
	if err := p.validateKeyRanges([]int{1}); err != nil {
		t.Errorf("full-but-legal zone table rejected: %v", err)
	}
}
