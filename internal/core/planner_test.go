package core

import (
	"graphpipe/internal/sim"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/models"
	"graphpipe/internal/schedule"
)

func planFor(t testing.TB, g *graph.Graph, devices, miniBatch int, opts Options) *Result {
	t.Helper()
	topo := cluster.NewSummitTopology(devices)
	m := costmodel.NewDefault(topo)
	p, err := NewPlanner(g, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Plan(miniBatch)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	return r
}

func TestPlanSequentialChain(t *testing.T) {
	g := models.SequentialTransformer(8)
	r := planFor(t, g, 4, 32, Options{})
	topo := cluster.NewSummitTopology(4)
	if err := r.Strategy.Validate(g, topo); err != nil {
		t.Fatalf("strategy invalid: %v", err)
	}
	if n := r.Strategy.NumStages(); n < 1 || n > 4 {
		t.Errorf("stages = %d", n)
	}
	// A chain's stage graph is a chain: depth == number of stages.
	if r.Strategy.Depth() != r.Strategy.NumStages() {
		t.Errorf("chain depth %d != stages %d", r.Strategy.Depth(), r.Strategy.NumStages())
	}
	if r.BottleneckTPS <= 0 {
		t.Error("BottleneckTPS not recorded")
	}
	if r.DPStates == 0 || r.BinaryIters == 0 {
		t.Errorf("search stats empty: %+v", r)
	}
}

func TestPlanExploitsBranches(t *testing.T) {
	cfg := models.DefaultMMTConfig()
	cfg.Branches = 2
	cfg.LayersPerBranch = 4
	g := models.MMT(cfg)
	r := planFor(t, g, 8, 32, Options{})
	topo := cluster.NewSummitTopology(8)
	if err := r.Strategy.Validate(g, topo); err != nil {
		t.Fatalf("strategy invalid: %v", err)
	}
	s := r.Strategy
	// GPP must produce a stage graph shallower than its stage count when
	// the model has parallel branches and more than a couple stages.
	if s.NumStages() >= 4 && s.Depth() >= s.NumStages() {
		t.Errorf("no branch parallelism: depth %d, stages %d\n%s", s.Depth(), s.NumStages(), s)
	}
}

func TestPlanUsesAllDevices(t *testing.T) {
	g := models.SequentialTransformer(8)
	for _, devs := range []int{2, 4, 8} {
		r := planFor(t, g, devs, 32, Options{})
		used := 0
		for _, st := range r.Strategy.Stages {
			used += len(st.Devices)
		}
		if used != devs {
			t.Errorf("devices=%d: strategy uses %d (C3 requires all)", devs, used)
		}
	}
}

func TestForcedMicroBatch(t *testing.T) {
	g := models.SequentialTransformer(8)
	r := planFor(t, g, 4, 32, Options{ForcedMicroBatch: 2})
	for _, st := range r.Strategy.Stages {
		if st.Config.MicroBatch != 2 {
			t.Errorf("stage %d micro-batch = %d, want forced 2", st.ID, st.Config.MicroBatch)
		}
	}
}

func TestForcedMicroBatchMustDivide(t *testing.T) {
	g := models.SequentialTransformer(4)
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	p, err := NewPlanner(g, m, Options{ForcedMicroBatch: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(32); err == nil {
		t.Error("accepted non-dividing forced micro-batch")
	}
}

func TestPlanRejectsMultiSinkGraph(t *testing.T) {
	b := graph.NewBuilder("bad")
	x := b.AddOp(graph.Op{Name: "x"})
	y := b.AddOp(graph.Op{Name: "y"})
	z := b.AddOp(graph.Op{Name: "z"})
	b.Connect(x, y)
	b.Connect(x, z)
	g := b.MustBuild()
	topo := cluster.NewSummitTopology(2)
	if _, err := NewPlanner(g, costmodel.NewDefault(topo), Options{}); err == nil {
		t.Error("planner accepted multi-sink graph")
	}
}

func TestPlanInvalidMiniBatch(t *testing.T) {
	g := models.SequentialTransformer(4)
	topo := cluster.NewSummitTopology(2)
	p, _ := NewPlanner(g, costmodel.NewDefault(topo), Options{})
	if _, err := p.Plan(0); err == nil {
		t.Error("accepted zero mini-batch")
	}
}

func TestPlanInfeasibleMemory(t *testing.T) {
	g := models.SequentialTransformer(8)
	// 1 MB per device: nothing fits.
	topo := cluster.NewUniformTopology(4, 1e6, 100e9)
	p, err := NewPlanner(g, costmodel.NewDefault(topo), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(32); err == nil {
		t.Error("planned a strategy that cannot fit memory")
	}
}

func TestPlanInFlightMatchesBackwardTraversal(t *testing.T) {
	cfg := models.DefaultMMTConfig()
	cfg.Branches = 2
	cfg.LayersPerBranch = 4
	g := models.MMT(cfg)
	r := planFor(t, g, 8, 32, Options{})
	s := r.Strategy
	// Recompute independently and compare.
	order := s.TopoOrder()
	want := make([]int, len(s.Stages))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var succs []schedule.Successor
		for _, w := range s.Succ[id] {
			succs = append(succs, schedule.Successor{Config: s.Stages[w].Config, InFlight: want[w]})
		}
		want[id] = schedule.ComputeInFlight(s.Stages[id].Config, succs)
	}
	for i := range s.Stages {
		if s.Stages[i].InFlightSamples != want[i] {
			t.Errorf("stage %d in-flight = %d, want %d", i, s.Stages[i].InFlightSamples, want[i])
		}
	}
}

func TestDeeperPipelineNeedsMoreInFlight(t *testing.T) {
	g := models.SequentialTransformer(16)
	r2 := planFor(t, g, 2, 64, Options{ForcedMicroBatch: 4})
	r8 := planFor(t, g, 8, 64, Options{ForcedMicroBatch: 4})
	if r8.Strategy.NumStages() <= r2.Strategy.NumStages() {
		t.Skipf("planner did not deepen pipeline: %d vs %d stages",
			r8.Strategy.NumStages(), r2.Strategy.NumStages())
	}
	if r8.Strategy.MaxInFlightSamples() <= r2.Strategy.MaxInFlightSamples() {
		t.Errorf("deeper pipeline should hold more samples: %d (8dev) vs %d (2dev)",
			r8.Strategy.MaxInFlightSamples(), r2.Strategy.MaxInFlightSamples())
	}
}

func TestBottleneckTPSDecreasesWithDevices(t *testing.T) {
	g := models.SequentialTransformer(16)
	prev := -1.0
	for _, devs := range []int{2, 4, 8} {
		r := planFor(t, g, devs, 64, Options{})
		if prev > 0 && r.BottleneckTPS > prev*1.05 {
			t.Errorf("devices=%d: bottleneck TPS %g worse than with fewer devices %g",
				devs, r.BottleneckTPS, prev)
		}
		prev = r.BottleneckTPS
	}
}

func TestMicroBatchCandidatesOption(t *testing.T) {
	g := models.SequentialTransformer(4)
	r := planFor(t, g, 2, 32, Options{MicroBatchCandidates: []int{4, 8, 3}})
	for _, st := range r.Strategy.Stages {
		if b := st.Config.MicroBatch; b != 4 && b != 8 {
			t.Errorf("micro-batch %d not among valid candidates", b)
		}
	}
}

func TestPerStageMicroBatchSearch(t *testing.T) {
	// A deliberately heterogeneous model: a compute-light branch segment
	// followed by a compute-heavy one, so different stages prefer
	// different micro-batch sizes (Figure 5's scenario).
	b := graph.NewBuilder("hetero")
	in := b.AddOp(graph.Op{Name: "in", Kind: graph.OpInput, OutputBytes: 1e4})
	light := b.AddOp(graph.Op{Name: "light", Kind: graph.OpEmbedding,
		FwdFLOPs: 1e6, ParamBytes: 1e8, ActivationBytes: 1e6, OutputBytes: 1e4})
	mid := b.AddOp(graph.Op{Name: "mid", Kind: graph.OpLinear,
		FwdFLOPs: 5e9, ParamBytes: 1e8, ActivationBytes: 1e5, OutputBytes: 1e4})
	heavy := b.AddOp(graph.Op{Name: "heavy", Kind: graph.OpLinear,
		FwdFLOPs: 2e10, ParamBytes: 4e8, ActivationBytes: 1e5, OutputBytes: 1e4})
	out := b.AddOp(graph.Op{Name: "out", Kind: graph.OpOutput,
		FwdFLOPs: 1e6, OutputBytes: 1e3})
	b.Chain(in, light, mid, heavy, out)
	g := b.MustBuild()

	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	p, err := NewPlanner(g, m, Options{PerStageMicroBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Plan(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Strategy.Validate(g, topo); err != nil {
		t.Fatalf("per-stage strategy invalid: %v", err)
	}
	// The strategy must simulate correctly even with mixed micro-batch
	// sizes (sample-range alignment).
	if _, err := sim.New(g, m).Run(r.Strategy); err != nil {
		t.Fatalf("mixed micro-batch simulation failed: %v", err)
	}
}

func TestPerStageMicroBatchAtLeastAsGoodOnFig5Shape(t *testing.T) {
	// On a uniform chain, enabling per-stage search must not produce a
	// worse strategy than the uniform default (it strictly enlarges the
	// search space; selection uses the same score).
	g := models.SequentialTransformer(8)
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	sm := sim.New(g, m)

	uni, err := NewPlanner(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ru, err := uni.Plan(32)
	if err != nil {
		t.Fatal(err)
	}
	resU, err := sm.Run(ru.Strategy)
	if err != nil {
		t.Fatal(err)
	}

	per, err := NewPlanner(g, m, Options{PerStageMicroBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := per.Plan(32)
	if err != nil {
		t.Fatal(err)
	}
	resP, err := sm.Run(rp.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	if resP.Throughput < 0.85*resU.Throughput {
		t.Errorf("per-stage search much worse than uniform: %.0f vs %.0f",
			resP.Throughput, resU.Throughput)
	}
}

func TestPlanHandlesNonSPGraph(t *testing.T) {
	// A "crossing" DAG that is not node-series-parallel: the planner must
	// fall back to linearized chain splits (§5's conversion) inside the
	// non-SP region rather than refusing or treating it as one stage.
	b := graph.NewBuilder("nonsp")
	in1 := b.AddOp(graph.Op{Name: "in1", Kind: graph.OpInput, OutputBytes: 1e4})
	in2 := b.AddOp(graph.Op{Name: "in2", Kind: graph.OpInput, OutputBytes: 1e4})
	// Parameters too large to replicate across all four devices: the
	// planner cannot fall back to pure data parallelism and must pipeline
	// through the non-SP region.
	mk := func(name string) graph.NodeID {
		return b.AddOp(graph.Op{Name: name, Kind: graph.OpLinear,
			FwdFLOPs: 5e9, ParamBytes: 1.5e9, ActivationBytes: 1e5, OutputBytes: 1e4})
	}
	a, bb, c, dd := mk("a"), mk("b"), mk("c"), mk("d")
	out := b.AddOp(graph.Op{Name: "out", Kind: graph.OpOutput, FwdFLOPs: 1e6, OutputBytes: 1e3})
	b.Connect(in1, a)
	b.Connect(in2, bb)
	b.Connect(a, c)
	b.Connect(a, dd)
	b.Connect(bb, dd)
	b.Connect(c, out)
	b.Connect(dd, out)
	g := b.MustBuild()

	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	p, err := NewPlanner(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Plan(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Strategy.Validate(g, topo); err != nil {
		t.Fatalf("non-SP strategy invalid: %v", err)
	}
	if _, err := sim.New(g, m).Run(r.Strategy); err != nil {
		t.Fatalf("non-SP strategy does not simulate: %v", err)
	}
	// The fallback must allow pipelining across the crossing region at 4
	// devices (more than one stage).
	if r.Strategy.NumStages() < 2 {
		t.Errorf("non-SP fallback produced a single stage on 4 devices")
	}
}

// TestPlannerZooIntegration plans and simulates every model-zoo entry on a
// small cluster with every executor: the strategy must validate, both
// executors must agree, and the depth must never exceed the stage count.
func TestPlannerZooIntegration(t *testing.T) {
	graphs := []*graph.Graph{
		models.MMT(models.MMTConfig{Branches: 2, LayersPerBranch: 3, Layer: models.DefaultTransformerConfig()}),
		models.DLRM(models.DLRMConfig{DenseBranches: 3, SparseBranches: 2, DenseLayers: 2,
			Hidden: 1024, EmbedDim: 32, EmbedEntries: 10000, BagSize: 10, TopLayers: 2, DTypeBytes: 4}),
		models.CANDLEUno(models.CANDLEUnoConfig{Branches: 3, Layers: 2, Hidden: 1024, DTypeBytes: 4}),
		models.Generalist(models.DefaultGeneralistConfig()),
		models.SequentialTransformer(6),
	}
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	for _, g := range graphs {
		p, err := NewPlanner(g, m, Options{})
		if err != nil {
			t.Errorf("%s: %v", g.Name(), err)
			continue
		}
		r, err := p.Plan(32)
		if err != nil {
			t.Errorf("%s: %v", g.Name(), err)
			continue
		}
		if err := r.Strategy.Validate(g, topo); err != nil {
			t.Errorf("%s: invalid strategy: %v", g.Name(), err)
			continue
		}
		if r.Strategy.Depth() > r.Strategy.NumStages() {
			t.Errorf("%s: depth %d > stages %d", g.Name(), r.Strategy.Depth(), r.Strategy.NumStages())
		}
		res, err := sim.New(g, m).Run(r.Strategy)
		if err != nil {
			t.Errorf("%s: sim: %v", g.Name(), err)
			continue
		}
		if res.Throughput <= 0 {
			t.Errorf("%s: zero throughput", g.Name())
		}
	}
}
