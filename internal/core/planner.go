// Package core implements the paper's primary contribution: GraphPipe's
// pipeline stage partitioner (§5, Algorithm 1) working jointly with the
// static micro-batch scheduler (§6, Algorithm 2).
//
// The partitioner minimizes the Time-Per-Sample (TPS) of the bottleneck
// pipeline stage (Equation 1) subject to per-device memory (Equation 2). It
// binary-searches the target TPS and, for each target, runs a dynamic
// program over the series-parallel decomposition of the computation graph:
//
//   - Base case: treat the current zone as a single stage with data
//     parallelism across its d devices, check the TPS target, and obtain the
//     minimal in-flight sample count from the scheduler (Table 2).
//   - Series decomposition: split the zone at a cut operator; solve the
//     downstream part first (its in-flight count feeds the upstream part's
//     schedule configuration), enumerating the boundary stage configuration.
//   - Parallel decomposition: split the zone into branch groups that share
//     schedule boundaries; the source in-flight count is the maximum over
//     the groups (continuous pipelining, §5).
//
// DP states are memoized on (zone, devices, source config, successor
// config); the zone count is polynomial for series-parallel DNNs, which is
// why GraphPipe's search is 9–21× faster than the SPP baselines (§7.2).
//
// The search is parallel: the independent per-micro-batch binary searches
// and, within each TPS probe, the root zone's series/parallel branch
// enumeration fan out across one bounded worker pool (Options.Workers),
// sharing a mutex-sharded memo table. Every DP value is a pure function of
// its state key, so the parallel search returns the same strategy as the
// sequential path (Workers=1) — concurrency changes wall-clock, not the
// result.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/schedule"
	"graphpipe/internal/spgraph"
	"graphpipe/internal/strategy"
)

// Options tunes the planner. The zero value selects the paper's defaults
// (§6): synchronous 1F1B and a single micro-batch size shared by all
// stages, searched over powers of two.
type Options struct {
	// MicroBatchCandidates overrides the candidate micro-batch sizes.
	// Empty means powers of two dividing the mini-batch size, capped at
	// MaxMicroBatch.
	MicroBatchCandidates []int
	// MaxMicroBatch caps the candidate micro-batch sizes (default 4096).
	MaxMicroBatch int
	// KCandidates are the kFkB candidates (default {1}: 1F1B).
	KCandidates []int
	// ForcedMicroBatch restricts the search to exactly one micro-batch
	// size. Used by the fixed-µB sweep (Figure 7 right) and the "Parallel"
	// ablation arm (Figure 9).
	ForcedMicroBatch int
	// PerStageMicroBatch enables the fine-grained per-stage micro-batch
	// search of §6 (Figure 5): stage boundaries may change the micro-batch
	// size instead of inheriting the global one. Off by default, as in the
	// paper ("performance improvements ... are incremental" for the
	// evaluated models), and more expensive to search.
	PerStageMicroBatch bool
	// DisableSinkAnchoredSplits removes the partitions where a stage
	// combines a branch tail with the merge operators (§7.5's "one stage
	// necessarily contains the concatenation operator"). Exists for the
	// ablation benchmarks only.
	DisableSinkAnchoredSplits bool
	// Epsilon is the relative binary-search tolerance (default 2e-3).
	Epsilon float64
	// Workers bounds the planning worker pool shared by the
	// per-micro-batch binary searches and the per-probe root branch
	// enumeration: 0 means one worker per available CPU, 1 forces the
	// fully sequential path. The chosen strategy is identical either way.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxMicroBatch == 0 {
		o.MaxMicroBatch = 4096
	}
	if len(o.KCandidates) == 0 {
		o.KCandidates = []int{1}
	}
	if o.Epsilon == 0 {
		o.Epsilon = 2e-3
	}
	return o
}

// Result is a planning outcome with search statistics.
type Result struct {
	Strategy *strategy.Strategy
	// BottleneckTPS is the achieved max-stage TPS (Equation 1 objective).
	BottleneckTPS float64
	// DPStates counts memoized subproblems across the whole search.
	DPStates int
	// BinaryIters counts binary-search iterations.
	BinaryIters int
}

// ErrNoStrategy is returned when no valid strategy exists within the device
// memory budget.
var ErrNoStrategy = errors.New("core: no valid strategy found")

// Planner discovers GPP strategies for one model on one topology.
type Planner struct {
	g     *graph.Graph
	model costmodel.Model
	topo  *cluster.Topology
	dec   *spgraph.Decomposer
	opts  Options

	zones *zoneTable

	// evalCaches memoizes per-(zone, micro-batch, devices) stage costs,
	// partitioned by root micro-batch size so concurrent per-size searches
	// never contend. The costs are independent of the binary-search
	// target and are therefore reused across all probes of one Plan call;
	// each table is internally sharded for the per-probe fan-out.
	evalCaches map[int]*evalTable
}

type stageEvalKey struct {
	zone int
	b, d int
}

type stageEval struct {
	tps          float64
	weightMem    float64
	actPerSample float64
}

// zoneTable interns the series-parallel zones into dense integer ids so DP
// memoization keys avoid string hashing, and resolves each zone's splits to
// id pairs once.
type zoneTable struct {
	dec        *spgraph.Decomposer
	noAnchored bool
	ids        map[string]int
	sets       []graph.NodeSet
	series     [][]splitIDs
	parallel   [][]splitIDs
	resolved   []bool
}

type splitIDs struct {
	left, right  int
	sinkAnchored bool
	mergeOp      graph.NodeID
}

func newZoneTable(dec *spgraph.Decomposer) *zoneTable {
	return &zoneTable{dec: dec, ids: make(map[string]int)}
}

func (zt *zoneTable) intern(set graph.NodeSet) int {
	key := set.Key()
	if id, ok := zt.ids[key]; ok {
		return id
	}
	id := len(zt.sets)
	zt.ids[key] = id
	zt.sets = append(zt.sets, set)
	zt.series = append(zt.series, nil)
	zt.parallel = append(zt.parallel, nil)
	zt.resolved = append(zt.resolved, false)
	return id
}

func (zt *zoneTable) resolve(id int) {
	if zt.resolved[id] {
		return
	}
	zt.resolved[id] = true
	set := zt.sets[id]
	for _, sp := range zt.dec.SeriesSplits(set) {
		zt.series[id] = append(zt.series[id], splitIDs{left: zt.intern(sp.Left), right: zt.intern(sp.Right)})
	}
	for _, sp := range zt.dec.ParallelSplits(set) {
		if sp.SinkAnchored && zt.noAnchored {
			continue
		}
		zt.parallel[id] = append(zt.parallel[id], splitIDs{
			left: zt.intern(sp.Left), right: zt.intern(sp.Right),
			sinkAnchored: sp.SinkAnchored, mergeOp: sp.MergeOp,
		})
	}
	// Non-series-parallel atoms fall back to a linearized chain (§5's
	// conversion), so the planner never has to treat a multi-operator
	// blob as indivisible.
	if len(zt.series[id]) == 0 && len(zt.parallel[id]) == 0 {
		for _, sp := range zt.dec.LinearizedSplits(set) {
			zt.series[id] = append(zt.series[id], splitIDs{left: zt.intern(sp.Left), right: zt.intern(sp.Right)})
		}
	}
}

func (zt *zoneTable) seriesSplits(id int) []splitIDs {
	return zt.series[id]
}

func (zt *zoneTable) parallelSplits(id int) []splitIDs {
	return zt.parallel[id]
}

// resolveAll resolves every zone reachable from root so the table becomes
// read-only and safe for the concurrent per-micro-batch searches.
func (zt *zoneTable) resolveAll(root int) {
	for next := root; next < len(zt.sets); next++ {
		zt.resolve(next)
	}
}

// NewPlanner constructs a planner. The graph must have a single source and
// sink (spgraph.Validate).
func NewPlanner(g *graph.Graph, model costmodel.Model, opts Options) (*Planner, error) {
	if err := spgraph.Validate(g); err != nil {
		return nil, err
	}
	dec := spgraph.New(g)
	zt := newZoneTable(dec)
	opts = opts.withDefaults()
	zt.noAnchored = opts.DisableSinkAnchoredSplits
	return &Planner{
		g:     g,
		model: model,
		topo:  model.Topology(),
		dec:   dec,
		zones: zt,
		opts:  opts,
	}, nil
}

// microBatchCandidates returns the candidate micro-batch sizes for
// mini-batch B, largest first so ties in the DP prefer compute efficiency.
func (p *Planner) microBatchCandidates(miniBatch int) []int {
	if p.opts.ForcedMicroBatch > 0 {
		if miniBatch%p.opts.ForcedMicroBatch != 0 {
			return nil
		}
		return []int{p.opts.ForcedMicroBatch}
	}
	if len(p.opts.MicroBatchCandidates) > 0 {
		var out []int
		for _, b := range p.opts.MicroBatchCandidates {
			if b >= 1 && miniBatch%b == 0 {
				out = append(out, b)
			}
		}
		sort.Sort(sort.Reverse(sort.IntSlice(out)))
		return out
	}
	var out []int
	for b := 1; b <= miniBatch && b <= p.opts.MaxMicroBatch; b *= 2 {
		if miniBatch%b == 0 {
			out = append(out, b)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// dataParDegrees returns the allowed per-stage data-parallel degrees
// (powers of two, §5 complexity analysis).
func dataParDegrees(max int) map[int]bool {
	out := make(map[int]bool)
	for d := 1; d <= max; d *= 2 {
		out[d] = true
	}
	return out
}

// --- DP machinery ---

// dpStage is one stage of a partial solution.
type dpStage struct {
	ops      graph.NodeSet
	cfg      schedule.Config
	devs     int
	inFlight int
	memory   float64
	tps      float64
}

// dpResult is the solution of one DP subproblem. A nil dpResult means
// infeasible. Results form a derivation tree (leaf = single stage; inner =
// series/parallel combination) so the DP never copies stage lists; the
// winning tree is flattened once at assembly time.
type dpResult struct {
	// inFlight is the in-flight sample count of the zone's source
	// stage(s); parallel zones report the maximum (continuous pipelining).
	inFlight int
	// srcCfg is the configuration of the zone's source stage(s).
	srcCfg  schedule.Config
	maxMem  float64
	maxTPS  float64
	nStages int

	leaf        *dpStage // non-nil for base-case results
	left, right *dpResult
}

func combine(a, b *dpResult) *dpResult {
	out := &dpResult{
		maxMem:  a.maxMem,
		maxTPS:  a.maxTPS,
		nStages: a.nStages + b.nStages,
		left:    a,
		right:   b,
	}
	if b.maxMem > out.maxMem {
		out.maxMem = b.maxMem
	}
	if b.maxTPS > out.maxTPS {
		out.maxTPS = b.maxTPS
	}
	return out
}

// stageInfoFor returns the schedule configuration and in-flight sample
// count of the stage that owns op in this derivation, walking the tree.
// Sink-anchored splits use it to find the merge stage branch groups feed.
func (r *dpResult) stageInfoFor(op graph.NodeID) (schedule.Config, int, bool) {
	if r.leaf != nil {
		if r.leaf.ops.Contains(op) {
			return r.leaf.cfg, r.leaf.inFlight, true
		}
		return schedule.Config{}, 0, false
	}
	if cfg, ifl, ok := r.left.stageInfoFor(op); ok {
		return cfg, ifl, true
	}
	return r.right.stageInfoFor(op)
}

// collectStages flattens the derivation tree.
func (r *dpResult) collectStages(out []dpStage) []dpStage {
	if r.leaf != nil {
		return append(out, *r.leaf)
	}
	out = r.left.collectStages(out)
	return r.right.collectStages(out)
}

// better implements the DP's preference order: feasible, then smaller
// source-stage in-flight count (the §5 subproblem objective), then smaller
// peak memory (PickBetter, Algorithm 1 line 18), then fewer stages.
func better(a, b *dpResult) *dpResult {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.inFlight != b.inFlight {
		if a.inFlight < b.inFlight {
			return a
		}
		return b
	}
	if a.maxMem != b.maxMem {
		if a.maxMem < b.maxMem {
			return a
		}
		return b
	}
	if a.nStages <= b.nStages {
		return a
	}
	return b
}

// dpKey packs a DP state into one word: zone id (14 bits), devices (7),
// source config index (8), successor config index + presence (9), successor
// in-flight samples (26). Packing keeps memo lookups cheap; the hot path is
// hundreds of millions of lookups for the largest models.
type dpKey uint64

// search holds one TPS probe's shared, concurrency-safe state: the sharded
// memo and eval tables, the frozen config index, and the worker pool. The
// recursion itself runs in dpWalker instances, one per concurrent branch.
type search struct {
	p         *Planner
	miniBatch int
	tmax      float64
	bCands    []int // all candidate micro-batch sizes (per-stage mode)
	dpDegrees map[int]bool
	memo      *memoTable
	evalCache *evalTable
	states    atomic.Int64
	pool      *workerPool // nil: fully sequential probe

	// cfgIndex interns schedule configs for key packing. It is frozen
	// before the search starts (every reachable config is a micro-batch
	// candidate × kFkB candidate), so concurrent walkers read it without
	// locking and key packing is deterministic regardless of visit order.
	cfgIndex map[schedule.Config]int
	cfgs     []schedule.Config
}

// freezeConfigs pre-interns every schedule config the search can reach, in
// a deterministic order. In the uniform-schedule default every boundary
// inherits the probe's root micro-batch size, so only (rootB × KCandidates)
// is reachable; per-stage mode offers the full cross product, exactly as
// the old lazy interner would have reached.
func (s *search) freezeConfigs(rootB int) {
	s.cfgIndex = make(map[schedule.Config]int)
	intern := func(c schedule.Config) {
		if _, ok := s.cfgIndex[c]; ok {
			return
		}
		if len(s.cfgs) >= 255 {
			panic("core: too many distinct schedule configs")
		}
		s.cfgIndex[c] = len(s.cfgs)
		s.cfgs = append(s.cfgs, c)
	}
	for _, k := range s.p.opts.KCandidates {
		intern(schedule.Config{MicroBatch: rootB, K: k})
	}
	if s.p.opts.PerStageMicroBatch {
		for _, b := range s.bCands {
			for _, k := range s.p.opts.KCandidates {
				intern(schedule.Config{MicroBatch: b, K: k})
			}
		}
	}
}

func (s *search) configIdx(c schedule.Config) int {
	i, ok := s.cfgIndex[c]
	if !ok {
		panic(fmt.Sprintf("core: schedule config %+v not pre-interned", c))
	}
	return i
}

func (s *search) makeKey(zoneID, d int, cf schedule.Config, cb *schedule.Successor) dpKey {
	k := uint64(zoneID)&0x3FFF | uint64(d&0x7F)<<14 | uint64(s.configIdx(cf))<<21
	if cb != nil {
		k |= 1 << 29
		k |= uint64(s.configIdx(cb.Config)) << 30
		k |= uint64(cb.InFlight&0x3FFFFFF) << 38
	}
	return dpKey(k)
}

// interNodeComm reports whether stage-boundary transfers should be costed
// at inter-node bandwidth: in a multi-node cluster, neighboring stages
// usually land on different nodes.
func (s *search) interNodeComm() bool {
	return s.p.topo.Len() > 4
}

// interNodeAllreduce reports whether a d-replica stage's gradient allreduce
// crosses nodes: the contiguous allocator keeps up-to-4-device stages
// within one 4-GPU node.
func (s *search) interNodeAllreduce(d int) bool {
	return d > 4
}

// evalStage returns cached per-stage costs for (zone, b, d). The cost model
// runs outside the shard lock; concurrent walkers may duplicate an
// evaluation, but the value is deterministic so either write is correct.
func (s *search) evalStage(zoneID, b, d int) stageEval {
	key := stageEvalKey{zone: zoneID, b: b, d: d}
	if ev, ok := s.evalCache.get(key); ok {
		return ev
	}
	cfg := costmodel.StageConfig{
		Ops:                s.p.zones.sets[zoneID],
		MicroBatch:         b,
		DataPar:            d,
		InterNode:          s.interNodeComm(),
		InterNodeAllreduce: s.interNodeAllreduce(d),
	}
	costs := s.p.model.Stage(s.p.g, cfg)
	ev := stageEval{
		tps:          s.p.model.TPS(s.p.g, cfg, s.miniBatch),
		weightMem:    costs.WeightBytes,
		actPerSample: costs.ActivationBytesPerSample,
	}
	s.evalCache.put(key, ev)
	return ev
}

// stageAttempt evaluates a zone as a single stage.
func (s *search) stageAttempt(zoneID int, cf schedule.Config, cb *schedule.Successor, d int) *dpResult {
	if !s.dpDegrees[d] {
		return nil
	}
	if s.miniBatch%cf.MicroBatch != 0 {
		return nil
	}
	ev := s.evalStage(zoneID, cf.MicroBatch, d)
	tps := ev.tps
	if tps > s.tmax {
		return nil
	}
	var succs []schedule.Successor
	if cb != nil {
		succs = []schedule.Successor{*cb}
	}
	inFlight := schedule.ComputeInFlight(cf, succs)
	mem := ev.weightMem + ev.actPerSample*float64(inFlight)
	if mem > s.p.topo.MinMemory() {
		return nil
	}
	return &dpResult{
		inFlight: inFlight,
		srcCfg:   cf,
		maxMem:   mem,
		maxTPS:   tps,
		nStages:  1,
		leaf: &dpStage{
			ops: s.p.zones.sets[zoneID], cfg: cf, devs: d, inFlight: inFlight, memory: mem, tps: tps,
		},
	}
}

// boundaryConfigs enumerates candidate schedule configurations for a stage
// boundary. In the default (uniform) mode the boundary inherits the global
// micro-batch size under consideration, so this is a single candidate per
// kFkB choice; with PerStageMicroBatch every candidate size is offered
// (Figure 5's per-stage sizes).
func (s *search) boundaryConfigs(cf schedule.Config) []schedule.Config {
	var out []schedule.Config
	if s.p.opts.PerStageMicroBatch {
		for _, b := range s.bCands {
			for _, k := range s.p.opts.KCandidates {
				out = append(out, schedule.Config{MicroBatch: b, K: k})
			}
		}
		return out
	}
	for _, k := range s.p.opts.KCandidates {
		out = append(out, schedule.Config{MicroBatch: cf.MicroBatch, K: k})
	}
	return out
}

// dpWalker runs the DP recursion for one concurrent branch of the search.
// Walkers share the probe's sharded memo table; the in-progress set — the
// cycle guard that used to be a nil memo placeholder — is walker-local so
// one walker's half-finished subproblem never masquerades as "infeasible"
// to another.
type dpWalker struct {
	s          *search
	inProgress map[dpKey]bool
}

func (s *search) newWalker() *dpWalker {
	return &dpWalker{s: s, inProgress: make(map[dpKey]bool)}
}

// dp solves one subproblem: partition the zone over d devices such that the
// source stage uses configuration cf, the stage after the zone has schedule
// information cb (nil at the model's sink), and every stage meets the TPS
// target. It returns nil when infeasible.
func (w *dpWalker) dp(zoneID int, cf schedule.Config, cb *schedule.Successor, d int) *dpResult {
	s := w.s
	key := s.makeKey(zoneID, d, cf, cb)
	if r, ok := s.memo.get(key); ok {
		return r
	}
	if w.inProgress[key] {
		return nil // cycle guard (series-parallel zones strictly shrink)
	}
	w.inProgress[key] = true
	s.states.Add(1)

	best := s.stageAttempt(zoneID, cf, cb, d)

	// Series decompositions: solve downstream (right) first; its source
	// in-flight count becomes the upstream (left) sink's successor info
	// (Algorithm 1 lines 33–40).
	for _, sp := range s.p.zones.seriesSplits(zoneID) {
		for d2 := 1; d2 < d; d2++ {
			d1 := d - d2
			for _, cm := range s.boundaryConfigs(cf) {
				best = better(best, w.trySeries(sp, cf, cm, cb, d1, d2))
			}
		}
	}

	// Parallel decompositions: both groups share the source and sink
	// schedule boundaries; continuous pipelining takes the larger source
	// in-flight count (Algorithm 1 lines 41–47).
	for _, sp := range s.p.zones.parallelSplits(zoneID) {
		for d1 := 1; d1 < d; d1++ {
			best = better(best, w.tryParallel(sp, cf, cb, d1, d-d1))
		}
	}

	delete(w.inProgress, key)
	s.memo.put(key, best)
	return best
}

// trySeries evaluates one series-split candidate: right part on d2 devices
// under boundary config cm, then the left part with the right's source
// schedule as its successor.
func (w *dpWalker) trySeries(sp splitIDs, cf, cm schedule.Config, cb *schedule.Successor, d1, d2 int) *dpResult {
	r2 := w.dp(sp.right, cm, cb, d2)
	if r2 == nil {
		return nil
	}
	mid := &schedule.Successor{Config: r2.srcCfg, InFlight: r2.inFlight}
	r1 := w.dp(sp.left, cf, mid, d1)
	if r1 == nil {
		return nil
	}
	cand := combine(r1, r2)
	cand.inFlight = r1.inFlight
	cand.srcCfg = r1.srcCfg
	return cand
}

// tryParallel evaluates one parallel-split candidate. For sink-anchored
// splits the right group carries the zone's shared sink operator, so the
// left group's successor is the sink-holding stage inside the right group's
// solution rather than the stage after the zone.
func (w *dpWalker) tryParallel(sp splitIDs, cf schedule.Config, cb *schedule.Successor, d1, d2 int) *dpResult {
	r2 := w.dp(sp.right, cf, cb, d2)
	if r2 == nil {
		return nil
	}
	leftCB := cb
	if sp.sinkAnchored {
		cfg, ifl, ok := r2.stageInfoFor(sp.mergeOp)
		if !ok {
			return nil // derivation must own the merge op
		}
		leftCB = &schedule.Successor{Config: cfg, InFlight: ifl}
	}
	r1 := w.dp(sp.left, cf, leftCB, d1)
	if r1 == nil {
		return nil
	}
	cand := combine(r1, r2)
	cand.inFlight = r1.inFlight
	if r2.inFlight > cand.inFlight {
		cand.inFlight = r2.inFlight
	}
	cand.srcCfg = cf
	return cand
}

// dpRoot solves the root zone. With a worker pool, the root's candidate
// set — the single-stage attempt plus every (series split, device split,
// boundary config) and (parallel split, device split) combination — fans
// out across the pool, each task recursing sequentially through its own
// walker into the shared memo. Candidates land in enumeration-order slots
// and are folded with better in that same order, so the winner is the one
// the sequential path picks: each candidate's value is a pure function of
// its sub-keys, independent of which walker computed the memo entries.
func (s *search) dpRoot(zoneID int, cf schedule.Config, cb *schedule.Successor, d int) *dpResult {
	if s.pool == nil {
		return s.newWalker().dp(zoneID, cf, cb, d)
	}
	var tasks []func()
	var cands []*dpResult
	spawn := func(f func(w *dpWalker) *dpResult) {
		i := len(cands)
		cands = append(cands, nil)
		tasks = append(tasks, func() { cands[i] = f(s.newWalker()) })
	}
	spawn(func(w *dpWalker) *dpResult { return s.stageAttempt(zoneID, cf, cb, d) })
	for _, sp := range s.p.zones.seriesSplits(zoneID) {
		for d2 := 1; d2 < d; d2++ {
			d1 := d - d2
			for _, cm := range s.boundaryConfigs(cf) {
				sp, cm, d1, d2 := sp, cm, d1, d2
				spawn(func(w *dpWalker) *dpResult { return w.trySeries(sp, cf, cm, cb, d1, d2) })
			}
		}
	}
	for _, sp := range s.p.zones.parallelSplits(zoneID) {
		for d1 := 1; d1 < d; d1++ {
			sp, d1, d2 := sp, d1, d-d1
			spawn(func(w *dpWalker) *dpResult { return w.tryParallel(sp, cf, cb, d1, d2) })
		}
	}
	s.pool.Do(tasks)
	var best *dpResult
	for _, cand := range cands {
		best = better(best, cand)
	}
	return best
}

// searchStageGraph is Algorithm 1's SearchStageGraph: try every candidate
// global schedule configuration and keep the best feasible partition.
func (s *search) searchStageGraph(root, b int) *dpResult {
	var best *dpResult
	for _, k := range s.p.opts.KCandidates {
		cf := schedule.Config{MicroBatch: b, K: k}
		r := s.dpRoot(root, cf, nil, s.p.topo.Len())
		best = s.betterRoot(best, r)
	}
	return best
}

// rootScore estimates the synchronous 1F1B iteration time of a root
// solution: the bottleneck stage paces both the steady state (B samples)
// and the warm-up/cool-down bubbles, which grow with the source stage's
// in-flight window (≈ pipeline depth × micro-batch size). All three
// planners in this repository select their final strategy by this estimate
// so the comparison isolates the partition spaces (see DESIGN.md).
func rootScore(r *dpResult, miniBatch int) float64 {
	return r.maxTPS * float64(miniBatch+r.inFlight-r.srcCfg.MicroBatch)
}

// betterRoot is PickBetter at the root: feasibility, then the synchronous
// iteration estimate, then lower memory.
func (s *search) betterRoot(a, b *dpResult) *dpResult {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	sa, sb := rootScore(a, s.miniBatch), rootScore(b, s.miniBatch)
	if sa != sb {
		if sa < sb {
			return a
		}
		return b
	}
	if a.maxMem <= b.maxMem {
		return a
	}
	return b
}

// perB accumulates one candidate micro-batch size's search outcome.
type perB struct {
	best   *dpResult
	states int
	iters  int
}

// searchMicroBatch runs one micro-batch size's binary search over the
// bottleneck-TPS target. Probes are inherently sequential — each one
// halves the bracket the previous probe established — so parallelism comes
// from fanning each probe's root branch enumeration out on the pool, and
// from the sibling per-size searches running concurrently.
func (p *Planner) searchMicroBatch(out *perB, b, miniBatch int, bCands []int, degrees map[int]bool, maxTPS, eps float64, root int, pool *workerPool) {
	probe := func(tmax float64) *dpResult {
		s := &search{
			p:         p,
			miniBatch: miniBatch,
			tmax:      tmax,
			bCands:    bCands,
			dpDegrees: degrees,
			memo:      newMemoTable(),
			evalCache: p.evalCaches[b],
			pool:      pool,
		}
		s.freezeConfigs(b)
		r := s.searchStageGraph(root, b)
		out.states += int(s.states.Load())
		return r
	}
	keep := func(r *dpResult) {
		if r == nil {
			return
		}
		if out.best == nil || rootScore(r, miniBatch) < rootScore(out.best, miniBatch) {
			out.best = r
		}
	}
	r0 := probe(maxTPS)
	if r0 == nil {
		return
	}
	keep(r0)
	tl, tr := 0.0, r0.maxTPS
	for tr-tl > eps {
		out.iters++
		tm := (tl + tr) / 2
		if r := probe(tm); r != nil {
			keep(r)
			tr = tm
			if r.maxTPS < tr {
				tr = r.maxTPS
			}
		} else {
			tl = tm
		}
	}
}

// Plan runs the full Algorithm 1: binary search over the bottleneck TPS
// target with a fresh DP per probe, then assembles, schedules, and
// validates the winning strategy.
func (p *Planner) Plan(miniBatch int) (*Result, error) {
	if miniBatch <= 0 {
		return nil, fmt.Errorf("core: invalid mini-batch %d", miniBatch)
	}
	bCands := p.microBatchCandidates(miniBatch)
	if len(bCands) == 0 {
		return nil, fmt.Errorf("core: no candidate micro-batch sizes divide mini-batch %d", miniBatch)
	}
	p.evalCaches = make(map[int]*evalTable) // TPS depends on miniBatch
	for _, b := range bCands {
		p.evalCaches[b] = newEvalTable()
	}
	root := p.zones.intern(p.dec.Root())
	p.zones.resolveAll(root) // make the zone table read-only

	maxTPS := p.model.MaxTPS(p.g, miniBatch)
	eps := p.opts.Epsilon * maxTPS
	degrees := dataParDegrees(p.topo.Len())

	workers := p.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var pool *workerPool
	if workers > 1 {
		pool = newWorkerPool(workers)
	}

	// Each candidate micro-batch size runs its own binary search over the
	// bottleneck-TPS target (Algorithm 1 lines 2-11) so the feasibility
	// frontier of every size is sampled near its own critical TPS values:
	// the DP prefers minimal in-flight counts at loose targets (a single
	// data-parallel stage hides pipelines), so each tightening step can
	// reveal a better-scored strategy. The per-size searches are
	// independent in the uniform-schedule default; they and their probes'
	// root fan-outs share one bounded worker pool.
	results := make([]perB, len(bCands))
	tasks := make([]func(), len(bCands))
	for i, b := range bCands {
		i, b := i, b
		tasks[i] = func() {
			p.searchMicroBatch(&results[i], b, miniBatch, bCands, degrees, maxTPS, eps, root, pool)
		}
	}
	if pool == nil {
		for _, t := range tasks {
			t()
		}
	} else {
		pool.Do(tasks)
	}

	var best *dpResult
	states, iters := 0, 0
	for i := range results {
		states += results[i].states
		if results[i].iters > iters {
			iters = results[i].iters
		}
		r := results[i].best
		if r == nil {
			continue
		}
		if best == nil || rootScore(r, miniBatch) < rootScore(best, miniBatch) {
			best = r
		}
	}
	if best == nil {
		return nil, ErrNoStrategy
	}

	st, err := p.assemble(best, miniBatch)
	if err != nil {
		return nil, err
	}
	return &Result{
		Strategy:      st,
		BottleneckTPS: best.maxTPS,
		DPStates:      states,
		BinaryIters:   iters,
	}, nil
}

// assemble turns a DP solution into a concrete, validated Strategy:
// deterministic stage order, contiguous device assignment, final in-flight
// counts recomputed by backward traversal of the stage graph (§6), and
// per-stage task orders from the greedy scheduler.
func (p *Planner) assemble(r *dpResult, miniBatch int) (*strategy.Strategy, error) {
	stages := r.collectStages(nil)
	// Deterministic order: by the earliest topological position of any
	// owned operator. This also keeps device allocation contiguous along
	// the pipeline.
	sort.SliceStable(stages, func(i, j int) bool {
		return minTopoPos(p.g, stages[i].ops) < minTopoPos(p.g, stages[j].ops)
	})

	st := &strategy.Strategy{Planner: "graphpipe", MiniBatch: miniBatch}
	counts := make([]int, len(stages))
	for i := range stages {
		counts[i] = stages[i].devs
	}
	groups, err := cluster.PlaceStages(p.topo, counts)
	if err != nil {
		return nil, fmt.Errorf("core: device assignment: %w", err)
	}
	for i, ds := range stages {
		st.Stages = append(st.Stages, strategy.Stage{
			ID:      strategy.StageID(i),
			Ops:     ds.ops,
			Config:  ds.cfg,
			Devices: groups[i],
		})
	}
	if err := st.BuildEdges(p.g); err != nil {
		return nil, err
	}

	// Recompute in-flight counts against the final stage graph by walking
	// it backward from the sink (§6): the DP's bookkeeping must agree, but
	// the stage graph is the source of truth.
	order := st.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var succs []schedule.Successor
		for _, w := range st.Succ[id] {
			succs = append(succs, schedule.Successor{
				Config:   st.Stages[w].Config,
				InFlight: st.Stages[w].InFlightSamples,
			})
		}
		st.Stages[id].InFlightSamples = schedule.ComputeInFlight(st.Stages[id].Config, succs)
	}

	for i := range st.Stages {
		tasks, err := schedule.BuildTasks(st.Stages[i].Config, miniBatch, st.Stages[i].InFlightSamples)
		if err != nil {
			return nil, fmt.Errorf("core: scheduling stage %d: %w", i, err)
		}
		st.Stages[i].Tasks = tasks
	}
	if err := st.Validate(p.g, p.topo); err != nil {
		return nil, fmt.Errorf("core: assembled strategy invalid: %w", err)
	}
	return st, nil
}

func minTopoPos(g *graph.Graph, ops graph.NodeSet) int {
	min := g.Len()
	for _, id := range ops.IDs() {
		if p := g.TopoPos(id); p < min {
			min = p
		}
	}
	return min
}
