// Package core implements the paper's primary contribution: GraphPipe's
// pipeline stage partitioner (§5, Algorithm 1) working jointly with the
// static micro-batch scheduler (§6, Algorithm 2).
//
// The partitioner minimizes the Time-Per-Sample (TPS) of the bottleneck
// pipeline stage (Equation 1) subject to per-device memory (Equation 2). It
// binary-searches the target TPS and, for each target, runs a dynamic
// program over the series-parallel decomposition of the computation graph:
//
//   - Base case: treat the current zone as a single stage with data
//     parallelism across its d devices, check the TPS target, and obtain the
//     minimal in-flight sample count from the scheduler (Table 2).
//   - Series decomposition: split the zone at a cut operator; solve the
//     downstream part first (its in-flight count feeds the upstream part's
//     schedule configuration), enumerating the boundary stage configuration.
//   - Parallel decomposition: split the zone into branch groups that share
//     schedule boundaries; the source in-flight count is the maximum over
//     the groups (continuous pipelining, §5).
//
// DP states are memoized on (zone, devices, source config, successor
// config); the zone count is polynomial for series-parallel DNNs, which is
// why GraphPipe's search is 9–21× faster than the SPP baselines (§7.2).
//
// The memo spans the probes of one binary search. A DP value depends on the
// probe's TPS target only through the [tps ≤ tmax] comparisons made while
// computing it, and feasibility is monotone in the target, so each memo
// entry records the half-open interval of targets for which its value is
// provably unchanged: lo is the largest stage TPS the computation accepted,
// hi the smallest it rejected. A later probe whose target falls inside the
// interval reuses the entry outright; only states whose interval does not
// cover the new target are recomputed. Binary search converges, so late
// probes land inside the intervals of earlier ones and re-solve almost
// nothing (see docs/ARCHITECTURE.md, "Search-time engineering").
//
// The search is parallel: the independent per-micro-batch binary searches
// and, within each TPS probe, the root zone's series/parallel branch
// enumeration fan out across one bounded worker pool (Options.Workers),
// sharing a mutex-sharded memo table. Every DP value is a pure function of
// its state key and validity interval, so the parallel search returns the
// same strategy as the sequential path (Workers=1), and the probe-spanning
// memo returns the same strategy as a fresh memo per probe
// (Options.FreshProbeMemo) — both pinned by test.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/memosnap"
	"graphpipe/internal/schedule"
	"graphpipe/internal/spgraph"
	"graphpipe/internal/strategy"
)

// Options tunes the planner. The zero value selects the paper's defaults
// (§6): synchronous 1F1B and a single micro-batch size shared by all
// stages, searched over powers of two.
type Options struct {
	// MicroBatchCandidates overrides the candidate micro-batch sizes.
	// Empty means powers of two dividing the mini-batch size, capped at
	// MaxMicroBatch.
	MicroBatchCandidates []int
	// MaxMicroBatch caps the candidate micro-batch sizes (default 4096).
	MaxMicroBatch int
	// KCandidates are the kFkB candidates (default {1}: 1F1B).
	KCandidates []int
	// ForcedMicroBatch restricts the search to exactly one micro-batch
	// size. Used by the fixed-µB sweep (Figure 7 right) and the "Parallel"
	// ablation arm (Figure 9).
	ForcedMicroBatch int
	// PerStageMicroBatch enables the fine-grained per-stage micro-batch
	// search of §6 (Figure 5): stage boundaries may change the micro-batch
	// size instead of inheriting the global one. Off by default, as in the
	// paper ("performance improvements ... are incremental" for the
	// evaluated models), and more expensive to search.
	PerStageMicroBatch bool
	// DisableSinkAnchoredSplits removes the partitions where a stage
	// combines a branch tail with the merge operators (§7.5's "one stage
	// necessarily contains the concatenation operator"). Exists for the
	// ablation benchmarks only.
	DisableSinkAnchoredSplits bool
	// PlacementOblivious restores the pre-placement planner: stages are
	// costed against device 0 and the two-tier bandwidth heuristics instead
	// of the contiguous device block each stage actually lands on, and the
	// DP key carries no placement dimension. On a flat uniform topology the
	// placement-aware path produces byte-identical strategies (pinned by
	// conformance invariant (g)); the flag exists for that pin and for
	// A/B-ing the placement machinery.
	PlacementOblivious bool
	// Epsilon is the relative binary-search tolerance (default 2e-3).
	Epsilon float64
	// Workers bounds the planning worker pool shared by the
	// per-micro-batch binary searches and the per-probe root branch
	// enumeration: 0 means one worker per available CPU, 1 forces the
	// fully sequential path. The chosen strategy is identical either way.
	Workers int
	// FreshProbeMemo restores the reference search: a fresh DP memo for
	// every binary-search probe instead of the probe-spanning memo with
	// monotone validity intervals. The chosen strategy is identical either
	// way (pinned by TestCrossProbeReuseEquivalence); the flag exists for
	// that test and for benchmarking the reuse itself. It also disables
	// warm-starting (WarmMemo/MemoSink): the reference path plans cold.
	FreshProbeMemo bool
	// WarmMemo, when set, is consulted once per Plan call with the
	// snapshot key of this (graph, options, topology/cost-model)
	// combination. A returned snapshot warm-starts the search: each
	// per-micro-batch search whose SearchMemo passes the compatibility
	// checks imports the prior entries, and the validity-interval
	// machinery invalidates exactly the entries whose [lo, hi) the new
	// probes miss. An incompatible, corrupt, or absent snapshot degrades
	// to a cold plan — never an error.
	WarmMemo func(memosnap.Key) *memosnap.Snapshot
	// MemoSink, when set, receives the completed search's exported memo
	// snapshot after a successful Plan, for persistence across requests.
	MemoSink func(*memosnap.Snapshot)
	// Span, when set, records one timed span per planning phase: each
	// per-size micro-batch search, each DP probe inside its binary
	// search, and the memo snapshot import/export. Call at phase start,
	// invoke the returned func at end. Spans start from concurrent pool
	// workers, so implementations must be safe for concurrent use. nil
	// disables phase recording with no other behavior change.
	Span func(name string, kv ...string) func()
}

// span records one planning phase through Options.Span, degrading to a
// no-op when no recorder is wired.
func (p *Planner) span(name string, kv ...string) func() {
	if p.opts.Span == nil {
		return func() {}
	}
	return p.opts.Span(name, kv...)
}

func (o Options) withDefaults() Options {
	if o.MaxMicroBatch == 0 {
		o.MaxMicroBatch = 4096
	}
	if len(o.KCandidates) == 0 {
		o.KCandidates = []int{1}
	}
	if o.Epsilon == 0 {
		o.Epsilon = 2e-3
	}
	return o
}

// Result is a planning outcome with search statistics.
type Result struct {
	Strategy *strategy.Strategy
	// BottleneckTPS is the achieved max-stage TPS (Equation 1 objective).
	BottleneckTPS float64
	// DPStates counts memoized subproblems across the whole search.
	DPStates int
	// BinaryIters counts binary-search iterations.
	BinaryIters int
	// MemoWarmStarted reports that at least one per-micro-batch search
	// imported a compatible prior memo snapshot (Options.WarmMemo).
	MemoWarmStarted bool
	// MemoEntriesReused counts imported memo entries whose validity
	// interval covered a probe target, each counted at most once.
	MemoEntriesReused int
}

// ErrNoStrategy is returned when no valid strategy exists within the device
// memory budget.
var ErrNoStrategy = errors.New("core: no valid strategy found")

// Planner discovers GPP strategies for one model on one topology.
type Planner struct {
	g     *graph.Graph
	model costmodel.Model
	topo  *cluster.Topology
	dec   *spgraph.Decomposer
	opts  Options

	zones *zoneTable

	// places interns the cost-equivalence classes of contiguous device
	// blocks; the class of a stage's block is the placement dimension of
	// the DP key. nil when Options.PlacementOblivious.
	places *cluster.PlacementTable

	// evalCaches memoizes per-(zone, micro-batch, devices) stage costs,
	// partitioned by root micro-batch size so concurrent per-size searches
	// never contend. The costs are independent of the binary-search
	// target and are therefore reused across all probes of one Plan call;
	// each table is internally sharded for the per-probe fan-out.
	evalCaches map[int]*evalTable

	// exportGen numbers exportSearch calls for dpResult.expGen tagging.
	exportGen uint32
}

type stageEvalKey struct {
	zone  int
	b, d  int
	place int // placement class, -1 in placement-oblivious mode
}

type stageEval struct {
	tps          float64
	weightMem    float64
	actPerSample float64
}

// zoneTable interns the series-parallel zones into dense integer ids so DP
// memoization keys avoid string hashing, and resolves each zone's splits to
// id pairs once.
type zoneTable struct {
	dec        *spgraph.Decomposer
	noAnchored bool
	ids        map[string]int
	sets       []graph.NodeSet
	series     [][]splitIDs
	parallel   [][]splitIDs
	resolved   []bool
}

type splitIDs struct {
	left, right  int
	sinkAnchored bool
	mergeOp      graph.NodeID
}

func newZoneTable(dec *spgraph.Decomposer) *zoneTable {
	return &zoneTable{dec: dec, ids: make(map[string]int)}
}

func (zt *zoneTable) intern(set graph.NodeSet) int {
	key := set.Key()
	if id, ok := zt.ids[key]; ok {
		return id
	}
	id := len(zt.sets)
	zt.ids[key] = id
	// Prime the cached content fingerprint: every StageConfig built from
	// this zone copies the set (and the cache with it), so cost-model cache
	// lookups on the DP hot path never rehash the bitset.
	set.Fingerprint()
	zt.sets = append(zt.sets, set)
	zt.series = append(zt.series, nil)
	zt.parallel = append(zt.parallel, nil)
	zt.resolved = append(zt.resolved, false)
	return id
}

func (zt *zoneTable) resolve(id int) {
	if zt.resolved[id] {
		return
	}
	zt.resolved[id] = true
	set := zt.sets[id]
	for _, sp := range zt.dec.SeriesSplits(set) {
		zt.series[id] = append(zt.series[id], splitIDs{left: zt.intern(sp.Left), right: zt.intern(sp.Right)})
	}
	for _, sp := range zt.dec.ParallelSplits(set) {
		if sp.SinkAnchored && zt.noAnchored {
			continue
		}
		zt.parallel[id] = append(zt.parallel[id], splitIDs{
			left: zt.intern(sp.Left), right: zt.intern(sp.Right),
			sinkAnchored: sp.SinkAnchored, mergeOp: sp.MergeOp,
		})
	}
	// Non-series-parallel atoms fall back to a linearized chain (§5's
	// conversion), so the planner never has to treat a multi-operator
	// blob as indivisible.
	if len(zt.series[id]) == 0 && len(zt.parallel[id]) == 0 {
		for _, sp := range zt.dec.LinearizedSplits(set) {
			zt.series[id] = append(zt.series[id], splitIDs{left: zt.intern(sp.Left), right: zt.intern(sp.Right)})
		}
	}
}

func (zt *zoneTable) seriesSplits(id int) []splitIDs {
	return zt.series[id]
}

func (zt *zoneTable) parallelSplits(id int) []splitIDs {
	return zt.parallel[id]
}

// resolveAll resolves every zone reachable from root so the table becomes
// read-only and safe for the concurrent per-micro-batch searches.
func (zt *zoneTable) resolveAll(root int) {
	for next := root; next < len(zt.sets); next++ {
		zt.resolve(next)
	}
}

// NewPlanner constructs a planner. The graph must have a single source and
// sink (spgraph.Validate).
func NewPlanner(g *graph.Graph, model costmodel.Model, opts Options) (*Planner, error) {
	if err := spgraph.Validate(g); err != nil {
		return nil, err
	}
	dec := spgraph.New(g)
	zt := newZoneTable(dec)
	opts = opts.withDefaults()
	zt.noAnchored = opts.DisableSinkAnchoredSplits
	p := &Planner{
		g:     g,
		model: model,
		topo:  model.Topology(),
		dec:   dec,
		zones: zt,
		opts:  opts,
	}
	if !opts.PlacementOblivious {
		p.places = cluster.NewPlacementTable(p.topo)
	}
	return p, nil
}

// microBatchCandidates returns the candidate micro-batch sizes for
// mini-batch B, largest first so ties in the DP prefer compute efficiency.
func (p *Planner) microBatchCandidates(miniBatch int) []int {
	if p.opts.ForcedMicroBatch > 0 {
		if miniBatch%p.opts.ForcedMicroBatch != 0 {
			return nil
		}
		return []int{p.opts.ForcedMicroBatch}
	}
	if len(p.opts.MicroBatchCandidates) > 0 {
		var out []int
		for _, b := range p.opts.MicroBatchCandidates {
			if b >= 1 && miniBatch%b == 0 {
				out = append(out, b)
			}
		}
		sort.Sort(sort.Reverse(sort.IntSlice(out)))
		return out
	}
	var out []int
	for b := 1; b <= miniBatch && b <= p.opts.MaxMicroBatch; b *= 2 {
		if miniBatch%b == 0 {
			out = append(out, b)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// allowedDegree reports whether d is a permitted per-stage data-parallel
// degree: powers of two up to the cluster size (§5 complexity analysis).
// The check replaces the map the search used to carry — a branch-free
// bit-trick instead of a heap allocation plus a hash per stage attempt.
func allowedDegree(d, max int) bool {
	return d > 0 && d <= max && d&(d-1) == 0
}

// --- DP machinery ---

// dpStage is one stage of a partial solution. zone is the owning
// series-parallel zone's table id — redundant with ops, but it lets the
// memo exporter name the zone without a reverse set lookup.
type dpStage struct {
	ops      graph.NodeSet
	zone     int
	cfg      schedule.Config
	devs     int
	inFlight int
	memory   float64
	tps      float64
	// start is the first device of the stage's contiguous block. The DP
	// leaves it zero — memo entries are shared across same-class blocks at
	// different offsets — and assemble stamps the winning tree's actual
	// offsets via assignStarts before flattening.
	start int
}

// dpResult is the solution of one DP subproblem. A nil dpResult means
// infeasible. Results form a derivation tree (leaf = single stage; inner =
// series/parallel combination) so the DP never copies stage lists; the
// winning tree is flattened once at assembly time.
type dpResult struct {
	// inFlight is the in-flight sample count of the zone's source
	// stage(s); parallel zones report the maximum (continuous pipelining).
	inFlight int
	// srcCfg is the configuration of the zone's source stage(s).
	srcCfg  schedule.Config
	maxMem  float64
	maxTPS  float64
	nStages int

	leaf        *dpStage // non-nil for base-case results
	left, right *dpResult

	// expGen/expID tag the node with the id the memo exporter assigned it
	// during export generation expGen (see exportSearch); zero means never
	// exported. Compared against the planner's generation counter so a
	// node shared by successive exports is deduplicated without a
	// pointer-keyed map.
	expGen uint32
	expID  int32
}

// combineInto writes the series/parallel combination of a and b into out —
// a caller-owned scratch value, not an allocation: the DP inner loop
// evaluates orders of magnitude more candidates than it keeps, so candidate
// values are built in place and only copied into an arena node when they
// win the better comparison.
func combineInto(out, a, b *dpResult) {
	*out = dpResult{
		maxMem:  a.maxMem,
		maxTPS:  a.maxTPS,
		nStages: a.nStages + b.nStages,
		left:    a,
		right:   b,
	}
	if b.maxMem > out.maxMem {
		out.maxMem = b.maxMem
	}
	if b.maxTPS > out.maxTPS {
		out.maxTPS = b.maxTPS
	}
}

// stageInfoFor returns the schedule configuration and in-flight sample
// count of the stage that owns op in this derivation, walking the tree.
// Sink-anchored splits use it to find the merge stage branch groups feed.
func (r *dpResult) stageInfoFor(op graph.NodeID) (schedule.Config, int, bool) {
	if r.leaf != nil {
		if r.leaf.ops.Contains(op) {
			return r.leaf.cfg, r.leaf.inFlight, true
		}
		return schedule.Config{}, 0, false
	}
	if cfg, ifl, ok := r.left.stageInfoFor(op); ok {
		return cfg, ifl, true
	}
	return r.right.stageInfoFor(op)
}

// collectStages flattens the derivation tree.
func (r *dpResult) collectStages(out []dpStage) []dpStage {
	if r.leaf != nil {
		return append(out, *r.leaf)
	}
	out = r.left.collectStages(out)
	return r.right.collectStages(out)
}

// better implements the DP's preference order: feasible, then smaller
// source-stage in-flight count (the §5 subproblem objective), then smaller
// peak memory (PickBetter, Algorithm 1 line 18), then fewer stages.
func better(a, b *dpResult) *dpResult {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.inFlight != b.inFlight {
		if a.inFlight < b.inFlight {
			return a
		}
		return b
	}
	if a.maxMem != b.maxMem {
		if a.maxMem < b.maxMem {
			return a
		}
		return b
	}
	if a.nStages <= b.nStages {
		return a
	}
	return b
}

// dpKey packs a DP state into one word: zone id (14 bits), devices (7),
// placement class (8), source config index (6), successor presence +
// config index (1+6), successor in-flight samples (22). The placement
// class is the interned cost-equivalence class of the contiguous device
// block the zone lands on (cluster.PlacementTable); placement-oblivious
// searches leave it zero. Packing keeps memo lookups cheap; the hot path
// is hundreds of millions of lookups for the largest models. Plan
// validates every field's range up front (validateKeyRanges), so the
// packing cannot silently alias distinct states.
type dpKey uint64

// span is the half-open interval [lo, hi) of binary-search targets for
// which a memoized DP value is provably unchanged. A DP computation depends
// on the probe target tmax only through its [tps ≤ tmax] stage-feasibility
// comparisons: lo accumulates the largest accepted stage TPS, hi the
// smallest rejected one, intersected over every sub-computation consulted.
// For any target inside the span, each of those comparisons — and therefore
// the entire computation, candidate by candidate — comes out identical, so
// the memo entry can be reused across probes (§7.2's parametric search made
// incremental).
type span struct{ lo, hi float64 }

func fullSpan() span { return span{lo: 0, hi: math.Inf(1)} }

// join intersects o into v.
func (v *span) join(o span) {
	if o.lo > v.lo {
		v.lo = o.lo
	}
	if o.hi < v.hi {
		v.hi = o.hi
	}
}

func (v span) covers(t float64) bool { return v.lo <= t && t < v.hi }

// search holds one micro-batch size's binary-search state, shared by every
// probe of that search: the probe-spanning sharded memo, the eval table,
// the frozen config index, and the worker pool. tmax is the current probe's
// target; probes are sequential within one search, so mutating it between
// probes is race-free. The recursion itself runs in dpWalker instances, one
// per concurrent branch.
type search struct {
	p         *Planner
	miniBatch int
	rootB     int // this search's root micro-batch candidate
	tmax      float64
	bCands    []int // all candidate micro-batch sizes (per-stage mode)
	maxDegree int   // cluster size: data-parallel degrees are powers of two ≤ this
	memo      *memoTable
	evalCache *evalTable
	states    atomic.Int64
	pool      *workerPool // nil: fully sequential probe

	// cfgs interns schedule configs for key packing. It is frozen before
	// the search starts (every reachable config is a micro-batch candidate
	// × kFkB candidate), so concurrent walkers read it without locking and
	// key packing is deterministic regardless of visit order.
	cfgs []schedule.Config
	// boundary is the fixed list of candidate stage-boundary configs: every
	// source config of this search shares one micro-batch size (uniform
	// mode) or the boundary offers the full candidate cross product
	// (per-stage mode), so the list is computed once per search instead of
	// allocated per DP state.
	boundary []schedule.Config
}

// freezeConfigs pre-interns every schedule config the search can reach, in
// a deterministic order. In the uniform-schedule default every boundary
// inherits the probe's root micro-batch size, so only (rootB × KCandidates)
// is reachable; per-stage mode offers the full cross product, exactly as
// the old lazy interner would have reached.
func (s *search) freezeConfigs(rootB int) {
	intern := func(c schedule.Config) {
		for _, fc := range s.cfgs {
			if fc == c {
				return
			}
		}
		if len(s.cfgs) >= maxCfgIdx {
			panic("core: too many distinct schedule configs")
		}
		s.cfgs = append(s.cfgs, c)
	}
	for _, k := range s.p.opts.KCandidates {
		intern(schedule.Config{MicroBatch: rootB, K: k})
	}
	if s.p.opts.PerStageMicroBatch {
		for _, b := range s.bCands {
			for _, k := range s.p.opts.KCandidates {
				intern(schedule.Config{MicroBatch: b, K: k})
			}
		}
	}
	// Stage-boundary candidates (§6): in the uniform default every boundary
	// inherits the search's root micro-batch size, one candidate per kFkB
	// choice; per-stage mode offers the full cross product (Figure 5's
	// per-stage sizes). Either way the list is independent of the DP state,
	// so it is built once here instead of per series split.
	if s.p.opts.PerStageMicroBatch {
		for _, b := range s.bCands {
			for _, k := range s.p.opts.KCandidates {
				s.boundary = append(s.boundary, schedule.Config{MicroBatch: b, K: k})
			}
		}
	} else {
		for _, k := range s.p.opts.KCandidates {
			s.boundary = append(s.boundary, schedule.Config{MicroBatch: rootB, K: k})
		}
	}
}

// configIdx resolves a schedule config to its frozen index by scanning the
// (tiny: one per micro-batch × kFkB candidate) config list. makeKey calls
// this for every DP state; a linear compare over at most a few structs
// beats hashing the struct into a map, which used to be ~20% of the whole
// search in profiles.
func (s *search) configIdx(c schedule.Config) int {
	for i, fc := range s.cfgs {
		if fc == c {
			return i
		}
	}
	panic(fmt.Sprintf("core: schedule config %+v not pre-interned", c))
}

// placeClass returns the placement class of the block [start, start+d), or
// 0 in placement-oblivious mode (the key's placement field is then inert).
func (s *search) placeClass(start, d int) int {
	if s.p.places == nil {
		return 0
	}
	return s.p.places.Class(start, d)
}

func (s *search) makeKey(zoneID, d, start int, cf schedule.Config, cb *schedule.Successor) dpKey {
	k := uint64(zoneID)&0x3FFF | uint64(d&0x7F)<<14 |
		uint64(s.placeClass(start, d)&0xFF)<<21 | uint64(s.configIdx(cf)&0x3F)<<29
	if cb != nil {
		k |= 1 << 35
		k |= uint64(s.configIdx(cb.Config)&0x3F) << 36
		k |= uint64(cb.InFlight&0x3FFFFF) << 42
	}
	return dpKey(k)
}

// dpKey bit widths. makeKey masks each field to its width; validateKeyRanges
// proves once per Plan that the masks cannot truncate, so an oversized model
// fails loudly instead of silently colliding memo keys.
const (
	maxZoneID     = 1<<14 - 1
	maxKeyDevs    = 1<<7 - 1
	maxPlaceClass = 1<<8 - 1
	maxCfgIdx     = 1<<6 - 1
	maxKInFlight  = 1<<22 - 1
)

// validateKeyRanges checks that every field makeKey packs fits its bit
// width for this search. Zone and config counts are final here (resolveAll
// has run; freezeConfigs interns only root × candidate configs, bounded by
// the product below). In-flight counts are produced by
// schedule.ComputeInFlight, whose Table 2 recurrences add at most
// k·b + 2·max(b) ≤ 3·maxK·maxB per stage over a pipeline of at most
// topo.Len() stages, so 3·maxK·maxB·devices bounds every successor
// in-flight value the DP can construct.
func (p *Planner) validateKeyRanges(bCands []int) error {
	if n := len(p.zones.sets); n-1 > maxZoneID {
		return fmt.Errorf("core: %d series-parallel zones exceed the DP key's %d-zone limit", n, maxZoneID+1)
	}
	if d := p.topo.Len(); d > maxKeyDevs {
		return fmt.Errorf("core: %d devices exceed the DP key's %d-device limit", d, maxKeyDevs)
	}
	if p.places != nil && p.places.NumClasses()-1 > maxPlaceClass {
		return fmt.Errorf("core: %d placement classes exceed the DP key's %d-class limit",
			p.places.NumClasses(), maxPlaceClass+1)
	}
	nCfg := len(p.opts.KCandidates)
	if p.opts.PerStageMicroBatch {
		nCfg += len(bCands) * len(p.opts.KCandidates)
	}
	// freezeConfigs interns at most maxCfgIdx configs (one 6-bit index is
	// reserved headroom for its own invariant panic).
	if nCfg > maxCfgIdx {
		return fmt.Errorf("core: %d schedule configs exceed the DP key's %d-config limit", nCfg, maxCfgIdx)
	}
	maxK, maxB := 1, 1
	for _, k := range p.opts.KCandidates {
		if k > maxK {
			maxK = k
		}
	}
	for _, b := range bCands {
		if b > maxB {
			maxB = b
		}
	}
	// Guard the factors before multiplying so the int64 product (each
	// factor ≤ 2²⁶, devices ≤ 2⁷) cannot itself overflow.
	if maxK > maxKInFlight || maxB > maxKInFlight {
		return fmt.Errorf("core: kFkB candidate %d / micro-batch candidate %d exceed the DP key's in-flight limit %d",
			maxK, maxB, maxKInFlight)
	}
	if bound := 3 * int64(maxK) * int64(maxB) * int64(p.topo.Len()); bound > maxKInFlight {
		return fmt.Errorf("core: worst-case in-flight samples %d (3·k·b·devices with k=%d, b=%d) exceed the DP key's limit %d",
			bound, maxK, maxB, maxKInFlight)
	}
	return nil
}

// interNodeComm reports whether stage-boundary transfers should be costed
// at inter-node bandwidth: in a multi-node cluster, neighboring stages
// usually land on different nodes.
func (s *search) interNodeComm() bool {
	return s.p.topo.Len() > 4
}

// interNodeAllreduce reports whether a d-replica stage's gradient allreduce
// crosses nodes: the contiguous allocator keeps up-to-4-device stages
// within one 4-GPU node.
func (s *search) interNodeAllreduce(d int) bool {
	return d > 4
}

// evalStage returns cached per-stage costs for (zone, b, d, placement
// class). Placement-aware searches cost the stage against the class's
// representative block — any block of the class has identical costs, so
// the eval (and the cost model's own cache) is shared across every
// same-class block the DP tries. The cost model runs outside the shard
// lock; concurrent walkers may duplicate an evaluation, but the value is
// deterministic so either write is correct.
func (s *search) evalStage(zoneID, b, d, start int) stageEval {
	place := -1
	if s.p.places != nil {
		place = s.p.places.Class(start, d)
	}
	key := stageEvalKey{zone: zoneID, b: b, d: d, place: place}
	if ev, ok := s.evalCache.get(key); ok {
		return ev
	}
	cfg := costmodel.StageConfig{
		Ops:        s.p.zones.sets[zoneID],
		MicroBatch: b,
		DataPar:    d,
	}
	if place >= 0 {
		cfg.Place = s.p.places.Rep(place, d)
	} else {
		cfg.InterNode = s.interNodeComm()
		cfg.InterNodeAllreduce = s.interNodeAllreduce(d)
	}
	costs := s.p.model.Stage(s.p.g, cfg)
	ev := stageEval{
		tps:          s.p.model.TPS(s.p.g, cfg, s.miniBatch),
		weightMem:    costs.WeightBytes,
		actPerSample: costs.ActivationBytesPerSample,
	}
	s.evalCache.put(key, ev)
	return ev
}

// stageAttempt evaluates a zone as a single stage. The returned span is the
// target interval on which the outcome (the result, or nil) is unchanged:
// a TPS rejection caps hi at the rejecting TPS, an accepted stage raises lo
// to its TPS, and the degree/divisibility/memory rejections are independent
// of the target (a memory rejection stays nil below the stage's TPS too —
// there the TPS check rejects instead).
func (w *dpWalker) stageAttempt(zoneID int, cf schedule.Config, cb *schedule.Successor, d, start int) (*dpResult, span) {
	s := w.s
	if !allowedDegree(d, s.maxDegree) {
		return nil, fullSpan()
	}
	if s.miniBatch%cf.MicroBatch != 0 {
		return nil, fullSpan()
	}
	ev := s.evalStage(zoneID, cf.MicroBatch, d, start)
	tps := ev.tps
	if tps > s.tmax {
		return nil, span{lo: 0, hi: tps}
	}
	var succs []schedule.Successor
	if cb != nil {
		succs = []schedule.Successor{*cb}
	}
	inFlight := schedule.ComputeInFlight(cf, succs)
	mem := ev.weightMem + ev.actPerSample*float64(inFlight)
	budget := s.p.topo.MinMemory()
	if s.p.places != nil {
		budget = s.p.topo.BlockMinMemory(cluster.Block{Start: start, Count: d})
	}
	if mem > budget {
		return nil, fullSpan()
	}
	r := w.newResult()
	r.inFlight = inFlight
	r.srcCfg = cf
	r.maxMem = mem
	r.maxTPS = tps
	r.nStages = 1
	r.leaf = w.newStage()
	*r.leaf = dpStage{
		ops: s.p.zones.sets[zoneID], zone: zoneID, cfg: cf, devs: d, inFlight: inFlight, memory: mem, tps: tps,
	}
	return r, span{lo: tps, hi: math.Inf(1)}
}

// dpWalker runs the DP recursion for one concurrent branch of the search.
// Walkers share the search's sharded memo table. Recursion cannot cycle —
// every series/parallel/linearized split yields strictly smaller zones, so
// the zone size strictly decreases along any recursion path — and instead
// of the per-call hash-set guard this used to carry, the walker enforces
// that invariant with a depth counter bounded by the graph's node count
// (one int compare on a path the profiler showed spending ~10% of the
// search in guard-map traffic). Results are slab-allocated per walker:
// dpResults live in the memo for the whole search, so freeing is never
// safe, but batching the allocations keeps the DP inner loop off the
// allocator's hot path.
type dpWalker struct {
	s         *search
	depth     int
	maxDepth  int
	resSlab   []dpResult
	stageSlab []dpStage
}

const walkerSlabSize = 256

func (s *search) newWalker() *dpWalker {
	// Zone sizes strictly decrease along a recursion path, so a path can
	// hold at most one dp frame per distinct size ≤ |V| (+1 for the root).
	return &dpWalker{s: s, maxDepth: s.p.g.Len() + 1}
}

func (w *dpWalker) newResult() *dpResult {
	if len(w.resSlab) == 0 {
		w.resSlab = make([]dpResult, walkerSlabSize)
	}
	r := &w.resSlab[0]
	w.resSlab = w.resSlab[1:]
	return r
}

func (w *dpWalker) newStage() *dpStage {
	if len(w.stageSlab) == 0 {
		w.stageSlab = make([]dpStage, walkerSlabSize)
	}
	st := &w.stageSlab[0]
	w.stageSlab = w.stageSlab[1:]
	return st
}

// dp solves one subproblem: partition the zone over d devices such that the
// source stage uses configuration cf, the stage after the zone has schedule
// information cb (nil at the model's sink), and every stage meets the TPS
// target. It returns nil when infeasible, plus the target interval on which
// the answer holds (the intersection of every consulted sub-computation's
// interval): a memo entry whose interval covers a later probe's target is
// reused without recomputation.
func (w *dpWalker) dp(zoneID int, cf schedule.Config, cb *schedule.Successor, d, start int) (*dpResult, span) {
	s := w.s
	key := s.makeKey(zoneID, d, start, cf, cb)
	if r, sp, ok := s.memo.get(key, s.tmax); ok {
		return r, sp
	}
	w.depth++
	if w.depth > w.maxDepth {
		panic("core: DP recursion deeper than the graph — a split failed to shrink its zone")
	}
	s.states.Add(1)

	sp := fullSpan()
	best, asp := w.stageAttempt(zoneID, cf, cb, d, start)
	sp.join(asp)

	// Candidates are evaluated into a scratch value and copied into an
	// arena node only when they beat the incumbent, so losing candidates
	// (the overwhelming majority) cost no allocation.
	var tmp dpResult

	// Series decompositions: solve downstream (right) first; its source
	// in-flight count becomes the upstream (left) sink's successor info
	// (Algorithm 1 lines 33–40). The upstream part keeps the block's low
	// devices; the downstream part lands at start+d1.
	for _, spl := range s.p.zones.seriesSplits(zoneID) {
		for d2 := 1; d2 < d; d2++ {
			d1 := d - d2
			for _, cm := range s.boundary {
				ok, rsp := w.trySeries(&tmp, spl, cf, cm, cb, d1, d2, start)
				sp.join(rsp)
				if ok && better(best, &tmp) == &tmp {
					n := w.newResult()
					*n = tmp
					best = n
				}
			}
		}
	}

	// Parallel decompositions: both groups share the source and sink
	// schedule boundaries; continuous pipelining takes the larger source
	// in-flight count (Algorithm 1 lines 41–47).
	for _, spl := range s.p.zones.parallelSplits(zoneID) {
		for d1 := 1; d1 < d; d1++ {
			ok, rsp := w.tryParallel(&tmp, spl, cf, cb, d1, d-d1, start)
			sp.join(rsp)
			if ok && better(best, &tmp) == &tmp {
				n := w.newResult()
				*n = tmp
				best = n
			}
		}
	}

	w.depth--
	s.memo.put(key, best, sp)
	return best, sp
}

// trySeries evaluates one series-split candidate into out: right part on
// d2 devices under boundary config cm, then the left part with the right's
// source schedule as its successor. When the right part is infeasible the
// left is never consulted — exactly as a fresh computation at any target
// inside the returned span would behave, so the early return keeps reuse
// sound.
func (w *dpWalker) trySeries(out *dpResult, sp splitIDs, cf, cm schedule.Config, cb *schedule.Successor, d1, d2, start int) (bool, span) {
	r2, v := w.dp(sp.right, cm, cb, d2, start+d1)
	if r2 == nil {
		return false, v
	}
	mid := schedule.Successor{Config: r2.srcCfg, InFlight: r2.inFlight}
	r1, v1 := w.dp(sp.left, cf, &mid, d1, start)
	v.join(v1)
	if r1 == nil {
		return false, v
	}
	combineInto(out, r1, r2)
	out.inFlight = r1.inFlight
	out.srcCfg = r1.srcCfg
	return true, v
}

// tryParallel evaluates one parallel-split candidate into out. For
// sink-anchored splits the right group carries the zone's shared sink
// operator, so the left group's successor is the sink-holding stage inside
// the right group's solution rather than the stage after the zone.
func (w *dpWalker) tryParallel(out *dpResult, sp splitIDs, cf schedule.Config, cb *schedule.Successor, d1, d2, start int) (bool, span) {
	r2, v := w.dp(sp.right, cf, cb, d2, start+d1)
	if r2 == nil {
		return false, v
	}
	leftCB := cb
	var anchored schedule.Successor
	if sp.sinkAnchored {
		cfg, ifl, ok := r2.stageInfoFor(sp.mergeOp)
		if !ok {
			return false, v // derivation must own the merge op
		}
		anchored = schedule.Successor{Config: cfg, InFlight: ifl}
		leftCB = &anchored
	}
	r1, v1 := w.dp(sp.left, cf, leftCB, d1, start)
	v.join(v1)
	if r1 == nil {
		return false, v
	}
	combineInto(out, r1, r2)
	out.inFlight = r1.inFlight
	if r2.inFlight > out.inFlight {
		out.inFlight = r2.inFlight
	}
	out.srcCfg = cf
	return true, v
}

// dpRoot solves the root zone. With a worker pool, the root's candidate
// set — the single-stage attempt plus every (series split, device split,
// boundary config) and (parallel split, device split) combination — fans
// out across the pool, each task recursing sequentially through its own
// walker into the shared memo. Candidates land in enumeration-order slots
// and are folded with better in that same order, so the winner is the one
// the sequential path picks: each candidate's value is a pure function of
// its sub-keys, independent of which walker computed the memo entries. The
// root state is memoized like any other, so a later probe whose target
// falls inside the root entry's span skips the whole fan-out.
func (s *search) dpRoot(zoneID int, cf schedule.Config, cb *schedule.Successor, d int) *dpResult {
	const start = 0 // the root zone always owns the whole device range
	if s.pool == nil {
		r, _ := s.newWalker().dp(zoneID, cf, cb, d, start)
		return r
	}
	key := s.makeKey(zoneID, d, start, cf, cb)
	if r, _, ok := s.memo.get(key, s.tmax); ok {
		return r
	}
	s.states.Add(1)
	var tasks []func()
	var cands []*dpResult
	var spans []span
	spawn := func(f func(w *dpWalker) (*dpResult, span)) {
		i := len(cands)
		cands = append(cands, nil)
		spans = append(spans, fullSpan())
		tasks = append(tasks, func() { cands[i], spans[i] = f(s.newWalker()) })
	}
	spawn(func(w *dpWalker) (*dpResult, span) { return w.stageAttempt(zoneID, cf, cb, d, start) })
	// materialize copies a feasible scratch candidate into the walker's
	// arena (root candidates outlive their task, unlike the DP inner loop's
	// losing candidates).
	materialize := func(w *dpWalker, tmp *dpResult, ok bool, v span) (*dpResult, span) {
		if !ok {
			return nil, v
		}
		r := w.newResult()
		*r = *tmp
		return r, v
	}
	for _, sp := range s.p.zones.seriesSplits(zoneID) {
		for d2 := 1; d2 < d; d2++ {
			d1 := d - d2
			for _, cm := range s.boundary {
				sp, cm, d1, d2 := sp, cm, d1, d2
				spawn(func(w *dpWalker) (*dpResult, span) {
					var tmp dpResult
					ok, v := w.trySeries(&tmp, sp, cf, cm, cb, d1, d2, start)
					return materialize(w, &tmp, ok, v)
				})
			}
		}
	}
	for _, sp := range s.p.zones.parallelSplits(zoneID) {
		for d1 := 1; d1 < d; d1++ {
			sp, d1, d2 := sp, d1, d-d1
			spawn(func(w *dpWalker) (*dpResult, span) {
				var tmp dpResult
				ok, v := w.tryParallel(&tmp, sp, cf, cb, d1, d2, start)
				return materialize(w, &tmp, ok, v)
			})
		}
	}
	s.pool.Do(tasks)
	var best *dpResult
	rootSpan := fullSpan()
	for i, cand := range cands {
		best = better(best, cand)
		rootSpan.join(spans[i])
	}
	s.memo.put(key, best, rootSpan)
	return best
}

// searchStageGraph is Algorithm 1's SearchStageGraph: try every candidate
// global schedule configuration and keep the best feasible partition.
func (s *search) searchStageGraph(root, b int) *dpResult {
	var best *dpResult
	for _, k := range s.p.opts.KCandidates {
		cf := schedule.Config{MicroBatch: b, K: k}
		r := s.dpRoot(root, cf, nil, s.p.topo.Len())
		best = s.betterRoot(best, r)
	}
	return best
}

// rootScore estimates the synchronous 1F1B iteration time of a root
// solution: the bottleneck stage paces both the steady state (B samples)
// and the warm-up/cool-down bubbles, which grow with the source stage's
// in-flight window (≈ pipeline depth × micro-batch size). All three
// planners in this repository select their final strategy by this estimate
// so the comparison isolates the partition spaces (see DESIGN.md).
func rootScore(r *dpResult, miniBatch int) float64 {
	return r.maxTPS * float64(miniBatch+r.inFlight-r.srcCfg.MicroBatch)
}

// betterRoot is PickBetter at the root: feasibility, then the synchronous
// iteration estimate, then lower memory.
func (s *search) betterRoot(a, b *dpResult) *dpResult {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	sa, sb := rootScore(a, s.miniBatch), rootScore(b, s.miniBatch)
	if sa != sb {
		if sa < sb {
			return a
		}
		return b
	}
	if a.maxMem <= b.maxMem {
		return a
	}
	return b
}

// perB accumulates one candidate micro-batch size's search outcome. The
// search object itself is retained so Plan can export its memo and read
// its warm-reuse counters after the fan-out joins.
type perB struct {
	best   *dpResult
	states int
	iters  int
	search *search
	warmed bool
}

// newSearch constructs one micro-batch size's search state with its config
// index frozen. Plan's fan-out and the snapshot round-trip tests share it.
func (p *Planner) newSearch(b, miniBatch int, bCands []int, pool *workerPool) *search {
	s := &search{
		p:         p,
		miniBatch: miniBatch,
		rootB:     b,
		bCands:    bCands,
		maxDegree: p.topo.Len(),
		memo:      newMemoTable(pool != nil),
		evalCache: p.evalCaches[b],
		pool:      pool,
	}
	s.freezeConfigs(b)
	return s
}

// searchMicroBatch runs one micro-batch size's binary search over the
// bottleneck-TPS target. Probes are inherently sequential — each one
// halves the bracket the previous probe established — so parallelism comes
// from fanning each probe's root branch enumeration out on the pool, and
// from the sibling per-size searches running concurrently.
//
// All probes of one search share one memo table: entries carry the target
// interval on which they are valid, so a probe only re-solves states whose
// interval does not cover its target (FreshProbeMemo restores the
// reference one-memo-per-probe behavior).
// A warm snapshot's matching SearchMemo, if compatible, seeds the memo
// before the first probe: entries whose validity interval covers a probe's
// target short-circuit exactly as this search's own earlier probes would.
func (p *Planner) searchMicroBatch(out *perB, b, miniBatch int, bCands []int, maxTPS, eps float64, root int, pool *workerPool, snap *memosnap.Snapshot) {
	defer p.span("search.micro-batch", "b", strconv.Itoa(b))()
	s := p.newSearch(b, miniBatch, bCands, pool)
	out.search = s
	if sm := snap.Search(miniBatch, b); sm != nil && !p.opts.FreshProbeMemo {
		endImport := p.span("memo.import", "b", strconv.Itoa(b))
		out.warmed = s.importMemo(sm, snap.Placements)
		endImport()
	}
	probe := func(tmax float64) *dpResult {
		endProbe := p.span("dp.probe", "b", strconv.Itoa(b),
			"target", strconv.FormatFloat(tmax, 'g', 6, 64))
		defer endProbe()
		if p.opts.FreshProbeMemo {
			s.memo = newMemoTable(pool != nil)
		}
		s.tmax = tmax
		r := s.searchStageGraph(root, b)
		out.states = int(s.states.Load()) // cumulative across probes
		return r
	}
	keep := func(r *dpResult) {
		if r == nil {
			return
		}
		if out.best == nil || rootScore(r, miniBatch) < rootScore(out.best, miniBatch) {
			out.best = r
		}
	}
	r0 := probe(maxTPS)
	if r0 == nil {
		return
	}
	keep(r0)
	tl, tr := 0.0, r0.maxTPS
	for tr-tl > eps {
		out.iters++
		tm := (tl + tr) / 2
		if r := probe(tm); r != nil {
			keep(r)
			tr = tm
			if r.maxTPS < tr {
				tr = r.maxTPS
			}
		} else {
			tl = tm
		}
	}
}

// Plan runs the full Algorithm 1: binary search over the bottleneck TPS
// target with a probe-spanning DP memo (entries carry monotone validity
// intervals, so later probes re-solve only the states their target
// invalidates), then assembles, schedules, and validates the winning
// strategy.
func (p *Planner) Plan(miniBatch int) (*Result, error) {
	if miniBatch <= 0 {
		return nil, fmt.Errorf("core: invalid mini-batch %d", miniBatch)
	}
	bCands := p.microBatchCandidates(miniBatch)
	if len(bCands) == 0 {
		return nil, fmt.Errorf("core: no candidate micro-batch sizes divide mini-batch %d", miniBatch)
	}
	workers := p.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var pool *workerPool
	if workers > 1 {
		pool = newWorkerPool(workers)
	}

	p.evalCaches = make(map[int]*evalTable) // TPS depends on miniBatch
	for _, b := range bCands {
		p.evalCaches[b] = newEvalTable(pool != nil)
	}
	root := p.zones.intern(p.dec.Root())
	p.zones.resolveAll(root) // make the zone table read-only

	if err := p.validateKeyRanges(bCands); err != nil {
		return nil, err
	}

	maxTPS := p.model.MaxTPS(p.g, miniBatch)
	eps := p.opts.Epsilon * maxTPS

	// Warm start: resolve this planning question's snapshot key and ask
	// the provider for a prior memo. The key binds graph, structural
	// options, and cost observables, so a snapshot from a different
	// question is rejected here; per-search compatibility (mini-batch,
	// frozen configs, zone count) is verified at import time. The
	// reference FreshProbeMemo path always plans cold.
	var snap *memosnap.Snapshot
	var snapKey memosnap.Key
	if (p.opts.WarmMemo != nil || p.opts.MemoSink != nil) && !p.opts.FreshProbeMemo {
		snapKey = p.snapshotKey()
		if p.opts.WarmMemo != nil {
			if s := p.opts.WarmMemo(snapKey); s != nil && s.Key == snapKey {
				snap = s
			}
		}
	}

	// Each candidate micro-batch size runs its own binary search over the
	// bottleneck-TPS target (Algorithm 1 lines 2-11) so the feasibility
	// frontier of every size is sampled near its own critical TPS values:
	// the DP prefers minimal in-flight counts at loose targets (a single
	// data-parallel stage hides pipelines), so each tightening step can
	// reveal a better-scored strategy. The per-size searches are
	// independent in the uniform-schedule default; they and their probes'
	// root fan-outs share one bounded worker pool.
	results := make([]perB, len(bCands))
	tasks := make([]func(), len(bCands))
	for i, b := range bCands {
		i, b := i, b
		tasks[i] = func() {
			p.searchMicroBatch(&results[i], b, miniBatch, bCands, maxTPS, eps, root, pool, snap)
		}
	}
	if pool == nil {
		for _, t := range tasks {
			t()
		}
	} else {
		pool.Do(tasks)
	}

	var best *dpResult
	states, iters := 0, 0
	for i := range results {
		states += results[i].states
		if results[i].iters > iters {
			iters = results[i].iters
		}
		r := results[i].best
		if r == nil {
			continue
		}
		if best == nil || rootScore(r, miniBatch) < rootScore(best, miniBatch) {
			best = r
		}
	}
	if best == nil {
		return nil, ErrNoStrategy
	}

	st, err := p.assemble(best, miniBatch)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Strategy:      st,
		BottleneckTPS: best.maxTPS,
		DPStates:      states,
		BinaryIters:   iters,
	}
	for i := range results {
		if results[i].warmed {
			res.MemoWarmStarted = true
		}
		if s := results[i].search; s != nil {
			res.MemoEntriesReused += int(s.memo.warmHits.Load())
		}
	}
	if p.opts.MemoSink != nil && !p.opts.FreshProbeMemo {
		endExport := p.span("memo.export")
		snapOut := p.exportSnapshot(snapKey, results)
		endExport()
		p.opts.MemoSink(snapOut)
	}
	return res, nil
}

// devCount returns the total device count of the derivation subtree.
func (r *dpResult) devCount() int {
	if r.leaf != nil {
		return r.leaf.devs
	}
	return r.left.devCount() + r.right.devCount()
}

// assignStarts stamps each leaf stage of the winning derivation tree with
// the start of its contiguous device block: the left child of every
// series/parallel combination owns the lower devices, exactly the
// convention the DP used when it keyed and costed the subproblems. The DP
// leaves leaf starts zero so memo entries stay shareable across same-class
// blocks; within one winning tree every node is distinct (its zones
// partition the operator set), so stamping the leaves in place is safe.
func assignStarts(r *dpResult, start int) {
	if r.leaf != nil {
		r.leaf.start = start
		return
	}
	assignStarts(r.left, start)
	assignStarts(r.right, start+r.left.devCount())
}

// assemble turns a DP solution into a concrete, validated Strategy:
// deterministic stage order, contiguous device assignment, final in-flight
// counts recomputed by backward traversal of the stage graph (§6), and
// per-stage task orders from the greedy scheduler.
func (p *Planner) assemble(r *dpResult, miniBatch int) (*strategy.Strategy, error) {
	if p.places != nil {
		assignStarts(r, 0)
	}
	stages := r.collectStages(nil)
	// Deterministic order: by the earliest topological position of any
	// owned operator. This also keeps device allocation contiguous along
	// the pipeline.
	sort.SliceStable(stages, func(i, j int) bool {
		return minTopoPos(p.g, stages[i].ops) < minTopoPos(p.g, stages[j].ops)
	})

	st := &strategy.Strategy{Planner: "graphpipe", MiniBatch: miniBatch}
	var groups [][]cluster.DeviceID
	if p.places != nil && !p.topo.Flat() {
		// Placement-aware planning on a non-flat topology: the DP costed
		// each stage against one specific contiguous block, so the
		// assembled strategy must use exactly those blocks. On flat
		// topologies every same-size block is cost-identical and the
		// legacy allocator below reproduces the pre-placement artifacts
		// byte for byte.
		groups = make([][]cluster.DeviceID, len(stages))
		for i, ds := range stages {
			ids := make([]cluster.DeviceID, ds.devs)
			for k := range ids {
				ids[k] = cluster.DeviceID(ds.start + k)
			}
			groups[i] = ids
		}
	} else {
		counts := make([]int, len(stages))
		for i := range stages {
			counts[i] = stages[i].devs
		}
		var err error
		groups, err = cluster.PlaceStages(p.topo, counts)
		if err != nil {
			return nil, fmt.Errorf("core: device assignment: %w", err)
		}
	}
	for i, ds := range stages {
		st.Stages = append(st.Stages, strategy.Stage{
			ID:      strategy.StageID(i),
			Ops:     ds.ops,
			Config:  ds.cfg,
			Devices: groups[i],
		})
	}
	if err := st.BuildEdges(p.g); err != nil {
		return nil, err
	}

	// Recompute in-flight counts against the final stage graph by walking
	// it backward from the sink (§6): the DP's bookkeeping must agree, but
	// the stage graph is the source of truth.
	order := st.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var succs []schedule.Successor
		for _, w := range st.Succ[id] {
			succs = append(succs, schedule.Successor{
				Config:   st.Stages[w].Config,
				InFlight: st.Stages[w].InFlightSamples,
			})
		}
		st.Stages[id].InFlightSamples = schedule.ComputeInFlight(st.Stages[id].Config, succs)
	}

	for i := range st.Stages {
		tasks, err := schedule.BuildTasks(st.Stages[i].Config, miniBatch, st.Stages[i].InFlightSamples)
		if err != nil {
			return nil, fmt.Errorf("core: scheduling stage %d: %w", i, err)
		}
		st.Stages[i].Tasks = tasks
	}
	if err := st.Validate(p.g, p.topo); err != nil {
		return nil, fmt.Errorf("core: assembled strategy invalid: %w", err)
	}
	return st, nil
}

func minTopoPos(g *graph.Graph, ops graph.NodeSet) int {
	min := g.Len()
	for _, id := range ops.IDs() {
		if p := g.TopoPos(id); p < min {
			min = p
		}
	}
	return min
}
