package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"slices"

	"graphpipe/internal/costmodel"
	"graphpipe/internal/memosnap"
	"graphpipe/internal/schedule"
)

// This file translates the planner's in-memory DP memo to and from
// memosnap snapshots, so a search can warm-start from a prior one.
//
// Soundness rests on the same argument as the probe-spanning memo (see the
// span type): every DP value is a pure function of its packed key and of
// the per-stage costs the computation consulted, and its validity interval
// bounds the targets for which the [tps ≤ tmax] comparisons inside it come
// out identical. Costs depend on the graph, the structural options, the
// topology observables, and the mini-batch (through the TPS objective's
// allreduce term) — but not on the cluster size: a key with degree d
// reaches only sub-keys with degree ≤ d and per-degree cost flags
// (interNodeAllreduce is d > 4 regardless of cluster), so an entry
// computed at 32 devices is exactly what a 16-device search would have
// computed for the same key. The snapshot key (graph hash + shape sig +
// cost sig) pins the graph/options/cost inputs; SearchMemos isolate
// mini-batches; entries for degrees beyond the importer's cluster are
// simply never queried. The one per-cluster cost input — whether stage
// boundaries cross nodes (topo.Len() > 4) — is folded into the cost
// signature, so snapshots never cross that regime.

// snapshotKey computes this planning question's compatibility identity.
func (p *Planner) snapshotKey() memosnap.Key {
	return memosnap.Key{
		GraphHash: p.g.CanonicalHash(),
		ShapeSig:  p.shapeSig(),
		CostSig:   p.costSig(),
	}
}

// shapeSig hashes the options that change which DP states exist or how
// keys pack: candidate sets and split rules. Epsilon and Workers are
// deliberately excluded — the validity intervals make entries correct for
// any target, and the worker count never changes a value (both pinned by
// the determinism conformance invariant).
func (p *Planner) shapeSig() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "shape2\nmbc=%v\nmaxmb=%d\nk=%v\nforced=%d\nperstage=%t\nnoanchor=%t\noblivious=%t\n",
		p.opts.MicroBatchCandidates, p.opts.MaxMicroBatch, p.opts.KCandidates,
		p.opts.ForcedMicroBatch, p.opts.PerStageMicroBatch, p.opts.DisableSinkAnchoredSplits,
		p.opts.PlacementOblivious)
	return h.Sum64()
}

// costSig hashes every cost input a DP computation can observe: the
// topology scalars the search reads directly (memory budget, the
// inter-node boundary regime) and the cost model's behavior, fingerprinted
// through deterministic whole-graph probes at fixed configurations. The
// probes cover the three degree regimes a stage can occupy (no allreduce,
// intra-node allreduce, inter-node allreduce), so changed model parameters
// or bandwidths shift at least one probe output and the signatures
// diverge. The conformance warm≡cold invariant is the backstop for cost
// models whose behavior a whole-graph probe cannot distinguish.
func (p *Planner) costSig() uint64 {
	h := fnv.New64a()
	interNode := p.topo.Len() > 4
	// The canonical topology spec pins every placement-aware cost input:
	// device classes, level bandwidths (down and up), and the class
	// assignment. The summit preset canonicalizes to "" at every device
	// count, which is what keeps snapshots reusable across an elastic
	// summit resize (placement class ids are translated by signature at
	// import); any other topology pins snapshots to its exact spec.
	fmt.Fprintf(h, "cost2\nregime=%t\ntopo=%s\nminmem=%x\n",
		interNode, p.topo.Canonical(), math.Float64bits(p.topo.MinMemory()))
	fmt.Fprintf(h, "intra=%x\ninter=%x\nlat=%x\n",
		math.Float64bits(p.topo.IntraNodeBandwidth),
		math.Float64bits(p.topo.InterNodeBandwidth),
		math.Float64bits(p.topo.LinkLatency))
	dev := p.topo.Device(0)
	fmt.Fprintf(h, "mem=%x\nflops=%x\nbw=%x\n",
		math.Float64bits(dev.MemoryBytes), math.Float64bits(dev.PeakFLOPS), math.Float64bits(dev.MemBandwidth))
	probes := []struct {
		b, d int
		arX  bool // inter-node allreduce
	}{
		{1, 1, false},
		{4, 2, false},
		{8, 8, true},
	}
	const probeMiniBatch = 64
	for _, pr := range probes {
		cfg := p.probeConfig(pr.b, pr.d, interNode, pr.arX)
		c := p.model.Stage(p.g, cfg)
		fmt.Fprintf(h, "probe b=%d d=%d: %x %x %x %x %x %x %x\n", pr.b, pr.d,
			math.Float64bits(c.ForwardTime), math.Float64bits(c.BackwardTime),
			math.Float64bits(c.CommInTime), math.Float64bits(c.AllreducePerIter),
			math.Float64bits(c.WeightBytes), math.Float64bits(c.ActivationBytesPerSample),
			math.Float64bits(p.model.TPS(p.g, cfg, probeMiniBatch)))
	}
	fmt.Fprintf(h, "maxtps=%x\n", math.Float64bits(p.model.MaxTPS(p.g, probeMiniBatch)))
	return h.Sum64()
}

func (p *Planner) probeConfig(b, d int, interNode, arX bool) costmodel.StageConfig {
	return costmodel.StageConfig{
		Ops:                p.g.AllNodes(),
		MicroBatch:         b,
		DataPar:            d,
		InterNode:          interNode,
		InterNodeAllreduce: arX,
	}
}

// --- export ---

// exportSnapshot flattens every per-micro-batch search's newly computed
// memo entries into a snapshot (imported entries are skipped — the
// accumulated snapshot already holds them, and memosnap.Merge unions this
// export into it). Entries are emitted sorted by (key, interval) and
// derivation trees are deduplicated in that traversal order, so export is
// a deterministic function of the memo contents; an imported-but-unprobed
// search exports nothing, which makes Merge accumulation drift-free
// (pinned by test).
func (p *Planner) exportSnapshot(key memosnap.Key, results []perB) *memosnap.Snapshot {
	snap := &memosnap.Snapshot{Key: key}
	if p.places != nil {
		snap.Placements = p.places.Signatures()
	}
	for i := range results {
		if s := results[i].search; s != nil {
			snap.Searches = append(snap.Searches, p.exportSearch(s))
		}
	}
	return snap
}

func snapConfig(c schedule.Config) memosnap.Config {
	return memosnap.Config{MicroBatch: int32(c.MicroBatch), K: int32(c.K)}
}

func snapConfigs(cs []schedule.Config) []memosnap.Config {
	out := make([]memosnap.Config, len(cs))
	for i, c := range cs {
		out[i] = snapConfig(c)
	}
	return out
}

func (p *Planner) exportSearch(s *search) memosnap.SearchMemo {
	sm := memosnap.SearchMemo{
		MiniBatch: int32(s.miniBatch),
		RootB:     int32(s.rootB),
		Devices:   int32(p.topo.Len()),
		NumZones:  int32(len(p.zones.sets)),
		Configs:   snapConfigs(s.cfgs),
		Boundary:  snapConfigs(s.boundary),
	}
	type kv struct {
		k dpKey
		e memoEntry
	}
	// Only entries this search computed are exported; imported entries are
	// already in the accumulated snapshot, which memosnap.Merge unions the
	// export into. Export cost therefore scales with the new work, not
	// with everything ever learned about the graph.
	n := 0
	s.memo.each(func(_ dpKey, e memoEntry) {
		if !e.imported {
			n++
		}
	})
	pairs := make([]kv, 0, n)
	s.memo.each(func(k dpKey, e memoEntry) {
		if !e.imported {
			pairs = append(pairs, kv{k, e})
		}
	})
	// A key exports every span variant it accumulated (primary plus
	// history), so the sort must be total over variants: by key, then by
	// the interval. Which variant happened to sit in the primary slot is a
	// lookup-order artifact and deliberately does not survive export.
	slices.SortFunc(pairs, func(a, b kv) int {
		switch {
		case a.k != b.k:
			if a.k < b.k {
				return -1
			}
			return 1
		case a.e.sp.lo != b.e.sp.lo:
			if a.e.sp.lo < b.e.sp.lo {
				return -1
			}
			return 1
		case a.e.sp.hi < b.e.sp.hi:
			return -1
		case a.e.sp.hi > b.e.sp.hi:
			return 1
		}
		return 0
	})

	// Derivation trees are deduplicated by tagging each arena node with
	// the id it was assigned this export (expGen distinguishes exports, so
	// re-exporting after another export never reuses stale ids). The tag
	// replaces a pointer-keyed map, which dominated export profiles.
	p.exportGen++
	gen := p.exportGen
	var emit func(r *dpResult) int32
	emit = func(r *dpResult) int32 {
		if r.expGen == gen {
			return r.expID
		}
		var n memosnap.Node
		if r.leaf != nil {
			n = memosnap.Node{
				Leaf: true, Zone: int32(r.leaf.zone), Devs: int32(r.leaf.devs), NStages: 1,
				Cfg: snapConfig(r.leaf.cfg), InFlight: int32(r.leaf.inFlight),
				Mem: r.leaf.memory, TPS: r.leaf.tps,
			}
		} else {
			l, rr := emit(r.left), emit(r.right)
			n = memosnap.Node{
				Left: l, Right: rr, NStages: int32(r.nStages),
				Cfg: snapConfig(r.srcCfg), InFlight: int32(r.inFlight),
				Mem: r.maxMem, TPS: r.maxTPS,
			}
		}
		id := int32(len(sm.Nodes))
		sm.Nodes = append(sm.Nodes, n)
		r.expGen, r.expID = gen, id
		return id
	}
	sm.Entries = make([]memosnap.Entry, 0, len(pairs))
	for _, pr := range pairs {
		val := memosnap.Infeasible
		if pr.e.res != memoInfeasible {
			val = emit(pr.e.res)
		}
		sm.Entries = append(sm.Entries, memosnap.Entry{Key: uint64(pr.k), Lo: pr.e.sp.lo, Hi: pr.e.sp.hi, Val: val})
	}
	return sm
}

// --- import ---

// importMemo seeds the search's memo from one SearchMemo, returning false
// — leaving the memo cold, never erroring — unless the memo passes every
// compatibility check: same mini-batch and root candidate, the identical
// frozen config and boundary lists (key packing indexes into them), the
// same zone-table size, and every node and key field in range. The checks
// make a stale or foreign snapshot a no-op rather than a wrong plan; the
// warm≡cold conformance invariant enforces that end to end.
//
// placements is the exporting snapshot's placement-class signature list.
// Placement class ids are not stable across device counts (a larger summit
// interns classes the smaller one lacks, shifting later ids), so when the
// exporter's list differs from this search's table the imported keys'
// placement fields are translated id→signature→id; entries whose signature
// this topology does not have are dropped — they describe blocks that do
// not exist here and could otherwise alias local classes. A key that is
// invalid after translation still rejects the whole memo.
func (s *search) importMemo(sm *memosnap.SearchMemo, placements []string) bool {
	p := s.p
	if int(sm.MiniBatch) != s.miniBatch || int(sm.RootB) != s.rootB {
		return false
	}
	if int(sm.NumZones) != len(p.zones.sets) {
		return false
	}
	if !configsEqual(sm.Configs, s.cfgs) || !configsEqual(sm.Boundary, s.boundary) {
		return false
	}
	// Placement regime must match: an oblivious search cannot interpret
	// placement-carrying keys and vice versa.
	if (p.places == nil) != (len(placements) == 0) {
		return false
	}
	// placeMap translates the exporter's class ids to this table's; -1
	// marks a class this topology does not have. nil means identity.
	var placeMap []int
	if p.places != nil {
		local := p.places.Signatures()
		identity := len(placements) == len(local)
		if identity {
			for i := range placements {
				if placements[i] != local[i] {
					identity = false
					break
				}
			}
		}
		if !identity {
			bySig := make(map[string]int, len(local))
			for i, sig := range local {
				bySig[sig] = i
			}
			placeMap = make([]int, len(placements))
			for i, sig := range placements {
				if li, ok := bySig[sig]; ok {
					placeMap[i] = li
				} else {
					placeMap[i] = -1
				}
			}
		}
	}

	nLeaves := 0
	for i := range sm.Nodes {
		if sm.Nodes[i].Leaf {
			nLeaves++
		}
	}
	arena := make([]dpResult, len(sm.Nodes))
	stages := make([]dpStage, nLeaves)
	leaf := 0
	for i := range sm.Nodes {
		n := &sm.Nodes[i]
		if n.Leaf {
			zone := int(n.Zone)
			if zone < 0 || zone >= len(p.zones.sets) || n.Devs < 1 || n.InFlight < 0 || n.NStages != 1 {
				return false
			}
			if !validConfig(n.Cfg, s.cfgs) {
				return false
			}
			st := &stages[leaf]
			leaf++
			*st = dpStage{
				ops:  p.zones.sets[zone],
				zone: zone,
				cfg:  schedule.Config{MicroBatch: int(n.Cfg.MicroBatch), K: int(n.Cfg.K)},
				devs: int(n.Devs), inFlight: int(n.InFlight), memory: n.Mem, tps: n.TPS,
			}
			arena[i] = dpResult{
				inFlight: st.inFlight, srcCfg: st.cfg,
				maxMem: st.memory, maxTPS: st.tps, nStages: 1, leaf: st,
			}
			continue
		}
		// Decode already proved Left/Right < i, so children are built.
		l, r := &arena[n.Left], &arena[n.Right]
		if n.NStages != int32(l.nStages+r.nStages) || n.InFlight < 0 {
			return false
		}
		if n.Mem != math.Max(l.maxMem, r.maxMem) || n.TPS != math.Max(l.maxTPS, r.maxTPS) {
			return false
		}
		if !validConfig(n.Cfg, s.cfgs) {
			return false
		}
		arena[i] = dpResult{
			inFlight: int(n.InFlight),
			srcCfg:   schedule.Config{MicroBatch: int(n.Cfg.MicroBatch), K: int(n.Cfg.K)},
			maxMem:   n.Mem, maxTPS: n.TPS, nStages: int(n.NStages),
			left: l, right: r,
		}
	}

	// Validate every packed key's fields against this search's tables
	// before accepting anything: a single bad key rejects the whole memo,
	// keeping "imported" an all-or-nothing property per search (dropped
	// untranslatable-placement entries excepted — those are valid keys of
	// a different topology, not corruption).
	entries := sm.Entries
	if placeMap != nil {
		// Translate placement fields into this table's ids on a copy (the
		// snapshot may be merged and re-encoded later), dropping entries
		// whose class does not exist here, then restore the (Key, Lo, Hi)
		// sort order the fallback's binary search requires.
		entries = make([]memosnap.Entry, 0, len(sm.Entries))
		for _, e := range sm.Entries {
			pid := int(e.Key >> 21 & 0xFF)
			if pid >= len(placeMap) {
				return false
			}
			if placeMap[pid] < 0 {
				continue
			}
			e.Key = e.Key&^(uint64(0xFF)<<21) | uint64(placeMap[pid])<<21
			entries = append(entries, e)
		}
		slices.SortFunc(entries, func(a, b memosnap.Entry) int {
			switch {
			case a.Key != b.Key:
				if a.Key < b.Key {
					return -1
				}
				return 1
			case a.Lo != b.Lo:
				if a.Lo < b.Lo {
					return -1
				}
				return 1
			case a.Hi < b.Hi:
				return -1
			case a.Hi > b.Hi:
				return 1
			}
			return 0
		})
	}
	for i := range entries {
		if !s.validKey(dpKey(entries[i].Key)) || badSpan(entries[i].Lo, entries[i].Hi) {
			return false
		}
	}
	// Accepted. Entries are not seeded eagerly — an accumulated snapshot
	// holds everything ever learned about the graph, and a replan touches
	// a fraction of it. The memo table instead resolves misses against the
	// snapshot's sorted entry list and materializes only the variants this
	// search's probes actually cover.
	s.memo.fallback = func(k dpKey, tmax float64) (memoEntry, bool) {
		lo, hi := 0, len(entries)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if entries[mid].Key < uint64(k) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for ; lo < len(entries) && entries[lo].Key == uint64(k); lo++ {
			e := &entries[lo]
			if e.Lo <= tmax && tmax < e.Hi {
				r := memoInfeasible
				if e.Val != memosnap.Infeasible {
					r = &arena[e.Val]
				}
				return memoEntry{res: r, sp: span{lo: e.Lo, hi: e.Hi}, imported: true}, true
			}
		}
		return memoEntry{}, false
	}
	return true
}

func configsEqual(got []memosnap.Config, want []schedule.Config) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if int(got[i].MicroBatch) != want[i].MicroBatch || int(got[i].K) != want[i].K {
			return false
		}
	}
	return true
}

func validConfig(c memosnap.Config, frozen []schedule.Config) bool {
	want := schedule.Config{MicroBatch: int(c.MicroBatch), K: int(c.K)}
	for _, fc := range frozen {
		if fc == want {
			return true
		}
	}
	return false
}

func badSpan(lo, hi float64) bool {
	return math.IsNaN(lo) || math.IsNaN(hi)
}

// validKey range-checks every field of a packed DP key against this
// search's zone and config tables — the import-side counterpart of
// validateKeyRanges. Keys whose degree exceeds this cluster are valid:
// the search never queries them, and keeping them lets a device sweep
// accumulate one snapshot.
func (s *search) validKey(k dpKey) bool {
	if k == 0 { // 0 is the empty-slot sentinel; a real key has devices ≥ 1
		return false
	}
	zone := int(uint64(k) & 0x3FFF)
	d := int(uint64(k) >> 14 & 0x7F)
	place := int(uint64(k) >> 21 & 0xFF)
	srcIdx := int(uint64(k) >> 29 & 0x3F)
	if zone >= len(s.p.zones.sets) || d < 1 || srcIdx >= len(s.cfgs) {
		return false
	}
	if s.p.places == nil {
		if place != 0 {
			return false
		}
	} else if place >= s.p.places.NumClasses() {
		return false
	}
	if uint64(k)>>35&1 == 0 {
		// No successor: the successor fields must be zero.
		return uint64(k)>>36 == 0
	}
	succIdx := int(uint64(k) >> 36 & 0x3F)
	return succIdx < len(s.cfgs)
}
