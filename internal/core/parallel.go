package core

import "sync"

// workerPool is a bounded pool with inline fallback: Do never blocks
// waiting for a slot, it runs the task on the submitting goroutine instead.
// Tasks may therefore submit sub-tasks to the same pool (the per-probe root
// fan-out runs inside the per-micro-batch searches) without deadlock — the
// slot count bounds concurrency, not admission.
type workerPool struct {
	slots chan struct{}
}

func newWorkerPool(n int) *workerPool {
	return &workerPool{slots: make(chan struct{}, n)}
}

// Do runs every task and returns when all have finished.
func (p *workerPool) Do(tasks []func()) {
	var wg sync.WaitGroup
	for _, t := range tasks {
		select {
		case p.slots <- struct{}{}:
			wg.Add(1)
			go func(t func()) {
				defer wg.Done()
				defer func() { <-p.slots }()
				t()
			}(t)
		default:
			t()
		}
	}
	wg.Wait()
}

// memoInfeasible is the stored representation of a memoized nil dpResult
// (infeasible subproblem), so "absent" and "known infeasible" stay distinct.
var memoInfeasible = &dpResult{}

const memoShardCount = 64

// memoTable is the DP memo, sharded by key hash so concurrent walkers of
// one probe contend on 1/64th of the table instead of a single lock. A
// subproblem's value is a pure function of its key (and the probe's frozen
// inputs), so two walkers racing to insert the same key write identical
// values — whichever lands is correct.
type memoTable struct {
	shards [memoShardCount]memoShard
}

type memoShard struct {
	mu sync.Mutex
	m  map[dpKey]*dpResult
}

func newMemoTable() *memoTable {
	t := &memoTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[dpKey]*dpResult)
	}
	return t
}

func (t *memoTable) shard(k dpKey) *memoShard {
	// Fibonacci hashing spreads the packed-bitfield keys, whose low bits
	// (zone id) cluster, across the shards.
	return &t.shards[(uint64(k)*0x9E3779B97F4A7C15)>>58]
}

func (t *memoTable) get(k dpKey) (*dpResult, bool) {
	sh := t.shard(k)
	sh.mu.Lock()
	r, ok := sh.m[k]
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	if r == memoInfeasible {
		return nil, true
	}
	return r, true
}

func (t *memoTable) put(k dpKey, r *dpResult) {
	if r == nil {
		r = memoInfeasible
	}
	sh := t.shard(k)
	sh.mu.Lock()
	sh.m[k] = r
	sh.mu.Unlock()
}

const evalShardCount = 16

// evalTable shards the per-(zone, micro-batch, devices) stage-cost cache.
// Unlike the memo it lives across all probes of one micro-batch size; cost
// evaluation happens outside the shard lock, so a race costs one duplicate
// evaluation of a deterministic value, never a wrong entry.
type evalTable struct {
	shards [evalShardCount]evalShard
}

type evalShard struct {
	mu sync.Mutex
	m  map[stageEvalKey]stageEval
}

func newEvalTable() *evalTable {
	t := &evalTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[stageEvalKey]stageEval)
	}
	return t
}

func (t *evalTable) shard(k stageEvalKey) *evalShard {
	h := uint64(k.zone)*0x9E3779B97F4A7C15 ^ uint64(k.b)<<32 ^ uint64(k.d)
	return &t.shards[(h*0x9E3779B97F4A7C15)>>60]
}

func (t *evalTable) get(k stageEvalKey) (stageEval, bool) {
	sh := t.shard(k)
	sh.mu.Lock()
	ev, ok := sh.m[k]
	sh.mu.Unlock()
	return ev, ok
}

func (t *evalTable) put(k stageEvalKey, ev stageEval) {
	sh := t.shard(k)
	sh.mu.Lock()
	sh.m[k] = ev
	sh.mu.Unlock()
}
