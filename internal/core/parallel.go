package core

import (
	"sync"
	"sync/atomic"
)

// workerPool is a bounded pool with inline fallback: Do never blocks
// waiting for a slot, it runs the task on the submitting goroutine instead.
// Tasks may therefore submit sub-tasks to the same pool (the per-probe root
// fan-out runs inside the per-micro-batch searches) without deadlock — the
// slot count bounds concurrency, not admission.
type workerPool struct {
	slots chan struct{}
}

func newWorkerPool(n int) *workerPool {
	return &workerPool{slots: make(chan struct{}, n)}
}

// Do runs every task and returns when all have finished.
func (p *workerPool) Do(tasks []func()) {
	var wg sync.WaitGroup
	for _, t := range tasks {
		select {
		case p.slots <- struct{}{}:
			wg.Add(1)
			go func(t func()) {
				defer wg.Done()
				defer func() { <-p.slots }()
				t()
			}(t)
		default:
			t()
		}
	}
	wg.Wait()
}

// memoInfeasible is the stored representation of a memoized nil dpResult
// (infeasible subproblem), so "absent" and "known infeasible" stay distinct.
var memoInfeasible = &dpResult{}

const memoShardCount = 64

// memoEntry is one memoized DP value together with the half-open interval
// of binary-search targets on which it is valid (see the span type). An
// entry is consulted by every probe of one micro-batch search; a probe
// whose target falls outside the span recomputes the state and overwrites
// the entry with the new value and its interval. warm marks entries seeded
// from an imported snapshot; the first covered hit clears it and counts
// toward the table's warmHits, so reuse is counted per entry, not per get.
// imported persists where warm does not: the exporter skips imported
// entries (the accumulated snapshot already holds them — memosnap.Merge
// unions the new export in), so export cost scales with the work this
// search actually did.
type memoEntry struct {
	res      *dpResult
	sp       span
	warm     bool
	imported bool
}

// memoTable is the DP memo, sharded by key hash so concurrent walkers of
// one probe contend on 1/64th of the table instead of a single lock. A
// subproblem's value is a pure function of its key and validity interval,
// so two walkers racing to insert the same key at the same probe target
// write identical values — whichever lands is correct. The table lives
// across all probes of one micro-batch search; probes are sequential, so
// cross-probe overwrites never race. A search with no worker pool has
// exactly one walker, so it constructs the table unlocked and skips the
// mutexes entirely.
//
// Each key keeps every span variant it has ever held, not just the last
// write: a recompute at a new target moves the displaced (key, span,
// value) into the shard's history instead of discarding it. A lookup
// whose target misses the primary span consults the history before the
// caller recomputes — that path was a full DP recomputation, so a map
// probe there is nearly free, while the covered fast path is untouched.
// The history is what makes a warm-started search (importMemo) cheap:
// the exported snapshot carries every variant, so a replayed probe
// sequence finds a covering interval for essentially every state the
// original search visited instead of only the final probe's survivors.
//
// Each shard is a flat open-addressed table (Fibonacci hash, linear
// probing) rather than a Go map: the memo lookup is the single hottest
// operation of the whole search — one get per DP state visit, hundreds of
// millions for the largest models — and the flat probe sequence halves its
// cost in profiles. dpKey 0 doubles as the empty-slot sentinel, which is
// sound because every real key has its device field ≥ 1 (bits 14–20
// nonzero; validateKeyRanges caps devices at 127 so the field cannot wrap
// to zero).
type memoTable struct {
	locked bool
	// warmHits counts imported entries whose interval covered a probe
	// target at least once (Result.MemoEntriesReused).
	warmHits atomic.Int64
	// fallback, when set by importMemo, resolves a (key, target) miss from
	// the imported snapshot: it returns a covering entry to materialize
	// into the table, or ok=false. It must be a pure read — get calls it
	// under the key's shard lock — and each materialized entry counts as a
	// warm reuse exactly once, because a variant already resident in the
	// table is found by the primary/history paths before the fallback runs.
	fallback func(k dpKey, tmax float64) (memoEntry, bool)
	shards   [memoShardCount]memoShard
}

type memoShard struct {
	mu   sync.Mutex
	keys []dpKey
	vals []memoEntry
	mask uint64
	n    int
	// hist holds the displaced span variants of keys that were recomputed
	// at a target outside their stored interval. A key has history only if
	// it also has a primary entry, so lookups that miss the table entirely
	// never touch the map. Allocated on first displacement.
	hist map[dpKey][]memoEntry
}

// spanSubsumes reports whether outer covers every target inner does, which
// makes inner redundant as a history variant.
func spanSubsumes(outer, inner span) bool {
	return outer.lo <= inner.lo && inner.hi <= outer.hi
}

// histAdd retains a displaced variant unless an existing variant (or the
// displacing entry itself, checked by the caller) already subsumes it.
func (sh *memoShard) histAdd(k dpKey, e memoEntry) {
	for _, v := range sh.hist[k] {
		if spanSubsumes(v.sp, e.sp) {
			return
		}
	}
	if sh.hist == nil {
		sh.hist = make(map[dpKey][]memoEntry)
	}
	sh.hist[k] = append(sh.hist[k], e)
}

// memoShardInitSize is each shard's starting capacity (slots). Must be a
// power of two.
const memoShardInitSize = 256

func newMemoTable(locked bool) *memoTable {
	t := &memoTable{locked: locked}
	for i := range t.shards {
		t.shards[i].keys = make([]dpKey, memoShardInitSize)
		t.shards[i].vals = make([]memoEntry, memoShardInitSize)
		t.shards[i].mask = memoShardInitSize - 1
	}
	return t
}

func (t *memoTable) shard(k dpKey) *memoShard {
	// Fibonacci hashing spreads the packed-bitfield keys, whose low bits
	// (zone id) cluster, across the shards.
	return &t.shards[(uint64(k)*0x9E3779B97F4A7C15)>>58]
}

// slotHash spreads keys within a shard; the low bits index the table.
func slotHash(k dpKey) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return h ^ h>>29
}

// lookup returns the entry and its slot index (so get can clear the warm
// flag in place under the same lock acquisition).
func (sh *memoShard) lookup(k dpKey) (memoEntry, uint64, bool) {
	i := slotHash(k) & sh.mask
	for {
		switch sh.keys[i] {
		case k:
			return sh.vals[i], i, true
		case 0:
			return memoEntry{}, 0, false
		}
		i = (i + 1) & sh.mask
	}
}

func (sh *memoShard) store(k dpKey, e memoEntry) {
	if 2*(sh.n+1) >= len(sh.keys) { // grow at 50% load: shorter probe chains
		sh.grow()
	}
	i := slotHash(k) & sh.mask
	for {
		switch sh.keys[i] {
		case k:
			old := sh.vals[i]
			if spanSubsumes(old.sp, e.sp) {
				// The incumbent already answers every target the new
				// variant would; keep it (possible only when seeding —
				// a recompute's target is by construction uncovered).
				return
			}
			if !spanSubsumes(e.sp, old.sp) {
				sh.histAdd(k, old)
			}
			sh.vals[i] = e
			return
		case 0:
			sh.keys[i] = k
			sh.vals[i] = e
			sh.n++
			return
		}
		i = (i + 1) & sh.mask
	}
}

func (sh *memoShard) grow() {
	oldK, oldV := sh.keys, sh.vals
	size := 2 * len(oldK)
	sh.keys = make([]dpKey, size)
	sh.vals = make([]memoEntry, size)
	sh.mask = uint64(size - 1)
	for i, k := range oldK {
		if k == 0 {
			continue
		}
		j := slotHash(k) & sh.mask
		for sh.keys[j] != 0 {
			j = (j + 1) & sh.mask
		}
		sh.keys[j] = k
		sh.vals[j] = oldV[i]
	}
}

// get returns the memoized value for k if its validity interval covers the
// probe target tmax, plus the interval itself (callers intersect it into
// their own). When the primary entry's interval misses, the key's history
// is consulted before reporting a miss; a covering variant is swapped into
// the primary slot, so repeated queries at the same probe target stay on
// the fast path.
func (t *memoTable) get(k dpKey, tmax float64) (*dpResult, span, bool) {
	sh := t.shard(k)
	if t.locked {
		sh.mu.Lock()
	}
	e, i, ok := sh.lookup(k)
	if ok && !e.sp.covers(tmax) {
		for j, v := range sh.hist[k] {
			if v.sp.covers(tmax) {
				sh.hist[k][j] = e
				sh.vals[i] = v
				e = v
				break
			}
		}
	}
	if ok && e.warm && e.sp.covers(tmax) {
		sh.vals[i].warm = false
		t.warmHits.Add(1)
	}
	if t.fallback != nil && (!ok || !e.sp.covers(tmax)) {
		// Lazy warm start: materialize the covering variant, if the
		// imported snapshot has one, instead of recomputing. Still under
		// the shard lock, so concurrent walkers materialize each variant
		// (and count its reuse) exactly once.
		if v, found := t.fallback(k, tmax); found {
			sh.store(k, v)
			t.warmHits.Add(1)
			e, ok = v, true
		}
	}
	if t.locked {
		sh.mu.Unlock()
	}
	if !ok || !e.sp.covers(tmax) {
		return nil, span{}, false
	}
	if e.res == memoInfeasible {
		return nil, e.sp, true
	}
	return e.res, e.sp, true
}

func (t *memoTable) put(k dpKey, r *dpResult, sp span) {
	if r == nil {
		r = memoInfeasible
	}
	sh := t.shard(k)
	if t.locked {
		sh.mu.Lock()
	}
	sh.store(k, memoEntry{res: r, sp: sp})
	if t.locked {
		sh.mu.Unlock()
	}
}

// each visits every memo entry — primary and history variants alike (any
// goroutine-safety is the caller's: the exporter runs after the search's
// fan-out has joined).
func (t *memoTable) each(f func(k dpKey, e memoEntry)) {
	for i := range t.shards {
		sh := &t.shards[i]
		for j, k := range sh.keys {
			if k != 0 {
				f(k, sh.vals[j])
			}
		}
		for k, vs := range sh.hist {
			for _, v := range vs {
				f(k, v)
			}
		}
	}
}

const evalShardCount = 16

// evalTable shards the per-(zone, micro-batch, devices) stage-cost cache.
// Unlike the memo it lives across all probes of one micro-batch size; cost
// evaluation happens outside the shard lock, so a race costs one duplicate
// evaluation of a deterministic value, never a wrong entry. Like the memo,
// a sequential search (no pool) constructs it unlocked.
type evalTable struct {
	locked bool
	shards [evalShardCount]evalShard
}

type evalShard struct {
	mu sync.Mutex
	m  map[stageEvalKey]stageEval
}

func newEvalTable(locked bool) *evalTable {
	t := &evalTable{locked: locked}
	for i := range t.shards {
		t.shards[i].m = make(map[stageEvalKey]stageEval)
	}
	return t
}

func (t *evalTable) shard(k stageEvalKey) *evalShard {
	h := uint64(k.zone)*0x9E3779B97F4A7C15 ^ uint64(k.b)<<32 ^ uint64(k.d)
	return &t.shards[(h*0x9E3779B97F4A7C15)>>60]
}

func (t *evalTable) get(k stageEvalKey) (stageEval, bool) {
	sh := t.shard(k)
	if t.locked {
		sh.mu.Lock()
	}
	ev, ok := sh.m[k]
	if t.locked {
		sh.mu.Unlock()
	}
	return ev, ok
}

func (t *evalTable) put(k stageEvalKey, ev stageEval) {
	sh := t.shard(k)
	if t.locked {
		sh.mu.Lock()
	}
	sh.m[k] = ev
	if t.locked {
		sh.mu.Unlock()
	}
}
