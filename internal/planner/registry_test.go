package planner_test

import (
	"strings"
	"sync"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/models"
	"graphpipe/internal/planner"

	_ "graphpipe/internal/planner/all"
)

// TestAllPlannersResolvable checks every built-in planner registers under
// its documented name and reports that name back.
func TestAllPlannersResolvable(t *testing.T) {
	for _, name := range []string{"graphpipe", "pipedream", "piper"} {
		p, err := planner.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, p.Name())
		}
	}
}

func TestUnknownPlannerError(t *testing.T) {
	_, err := planner.Get("no-such-planner")
	if err == nil {
		t.Fatal("Get of unknown planner succeeded")
	}
	// The error must be self-diagnosing: name the culprit and the choices.
	for _, want := range []string{"no-such-planner", "graphpipe", "pipedream", "piper"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestNamesSorted(t *testing.T) {
	names := planner.Names()
	if len(names) < 3 {
		t.Fatalf("Names() = %v, want at least the three built-ins", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

// TestRegisterDuplicatePanics pins the fail-loudly contract.
func TestRegisterDuplicatePanics(t *testing.T) {
	p, err := planner.Get("graphpipe")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	planner.Register(p)
}

// TestParallelPlanCalls exercises every registered planner from concurrent
// goroutines on distinct graphs and topologies — the access pattern of the
// experiment grid — so `go test -race` proves Plan is reentrant.
func TestParallelPlanCalls(t *testing.T) {
	cfg := models.DefaultMMTConfig()
	cfg.Branches = 2
	cfg.LayersPerBranch = 3
	var wg sync.WaitGroup
	for _, name := range planner.Names() {
		for _, devices := range []int{2, 4} {
			for rep := 0; rep < 2; rep++ {
				name, devices := name, devices
				wg.Add(1)
				go func() {
					defer wg.Done()
					p, err := planner.Get(name)
					if err != nil {
						t.Error(err)
						return
					}
					g := models.MMT(cfg)
					topo := cluster.NewSummitTopology(devices)
					st, stats, err := p.Plan(g, topo, 16, planner.Options{})
					if err != nil {
						t.Errorf("%s on %d devices: %v", name, devices, err)
						return
					}
					if err := st.Validate(g, topo); err != nil {
						t.Errorf("%s strategy invalid: %v", name, err)
					}
					if stats.BottleneckTPS <= 0 {
						t.Errorf("%s reported BottleneckTPS %g", name, stats.BottleneckTPS)
					}
				}()
			}
		}
	}
	wg.Wait()
}

// TestParallelPlannerDeterministic asserts the parallel search is a pure
// speedup: the same strategy (TPS, stage structure, schedule) comes back
// whether the worker pool has one worker or many.
func TestParallelPlannerDeterministic(t *testing.T) {
	p, err := planner.Get("graphpipe")
	if err != nil {
		t.Fatal(err)
	}
	cfg := models.DefaultMMTConfig() // four branches: plenty of splits to race on
	for _, devices := range []int{4, 8} {
		g := models.MMT(cfg)
		topo := cluster.NewSummitTopology(devices)
		miniBatch := 16 * devices

		seqSt, seqStats, err := p.Plan(g, topo, miniBatch, planner.Options{Workers: 1})
		if err != nil {
			t.Fatalf("sequential plan, %d devices: %v", devices, err)
		}
		parSt, parStats, err := p.Plan(g, topo, miniBatch, planner.Options{Workers: 8})
		if err != nil {
			t.Fatalf("parallel plan, %d devices: %v", devices, err)
		}
		if seqStats.BottleneckTPS != parStats.BottleneckTPS {
			t.Errorf("%d devices: bottleneck TPS diverged: sequential %g, parallel %g",
				devices, seqStats.BottleneckTPS, parStats.BottleneckTPS)
		}
		if seq, par := seqSt.String(), parSt.String(); seq != par {
			t.Errorf("%d devices: strategies diverged:\nsequential:\n%s\nparallel:\n%s",
				devices, seq, par)
		}
	}
}
