// Package all registers every built-in planner with the planner registry.
// Commands and test binaries that resolve planners by name import it for
// side effects:
//
//	import _ "graphpipe/internal/planner/all"
package all

import (
	_ "graphpipe/internal/baselines/pipedream"
	_ "graphpipe/internal/baselines/piper"
	_ "graphpipe/internal/core"
)
