// Package planner defines the uniform entry point shared by every pipeline
// planner in this repository — GraphPipe's core planner (§5–§6) and the two
// SPP baselines, PipeDream and Piper (§7.1) — plus a name-keyed registry
// that commands and the experiment harness resolve planners through.
//
// A planner consumes a computation graph, a cluster topology, and a
// mini-batch size, and produces a validated strategy.Strategy (conditions
// C1–C4) ready for the simulator. Planner-specific knobs are folded into
// one Options struct; each planner reads the fields it understands and
// ignores the rest, so a single options value can drive a whole sweep. New
// planners register themselves from an init function and immediately become
// available to cmd/graphpipe, cmd/experiments, and every experiment driver
// — adding a planner is a registry entry, not a cross-cutting edit.
package planner

import (
	"time"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/memosnap"
	"graphpipe/internal/strategy"
)

// Options carries the cross-planner and planner-specific tuning knobs.
// The zero value selects every planner's defaults.
type Options struct {
	// ForcedMicroBatch restricts the search to exactly one micro-batch
	// size (Figure 7 right, Figure 9's "Parallel" arm). All planners.
	ForcedMicroBatch int
	// MaxMicroBatch caps the candidate micro-batch sizes (default 4096).
	// All planners.
	MaxMicroBatch int
	// Workers bounds the planning worker pool: 0 means one worker per
	// available CPU, 1 forces the sequential path. Read by planners with
	// parallel search phases (currently graphpipe).
	Workers int
	// PerStageMicroBatch enables GraphPipe's fine-grained per-stage
	// micro-batch search (§6, Figure 5). graphpipe only.
	PerStageMicroBatch bool
	// DisableSinkAnchoredSplits removes the merge-anchored partitions
	// (§7.5) for the ablation benchmarks. graphpipe only.
	DisableSinkAnchoredSplits bool
	// FreshProbeMemo restores the reference search path: a fresh DP memo
	// per binary-search probe instead of the probe-spanning memo. The
	// chosen strategy is identical either way — the conformance harness
	// exists to keep proving that. graphpipe only.
	FreshProbeMemo bool
	// PlacementOblivious restores the pre-placement search: the DP ignores
	// which contiguous device block a stage lands on and costs every stage
	// with the legacy uniform-cluster rules. On flat homogeneous
	// topologies the placement-aware search provably chooses the same
	// strategy (conformance invariant g); on heterogeneous or hierarchical
	// clusters the oblivious search miscosts stages and exists only as the
	// conformance reference arm. graphpipe only.
	PlacementOblivious bool
	// StateBudget bounds Piper's DP states plus enumeration steps
	// (default 5e7), reproducing Table 1's ✗ entries. piper only.
	StateBudget int
	// Timeout bounds Piper's planning wall-clock (default 5 minutes).
	// piper only.
	Timeout time.Duration
	// CostModel overrides the default analytical cost model. It must be
	// built on the same topology that is passed to Plan; nil selects
	// costmodel.NewDefault(topo).
	CostModel costmodel.Model
	// WarmMemo, when set, lets the planner warm-start from a prior DP
	// memo snapshot: the planner computes its compatibility key and asks
	// the provider for a matching snapshot. An absent or incompatible
	// snapshot degrades to a cold plan — warm-started plans are
	// byte-identical to cold ones (the warm≡cold conformance invariant).
	// Read by planners with memoized searches (currently graphpipe).
	WarmMemo func(memosnap.Key) *memosnap.Snapshot
	// MemoSink, when set, receives the completed search's exported memo
	// snapshot after a successful plan, for reuse by later requests.
	// graphpipe only.
	MemoSink func(*memosnap.Snapshot)
	// Span, when set, records one timed span per internal planning phase
	// (per-size micro-batch searches, per-probe DP solves, memo
	// import/export): call it at phase start with a name and alternating
	// key/value attributes, and invoke the returned func at phase end.
	// The service layer wires this to its request tracer; planners must
	// tolerate nil. Spans may start from concurrent search workers.
	Span func(name string, kv ...string) func()
}

// Model resolves the cost model for a topology: the override if set, the
// default otherwise.
func (o Options) Model(topo *cluster.Topology) costmodel.Model {
	if o.CostModel != nil {
		return o.CostModel
	}
	return costmodel.NewDefault(topo)
}

// Stats reports search statistics common to the planners. Fields a planner
// does not track are zero.
type Stats struct {
	// BottleneckTPS is the achieved max-stage time-per-sample
	// (Equation 1 objective).
	BottleneckTPS float64
	// DPStates counts dynamic-programming subproblems (or, for Piper,
	// states plus enumeration steps). Under a parallel search the count
	// can vary slightly between runs: concurrent workers may evaluate a
	// memoized subproblem twice before the first result lands.
	DPStates int
	// BinaryIters counts binary-search iterations (graphpipe only).
	BinaryIters int
	// MemoWarmStarted reports that the search imported a compatible
	// prior memo snapshot (Options.WarmMemo).
	MemoWarmStarted bool
	// MemoEntriesReused counts imported memo entries the search reused,
	// each at most once.
	MemoEntriesReused int
}

// Planner is the uniform planning entry point. Implementations must be
// safe for concurrent Plan calls: the experiment harness fans a
// (model × planner × device-count) grid out across goroutines.
type Planner interface {
	// Name returns the registry key (e.g. "graphpipe").
	Name() string
	// Plan produces a validated strategy for the graph on the cluster at
	// the given mini-batch size. The returned strategy satisfies
	// strategy.Validate (C1–C4) against g and topo.
	Plan(g *graph.Graph, topo *cluster.Topology, miniBatch int, opts Options) (*strategy.Strategy, Stats, error)
}
