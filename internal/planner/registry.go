package planner

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Planner)
)

// Register adds a planner under its Name. Planner packages call it from an
// init function; importing graphpipe/internal/planner/all registers every
// built-in planner. Register panics on an empty name or a duplicate — both
// are programmer errors that must fail loudly at process start.
func Register(p Planner) {
	name := p.Name()
	if name == "" {
		panic("planner: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("planner: Register called twice for %q", name))
	}
	registry[name] = p
}

// Get resolves a planner by name. The error lists the registered planners
// so command-line typos are self-diagnosing.
func Get(name string) (Planner, error) {
	regMu.RLock()
	p, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("planner: unknown planner %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return p, nil
}

// Names returns the registered planner names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
