package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"graphpipe/internal/obs"
	"graphpipe/internal/service"
)

// syncBuffer is a goroutine-safe io.Writer for per-process trace logs.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.b.Bytes()...)
}

// TestFleetTracedRequestYieldsConnectedSpanTree is the observability
// acceptance criterion end to end, in-process: one traced cold plan
// through a three-shard fleet leaves — across the union of all four
// processes' span logs — exactly one connected tree, rooted at the
// router's request span, with the owning shard's serving spans, its
// peer-fill consults, the other shards' artifact lookups, and the
// planner's per-probe DP spans all reachable from that root, and
// timestamps that never run backwards along any parent edge. Then
// /metrics must scrape clean on every process.
func TestFleetTracedRequestYieldsConnectedSpanTree(t *testing.T) {
	const n = 3
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		servers[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + servers[i].Listener.Addr().String()
	}
	ring, err := NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	logs := make([]*syncBuffer, n+1) // shards then router
	for i := range logs {
		logs[i] = &syncBuffer{}
	}
	for i := range servers {
		svc, err := service.New(service.Config{
			CacheDir:      t.TempDir(),
			Instance:      fmt.Sprintf("shard%d", i),
			TraceLog:      logs[i],
			MemoSnapshots: -1, // no async memo offers: logs stay quiescent after the response
			Peers: &service.PeerConfig{
				Self:     urls[i],
				Backends: urls,
				Ranker:   ring,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i].Config.Handler = svc.Handler()
		servers[i].Start()
		defer servers[i].Close()
		defer svc.Close()
	}

	router, err := NewRouter(RouterConfig{
		Backends:       urls,
		HealthInterval: -1,
		Instance:       "lb",
		TraceLog:       logs[n],
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	// One traced cold plan with a caller-chosen trace ID.
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/plan?trace=1",
		strings.NewReader(`{"model":"case-study","devices":4,"planner":"fleetstub"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "client-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced plan status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "client-1" {
		t.Fatalf("response trace ID %q, want the caller's client-1", got)
	}

	// The body is the router's envelope around the shard's: both trees
	// plus the original plan payload must unwrap.
	traces, payload, ok := obs.UnwrapEnvelope(body)
	if !ok || len(traces) < 2 {
		t.Fatalf("envelope unwrap: ok=%v traces=%d", ok, len(traces))
	}
	var probe struct {
		Version int    `json:"version"`
		Model   string `json:"model"`
	}
	if err := json.Unmarshal(payload, &probe); err != nil || probe.Version < 1 || probe.Model == "" {
		t.Fatalf("unwrapped payload is not the plan artifact: %v (%.80s)", err, payload)
	}

	// Union every process's span log, keeping only our trace (the peer
	// shards also log their own untraced business).
	type spanRec struct {
		export  obs.SpanExport
		process string
		absUs   int64
	}
	spans := map[string]spanRec{}
	for i, lg := range logs {
		sc := bufio.NewScanner(bytes.NewReader(lg.bytes()))
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var te obs.TraceExport
			if err := json.Unmarshal(sc.Bytes(), &te); err != nil {
				t.Fatalf("log %d: bad trace line: %v", i, err)
			}
			if te.TraceID != "client-1" {
				continue
			}
			for _, s := range te.Spans {
				if _, dup := spans[s.ID]; dup {
					t.Fatalf("span ID %s appears twice in the union", s.ID)
				}
				spans[s.ID] = spanRec{export: s, process: te.Process, absUs: te.StartUnixUs + s.StartUs}
			}
		}
	}
	if len(spans) == 0 {
		t.Fatal("no spans for trace client-1 in any process log")
	}

	// Exactly one root, and it is the router's request span.
	var roots []spanRec
	for _, s := range spans {
		if s.export.Parent == "" {
			roots = append(roots, s)
		}
	}
	if len(roots) != 1 {
		t.Fatalf("span union has %d roots, want exactly 1: %+v", len(roots), roots)
	}
	if roots[0].process != "lb" || roots[0].export.Name != "router.plan" {
		t.Fatalf("root is %s/%s, want lb/router.plan", roots[0].process, roots[0].export.Name)
	}

	// Every parent edge resolves inside the union, and time never runs
	// backwards along it (1ms slack for wall-vs-mono rounding across
	// process exports).
	const slackUs = 1000
	for id, s := range spans {
		if s.export.Parent == "" {
			continue
		}
		parent, ok := spans[s.export.Parent]
		if !ok {
			t.Fatalf("span %s (%s) has dangling parent %s", id, s.export.Name, s.export.Parent)
		}
		if s.absUs+slackUs < parent.absUs {
			t.Errorf("span %s starts %dus before its parent %s", id, parent.absUs-s.absUs, s.export.Parent)
		}
	}

	// The phases the issue names are all descendants of the root: the
	// owning shard's serving span, a peer-fill consult with per-peer
	// attempts, the planner search, and at least one per-probe DP span.
	byName := map[string]int{}
	for _, s := range spans {
		byName[s.export.Name]++
	}
	for _, name := range []string{
		"backend.attempt", "service.plan", "cache.memory", "cache.disk",
		"singleflight.wait", "peer.fill", "peer.attempt", "service.artifact",
		"admission.wait", "planner.search", "dp.probe", "search.micro-batch",
	} {
		if byName[name] == 0 {
			t.Errorf("span union is missing %q (got %v)", name, byName)
		}
	}

	// /metrics answers the 0.0.4 exposition on every process.
	for i, u := range append(append([]string(nil), urls...), front.URL) {
		resp, err := http.Get(u + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		series, perr := obs.ParseText(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || perr != nil {
			t.Fatalf("process %d /metrics: status %d, parse %v", i, resp.StatusCode, perr)
		}
		if len(series) == 0 {
			t.Fatalf("process %d /metrics is empty", i)
		}
	}
	frontMetrics, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	series, err := obs.ParseText(frontMetrics.Body)
	frontMetrics.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if series["graphpipe_router_routed_total"] < 1 {
		t.Errorf("router routed_total = %v after a routed request", series["graphpipe_router_routed_total"])
	}
}
