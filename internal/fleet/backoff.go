package fleet

import (
	"hash/fnv"
	"time"
)

// backoffDelay computes the bounded-exponential retry delay with
// deterministic equal jitter that replaces the router's old fixed
// 250ms fallback: attempt i waits base·2^i capped at max, then
// jittered into [d/2, d) by a splitmix64 value derived from (key,
// attempt). Deriving the jitter from the retried key instead of a
// shared RNG keeps replays deterministic — the same request sequence
// backs off identically on every run — while still spreading distinct
// keys' retries apart so they do not stampede back in lockstep.
func backoffDelay(base, max time.Duration, key string, attempt int) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Equal jitter: half fixed, half drawn from the key's stream.
	h := fnv.New64a()
	h.Write([]byte(key))
	r := rng{state: h.Sum64() ^ uint64(attempt)*0x9E3779B97F4A7C15}
	half := d / 2
	return half + time.Duration(r.float()*float64(half))
}

// rng is the repository's splitmix64 stream (see internal/synth): the
// fleet uses it for retry jitter and health-probe spacing so both are
// pure functions of their seeds.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// probeDelays returns the first n health-probe intervals for a router
// with the given base interval and jitter seed: each delay lands in
// [0.75, 1.25)·interval, drawn from a splitmix64 stream salted by the
// seed. N routers probing the same fleet get distinct seeds (the
// default derives from the process ID), so their probes decorrelate
// instead of hitting every shard in lockstep each period. Exported
// logic is a pure function so the spacing is pinnable by test.
func probeDelays(interval time.Duration, seed int64, n int) []time.Duration {
	r := probeJitter(seed)
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = nextProbeDelay(&r, interval)
	}
	return out
}

// probeJitter seeds the probe-spacing stream; healthLoop and
// probeDelays share it, so the loop's actual spacing is exactly what
// the pure function predicts.
func probeJitter(seed int64) rng {
	return rng{state: uint64(seed) ^ 0xA5A5A5A55A5A5A5A}
}

func nextProbeDelay(r *rng, interval time.Duration) time.Duration {
	return time.Duration((0.75 + 0.5*r.float()) * float64(interval))
}
