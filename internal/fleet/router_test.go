package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphpipe/internal/service"
)

const planBody = `{"model":"case-study","devices":4}`

func newTestRouter(t *testing.T, cfg RouterConfig) (*Router, *httptest.Server, *[]time.Duration) {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1 // the tests drive health transitions themselves
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	slept := &[]time.Duration{}
	r.sleep = func(d time.Duration) { *slept = append(*slept, d) }
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(srv.Close)
	return r, srv, slept
}

// TestRouterHonorsRetryAfterOnSameBackend pins satellite behavior the
// fleet depends on under load: a 429 is retried on the SAME backend
// (the one owning the fingerprint's cache) after exactly the backend's
// Retry-After, capped by MaxRetryAfter — not failed over to a replica
// that would cold-plan the same question.
func TestRouterHonorsRetryAfterOnSameBackend(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7") // above the cap
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set(service.HeaderCache, "hit-memory")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer backend.Close()

	r, srv, slept := newTestRouter(t, RouterConfig{
		Backends:      []string{backend.URL},
		RetryShed:     1,
		MaxRetryAfter: 2 * time.Second,
	})

	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after one shed retry", resp.StatusCode)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend saw %d calls, want 2 (shed + retry)", got)
	}
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Fatalf("backoffs = %v, want exactly [2s] (Retry-After 7s capped at 2s)", *slept)
	}
	if got := r.retried429.Load(); got != 1 {
		t.Fatalf("retried_429 = %d, want 1", got)
	}
}

// TestRouterPropagatesPersistent429 pins the give-up side: a backend
// that sheds past the retry budget propagates its 429 — and its
// Retry-After — to the client instead of spilling the key to a replica.
func TestRouterPropagatesPersistent429(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer backend.Close()

	_, srv, slept := newTestRouter(t, RouterConfig{
		Backends:      []string{backend.URL},
		RetryShed:     2,
		MaxRetryAfter: 2 * time.Second,
	})
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 once retries are exhausted", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want relayed %q", got, "1")
	}
	if want := []time.Duration{time.Second, time.Second}; len(*slept) != 2 ||
		(*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("backoffs = %v, want %v", *slept, want)
	}
}

// TestRouterFailsOverOnConnectionFailure pins replica failover: when the
// owning shard is unreachable, the request lands on the next ring
// replica instead of erroring, and the dead shard is marked down.
func TestRouterFailsOverOnConnectionFailure(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(nil))
	deadURL := dead.URL
	dead.Close() // nothing listens there anymore

	r, srv, _ := newTestRouter(t, RouterConfig{Backends: []string{deadURL, live.URL}})

	// Find a key the dead backend owns, so the request must fail over.
	key := ""
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("fp-%d", i)
		if r.ring.Owner(k) == deadURL {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key hashed to the dead backend")
	}

	resp, err := http.Get(srv.URL + "/v1/artifacts/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 from the failover replica", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderBackend); got != live.URL {
		t.Fatalf("%s = %q, want the live backend %q", HeaderBackend, got, live.URL)
	}
	if got := r.failovers.Load(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	r.mu.Lock()
	down := r.down[deadURL]
	r.mu.Unlock()
	if !down {
		t.Fatal("dead backend not marked down after a connection failure")
	}
}

// TestRouterRelaysHeadersAndStampsBackend pins the relay contract:
// cache/fingerprint headers pass through untouched and the answering
// shard is stamped, which is what lets fleetgen attribute latencies to
// tiers and the smoke test observe placement.
func TestRouterRelaysHeadersAndStampsBackend(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(service.HeaderFingerprint, "fp123")
		w.Header().Set(service.HeaderCache, "hit-disk")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer backend.Close()

	_, srv, _ := newTestRouter(t, RouterConfig{Backends: []string{backend.URL}})
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(service.HeaderFingerprint); got != "fp123" {
		t.Errorf("fingerprint header = %q, want fp123", got)
	}
	if got := resp.Header.Get(service.HeaderCache); got != "hit-disk" {
		t.Errorf("cache header = %q, want hit-disk", got)
	}
	if got := resp.Header.Get(HeaderBackend); got != backend.URL {
		t.Errorf("backend header = %q, want %q", got, backend.URL)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != `{"ok":true}` {
		t.Errorf("body = %q relayed incorrectly", body)
	}
}

// TestRouterRejectsMalformedRequests pins that garbage dies at the
// router with the daemons' 400 shape, before consuming backend queue
// slots.
func TestRouterRejectsMalformedRequests(t *testing.T) {
	var backendCalls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		backendCalls.Add(1)
	}))
	defer backend.Close()

	r, srv, _ := newTestRouter(t, RouterConfig{Backends: []string{backend.URL}})
	for _, body := range []string{
		`{not json`,
		`{"model":"case-study","devices":4,"bogus_field":1}`,
		`{"model":"case-study","devices":-2}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
	if got := backendCalls.Load(); got != 0 {
		t.Errorf("backend saw %d calls for malformed requests, want 0", got)
	}
	if got := r.badRequests.Load(); got != 3 {
		t.Errorf("bad_requests = %d, want 3", got)
	}
}

// TestRouterAggregatesStats pins /v1/stats: per-backend snapshots plus
// their field-wise sum under "fleet", with the router's own counters.
func TestRouterAggregatesStats(t *testing.T) {
	mkBackend := func(snap service.Snapshot) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/v1/stats" {
				http.NotFound(w, r)
				return
			}
			json.NewEncoder(w).Encode(snap)
		}))
	}
	b1 := mkBackend(service.Snapshot{HitsMemory: 3, Planned: 1, PeerFills: 2})
	defer b1.Close()
	b2 := mkBackend(service.Snapshot{HitsMemory: 4, Planned: 2, Rejected: 5})
	defer b2.Close()

	_, srv, _ := newTestRouter(t, RouterConfig{Backends: []string{b1.URL, b2.URL}})
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Fleet.HitsMemory != 7 || stats.Fleet.Planned != 3 ||
		stats.Fleet.PeerFills != 2 || stats.Fleet.Rejected != 5 {
		t.Errorf("fleet sum = %+v, want hits 7 / planned 3 / peer fills 2 / rejected 5", stats.Fleet)
	}
	if len(stats.Backends) != 2 || stats.Backends[b1.URL] == nil || stats.Backends[b2.URL] == nil {
		t.Errorf("backends map = %v, want both members present", stats.Backends)
	}
	if stats.Backends[b1.URL].HitsMemory != 3 {
		t.Errorf("backend %s hits = %d, want 3", b1.URL, stats.Backends[b1.URL].HitsMemory)
	}
}
