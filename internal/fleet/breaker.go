package fleet

import (
	"sync"
	"time"
)

// BreakerState is one of the circuit breaker's three explicit states.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is rejected until the open window elapses.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of trial requests probe the
	// backend; their outcome decides the next state.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig sizes a Breaker. The zero value gets serviceable
// defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip a closed
	// breaker open (default 5).
	FailureThreshold int
	// OpenFor is how long an open breaker rejects before admitting
	// half-open trial traffic (default 5s).
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent trial requests while half-open
	// (default 1).
	HalfOpenProbes int

	now func() time.Time // test seam; nil uses time.Now
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Breaker is a per-backend circuit breaker specified as an explicit
// state machine, in the abstract-state-machine tradition: the whole
// behavior is the transition table below over (state, failures,
// probes, until), and the table-driven tests in breaker_test.go walk
// it literally. Ad-hoc retry code hides its states; this one has
// exactly three.
//
//	state     | event                      | next state, effect
//	----------+----------------------------+--------------------------------
//	Closed    | Allow                      | Closed, admitted
//	Closed    | Record(success)            | Closed, failures = 0
//	Closed    | Record(failure), n < T     | Closed, failures = n+1
//	Closed    | Record(failure), n+1 == T  | Open, until = now + OpenFor
//	Open      | Allow, now < until         | Open, rejected
//	Open      | Allow, now >= until        | HalfOpen, admitted as probe 1
//	Open      | Record(either)             | Open (stale in-flight result;
//	          |                            |   only a half-open probe may
//	          |                            |   close the circuit)
//	HalfOpen  | Allow, probes < P          | HalfOpen, admitted, probes+1
//	HalfOpen  | Allow, probes == P         | HalfOpen, rejected
//	HalfOpen  | Record(success)            | Closed, counters reset
//	HalfOpen  | Record(failure)            | Open, until = now + OpenFor
//	any       | Cancel                     | state unchanged; probes-1 if
//	          |                            |   HalfOpen (no verdict: the
//	          |                            |   caller's own budget expired)
//
// Create with NewBreaker; safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while Closed
	until    time.Time // when Open admits half-open probes
	probes   int       // in-flight trial requests while HalfOpen
	opens    uint64    // lifetime trips, for stats
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed, performing the
// Open→HalfOpen transition when the open window has elapsed. Every
// admitted request must eventually call Record exactly once.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.now().Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes = 1
		return true
	default: // BreakerHalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
}

// Record reports an admitted request's outcome and drives the
// failure-counting and half-open transitions of the table above.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerOpen:
		// A stale result from a request admitted before the trip: the
		// deliberate half-open probe, not a straggler, decides recovery.
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if success {
			b.state = BreakerClosed
			b.failures = 0
			b.probes = 0
			return
		}
		b.trip()
	}
}

// Cancel releases an admitted request's slot without a verdict: the
// caller's own deadline fired mid-flight, which proves nothing about
// the backend's health either way. While half-open this frees the
// probe slot so the next Allow can try again; in any state it never
// counts as a failure, so tight client budgets cannot trip breakers
// on healthy backends.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probes > 0 {
		b.probes--
	}
}

// trip moves to Open and re-arms the recovery timer. Caller holds mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.until = b.cfg.now().Add(b.cfg.OpenFor)
	b.failures = 0
	b.probes = 0
	b.opens++
}

// State reports the current state (Open may lag reality by one Allow:
// the Open→HalfOpen transition happens on admission, not on a clock).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens reports how many times the breaker has tripped.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
