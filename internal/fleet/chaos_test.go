package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphpipe/internal/faultinject"
	"graphpipe/internal/loadgen"
	"graphpipe/internal/service"
	"graphpipe/internal/synth"
)

// TestChaosSoakFleetDegradesAndRecovers is the PR's acceptance
// criterion, in-process: a three-shard fleet behind a verifying router,
// with seeded faults on the router→shard wire (latency, drops, injected
// 503s, truncation, corruption) and on every shard's peer wire and
// disks, replays a 320-request Zipf workload and must degrade instead
// of failing — zero non-identical 200 bodies, bounded error rate, no
// request outliving its budget — and then, once every fault window is
// provably spent (faultinject.Quiesced, not a sleep), heal completely:
// breakers re-close, and a clean replay of the same workload finishes
// with zero errors.
//
// The fault schedule is a pure function of the seeds below; a failure
// reproduces by re-running the test (see TESTING.md's chaos tier).
func TestChaosSoakFleetDegradesAndRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak: multi-second fleet replay, skipped in -short")
	}

	// Boot three shards whose ring URLs are known before their servers
	// exist, each with its own seeded fault set on peer wire + disks.
	const n = 3
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		servers[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + servers[i].Listener.Addr().String()
	}
	ring, err := NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	shardFaults := make([]*faultinject.Set, n)
	for i := range servers {
		shardFaults[i], err = faultinject.Parse(fmt.Sprintf(
			"seed=%d;window=40;http.drop=0.2;disk.write-fail=0.1;disk.write-partial=0.1", 100+i))
		if err != nil {
			t.Fatal(err)
		}
		svc, err := service.New(service.Config{
			CacheDir:      t.TempDir(),
			MemoryEntries: 512,
			Faults:        shardFaults[i],
			Peers: &service.PeerConfig{
				Self:        urls[i],
				Backends:    urls,
				Ranker:      ring,
				FillTimeout: 500 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i].Config.Handler = svc.Handler()
		servers[i].Start()
		defer servers[i].Close()
		defer svc.Close()
	}

	// The router's wire is the sickest: five fault kinds, windowed so
	// the chaos provably ends. Verification is on — a corrupt or torn
	// 200 must become a failover, never a wrong byte relayed.
	routerFaults, err := faultinject.Parse(
		"seed=11;window=240;http.latency=0.2:30ms;http.drop=0.05;http.err5xx=0.05;http.truncate=0.05;http.corrupt=0.03")
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(RouterConfig{
		Backends:        urls,
		HealthInterval:  150 * time.Millisecond,
		JitterSeed:      7,
		Breaker:         BreakerConfig{FailureThreshold: 2, OpenFor: 50 * time.Millisecond},
		VerifyArtifacts: true,
		Faults:          routerFaults,
		Client:          &http.Client{Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	client := &http.Client{Timeout: 10 * time.Second}
	workload := loadgen.Config{
		Target:      front.URL,
		Concurrency: 4,
		ZipfS:       1.1,
		Population:  12,
		Planner:     "graphpipe",
		Seed:        42,
		BudgetMs:    3000,
		VerifyPlans: true,
		Pace:        10 * time.Millisecond,
		Client:      client,
	}

	// Phase 1: replay under fire. The fleet may shed and error, but
	// every 200 is byte-true, errors stay bounded, and nothing outlives
	// its 3s budget (the 10s client timeout would surface a hang as an
	// error and a >=10s latency max).
	faulty := workload
	faulty.Requests = 320
	res, err := loadgen.Run(faulty)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("faulty phase: %d/%d ok, %d shed, %d errors, %d deadline, %d alternates, rate %.3f, max %.2fs",
		res.Completed, res.Requests, res.Shed, res.Errors, res.DeadlineExceeded, res.AlternatePlans, res.ErrorRate, res.Overall.Max)
	if got := res.Completed + res.Shed + res.Errors + res.DeadlineExceeded; got != res.Requests {
		t.Fatalf("outcome ledger %d does not reconcile with %d requests", got, res.Requests)
	}
	if res.ByteMismatches != 0 {
		t.Fatalf("%d byte mismatches under faults: a corrupt body was relayed as a 200", res.ByteMismatches)
	}
	if res.Completed == 0 {
		t.Fatal("no request completed under faults: the fleet failed instead of degrading")
	}
	if res.ErrorRate > 0.45 {
		t.Fatalf("error rate %.3f exceeds the 0.45 degradation bound", res.ErrorRate)
	}
	if res.Overall.Max > 8 {
		t.Fatalf("slowest request took %.2fs: something outlived its 3s budget", res.Overall.Max)
	}

	// Drain: pose fresh planning questions until every fault window —
	// router wire, each shard's peer wire and disks — is provably
	// spent. Fresh questions force the full path (peer walk, planner,
	// artifact + memo writes), so each one advances every site's stream.
	quiesced := func() bool {
		if !routerFaults.Quiesced() {
			return false
		}
		for _, fs := range shardFaults {
			if !fs.Quiesced() {
				return false
			}
		}
		return true
	}
	specs, err := synth.Population(nil, 400, 777)
	if err != nil {
		t.Fatal(err)
	}
	drainBody := func(i int) string {
		return fmt.Sprintf(`{"model":%q,"devices":%d,"planner":"graphpipe"}`,
			specs[i%len(specs)].String(), 2+i%3)
	}
	drained := 0
	for ; drained < len(specs) && !quiesced(); drained++ {
		postPlan(client, front.URL, drainBody(drained))
	}
	if !quiesced() {
		t.Fatalf("fault windows not spent after %d drain requests; router tallies %v, shard tallies %v %v %v",
			drained, routerFaults.Tallies(), shardFaults[0].Tallies(), shardFaults[1].Tallies(), shardFaults[2].Tallies())
	}
	t.Logf("all fault windows quiesced after %d drain requests", drained)

	// Heal: breakers tripped during the window re-close only through
	// admitted traffic. Keep posing fresh questions (each lands on a
	// seed-determined primary) until every breaker reports closed; past
	// the window every attempt succeeds, so this converges.
	time.Sleep(250 * time.Millisecond) // let the last OpenFor elapse
	healDeadline := time.Now().Add(30 * time.Second)
	for i := drained; ; i++ {
		stats := fetchFleetStats(t, client, front.URL)
		if breakersAllClosed(stats) {
			break
		}
		if time.Now().After(healDeadline) {
			t.Fatalf("breakers did not all re-close after the fault window: %v", stats.Router.Breakers)
		}
		postPlan(client, front.URL, drainBody(i))
		time.Sleep(25 * time.Millisecond)
	}

	// Phase 2: the same workload on the healed fleet must be clean —
	// no errors, no budget expiries, byte-true throughout.
	clean := workload
	clean.Requests = 150
	res2, err := loadgen.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clean phase: %d/%d ok, %d shed, %d errors, %d deadline",
		res2.Completed, res2.Requests, res2.Shed, res2.Errors, res2.DeadlineExceeded)
	if res2.Errors != 0 || res2.DeadlineExceeded != 0 {
		t.Fatalf("recovered fleet still failing: %d errors, %d deadline expiries", res2.Errors, res2.DeadlineExceeded)
	}
	if res2.ByteMismatches != 0 {
		t.Fatalf("%d byte mismatches on the healed fleet", res2.ByteMismatches)
	}
	if res2.Completed+res2.Shed != res2.Requests {
		t.Fatalf("clean phase ledger: %d completed + %d shed != %d requests", res2.Completed, res2.Shed, res2.Requests)
	}

	// Final ledger: the faults demonstrably happened (at least four
	// router-wire kinds plus shard-side injections), verification caught
	// real corruption, breakers opened — and everything is closed now.
	stats := fetchFleetStats(t, client, front.URL)
	if !breakersAllClosed(stats) {
		t.Fatalf("breakers not all closed at end: %v", stats.Router.Breakers)
	}
	if stats.Router.BreakerOpens == 0 {
		t.Fatal("no breaker ever opened: the fault window was not felt")
	}
	if stats.Router.CorruptBodies == 0 {
		t.Fatal("no corrupt body was caught: verification never fired under corruption faults")
	}
	kinds := make(map[string]bool)
	for site := range stats.Router.FaultsInjected {
		if _, kind, ok := strings.Cut(site, "/"); ok {
			kinds[kind] = true
		}
	}
	if len(kinds) < 4 {
		t.Fatalf("router injected only %d fault kinds (%v), want >= 4", len(kinds), stats.Router.FaultsInjected)
	}
	if len(stats.Fleet.FaultsInjected) == 0 {
		t.Fatal("no shard-side fault tallies in the fleet snapshot")
	}
}

// postPlan fires one planning request and discards the outcome: drain
// and heal traffic only exists to advance fault streams and breakers.
func postPlan(client *http.Client, base, body string) {
	resp, err := client.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func fetchFleetStats(t *testing.T, client *http.Client, base string) FleetStats {
	t.Helper()
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

func breakersAllClosed(stats FleetStats) bool {
	if len(stats.Router.Breakers) == 0 {
		return false
	}
	for _, state := range stats.Router.Breakers {
		if state != "closed" {
			return false
		}
	}
	return true
}
