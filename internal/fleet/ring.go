// Package fleet scales the planning service horizontally: a consistent-
// hash ring shards canonicalized request fingerprints across N graphpiped
// backends, and a Router forwards /v1/plan, /v1/eval, and /v1/artifacts
// traffic to the owning shard with bounded-load spill, health checks,
// retry-on-connection-failure, 429 backoff, and fleet-aggregated stats.
//
// The ring is the single source of placement truth for the whole fleet:
// the router routes by it, and each daemon holds the same ring (via
// service.PeerConfig) to decide which peers to consult on a cache miss
// and which peers to offer memo snapshots to. Hashing is therefore
// deliberately process-independent — SHA-256 over stable strings, no
// map-order or per-process seeds — so every member of a fleet computes
// the identical owner for every fingerprint.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-node count per backend. 64 points per
// backend keeps the keyspace split within a few percent of even for
// single-digit fleets without making ring construction noticeable.
const DefaultReplicas = 64

// Ring is a consistent-hash ring over backend base URLs. Construct with
// NewRing; immutable and safe for concurrent use afterwards.
type Ring struct {
	backends []string
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	backend int // index into backends
}

// NewRing builds a ring with replicas virtual nodes per backend
// (replicas <= 0 selects DefaultReplicas). Backend order does not affect
// placement — only the URL strings do — but duplicates are an error:
// they would silently double a backend's keyspace share.
func NewRing(backends []string, replicas int) (*Ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one backend")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(backends))
	r := &Ring{
		backends: append([]string(nil), backends...),
		points:   make([]ringPoint, 0, len(backends)*replicas),
	}
	for i, b := range backends {
		if b == "" {
			return nil, fmt.Errorf("fleet: empty backend URL at index %d", i)
		}
		if seen[b] {
			return nil, fmt.Errorf("fleet: duplicate backend %q", b)
		}
		seen[b] = true
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("%s|vnode=%d", b, v)),
				backend: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break on backend index so the
		// walk order stays deterministic across processes.
		return r.points[a].backend < r.points[b].backend
	})
	return r, nil
}

// hash64 is the ring's placement hash: the first 8 bytes of SHA-256.
// Fingerprints are already uniformly distributed hex, but virtual-node
// labels are not, and one stable, well-mixed hash for both keeps every
// fleet member's view identical.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Backends returns the ring's member URLs in construction order.
func (r *Ring) Backends() []string {
	return append([]string(nil), r.backends...)
}

// Owner returns the backend owning a key: the first backend clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.backends[r.points[r.start(key)].backend]
}

// Owners returns every distinct backend in ring-walk order from the
// key's position: Owners(k)[0] is the owner, the rest are the replica
// preference order a router fails over to and a daemon consults for
// peer cache-fill. The slice is freshly allocated.
func (r *Ring) Owners(key string) []string {
	out := make([]string, 0, len(r.backends))
	seen := make([]bool, len(r.backends))
	for i, n := r.start(key), 0; n < len(r.points) && len(out) < len(r.backends); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, r.backends[p.backend])
		}
	}
	return out
}

// start locates the first ring point at or clockwise of the key's hash.
func (r *Ring) start(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
