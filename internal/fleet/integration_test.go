package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
	"graphpipe/internal/planner"
	"graphpipe/internal/service"
	"graphpipe/internal/strategy"
)

// countingPlanner wraps the real planner so the fleet test can prove how
// many cold searches the whole fleet ran.
type countingPlanner struct{ calls atomic.Int64 }

func init() { planner.Register(&fleetStub) }

var fleetStub countingPlanner

func (p *countingPlanner) Name() string { return "fleetstub" }

func (p *countingPlanner) Plan(g *graph.Graph, topo *cluster.Topology, miniBatch int, opts planner.Options) (*strategy.Strategy, planner.Stats, error) {
	p.calls.Add(1)
	real, err := planner.Get("graphpipe")
	if err != nil {
		return nil, planner.Stats{}, err
	}
	return real.Plan(g, topo, miniBatch, opts)
}

// TestFleetServesPlanByteIdenticallyFromEveryShard is the PR's
// acceptance criterion end to end, in-process: a three-shard fleet with
// a shared ring serves a plan computed cold on exactly one shard
// byte-identically from every other shard via peer cache-fill, with no
// second cold search anywhere.
func TestFleetServesPlanByteIdenticallyFromEveryShard(t *testing.T) {
	fleetStub.calls.Store(0)

	// Boot three daemons whose ring URLs are known before their servers
	// exist: httptest.NewUnstartedServer assigns the listener first.
	const n = 3
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		servers[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + servers[i].Listener.Addr().String()
	}
	ring, err := NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	services := make([]*service.Service, n)
	for i := range servers {
		svc, err := service.New(service.Config{
			CacheDir: t.TempDir(),
			Peers: &service.PeerConfig{
				Self:     urls[i],
				Backends: urls,
				Ranker:   ring,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		services[i] = svc
		servers[i].Config.Handler = svc.Handler()
		servers[i].Start()
		defer servers[i].Close()
		defer svc.Close()
	}

	router, err := NewRouter(RouterConfig{Backends: urls, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	// One cold plan through the router.
	body := `{"model":"case-study","devices":4,"planner":"fleetstub"}`
	resp, err := http.Post(front.URL+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	planBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status = %d: %s", resp.StatusCode, planBytes)
	}
	if src := resp.Header.Get(service.HeaderCache); src != "miss" {
		t.Fatalf("first plan source = %q, want miss", src)
	}
	fp := resp.Header.Get(service.HeaderFingerprint)
	owner := resp.Header.Get(HeaderBackend)
	if fp == "" || owner == "" {
		t.Fatalf("response missing fingerprint (%q) or backend (%q) header", fp, owner)
	}
	if want := ring.Owner(fp); owner != want {
		t.Fatalf("plan answered by %s, ring owner is %s", owner, want)
	}

	// Every shard must now serve the artifact byte-identically — the
	// owner from its cache, the other two via peer fill — without any
	// shard re-running the search.
	for i, u := range urls {
		resp, err := http.Get(u + "/v1/artifacts/" + fp)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d: artifact status = %d", i, resp.StatusCode)
		}
		if !bytes.Equal(got, planBytes) {
			t.Fatalf("shard %d served different artifact bytes than the plan response", i)
		}
	}
	if got := fleetStub.calls.Load(); got != 1 {
		t.Fatalf("planner ran %d times across the fleet, want exactly 1 (peer fill, not re-plan)", got)
	}

	// The two non-owners filled from a peer; their local tiers now hold
	// the plan, so a second artifact read must not consult anyone.
	var fills uint64
	for i, svc := range services {
		snap := svc.Stats()
		if snap.Planned > 1 {
			t.Fatalf("shard %d planned %d times", i, snap.Planned)
		}
		fills += snap.PeerFills
		if urls[i] != owner && snap.PeerFills != 1 {
			t.Fatalf("non-owner shard %d has %d peer fills, want 1", i, snap.PeerFills)
		}
	}
	if fills != n-1 {
		t.Fatalf("fleet peer fills = %d, want %d", fills, n-1)
	}

	// Replaying the same question through the router is warm: the owner
	// serves from memory.
	resp, err = http.Post(front.URL+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	warm, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if src := resp.Header.Get(service.HeaderCache); src != "hit-memory" {
		t.Fatalf("replayed plan source = %q, want hit-memory", src)
	}
	if !bytes.Equal(warm, planBytes) {
		t.Fatal("warm replay served different bytes")
	}

	// Fleet-aggregated stats see the whole story: one planner run,
	// n-1 peer fills.
	resp, err = http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Fleet.Planned != 1 || stats.Fleet.PeerFills != uint64(n-1) {
		t.Fatalf("fleet stats = %d planned / %d peer fills, want 1 / %d",
			stats.Fleet.Planned, stats.Fleet.PeerFills, n-1)
	}
}
