package fleet

import (
	"fmt"
	"testing"

	"graphpipe/internal/service"
	"graphpipe/internal/synth"

	_ "graphpipe/internal/planner/all" // canonicalization validates planner names
)

func testBackends() []string {
	return []string{"http://a:8787", "http://b:8787", "http://c:8787"}
}

// TestRingPlacementIsOrderAndProcessIndependent pins the fleet's core
// invariant: every member computes the identical owner for every key, no
// matter the order its -peers flag listed the backends in. A router and
// daemon disagreeing on placement would turn every plan into a peer
// consult.
func TestRingPlacementIsOrderAndProcessIndependent(t *testing.T) {
	a, err := NewRing(testBackends(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://c:8787", "http://a:8787", "http://b:8787"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		ow1, ow2 := a.Owners(key), b.Owners(key)
		if len(ow1) != 3 || len(ow2) != 3 {
			t.Fatalf("Owners(%q) lengths = %d, %d, want 3", key, len(ow1), len(ow2))
		}
		for j := range ow1 {
			if ow1[j] != ow2[j] {
				t.Fatalf("Owners(%q) diverge between member orderings: %v vs %v", key, ow1, ow2)
			}
		}
		if a.Owner(key) != ow1[0] {
			t.Fatalf("Owner(%q) = %q, want Owners[0] = %q", key, a.Owner(key), ow1[0])
		}
	}
}

// TestRingDistribution checks the virtual nodes spread a uniform
// keyspace within sane bounds: no shard starves, no shard owns half the
// fleet's keys.
func TestRingDistribution(t *testing.T) {
	r, err := NewRing(testBackends(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 9000
	counts := make(map[string]int)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, b := range testBackends() {
		share := float64(counts[b]) / keys
		if share < 0.15 || share > 0.55 {
			t.Errorf("backend %s owns %.1f%% of keys, outside [15%%, 55%%]: %v",
				b, 100*share, counts)
		}
	}
}

func TestRingRejectsBadConfigs(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}, 0); err == nil {
		t.Error("empty backend URL accepted")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}, 0); err == nil {
		t.Error("duplicate backend accepted")
	}
}

// TestSynthSpellingsRouteToSameShard pins route-key canonicalization:
// the seed shorthand of a synth model and its fully resolved spelling
// are the same planning question, so they must hash to the same shard —
// otherwise one question would cold-plan on two shards and the fleet
// cache would silently halve.
func TestSynthSpellingsRouteToSameShard(t *testing.T) {
	r, err := NewRing(testBackends(), 0)
	if err != nil {
		t.Fatal(err)
	}
	expanded := 0
	for seed := int64(1); seed <= 5; seed++ {
		for _, family := range synth.Families() {
			shorthand := fmt.Sprintf("synth:%s/seed=%d", family, seed)
			resolved, err := synth.Resolve(synth.Spec{Family: family, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if resolved.String() != shorthand {
				expanded++
			}
			var fps [2]string
			for i, model := range []string{shorthand, resolved.String()} {
				req := service.Request{Model: model, Devices: 4}
				fp, err := req.CanonicalFingerprint()
				if err != nil {
					t.Fatalf("CanonicalFingerprint(%q): %v", model, err)
				}
				fps[i] = fp
			}
			if fps[0] != fps[1] {
				t.Fatalf("%q and its resolved spelling fingerprint differently: %s vs %s",
					shorthand, fps[0], fps[1])
			}
			if o1, o2 := r.Owner(fps[0]), r.Owner(fps[1]); o1 != o2 {
				t.Fatalf("spellings of %q land on different shards: %s vs %s", shorthand, o1, o2)
			}
		}
	}
	if expanded == 0 {
		t.Fatal("no shorthand expanded during resolution; the test is vacuous")
	}
}
