package fleet

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is the breaker test seam: a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBreakerTransitionTable walks the documented transition table in
// breaker.go literally: each case is a sequence of events against a
// fresh breaker and the state it must land in.
func TestBreakerTransitionTable(t *testing.T) {
	const openFor = 10 * time.Second

	// Event vocabulary. allow/reject assert the Allow verdict; ok/fail
	// are Record outcomes; cancel is Cancel; wait advances the clock.
	type event struct {
		kind string // "allow", "reject", "ok", "fail", "cancel", "wait"
		wait time.Duration
	}
	allow := event{kind: "allow"}
	reject := event{kind: "reject"}
	ok := event{kind: "ok"}
	fail := event{kind: "fail"}
	cancel := event{kind: "cancel"}
	wait := func(d time.Duration) event { return event{kind: "wait", wait: d} }

	cases := []struct {
		name      string
		threshold int
		probes    int
		events    []event
		want      BreakerState
		wantOpens uint64
	}{
		{
			name:   "closed admits and stays closed on success",
			events: []event{allow, ok, allow, ok},
			want:   BreakerClosed,
		},
		{
			name:      "failures below threshold stay closed",
			threshold: 3,
			events:    []event{allow, fail, allow, fail},
			want:      BreakerClosed,
		},
		{
			name:      "success resets the consecutive-failure count",
			threshold: 2,
			events:    []event{allow, fail, allow, ok, allow, fail},
			want:      BreakerClosed,
		},
		{
			name:      "threshold consecutive failures trip open",
			threshold: 2,
			events:    []event{allow, fail, allow, fail},
			want:      BreakerOpen,
			wantOpens: 1,
		},
		{
			name:      "open rejects before the window elapses",
			threshold: 1,
			events:    []event{allow, fail, wait(openFor - time.Millisecond), reject},
			want:      BreakerOpen,
			wantOpens: 1,
		},
		{
			name:      "open admits a half-open probe after the window",
			threshold: 1,
			events:    []event{allow, fail, wait(openFor), allow},
			want:      BreakerHalfOpen,
			wantOpens: 1,
		},
		{
			name:      "stale record while open is ignored",
			threshold: 1,
			// Two admitted, one fails and trips; the straggler's success
			// must not close the circuit.
			events:    []event{allow, allow, fail, ok, wait(openFor - time.Millisecond), reject},
			want:      BreakerOpen,
			wantOpens: 1,
		},
		{
			name:      "half-open caps concurrent probes",
			threshold: 1,
			probes:    1,
			events:    []event{allow, fail, wait(openFor), allow, reject},
			want:      BreakerHalfOpen,
			wantOpens: 1,
		},
		{
			name:      "successful probe closes the circuit",
			threshold: 1,
			events:    []event{allow, fail, wait(openFor), allow, ok, allow, ok},
			want:      BreakerClosed,
			wantOpens: 1,
		},
		{
			name:      "failed probe re-opens for a fresh window",
			threshold: 1,
			events: []event{allow, fail, wait(openFor), allow, fail,
				wait(openFor - time.Millisecond), reject},
			want:      BreakerOpen,
			wantOpens: 2,
		},
		{
			name:      "after a probe closes, the threshold applies afresh",
			threshold: 2,
			events: []event{allow, fail, allow, fail, // trip
				wait(openFor), allow, ok, // recover
				allow, fail}, // one failure: not enough to re-trip
			want:      BreakerClosed,
			wantOpens: 1,
		},
		{
			name:      "cancel while closed is not a failure",
			threshold: 1,
			events:    []event{allow, cancel, allow, cancel},
			want:      BreakerClosed,
		},
		{
			name:      "cancel frees the half-open probe slot",
			threshold: 1,
			probes:    1,
			// Probe's caller deadline dies (cancel) → the next Allow must
			// get the freed slot instead of being rejected.
			events:    []event{allow, fail, wait(openFor), allow, cancel, allow, ok},
			want:      BreakerClosed,
			wantOpens: 1,
		},
		{
			name:      "cancel alone never closes an open circuit",
			threshold: 1,
			events:    []event{allow, fail, cancel, wait(openFor - time.Millisecond), reject},
			want:      BreakerOpen,
			wantOpens: 1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			b := NewBreaker(BreakerConfig{
				FailureThreshold: tc.threshold,
				OpenFor:          openFor,
				HalfOpenProbes:   tc.probes,
				now:              clk.now,
			})
			for i, ev := range tc.events {
				switch ev.kind {
				case "allow":
					if !b.Allow() {
						t.Fatalf("event %d: Allow() = false, want admitted (state %s)", i, b.State())
					}
				case "reject":
					if b.Allow() {
						t.Fatalf("event %d: Allow() = true, want rejected (state %s)", i, b.State())
					}
				case "ok":
					b.Record(true)
				case "fail":
					b.Record(false)
				case "cancel":
					b.Cancel()
				case "wait":
					clk.advance(ev.wait)
				}
			}
			if got := b.State(); got != tc.want {
				t.Errorf("final state = %s, want %s", got, tc.want)
			}
			if got := b.Opens(); got != tc.wantOpens {
				t.Errorf("Opens() = %d, want %d", got, tc.wantOpens)
			}
		})
	}
}

// TestBreakerHalfOpenProbeRace hammers a half-open breaker from many
// goroutines and asserts the probe cap holds exactly: no interleaving
// admits more than HalfOpenProbes trial requests at once. Run under
// -race this also exercises the lock discipline.
func TestBreakerHalfOpenProbeRace(t *testing.T) {
	const probeCap = 3
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		OpenFor:          time.Second,
		HalfOpenProbes:   probeCap,
		now:              clk.now,
	})
	// Trip it, then elapse the window so the next Allows contend for
	// the half-open probe slots.
	if !b.Allow() {
		t.Fatal("fresh breaker rejected")
	}
	b.Record(false)
	clk.advance(time.Second)

	const goroutines = 64
	admitted := make(chan bool, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < goroutines; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			admitted <- b.Allow()
		}()
	}
	start.Done()
	done.Wait()
	close(admitted)

	var n int
	for a := range admitted {
		if a {
			n++
		}
	}
	if n != probeCap {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly %d", n, probeCap)
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", got)
	}

	// Releasing one slot via Cancel must admit exactly one more.
	b.Cancel()
	if !b.Allow() {
		t.Fatal("Allow() after Cancel rejected; probe slot not released")
	}
	if b.Allow() {
		t.Fatal("Allow() admitted past the probe cap after one Cancel")
	}

	// One success closes the circuit regardless of outstanding probes.
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %s, want closed", got)
	}
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if got := st.String(); got != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", st, got, want)
		}
	}
}

// TestBackoffDelay pins the deterministic retry backoff: same (key,
// attempt) → same delay; delays grow exponentially from base, are
// capped at max, and equal jitter keeps every delay in [cap/2, cap).
func TestBackoffDelay(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second

	for attempt := 0; attempt < 8; attempt++ {
		a := backoffDelay(base, max, "backend-1", attempt)
		b := backoffDelay(base, max, "backend-1", attempt)
		if a != b {
			t.Fatalf("attempt %d: backoffDelay not deterministic: %v vs %v", attempt, a, b)
		}
		// Uncapped exponential for this attempt, clamped to max.
		exp := base << attempt
		if exp > max || exp <= 0 {
			exp = max
		}
		if a < exp/2 || a >= exp {
			t.Errorf("attempt %d: delay %v outside equal-jitter band [%v, %v)", attempt, a, exp/2, exp)
		}
	}

	if backoffDelay(base, max, "backend-1", 0) == backoffDelay(base, max, "backend-2", 0) {
		t.Error("distinct keys produced identical jitter; retries would stampede in lockstep")
	}

	// Zero-value config gets the documented defaults (100ms base, 2s cap).
	d := backoffDelay(0, 0, "k", 20)
	if d < time.Second || d >= 2*time.Second {
		t.Errorf("defaulted high attempt delay %v outside [1s, 2s)", d)
	}
}

// TestProbeDelaysSpacing pins the health-probe jitter (satellite: the
// router's probe loop shares nextProbeDelay with this pure function, so
// these bounds are the loop's actual spacing).
func TestProbeDelaysSpacing(t *testing.T) {
	const interval = 2 * time.Second
	delays := probeDelays(interval, 42, 100)
	if len(delays) != 100 {
		t.Fatalf("probeDelays returned %d delays, want 100", len(delays))
	}
	lo := time.Duration(0.75 * float64(interval))
	hi := time.Duration(1.25 * float64(interval))
	distinct := make(map[time.Duration]bool)
	for i, d := range delays {
		if d < lo || d >= hi {
			t.Errorf("delay %d = %v outside [%v, %v)", i, d, lo, hi)
		}
		distinct[d] = true
	}
	if len(distinct) < 50 {
		t.Errorf("only %d distinct delays in 100 draws; jitter stream looks degenerate", len(distinct))
	}

	// Determinism per seed; decorrelation across seeds.
	again := probeDelays(interval, 42, 100)
	for i := range delays {
		if delays[i] != again[i] {
			t.Fatalf("probeDelays(seed 42) not deterministic at %d", i)
		}
	}
	other := probeDelays(interval, 43, 100)
	same := 0
	for i := range delays {
		if delays[i] == other[i] {
			same++
		}
	}
	if same > 5 {
		t.Errorf("seeds 42 and 43 agree on %d/100 delays; routers would probe in lockstep", same)
	}
}
