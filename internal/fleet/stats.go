package fleet

import (
	"io"
	"net/http"
	"sync"

	"encoding/json"

	"graphpipe/internal/service"
)

// FleetStats is the router's /v1/stats body: every backend's own
// snapshot, their field-wise sum, and the router's forwarding counters.
// The summed view is what a dashboard watches — fleet-wide hit ratio,
// total sheds, total peer fills — while the per-backend map shows skew.
type FleetStats struct {
	Fleet    service.Snapshot             `json:"fleet"`
	Backends map[string]*service.Snapshot `json:"backends"`
	Router   RouterStats                  `json:"router"`
}

// RouterStats are the router's own counters, distinct from anything the
// shards report.
type RouterStats struct {
	// Routed counts requests accepted for forwarding (including ones
	// that ultimately failed every replica).
	Routed uint64 `json:"routed"`
	// Failovers counts backend connection failures that moved a request
	// to the next ring replica.
	Failovers uint64 `json:"failovers"`
	// Retried429 counts shed responses retried on the same backend
	// after honoring its Retry-After.
	Retried429 uint64 `json:"retried_429"`
	// BadRequests counts requests rejected at the router (malformed
	// JSON, uncanonicalizable planning questions).
	BadRequests uint64 `json:"bad_requests"`
	// NoBackend counts requests for which every replica failed (502s).
	NoBackend uint64 `json:"no_backend"`
	// BreakerRejections counts attempts refused by an open per-backend
	// circuit breaker (the request moved on to the next replica).
	BreakerRejections uint64 `json:"breaker_rejections"`
	// BreakerOpens totals breaker trips across all backends since start.
	BreakerOpens uint64 `json:"breaker_opens"`
	// DeadlineRejections counts requests cut off by their time budget at
	// the router (504s it wrote itself, not ones relayed from shards).
	DeadlineRejections uint64 `json:"deadline_rejections"`
	// CorruptBodies counts 200 responses the router refused to relay
	// because the body tore mid-read or failed fingerprint verification;
	// each one failed over to another replica.
	CorruptBodies uint64 `json:"corrupt_bodies"`
	// Hedged counts artifact reads that launched a hedge request;
	// HedgeWins counts the hedges that answered first.
	Hedged    uint64 `json:"hedged"`
	HedgeWins uint64 `json:"hedge_wins"`
	// Breakers maps each backend to its breaker state ("closed",
	// "open", "half-open") at snapshot time.
	Breakers map[string]string `json:"breakers,omitempty"`
	// Unhealthy lists backends currently marked down.
	Unhealthy []string `json:"unhealthy,omitempty"`
	// InFlight is the router's per-backend in-flight proxied requests —
	// the load the bounded-load rule balances on.
	InFlight map[string]int64 `json:"in_flight"`
	// FaultsInjected tallies the router's own injected faults by
	// "site/kind" (empty without a fault spec); shard-side tallies
	// appear in each backend's snapshot instead.
	FaultsInjected map[string]uint64 `json:"faults_injected,omitempty"`
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	out := FleetStats{
		Backends: make(map[string]*service.Snapshot, len(r.cfg.Backends)),
		Router:   r.routerStats(),
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, b := range r.cfg.Backends {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			snap := r.fetchSnapshot(req, b)
			mu.Lock()
			out.Backends[b] = snap // nil: unreachable right now
			if snap != nil {
				addSnapshot(&out.Fleet, snap)
			}
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

func (r *Router) routerStats() RouterStats {
	rs := RouterStats{
		Routed:             r.routed.Load(),
		Failovers:          r.failovers.Load(),
		Retried429:         r.retried429.Load(),
		BadRequests:        r.badRequests.Load(),
		NoBackend:          r.noBackend.Load(),
		BreakerRejections:  r.breakerRejections.Load(),
		DeadlineRejections: r.deadlineRejections.Load(),
		CorruptBodies:      r.corruptBodies.Load(),
		Hedged:             r.hedged.Load(),
		HedgeWins:          r.hedgeWins.Load(),
		Breakers:           make(map[string]string, len(r.breakers)),
		InFlight:           make(map[string]int64, len(r.inflight)),
		FaultsInjected:     r.cfg.Faults.Tallies(),
	}
	for b, c := range r.inflight {
		rs.InFlight[b] = c.Load()
	}
	for b, br := range r.breakers {
		rs.Breakers[b] = br.State().String()
		rs.BreakerOpens += br.Opens()
	}
	r.mu.Lock()
	for _, b := range r.cfg.Backends {
		if r.down[b] {
			rs.Unhealthy = append(rs.Unhealthy, b)
		}
	}
	r.mu.Unlock()
	return rs
}

func (r *Router) fetchSnapshot(orig *http.Request, backend string) *service.Snapshot {
	req, err := http.NewRequestWithContext(orig.Context(), http.MethodGet, backend+"/v1/stats", nil)
	if err != nil {
		return nil
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	return &snap
}

// addSnapshot accumulates one shard's snapshot into the fleet sum.
// Counters and gauges add; latency histograms merge bucket-wise.
func addSnapshot(dst *service.Snapshot, src *service.Snapshot) {
	dst.HitsMemory += src.HitsMemory
	dst.HitsDisk += src.HitsDisk
	dst.Misses += src.Misses
	dst.Planned += src.Planned
	dst.SharedWaits += src.SharedWaits
	dst.Rejected += src.Rejected
	dst.Evals += src.Evals
	dst.DiskFailures += src.DiskFailures
	dst.MemoWarmHits += src.MemoWarmHits
	dst.MemoEntriesReused += src.MemoEntriesReused
	dst.PeerFills += src.PeerFills
	dst.PeerMisses += src.PeerMisses
	dst.PeerErrors += src.PeerErrors
	dst.PeerTimeouts += src.PeerTimeouts
	dst.DeadlineRejections += src.DeadlineRejections
	for k, n := range src.FaultsInjected {
		if dst.FaultsInjected == nil {
			dst.FaultsInjected = make(map[string]uint64)
		}
		dst.FaultsInjected[k] += n
	}
	dst.MemoOffersSent += src.MemoOffersSent
	dst.MemoOffersReceived += src.MemoOffersReceived
	dst.InFlight += src.InFlight
	dst.Queued += src.Queued
	dst.MemoryEntries += src.MemoryEntries
	dst.MemoryEvictions += src.MemoryEvictions
	dst.MemoSnapshots += src.MemoSnapshots
	dst.MemoInstalls += src.MemoInstalls
	dst.MemoEvictions += src.MemoEvictions
	for name, h := range src.PlannerLatency {
		if dst.PlannerLatency == nil {
			dst.PlannerLatency = make(map[string]service.HistogramSnapshot)
		}
		dst.PlannerLatency[name] = mergeHistogram(dst.PlannerLatency[name], h)
	}
}

// mergeHistogram sums two latency histograms. Buckets merge pointwise
// when the bound ladders match (they do across one build's fleet); on a
// mismatch — mixed-version fleets — the counts and sums still add and
// the buckets of the richer side win, which keeps the fleet view usable
// during a rolling upgrade.
func mergeHistogram(a, b service.HistogramSnapshot) service.HistogramSnapshot {
	out := service.HistogramSnapshot{
		Count:      a.Count + b.Count,
		SumSeconds: a.SumSeconds + b.SumSeconds,
	}
	if len(a.Buckets) == len(b.Buckets) {
		out.Buckets = make([]service.HistogramBucket, len(a.Buckets))
		for i := range a.Buckets {
			out.Buckets[i] = service.HistogramBucket{
				LE:    a.Buckets[i].LE,
				Count: a.Buckets[i].Count + b.Buckets[i].Count,
			}
		}
		return out
	}
	if len(a.Buckets) > len(b.Buckets) {
		out.Buckets = a.Buckets
	} else {
		out.Buckets = b.Buckets
	}
	return out
}
