package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphpipe/internal/faultinject"
	"graphpipe/internal/obs"
	"graphpipe/internal/service"
	"graphpipe/internal/strategy"
)

// HeaderBackend names the shard that answered a routed request, so
// clients and smoke tests can see placement without consulting the ring.
const HeaderBackend = "X-Graphpipe-Backend"

// maxBodyBytes bounds routed request bodies. Planning requests are a few
// hundred bytes of JSON; a larger body is a client error, not traffic.
const maxBodyBytes = 1 << 20

// maxRelayBytes bounds buffered backend response bodies. The router
// buffers (instead of streaming) so it can verify artifact bytes before
// a client sees them and retry a different replica on a torn transfer.
const maxRelayBytes = 64 << 20

// RouterConfig sizes a Router. Backends is required; everything else has
// serviceable defaults.
type RouterConfig struct {
	// Backends are the graphpiped base URLs the ring shards over.
	Backends []string
	// Replicas is the ring's virtual-node count per backend
	// (0: DefaultReplicas). Must match the daemons' own rings.
	Replicas int
	// LoadFactor is the bounded-load factor c: a backend already
	// carrying more than c times the fleet's mean in-flight routed load
	// is passed over for the next ring replica. <= 0 disables the bound
	// (strict ownership); default 1.25.
	LoadFactor float64
	// RetryShed is how many times a 429 from a backend is retried on
	// that same backend, honoring its Retry-After header, before the
	// 429 propagates to the client (default 1; negative disables).
	RetryShed int
	// MaxRetryAfter caps how long one shed retry will wait, whatever
	// the backend's Retry-After says (default 2s). It also caps the
	// deterministic exponential backoff used when a 429 carries no
	// Retry-After at all.
	MaxRetryAfter time.Duration
	// HealthInterval is the active health-check period (GET /v1/stats
	// per backend; default 2s, negative disables the background loop —
	// transport failures still mark backends down passively). Probe
	// rounds are jittered into [0.75, 1.25)·HealthInterval (see
	// probeDelays and JitterSeed).
	HealthInterval time.Duration
	// JitterSeed seeds the health-probe jitter stream; 0 derives a seed
	// from the process ID, so co-started routers decorrelate without
	// configuration.
	JitterSeed int64
	// Breaker sizes the per-backend circuit breakers. The zero value's
	// defaults (5 consecutive failures, 5s open) suit a fleet of local
	// shards; see BreakerConfig.
	Breaker BreakerConfig
	// DefaultBudget is the end-to-end deadline stamped on routed
	// requests that do not carry their own HeaderBudget (0: none). The
	// remaining budget is forwarded to shards on every hop, so peer
	// consults and planner waits are cut off when the client's window
	// closes, not after.
	DefaultBudget time.Duration
	// VerifyArtifacts re-verifies every 200 plan/artifact body against
	// its fingerprint before relaying it: a corrupt or truncated answer
	// becomes a breaker-counted failover to the next replica (whose
	// deterministic re-plan is byte-identical), never a wrong byte
	// served to a client.
	VerifyArtifacts bool
	// HedgeDelay staggers a second artifact read at the next replica
	// when the first has not answered within the delay; first verified
	// success wins (0 disables hedging). Applies to GET /v1/artifacts
	// only — reads are idempotent, plans are not free.
	HedgeDelay time.Duration
	// Faults wraps the router's backend client with this injected-fault
	// set (nil: no faults). Probes and stats fetches cross the same
	// sick wire as routed traffic.
	Faults *faultinject.Set
	// Client issues backend requests; nil uses a 30s-timeout client.
	Client *http.Client
	// Instance names this router in trace/span IDs and span logs
	// (default "graphpipe-lb").
	Instance string
	// TraceLog, when non-nil, receives one JSON line per request trace
	// (the -trace-log flag); nil disables span logging.
	TraceLog io.Writer
}

// Router is the fleet's front door: an http.Handler that consistent-
// hashes each request's canonical fingerprint to its owning backend.
// Create with NewRouter, release with Close.
type Router struct {
	cfg      RouterConfig
	ring     *Ring
	client   *http.Client
	sleep    func(time.Duration) // test seam for 429 backoff
	breakers map[string]*Breaker // per backend, immutable map

	mu       sync.Mutex
	down     map[string]bool
	inflight map[string]*atomic.Int64
	total    atomic.Int64

	routed             atomic.Uint64
	failovers          atomic.Uint64
	retried429         atomic.Uint64
	badRequests        atomic.Uint64
	noBackend          atomic.Uint64
	breakerRejections  atomic.Uint64
	deadlineRejections atomic.Uint64
	corruptBodies      atomic.Uint64
	hedged             atomic.Uint64
	hedgeWins          atomic.Uint64

	reg      *obs.Registry
	tracer   *obs.Tracer
	traceLog *obs.TraceLog
	latMu    sync.Mutex
	latency  map[string]*obs.Histogram // route → request latency

	stop chan struct{}
	done sync.WaitGroup
}

// NewRouter validates the config, builds the ring, and starts the
// health-check loop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	ring, err := NewRing(cfg.Backends, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if cfg.LoadFactor == 0 {
		cfg.LoadFactor = 1.25
	}
	if cfg.RetryShed == 0 {
		cfg.RetryShed = 1
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 2 * time.Second
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = int64(os.Getpid())
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Faults != nil {
		c := *cfg.Client
		c.Transport = cfg.Faults.Transport("router", c.Transport)
		cfg.Client = &c
	}
	if cfg.Instance == "" {
		cfg.Instance = "graphpipe-lb"
	}
	r := &Router{
		cfg:      cfg,
		ring:     ring,
		client:   cfg.Client,
		sleep:    time.Sleep,
		breakers: make(map[string]*Breaker, len(cfg.Backends)),
		down:     make(map[string]bool),
		inflight: make(map[string]*atomic.Int64, len(cfg.Backends)),
		reg:      obs.NewRegistry(),
		tracer:   obs.NewTracer(cfg.Instance),
		traceLog: obs.NewTraceLog(cfg.TraceLog),
		stop:     make(chan struct{}),
	}
	for _, b := range cfg.Backends {
		r.inflight[b] = &atomic.Int64{}
		r.breakers[b] = NewBreaker(cfg.Breaker)
	}
	r.registerMetrics()
	if cfg.HealthInterval > 0 {
		r.done.Add(1)
		go r.healthLoop()
	}
	return r, nil
}

// registerMetrics exposes the router's forwarding counters — the same
// atomics /v1/stats reports — plus per-backend breaker and load state
// on GET /metrics. Counters are scrape-time reads of the atomics, so
// the two surfaces cannot disagree.
func (r *Router) registerMetrics() {
	counters := []struct {
		name, help string
		v          *atomic.Uint64
	}{
		{"graphpipe_router_routed_total", "Requests accepted for forwarding.", &r.routed},
		{"graphpipe_router_failovers_total", "Attempts moved to the next ring replica.", &r.failovers},
		{"graphpipe_router_retried_429_total", "Shed responses retried on the same backend.", &r.retried429},
		{"graphpipe_router_bad_requests_total", "Requests rejected at the router.", &r.badRequests},
		{"graphpipe_router_no_backend_total", "Requests for which every replica failed.", &r.noBackend},
		{"graphpipe_router_breaker_rejections_total", "Attempts refused by an open circuit breaker.", &r.breakerRejections},
		{"graphpipe_router_deadline_rejections_total", "Requests cut off by their time budget at the router.", &r.deadlineRejections},
		{"graphpipe_router_corrupt_bodies_total", "Backend bodies refused after verification or a torn read.", &r.corruptBodies},
		{"graphpipe_router_hedged_total", "Artifact reads that launched a hedge request.", &r.hedged},
		{"graphpipe_router_hedge_wins_total", "Hedge requests that answered first.", &r.hedgeWins},
	}
	for _, c := range counters {
		r.reg.CounterFunc(c.name, c.help, nil, c.v.Load)
	}
	r.reg.GaugeFunc("graphpipe_router_in_flight", "Proxied requests currently in flight.", nil,
		func() float64 { return float64(r.total.Load()) })
	r.reg.CounterSetFunc("graphpipe_router_breaker_opens_total", "Breaker trips by backend.", "backend",
		func() map[string]uint64 {
			out := make(map[string]uint64, len(r.breakers))
			for b, br := range r.breakers {
				out[b] = br.Opens()
			}
			return out
		})
	r.reg.GaugeFunc("graphpipe_router_unhealthy", "Backends currently marked down.", nil,
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			n := 0
			for _, down := range r.down {
				if down {
					n++
				}
			}
			return float64(n)
		})
	if r.cfg.Faults != nil {
		r.reg.CounterSetFunc("graphpipe_faults_injected_total", "Injected faults by site/kind.", "site",
			r.cfg.Faults.Tallies)
	}
}

// observeRequest records one routed request's latency by route on the
// shared graphpipe_request_seconds family.
func (r *Router) observeRequest(route string, seconds float64) {
	r.latMu.Lock()
	if r.latency == nil {
		r.latency = make(map[string]*obs.Histogram)
	}
	h, ok := r.latency[route]
	if !ok {
		h = r.reg.Histogram("graphpipe_request_seconds",
			"HTTP request latency by route.", obs.Labels{"route": route}, nil)
		r.latency[route] = h
	}
	r.latMu.Unlock()
	h.Observe(seconds)
}

// Close stops the health-check loop. In-flight proxied requests finish
// on their own.
func (r *Router) Close() {
	close(r.stop)
	r.done.Wait()
}

// Handler returns the router's HTTP API — the same surface as one
// graphpiped, plus fleet-wide aggregation on /v1/stats:
//
//	POST /v1/plan              routed by canonical request fingerprint
//	POST /v1/eval              routed by artifact or request fingerprint
//	GET  /v1/artifacts/{fp}    routed by fingerprint
//	GET  /v1/stats             fleet-aggregated counters + router stats
//	GET  /metrics              router counters, Prometheus text format
//
// Every request runs under the obs trace middleware: the router is the
// fleet's trace root — it mints (or adopts) the X-Graphpipe-Trace ID,
// propagates it to the shard it picks, and on `?trace=1` wraps the
// shard's own span envelope in its own, so clients see one connected
// tree spanning both processes.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", r.handlePlan)
	mux.HandleFunc("POST /v1/eval", r.handleEval)
	mux.HandleFunc("GET /v1/artifacts/{fp}", r.handleArtifact)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	return obs.Middleware(mux, obs.HTTPOptions{
		Tracer:     r.tracer,
		Log:        r.traceLog,
		Route:      routerRoute,
		SpanPrefix: "router.",
		Observe:    r.observeRequest,
	})
}

// routerRoute names a request for span/metric labels — a closed set, so
// labels stay bounded no matter what paths clients probe.
func routerRoute(req *http.Request) string {
	switch {
	case req.URL.Path == "/v1/plan":
		return "plan"
	case req.URL.Path == "/v1/eval":
		return "eval"
	case strings.HasPrefix(req.URL.Path, "/v1/artifacts/"):
		return "artifact"
	case req.URL.Path == "/v1/stats":
		return "stats"
	case req.URL.Path == "/metrics":
		return "metrics"
	default:
		return "other"
	}
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.reg.WriteText(w)
}

func (r *Router) handlePlan(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req, r)
	if !ok {
		return
	}
	var preq service.Request
	if !decodeStrict(w, r, body, &preq) {
		return
	}
	fp, err := preq.CanonicalFingerprint()
	if err != nil {
		r.badRequests.Add(1)
		writeRouterError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	r.forward(w, req, fp, "/v1/plan", body)
}

func (r *Router) handleEval(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req, r)
	if !ok {
		return
	}
	var ereq service.EvalRequest
	if !decodeStrict(w, r, body, &ereq) {
		return
	}
	// An eval-by-fingerprint routes to the artifact's shard; an eval of
	// an embedded planning request routes exactly where the equivalent
	// /v1/plan would, so the plan-if-cold path lands on the plan's owner.
	fp := ereq.Fingerprint
	if fp == "" {
		var err error
		if fp, err = ereq.Request.CanonicalFingerprint(); err != nil {
			r.badRequests.Add(1)
			writeRouterError(w, http.StatusBadRequest, "bad_request", err)
			return
		}
	}
	r.forward(w, req, fp, "/v1/eval", body)
}

func (r *Router) handleArtifact(w http.ResponseWriter, req *http.Request) {
	fp := req.PathValue("fp")
	path := "/v1/artifacts/" + fp
	if r.cfg.HedgeDelay > 0 {
		r.forwardHedged(w, req, fp, path)
		return
	}
	r.forward(w, req, fp, path, nil)
}

// outcomeKind classifies one backend attempt for the failover loop.
type outcomeKind int

const (
	outcomeNone        outcomeKind = iota // no attempt was made
	outcomeOK                             // relayable answer (2xx–4xx, incl. exhausted 429s)
	outcomeBreakerOpen                    // not admitted; nothing was sent
	outcomeDeadline                       // the request's own budget died mid-attempt
	outcomeTransport                      // connection-level failure: mark down, fail over
	outcomeServerErr                      // backend answered >= 500: fail over, relayable as last resort
	outcomeCorrupt                        // body failed verification or tore mid-read: fail over
)

// String names an outcome kind for span attributes and logs.
func (k outcomeKind) String() string {
	switch k {
	case outcomeOK:
		return "ok"
	case outcomeBreakerOpen:
		return "breaker-open"
	case outcomeDeadline:
		return "deadline"
	case outcomeTransport:
		return "transport"
	case outcomeServerErr:
		return "server-error"
	case outcomeCorrupt:
		return "corrupt"
	default:
		return "none"
	}
}

// outcome is one backend attempt's result: a classification plus, when
// the backend produced an HTTP answer, the buffered response.
type outcome struct {
	kind    outcomeKind
	backend string
	status  int
	header  http.Header
	data    []byte
	err     error
}

// forward proxies one request to the fleet: candidates are the key's
// ring owners, filtered by health and reordered by the bounded-load
// rule, each gated by its circuit breaker. A connection failure marks
// the backend down and fails over to the next replica; a 429 is retried
// on the same backend with bounded backoff before propagating; a
// corrupt or torn 200 becomes a failover, never a wrong byte served.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, key, path string, body []byte) {
	r.routed.Add(1)
	ctx, cancel, ok := r.budgetCtx(w, req)
	if !ok {
		return
	}
	defer cancel()
	verifyFP := r.verifyKey(path, key)
	if traced(req) {
		verifyFP = ""
	}
	var last outcome
	sawBreaker := false
	for _, backend := range r.candidates(key) {
		if ctx.Err() != nil {
			r.finishDeadline(w, key, ctx)
			return
		}
		o := r.tryBackend(ctx, req, backend, key, path, body, verifyFP)
		switch o.kind {
		case outcomeOK:
			r.relayOutcome(w, o)
			return
		case outcomeBreakerOpen:
			r.breakerRejections.Add(1)
			sawBreaker = true
		case outcomeDeadline:
			r.finishDeadline(w, key, ctx)
			return
		case outcomeTransport:
			r.markDown(o.backend)
			r.failovers.Add(1)
			last = o
		default: // outcomeServerErr, outcomeCorrupt
			r.failovers.Add(1)
			last = o
		}
	}
	r.finishExhausted(w, key, last, sawBreaker)
}

// forwardHedged is forward for artifact reads with hedging: if the
// first replica has not answered within HedgeDelay, a second request
// launches at the next candidate and the first verified success wins.
// Reads are idempotent and cheap for the losing replica, so the hedge
// trades one duplicate GET for tail latency whenever the owner is slow
// — degraded, faulted, or mid-GC.
func (r *Router) forwardHedged(w http.ResponseWriter, req *http.Request, fp, path string) {
	r.routed.Add(1)
	ctx, cancel, ok := r.budgetCtx(w, req)
	if !ok {
		return
	}
	defer cancel()
	verifyFP := r.verifyKey(path, fp)
	if traced(req) {
		verifyFP = ""
	}
	cands := r.candidates(fp)
	results := make(chan outcome, len(cands))
	next, pending := 0, 0
	launch := func() bool {
		if next >= len(cands) {
			return false
		}
		backend := cands[next]
		next++
		pending++
		go func() { results <- r.tryBackend(ctx, req, backend, fp, path, nil, verifyFP) }()
		return true
	}
	launch()
	hedgeTimer := time.NewTimer(r.cfg.HedgeDelay)
	defer hedgeTimer.Stop()
	hedgeArmed := true
	var last outcome
	sawBreaker := false
	for pending > 0 {
		select {
		case o := <-results:
			pending--
			switch o.kind {
			case outcomeOK:
				if len(cands) > 0 && o.backend != cands[0] {
					r.hedgeWins.Add(1)
				}
				r.relayOutcome(w, o)
				return
			case outcomeBreakerOpen:
				r.breakerRejections.Add(1)
				sawBreaker = true
				launch()
			case outcomeDeadline:
				if pending == 0 {
					r.finishDeadline(w, fp, ctx)
					return
				}
			case outcomeTransport:
				r.markDown(o.backend)
				r.failovers.Add(1)
				last = o
				launch()
			default:
				r.failovers.Add(1)
				last = o
				launch()
			}
		case <-hedgeTimer.C:
			if hedgeArmed {
				hedgeArmed = false
				if launch() {
					r.hedged.Add(1)
				}
			}
		}
	}
	r.finishExhausted(w, fp, last, sawBreaker)
}

// tryBackend runs one breaker-guarded attempt against one backend,
// including same-backend 429 retries, buffering the response body and
// verifying it when asked. Exactly one breaker verdict (Record or
// Cancel) is issued per admitted attempt. The attempt is a span; the
// shard's own trace parents under it via the propagated headers, so a
// routed request's cross-process tree hangs off its backend attempts.
func (r *Router) tryBackend(ctx context.Context, orig *http.Request, backend, key, path string, body []byte, verifyFP string) outcome {
	ctx, span := obs.StartSpan(ctx, "backend.attempt", "backend", backend)
	o := r.tryBackendOnce(ctx, orig, backend, key, path, body, verifyFP)
	span.SetAttr("outcome", o.kind.String())
	span.End()
	return o
}

func (r *Router) tryBackendOnce(ctx context.Context, orig *http.Request, backend, key, path string, body []byte, verifyFP string) outcome {
	br := r.breakers[backend]
	if !br.Allow() {
		return outcome{kind: outcomeBreakerOpen, backend: backend}
	}
	resp, err := r.send(ctx, orig, backend, path, body)
	for attempt := 0; err == nil && resp.StatusCode == http.StatusTooManyRequests && attempt < r.cfg.RetryShed; attempt++ {
		// The shard told us when a worker should free up; honoring that
		// (capped) beats hammering the next replica, which does not own
		// the fingerprint's cache entry. Absent a Retry-After, back off
		// exponentially with deterministic jitter instead of blindly.
		delay := r.shedDelay(resp, key, attempt)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); delay > rem {
				delay = rem
			}
		}
		r.retried429.Add(1)
		if delay > 0 {
			_, waitSpan := obs.StartSpan(ctx, "retry.wait", "backend", backend)
			r.sleep(delay)
			waitSpan.End()
		}
		if ctx.Err() != nil {
			br.Cancel()
			return outcome{kind: outcomeDeadline, backend: backend, err: ctx.Err()}
		}
		resp, err = r.send(ctx, orig, backend, path, body)
	}
	if err != nil {
		if ctx.Err() != nil {
			// Our budget (or client) died mid-flight; that proves nothing
			// about the backend, so no breaker verdict either way.
			br.Cancel()
			return outcome{kind: outcomeDeadline, backend: backend, err: ctx.Err()}
		}
		br.Record(false)
		return outcome{kind: outcomeTransport, backend: backend, err: err}
	}
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes))
	resp.Body.Close()
	o := outcome{backend: backend, status: resp.StatusCode, header: resp.Header, data: data}
	switch {
	case resp.StatusCode >= http.StatusInternalServerError && resp.StatusCode != http.StatusGatewayTimeout:
		// A 504 is excluded: it reports our own forwarded budget dying
		// inside the shard, which says nothing about the shard's health.
		br.Record(false)
		o.kind = outcomeServerErr
		o.err = fmt.Errorf("backend %s: status %d", backend, resp.StatusCode)
	case rerr != nil:
		// The body tore mid-read: a cut wire, not a clean answer.
		br.Record(false)
		r.corruptBodies.Add(1)
		o.kind = outcomeCorrupt
		o.err = fmt.Errorf("backend %s: body: %w", backend, rerr)
	case verifyFP != "" && resp.StatusCode == http.StatusOK:
		if _, verr := strategy.VerifyArtifactBytes(verifyFP, data); verr != nil {
			br.Record(false)
			r.corruptBodies.Add(1)
			o.kind = outcomeCorrupt
			o.err = fmt.Errorf("backend %s: %w", backend, verr)
			return o
		}
		br.Record(true)
		o.kind = outcomeOK
	default:
		br.Record(true)
		o.kind = outcomeOK
	}
	return o
}

// traced reports whether a client asked for a span-tree envelope. The
// query is forwarded to the shard, whose enveloped body no longer
// hashes to its artifact fingerprint — so traced responses skip router-
// side verification. Tracing is a debugging surface, not a serving one.
func traced(req *http.Request) bool {
	return req.URL.Query().Get("trace") == "1"
}

// verifyKey returns the fingerprint a path's 200 bodies must hash to,
// or "" when the response is not verifiable (evals are reports, not
// artifacts) or verification is disabled.
func (r *Router) verifyKey(path, key string) string {
	if !r.cfg.VerifyArtifacts {
		return ""
	}
	if path == "/v1/plan" || strings.HasPrefix(path, "/v1/artifacts/") {
		return key
	}
	return ""
}

// budgetCtx derives the forwarding context from the request's time
// budget: an explicit HeaderBudget wins, then DefaultBudget; with
// neither, the request context passes through. ok=false means the
// response was already written (malformed header, or a budget that
// arrived spent).
func (r *Router) budgetCtx(w http.ResponseWriter, req *http.Request) (context.Context, context.CancelFunc, bool) {
	budget := r.cfg.DefaultBudget
	if h := req.Header.Get(service.HeaderBudget); h != "" {
		ms, err := strconv.Atoi(h)
		if err != nil {
			r.badRequests.Add(1)
			writeRouterError(w, http.StatusBadRequest, "bad_request",
				fmt.Errorf("%s: %q is not integer milliseconds", service.HeaderBudget, h))
			return nil, nil, false
		}
		if ms <= 0 {
			r.deadlineRejections.Add(1)
			writeRouterError(w, http.StatusGatewayTimeout, "deadline_exceeded",
				fmt.Errorf("request budget arrived spent (%s: %d)", service.HeaderBudget, ms))
			return nil, nil, false
		}
		budget = time.Duration(ms) * time.Millisecond
	}
	if budget <= 0 {
		return req.Context(), func() {}, true
	}
	ctx, cancel := context.WithTimeout(req.Context(), budget)
	return ctx, cancel, true
}

// finishDeadline ends a forward whose context died mid-flight: an
// expired budget is a counted 504; a client that hung up gets nothing.
func (r *Router) finishDeadline(w http.ResponseWriter, key string, ctx context.Context) {
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return
	}
	r.deadlineRejections.Add(1)
	writeRouterError(w, http.StatusGatewayTimeout, "deadline_exceeded",
		fmt.Errorf("fleet: request budget exhausted for %s", key))
}

// finishExhausted writes the response for a forward that ran out of
// candidates: the last backend 5xx if one exists (the healthiest truth
// left is the backend's own error body), a 503 when only open breakers
// were met, a 502 otherwise.
func (r *Router) finishExhausted(w http.ResponseWriter, key string, last outcome, sawBreaker bool) {
	r.noBackend.Add(1)
	if last.kind == outcomeServerErr {
		r.relayOutcome(w, last)
		return
	}
	if last.kind == outcomeNone && sawBreaker {
		writeRouterError(w, http.StatusServiceUnavailable, "breaker_open",
			fmt.Errorf("fleet: every replica's breaker is open for %s", key))
		return
	}
	err := last.err
	if err == nil {
		err = errors.New("no backends configured for key")
	}
	writeRouterError(w, http.StatusBadGateway, "no_backend",
		fmt.Errorf("fleet: every replica failed for %s: %w", key, err))
}

// send issues one backend request, tracking per-backend in-flight load
// for the bounded-load rule, forwarding the remaining time budget so
// the shard bounds its own peer consults and planner waits to what the
// client will still accept, and propagating the trace so the shard's
// spans parent under this attempt. A client's ?trace=1 is forwarded
// too: the shard answers with its own span envelope, which the
// router's middleware wraps again on the way out.
func (r *Router) send(ctx context.Context, orig *http.Request, backend, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	url := backend + path
	if traced(orig) {
		url += "?trace=1"
	}
	req, err := http.NewRequestWithContext(ctx, orig.Method, url, rd)
	if err != nil {
		return nil, err
	}
	obs.Propagate(ctx, req)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(service.HeaderBudget, strconv.FormatInt(ms, 10))
	}
	counter := r.inflight[backend]
	counter.Add(1)
	r.total.Add(1)
	resp, err := r.client.Do(req)
	counter.Add(-1)
	r.total.Add(-1)
	return resp, err
}

// relayOutcome copies a buffered backend response to the client,
// stamping which shard answered.
func (r *Router) relayOutcome(w http.ResponseWriter, o outcome) {
	for _, h := range []string{"Content-Type", service.HeaderFingerprint, service.HeaderCache, "Retry-After"} {
		if v := o.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(HeaderBackend, o.backend)
	w.WriteHeader(o.status)
	w.Write(o.data)
}

// candidates orders the key's ring owners for one forwarding attempt:
// healthy backends under the bounded-load capacity first (in ring
// order), then loaded-but-healthy ones, then — only if every backend is
// marked down — the full owner list, because a wrong "down" verdict
// must degrade to a slow request, not a refused one.
func (r *Router) candidates(key string) []string {
	owners := r.ring.Owners(key)
	cap := r.loadCapacity()
	var within, over []string
	r.mu.Lock()
	for _, b := range owners {
		if r.down[b] {
			continue
		}
		if cap > 0 && r.inflight[b].Load() >= cap {
			over = append(over, b)
		} else {
			within = append(within, b)
		}
	}
	r.mu.Unlock()
	if len(within) == 0 && len(over) == 0 {
		return owners
	}
	return append(within, over...)
}

// loadCapacity is the bounded-load ceiling: ceil(c * (total+1) / n),
// the classic consistent-hashing-with-bounded-loads capacity. 0 means
// the bound is disabled.
func (r *Router) loadCapacity() int64 {
	if r.cfg.LoadFactor <= 0 {
		return 0
	}
	n := int64(len(r.cfg.Backends))
	mean := float64(r.total.Load()+1) / float64(n)
	cap := int64(r.cfg.LoadFactor * mean)
	if float64(cap) < r.cfg.LoadFactor*mean {
		cap++
	}
	if cap < 1 {
		cap = 1
	}
	return cap
}

func (r *Router) markDown(backend string) {
	r.mu.Lock()
	r.down[backend] = true
	r.mu.Unlock()
}

// healthLoop actively probes every backend's /v1/stats, reviving
// backends that passive failures marked down and catching dead ones
// before traffic does. Probe rounds are spaced by jittered delays in
// [0.75, 1.25)·HealthInterval drawn from the router's seeded stream
// (the same sequence probeDelays reports): routers restarted together
// drift apart instead of synchronously hammering every shard each
// period.
func (r *Router) healthLoop() {
	defer r.done.Done()
	jitter := probeJitter(r.cfg.JitterSeed)
	timer := time.NewTimer(nextProbeDelay(&jitter, r.cfg.HealthInterval))
	defer timer.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-timer.C:
			for _, b := range r.cfg.Backends {
				healthy := r.probe(b)
				r.mu.Lock()
				r.down[b] = !healthy
				r.mu.Unlock()
			}
			timer.Reset(nextProbeDelay(&jitter, r.cfg.HealthInterval))
		}
	}
}

func (r *Router) probe(backend string) bool {
	req, err := http.NewRequest(http.MethodGet, backend+"/v1/stats", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// shedDelay is how long to wait before retrying a 429 on the same
// backend: the shard's Retry-After seconds when present (capped), else
// bounded exponential backoff with deterministic jitter keyed by the
// routed fingerprint.
func (r *Router) shedDelay(resp *http.Response, key string, attempt int) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > r.cfg.MaxRetryAfter {
			d = r.cfg.MaxRetryAfter
		}
		return d
	}
	return backoffDelay(250*time.Millisecond, r.cfg.MaxRetryAfter, key, attempt)
}

// readBody slurps a bounded request body.
func readBody(w http.ResponseWriter, req *http.Request, r *Router) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxBodyBytes))
	if err != nil {
		r.badRequests.Add(1)
		writeRouterError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("body: %w", err))
		return nil, false
	}
	return body, true
}

// decodeStrict mirrors the daemons' strict JSON decoding, so malformed
// requests die at the router with the same 400 shape they would get
// from a shard.
func decodeStrict(w http.ResponseWriter, r *Router, body []byte, dst any) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		r.badRequests.Add(1)
		writeRouterError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("body: %w", err))
		return false
	}
	return true
}

// writeRouterError matches the service's apiError wire shape.
func writeRouterError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error  string `json:"error"`
		Detail string `json:"detail"`
	}{code, err.Error()})
}
