package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graphpipe/internal/service"
)

// HeaderBackend names the shard that answered a routed request, so
// clients and smoke tests can see placement without consulting the ring.
const HeaderBackend = "X-Graphpipe-Backend"

// maxBodyBytes bounds routed request bodies. Planning requests are a few
// hundred bytes of JSON; a larger body is a client error, not traffic.
const maxBodyBytes = 1 << 20

// RouterConfig sizes a Router. Backends is required; everything else has
// serviceable defaults.
type RouterConfig struct {
	// Backends are the graphpiped base URLs the ring shards over.
	Backends []string
	// Replicas is the ring's virtual-node count per backend
	// (0: DefaultReplicas). Must match the daemons' own rings.
	Replicas int
	// LoadFactor is the bounded-load factor c: a backend already
	// carrying more than c times the fleet's mean in-flight routed load
	// is passed over for the next ring replica. <= 0 disables the bound
	// (strict ownership); default 1.25.
	LoadFactor float64
	// RetryShed is how many times a 429 from a backend is retried on
	// that same backend, honoring its Retry-After header, before the
	// 429 propagates to the client (default 1; negative disables).
	RetryShed int
	// MaxRetryAfter caps how long one shed retry will wait, whatever
	// the backend's Retry-After says (default 2s).
	MaxRetryAfter time.Duration
	// HealthInterval is the active health-check period (GET /v1/stats
	// per backend; default 2s, negative disables the background loop —
	// transport failures still mark backends down passively).
	HealthInterval time.Duration
	// Client issues backend requests; nil uses a 30s-timeout client.
	Client *http.Client
}

// Router is the fleet's front door: an http.Handler that consistent-
// hashes each request's canonical fingerprint to its owning backend.
// Create with NewRouter, release with Close.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	client *http.Client
	sleep  func(time.Duration) // test seam for 429 backoff

	mu       sync.Mutex
	down     map[string]bool
	inflight map[string]*atomic.Int64
	total    atomic.Int64

	routed      atomic.Uint64
	failovers   atomic.Uint64
	retried429  atomic.Uint64
	badRequests atomic.Uint64
	noBackend   atomic.Uint64

	stop chan struct{}
	done sync.WaitGroup
}

// NewRouter validates the config, builds the ring, and starts the
// health-check loop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	ring, err := NewRing(cfg.Backends, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if cfg.LoadFactor == 0 {
		cfg.LoadFactor = 1.25
	}
	if cfg.RetryShed == 0 {
		cfg.RetryShed = 1
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 2 * time.Second
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	r := &Router{
		cfg:      cfg,
		ring:     ring,
		client:   cfg.Client,
		sleep:    time.Sleep,
		down:     make(map[string]bool),
		inflight: make(map[string]*atomic.Int64, len(cfg.Backends)),
		stop:     make(chan struct{}),
	}
	for _, b := range cfg.Backends {
		r.inflight[b] = &atomic.Int64{}
	}
	if cfg.HealthInterval > 0 {
		r.done.Add(1)
		go r.healthLoop()
	}
	return r, nil
}

// Close stops the health-check loop. In-flight proxied requests finish
// on their own.
func (r *Router) Close() {
	close(r.stop)
	r.done.Wait()
}

// Handler returns the router's HTTP API — the same surface as one
// graphpiped, plus fleet-wide aggregation on /v1/stats:
//
//	POST /v1/plan              routed by canonical request fingerprint
//	POST /v1/eval              routed by artifact or request fingerprint
//	GET  /v1/artifacts/{fp}    routed by fingerprint
//	GET  /v1/stats             fleet-aggregated counters + router stats
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", r.handlePlan)
	mux.HandleFunc("POST /v1/eval", r.handleEval)
	mux.HandleFunc("GET /v1/artifacts/{fp}", r.handleArtifact)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	return mux
}

func (r *Router) handlePlan(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req, r)
	if !ok {
		return
	}
	var preq service.Request
	if !decodeStrict(w, r, body, &preq) {
		return
	}
	fp, err := preq.CanonicalFingerprint()
	if err != nil {
		r.badRequests.Add(1)
		writeRouterError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	r.forward(w, req, fp, "/v1/plan", body)
}

func (r *Router) handleEval(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req, r)
	if !ok {
		return
	}
	var ereq service.EvalRequest
	if !decodeStrict(w, r, body, &ereq) {
		return
	}
	// An eval-by-fingerprint routes to the artifact's shard; an eval of
	// an embedded planning request routes exactly where the equivalent
	// /v1/plan would, so the plan-if-cold path lands on the plan's owner.
	fp := ereq.Fingerprint
	if fp == "" {
		var err error
		if fp, err = ereq.Request.CanonicalFingerprint(); err != nil {
			r.badRequests.Add(1)
			writeRouterError(w, http.StatusBadRequest, "bad_request", err)
			return
		}
	}
	r.forward(w, req, fp, "/v1/eval", body)
}

func (r *Router) handleArtifact(w http.ResponseWriter, req *http.Request) {
	fp := req.PathValue("fp")
	r.forward(w, req, fp, "/v1/artifacts/"+fp, nil)
}

// forward proxies one request to the fleet: candidates are the key's
// ring owners, filtered by health and reordered by the bounded-load
// rule; a connection failure marks the backend down and fails over to
// the next replica; a 429 is retried on the same backend after its
// Retry-After delay before propagating.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, key, path string, body []byte) {
	r.routed.Add(1)
	var lastErr error
	for _, backend := range r.candidates(key) {
		resp, err := r.send(req, backend, path, body)
		for attempt := 0; err == nil && resp.StatusCode == http.StatusTooManyRequests && attempt < r.cfg.RetryShed; attempt++ {
			// The shard told us when a worker should free up; honoring
			// that (capped) beats hammering the next replica, which does
			// not own the fingerprint's cache entry.
			delay := retryAfterDelay(resp, r.cfg.MaxRetryAfter)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			r.retried429.Add(1)
			r.sleep(delay)
			resp, err = r.send(req, backend, path, body)
		}
		if err != nil {
			r.markDown(backend)
			r.failovers.Add(1)
			lastErr = err
			continue
		}
		r.relay(w, resp, backend)
		return
	}
	r.noBackend.Add(1)
	if lastErr == nil {
		lastErr = errors.New("no backends configured for key")
	}
	writeRouterError(w, http.StatusBadGateway, "no_backend",
		fmt.Errorf("fleet: every replica failed for %s: %w", key, lastErr))
}

// send issues one backend request, tracking per-backend in-flight load
// for the bounded-load rule.
func (r *Router) send(orig *http.Request, backend, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(orig.Context(), orig.Method, backend+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	counter := r.inflight[backend]
	counter.Add(1)
	r.total.Add(1)
	resp, err := r.client.Do(req)
	counter.Add(-1)
	r.total.Add(-1)
	return resp, err
}

// relay copies a backend response to the client, stamping which shard
// answered.
func (r *Router) relay(w http.ResponseWriter, resp *http.Response, backend string) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", service.HeaderFingerprint, service.HeaderCache, "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(HeaderBackend, backend)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// candidates orders the key's ring owners for one forwarding attempt:
// healthy backends under the bounded-load capacity first (in ring
// order), then loaded-but-healthy ones, then — only if every backend is
// marked down — the full owner list, because a wrong "down" verdict
// must degrade to a slow request, not a refused one.
func (r *Router) candidates(key string) []string {
	owners := r.ring.Owners(key)
	cap := r.loadCapacity()
	var within, over []string
	r.mu.Lock()
	for _, b := range owners {
		if r.down[b] {
			continue
		}
		if cap > 0 && r.inflight[b].Load() >= cap {
			over = append(over, b)
		} else {
			within = append(within, b)
		}
	}
	r.mu.Unlock()
	if len(within) == 0 && len(over) == 0 {
		return owners
	}
	return append(within, over...)
}

// loadCapacity is the bounded-load ceiling: ceil(c * (total+1) / n),
// the classic consistent-hashing-with-bounded-loads capacity. 0 means
// the bound is disabled.
func (r *Router) loadCapacity() int64 {
	if r.cfg.LoadFactor <= 0 {
		return 0
	}
	n := int64(len(r.cfg.Backends))
	mean := float64(r.total.Load()+1) / float64(n)
	cap := int64(r.cfg.LoadFactor * mean)
	if float64(cap) < r.cfg.LoadFactor*mean {
		cap++
	}
	if cap < 1 {
		cap = 1
	}
	return cap
}

func (r *Router) markDown(backend string) {
	r.mu.Lock()
	r.down[backend] = true
	r.mu.Unlock()
}

// healthLoop actively probes every backend's /v1/stats, reviving
// backends that passive failures marked down and catching dead ones
// before traffic does.
func (r *Router) healthLoop() {
	defer r.done.Done()
	tick := time.NewTicker(r.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			for _, b := range r.cfg.Backends {
				healthy := r.probe(b)
				r.mu.Lock()
				r.down[b] = !healthy
				r.mu.Unlock()
			}
		}
	}
}

func (r *Router) probe(backend string) bool {
	req, err := http.NewRequest(http.MethodGet, backend+"/v1/stats", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// retryAfterDelay parses a 429's Retry-After seconds, capped; absent or
// malformed headers get a small fixed backoff.
func retryAfterDelay(resp *http.Response, max time.Duration) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > max {
			d = max
		}
		return d
	}
	return 250 * time.Millisecond
}

// readBody slurps a bounded request body.
func readBody(w http.ResponseWriter, req *http.Request, r *Router) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxBodyBytes))
	if err != nil {
		r.badRequests.Add(1)
		writeRouterError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("body: %w", err))
		return nil, false
	}
	return body, true
}

// decodeStrict mirrors the daemons' strict JSON decoding, so malformed
// requests die at the router with the same 400 shape they would get
// from a shard.
func decodeStrict(w http.ResponseWriter, r *Router, body []byte, dst any) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		r.badRequests.Add(1)
		writeRouterError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("body: %w", err))
		return false
	}
	return true
}

// writeRouterError matches the service's apiError wire shape.
func writeRouterError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error  string `json:"error"`
		Detail string `json:"detail"`
	}{code, err.Error()})
}
