package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphpipe/internal/service"
	"graphpipe/internal/strategy"
)

// testArtifact builds a minimal valid artifact and returns (fingerprint,
// encoded bytes): the real thing the router's verification gate checks,
// without running a planner.
func testArtifact(t *testing.T) (string, []byte) {
	t.Helper()
	art := &strategy.Artifact{
		Model:     "resilience-model",
		Devices:   2,
		MiniBatch: 4,
		Planner:   strategy.PlannerMeta{Name: "graphpipe"},
		Strategy:  &strategy.Strategy{MiniBatch: 4, Planner: "graphpipe"},
	}
	data, err := strategy.EncodeArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	return art.Fingerprint(), data
}

// TestRouterBudgetExpiryReturns504 pins deadline propagation at the
// router: a request whose budget dies while the backend is still
// thinking gets a counted 504, and — because a dead budget proves
// nothing about backend health — the breaker must NOT trip, however
// many budgets die.
func TestRouterBudgetExpiryReturns504(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
	}))
	defer backend.Close()

	r, srv, _ := newTestRouter(t, RouterConfig{
		Backends: []string{backend.URL},
		Breaker:  BreakerConfig{FailureThreshold: 2},
	})

	for i := 0; i < 3; i++ {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/plan", strings.NewReader(planBody))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(service.HeaderBudget, "40")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("request %d: status = %d (%s), want 504", i, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "deadline_exceeded") {
			t.Fatalf("request %d: body %q missing deadline_exceeded code", i, body)
		}
	}
	if got := r.deadlineRejections.Load(); got != 3 {
		t.Errorf("deadline_rejections = %d, want 3", got)
	}
	// Three dead budgets crossed a threshold of two; a Record(false) per
	// expiry would have tripped the breaker on a healthy-but-slow backend.
	if got := r.breakers[backend.URL].State(); got != BreakerClosed {
		t.Errorf("breaker = %s after budget expiries, want closed (deadlines are not failures)", got)
	}
}

// TestRouterBudgetHeaderValidation pins the edges of the budget header:
// a spent budget is an immediate counted 504 and garbage is a 400,
// neither consuming a backend attempt.
func TestRouterBudgetHeaderValidation(t *testing.T) {
	var backendCalls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		backendCalls.Add(1)
	}))
	defer backend.Close()

	r, srv, _ := newTestRouter(t, RouterConfig{Backends: []string{backend.URL}})
	for _, tc := range []struct {
		header string
		want   int
	}{
		{"0", http.StatusGatewayTimeout},
		{"-5", http.StatusGatewayTimeout},
		{"soon", http.StatusBadRequest},
	} {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/plan", strings.NewReader(planBody))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(service.HeaderBudget, tc.header)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("budget %q: status = %d, want %d", tc.header, resp.StatusCode, tc.want)
		}
	}
	if got := backendCalls.Load(); got != 0 {
		t.Errorf("backend saw %d calls for rejected budgets, want 0", got)
	}
	if got := r.deadlineRejections.Load(); got != 2 {
		t.Errorf("deadline_rejections = %d, want 2 (spent budgets only)", got)
	}
}

// TestRouterForwardsRemainingBudget pins hop-by-hop budget propagation:
// the shard receives HeaderBudget holding the budget's remainder, so its
// own peer consults and planner waits are bounded by what the client
// will still accept.
func TestRouterForwardsRemainingBudget(t *testing.T) {
	var seen atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ms, err := strconv.Atoi(r.Header.Get(service.HeaderBudget))
		if err != nil {
			ms = -1
		}
		seen.Store(int64(ms))
		w.Write([]byte(`{"ok":true}`))
	}))
	defer backend.Close()

	_, srv, _ := newTestRouter(t, RouterConfig{
		Backends:      []string{backend.URL},
		DefaultBudget: 500 * time.Millisecond,
	})
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ms := seen.Load(); ms <= 0 || ms > 500 {
		t.Errorf("shard saw budget %dms, want in (0, 500] (the DefaultBudget's remainder)", ms)
	}
}

// TestRouterVerifiesBodiesAndFailsOver pins the no-wrong-bytes
// guarantee: a 200 artifact body that does not hash to its fingerprint
// is never relayed — the router counts it, records a breaker failure,
// and fails over to the next replica, whose verified bytes win.
func TestRouterVerifiesBodiesAndFailsOver(t *testing.T) {
	fp, good := testArtifact(t)
	corrupt := []byte(strings.Replace(string(good), "resilience-model", "tampered---model", 1))

	bodies := make(map[string][]byte)
	mk := func() *httptest.Server {
		var s *httptest.Server
		s = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write(bodies[s.URL])
		}))
		return s
	}
	b1, b2 := mk(), mk()
	defer b1.Close()
	defer b2.Close()

	r, srv, _ := newTestRouter(t, RouterConfig{
		Backends:        []string{b1.URL, b2.URL},
		VerifyArtifacts: true,
	})
	cands := r.candidates(fp)
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want both backends", cands)
	}
	bodies[cands[0]] = corrupt
	bodies[cands[1]] = good

	resp, err := http.Get(srv.URL + "/v1/artifacts/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 from the failover replica", resp.StatusCode)
	}
	if string(got) != string(good) {
		t.Fatal("router relayed bytes that are not the verified artifact")
	}
	if backend := resp.Header.Get(HeaderBackend); backend != cands[1] {
		t.Errorf("answered by %s, want the second candidate %s", backend, cands[1])
	}
	if got := r.corruptBodies.Load(); got != 1 {
		t.Errorf("corrupt_bodies = %d, want 1", got)
	}
	if got := r.failovers.Load(); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
}

// TestRouterVerificationRejectsWhenNoReplicaIsClean pins the give-up
// side of verification: when every replica serves corrupt bytes, the
// client gets an error status — never the corrupt body with a 200.
func TestRouterVerificationRejectsWhenNoReplicaIsClean(t *testing.T) {
	fp, good := testArtifact(t)
	corrupt := []byte(strings.Replace(string(good), "resilience-model", "tampered---model", 1))

	mk := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write(corrupt)
		}))
	}
	b1, b2 := mk(), mk()
	defer b1.Close()
	defer b2.Close()

	r, srv, _ := newTestRouter(t, RouterConfig{
		Backends:        []string{b1.URL, b2.URL},
		VerifyArtifacts: true,
	})
	resp, err := http.Get(srv.URL + "/v1/artifacts/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d (%s), want 502 when no replica verifies", resp.StatusCode, body)
	}
	if got := r.corruptBodies.Load(); got != 2 {
		t.Errorf("corrupt_bodies = %d, want 2", got)
	}
}

// TestRouterHedgedArtifactRead pins hedging: when the owning replica
// sits on an artifact GET past HedgeDelay, a second read launches at the
// next replica and its verified answer wins, counted as a hedge win.
func TestRouterHedgedArtifactRead(t *testing.T) {
	fp, good := testArtifact(t)

	slow := make(map[string]bool)
	mk := func() *httptest.Server {
		var s *httptest.Server
		s = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if slow[s.URL] {
				select {
				case <-time.After(5 * time.Second):
				case <-r.Context().Done():
					return
				}
			}
			w.Write(good)
		}))
		return s
	}
	b1, b2 := mk(), mk()
	defer b1.Close()
	defer b2.Close()

	r, srv, _ := newTestRouter(t, RouterConfig{
		Backends:        []string{b1.URL, b2.URL},
		VerifyArtifacts: true,
		HedgeDelay:      20 * time.Millisecond,
	})
	cands := r.candidates(fp)
	slow[cands[0]] = true

	start := time.Now()
	resp, err := http.Get(srv.URL + "/v1/artifacts/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 from the hedge", resp.StatusCode)
	}
	if string(got) != string(good) {
		t.Fatal("hedged read relayed wrong bytes")
	}
	if backend := resp.Header.Get(HeaderBackend); backend != cands[1] {
		t.Errorf("answered by %s, want the hedge target %s", backend, cands[1])
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("hedged read took %v; the hedge should beat the slow owner by seconds", elapsed)
	}
	if got := r.hedged.Load(); got != 1 {
		t.Errorf("hedged = %d, want 1", got)
	}
	if got := r.hedgeWins.Load(); got != 1 {
		t.Errorf("hedge_wins = %d, want 1", got)
	}
}

// TestRouterBreakerTripAndRecovery drives the breaker through the HTTP
// surface: repeated backend 5xxs trip it (503 breaker_open while open),
// and once the open window elapses and the backend heals, half-open
// trial traffic re-closes it — the degrade-then-recover loop the chaos
// soak asserts at fleet scale.
func TestRouterBreakerTripAndRecovery(t *testing.T) {
	var healthy atomic.Bool
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"internal","detail":"injected"}`))
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer backend.Close()

	clk := newFakeClock()
	r, srv, _ := newTestRouter(t, RouterConfig{
		Backends: []string{backend.URL},
		Breaker: BreakerConfig{
			FailureThreshold: 2,
			OpenFor:          10 * time.Second,
			now:              clk.now,
		},
	})
	post := func() *http.Response {
		resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// Two failures trip the breaker; each relays the backend's own 500
	// (the healthiest truth left once every replica failed).
	for i := 0; i < 2; i++ {
		if resp := post(); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failure %d: status = %d, want relayed 500", i, resp.StatusCode)
		}
	}
	if got := r.breakers[backend.URL].State(); got != BreakerOpen {
		t.Fatalf("breaker = %s after threshold failures, want open", got)
	}

	// While open, requests are rejected without touching the backend.
	if resp := post(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker status = %d, want 503", resp.StatusCode)
	}
	if got := r.breakerRejections.Load(); got != 1 {
		t.Errorf("breaker_rejections = %d, want 1", got)
	}

	// Window elapses, backend heals: the half-open probe succeeds and
	// closes the circuit for good.
	clk.advance(10 * time.Second)
	healthy.Store(true)
	if resp := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open probe status = %d, want 200", resp.StatusCode)
	}
	if got := r.breakers[backend.URL].State(); got != BreakerClosed {
		t.Fatalf("breaker = %s after successful probe, want closed", got)
	}
	if resp := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status = %d, want 200", resp.StatusCode)
	}

	// The trip and states are visible in /v1/stats.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Router.BreakerOpens != 1 {
		t.Errorf("stats breaker_opens = %d, want 1", stats.Router.BreakerOpens)
	}
	if got := stats.Router.Breakers[backend.URL]; got != "closed" {
		t.Errorf("stats breakers[%s] = %q, want closed", backend.URL, got)
	}
}

// TestRouterBackendGatewayTimeoutIsNotABreakerFailure pins a subtle
// classification rule: a 504 from a shard reports the router's OWN
// forwarded budget dying inside it — counting it as a backend failure
// would let tight client budgets open breakers on healthy shards.
func TestRouterBackendGatewayTimeoutIsNotABreakerFailure(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGatewayTimeout)
		w.Write([]byte(`{"error":"deadline_exceeded","detail":"budget spent"}`))
	}))
	defer backend.Close()

	r, srv, _ := newTestRouter(t, RouterConfig{
		Backends: []string{backend.URL},
		Breaker:  BreakerConfig{FailureThreshold: 1},
	})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want the shard's 504 relayed", resp.StatusCode)
		}
	}
	if got := r.breakers[backend.URL].State(); got != BreakerClosed {
		t.Errorf("breaker = %s after relayed 504s (threshold 1), want closed", got)
	}
}
