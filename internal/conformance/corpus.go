package conformance

import "graphpipe/internal/synth"

// Corpus returns n specs distributed round-robin across every synth
// family, with seeds baseSeed, baseSeed+1, ... per family. The mapping
// from (n, baseSeed) to specs is a pure function: the CI job and a
// developer replaying "the 64-seed corpus" on a laptop check exactly
// the same models.
func Corpus(n int, baseSeed int64) []synth.Spec {
	fams := synth.Families()
	out := make([]synth.Spec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, synth.Spec{
			Family: fams[i%len(fams)],
			Seed:   baseSeed + int64(i/len(fams)),
		})
	}
	return out
}
