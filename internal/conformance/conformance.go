// Package conformance is the cross-planner, cross-backend invariant
// suite over the synthetic model corpus (internal/synth). Where the
// unit tests pin each layer against hand-built paper models, this
// package checks the properties the whole stack promises on *any*
// valid series-parallel model, for every registered planner and every
// registered evaluation backend:
//
//	admissible            every produced strategy satisfies the C1–C4
//	                      validity conditions (strategy.Validate)
//	backend-parity        the sim and runtime backends produce
//	                      field-identical eval.Reports for the same plan
//	determinism           parallel vs sequential search, repeated runs,
//	                      and fresh vs probe-spanning DP memos all emit
//	                      byte-identical serialized artifacts
//	fingerprint-roundtrip Artifact.Fingerprint and the serialized bytes
//	                      survive plan → encode → decode → re-encode
//	device-monotonicity   on symmetric topologies with the proportional
//	                      mini-batch pairing, more devices never lose
//	                      throughput (within tolerance)
//	warm-cold-equivalence replanning a perturbed request warm-started
//	                      from a prior search's DP memo snapshot emits
//	                      an artifact byte-identical to a cold plan of
//	                      the same request
//
// On a violation the harness shrinks the failing spec to a minimal
// model that still fails (Shrink), so a red corpus run hands the
// debugger a small replayable graph instead of a random large one:
// every Violation carries both the original and the minimized spec
// string, replayable with `graphpipe synth -spec <s>` and
// `go test ./internal/conformance -conformance.replay=<s>`.
package conformance

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"time"

	"graphpipe/internal/baselines/piper"
	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/eval"
	"graphpipe/internal/graph"
	"graphpipe/internal/memosnap"
	"graphpipe/internal/models"
	"graphpipe/internal/planner"
	"graphpipe/internal/strategy"
	"graphpipe/internal/synth"
)

// Invariant names one checked property.
type Invariant string

// The six invariants, in the order they are checked per spec.
const (
	InvAdmissible   Invariant = "admissible"
	InvDeterminism  Invariant = "determinism"
	InvFingerprint  Invariant = "fingerprint-roundtrip"
	InvParity       Invariant = "backend-parity"
	InvMonotonicity Invariant = "device-monotonicity"
	InvWarmCold     Invariant = "warm-cold-equivalence"
)

// Invariants lists every invariant in check order.
func Invariants() []Invariant {
	return []Invariant{InvAdmissible, InvDeterminism, InvFingerprint, InvParity, InvMonotonicity, InvWarmCold}
}

// Failure labels that are not one of the five invariants: the harness's
// own preconditions. They get distinct labels so Shrink's like-for-like
// predicate can never drift from (say) an admissibility violation onto
// a spec that merely fails to generate or to plan.
const (
	// InvGeneration marks a spec the generator rejected — a synth bug
	// (or a shrink candidate that left the valid range; those are
	// skipped by the minimizer, not reported).
	InvGeneration Invariant = "model-generation"
	// InvPlannerFailure marks a planner erroring on a feasible corpus
	// model (budget exhaustion excepted — that is a skip).
	InvPlannerFailure Invariant = "planner-failure"
)

// Config scopes a conformance run. The zero value checks every
// registered planner and backend at the default device counts.
type Config struct {
	// Planners defaults to every registered planner.
	Planners []string
	// Backends defaults to every registered evaluation backend.
	Backends []string
	// Devices is the cluster size of the single-device-count invariants
	// (default 4: one full Summit node).
	Devices int
	// MonotonicityDevices is the ascending device sweep of the
	// monotonicity invariant (default {2, 4}); each point uses the
	// proportional synth.DefaultMiniBatch pairing.
	MonotonicityDevices []int
	// MonotonicityTolerance is the allowed relative throughput loss
	// when devices increase (default 0.02). A strict zero would flag
	// planners for real scheduling noise near the communication
	// crossover, not for bugs.
	MonotonicityTolerance float64
	// PiperBudget bounds the exhaustive baseline's states+steps so one
	// adversarial seed cannot stall a corpus run (default 5e6; its
	// ErrSearchExplosion is recorded as a skip, not a violation —
	// exceeding the budget is that planner's documented behavior).
	PiperBudget int
	// Shrink minimizes failing specs before reporting (default on; the
	// Shrink field disables it for harness tests that want raw specs).
	DisableShrink bool
}

func (c Config) withDefaults() Config {
	if len(c.Planners) == 0 {
		c.Planners = planner.Names()
	}
	if len(c.Backends) == 0 {
		c.Backends = eval.Names()
	}
	if c.Devices == 0 {
		c.Devices = 4
	}
	if len(c.MonotonicityDevices) == 0 {
		c.MonotonicityDevices = []int{2, 4}
	}
	if c.MonotonicityTolerance == 0 {
		c.MonotonicityTolerance = 0.02
	}
	if c.PiperBudget == 0 {
		c.PiperBudget = 5_000_000
	}
	return c
}

// Violation is one invariant failure, carrying everything needed to
// replay it: the spec that failed and the shrunken minimal spec.
type Violation struct {
	Invariant Invariant  `json:"invariant"`
	Planner   string     `json:"planner"`
	Backend   string     `json:"backend,omitempty"`
	Spec      synth.Spec `json:"spec"`
	// Minimal is the smallest spec Shrink found that still fails this
	// (invariant, planner, backend) check; equal to Spec when shrinking
	// is disabled or no smaller spec fails.
	Minimal synth.Spec `json:"minimal_spec"`
	Detail  string     `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s[%s%s]: %s (spec %s, minimal %s)",
		v.Invariant, v.Planner, optBackend(v.Backend), v.Detail, v.Spec, v.Minimal)
}

func optBackend(b string) string {
	if b == "" {
		return ""
	}
	return "/" + b
}

// Report summarizes a corpus run.
type Report struct {
	// Specs counts corpus specs checked.
	Specs int
	// Families are the distinct families covered.
	Families []string
	// Planners and Backends echo the resolved Config scope.
	Planners []string
	Backends []string
	// Skips records (spec, planner) cells skipped for documented planner
	// limits (Piper's search explosion), so silent holes in coverage are
	// visible in the summary.
	Skips []string
	// Violations lists every invariant failure, minimized.
	Violations []Violation
}

// CheckCorpus runs the full invariant suite over every spec.
func CheckCorpus(specs []synth.Spec, cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{Planners: cfg.Planners, Backends: cfg.Backends}
	fams := map[string]bool{}
	for _, spec := range specs {
		rep.Specs++
		fams[spec.Family] = true
		vs, skips := CheckSpec(spec, cfg)
		rep.Violations = append(rep.Violations, vs...)
		rep.Skips = append(rep.Skips, skips...)
	}
	for fam := range fams {
		rep.Families = append(rep.Families, fam)
	}
	sort.Strings(rep.Families)
	return rep
}

// CheckSpec runs all six invariants for one spec across the config's
// planner × backend grid, shrinking each violation to a minimal spec.
func CheckSpec(spec synth.Spec, cfg Config) ([]Violation, []string) {
	cfg = cfg.withDefaults()
	rs, err := synth.Resolve(spec)
	if err != nil {
		return []Violation{{Invariant: InvGeneration, Spec: spec, Minimal: spec, Detail: err.Error()}}, nil
	}
	var out []Violation
	var skips []string
	for _, pl := range cfg.Planners {
		fails := checkPlanner(rs, pl, cfg)
		for _, f := range fails {
			if f.skip {
				skips = append(skips, fmt.Sprintf("%s on %s: %s", pl, rs, f.detail))
				continue
			}
			v := Violation{
				Invariant: f.invariant, Planner: pl, Backend: f.backend,
				Spec: rs, Minimal: rs, Detail: f.detail,
			}
			if !cfg.DisableShrink {
				v.Minimal = Shrink(rs, func(cand synth.Spec) bool {
					for _, cf := range checkPlanner(cand, pl, cfg) {
						if cf.invariant == f.invariant && cf.backend == f.backend && !cf.skip {
							return true
						}
					}
					return false
				})
			}
			out = append(out, v)
		}
	}
	return out, skips
}

// failure is one planner-level check outcome before it is wrapped into
// a Violation (or a skip) by CheckSpec.
type failure struct {
	invariant Invariant
	backend   string
	detail    string
	skip      bool
}

// checkPlanner runs every invariant for one (resolved spec, planner)
// cell and returns the failures. It is the unit Shrink re-runs, so it
// must stay deterministic and reasonably cheap.
func checkPlanner(rs synth.Spec, plannerName string, cfg Config) []failure {
	name := rs.String()
	g, mb, err := models.Build(name, 0, cfg.Devices)
	if err != nil {
		return []failure{{invariant: InvGeneration, detail: fmt.Sprintf("generating model: %v", err)}}
	}
	topo := cluster.NewSummitTopology(cfg.Devices)
	model := costmodel.NewDefault(topo)

	// The base plan doubles as the warm-cold invariant's snapshot source:
	// a sink only observes the search, so attaching it cannot change the
	// base artifact (the determinism variants below re-prove that).
	var snap *memosnap.Snapshot
	baseOpts := planner.Options{Workers: 1, MemoSink: func(s *memosnap.Snapshot) { snap = s }}
	base, err := plan(g, topo, model, plannerName, mb, baseOpts, cfg)
	if err != nil {
		if errors.Is(err, piper.ErrSearchExplosion) {
			return []failure{{detail: fmt.Sprintf("search budget exhausted (%v)", err), skip: true}}
		}
		return []failure{{invariant: InvPlannerFailure,
			detail: fmt.Sprintf("planner failed on a feasible model: %v", err)}}
	}

	var fails []failure
	record := func(inv Invariant, backend, format string, args ...any) {
		fails = append(fails, failure{invariant: inv, backend: backend, detail: fmt.Sprintf(format, args...)})
	}

	// (a) Admissibility: C1–C4 against the generated graph and topology.
	if err := base.Validate(g, topo); err != nil {
		record(InvAdmissible, "", "strategy fails Validate: %v", err)
	}

	// (c) Determinism: the sequential, parallel, and (for graphpipe)
	// fresh-probe-memo searches must serialize to byte-identical
	// artifacts — search-engineering knobs must never change the answer.
	baseBytes, err := artifactBytes(name, cfg.Devices, mb, plannerName, base)
	if err != nil {
		record(InvFingerprint, "", "encoding artifact: %v", err)
		return fails
	}
	variants := []struct {
		label string
		opts  planner.Options
	}{
		{"parallel search (Workers=4)", planner.Options{Workers: 4}},
		{"repeated sequential search", planner.Options{Workers: 1}},
	}
	if plannerName == "graphpipe" {
		variants = append(variants,
			struct {
				label string
				opts  planner.Options
			}{"fresh-probe-memo search", planner.Options{Workers: 1, FreshProbeMemo: true}})
	}
	for _, v := range variants {
		st, err := plan(g, topo, model, plannerName, mb, v.opts, cfg)
		if err != nil {
			record(InvDeterminism, "", "%s failed: %v", v.label, err)
			continue
		}
		b, err := artifactBytes(name, cfg.Devices, mb, plannerName, st)
		if err != nil {
			record(InvDeterminism, "", "%s: encoding artifact: %v", v.label, err)
			continue
		}
		if !bytes.Equal(b, baseBytes) {
			record(InvDeterminism, "", "%s produced a different artifact than the sequential search", v.label)
		}
	}

	// (d) Fingerprint stability across plan → serialize → load: the
	// decoded artifact hashes to the same identity, re-encodes to the
	// same bytes, and its strategy still validates against a graph
	// rebuilt from metadata alone.
	art := skeletonArtifact(name, cfg.Devices, mb, plannerName, base)
	fpBefore := art.Fingerprint()
	decoded, err := strategy.DecodeArtifact(baseBytes)
	if err != nil {
		record(InvFingerprint, "", "decoding own artifact: %v", err)
	} else {
		if fpAfter := decoded.Fingerprint(); fpAfter != fpBefore {
			record(InvFingerprint, "", "fingerprint drifted across round trip: %s vs %s", fpBefore, fpAfter)
		}
		re, err := strategy.EncodeArtifact(decoded)
		if err != nil {
			record(InvFingerprint, "", "re-encoding: %v", err)
		} else if !bytes.Equal(append(re, '\n'), baseBytes) {
			record(InvFingerprint, "", "artifact bytes changed across decode/encode round trip")
		}
		g2, _, err := models.Build(decoded.Model, decoded.Branches, decoded.Devices)
		if err != nil {
			record(InvFingerprint, "", "rebuilding model from artifact metadata: %v", err)
		} else if err := decoded.Validate(g2, topo); err != nil {
			record(InvFingerprint, "", "round-tripped strategy fails Validate: %v", err)
		}
	}

	// (b) Backend parity: every backend's Report must match the first
	// backend's, field for field (Backend name aside).
	reports := map[string]*eval.Report{}
	for _, be := range cfg.Backends {
		rep, err := evaluate(g, topo, model, be, base)
		if err != nil {
			record(InvParity, be, "evaluation failed: %v", err)
			continue
		}
		reports[be] = rep
	}
	if ref := reports[cfg.Backends[0]]; ref != nil {
		for _, be := range cfg.Backends[1:] {
			got := reports[be]
			if got == nil {
				continue
			}
			cp := *got
			cp.Backend = ref.Backend
			if !reflect.DeepEqual(&cp, ref) {
				record(InvParity, be, "report differs from %s: %s vs %s throughput %.6g vs %.6g",
					cfg.Backends[0], be, cfg.Backends[0], got.Throughput, ref.Throughput)
			}
		}
	}

	// (e) Monotonicity: sweeping devices up with the proportional
	// mini-batch pairing must not lose throughput on the symmetric
	// default topology. The search depends only on the device count, so
	// each sweep point plans once and every backend evaluates that one
	// strategy.
	type sweepPoint struct {
		devs  int
		topo  *cluster.Topology
		model costmodel.Model
		st    *strategy.Strategy
	}
	var sweep []sweepPoint
	for _, devs := range cfg.MonotonicityDevices {
		pt := sweepPoint{devs: devs, topo: cluster.NewSummitTopology(devs)}
		pt.model = costmodel.NewDefault(pt.topo)
		dmb := synth.DefaultMiniBatch(devs)
		if devs == cfg.Devices && dmb == mb {
			pt.st = base
		} else {
			st, err := plan(g, pt.topo, pt.model, plannerName, dmb, planner.Options{Workers: 1}, cfg)
			if err != nil {
				if errors.Is(err, piper.ErrSearchExplosion) {
					fails = append(fails, failure{skip: true,
						detail: fmt.Sprintf("search budget exhausted at %d devices (%v)", devs, err)})
				} else {
					record(InvMonotonicity, "", "planning at %d devices failed: %v", devs, err)
				}
				continue // the sweep simply lacks this point
			}
			pt.st = st
		}
		sweep = append(sweep, pt)
	}
	for _, be := range cfg.Backends {
		prevDevs, prevTP := 0, 0.0
		for _, pt := range sweep {
			rep := reports[be] // parity already evaluated the base point
			if pt.st != base || rep == nil {
				var err error
				rep, err = evaluate(g, pt.topo, pt.model, be, pt.st)
				if err != nil {
					record(InvMonotonicity, be, "evaluating at %d devices failed: %v", pt.devs, err)
					prevDevs, prevTP = 0, 0
					continue
				}
			}
			if prevDevs > 0 && rep.Throughput < prevTP*(1-cfg.MonotonicityTolerance) {
				record(InvMonotonicity, be,
					"throughput fell from %.6g samples/s at %d devices to %.6g at %d (tolerance %.0f%%)",
					prevTP, prevDevs, rep.Throughput, pt.devs, cfg.MonotonicityTolerance*100)
			}
			prevDevs, prevTP = pt.devs, rep.Throughput
		}
	}

	// (f) Warm≡cold equivalence: replanning a perturbed request (fewer
	// devices — real memo reuse; a doubled mini-batch — no matching
	// search, so the import must silently degrade) warm-started from the
	// base plan's snapshot yields an artifact byte-identical to a cold
	// plan of the same perturbed request. Planners without memoized
	// searches ignore WarmMemo, which is itself the property worth
	// pinning: the option must never perturb their answer.
	perturbations := []struct {
		label    string
		devs, mb int
	}{
		{"devices/2", cfg.Devices / 2, mb},
		{"mini-batch x2", cfg.Devices, 2 * mb},
	}
	for _, pt := range perturbations {
		if pt.devs < 1 {
			continue
		}
		ptopo, pmodel := topo, model
		if pt.devs != cfg.Devices {
			ptopo = cluster.NewSummitTopology(pt.devs)
			pmodel = costmodel.NewDefault(ptopo)
		}
		coldSt, err := plan(g, ptopo, pmodel, plannerName, pt.mb, planner.Options{Workers: 1}, cfg)
		if err != nil {
			if errors.Is(err, piper.ErrSearchExplosion) {
				fails = append(fails, failure{skip: true,
					detail: fmt.Sprintf("search budget exhausted at %s (%v)", pt.label, err)})
			} else {
				record(InvWarmCold, "", "cold plan at %s failed: %v", pt.label, err)
			}
			continue
		}
		warmOpts := planner.Options{Workers: 1,
			WarmMemo: func(memosnap.Key) *memosnap.Snapshot { return snap }}
		warmSt, err := plan(g, ptopo, pmodel, plannerName, pt.mb, warmOpts, cfg)
		if err != nil {
			record(InvWarmCold, "", "warm plan at %s failed where cold succeeded: %v", pt.label, err)
			continue
		}
		coldBytes, err := artifactBytes(name, pt.devs, pt.mb, plannerName, coldSt)
		if err != nil {
			record(InvWarmCold, "", "encoding cold artifact at %s: %v", pt.label, err)
			continue
		}
		warmBytes, err := artifactBytes(name, pt.devs, pt.mb, plannerName, warmSt)
		if err != nil {
			record(InvWarmCold, "", "encoding warm artifact at %s: %v", pt.label, err)
			continue
		}
		if !bytes.Equal(warmBytes, coldBytes) {
			record(InvWarmCold, "", "warm-started plan at %s diverged from the cold plan", pt.label)
		}
	}
	return fails
}

// plan runs one planner search with the conformance budget applied.
func plan(g *graph.Graph, topo *cluster.Topology, model costmodel.Model,
	plannerName string, mb int, opts planner.Options, cfg Config) (*strategy.Strategy, error) {
	pl, err := planner.Get(plannerName)
	if err != nil {
		return nil, err
	}
	opts.CostModel = model
	opts.StateBudget = cfg.PiperBudget
	opts.Timeout = time.Minute
	st, _, err := pl.Plan(g, topo, mb, opts)
	return st, err
}

// evaluate runs one backend evaluation.
func evaluate(g *graph.Graph, topo *cluster.Topology, model costmodel.Model,
	backend string, st *strategy.Strategy) (*eval.Report, error) {
	ev, err := eval.Get(backend)
	if err != nil {
		return nil, err
	}
	return ev.Evaluate(g, topo, st, eval.Options{CostModel: model})
}

// skeletonArtifact wraps a strategy with identity metadata only — no
// wall-clock or DP-state statistics — so two searches that found the
// same strategy serialize to the same bytes.
func skeletonArtifact(model string, devices, mb int, plannerName string, st *strategy.Strategy) *strategy.Artifact {
	return &strategy.Artifact{
		Model:     model,
		Devices:   devices,
		MiniBatch: mb,
		Planner:   strategy.PlannerMeta{Name: plannerName},
		Strategy:  st,
	}
}

// artifactBytes serializes a strategy in the service's on-disk artifact
// framing (trailing newline included).
func artifactBytes(model string, devices, mb int, plannerName string, st *strategy.Strategy) ([]byte, error) {
	data, err := strategy.EncodeArtifact(skeletonArtifact(model, devices, mb, plannerName, st))
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
