// Package conformance is the cross-planner, cross-backend invariant
// suite over the synthetic model corpus (internal/synth). Where the
// unit tests pin each layer against hand-built paper models, this
// package checks the properties the whole stack promises on *any*
// valid series-parallel model, for every registered planner and every
// registered evaluation backend:
//
//	admissible            every produced strategy satisfies the C1–C4
//	                      validity conditions (strategy.Validate)
//	backend-parity        the sim and runtime backends produce
//	                      field-identical eval.Reports for the same plan
//	determinism           parallel vs sequential search, repeated runs,
//	                      and fresh vs probe-spanning DP memos all emit
//	                      byte-identical serialized artifacts
//	fingerprint-roundtrip Artifact.Fingerprint and the serialized bytes
//	                      survive plan → encode → decode → re-encode
//	device-monotonicity   on symmetric topologies with the proportional
//	                      mini-batch pairing, more devices never lose
//	                      throughput (within tolerance)
//	warm-cold-equivalence replanning a perturbed request warm-started
//	                      from a prior search's DP memo snapshot emits
//	                      an artifact byte-identical to a cold plan of
//	                      the same request
//
// On a violation the harness shrinks the failing spec to a minimal
// model that still fails (Shrink), so a red corpus run hands the
// debugger a small replayable graph instead of a random large one:
// every Violation carries both the original and the minimized spec
// string, replayable with `graphpipe synth -spec <s>` and
// `go test ./internal/conformance -conformance.replay=<s>`.
package conformance

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"time"

	"graphpipe/internal/baselines/piper"
	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/eval"
	"graphpipe/internal/graph"
	"graphpipe/internal/memosnap"
	"graphpipe/internal/models"
	"graphpipe/internal/planner"
	"graphpipe/internal/strategy"
	"graphpipe/internal/synth"
)

// Invariant names one checked property.
type Invariant string

// The eight invariants, in the order they are checked per spec.
const (
	InvAdmissible   Invariant = "admissible"
	InvDeterminism  Invariant = "determinism"
	InvFingerprint  Invariant = "fingerprint-roundtrip"
	InvParity       Invariant = "backend-parity"
	InvMonotonicity Invariant = "device-monotonicity"
	InvWarmCold     Invariant = "warm-cold-equivalence"
	// InvPlacement (invariant g) pins the placement-aware refactor to its
	// predecessor: on a flat topology — where placement provably cannot
	// matter — the placement-aware search must emit an artifact
	// byte-identical to the placement-oblivious reference arm
	// (planner.Options.PlacementOblivious). graphpipe only.
	InvPlacement Invariant = "placement-conformance"
	// InvHeteroBound is the heterogeneous admissibility bound: a plan for
	// a heterogeneous/hierarchical topology can never claim a better
	// iteration time (the planner's objective: bottleneck time-per-sample
	// scaled by the pipeline-fill term) than the plan for the flat
	// homogeneous topology that dominates it device-for-device and
	// link-for-link (fastest class, fastest link everywhere). Only
	// checked when the run pins a non-default topology. graphpipe only.
	InvHeteroBound Invariant = "hetero-admissibility"
)

// Invariants lists every invariant in check order.
func Invariants() []Invariant {
	return []Invariant{InvAdmissible, InvDeterminism, InvFingerprint, InvParity,
		InvMonotonicity, InvWarmCold, InvPlacement, InvHeteroBound}
}

// Failure labels that are not one of the five invariants: the harness's
// own preconditions. They get distinct labels so Shrink's like-for-like
// predicate can never drift from (say) an admissibility violation onto
// a spec that merely fails to generate or to plan.
const (
	// InvGeneration marks a spec the generator rejected — a synth bug
	// (or a shrink candidate that left the valid range; those are
	// skipped by the minimizer, not reported).
	InvGeneration Invariant = "model-generation"
	// InvPlannerFailure marks a planner erroring on a feasible corpus
	// model (budget exhaustion excepted — that is a skip).
	InvPlannerFailure Invariant = "planner-failure"
)

// Config scopes a conformance run. The zero value checks every
// registered planner and backend at the default device counts.
type Config struct {
	// Planners defaults to every registered planner.
	Planners []string
	// Backends defaults to every registered evaluation backend.
	Backends []string
	// Devices is the cluster size of the single-device-count invariants
	// (default 4: one full Summit node).
	Devices int
	// Topology pins the cluster shape for the run (a models.Topology
	// name); empty selects the Summit preset. A pinned topology describes
	// one cluster at one size, so the device-count sweeps — monotonicity
	// and the devices/2 warm-cold perturbation — are skipped, and the
	// heterogeneous admissibility bound is checked instead.
	Topology string
	// MonotonicityDevices is the ascending device sweep of the
	// monotonicity invariant (default {2, 4}); each point uses the
	// proportional synth.DefaultMiniBatch pairing.
	MonotonicityDevices []int
	// MonotonicityTolerance is the allowed relative throughput loss
	// when devices increase (default 0.02). A strict zero would flag
	// planners for real scheduling noise near the communication
	// crossover, not for bugs.
	MonotonicityTolerance float64
	// PiperBudget bounds the exhaustive baseline's states+steps so one
	// adversarial seed cannot stall a corpus run (default 5e6; its
	// ErrSearchExplosion is recorded as a skip, not a violation —
	// exceeding the budget is that planner's documented behavior).
	PiperBudget int
	// AdmissibilityTolerance is the allowed relative slack of the
	// heterogeneous admissibility bound (default 0.02): the binary search
	// quantizes both sides' bottleneck TPS, so a strict comparison would
	// flag probe granularity, not unsound placement costing.
	AdmissibilityTolerance float64
	// Shrink minimizes failing specs before reporting (default on; the
	// Shrink field disables it for harness tests that want raw specs).
	DisableShrink bool
}

func (c Config) withDefaults() Config {
	if len(c.Planners) == 0 {
		c.Planners = planner.Names()
	}
	if len(c.Backends) == 0 {
		c.Backends = eval.Names()
	}
	if c.Devices == 0 {
		c.Devices = 4
	}
	if len(c.MonotonicityDevices) == 0 {
		c.MonotonicityDevices = []int{2, 4}
	}
	if c.MonotonicityTolerance == 0 {
		c.MonotonicityTolerance = 0.02
	}
	if c.AdmissibilityTolerance == 0 {
		c.AdmissibilityTolerance = 0.02
	}
	if c.PiperBudget == 0 {
		c.PiperBudget = 5_000_000
	}
	return c
}

// Violation is one invariant failure, carrying everything needed to
// replay it: the spec that failed and the shrunken minimal spec.
type Violation struct {
	Invariant Invariant  `json:"invariant"`
	Planner   string     `json:"planner"`
	Backend   string     `json:"backend,omitempty"`
	Spec      synth.Spec `json:"spec"`
	// Topology is the cluster the run was pinned to (empty: Summit).
	Topology string `json:"topology,omitempty"`
	// Minimal is the smallest spec Shrink found that still fails this
	// (invariant, planner, backend) check; equal to Spec when shrinking
	// is disabled or no smaller spec fails.
	Minimal synth.Spec `json:"minimal_spec"`
	// MinimalTopology is the simplest topology that still fails together
	// with Minimal — the other half of the minimized (model, topology)
	// replay pair. Equal to Topology when no simpler topology fails.
	MinimalTopology string `json:"minimal_topology,omitempty"`
	Detail          string `json:"detail"`
}

func (v Violation) String() string {
	topo := ""
	if v.Topology != "" {
		topo = fmt.Sprintf(", topology %s, minimal topology %s", v.Topology, v.MinimalTopology)
	}
	return fmt.Sprintf("%s[%s%s]: %s (spec %s, minimal %s%s)",
		v.Invariant, v.Planner, optBackend(v.Backend), v.Detail, v.Spec, v.Minimal, topo)
}

func optBackend(b string) string {
	if b == "" {
		return ""
	}
	return "/" + b
}

// Report summarizes a corpus run.
type Report struct {
	// Specs counts corpus specs checked.
	Specs int
	// Families are the distinct families covered.
	Families []string
	// Planners and Backends echo the resolved Config scope.
	Planners []string
	Backends []string
	// Skips records (spec, planner) cells skipped for documented planner
	// limits (Piper's search explosion), so silent holes in coverage are
	// visible in the summary.
	Skips []string
	// Violations lists every invariant failure, minimized.
	Violations []Violation
}

// CheckCorpus runs the full invariant suite over every spec.
func CheckCorpus(specs []synth.Spec, cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{Planners: cfg.Planners, Backends: cfg.Backends}
	fams := map[string]bool{}
	for _, spec := range specs {
		rep.Specs++
		fams[spec.Family] = true
		vs, skips := CheckSpec(spec, cfg)
		rep.Violations = append(rep.Violations, vs...)
		rep.Skips = append(rep.Skips, skips...)
	}
	for fam := range fams {
		rep.Families = append(rep.Families, fam)
	}
	sort.Strings(rep.Families)
	return rep
}

// CheckSpec runs all six invariants for one spec across the config's
// planner × backend grid, shrinking each violation to a minimal spec.
func CheckSpec(spec synth.Spec, cfg Config) ([]Violation, []string) {
	cfg = cfg.withDefaults()
	rs, err := synth.Resolve(spec)
	if err != nil {
		return []Violation{{Invariant: InvGeneration, Spec: spec, Minimal: spec, Detail: err.Error()}}, nil
	}
	var out []Violation
	var skips []string
	for _, pl := range cfg.Planners {
		fails := checkPlanner(rs, pl, cfg)
		for _, f := range fails {
			if f.skip {
				skips = append(skips, fmt.Sprintf("%s on %s: %s", pl, rs, f.detail))
				continue
			}
			v := Violation{
				Invariant: f.invariant, Planner: pl, Backend: f.backend,
				Spec: rs, Topology: cfg.Topology,
				Minimal: rs, MinimalTopology: cfg.Topology, Detail: f.detail,
			}
			if !cfg.DisableShrink {
				// Like-for-like re-run of the same (invariant, backend) cell.
				stillFails := func(cand synth.Spec, topology string) bool {
					c := cfg
					c.Topology = topology
					for _, cf := range checkPlanner(cand, pl, c) {
						if cf.invariant == f.invariant && cf.backend == f.backend && !cf.skip {
							return true
						}
					}
					return false
				}
				// Shrink the model first at the pinned topology, then the
				// topology at the minimized model — the reported pair is the
				// two-sided minimum of that order.
				v.Minimal = Shrink(rs, func(cand synth.Spec) bool {
					return stillFails(cand, cfg.Topology)
				})
				v.MinimalTopology = ShrinkTopology(cfg.Topology, func(topology string) bool {
					return stillFails(v.Minimal, topology)
				})
			}
			out = append(out, v)
		}
	}
	return out, skips
}

// failure is one planner-level check outcome before it is wrapped into
// a Violation (or a skip) by CheckSpec.
type failure struct {
	invariant Invariant
	backend   string
	detail    string
	skip      bool
}

// checkPlanner runs every invariant for one (resolved spec, planner)
// cell and returns the failures. It is the unit Shrink re-runs, so it
// must stay deterministic and reasonably cheap.
func checkPlanner(rs synth.Spec, plannerName string, cfg Config) []failure {
	name := rs.String()
	g, mb, err := models.Build(name, 0, cfg.Devices)
	if err != nil {
		return []failure{{invariant: InvGeneration, detail: fmt.Sprintf("generating model: %v", err)}}
	}
	topo, err := models.Topology(cfg.Topology, cfg.Devices)
	if err != nil {
		return []failure{{invariant: InvGeneration, detail: fmt.Sprintf("resolving topology: %v", err)}}
	}
	canonTopo := topo.Canonical()
	model := costmodel.NewDefault(topo)

	// The base plan doubles as the warm-cold invariant's snapshot source:
	// a sink only observes the search, so attaching it cannot change the
	// base artifact (the determinism variants below re-prove that).
	var snap *memosnap.Snapshot
	baseOpts := planner.Options{Workers: 1, MemoSink: func(s *memosnap.Snapshot) { snap = s }}
	base, baseStats, err := plan(g, topo, model, plannerName, mb, baseOpts, cfg)
	if err != nil {
		if errors.Is(err, piper.ErrSearchExplosion) {
			return []failure{{detail: fmt.Sprintf("search budget exhausted (%v)", err), skip: true}}
		}
		return []failure{{invariant: InvPlannerFailure,
			detail: fmt.Sprintf("planner failed on a feasible model: %v", err)}}
	}

	var fails []failure
	record := func(inv Invariant, backend, format string, args ...any) {
		fails = append(fails, failure{invariant: inv, backend: backend, detail: fmt.Sprintf(format, args...)})
	}

	// (a) Admissibility: C1–C4 against the generated graph and topology.
	if err := base.Validate(g, topo); err != nil {
		record(InvAdmissible, "", "strategy fails Validate: %v", err)
	}

	// (c) Determinism: the sequential, parallel, and (for graphpipe)
	// fresh-probe-memo searches must serialize to byte-identical
	// artifacts — search-engineering knobs must never change the answer.
	baseBytes, err := artifactBytes(name, cfg.Devices, canonTopo, mb, plannerName, base)
	if err != nil {
		record(InvFingerprint, "", "encoding artifact: %v", err)
		return fails
	}
	variants := []struct {
		label string
		opts  planner.Options
	}{
		{"parallel search (Workers=4)", planner.Options{Workers: 4}},
		{"repeated sequential search", planner.Options{Workers: 1}},
	}
	if plannerName == "graphpipe" {
		variants = append(variants,
			struct {
				label string
				opts  planner.Options
			}{"fresh-probe-memo search", planner.Options{Workers: 1, FreshProbeMemo: true}})
	}
	for _, v := range variants {
		st, _, err := plan(g, topo, model, plannerName, mb, v.opts, cfg)
		if err != nil {
			record(InvDeterminism, "", "%s failed: %v", v.label, err)
			continue
		}
		b, err := artifactBytes(name, cfg.Devices, canonTopo, mb, plannerName, st)
		if err != nil {
			record(InvDeterminism, "", "%s: encoding artifact: %v", v.label, err)
			continue
		}
		if !bytes.Equal(b, baseBytes) {
			record(InvDeterminism, "", "%s produced a different artifact than the sequential search", v.label)
		}
	}

	// (g) Placement conformance: wherever placement provably cannot matter
	// — flat topology, every contiguous block cost-identical — the
	// placement-aware search must be a pure refactor of the oblivious one:
	// byte-identical artifacts, not merely equal throughput.
	if plannerName == "graphpipe" && topo.Flat() {
		st, _, err := plan(g, topo, model, plannerName, mb,
			planner.Options{Workers: 1, PlacementOblivious: true}, cfg)
		if err != nil {
			record(InvPlacement, "", "placement-oblivious reference search failed: %v", err)
		} else if b, err := artifactBytes(name, cfg.Devices, canonTopo, mb, plannerName, st); err != nil {
			record(InvPlacement, "", "encoding reference artifact: %v", err)
		} else if !bytes.Equal(b, baseBytes) {
			record(InvPlacement, "",
				"placement-aware artifact differs from the placement-oblivious reference on a flat topology")
		}
	}

	// (h) Heterogeneous admissibility: the plan for a pinned non-default
	// topology may never claim a better iteration time than the plan for
	// the flat homogeneous topology that dominates it (fastest device
	// class, fastest link, everywhere). If it does, the placement-aware
	// costing credited the heterogeneous cluster with capability it does
	// not have. The compared quantity is the planner's own objective —
	// the synchronous iteration estimate, bottleneck time-per-sample
	// scaled by the pipeline-fill term — not the raw bottleneck: a
	// deeper pipeline can trade a lower bottleneck for a longer fill, so
	// bottlenecks alone are not comparable across cluster shapes.
	if plannerName == "graphpipe" && cfg.Topology != "" {
		dom, err := dominatingTopology(topo)
		if err != nil {
			record(InvHeteroBound, "", "building dominating topology: %v", err)
		} else if domSt, domStats, err := plan(g, dom, costmodel.NewDefault(dom), plannerName, mb,
			planner.Options{Workers: 1}, cfg); err != nil {
			record(InvHeteroBound, "", "planning on the dominating flat topology failed: %v", err)
		} else {
			baseIter := iterationEstimate(base, baseStats, mb)
			domIter := iterationEstimate(domSt, domStats, mb)
			// The flat search is a heuristic (its DP keeps the in-flight-
			// minimal plan per state), so it can miss pipeline shapes the
			// hetero search was forced into by comm constraints. The bound
			// is therefore the better of the dominating search's own result
			// and the hetero plan's shape re-costed on the dominating
			// cluster: beating both means the placement-aware costing
			// itself was unsound, not merely the flat search incomplete.
			if re := recostIteration(g, base, costmodel.NewDefault(dom), mb); re < domIter {
				domIter = re
			}
			if baseIter < domIter*(1-cfg.AdmissibilityTolerance) {
				record(InvHeteroBound, "",
					"hetero plan claims %.6g s/iteration, the dominating flat topology only reaches %.6g (tolerance %.0f%%)",
					baseIter, domIter, cfg.AdmissibilityTolerance*100)
			}
		}
	}

	// (d) Fingerprint stability across plan → serialize → load: the
	// decoded artifact hashes to the same identity, re-encodes to the
	// same bytes, and its strategy still validates against a graph
	// rebuilt from metadata alone.
	art := skeletonArtifact(name, cfg.Devices, canonTopo, mb, plannerName, base)
	fpBefore := art.Fingerprint()
	decoded, err := strategy.DecodeArtifact(baseBytes)
	if err != nil {
		record(InvFingerprint, "", "decoding own artifact: %v", err)
	} else {
		if fpAfter := decoded.Fingerprint(); fpAfter != fpBefore {
			record(InvFingerprint, "", "fingerprint drifted across round trip: %s vs %s", fpBefore, fpAfter)
		}
		re, err := strategy.EncodeArtifact(decoded)
		if err != nil {
			record(InvFingerprint, "", "re-encoding: %v", err)
		} else if !bytes.Equal(append(re, '\n'), baseBytes) {
			record(InvFingerprint, "", "artifact bytes changed across decode/encode round trip")
		}
		g2, _, err := models.Build(decoded.Model, decoded.Branches, decoded.Devices)
		if err != nil {
			record(InvFingerprint, "", "rebuilding model from artifact metadata: %v", err)
		} else if err := decoded.Validate(g2, topo); err != nil {
			record(InvFingerprint, "", "round-tripped strategy fails Validate: %v", err)
		}
	}

	// (b) Backend parity: every backend's Report must match the first
	// backend's, field for field (Backend name aside).
	reports := map[string]*eval.Report{}
	for _, be := range cfg.Backends {
		rep, err := evaluate(g, topo, model, be, base)
		if err != nil {
			record(InvParity, be, "evaluation failed: %v", err)
			continue
		}
		reports[be] = rep
	}
	if ref := reports[cfg.Backends[0]]; ref != nil {
		for _, be := range cfg.Backends[1:] {
			got := reports[be]
			if got == nil {
				continue
			}
			cp := *got
			cp.Backend = ref.Backend
			if !reflect.DeepEqual(&cp, ref) {
				record(InvParity, be, "report differs from %s: %s vs %s throughput %.6g vs %.6g",
					cfg.Backends[0], be, cfg.Backends[0], got.Throughput, ref.Throughput)
			}
		}
	}

	// (e) Monotonicity: sweeping devices up with the proportional
	// mini-batch pairing must not lose throughput on the symmetric
	// default topology. The search depends only on the device count, so
	// each sweep point plans once and every backend evaluates that one
	// strategy. A pinned topology describes one cluster at one size, so
	// the sweep is skipped.
	if cfg.Topology == "" {
		type sweepPoint struct {
			devs  int
			topo  *cluster.Topology
			model costmodel.Model
			st    *strategy.Strategy
		}
		var sweep []sweepPoint
		for _, devs := range cfg.MonotonicityDevices {
			pt := sweepPoint{devs: devs, topo: cluster.NewSummitTopology(devs)}
			pt.model = costmodel.NewDefault(pt.topo)
			dmb := synth.DefaultMiniBatch(devs)
			if devs == cfg.Devices && dmb == mb {
				pt.st = base
			} else {
				st, _, err := plan(g, pt.topo, pt.model, plannerName, dmb, planner.Options{Workers: 1}, cfg)
				if err != nil {
					if errors.Is(err, piper.ErrSearchExplosion) {
						fails = append(fails, failure{skip: true,
							detail: fmt.Sprintf("search budget exhausted at %d devices (%v)", devs, err)})
					} else {
						record(InvMonotonicity, "", "planning at %d devices failed: %v", devs, err)
					}
					continue // the sweep simply lacks this point
				}
				pt.st = st
			}
			sweep = append(sweep, pt)
		}
		for _, be := range cfg.Backends {
			prevDevs, prevTP := 0, 0.0
			for _, pt := range sweep {
				rep := reports[be] // parity already evaluated the base point
				if pt.st != base || rep == nil {
					var err error
					rep, err = evaluate(g, pt.topo, pt.model, be, pt.st)
					if err != nil {
						record(InvMonotonicity, be, "evaluating at %d devices failed: %v", pt.devs, err)
						prevDevs, prevTP = 0, 0
						continue
					}
				}
				if prevDevs > 0 && rep.Throughput < prevTP*(1-cfg.MonotonicityTolerance) {
					record(InvMonotonicity, be,
						"throughput fell from %.6g samples/s at %d devices to %.6g at %d (tolerance %.0f%%)",
						prevTP, prevDevs, rep.Throughput, pt.devs, cfg.MonotonicityTolerance*100)
				}
				prevDevs, prevTP = pt.devs, rep.Throughput
			}
		}
	}

	// (f) Warm≡cold equivalence: replanning a perturbed request (fewer
	// devices — real memo reuse; a doubled mini-batch — no matching
	// search, so the import must silently degrade) warm-started from the
	// base plan's snapshot yields an artifact byte-identical to a cold
	// plan of the same perturbed request. Planners without memoized
	// searches ignore WarmMemo, which is itself the property worth
	// pinning: the option must never perturb their answer.
	perturbations := []struct {
		label    string
		devs, mb int
	}{
		{"devices/2", cfg.Devices / 2, mb},
		{"mini-batch x2", cfg.Devices, 2 * mb},
	}
	if cfg.Topology != "" {
		// A pinned topology cannot be resized; only the same-cluster
		// perturbation applies.
		perturbations = perturbations[1:]
	}
	for _, pt := range perturbations {
		if pt.devs < 1 {
			continue
		}
		ptopo, pmodel := topo, model
		if pt.devs != cfg.Devices {
			ptopo = cluster.NewSummitTopology(pt.devs)
			pmodel = costmodel.NewDefault(ptopo)
		}
		coldSt, _, err := plan(g, ptopo, pmodel, plannerName, pt.mb, planner.Options{Workers: 1}, cfg)
		if err != nil {
			if errors.Is(err, piper.ErrSearchExplosion) {
				fails = append(fails, failure{skip: true,
					detail: fmt.Sprintf("search budget exhausted at %s (%v)", pt.label, err)})
			} else {
				record(InvWarmCold, "", "cold plan at %s failed: %v", pt.label, err)
			}
			continue
		}
		warmOpts := planner.Options{Workers: 1,
			WarmMemo: func(memosnap.Key) *memosnap.Snapshot { return snap }}
		warmSt, _, err := plan(g, ptopo, pmodel, plannerName, pt.mb, warmOpts, cfg)
		if err != nil {
			record(InvWarmCold, "", "warm plan at %s failed where cold succeeded: %v", pt.label, err)
			continue
		}
		coldBytes, err := artifactBytes(name, pt.devs, ptopo.Canonical(), pt.mb, plannerName, coldSt)
		if err != nil {
			record(InvWarmCold, "", "encoding cold artifact at %s: %v", pt.label, err)
			continue
		}
		warmBytes, err := artifactBytes(name, pt.devs, ptopo.Canonical(), pt.mb, plannerName, warmSt)
		if err != nil {
			record(InvWarmCold, "", "encoding warm artifact at %s: %v", pt.label, err)
			continue
		}
		if !bytes.Equal(warmBytes, coldBytes) {
			record(InvWarmCold, "", "warm-started plan at %s diverged from the cold plan", pt.label)
		}
	}
	return fails
}

// plan runs one planner search with the conformance budget applied.
func plan(g *graph.Graph, topo *cluster.Topology, model costmodel.Model,
	plannerName string, mb int, opts planner.Options, cfg Config) (*strategy.Strategy, planner.Stats, error) {
	pl, err := planner.Get(plannerName)
	if err != nil {
		return nil, planner.Stats{}, err
	}
	opts.CostModel = model
	opts.StateBudget = cfg.PiperBudget
	opts.Timeout = time.Minute
	return pl.Plan(g, topo, mb, opts)
}

// iterationEstimate mirrors the planner's root objective: the bottleneck
// time-per-sample scaled by mini-batch plus the source stage's
// pipeline-fill surplus (in-flight samples beyond one micro-batch). This
// is the quantity the search minimizes, so it is the one that is
// monotone in hardware capability; the raw bottleneck is not, because a
// deeper pipeline lowers the bottleneck while lengthening the fill.
func iterationEstimate(st *strategy.Strategy, stats planner.Stats, miniBatch int) float64 {
	fill := 0
	if len(st.Stages) > 0 {
		src := &st.Stages[0]
		fill = src.InFlightSamples - src.Config.MicroBatch
	}
	return stats.BottleneckTPS * float64(miniBatch+fill)
}

// recostIteration charges an existing strategy against another
// topology's placement-oblivious costing — the same rule the planner's
// flat search applies to every candidate — and returns the iteration
// estimate it would have there.
func recostIteration(g *graph.Graph, st *strategy.Strategy, model costmodel.Model, miniBatch int) float64 {
	topo := model.Topology()
	bottleneck := 0.0
	for i := range st.Stages {
		s := &st.Stages[i]
		sc := costmodel.StageConfig{
			Ops:                s.Ops,
			MicroBatch:         s.Config.MicroBatch,
			DataPar:            len(s.Devices),
			InterNode:          topo.Len() > 4,
			InterNodeAllreduce: len(s.Devices) > 4,
		}
		if tps := model.TPS(g, sc, miniBatch); tps > bottleneck {
			bottleneck = tps
		}
	}
	fill := 0
	if len(st.Stages) > 0 {
		fill = st.Stages[0].InFlightSamples - st.Stages[0].Config.MicroBatch
	}
	return bottleneck * float64(miniBatch+fill)
}

// dominatingTopology builds the flat homogeneous topology that is
// pointwise at least as capable as t: every device gets the maximum of
// each per-class capability, every pair of devices the fastest link
// bandwidth and the lowest latency appearing anywhere in t's hierarchy.
// Any strategy feasible on t is feasible there at no higher cost, which
// is what makes its planned iteration time an admissible lower bound.
func dominatingTopology(t *cluster.Topology) (*cluster.Topology, error) {
	best := cluster.DeviceClass{Name: "best"}
	for _, c := range t.Classes() {
		best.MemoryBytes = math.Max(best.MemoryBytes, c.MemoryBytes)
		best.PeakFLOPS = math.Max(best.PeakFLOPS, c.PeakFLOPS)
		best.MemBandwidth = math.Max(best.MemBandwidth, c.MemBandwidth)
	}
	bw, lat := 0.0, math.Inf(1)
	for l := 0; l < t.LevelCount(); l++ {
		bw = math.Max(bw, math.Max(t.LevelDown(l), t.LevelUp(l)))
		lat = math.Min(lat, t.LevelLatency(l))
	}
	spec := cluster.Spec{
		Classes: []cluster.DeviceClass{best},
		Levels: []cluster.Level{{Name: "link", Width: t.Len(),
			DownBandwidth: bw, UpBandwidth: bw, Latency: lat}},
		Assign: make([]int, t.Len()),
	}
	return spec.Build()
}

// evaluate runs one backend evaluation.
func evaluate(g *graph.Graph, topo *cluster.Topology, model costmodel.Model,
	backend string, st *strategy.Strategy) (*eval.Report, error) {
	ev, err := eval.Get(backend)
	if err != nil {
		return nil, err
	}
	return ev.Evaluate(g, topo, st, eval.Options{CostModel: model})
}

// skeletonArtifact wraps a strategy with identity metadata only — no
// wall-clock or DP-state statistics — so two searches that found the
// same strategy serialize to the same bytes.
func skeletonArtifact(model string, devices int, topology string, mb int, plannerName string, st *strategy.Strategy) *strategy.Artifact {
	return &strategy.Artifact{
		Model:     model,
		Devices:   devices,
		Topology:  topology,
		MiniBatch: mb,
		Planner:   strategy.PlannerMeta{Name: plannerName},
		Strategy:  st,
	}
}

// artifactBytes serializes a strategy in the service's on-disk artifact
// framing (trailing newline included).
func artifactBytes(model string, devices int, topology string, mb int, plannerName string, st *strategy.Strategy) ([]byte, error) {
	data, err := strategy.EncodeArtifact(skeletonArtifact(model, devices, topology, mb, plannerName, st))
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
