package conformance_test

import (
	"fmt"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/conformance"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/models"
	"graphpipe/internal/planner"
	"graphpipe/internal/strategy"
	"graphpipe/internal/synth"
)

// TestHeteroTopologyCorpus sweeps every synth topology family against a
// small model slice: the full invariant suite per (model, topology) pair,
// including the heterogeneous admissibility bound and — on families that
// resolve to a flat homogeneous cluster — the placement-conformance
// byte-identity. graphpipe/sim only: the placement dimension lives in the
// graphpipe core, and the sim backend is the cheap deterministic one (CI
// widens the model slice with -conformance.seeds; backend parity across
// topologies is TestCorpus's job).
func TestHeteroTopologyCorpus(t *testing.T) {
	specs := conformance.Corpus(5, 1)
	for _, fam := range synth.TopoFamilies() {
		topology := synth.TopoSpec{Family: fam, Seed: 1}.String()
		t.Run(fam, func(t *testing.T) {
			rep := conformance.CheckCorpus(specs, conformance.Config{
				Planners: []string{"graphpipe"},
				Backends: []string{"sim"},
				Topology: topology,
			})
			for _, s := range rep.Skips {
				t.Logf("skip: %s", s)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
				t.Logf("replay: go test ./internal/conformance -run TestCorpus -conformance.replay=%q -conformance.topology=%q",
					v.Minimal, v.MinimalTopology)
			}
		})
	}
}

// heteroSpeedSpec is a pinned hetero-speed cluster: two double-speed
// devices (ids 0, 1) next to two baseline devices on a flat symmetric
// link, spelled explicitly so the test documents the grammar alongside
// the behavior.
func heteroSpeedSpec(t *testing.T) string {
	t.Helper()
	spec := cluster.Spec{
		Classes: []cluster.DeviceClass{
			{Name: "fast", MemoryBytes: 16e9, PeakFLOPS: 224e12, MemBandwidth: 900e9},
			{Name: "slow", MemoryBytes: 16e9, PeakFLOPS: 112e12, MemBandwidth: 900e9},
		},
		Levels: []cluster.Level{{Name: "link", Width: 4,
			DownBandwidth: 150e9, UpBandwidth: 150e9, Latency: 5e-6}},
		Assign: []int{0, 0, 1, 1},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return spec.Canonical()
}

// fastShare returns the fraction of the strategy's total FLOPs assigned
// to devices with ids below cut, charging each stage's FLOPs evenly
// across its (data-parallel) device group.
func fastShare(g *graph.Graph, st *strategy.Strategy, cut int) float64 {
	perDevice := make(map[cluster.DeviceID]float64)
	total := 0.0
	for i := range st.Stages {
		stage := &st.Stages[i]
		flops := g.SubgraphCosts(stage.Ops).FwdFLOPs
		total += flops
		for _, d := range stage.Devices {
			perDevice[d] += flops / float64(len(stage.Devices))
		}
	}
	fast := 0.0
	for d, f := range perDevice {
		if int(d) < cut {
			fast += f
		}
	}
	return fast / total
}

// TestHeteroSpeedFavorsFastDevices is the pinned acceptance behavior of
// placement-aware planning: on a cluster whose first two devices are
// twice as fast, the planner assigns a strictly larger share of the
// model's FLOPs to those devices than it does on the equivalent uniform
// cluster — the placement dimension is actually steering work, not just
// along for the ride.
func TestHeteroSpeedFavorsFastDevices(t *testing.T) {
	const devices = 4
	heteroName := heteroSpeedSpec(t)
	uniformName := fmt.Sprintf(
		"topo:explicit/classes=u:16e9:112e12:900e9/levels=link:%d:150e9:150e9:5e-6/assign=%dxu",
		devices, devices)

	pl, err := planner.Get("graphpipe")
	if err != nil {
		t.Fatal(err)
	}
	shareOn := func(name string) float64 {
		t.Helper()
		topo, err := models.Topology(name, devices)
		if err != nil {
			t.Fatal(err)
		}
		g, mb, err := models.Build("sequential", 0, devices)
		if err != nil {
			t.Fatal(err)
		}
		st, _, err := pl.Plan(g, topo, mb, planner.Options{
			Workers: 1, CostModel: costmodel.NewDefault(topo),
		})
		if err != nil {
			t.Fatalf("planning on %s: %v", name, err)
		}
		return fastShare(g, st, devices/2)
	}

	hetero := shareOn(heteroName)
	uniform := shareOn(uniformName)
	t.Logf("FLOPs share on devices 0-1: hetero %.3f, uniform %.3f", hetero, uniform)
	if hetero <= uniform {
		t.Errorf("hetero-speed plan gives the 2x-fast devices %.3f of the FLOPs, uniform plan gives %.3f — placement is not steering work",
			hetero, uniform)
	}
}

// TestShrinkTopology pins the topology minimizer: a failure independent
// of the cluster collapses to the Summit default, a failure needing any
// synth topology keeps the family but not necessarily the shape, and a
// topology-specific failure stays put.
func TestShrinkTopology(t *testing.T) {
	const hier = "topo:hierarchical/seed=9"
	if got := conformance.ShrinkTopology(hier, func(string) bool { return true }); got != "" {
		t.Errorf("always-failing predicate kept %q, want the Summit default", got)
	}
	if got := conformance.ShrinkTopology(hier, func(topology string) bool {
		return topology != ""
	}); got != "topo:uniform/seed=9" {
		t.Errorf("synth-only failure minimized to %q, want topo:uniform/seed=9", got)
	}
	if got := conformance.ShrinkTopology(hier, func(topology string) bool {
		return topology == hier
	}); got != hier {
		t.Errorf("topology-specific failure moved to %q, want %q", got, hier)
	}
	if got := conformance.ShrinkTopology("", func(string) bool { return true }); got != "" {
		t.Errorf("default topology shrank to %q", got)
	}
}
