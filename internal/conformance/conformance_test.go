package conformance_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"graphpipe/internal/conformance"
	"graphpipe/internal/eval"
	"graphpipe/internal/planner"
	"graphpipe/internal/synth"

	_ "graphpipe/internal/eval/all"    // register the built-in backends
	_ "graphpipe/internal/planner/all" // register the built-in planners
)

var (
	corpusSize = flag.Int("conformance.seeds", 10,
		"corpus size: specs distributed round-robin across the synth families (CI runs 64)")
	baseSeed = flag.Int64("conformance.base-seed", 1,
		"first seed of the corpus (each family counts up from it)")
	replaySpec = flag.String("conformance.replay", "",
		"replay one synth spec string (e.g. synth:fanout/seed=42) through the full invariant suite and skip the corpus")
	topologyName = flag.String("conformance.topology", "",
		"pin the cluster topology for the corpus or replay run (a models.Topology name, e.g. topo:hetero-speed/seed=3); empty selects Summit")
)

// TestCorpus is the conformance gate: the full six-invariant suite
// over the seeded corpus, for every registered planner and evaluation
// backend. On red it writes each minimized failing spec as JSON into
// $CONFORMANCE_ARTIFACT_DIR (when set) so CI can hand the minimal
// repro to whoever picks up the failure; docs/TESTING.md describes the
// replay loop.
func TestCorpus(t *testing.T) {
	var specs []synth.Spec
	if *replaySpec != "" {
		spec, err := synth.Parse(*replaySpec)
		if err != nil {
			t.Fatalf("-conformance.replay: %v", err)
		}
		specs = []synth.Spec{spec}
	} else {
		specs = conformance.Corpus(*corpusSize, *baseSeed)
	}

	rep := conformance.CheckCorpus(specs, conformance.Config{Topology: *topologyName})

	if *replaySpec == "" && *topologyName == "" {
		// The acceptance envelope of the suite itself: at least three
		// families, every registered planner, both eval backends.
		if len(rep.Families) < 3 {
			t.Errorf("corpus covers %d families (%v), want >= 3", len(rep.Families), rep.Families)
		}
		if got, want := fmt.Sprint(rep.Planners), fmt.Sprint(planner.Names()); got != want {
			t.Errorf("planner scope %s, want every registered planner %s", got, want)
		}
		if len(rep.Backends) < 2 {
			t.Errorf("backend scope %v, want both eval backends %v", rep.Backends, eval.Names())
		}
	}
	for _, s := range rep.Skips {
		t.Logf("skip: %s", s)
	}
	if len(rep.Violations) == 0 {
		t.Logf("conformance: %d specs x %d planners x %d backends clean (families %v, %d skips)",
			rep.Specs, len(rep.Planners), len(rep.Backends), rep.Families, len(rep.Skips))
		return
	}
	dir := os.Getenv("CONFORMANCE_ARTIFACT_DIR")
	for i, v := range rep.Violations {
		t.Errorf("violation: %s", v)
		replay := fmt.Sprintf("go test ./internal/conformance -run TestCorpus -conformance.replay=%q", v.Minimal)
		if v.MinimalTopology != "" {
			replay += fmt.Sprintf(" -conformance.topology=%q", v.MinimalTopology)
		}
		t.Logf("replay: %s", replay)
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatalf("artifact dir: %v", err)
			}
			// The whole violation goes into the artifact: the minimized
			// (model, topology) pair is what replays a heterogeneous-corpus
			// failure, not the model spec alone.
			data, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				t.Fatalf("encoding violation: %v", err)
			}
			name := fmt.Sprintf("minimal-%02d-%s-%s.json", i, v.Invariant, v.Planner)
			if err := os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644); err != nil {
				t.Fatalf("writing %s: %v", name, err)
			}
			t.Logf("minimized (model, topology) pair written to %s", filepath.Join(dir, name))
		}
	}
}

// TestShrinkConverges pins the minimizer on a synthetic predicate: a
// "bug" that needs depth >= 4 and branches >= 3 must shrink to exactly
// that boundary, not below it and not far above.
func TestShrinkConverges(t *testing.T) {
	start, err := synth.Resolve(synth.Spec{Family: "fanout", Seed: 9, Depth: 12, Branches: 6})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	min := conformance.Shrink(start, func(s synth.Spec) bool {
		calls++
		return s.Depth >= 4 && s.Branches >= 3
	})
	if min.Depth != 4 || min.Branches != 3 {
		t.Errorf("shrunk to depth=%d branches=%d, want 4/3", min.Depth, min.Branches)
	}
	if calls > 64 {
		t.Errorf("shrinking took %d predicate runs, want few", calls)
	}
	// A predicate that stops failing immediately keeps the spec as-is.
	same := conformance.Shrink(start, func(synth.Spec) bool { return false })
	if same != start {
		t.Errorf("shrink changed a spec whose predicate never fails: %+v", same)
	}
}

// TestCorpusDeterministic pins that the corpus is a pure function of
// (n, baseSeed) — the property that makes "the CI corpus" replayable.
func TestCorpusDeterministic(t *testing.T) {
	a := conformance.Corpus(16, 7)
	b := conformance.Corpus(16, 7)
	if len(a) != 16 {
		t.Fatalf("corpus size %d", len(a))
	}
	fams := map[string]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corpus not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		fams[a[i].Family] = true
	}
	if len(fams) != len(synth.Families()) {
		t.Errorf("16-spec corpus covers %d families, want all %d", len(fams), len(synth.Families()))
	}
}
