package conformance

import "graphpipe/internal/synth"

// ShrinkTopology minimizes the topology half of a failing (model,
// topology) pair: it tries strictly simpler cluster shapes — the Summit
// default, then the uniform synth family at the same seed — and keeps the
// simplest one on which the predicate still fails. Like Shrink, the
// predicate must be deterministic; a candidate that fails to resolve
// simply does not fail and is skipped.
func ShrinkTopology(topology string, fails func(topology string) bool) string {
	if topology == "" {
		return topology
	}
	candidates := []string{""}
	if spec, err := synth.ParseTopo(topology); err == nil && spec.Family != "uniform" {
		spec.Family = "uniform"
		candidates = append(candidates, spec.String())
	}
	// Simplest first: the first still-failing candidate wins.
	for _, cand := range candidates {
		if cand != topology && fails(cand) {
			return cand
		}
	}
	return topology
}

// Shrink greedily minimizes a resolved spec while the fails predicate
// keeps failing, trying the structural knobs in size order — halve then
// decrement depth, branches, and nesting; halve skew — until no smaller
// candidate fails. The result is the spec a human debugs: typically a
// 2-branch, depth-1 model instead of the random corpus graph that
// tripped the invariant first.
//
// The predicate must be deterministic (checkPlanner is); candidates
// that no longer generate a valid graph simply don't fail and are
// skipped. The loop is bounded: every accepted candidate strictly
// shrinks an integer knob or halves skew, so it terminates.
func Shrink(spec synth.Spec, fails func(synth.Spec) bool) synth.Spec {
	cur, err := synth.Resolve(spec)
	if err != nil {
		return spec
	}
	for {
		shrunk := false
		for _, cand := range candidates(cur) {
			rc, err := synth.Resolve(cand)
			if err != nil || rc == cur {
				// Families force unused knobs back to fixed values, so a
				// candidate can resolve to the current spec; accepting it
				// would loop forever.
				continue
			}
			if fails(rc) {
				cur = rc
				shrunk = true
				break
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// candidates proposes strictly smaller variants of a resolved spec,
// biggest reductions first so shrinking converges in few predicate
// runs.
func candidates(s synth.Spec) []synth.Spec {
	var out []synth.Spec
	add := func(mut func(*synth.Spec)) {
		c := s
		mut(&c)
		if c != s {
			out = append(out, c)
		}
	}
	if s.Depth > 1 {
		add(func(c *synth.Spec) { c.Depth = c.Depth / 2 })
		add(func(c *synth.Spec) { c.Depth-- })
	}
	if s.Branches > 1 {
		add(func(c *synth.Spec) {
			if c.Branches/2 >= 1 {
				c.Branches = c.Branches / 2
			}
		})
		add(func(c *synth.Spec) { c.Branches-- })
	}
	if s.Nesting > 1 {
		add(func(c *synth.Spec) { c.Nesting-- })
	}
	if s.Skew > 0.25 {
		// Skew 0 means "re-derive from seed", so halving stops above it.
		add(func(c *synth.Spec) { c.Skew = float64(int(c.Skew*50+0.5)) / 100 })
	}
	return out
}
