package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// HTTP headers that carry trace context between processes, propagated
// alongside X-Graphpipe-Budget-Ms. TraceHeader names the trace a request
// belongs to; ParentHeader carries the caller's current span ID so the
// callee's root span attaches under it.
const (
	TraceHeader  = "X-Graphpipe-Trace"
	ParentHeader = "X-Graphpipe-Parent"
)

// A Tracer mints trace and span IDs for one process. IDs are
// deterministic: `<process>-<n>` from a per-tracer counter, no
// randomness — a test that names its processes ("lb", "shard0") gets
// byte-stable IDs, and IDs from distinctly named processes never
// collide, which is what lets span logs from a whole fleet be unioned
// into one tree.
type Tracer struct {
	process string
	seq     atomic.Uint64
}

// NewTracer returns a tracer stamping the given process name (e.g.
// "graphpiped@:8890") into every ID and span log line it produces.
func NewTracer(process string) *Tracer {
	if process == "" {
		process = "proc"
	}
	return &Tracer{process: process}
}

// Process returns the tracer's process name.
func (t *Tracer) Process() string { return t.process }

func (t *Tracer) nextID() string {
	return t.process + "-" + strconv.FormatUint(t.seq.Add(1), 10)
}

// A Trace collects the spans one request produced inside one process.
// Spans may be added and ended concurrently (planner workers fan out);
// Export snapshots under the lock.
type Trace struct {
	tracer    *Tracer
	id        string
	startWall time.Time
	startMono time.Time // monotonic anchor for span offsets

	mu    sync.Mutex
	spans []*Span
}

// A Span is one timed, named phase of a request. End it exactly once;
// both methods are safe on a nil span (the no-trace fast path).
type Span struct {
	tr     *Trace
	id     string
	parent string
	name   string
	start  time.Duration

	mu    sync.Mutex
	dur   time.Duration
	ended bool
	attrs []string // alternating key, value
}

// NewTrace starts collecting spans for one request. id is the trace ID
// (from the incoming TraceHeader, or minted via t.NewTraceID when the
// request arrived untraced).
func (t *Tracer) NewTrace(id string) *Trace {
	now := time.Now()
	return &Trace{tracer: t, id: id, startWall: now, startMono: now}
}

// NewTraceID mints a fresh trace ID for a request that arrived without
// one.
func (t *Tracer) NewTraceID() string { return t.nextID() }

// ID returns the trace ID.
func (t *Trace) ID() string { return t.id }

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// ContextWithTrace attaches a trace to the context. parent, if
// non-empty, is the remote caller's span ID (from ParentHeader): the
// first span started under this context becomes its child, which is how
// parentage connects across process boundaries.
func ContextWithTrace(ctx context.Context, tr *Trace, parent string) context.Context {
	ctx = context.WithValue(ctx, traceKey, tr)
	if parent != "" {
		ctx = context.WithValue(ctx, spanKey, parent)
	}
	return ctx
}

// TraceFromContext returns the context's trace, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}

// CurrentSpanID returns the span ID the next child would attach under,
// or "".
func CurrentSpanID(ctx context.Context) string {
	id, _ := ctx.Value(spanKey).(string)
	return id
}

// StartSpan opens a span named name under the context's current span
// and returns a child context (under which further spans nest) plus the
// span. On a context with no trace it returns (ctx, nil); a nil *Span
// no-ops everywhere, so call sites never branch.
func StartSpan(ctx context.Context, name string, kv ...string) (context.Context, *Span) {
	tr := TraceFromContext(ctx)
	if tr == nil {
		return ctx, nil
	}
	s := &Span{
		tr:     tr,
		id:     tr.tracer.nextID(),
		parent: CurrentSpanID(ctx),
		name:   name,
		start:  time.Since(tr.startMono),
		attrs:  append([]string(nil), kv...),
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	return context.WithValue(ctx, spanKey, s.id), s
}

// End closes the span. Safe on nil; second and later calls no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.tr.startMono) - s.start
	}
	s.mu.Unlock()
}

// ID returns the span's ID ("" on nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// SetAttr appends one key/value attribute. Safe on nil.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, k, v)
	s.mu.Unlock()
}

// SpanHook adapts the context's trace to the `func(name, kv...) func()`
// hook shape used by planner Options: packages below the service layer
// (core, planner) record spans without importing obs or knowing about
// contexts. Returns nil when the context carries no trace, so hook
// users must (and do) tolerate a nil hook.
//
// Hook spans all attach under the context's current span: the planner's
// internal fan-out is recorded flat under the planner.search span
// rather than re-deriving goroutine parentage.
func SpanHook(ctx context.Context) func(name string, kv ...string) func() {
	tr := TraceFromContext(ctx)
	if tr == nil {
		return nil
	}
	parent := CurrentSpanID(ctx)
	return func(name string, kv ...string) func() {
		_, s := StartSpan(ContextWithTrace(context.Background(), tr, parent), name, kv...)
		return s.End
	}
}

// SpanExport is the wire/log form of one span. Times are microseconds
// relative to the trace's start in its own process; IDs embed the
// process name, so a multi-process tree stays unambiguous after logs
// are unioned.
type SpanExport struct {
	ID      string            `json:"id"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUs int64             `json:"start_us"`
	DurUs   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// TraceExport is one process's view of one trace: a JSON-lines record
// (-trace-log), the `?trace=1` response envelope payload, and the input
// to trace.ChromeTraceSpans.
type TraceExport struct {
	TraceID     string       `json:"trace_id"`
	Process     string       `json:"process"`
	StartUnixUs int64        `json:"start_unix_us"`
	Spans       []SpanExport `json:"spans"`
}

// Export snapshots the trace. Unended spans export with the duration
// they have accrued so far. Spans sort by start offset (ties: by ID) so
// exports are stable.
func (t *Trace) Export() *TraceExport {
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := &TraceExport{
		TraceID:     t.id,
		Process:     t.tracer.process,
		StartUnixUs: t.startWall.UnixMicro(),
		Spans:       make([]SpanExport, 0, len(spans)),
	}
	for _, s := range spans {
		s.mu.Lock()
		dur := s.dur
		if !s.ended {
			dur = time.Since(t.startMono) - s.start
		}
		var attrs map[string]string
		if len(s.attrs) > 0 {
			attrs = make(map[string]string, len(s.attrs)/2)
			for i := 0; i+1 < len(s.attrs); i += 2 {
				attrs[s.attrs[i]] = s.attrs[i+1]
			}
		}
		s.mu.Unlock()
		out.Spans = append(out.Spans, SpanExport{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartUs: s.start.Microseconds(),
			DurUs:   dur.Microseconds(),
			Attrs:   attrs,
		})
	}
	sort.Slice(out.Spans, func(i, j int) bool {
		a, b := out.Spans[i], out.Spans[j]
		if a.StartUs != b.StartUs {
			return a.StartUs < b.StartUs
		}
		return a.ID < b.ID
	})
	return out
}

// A TraceLog writes one JSON line per trace. Lines are whole-trace
// records (TraceExport), not per-span, so a reader can union logs from
// several processes and rebuild the fleet-wide tree by trace ID. Safe
// for concurrent use; a nil *TraceLog no-ops.
type TraceLog struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTraceLog wraps w (nil w: returns nil, which no-ops).
func NewTraceLog(w io.Writer) *TraceLog {
	if w == nil {
		return nil
	}
	return &TraceLog{w: w}
}

// Log writes the trace as one JSON line.
func (l *TraceLog) Log(t *Trace) {
	if l == nil || t == nil {
		return
	}
	data, err := json.Marshal(t.Export())
	if err != nil {
		return
	}
	data = append(data, '\n')
	l.mu.Lock()
	l.w.Write(data)
	l.mu.Unlock()
}

// Propagate stamps the outgoing request with the context's trace ID and
// current span ID, so the callee's spans attach under the caller's.
// No-op when the context carries no trace.
func Propagate(ctx context.Context, req *http.Request) {
	tr := TraceFromContext(ctx)
	if tr == nil {
		return
	}
	req.Header.Set(TraceHeader, tr.id)
	if parent := CurrentSpanID(ctx); parent != "" {
		req.Header.Set(ParentHeader, parent)
	}
}
