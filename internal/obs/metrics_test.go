package obs

import (
	"strings"
	"testing"
)

// TestWriteTextGolden pins the exposition format byte for byte:
// HELP/TYPE headers, sorted labels, escaping, and cumulative histogram
// buckets with the mandatory +Inf. If this golden moves, every scraper
// of /metrics sees the change — edit deliberately.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("graphpipe_requests_total", "Requests served.", Labels{"route": "plan"})
	c.Add(3)
	r.Counter("graphpipe_requests_total", "Requests served.", Labels{"route": "eval"}).Inc()
	r.GaugeFunc("graphpipe_in_flight", "Requests in flight.", nil, func() float64 { return 2 })
	r.CounterFunc("graphpipe_evictions_total", "Cache evictions.", Labels{"tier": "memory"},
		func() uint64 { return 7 })
	h := r.Histogram("graphpipe_latency_seconds", "Request latency.", Labels{"route": "plan"},
		[]float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99) // lands in +Inf only
	r.Counter("graphpipe_weird_total", "Escaping check.", Labels{"path": `a\b"c` + "\nd"}).Inc()
	r.CounterSetFunc("graphpipe_faults_injected_total", "Injected faults by site.", "site",
		func() map[string]uint64 { return map[string]uint64{"disk/err": 2, "peer/latency": 5} })

	want := strings.Join([]string{
		`# HELP graphpipe_requests_total Requests served.`,
		`# TYPE graphpipe_requests_total counter`,
		`graphpipe_requests_total{route="eval"} 1`,
		`graphpipe_requests_total{route="plan"} 3`,
		`# HELP graphpipe_in_flight Requests in flight.`,
		`# TYPE graphpipe_in_flight gauge`,
		`graphpipe_in_flight 2`,
		`# HELP graphpipe_evictions_total Cache evictions.`,
		`# TYPE graphpipe_evictions_total counter`,
		`graphpipe_evictions_total{tier="memory"} 7`,
		`# HELP graphpipe_latency_seconds Request latency.`,
		`# TYPE graphpipe_latency_seconds histogram`,
		`graphpipe_latency_seconds_bucket{le="0.1",route="plan"} 2`,
		`graphpipe_latency_seconds_bucket{le="1",route="plan"} 3`,
		`graphpipe_latency_seconds_bucket{le="10",route="plan"} 3`,
		`graphpipe_latency_seconds_bucket{le="+Inf",route="plan"} 4`,
		`graphpipe_latency_seconds_sum{route="plan"} 99.6`,
		`graphpipe_latency_seconds_count{route="plan"} 4`,
		`# HELP graphpipe_weird_total Escaping check.`,
		`# TYPE graphpipe_weird_total counter`,
		`graphpipe_weird_total{path="a\\b\"c\nd"} 1`,
		`# HELP graphpipe_faults_injected_total Injected faults by site.`,
		`# TYPE graphpipe_faults_injected_total counter`,
		`graphpipe_faults_injected_total{site="disk/err"} 2`,
		`graphpipe_faults_injected_total{site="peer/latency"} 5`,
		``,
	}, "\n")

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("exposition output drifted:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("graphpipe_a_total", "a", nil).Add(41)
	r.Counter("graphpipe_b_total", "b", Labels{"k": "v w"}).Add(5)
	h := r.Histogram("graphpipe_h_seconds", "h", nil, []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText on own output: %v", err)
	}
	for key, want := range map[string]float64{
		"graphpipe_a_total":                     41,
		`graphpipe_b_total{k="v w"}`:            5,
		`graphpipe_h_seconds_bucket{le="1"}`:    1,
		`graphpipe_h_seconds_bucket{le="+Inf"}`: 2,
		"graphpipe_h_seconds_count":             2,
		"graphpipe_h_seconds_sum":               2.5,
	} {
		if got[key] != want {
			t.Errorf("%s = %v, want %v", key, got[key], want)
		}
	}
}

func TestCounterReregistrationSharesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("graphpipe_x_total", "x", Labels{"l": "1"})
	b := r.Counter("graphpipe_x_total", "x", Labels{"l": "1"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared series not shared: %d", b.Value())
	}
}

func TestHistogramSnapshotCumulative(t *testing.T) {
	h := NewHistogram(nil) // DefaultLatencyBounds
	for _, v := range []float64{0.0005, 0.003, 0.003, 0.2, 400} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || len(s.Buckets) != len(DefaultLatencyBounds) {
		t.Fatalf("count %d buckets %d", s.Count, len(s.Buckets))
	}
	var prev uint64
	for _, b := range s.Buckets {
		if b.Count < prev {
			t.Fatalf("buckets not cumulative at le=%v", b.LE)
		}
		prev = b.Count
	}
	// 400 lands past the last bound: cumulative max stays below Count.
	if last := s.Buckets[len(s.Buckets)-1]; last.Count != 4 {
		t.Fatalf("last bucket %d, want 4 (one observation in +Inf)", last.Count)
	}
}
