// Package obs is the repository's zero-dependency observability layer:
// request tracing (typed spans with cross-process parentage, propagated
// over HTTP headers) and metrics (counters, gauges, histograms) exported
// in the Prometheus text exposition format.
//
// The two halves share one design rule: deterministic where tests look.
// Trace and span IDs derive from a process name plus a per-process
// counter — no randomness — so a test that names its processes gets
// byte-stable IDs; metrics render in sorted order so the exposition
// output is goldenable. Everything is safe for concurrent use.
//
// Metrics naming follows Prometheus conventions: a `graphpipe_` prefix,
// `_total` on counters, base units in the name (`_seconds`, `_bytes`),
// labels for bounded dimensions (cache tier, planner name, backend URL)
// and never for unbounded ones.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing metric. The zero value is
// usable but unregistered; obtain registered counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// DefaultLatencyBounds are the upper bounds (seconds) of latency
// histogram buckets, spanning sub-millisecond case-study plans to
// Piper's minutes-long searches; the implicit final bucket is +Inf.
// (Moved here from internal/service so the router and the service share
// one bucket ladder.)
var DefaultLatencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 300,
}

// Histogram accumulates observations into fixed buckets
// (Prometheus-style: per-bucket counts internally, cumulative on
// export).
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	buckets []uint64 // len(bounds)+1; last is +Inf
	count   uint64
	sum     float64
}

// NewHistogram builds an unregistered histogram over the given upper
// bounds (nil: DefaultLatencyBounds).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{bounds: bounds, buckets: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// HistogramSnapshot is the exported form of one histogram.
type HistogramSnapshot struct {
	// Count and SumSeconds give the observation count and total
	// (their ratio is the mean).
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	// Buckets are cumulative: each entry counts observations at or below
	// its bound. The implicit +Inf bucket always equals Count and is
	// omitted.
	Buckets []HistogramBucket `json:"buckets"`
}

// HistogramBucket is one cumulative bucket: observations ≤ LE.
type HistogramBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Snapshot exports the histogram with cumulative buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, SumSeconds: h.sum}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i]
		s.Buckets = append(s.Buckets, HistogramBucket{LE: b, Count: cum})
	}
	return s
}

// Labels are one metric series' label set. Rendered sorted by key, so
// two semantically equal sets produce one series.
type Labels map[string]string

// series is one (labelset, value source) pair inside a family.
type series struct {
	labels Labels
	kind   seriesKind
	c      *Counter
	h      *Histogram
	fn     func() float64
}

type seriesKind int

const (
	kindCounter seriesKind = iota
	kindHistogram
	kindFunc    // gauge or counter computed at scrape time
	kindSetFunc // a whole labeled set computed at scrape time
)

// family is one metric name: a help string, a type, and its series.
type family struct {
	name, help, typ string
	series          []*series
	// setLabel/setFn render a dynamic labeled set (e.g. fault tallies
	// keyed by site) at scrape time.
	setLabel string
	setFn    func() map[string]uint64
}

// Registry holds metric families and renders them as Prometheus text.
// Register at construction time; scrape with WriteText. All methods are
// safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) familyFor(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

// Counter registers (or finds) the counter series name{labels}.
// Registering the same name+labels twice returns the same counter, so
// independent subsystems can share a series safely.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "counter")
	key := renderLabels(labels)
	for _, s := range f.series {
		if renderLabels(s.labels) == key {
			return s.c
		}
	}
	s := &series{labels: labels, kind: kindCounter, c: &Counter{}}
	f.series = append(f.series, s)
	return s.c
}

// Histogram registers (or finds) the histogram series name{labels} over
// the given bounds (nil: DefaultLatencyBounds).
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "histogram")
	key := renderLabels(labels)
	for _, s := range f.series {
		if renderLabels(s.labels) == key {
			return s.h
		}
	}
	s := &series{labels: labels, kind: kindHistogram, h: NewHistogram(bounds)}
	f.series = append(f.series, s)
	return s.h
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.addFunc(name, help, "gauge", labels, fn)
}

// CounterFunc registers a counter whose value lives elsewhere (an
// existing atomic) and is read at scrape time. The source must be
// monotone for the counter type to be honest.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.addFunc(name, help, "counter", labels, func() float64 { return float64(fn()) })
}

func (r *Registry) addFunc(name, help, typ string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typ)
	f.series = append(f.series, &series{labels: labels, kind: kindFunc, fn: fn})
}

// CounterSetFunc registers a counter family whose series are dynamic: at
// scrape time fn's map is rendered as one series per key, labeled
// labelKey=<key>. Used for tallies keyed by an open set (fault sites,
// breaker opens per backend).
func (r *Registry) CounterSetFunc(name, help, labelKey string, fn func() map[string]uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "counter")
	f.setLabel, f.setFn = labelKey, fn
}

// WriteText renders every registered family in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE headers, one line
// per series, histograms as cumulative _bucket/_sum/_count lines.
// Families render in registration order; series within a family render
// in sorted-label order, so the output is stable enough to golden-test.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	fams := make(map[string]*family, len(r.families))
	for k, v := range r.families {
		fams[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, name := range order {
		f := fams[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		lines := make([]string, 0, len(f.series))
		for _, s := range f.series {
			switch s.kind {
			case kindCounter:
				lines = append(lines, seriesLine(f.name, s.labels, float64(s.c.Value())))
			case kindFunc:
				lines = append(lines, seriesLine(f.name, s.labels, s.fn()))
			case kindHistogram:
				lines = append(lines, histogramLines(f.name, s.labels, s.h.Snapshot())...)
			}
		}
		if f.setFn != nil {
			set := f.setFn()
			keys := make([]string, 0, len(set))
			for k := range set {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				lines = append(lines, seriesLine(f.name, Labels{f.setLabel: k}, float64(set[k])))
			}
		}
		// Histogram series already order their own lines; sorting plain
		// series keeps label permutations stable.
		if f.typ != "histogram" {
			sort.Strings(lines)
		}
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func seriesLine(name string, labels Labels, v float64) string {
	return name + renderLabels(labels) + " " + formatValue(v)
}

// histogramLines renders one histogram series: cumulative _bucket lines
// (including the mandatory le="+Inf"), then _sum and _count.
func histogramLines(name string, labels Labels, s HistogramSnapshot) []string {
	out := make([]string, 0, len(s.Buckets)+3)
	for _, bk := range s.Buckets {
		l := withLabel(labels, "le", formatValue(bk.LE))
		out = append(out, name+"_bucket"+renderLabels(l)+" "+strconv.FormatUint(bk.Count, 10))
	}
	l := withLabel(labels, "le", "+Inf")
	out = append(out, name+"_bucket"+renderLabels(l)+" "+strconv.FormatUint(s.Count, 10))
	out = append(out, name+"_sum"+renderLabels(labels)+" "+formatValue(s.SumSeconds))
	out = append(out, name+"_count"+renderLabels(labels)+" "+strconv.FormatUint(s.Count, 10))
	return out
}

func withLabel(labels Labels, k, v string) Labels {
	out := make(Labels, len(labels)+1)
	for lk, lv := range labels {
		out[lk] = lv
	}
	out[k] = v
	return out
}

// renderLabels renders {k="v",...} with keys sorted and values escaped;
// empty label sets render as "".
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a help string: backslash and newline (quotes are
// legal in help text).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
