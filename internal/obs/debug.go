package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is the optional pprof side-listener behind the daemons'
// -debug-addr flag. It is a separate listener on purpose: profiling
// endpoints never share a port (or an accept queue) with serving
// traffic, and leaving the flag unset leaves them unreachable.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer serves net/http/pprof on addr. The returned server
// runs until Close; a nil server (with nil error) means addr was empty
// and nothing was started.
func StartDebugServer(addr string) (*DebugServer, error) {
	if addr == "" {
		return nil, nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr reports the listener's resolved address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the debug listener. Safe on a nil server.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
