package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"time"
)

// HTTPOptions configures Middleware for one process.
type HTTPOptions struct {
	// Tracer mints trace/span IDs; required.
	Tracer *Tracer
	// Log, when non-nil, receives every request's trace as one JSON line.
	Log *TraceLog
	// Route maps a request to a short route name ("plan", "stats", ...)
	// used in the root span name and latency metrics. Required.
	Route func(r *http.Request) string
	// SpanPrefix prefixes the root span name, e.g. "router." or
	// "service.", so a unioned multi-process tree reads unambiguously.
	SpanPrefix string
	// Observe, when non-nil, receives the request's route and duration
	// in seconds once the response is written.
	Observe func(route string, seconds float64)
}

// Middleware wraps next with the per-request trace lifecycle: adopt the
// incoming TraceHeader (or mint an ID), open the process root span —
// attached under the caller's ParentHeader span if present — echo the
// trace ID on the response, and on completion log the trace and observe
// request latency. With `?trace=1` the response body is wrapped in a
// TraceEnvelope carrying this process's span tree; envelopes nest when
// the handler itself relayed an enveloped body (router in front of a
// shard), and UnwrapEnvelope undoes the nesting.
func Middleware(next http.Handler, o HTTPOptions) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		traceID := r.Header.Get(TraceHeader)
		if traceID == "" {
			traceID = o.Tracer.NewTraceID()
		}
		tr := o.Tracer.NewTrace(traceID)
		route := o.Route(r)
		ctx := ContextWithTrace(r.Context(), tr, r.Header.Get(ParentHeader))
		ctx, root := StartSpan(ctx, o.SpanPrefix+route, "path", r.URL.Path, "method", r.Method)
		r = r.WithContext(ctx)

		w.Header().Set(TraceHeader, traceID)
		if r.URL.Query().Get("trace") == "1" {
			rec := &recorder{hdr: w.Header()}
			next.ServeHTTP(rec, r)
			root.SetAttr("status", http.StatusText(rec.statusOr(http.StatusOK)))
			root.End()
			writeEnvelope(w, rec, tr)
		} else {
			next.ServeHTTP(w, r)
			root.End()
		}
		o.Log.Log(tr)
		if o.Observe != nil {
			o.Observe(route, time.Since(start).Seconds())
		}
	})
}

// recorder buffers the response body so the middleware can wrap it in a
// trace envelope after the handler returns. It shares the real response
// header map, so handler-set headers (fingerprint, cache tier,
// Retry-After) pass through untouched.
type recorder struct {
	hdr    http.Header
	status int
	buf    bytes.Buffer
}

func (r *recorder) Header() http.Header { return r.hdr }

func (r *recorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.buf.Write(p)
}

func (r *recorder) statusOr(def int) int {
	if r.status == 0 {
		return def
	}
	return r.status
}

// TraceEnvelope is the `?trace=1` response shape: the responding
// process's trace plus the body it would otherwise have written. When
// that body is itself an envelope (a router relaying a traced shard
// response), envelopes nest through the Response field.
type TraceEnvelope struct {
	Trace *TraceExport `json:"trace"`
	// Response holds the original body when it was valid JSON;
	// ResponseText holds it verbatim otherwise. At most one is set.
	Response     json.RawMessage `json:"response,omitempty"`
	ResponseText string          `json:"response_text,omitempty"`
}

func writeEnvelope(w http.ResponseWriter, rec *recorder, tr *Trace) {
	env := TraceEnvelope{Trace: tr.Export()}
	body := rec.buf.Bytes()
	if json.Valid(body) && len(bytes.TrimSpace(body)) > 0 {
		env.Response = json.RawMessage(body)
	} else {
		env.ResponseText = string(body)
	}
	data, err := json.Marshal(env)
	if err != nil {
		data = []byte(`{"trace":null}`)
	}
	w.Header().Del("Content-Length")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(rec.statusOr(http.StatusOK))
	w.Write(data)
}

// UnwrapEnvelope peels nested trace envelopes off a response body,
// returning every trace collected (outermost first — the process
// closest to the client leads) and the innermost real payload. ok is
// false when body is not an envelope at all, in which case payload is
// body unchanged.
func UnwrapEnvelope(body []byte) (traces []*TraceExport, payload []byte, ok bool) {
	payload = body
	for {
		var env TraceEnvelope
		if err := json.Unmarshal(payload, &env); err != nil || env.Trace == nil {
			return traces, payload, len(traces) > 0
		}
		traces = append(traces, env.Trace)
		if env.Response != nil {
			payload = []byte(env.Response)
		} else {
			payload = []byte(env.ResponseText)
		}
	}
}
